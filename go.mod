module github.com/pmemgo/xfdetector

go 1.22
