// Command xfdfuzz is the standalone driver for the differential
// crash-state fuzzer in internal/fuzzgen. It generates seed-driven PM
// programs, runs each through every detector configuration (sequential,
// parallel, elision disabled, trace-only, original), and compares every
// run against the package's brute-force oracle.
//
//	xfdfuzz -n 1000                      1000 seeds per bug-class knob
//	xfdfuzz -knob stale-commit -n 0      fuzz one knob until interrupted
//	xfdfuzz -seed 7351 -n 1              replay one seed (reproducer line)
//
// On a mismatch the offending program is greedily minimized and written
// as a JSON reproducer into the corpus directory, where the
// TestCorpusReplay regression test picks it up; the exit status is 1.
// Everything is deterministic in the explicit -seed: the same seed and
// knob always generate the same program and the same verdicts.
//
// ^C is graceful: the campaign stops at the next seed boundary, an
// in-flight minimization returns its best reproducer so far, and the
// summary line still reports what was checked. A second ^C kills the
// process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"github.com/pmemgo/xfdetector/internal/fuzzgen"
)

func main() {
	var (
		seed      = flag.Int64("seed", 0, "first seed; each knob runs seeds [seed, seed+n)")
		n         = flag.Int64("n", 200, "seeds per knob (0 = run until interrupted)")
		knob      = flag.String("knob", "all", "bug-class knob to fuzz, or \"all\"")
		corpusDir = flag.String("corpus", filepath.Join("internal", "fuzzgen", "corpus"),
			"directory for minimized reproducers")
		minimize  = flag.Bool("minimize", true, "minimize mismatching programs before writing them")
		keepGoing = flag.Bool("keep-going", false, "report every mismatch instead of stopping at the first")
		verbose   = flag.Bool("v", false, "log progress per 100 seeds")
	)
	flag.Parse()

	knobs, err := selectKnobs(*knob)
	if err != nil {
		fatalf("%v", err)
	}

	// First ^C cancels the context; signal.Stop then restores the default
	// handler so a second ^C terminates the process the ordinary way.
	ctx, cancel := context.WithCancel(context.Background())
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "xfdfuzz: interrupted — finishing the current seed (^C again to kill)")
		cancel()
		signal.Stop(sigs)
	}()

	mismatches := 0
	checked := int64(0)
campaign:
	for offset := int64(0); *n == 0 || offset < *n; offset++ {
		for _, k := range knobs {
			if ctx.Err() != nil {
				break campaign
			}
			s := *seed + offset
			err := fuzzgen.CheckSeed(s, k)
			checked++
			var m *fuzzgen.Mismatch
			switch {
			case err == nil:
			case errors.As(err, &m):
				mismatches++
				fmt.Fprintln(os.Stderr, m.Error())
				if path, werr := writeReproducer(ctx, *corpusDir, m.Program, *minimize); werr != nil {
					fmt.Fprintf(os.Stderr, "xfdfuzz: writing reproducer: %v\n", werr)
				} else {
					fmt.Fprintf(os.Stderr, "xfdfuzz: reproducer written to %s\n", path)
				}
				if !*keepGoing {
					os.Exit(1)
				}
			default:
				fatalf("seed %d knob %s: %v", s, k, err)
			}
		}
		if *verbose && (offset+1)%100 == 0 {
			fmt.Fprintf(os.Stderr, "xfdfuzz: %d programs checked, %d mismatches\n", checked, mismatches)
		}
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "xfdfuzz: %d mismatches in %d programs\n", mismatches, checked)
		os.Exit(1)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "xfdfuzz: interrupted — %d programs across %d knob(s) agreed with the oracle so far\n",
			checked, len(knobs))
		os.Exit(130)
	}
	fmt.Printf("xfdfuzz: OK — %d programs across %d knob(s) agree with the oracle\n", checked, len(knobs))
}

func selectKnobs(name string) ([]fuzzgen.Knob, error) {
	if name == "all" {
		return fuzzgen.Knobs(), nil
	}
	for _, k := range fuzzgen.Knobs() {
		if string(k) == name {
			return []fuzzgen.Knob{k}, nil
		}
	}
	return nil, fmt.Errorf("unknown knob %q (want \"all\" or one of %v)", name, fuzzgen.Knobs())
}

// writeReproducer minimizes the mismatching program (when asked) and
// stores it as a corpus JSON file named after the program. An interrupt
// during minimization writes the smallest reproducer reached so far.
func writeReproducer(ctx context.Context, dir string, p fuzzgen.Program, minimize bool) (string, error) {
	if minimize {
		p = fuzzgen.MinimizeCtx(ctx, p)
	}
	data, err := p.MarshalIndent()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, p.Name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xfdfuzz: "+format+"\n", args...)
	os.Exit(1)
}
