// Command xfdreplay records and analyzes persistent-memory operation
// traces, demonstrating the frontend/backend decoupling of §5.5 of the
// paper ("the backend of XFDetector can be attached to other tracing
// frameworks"): traces recorded by the frontend can be serialized, shipped
// to another machine or process, and analyzed offline.
//
//	xfdreplay -record -workload btree -o btree.xfdt   record a trace
//	xfdreplay -analyze btree.xfdt                     offline analysis
//	xfdreplay -analyze campaign.xfdr                  analyze an artifact
//
// Offline analysis replays the trace through the persistence and
// transaction state machines and prints: an operation census, the final
// persistence census, performance bugs, and the pre-failure-only findings
// the pmemcheck-like and PMTest-like checkers would report. -analyze
// accepts both container formats by sniffing the magic: a bare XFDT trace
// (this command's own -record output) or a recorded-campaign XFDR
// artifact (xfdetector -record), whose header and checkpoint inventory
// are printed before its embedded trace is analyzed.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/pmemgo/xfdetector/internal/baseline"
	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/record"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

func main() {
	var (
		record   = flag.Bool("record", false, "record a trace instead of analyzing one")
		workload = flag.String("workload", "btree", "workload to record (btree | ctree | rbtree | hashmap-tx | hashmap-atomic)")
		initSize = flag.Int("init", 5, "insertions while initializing")
		testSize = flag.Int("test", 5, "insertions to trace")
		patch    = flag.String("patch", "", "synthetic bug to inject while recording")
		out      = flag.String("o", "trace.xfdt", "output file for -record")
		analyze  = flag.String("analyze", "", "trace file to analyze")
	)
	flag.Parse()

	switch {
	case *record:
		if err := doRecord(*workload, *patch, *initSize, *testSize, *out); err != nil {
			fatalf("%v", err)
		}
	case *analyze != "":
		if err := doAnalyze(*analyze); err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("pass -record or -analyze <file>")
	}
}

var shortNames = map[string]string{
	"btree":          "B-Tree",
	"ctree":          "C-Tree",
	"rbtree":         "RB-Tree",
	"hashmap-tx":     "Hashmap-TX",
	"hashmap-atomic": "Hashmap-Atomic",
}

func doRecord(workload, patch string, initSize, testSize int, out string) error {
	name, ok := shortNames[workload]
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	m, _ := workloads.MakerFor(name)
	cfg := workloads.TargetConfig{
		InitSize: initSize, TestSize: testSize, Updates: 1, Removes: 1,
		PostOps: true, Fault: patch, FaultInCreate: patch != "",
	}
	res, err := core.Run(core.Config{
		Mode: core.ModeTraceOnly, KeepTrace: true, PoolSize: 4 << 20,
	}, workloads.DetectionTarget(m, cfg))
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := res.PreTrace().WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d entries (%d bytes) from %s to %s\n",
		res.PreTrace().Len(), n, name, out)
	return nil
}

func doAnalyze(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Sniff the container: an XFDR recorded-campaign artifact embeds the
	// trace behind a header; anything else is decoded as a bare XFDT trace
	// (the legacy path this command has always read).
	var tr *trace.Trace
	switch a, err := record.Read(bytes.NewReader(data)); {
	case err == nil:
		fmt.Printf("recorded-campaign artifact: target %q, identity %016x, pool %d bytes\n",
			a.Target, a.Identity, a.PoolSize)
		fmt.Printf("  %d failure point(s), %d engine checkpoint(s), %d pre-failure perf report(s)\n",
			len(a.FPs), len(a.Checkpoints), len(a.Perf))
		for _, ck := range a.Checkpoints {
			fmt.Printf("  checkpoint at failure point %d (trace index %d, %d op(s))\n",
				ck.FP, ck.TraceIdx, ck.OpsEver)
		}
		fmt.Println()
		tr = a.Trace
	case errors.Is(err, record.ErrBadMagic):
		tr = trace.New()
		if _, err := tr.ReadFrom(bytes.NewReader(data)); err != nil {
			return fmt.Errorf("decode %s: %w", path, err)
		}
	default:
		return fmt.Errorf("decode %s: %w", path, err)
	}
	size := baseline.PoolSizeFor(tr)
	fmt.Printf("trace: %d entries, addresses up to %#x\n\n", tr.Len(), size)

	// Operation census.
	fmt.Println("operation census:")
	counts := tr.Counts()
	kinds := make([]trace.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return counts[kinds[i]] > counts[kinds[j]] })
	for _, k := range kinds {
		fmt.Printf("  %-16s %8d\n", k, counts[k])
	}

	// Replay into a shadow PM: persistence census and performance bugs.
	sh := shadow.NewPM(size)
	var perf []shadow.PerfBug
	sh.SetPerfBugHandler(func(b shadow.PerfBug) { perf = append(perf, b) })
	for _, e := range tr.Entries() {
		sh.Apply(e)
	}
	var census [4]uint64
	for b := uint64(0); b < size; b++ {
		census[sh.State(b)]++
	}
	fmt.Printf("\nfinal persistence census (bytes): U=%d M=%d W=%d P=%d\n",
		census[shadow.Unmodified], census[shadow.Modified],
		census[shadow.WritebackPending], census[shadow.Persisted])
	if len(perf) > 0 {
		fmt.Printf("\nperformance bugs (%d):\n", len(perf))
		for _, b := range perf {
			fmt.Printf("  %s at %s on [%#x, %#x)\n", b.Kind, b.IP, b.Addr, b.Addr+b.Size)
		}
	}

	// Pre-failure-only checkers.
	printFindings := func(tool string, fs []baseline.Finding) {
		fmt.Printf("\n%s findings (%d):\n", tool, len(fs))
		if len(fs) == 0 {
			fmt.Println("  (none)")
		}
		for _, f := range fs {
			fmt.Printf("  %s\n", f)
		}
	}
	printFindings("pmemcheck-like", baseline.Pmemcheck(tr, size))
	printFindings("PMTest-like", baseline.PMTest(tr, size))

	fmt.Println("\nnote: offline analysis covers the pre-failure stage only;")
	fmt.Println("cross-failure bugs need the full detector (cmd/xfdetector).")
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xfdreplay: "+format+"\n", args...)
	os.Exit(1)
}
