// Command xfdbench regenerates the tables and figures of the paper's
// evaluation section (§6):
//
//	xfdbench -experiment fig12a     execution time per workload, pre/post split
//	xfdbench -experiment fig12b     slowdown over tracing-only and original
//	xfdbench -experiment fig13      scalability in pre-failure transactions
//	xfdbench -experiment table1     the six crash-consistency mechanisms
//	xfdbench -experiment table4     the evaluated programs
//	xfdbench -experiment table5     synthetic-bug validation
//	xfdbench -experiment coverage   Fig. 3: XFDetector vs. pre-failure tools
//	xfdbench -experiment newbugs    §6.3.2: the four new bugs
//	xfdbench -experiment pruning    crash-state pruning ablation (class counts + speedup)
//	xfdbench -experiment all        everything, in paper order
//
// It also converts `go test -bench` output into the machine-readable
// baseline format (BENCH_baseline.json at the repo root), and compares
// two such baselines as a perf-regression gate:
//
//	go test -bench . -benchtime=1x -run '^$' . | xfdbench -parse-bench - -o BENCH_baseline.json
//	xfdbench -threshold 25 -compare BENCH_baseline.json new.json
//
// -compare prints per-benchmark ns/op and post-s/op deltas and exits 1
// when any benchmark regressed more than -threshold percent.
//
// Absolute times differ from the paper's Optane testbed; the shapes —
// post-failure time dominating, linear scaling in failure points, and the
// detection-capability gaps — are the reproduction targets (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/pmemgo/xfdetector/internal/bench"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig12a | fig12b | fig13 | table1 | table4 | table5 | coverage | newbugs | all")
		outPath    = flag.String("o", "", "write results to this file instead of stdout")
		parseBench = flag.String("parse-bench", "", "parse `go test -bench` output from this file (- for stdin) into baseline JSON instead of running experiments")
		compare    = flag.String("compare", "", "compare this baseline JSON against the one named by the next argument; exit 1 past -threshold")
		threshold  = flag.Float64("threshold", 10, "regression threshold for -compare, in percent")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		out = f
	}

	if *compare != "" {
		if flag.NArg() != 1 {
			fatalf("-compare wants exactly one more baseline: xfdbench -compare old.json new.json")
		}
		old, err := readBaseline(*compare)
		if err != nil {
			fatalf("%v", err)
		}
		cur, err := readBaseline(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		regressed, err := bench.CompareBaselines(out, old, cur, *threshold/100)
		if err != nil {
			fatalf("%v", err)
		}
		if len(regressed) > 0 {
			os.Exit(1)
		}
		return
	}

	if *parseBench != "" {
		var in io.Reader = os.Stdin
		if *parseBench != "-" {
			f, err := os.Open(*parseBench)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			in = f
		}
		base, err := bench.ParseGoBench(in)
		if err != nil {
			fatalf("%v", err)
		}
		if err := base.WriteJSON(out); err != nil {
			fatalf("%v", err)
		}
		return
	}

	experiments := map[string]func(io.Writer) error{
		"fig12a":   bench.WriteFig12a,
		"fig12b":   bench.WriteFig12b,
		"fig13":    bench.WriteFig13,
		"table1":   bench.WriteTable1,
		"table4":   writeTable4,
		"table5":   bench.WriteTable5,
		"coverage": bench.WriteCoverage,
		"newbugs":  bench.NewBugsReport,
		"pruning":  bench.WritePruneAblation,
	}
	if *experiment == "all" {
		for _, name := range []string{"table4", "table1", "fig12a", "fig12b", "fig13", "table5", "coverage", "newbugs", "pruning"} {
			fmt.Fprintf(out, "\n========== %s ==========\n", name)
			if err := experiments[name](out); err != nil {
				fatalf("%s: %v", name, err)
			}
		}
		return
	}
	fn, ok := experiments[*experiment]
	if !ok {
		fatalf("unknown experiment %q", *experiment)
	}
	if err := fn(out); err != nil {
		fatalf("%s: %v", *experiment, err)
	}
}

// writeTable4 lists the evaluated programs with their seeded-bug counts
// (the LOC columns of the paper's Table 4 are specific to the C sources;
// here the suite composition identifies the workloads).
func writeTable4(w io.Writer) error {
	fmt.Fprintln(w, "Table 4 — the evaluated PM programs")
	fmt.Fprintf(w, "%-16s %-14s %s\n", "name", "type", "seeded bugs (Table 5 suite)")
	for _, row := range bench.Table4() {
		n := len(workloads.FaultsFor(row.Name))
		extra := ""
		switch row.Name {
		case "Redis":
			extra = "1 (the paper's Bug 3)"
		case "Memcached":
			extra = "0"
		default:
			extra = fmt.Sprintf("%d", n)
		}
		fmt.Fprintf(w, "%-16s %-14s %s\n", row.Name, row.Type, extra)
	}
	return nil
}

// readBaseline loads one -compare operand.
func readBaseline(path string) (*bench.BenchBaseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base, err := bench.ReadBaselineJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xfdbench: "+format+"\n", args...)
	os.Exit(1)
}
