package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/pmemgo/xfdetector/internal/core"
)

// Checkpoint file: one JSON object per line, appended and fsynced as each
// failure point's post-run completes, so a killed campaign loses at most
// the line being written. A resumed run seeds every recorded report and
// skips the recorded failure points; because the pre-failure execution is
// deterministic, the union converges to the uninterrupted run's report set.
//
// A completed campaign appends one summary line (fp == -1) recording the
// total failure-point count it observed and the reports attributed to the
// pre-failure replay (performance bugs, fp < 0), which no per-point line
// carries. The summary is what lets -merge decide whether the union of
// shard checkpoints covers the whole campaign.
type checkpointLine struct {
	FP      int           `json:"fp"`
	Reports []core.Report `json:"reports,omitempty"`
	// Total and Shards are only set on the summary line: the campaign's
	// failure-point count and the shard layout that wrote it (0 when the
	// campaign was not sharded).
	Total  int `json:"total,omitempty"`
	Shards int `json:"shards,omitempty"`
	// ShadowPeakBytes and ShadowPages are only set on the summary line:
	// the run's peak shadow-PM footprint and cumulative 4 KiB shadow page
	// allocations (zero under -dense-shadow, whose flat arrays appear only
	// in the byte peak). Older checkpoints without them still parse.
	ShadowPeakBytes uint64 `json:"shadow_peak_bytes,omitempty"`
	ShadowPages     uint64 `json:"shadow_pages,omitempty"`
	// Classes and Pruned are only set on the summary line: how many
	// crash-state classes the run actually post-ran and how many member
	// failure points it skipped as duplicates (both zero under -no-prune).
	// Pruned points still write their per-point line, so -merge's coverage
	// proof is unaffected.
	Classes int `json:"classes,omitempty"`
	Pruned  int `json:"pruned,omitempty"`
}

// summaryFP marks the summary line; real failure points are 0-based.
const summaryFP = -1

// checkpointData is a parsed checkpoint: the completed failure points,
// every recorded report (per-point and pre-failure alike), and the total
// failure-point count from the summary line (-1 when no campaign over this
// checkpoint completed yet).
type checkpointData struct {
	done  map[int]bool
	seed  []core.Report
	total int
}

// loadCheckpoint reads a (possibly truncated) checkpoint. Only a trailing
// line that does not parse — the write the crash interrupted — is
// discarded; a corrupt line with valid lines after it is mid-file damage,
// and silently dropping those valid lines would make a resumed or merged
// campaign under-count completed failure points, so it is a load error.
func loadCheckpoint(path string) (checkpointData, error) {
	cp := checkpointData{total: -1}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return cp, nil // nothing recorded yet: a full run
	}
	if err != nil {
		return cp, err
	}
	defer f.Close()

	// bufio.Reader.ReadString has no line-length cap: a failure point that
	// contributed a large report set writes a line well past any fixed
	// Scanner buffer, and resume must still read it.
	var lines []string
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadString('\n')
		if line != "" {
			lines = append(lines, line)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return cp, err
		}
	}

	last := len(lines) - 1
	for last >= 0 && strings.TrimSpace(lines[last]) == "" {
		last--
	}
	cp.done = make(map[int]bool)
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		var l checkpointLine
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			if i == last {
				break // torn tail from the crash; rerun from here
			}
			return checkpointData{total: -1}, fmt.Errorf("%s:%d: corrupt checkpoint line before intact ones (not a torn tail): %v", path, i+1, err)
		}
		if l.FP <= summaryFP {
			if cp.total >= 0 && cp.total != l.Total {
				return checkpointData{total: -1}, fmt.Errorf("%s:%d: summary lines disagree on the failure-point total (%d vs %d); refusing to mix campaigns", path, i+1, cp.total, l.Total)
			}
			cp.total = l.Total
			cp.seed = append(cp.seed, l.Reports...)
			continue
		}
		cp.done[l.FP] = true
		cp.seed = append(cp.seed, l.Reports...)
	}
	return cp, nil
}

// checkpointWriter appends one line per completed failure point. Lines are
// fsynced individually: a checkpoint exists to survive kill -9, so the
// write must be durable before the campaign moves on.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

// openCheckpoint opens the file for appending. Without -resume an existing
// checkpoint is refused rather than silently mixed with a new campaign.
func openCheckpoint(path string, resuming bool) (*checkpointWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resuming {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if os.IsExist(err) {
		return nil, fmt.Errorf("%s exists; pass -resume to continue it or remove it to start over", path)
	}
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f}, nil
}

// record is installed as core.Config.OnPostRunComplete. The detector
// serializes these calls, but the lock keeps the writer safe regardless.
func (w *checkpointWriter) record(fp int, fresh []core.Report) {
	w.append(checkpointLine{FP: fp, Reports: fresh})
}

// recordSummary appends the completion summary: the campaign's total
// failure-point count, the shard layout, and the pre-failure reports
// (fp < 0, i.e. performance bugs from the trace replay) that the per-point
// lines do not carry. Written only when the run was not Incomplete.
func (w *checkpointWriter) recordSummary(res *core.Result, shards int) {
	line := checkpointLine{FP: summaryFP, Total: res.FailurePoints, Shards: shards,
		ShadowPeakBytes: res.ShadowPeakBytes, ShadowPages: res.ShadowPages,
		Classes: res.CrashStateClasses, Pruned: res.PrunedFailurePoints}
	for _, rep := range res.Reports {
		if rep.FailurePoint < 0 {
			line.Reports = append(line.Reports, rep)
		}
	}
	w.append(line)
}

func (w *checkpointWriter) append(l checkpointLine) {
	line, err := json.Marshal(l)
	if err != nil {
		return // Report is always marshalable; defensive only
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "xfdetector: checkpoint write failed: %v\n", err)
		return
	}
	if err := w.f.Sync(); err != nil {
		fmt.Fprintf(os.Stderr, "xfdetector: checkpoint sync failed: %v\n", err)
	}
}

func (w *checkpointWriter) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.f.Close()
}

// writeKeys dumps the sorted deduplication keys, one per line — a stable
// fingerprint of the report set for comparing runs (the kill-and-resume
// test and the CI smoke steps diff these files). An empty report set writes
// an empty file: rendering it as a lone newline would be byte-identical to
// a set holding one empty key.
func writeKeys(path string, reports []core.Report) error {
	keys := make([]string, len(reports))
	for i, r := range reports {
		keys[i] = r.DedupKey()
	}
	sort.Strings(keys)
	out := ""
	if len(keys) > 0 {
		out = strings.Join(keys, "\n") + "\n"
	}
	return os.WriteFile(path, []byte(out), 0o644)
}
