package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/pmemgo/xfdetector/internal/ckpt"
	"github.com/pmemgo/xfdetector/internal/core"
)

// Checkpoint file: one JSON object per line (internal/ckpt), appended and
// fsynced as each failure point's post-run completes, so a killed campaign
// loses at most the line being written. A resumed run seeds every recorded
// report and skips the recorded failure points; because the pre-failure
// execution is deterministic, the union converges to the uninterrupted
// run's report set.
//
// "-checkpoint -" streams the lines to stdout instead of a file (the
// report moves to stderr so stdout stays pure JSONL) — the shard mode a
// -worker runs, forwarding each line to the -serve daemon, which holds the
// durable copy. With -resume, the prior checkpoint is read from stdin.

// stdioCheckpoint is the -checkpoint operand selecting stdout/stdin
// streaming instead of a file.
const stdioCheckpoint = "-"

// summaryFP marks the summary line; real failure points are 0-based.
const summaryFP = ckpt.SummaryFP

// loadCheckpoint reads a (possibly truncated) checkpoint into resume
// state. Only a torn trailing line is tolerated; mid-file corruption is a
// load error (see ckpt.Read). For stdioCheckpoint the lines come from
// stdin — the worker pipes the daemon-held checkpoint into the shard.
func loadCheckpoint(path string) (ckpt.Data, error) {
	var (
		lines []ckpt.Line
		err   error
	)
	if path == stdioCheckpoint {
		lines, err = ckpt.Read(os.Stdin, "<stdin>")
	} else {
		lines, err = ckpt.ReadFile(path)
	}
	if err != nil {
		return ckpt.Data{Total: -1}, err
	}
	return ckpt.Fold(lines, path)
}

// checkpointWriter appends one line per completed failure point. File
// lines are fsynced individually: a checkpoint exists to survive kill -9,
// so the write must be durable before the campaign moves on. The stdout
// variant skips the sync — durability is the daemon's job — and never
// closes the stream it does not own.
type checkpointWriter struct {
	mu   sync.Mutex
	f    *os.File
	sync bool
	owns bool
}

// openCheckpoint opens the checkpoint for appending. Without -resume an
// existing checkpoint is refused rather than silently mixed with a new
// campaign. The stdioCheckpoint operand returns the stdout streamer.
func openCheckpoint(path string, resuming bool) (*checkpointWriter, error) {
	if path == stdioCheckpoint {
		return &checkpointWriter{f: os.Stdout}, nil
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resuming {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if os.IsExist(err) {
		return nil, fmt.Errorf("%s exists; pass -resume to continue it or remove it to start over", path)
	}
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f, sync: true, owns: true}, nil
}

// record is installed as core.Config.OnPostRunComplete. The detector
// serializes these calls, but the lock keeps the writer safe regardless.
// The crash-state fingerprint rides along on every per-point line so the
// -serve daemon can correlate streamed verdicts across shards.
func (w *checkpointWriter) record(fp int, fpr uint64, fresh []core.Report) {
	w.append(ckpt.Line{FP: fp, FPrint: fpr, Reports: fresh})
}

// recordSummary appends the completion summary: the campaign's total
// failure-point count, the shard layout, the per-bucket accounting, and
// the pre-failure reports (fp < 0, i.e. performance bugs from the trace
// replay) that the per-point lines do not carry. Written only when the
// run was not Incomplete.
func (w *checkpointWriter) recordSummary(res *core.Result, shards int) {
	w.append(ckpt.Summary(res, shards))
}

func (w *checkpointWriter) append(l ckpt.Line) {
	line, err := json.Marshal(l)
	if err != nil {
		return // Report is always marshalable; defensive only
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "xfdetector: checkpoint write failed: %v\n", err)
		return
	}
	if !w.sync {
		return
	}
	if err := w.f.Sync(); err != nil {
		fmt.Fprintf(os.Stderr, "xfdetector: checkpoint sync failed: %v\n", err)
	}
}

func (w *checkpointWriter) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.owns {
		w.f.Close()
	}
}

// writeKeys dumps the sorted deduplication keys, one per line — a stable
// fingerprint of the report set for comparing runs (the kill-and-resume
// test and the CI smoke steps diff these files). An empty report set
// writes an empty file.
func writeKeys(path string, reports []core.Report) error {
	return os.WriteFile(path, []byte(ckpt.KeysFileText(ckpt.SortedKeys(reports))), 0o644)
}
