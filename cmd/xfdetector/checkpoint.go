package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/pmemgo/xfdetector/internal/core"
)

// Checkpoint file: one JSON object per line, appended and fsynced as each
// failure point's post-run completes, so a killed campaign loses at most
// the line being written. A resumed run seeds every recorded report and
// skips the recorded failure points; because the pre-failure execution is
// deterministic, the union converges to the uninterrupted run's report set.
type checkpointLine struct {
	FP      int           `json:"fp"`
	Reports []core.Report `json:"reports,omitempty"`
}

// loadCheckpoint reads a (possibly truncated) checkpoint. A trailing line
// that does not parse — the write the crash interrupted — is discarded;
// its failure point simply reruns.
func loadCheckpoint(path string) (map[int]bool, []core.Report, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil, nil // nothing recorded yet: a full run
	}
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	done := make(map[int]bool)
	var seed []core.Report
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var l checkpointLine
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			break // torn tail from the crash; rerun from here
		}
		done[l.FP] = true
		seed = append(seed, l.Reports...)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return done, seed, nil
}

// checkpointWriter appends one line per completed failure point. Lines are
// fsynced individually: a checkpoint exists to survive kill -9, so the
// write must be durable before the campaign moves on.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

// openCheckpoint opens the file for appending. Without -resume an existing
// checkpoint is refused rather than silently mixed with a new campaign.
func openCheckpoint(path string, resuming bool) (*checkpointWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resuming {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if os.IsExist(err) {
		return nil, fmt.Errorf("%s exists; pass -resume to continue it or remove it to start over", path)
	}
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f}, nil
}

// record is installed as core.Config.OnPostRunComplete. The detector
// serializes these calls, but the lock keeps the writer safe regardless.
func (w *checkpointWriter) record(fp int, fresh []core.Report) {
	line, err := json.Marshal(checkpointLine{FP: fp, Reports: fresh})
	if err != nil {
		return // Report is always marshalable; defensive only
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "xfdetector: checkpoint write failed: %v\n", err)
		return
	}
	if err := w.f.Sync(); err != nil {
		fmt.Fprintf(os.Stderr, "xfdetector: checkpoint sync failed: %v\n", err)
	}
}

func (w *checkpointWriter) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.f.Close()
}

// writeKeys dumps the sorted deduplication keys, one per line — a stable
// fingerprint of the report set for comparing runs (the kill-and-resume
// test and the CI smoke step diff these files).
func writeKeys(path string, reports []core.Report) error {
	keys := make([]string, len(reports))
	for i, r := range reports {
		keys[i] = r.DedupKey()
	}
	sort.Strings(keys)
	return os.WriteFile(path, []byte(strings.Join(keys, "\n")+"\n"), 0o644)
}
