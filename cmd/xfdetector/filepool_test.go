package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// CLI tests for file-backed pools: flag validation, pool-file collision,
// kill -9 + -resume over the surviving image, the XFDETECTOR_DISK_FAULT
// injection hook, and the -spawn fleet laying out per-shard pool files
// under -workdir.

// msyncLine extracts the "pool file: ..." accounting line from a run's
// output: ranges, pages written, pages already persisted (compare-skipped).
func msyncLine(t *testing.T, out string) (ranges, written, skipped int) {
	t.Helper()
	m := regexp.MustCompile(`pool file: (\d+) msync range\(s\), (\d+) page\(s\) written, (\d+) already persisted`).
		FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("output has no pool-file msync accounting line:\n%s", out)
	}
	ranges, _ = strconv.Atoi(m[1])
	written, _ = strconv.Atoi(m[2])
	skipped, _ = strconv.Atoi(m[3])
	return ranges, written, skipped
}

// TestFilePoolFlagValidation: the campaign-directory flags are validated
// before any pool file is created.
func TestFilePoolFlagValidation(t *testing.T) {
	for _, args := range []string{
		"-workdir d",                          // workdir without -spawn
		"-workdir d -workload btree",          // ditto, with a workload
		"-spawn 2 -checkpoint c -pool-file p", // per-shard pools need a layout
		"-spawn 2 -checkpoint c -workdir /dev/null/x -pool-file p -workload btree", // uncreatable workdir
	} {
		if code, out := runCLI(t, args); code != 2 {
			t.Errorf("%q exited %d, want 2:\n%s", args, code, out)
		}
	}
}

// TestFileBackedCampaignCLI: a -pool-file campaign reports msync accounting,
// produces the byte-identical key set of the in-memory run, and a second
// fresh campaign over the same pool file is refused.
func TestFileBackedCampaignCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs full detection campaigns")
	}
	const args = "-workload btree -init 2 -test 2 -patch btree-skip-add-leaf"
	dir := t.TempDir()
	refKeys := filepath.Join(dir, "ref-keys.txt")
	code, out := runCLI(t, args+" -keys-out "+refKeys)
	if code != 1 {
		t.Fatalf("in-memory run exited %d, want 1 (seeded bug):\n%s", code, out)
	}

	pool := filepath.Join(dir, "pool.img")
	fileKeys := filepath.Join(dir, "file-keys.txt")
	fcode, fout := runCLI(t, fmt.Sprintf("%s -pool-file %s -keys-out %s", args, pool, fileKeys))
	if fcode != code {
		t.Fatalf("file-backed run exited %d, in-memory exited %d:\n%s", fcode, code, fout)
	}
	if ranges, written, _ := msyncLine(t, fout); ranges == 0 || written == 0 {
		t.Errorf("file-backed run persisted nothing: %d ranges, %d pages:\n%s", ranges, written, fout)
	}
	ref, err := os.ReadFile(refKeys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(fileKeys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Errorf("file-backed keys diverge from in-memory run:\nref:\n%s\nfile:\n%s", ref, got)
	}

	// Collision: without -resume, the surviving image must be an error, not
	// a silently mixed campaign.
	ccode, cout := runCLI(t, fmt.Sprintf("%s -pool-file %s", args, pool))
	if ccode != 2 || !strings.Contains(cout, "already exists") {
		t.Errorf("pool-file collision exited %d (%q), want 2 with an already-exists error", ccode, cout)
	}
}

// TestFileBackedKillAndResume is the CLI half of the resume acceptance
// criterion: a file-backed checkpointed campaign SIGKILLed mid-run and
// resumed over the surviving pool file yields the byte-identical key set of
// an uninterrupted in-memory run, and the resumed incarnation compare-skips
// pages its predecessor already persisted instead of re-msyncing them.
func TestFileBackedKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs a full detection campaign")
	}
	dir := t.TempDir()
	refKeys := filepath.Join(dir, "ref-keys.txt")
	code, out := runCLI(t, campaign+" -keys-out "+refKeys)
	if code != 1 {
		t.Fatalf("in-memory reference run exited %d, want 1:\n%s", code, out)
	}

	pool := filepath.Join(dir, "pool.img")
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	run := fmt.Sprintf("%s -pool-file %s -checkpoint %s", campaign, pool, ckpt)

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "XFDETECTOR_HELPER_ARGS="+run)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for countLines(ckpt) < 5 {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("campaign recorded only %d checkpoint lines in 30s", countLines(ckpt))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killedAt := countLines(ckpt)

	resKeys := filepath.Join(dir, "resumed-keys.txt")
	rcode, rout := runCLI(t, run+" -resume -keys-out "+resKeys)
	if rcode != 1 {
		t.Fatalf("resumed run exited %d, want 1:\n%s", rcode, rout)
	}
	if !strings.Contains(rout, "resumed:") {
		t.Errorf("resumed run reused no failure points (killed at %d lines):\n%s", killedAt, rout)
	}
	// The surviving image already holds every page the killed incarnation
	// persisted; the deterministic replay must find at least some of them
	// byte-identical at their persist boundaries and skip the msync.
	if _, _, skipped := msyncLine(t, rout); skipped == 0 {
		t.Errorf("resumed run compare-skipped no pages — it never consulted the surviving image:\n%s", rout)
	}
	ref, err := os.ReadFile(refKeys)
	if err != nil {
		t.Fatal(err)
	}
	res, err := os.ReadFile(resKeys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, res) {
		t.Errorf("report sets diverge after kill+resume (killed at %d checkpoint lines):\nreference:\n%s\nresumed:\n%s",
			killedAt, ref, res)
	}
}

// TestDiskFaultEnvQuarantine: XFDETECTOR_DISK_FAULT arms a deterministic
// disk fault on the file-backed campaign; the affected failure point is
// quarantined (exit 3, INCOMPLETE, the fault class named) and the surviving
// failure points still converge to the in-memory key set — degradation,
// never fabrication.
func TestDiskFaultEnvQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs full detection campaigns")
	}
	const args = "-workload btree -init 2 -test 2 -patch btree-skip-add-leaf"
	dir := t.TempDir()
	refKeys := filepath.Join(dir, "ref-keys.txt")
	code, out := runCLI(t, args+" -keys-out "+refKeys)
	if code != 1 {
		t.Fatalf("in-memory run exited %d, want 1:\n%s", code, out)
	}

	pool := filepath.Join(dir, "pool.img")
	keys := filepath.Join(dir, "faulted-keys.txt")
	fcode, fout := runCLIEnv(t, []string{diskFaultEnv + "=short-msync:2"},
		fmt.Sprintf("%s -pool-file %s -keys-out %s", args, pool, keys))
	if fcode != 3 {
		t.Fatalf("faulted run exited %d, want 3 (incomplete):\n%s", fcode, fout)
	}
	for _, want := range []string{"INCOMPLETE", "quarantined", "short-msync"} {
		if !strings.Contains(fout, want) {
			t.Errorf("faulted output does not mention %q:\n%s", want, fout)
		}
	}
	ref, err := os.ReadFile(refKeys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Errorf("faulted key set diverges from in-memory run:\nref:\n%s\nfaulted:\n%s", ref, got)
	}
}

// TestSpawnFileBackedWorkdir: -spawn with -pool-file lays out per-shard
// pool files and checkpoints under -workdir, survives a SIGKILLed shard
// whose respawned incarnation reopens its own pool file with -resume, and
// merges to the single-process key set.
func TestSpawnFileBackedWorkdir(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs full detection campaigns")
	}
	dir := t.TempDir()
	refKeys := filepath.Join(dir, "ref-keys.txt")
	code, out := runCLI(t, campaign+" -keys-out "+refKeys)
	if code != 1 {
		t.Fatalf("single-process run exited %d, want 1:\n%s", code, out)
	}

	workdir := filepath.Join(dir, "fleet")
	ckpt := filepath.Join(dir, "spawn.ckpt") // base only; workdir owns the layout
	keys := filepath.Join(dir, "spawn-keys.txt")
	mcode, mout := runCLIEnv(t, []string{spawnTestKillEnv + "=1"},
		fmt.Sprintf("%s -spawn 3 -checkpoint %s -workdir %s -pool-file pool -keys-out %s",
			campaign, ckpt, workdir, keys))
	if mcode != 1 {
		t.Fatalf("orchestrator exited %d, want 1:\n%s", mcode, mout)
	}
	if !strings.Contains(mout, "re-spawning with -resume") {
		t.Fatalf("orchestrator never re-spawned the killed shard:\n%s", mout)
	}
	for i := 0; i < 3; i++ {
		for _, name := range []string{fmt.Sprintf("shard%d.pool", i), fmt.Sprintf("shard%d.ckpt", i)} {
			if _, err := os.Stat(filepath.Join(workdir, name)); err != nil {
				t.Errorf("fleet file %s missing under -workdir: %v", name, err)
			}
		}
	}
	ref, err := os.ReadFile(refKeys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Errorf("merged keys diverge after kill+respawn over pool files:\nref:\n%s\nmerged:\n%s", ref, got)
	}
}
