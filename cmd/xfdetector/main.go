// Command xfdetector runs cross-failure bug detection on one of the
// evaluated PM programs, mirroring the paper artifact's run.sh:
//
//	xfdetector -workload btree -init 5 -test 5 -patch race1...
//
// Workloads: btree, ctree, rbtree, hashmap-tx, hashmap-atomic, redis,
// memcached. Patches are the synthetic bugs of Table 5 (list them with
// -list); an empty patch tests the correct program.
//
// Long campaigns can checkpoint completed failure points with -checkpoint
// and, after a crash or ^C, continue with -resume; see README.md
// ("Resilience & resume"). Campaigns shard across processes with
// -shards/-shard-index (manual), -spawn N (supervised fleet on this
// machine), and -merge (union shard checkpoints into one report); see
// README.md ("Sharded campaigns").
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/pmredis"
	"github.com/pmemgo/xfdetector/internal/record"
	"github.com/pmemgo/xfdetector/internal/serve"
	"github.com/pmemgo/xfdetector/internal/vcache"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

// diskFaultEnv injects one deterministic disk fault class into a
// file-backed campaign (pmem.DiskFaultHooksFromSpec); the CI smoke uses it
// to prove the quarantine path end to end.
const diskFaultEnv = "XFDETECTOR_DISK_FAULT"

var shortNames = map[string]string{
	"btree":          "B-Tree",
	"ctree":          "C-Tree",
	"rbtree":         "RB-Tree",
	"hashmap-tx":     "Hashmap-TX",
	"hashmap-atomic": "Hashmap-Atomic",
}

func main() {
	args := os.Args[1:]
	// A shard spawned by -spawn receives its authoritative argument vector
	// through the environment (see shardArgsEnv); argv carries the same
	// flags for visibility in ps/pkill only.
	if encoded := os.Getenv(shardArgsEnv); encoded != "" {
		if err := json.Unmarshal([]byte(encoded), &args); err != nil {
			fmt.Fprintf(os.Stderr, "xfdetector: bad %s: %v\n", shardArgsEnv, err)
			os.Exit(2)
		}
	}
	os.Exit(realMain(args))
}

// realMain is the whole program behind an exit code, so tests can drive the
// CLI in-process or as a re-exec'd helper. Codes: 0 clean, 1 bugs found,
// 2 usage or harness error, 3 campaign incomplete (cancelled or degraded —
// resume it before trusting coverage).
func realMain(args []string) int {
	fs := flag.NewFlagSet("xfdetector", flag.ContinueOnError)
	var (
		workload    = fs.String("workload", "btree", "btree | ctree | rbtree | hashmap-tx | hashmap-atomic | redis | memcached")
		initSize    = fs.Int("init", 5, "insertions while initializing the PM image (INITSIZE)")
		testSize    = fs.Int("test", 5, "insertions in the pre-failure stage (TESTSIZE)")
		updates     = fs.Int("updates", 1, "value updates in the pre-failure stage")
		removes     = fs.Int("removes", 1, "removals in the pre-failure stage")
		patch       = fs.String("patch", "", "synthetic bug to inject (see -list); empty = correct program")
		list        = fs.Bool("list", false, "list available patches and exit")
		mode        = fs.String("mode", "detect", "detect | trace | original (the Fig. 12b configurations)")
		maxFP       = fs.Int("max-failure-points", 0, "cap on injected failure points (0 = unlimited)")
		poolMB      = fs.Int("pool-mb", 4, "PM pool size in MiB")
		workers     = fs.Int("workers", 1, "post-failure worker goroutines (>1 enables parallel detection)")
		postTimeout = fs.Duration("post-timeout", 0, "wall-clock deadline per post-failure run (0 = none)")
		fullCopy    = fs.Bool("full-copy-snapshots", false, "copy the full PM image at every failure point instead of incremental dirty-page snapshots (ablation)")
		denseShadow = fs.Bool("dense-shadow", false, "use flat per-byte shadow arrays sized to the pool instead of the sparse paged shadow PM (ablation)")
		noPrune     = fs.Bool("no-prune", false, "run every failure point instead of testing one representative per crash-state class (ablation; the report-key set is identical either way)")
		vcachePath  = fs.String("verdict-cache", "", "consult and extend this fsynced on-disk crash-state verdict cache, keyed by (program/config identity, fingerprint): failure points whose class a previous campaign of the identical program resolved cleanly skip their post-runs (CacheHits). With -spawn each shard gets its own cache file; with -serve the daemon holds one under -workdir")
		noCrossShard = fs.Bool("no-cross-shard-prune", false, "ablation: daemon-scheduled shards run every class representative themselves instead of claiming classes against the campaign's cross-shard registry (the report-key set is identical either way)")
		noVCache     = fs.Bool("no-verdict-cache", false, "ablation: ignore the on-disk verdict cache (local -verdict-cache and the -serve daemon's cache alike)")
		updRounds   = fs.Int("update-rounds", 1, "repeat the -updates pass this many times with identical values (the pruning ablation's repetitive-loop shape)")
		ckptPath    = fs.String("checkpoint", "", "append completed failure points to this JSONL file")
		resume      = fs.Bool("resume", false, "skip failure points already recorded in -checkpoint (and reopen the -pool-file, skipping the writeback of already-persisted pages)")
		poolFile    = fs.String("pool-file", "", "back the PM pool with this mmap'd file, persisted with range-batched msync at every ordering point and failure-point snapshot; a fresh campaign refuses an existing file (-resume reopens it). With -spawn the value marks the request and each shard gets <workdir>/shard<i>.pool")
		workdir     = fs.String("workdir", "", "campaign directory for -spawn: per-shard checkpoints (shard<i>.ckpt) and pool files (shard<i>.pool) are created under it")
		keysOut     = fs.String("keys-out", "", "write the sorted deduplicated report keys to this file")
		recordPath  = fs.String("record", "", "record the deterministic pre-failure pass once into this artifact (trace + engine checkpoints + pool deltas) and exit without post-failure runs; shards, -resume, and -serve workers replay it with -from-record instead of re-executing the program")
		fromRecord  = fs.String("from-record", "", "replay the pre-failure stage from this recorded artifact instead of executing the program, fast-forwarding through the nearest engine checkpoint below the first owned failure point; the artifact's program identity must match this campaign's flags")
		noFF        = fs.Bool("no-fast-forward", false, "ablation: -spawn (and daemon-scheduled campaigns) skip the record-once pass, every shard re-executes the pre-failure stage live (the report-key set is identical either way)")
		shards      = fs.Int("shards", 0, "total shards of a partitioned campaign (this process runs failure points fp%%shards == shard-index)")
		shardIndex  = fs.Int("shard-index", -1, "this process's shard in [0, shards)")
		spawn       = fs.Int("spawn", 0, "fork this many shard subprocesses, supervise them (re-spawning crashed shards with -resume), and merge their checkpoints")
		merge       = fs.Bool("merge", false, "merge mode: union the checkpoint files given as arguments into one report (use before positional operands, e.g. -merge -keys-out k.txt a.ckpt b.ckpt)")
		serveAddr   = fs.String("serve", "", "run the distributed campaign daemon on this address (host:port); campaigns arrive over the HTTP/JSON API and are scheduled as shard leases onto -worker processes")
		workerURL   = fs.String("worker", "", "join the fleet of the campaign daemon at this URL: poll for shard leases, run each shard in a subprocess, and stream its checkpoint lines back")
		submitURL   = fs.String("submit", "", "submit the campaign described by the workload flags to the daemon at this URL (-shards N picks the shard count), wait for it, and print the merged report")
		leaseTTL    = fs.Duration("lease-ttl", 15*time.Second, "daemon heartbeat deadline per lease: a worker silent this long loses the lease and its shard is rescheduled with -resume")
		heartbeatIv = fs.Duration("heartbeat", 5*time.Second, "worker keepalive period while a shard child runs")
		killGrace   = fs.Duration("kill-grace", serve.DefaultKillGrace, "grace period after SIGTERM before a supervised shard that ignores cancellation is SIGKILLed (orchestrator and worker teardown)")
		verbose     = fs.Bool("v", false, "print per-run statistics even when clean")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		listPatches()
		return 0
	}
	modes := 0
	for _, on := range []bool{*merge, *spawn != 0, *serveAddr != "", *workerURL != "", *submitURL != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return errorf("-merge, -spawn, -serve, -worker and -submit are mutually exclusive modes")
	}
	if *recordPath != "" && modes > 0 {
		return errorf("-record is a standalone recording pass (-spawn and -serve record automatically; -no-fast-forward disables that)")
	}
	if *fromRecord != "" && (*merge || *serveAddr != "" || *workerURL != "" || *submitURL != "") {
		return errorf("-from-record applies to a detection run or a -spawn fleet; drop it here")
	}
	if *merge {
		if *shards > 0 {
			return errorf("-merge cannot be combined with -shards")
		}
		return runMerge(fs.Args(), *keysOut)
	}
	if *serveAddr != "" {
		if *shards > 0 || *shardIndex >= 0 {
			return errorf("-serve does not take a shard layout; -submit picks -shards per campaign")
		}
		if *vcachePath != "" {
			return errorf("-serve keeps its verdict cache under -workdir; drop -verdict-cache")
		}
		return runServe(*serveAddr, *workdir, *leaseTTL)
	}
	if *workerURL != "" {
		if *shards > 0 || *shardIndex >= 0 || *workdir != "" {
			return errorf("-worker takes its shard assignments from the daemon; drop -shards/-shard-index/-workdir")
		}
		return runWorker(*workerURL, *heartbeatIv, *killGrace)
	}
	if *submitURL != "" {
		switch {
		case *shardIndex >= 0:
			return errorf("-submit does not take -shard-index; the daemon schedules every shard")
		case *shards < 0:
			return errorf("-shards must be >= 0")
		case *workdir != "":
			return errorf("-workdir belongs to the daemon (-serve) or orchestrator (-spawn), not -submit")
		case *ckptPath != "" || *resume:
			return errorf("-submit campaigns checkpoint on the daemon; drop -checkpoint/-resume")
		case *vcachePath != "":
			return errorf("-submit campaigns use the daemon's verdict cache; drop -verdict-cache (-no-verdict-cache opts a campaign out)")
		}
		campaignShards := *shards
		if campaignShards == 0 {
			campaignShards = 1
		}
		return runSubmit(*submitURL, shardBaseArgs(fs), campaignShards, *poolFile != "", *keysOut)
	}
	switch {
	case *shards < 0:
		return errorf("-shards must be >= 0")
	case *shards > 1 && (*shardIndex < 0 || *shardIndex >= *shards):
		return errorf("-shards %d requires -shard-index in [0, %d)", *shards, *shards)
	case *shards <= 1 && *shardIndex >= 0:
		return errorf("-shard-index requires -shards > 1")
	}
	if *workdir != "" && *spawn == 0 {
		return errorf("-workdir requires -spawn (it lays out the fleet's per-shard pool and checkpoint files)")
	}
	if *spawn != 0 {
		switch {
		case *spawn < 2:
			return errorf("-spawn needs at least 2 shards")
		case *shards > 0:
			return errorf("-spawn and -shards are mutually exclusive (-spawn derives the shard layout itself)")
		case *ckptPath == "":
			return errorf("-spawn requires -checkpoint: shard checkpoints are what crash recovery and the final merge consume")
		case *ckptPath == stdioCheckpoint:
			return errorf("-spawn needs per-shard checkpoint files; -checkpoint - (stdout streaming) is for daemon-scheduled shards")
		case *poolFile != "" && *workdir == "":
			return errorf("-spawn with -pool-file requires -workdir: each shard needs its own pool file (two shards sharing one corrupt each other)")
		}
		vc := *vcachePath
		if *noVCache {
			vc = "" // lay no cache files the shards would ignore anyway
		}
		return runSpawn(spawnConfig{
			shards:        *spawn,
			baseArgs:      shardBaseArgs(fs),
			ckptBase:      *ckptPath,
			workdir:       *workdir,
			poolFile:      *poolFile != "",
			vcache:        vc,
			resume:        *resume,
			keysOut:       *keysOut,
			killGrace:     *killGrace,
			fromRecord:    *fromRecord,
			noFastForward: *noFF,
		})
	}

	cfg := core.Config{
		PoolSize:                    uint64(*poolMB) << 20,
		MaxFailurePoints:            *maxFP,
		Workers:                     *workers,
		PostRunTimeout:              *postTimeout,
		DisableIncrementalSnapshots: *fullCopy,
		DenseShadow:                 *denseShadow,
		DisablePruning:              *noPrune,
	}
	// Deterministic disk-fault injection for the degradation smoke tests:
	// XFDETECTOR_DISK_FAULT=disk-full:N | short-msync:N | torn-mmap:N arms
	// the class at the N-th msync-range consultation (and its retry), so a
	// file-backed campaign quarantines exactly the affected failure point.
	var diskHooks *pmem.FaultHooks
	if spec := os.Getenv(diskFaultEnv); spec != "" {
		h, err := pmem.DiskFaultHooksFromSpec(spec)
		if err != nil {
			return errorf("%s: %v", diskFaultEnv, err)
		}
		diskHooks = h
		cfg.FaultHooks = h
	}
	if *poolFile != "" {
		cfg.Backend = pmem.FileBackend{Path: *poolFile, Resume: *resume, Hooks: diskHooks}
	}
	if *shards > 1 {
		cfg.ShardCount = *shards
		cfg.ShardIndex = *shardIndex
	}
	switch *mode {
	case "detect":
		cfg.Mode = core.ModeDetect
	case "trace":
		cfg.Mode = core.ModeTraceOnly
	case "original":
		cfg.Mode = core.ModeOriginal
	default:
		return errorf("unknown mode %q", *mode)
	}

	if *recordPath != "" {
		switch {
		case *fromRecord != "":
			return errorf("-record and -from-record are mutually exclusive")
		case *mode != "detect":
			return errorf("-record requires -mode detect (the artifact carries detection state)")
		case *shards > 0 || *shardIndex >= 0:
			return errorf("-record captures the whole campaign once; drop -shards/-shard-index")
		case *ckptPath != "" || *resume:
			return errorf("-record runs no post-failure executions; drop -checkpoint/-resume")
		case *poolFile != "":
			return errorf("-record needs a memory-backed pool (the artifact replaces the durable image); drop -pool-file")
		case *denseShadow:
			return errorf("-record needs the sparse shadow (engine checkpoints have no dense form); drop -dense-shadow")
		case *vcachePath != "":
			return errorf("-record runs no post-failure executions; drop -verdict-cache")
		}
	}
	if *fromRecord != "" && *noFF {
		return errorf("-no-fast-forward runs the pre-failure stage live; drop -from-record")
	}
	var recordFile *os.File
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			return errorf("creating -record artifact: %v", err)
		}
		defer f.Close()
		recordFile = f
		cfg.Record = record.NewWriter(f, programIdentity(*workload, *patch, *mode, *initSize,
			*testSize, *updates, *updRounds, *removes, *poolMB, *maxFP), cfg.PoolSize, 0)
	}
	if *fromRecord != "" {
		a, err := record.Load(*fromRecord)
		if err != nil {
			return errorf("%v", err)
		}
		id := programIdentity(*workload, *patch, *mode, *initSize,
			*testSize, *updates, *updRounds, *removes, *poolMB, *maxFP)
		if a.Identity != id {
			return errorf("artifact %s was recorded for a different program/config (identity %016x, this campaign %016x); re-record it",
				*fromRecord, a.Identity, id)
		}
		cfg.Replay = a
	}

	if *resume && *ckptPath == "" {
		return errorf("-resume requires -checkpoint")
	}
	var ckptW *checkpointWriter
	if *ckptPath != "" {
		if *resume {
			cp, err := loadCheckpoint(*ckptPath)
			if err != nil {
				return errorf("loading checkpoint: %v", err)
			}
			cfg.CompletedFailurePoints = cp.Done
			cfg.SeedReports = cp.Seed
		}
		w, err := openCheckpoint(*ckptPath, *resume)
		if err != nil {
			return errorf("opening checkpoint: %v", err)
		}
		defer w.close()
		ckptW = w
		cfg.OnPostRunComplete = w.record
	}
	if *vcachePath != "" && *noPrune {
		return errorf("-verdict-cache requires pruning; drop -no-prune")
	}
	if cfg.Mode == core.ModeDetect && !*noPrune {
		// Cross-process verdict sharing. A daemon-scheduled shard (the
		// -worker sets the env pair) claims classes against the campaign's
		// registry over the lease API; a standalone campaign consults the
		// on-disk cross-campaign cache directly.
		url, lease := os.Getenv(serve.VerdictURLEnv), os.Getenv(serve.VerdictLeaseEnv)
		switch {
		case url != "" && lease != "" && !*noCrossShard:
			cfg.Verdicts = &serve.LeaseVerdicts{Client: &serve.Client{BaseURL: url}, Lease: lease}
		case *vcachePath != "" && !*noVCache:
			vc, err := vcache.Open(*vcachePath)
			if err != nil {
				return errorf("opening verdict cache: %v", err)
			}
			defer vc.Close()
			cfg.Verdicts = vc.Bind(programIdentity(*workload, *patch, *mode, *initSize,
				*testSize, *updates, *updRounds, *removes, *poolMB, *maxFP))
		}
	}
	if *shards > 1 {
		// Shard progress on stderr: the -spawn orchestrator streams these
		// lines, prefixed per shard, while the fleet runs.
		inner := cfg.OnPostRunComplete
		completed := 0
		cfg.OnPostRunComplete = func(fp int, fpr uint64, fresh []core.Report) {
			if inner != nil {
				inner(fp, fpr, fresh)
			}
			completed++ // callbacks are serialized by the detector
			if completed%shardProgressEvery == 0 {
				fmt.Fprintf(os.Stderr, "shard %d/%d: %d failure point(s) completed\n", *shardIndex, *shards, completed)
			}
		}
	}

	target, err := buildTarget(*workload, *patch, workloads.TargetConfig{
		InitSize:     *initSize,
		TestSize:     *testSize,
		Updates:      *updates,
		UpdateRounds: *updRounds,
		Removes:      *removes,
		PostOps:      true,
	})
	if err != nil {
		return errorf("%v", err)
	}

	// ^C (or SIGTERM) cancels at the next failure-point boundary; the
	// partial result is printed, marked INCOMPLETE, and — when
	// checkpointing — resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := core.RunContext(ctx, cfg, target)
	if err != nil {
		return errorf("detection failed: %v", err)
	}
	if recordFile != nil {
		if err := recordFile.Sync(); err != nil {
			return errorf("syncing -record artifact: %v", err)
		}
		fmt.Fprintf(os.Stderr, "recorded %d failure point(s) to %s\n", res.FailurePoints, *recordPath)
	}
	if ckptW != nil && !res.Incomplete {
		// The campaign over this checkpoint finished: record the summary
		// line (failure-point total + pre-failure reports) that -merge
		// needs to prove the union of shard checkpoints is complete.
		ckptW.recordSummary(res, *shards)
	}
	if *shards > 1 {
		fmt.Fprintf(os.Stderr, "shard %d/%d: done — %d post-run(s), %d pruned, %d delegated, %d report(s)\n",
			*shardIndex, *shards, res.PostRuns, res.PrunedFailurePoints, res.OtherShardFailurePoints, len(res.Reports))
	}
	// With -checkpoint - the checkpoint JSONL owns stdout (a -worker
	// supervisor is parsing it), so the human-facing report moves to stderr.
	resultOut := io.Writer(os.Stdout)
	if *ckptPath == stdioCheckpoint {
		resultOut = os.Stderr
	}
	fmt.Fprint(resultOut, res)
	if *verbose {
		fmt.Fprintf(resultOut, "mode=%s pool=%dMiB post-timeout=%s\n", cfg.Mode, *poolMB, *postTimeout)
	}
	if *keysOut != "" {
		if err := writeKeys(*keysOut, res.Reports); err != nil {
			return errorf("writing keys: %v", err)
		}
	}
	switch {
	case res.Incomplete:
		return 3
	case !res.Clean():
		return 1
	}
	return 0
}

func buildTarget(workload, patch string, cfg workloads.TargetConfig) (core.Target, error) {
	switch workload {
	case "redis":
		opts := pmredis.Options{}
		switch patch {
		case "":
		case "init-race", "bug3":
			opts.InitRaceBug = true
		default:
			return core.Target{}, fmt.Errorf("redis patches: init-race (the paper's Bug 3)")
		}
		return redisTarget(opts, cfg), nil
	case "memcached":
		if patch != "" {
			return core.Target{}, fmt.Errorf("memcached has no seeded patches")
		}
		return memcachedTarget(cfg), nil
	}

	name, ok := shortNames[workload]
	if !ok {
		return core.Target{}, fmt.Errorf("unknown workload %q", workload)
	}
	m, _ := workloads.MakerFor(name)
	if patch != "" {
		fault, err := resolvePatch(name, patch)
		if err != nil {
			return core.Target{}, err
		}
		cfg.Fault = fault
		cfg.FaultInCreate = true
	}
	return workloads.DetectionTarget(m, cfg), nil
}

// resolvePatch accepts either a full fault name or an unambiguous suffix.
func resolvePatch(workload, patch string) (string, error) {
	var matches []string
	for _, fl := range workloads.FaultsFor(workload) {
		if fl.Name == patch {
			return fl.Name, nil
		}
		if strings.Contains(fl.Name, patch) {
			matches = append(matches, fl.Name)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return "", fmt.Errorf("no patch matching %q for %s (see -list)", patch, workload)
	default:
		return "", fmt.Errorf("ambiguous patch %q: %s", patch, strings.Join(matches, ", "))
	}
}

func listPatches() {
	fmt.Println("Synthetic bug patches (Table 5 of the paper):")
	for _, m := range workloads.Makers() {
		fmt.Printf("\n%s:\n", m.Name)
		for _, fl := range workloads.FaultsFor(m.Name) {
			fmt.Printf("  %-32s %-28s [%s] %s\n", fl.Name, fl.Class, fl.Suite, fl.Description)
		}
	}
	fmt.Printf("\nredis:\n  %-32s %-28s [%s] %s\n",
		"init-race", core.CrossFailureRace, "paper", "Bug 3: num_dict_entries initialized outside the transaction")
}

// shardProgressEvery paces the per-shard stderr progress lines.
const shardProgressEvery = 10

// programIdentity hashes the flags that determine a campaign's crash-state
// classes and reports into the verdict cache's identity key. Shard layout
// and worker count are deliberately excluded — every shard of every layout
// of the same program computes the same fingerprints and verdicts — while
// anything that changes the traced program (workload, patch, sizes,
// mode, the failure-point cap) must change the identity: fingerprints
// cover only the pre-failure state, so two programs differing solely in
// their post-failure stage collide on fingerprints and are told apart by
// identity alone.
func programIdentity(workload, patch, mode string, initSize, testSize, updates, updRounds, removes, poolMB, maxFP int) uint64 {
	return vcache.Identity(
		"workload="+workload,
		"patch="+patch,
		"mode="+mode,
		fmt.Sprintf("init=%d", initSize),
		fmt.Sprintf("test=%d", testSize),
		fmt.Sprintf("updates=%d", updates),
		fmt.Sprintf("update-rounds=%d", updRounds),
		fmt.Sprintf("removes=%d", removes),
		fmt.Sprintf("pool-mb=%d", poolMB),
		fmt.Sprintf("max-failure-points=%d", maxFP),
	)
}

// shardBaseArgs rebuilds the workload/engine flags a -spawn orchestrator
// forwards to every shard: every flag the user set except the ones the
// orchestrator owns (shard layout, checkpoint paths, merge/keys output).
// The -name=value form keeps boolean flags parseable.
func shardBaseArgs(fs *flag.FlagSet) []string {
	owned := map[string]bool{
		"spawn": true, "merge": true, "shards": true, "shard-index": true,
		"checkpoint": true, "resume": true, "keys-out": true, "list": true,
		"pool-file": true, "workdir": true, "verdict-cache": true,
		"record": true, "from-record": true,
		"serve": true, "worker": true, "submit": true,
		"lease-ttl": true, "heartbeat": true, "kill-grace": true,
	}
	var args []string
	fs.Visit(func(f *flag.Flag) {
		if !owned[f.Name] {
			args = append(args, fmt.Sprintf("-%s=%s", f.Name, f.Value.String()))
		}
	})
	return args
}

func errorf(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "xfdetector: "+format+"\n", args...)
	return 2
}
