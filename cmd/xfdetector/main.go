// Command xfdetector runs cross-failure bug detection on one of the
// evaluated PM programs, mirroring the paper artifact's run.sh:
//
//	xfdetector -workload btree -init 5 -test 5 -patch race1...
//
// Workloads: btree, ctree, rbtree, hashmap-tx, hashmap-atomic, redis,
// memcached. Patches are the synthetic bugs of Table 5 (list them with
// -list); an empty patch tests the correct program.
//
// Long campaigns can checkpoint completed failure points with -checkpoint
// and, after a crash or ^C, continue with -resume; see README.md
// ("Resilience & resume").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmredis"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

var shortNames = map[string]string{
	"btree":          "B-Tree",
	"ctree":          "C-Tree",
	"rbtree":         "RB-Tree",
	"hashmap-tx":     "Hashmap-TX",
	"hashmap-atomic": "Hashmap-Atomic",
}

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain is the whole program behind an exit code, so tests can drive the
// CLI in-process or as a re-exec'd helper. Codes: 0 clean, 1 bugs found,
// 2 usage or harness error, 3 campaign incomplete (cancelled or degraded —
// resume it before trusting coverage).
func realMain(args []string) int {
	fs := flag.NewFlagSet("xfdetector", flag.ContinueOnError)
	var (
		workload    = fs.String("workload", "btree", "btree | ctree | rbtree | hashmap-tx | hashmap-atomic | redis | memcached")
		initSize    = fs.Int("init", 5, "insertions while initializing the PM image (INITSIZE)")
		testSize    = fs.Int("test", 5, "insertions in the pre-failure stage (TESTSIZE)")
		updates     = fs.Int("updates", 1, "value updates in the pre-failure stage")
		removes     = fs.Int("removes", 1, "removals in the pre-failure stage")
		patch       = fs.String("patch", "", "synthetic bug to inject (see -list); empty = correct program")
		list        = fs.Bool("list", false, "list available patches and exit")
		mode        = fs.String("mode", "detect", "detect | trace | original (the Fig. 12b configurations)")
		maxFP       = fs.Int("max-failure-points", 0, "cap on injected failure points (0 = unlimited)")
		poolMB      = fs.Int("pool-mb", 4, "PM pool size in MiB")
		workers     = fs.Int("workers", 1, "post-failure worker goroutines (>1 enables parallel detection)")
		postTimeout = fs.Duration("post-timeout", 0, "wall-clock deadline per post-failure run (0 = none)")
		ckptPath    = fs.String("checkpoint", "", "append completed failure points to this JSONL file")
		resume      = fs.Bool("resume", false, "skip failure points already recorded in -checkpoint")
		keysOut     = fs.String("keys-out", "", "write the sorted deduplicated report keys to this file")
		verbose     = fs.Bool("v", false, "print per-run statistics even when clean")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		listPatches()
		return 0
	}

	cfg := core.Config{
		PoolSize:         uint64(*poolMB) << 20,
		MaxFailurePoints: *maxFP,
		Workers:          *workers,
		PostRunTimeout:   *postTimeout,
	}
	switch *mode {
	case "detect":
		cfg.Mode = core.ModeDetect
	case "trace":
		cfg.Mode = core.ModeTraceOnly
	case "original":
		cfg.Mode = core.ModeOriginal
	default:
		return errorf("unknown mode %q", *mode)
	}

	if *resume && *ckptPath == "" {
		return errorf("-resume requires -checkpoint")
	}
	if *ckptPath != "" {
		if *resume {
			done, seed, err := loadCheckpoint(*ckptPath)
			if err != nil {
				return errorf("loading checkpoint: %v", err)
			}
			cfg.CompletedFailurePoints = done
			cfg.SeedReports = seed
		}
		w, err := openCheckpoint(*ckptPath, *resume)
		if err != nil {
			return errorf("opening checkpoint: %v", err)
		}
		defer w.close()
		cfg.OnPostRunComplete = w.record
	}

	target, err := buildTarget(*workload, *patch, workloads.TargetConfig{
		InitSize: *initSize,
		TestSize: *testSize,
		Updates:  *updates,
		Removes:  *removes,
		PostOps:  true,
	})
	if err != nil {
		return errorf("%v", err)
	}

	// ^C (or SIGTERM) cancels at the next failure-point boundary; the
	// partial result is printed, marked INCOMPLETE, and — when
	// checkpointing — resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := core.RunContext(ctx, cfg, target)
	if err != nil {
		return errorf("detection failed: %v", err)
	}
	fmt.Print(res)
	if *verbose {
		fmt.Printf("mode=%s pool=%dMiB post-timeout=%s\n", cfg.Mode, *poolMB, *postTimeout)
	}
	if *keysOut != "" {
		if err := writeKeys(*keysOut, res.Reports); err != nil {
			return errorf("writing keys: %v", err)
		}
	}
	switch {
	case res.Incomplete:
		return 3
	case !res.Clean():
		return 1
	}
	return 0
}

func buildTarget(workload, patch string, cfg workloads.TargetConfig) (core.Target, error) {
	switch workload {
	case "redis":
		opts := pmredis.Options{}
		switch patch {
		case "":
		case "init-race", "bug3":
			opts.InitRaceBug = true
		default:
			return core.Target{}, fmt.Errorf("redis patches: init-race (the paper's Bug 3)")
		}
		return redisTarget(opts, cfg), nil
	case "memcached":
		if patch != "" {
			return core.Target{}, fmt.Errorf("memcached has no seeded patches")
		}
		return memcachedTarget(cfg), nil
	}

	name, ok := shortNames[workload]
	if !ok {
		return core.Target{}, fmt.Errorf("unknown workload %q", workload)
	}
	m, _ := workloads.MakerFor(name)
	if patch != "" {
		fault, err := resolvePatch(name, patch)
		if err != nil {
			return core.Target{}, err
		}
		cfg.Fault = fault
		cfg.FaultInCreate = true
	}
	return workloads.DetectionTarget(m, cfg), nil
}

// resolvePatch accepts either a full fault name or an unambiguous suffix.
func resolvePatch(workload, patch string) (string, error) {
	var matches []string
	for _, fl := range workloads.FaultsFor(workload) {
		if fl.Name == patch {
			return fl.Name, nil
		}
		if strings.Contains(fl.Name, patch) {
			matches = append(matches, fl.Name)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return "", fmt.Errorf("no patch matching %q for %s (see -list)", patch, workload)
	default:
		return "", fmt.Errorf("ambiguous patch %q: %s", patch, strings.Join(matches, ", "))
	}
}

func listPatches() {
	fmt.Println("Synthetic bug patches (Table 5 of the paper):")
	for _, m := range workloads.Makers() {
		fmt.Printf("\n%s:\n", m.Name)
		for _, fl := range workloads.FaultsFor(m.Name) {
			fmt.Printf("  %-32s %-28s [%s] %s\n", fl.Name, fl.Class, fl.Suite, fl.Description)
		}
	}
	fmt.Printf("\nredis:\n  %-32s %-28s [%s] %s\n",
		"init-race", core.CrossFailureRace, "paper", "Bug 3: num_dict_entries initialized outside the transaction")
}

func errorf(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "xfdetector: "+format+"\n", args...)
	return 2
}
