// Command xfdetector runs cross-failure bug detection on one of the
// evaluated PM programs, mirroring the paper artifact's run.sh:
//
//	xfdetector -workload btree -init 5 -test 5 -patch race1...
//
// Workloads: btree, ctree, rbtree, hashmap-tx, hashmap-atomic, redis,
// memcached. Patches are the synthetic bugs of Table 5 (list them with
// -list); an empty patch tests the correct program.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmredis"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

var shortNames = map[string]string{
	"btree":          "B-Tree",
	"ctree":          "C-Tree",
	"rbtree":         "RB-Tree",
	"hashmap-tx":     "Hashmap-TX",
	"hashmap-atomic": "Hashmap-Atomic",
}

func main() {
	var (
		workload = flag.String("workload", "btree", "btree | ctree | rbtree | hashmap-tx | hashmap-atomic | redis | memcached")
		initSize = flag.Int("init", 5, "insertions while initializing the PM image (INITSIZE)")
		testSize = flag.Int("test", 5, "insertions in the pre-failure stage (TESTSIZE)")
		updates  = flag.Int("updates", 1, "value updates in the pre-failure stage")
		removes  = flag.Int("removes", 1, "removals in the pre-failure stage")
		patch    = flag.String("patch", "", "synthetic bug to inject (see -list); empty = correct program")
		list     = flag.Bool("list", false, "list available patches and exit")
		mode     = flag.String("mode", "detect", "detect | trace | original (the Fig. 12b configurations)")
		maxFP    = flag.Int("max-failure-points", 0, "cap on injected failure points (0 = unlimited)")
		poolMB   = flag.Int("pool-mb", 4, "PM pool size in MiB")
		workers  = flag.Int("workers", 1, "post-failure worker goroutines (>1 enables parallel detection)")
		verbose  = flag.Bool("v", false, "print per-run statistics even when clean")
	)
	flag.Parse()

	if *list {
		listPatches()
		return
	}

	cfg := core.Config{
		PoolSize:         uint64(*poolMB) << 20,
		MaxFailurePoints: *maxFP,
		Workers:          *workers,
	}
	switch *mode {
	case "detect":
		cfg.Mode = core.ModeDetect
	case "trace":
		cfg.Mode = core.ModeTraceOnly
	case "original":
		cfg.Mode = core.ModeOriginal
	default:
		fatalf("unknown mode %q", *mode)
	}

	target, err := buildTarget(*workload, *patch, workloads.TargetConfig{
		InitSize: *initSize,
		TestSize: *testSize,
		Updates:  *updates,
		Removes:  *removes,
		PostOps:  true,
	})
	if err != nil {
		fatalf("%v", err)
	}

	res, err := core.Run(cfg, target)
	if err != nil {
		fatalf("detection failed: %v", err)
	}
	fmt.Print(res)
	if *verbose {
		fmt.Printf("mode=%s pool=%dMiB\n", cfg.Mode, *poolMB)
	}
	if !res.Clean() {
		os.Exit(1)
	}
}

func buildTarget(workload, patch string, cfg workloads.TargetConfig) (core.Target, error) {
	switch workload {
	case "redis":
		opts := pmredis.Options{}
		switch patch {
		case "":
		case "init-race", "bug3":
			opts.InitRaceBug = true
		default:
			return core.Target{}, fmt.Errorf("redis patches: init-race (the paper's Bug 3)")
		}
		return redisTarget(opts, cfg), nil
	case "memcached":
		if patch != "" {
			return core.Target{}, fmt.Errorf("memcached has no seeded patches")
		}
		return memcachedTarget(cfg), nil
	}

	name, ok := shortNames[workload]
	if !ok {
		return core.Target{}, fmt.Errorf("unknown workload %q", workload)
	}
	m, _ := workloads.MakerFor(name)
	if patch != "" {
		fault, err := resolvePatch(name, patch)
		if err != nil {
			return core.Target{}, err
		}
		cfg.Fault = fault
		cfg.FaultInCreate = true
	}
	return workloads.DetectionTarget(m, cfg), nil
}

// resolvePatch accepts either a full fault name or an unambiguous suffix.
func resolvePatch(workload, patch string) (string, error) {
	var matches []string
	for _, fl := range workloads.FaultsFor(workload) {
		if fl.Name == patch {
			return fl.Name, nil
		}
		if strings.Contains(fl.Name, patch) {
			matches = append(matches, fl.Name)
		}
	}
	switch len(matches) {
	case 1:
		return matches[0], nil
	case 0:
		return "", fmt.Errorf("no patch matching %q for %s (see -list)", patch, workload)
	default:
		return "", fmt.Errorf("ambiguous patch %q: %s", patch, strings.Join(matches, ", "))
	}
}

func listPatches() {
	fmt.Println("Synthetic bug patches (Table 5 of the paper):")
	for _, m := range workloads.Makers() {
		fmt.Printf("\n%s:\n", m.Name)
		for _, fl := range workloads.FaultsFor(m.Name) {
			fmt.Printf("  %-32s %-28s [%s] %s\n", fl.Name, fl.Class, fl.Suite, fl.Description)
		}
	}
	fmt.Printf("\nredis:\n  %-32s %-28s [%s] %s\n",
		"init-race", core.CrossFailureRace, "paper", "Bug 3: num_dict_entries initialized outside the transaction")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "xfdetector: "+format+"\n", args...)
	os.Exit(2)
}
