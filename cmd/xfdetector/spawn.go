package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/pmemgo/xfdetector/internal/ckpt"
	"github.com/pmemgo/xfdetector/internal/serve"
)

// Orchestrator mode: -spawn N forks N shard subprocesses of this binary
// (-shards N -shard-index i), each with its own checkpoint
// (<base>.shard<i>), streams their progress lines to stderr prefixed with
// the shard index, re-spawns a crashed shard with -resume so its checkpoint
// picks up where it died, and finally merges the shard checkpoints into the
// single campaign report. A shard that exits 3 (Incomplete: cancelled or
// quarantined) is final — the same states a single process would report —
// and surfaces through the merged union's coverage check instead of being
// respawned forever.

// shardArgsEnv carries the shard's argument vector, JSON-encoded, to the
// child process. The child's real argv carries the same flags (so ps and
// pkill can see them), but the environment copy is authoritative: when the
// orchestrator is a re-exec'd test binary, argv must not reach the testing
// package's flag parser. The -worker loop spawns shards with the same
// convention, so the constant lives in internal/serve.
const shardArgsEnv = serve.ShardArgsEnv

// spawnTestKillEnv names a shard index whose first incarnation the
// orchestrator SIGKILLs once that shard has durably checkpointed at least
// two failure points. Test hook only: it exercises the crash-respawn path
// deterministically (the CI sharding smoke, TestShardedCampaignEquivalence
// and TestSpawnRespawnsKilledShard set it); the respawned incarnation is
// never re-killed.
const spawnTestKillEnv = "XFDETECTOR_SPAWN_TEST_KILL"

// maxShardAttempts bounds the respawn chain per shard: the initial spawn
// plus three crash recoveries.
const maxShardAttempts = 4

type spawnConfig struct {
	shards   int
	baseArgs []string // workload/engine flags shared by every shard
	ckptBase string
	// workdir, when set, is the campaign directory: shard checkpoints and
	// pool files are laid out under it as shard<i>.ckpt / shard<i>.pool.
	workdir string
	// poolFile requests file-backed shard pools (-pool-file on each shard,
	// pointing at its own file under workdir).
	poolFile bool
	// vcache, when set, gives every shard a cross-campaign verdict cache.
	// Each shard gets its own file (shard<i>.vcache under workdir, else
	// <path>.shard<i>): shards never share a class — equal fingerprints
	// land on the same shard by the round-robin split — so per-shard files
	// lose no sharing, and concurrent processes never contend on one file.
	vcache  string
	resume  bool
	keysOut string
	// killGrace is the SIGTERM→SIGKILL escalation window for shards that
	// ignore the cancellation request (-kill-grace).
	killGrace time.Duration
	// fromRecord hands every shard an existing recorded artifact
	// (-from-record) instead of recording one; noFastForward skips
	// recording entirely — the ablation where every shard re-executes the
	// pre-failure stage live.
	fromRecord    string
	noFastForward bool
}

func shardCkptPath(base string, idx int) string {
	return fmt.Sprintf("%s.shard%d", base, idx)
}

// shardCkpt places shard checkpoints under the campaign workdir when one is
// configured, falling back to the legacy <base>.shard<i> layout.
func (sc spawnConfig) shardCkpt(idx int) string {
	if sc.workdir != "" {
		return filepath.Join(sc.workdir, fmt.Sprintf("shard%d.ckpt", idx))
	}
	return shardCkptPath(sc.ckptBase, idx)
}

// shardPool is shard idx's private pool file. Pool files are never shared:
// pmem's advisory lock turns an accidental collision into a clear error
// instead of two shards corrupting one image.
func (sc spawnConfig) shardPool(idx int) string {
	return filepath.Join(sc.workdir, fmt.Sprintf("shard%d.pool", idx))
}

// shardVCache is shard idx's private verdict-cache file.
func (sc spawnConfig) shardVCache(idx int) string {
	if sc.workdir != "" {
		return filepath.Join(sc.workdir, fmt.Sprintf("shard%d.vcache", idx))
	}
	return fmt.Sprintf("%s.shard%d", sc.vcache, idx)
}

// artifactPath is where the orchestrator records the campaign artifact.
func (sc spawnConfig) artifactPath() string {
	if sc.workdir != "" {
		return filepath.Join(sc.workdir, "campaign.xfdr")
	}
	return sc.ckptBase + ".xfdr"
}

// recordCampaign runs the record-once child (-record) that captures the
// pre-failure pass every shard then replays. Exit codes 0 and 1 (clean /
// pre-failure bugs reported) both leave a complete artifact.
func recordCampaign(ctx context.Context, sc spawnConfig, path string) (int, error) {
	args := append(append([]string{}, sc.baseArgs...), "-record", path)
	encoded, err := json.Marshal(args)
	if err != nil {
		return 0, err
	}
	exe, err := os.Executable()
	if err != nil {
		return 0, err
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), shardArgsEnv+"="+string(encoded))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return 0, err
	}
	if err := cmd.Start(); err != nil {
		return 0, err
	}
	fmt.Fprintf(os.Stderr, "[orchestrator] recording pre-failure pass (pid %d) into %s\n", cmd.Process.Pid, path)
	waitDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			serve.TerminateThenKill(cmd.Process, waitDone, sc.killGrace)
		case <-waitDone:
		}
	}()
	forwardLabeled(stderr, "recorder")
	err = cmd.Wait()
	close(waitDone)
	if err == nil {
		return 0, nil
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), nil
	}
	return 0, err
}

// runSpawn supervises the shard fleet and merges its checkpoints.
func runSpawn(sc spawnConfig) int {
	if sc.workdir != "" {
		if err := os.MkdirAll(sc.workdir, 0o755); err != nil {
			return errorf("creating -workdir: %v", err)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Record the deterministic pre-failure pass once, then hand the artifact
	// to every shard: N shards replay one recording instead of N identical
	// live executions. Recording failure is not fatal — the fleet falls back
	// to live pre-failure stages, which is always sound, just slower.
	if sc.fromRecord == "" && !sc.noFastForward {
		path := sc.artifactPath()
		if code, err := recordCampaign(ctx, sc, path); err != nil || code > 1 {
			fmt.Fprintf(os.Stderr, "[orchestrator] record pass failed (exit %d, %v); shards run the pre-failure stage live\n", code, err)
		} else {
			sc.fromRecord = path
		}
	}

	codes := make([]int, sc.shards)
	var wg sync.WaitGroup
	for i := 0; i < sc.shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = superviseShard(ctx, sc, i)
		}(i)
	}
	wg.Wait()

	paths := make([]string, sc.shards)
	for i := range paths {
		paths[i] = sc.shardCkpt(i)
	}
	for i, code := range codes {
		if code == 2 {
			return errorf("shard %d/%d failed with a usage or harness error; not merging", i, sc.shards)
		}
	}
	// Merge leniently: a shard that crashed before creating its checkpoint
	// leaves a hole the coverage check reports as Incomplete (exit 3).
	res, err := mergeCheckpoints(paths, false)
	if err != nil {
		return errorf("merging shard checkpoints: %v", err)
	}
	fmt.Print(res)
	if sc.keysOut != "" {
		if err := writeKeys(sc.keysOut, res.Reports); err != nil {
			return errorf("writing keys: %v", err)
		}
	}
	switch {
	case res.Incomplete:
		return 3
	case !res.Clean():
		return 1
	}
	return 0
}

// superviseShard runs one shard to a final exit code, re-spawning with
// -resume after a crash (death by signal). Exit codes 0/1/3 are final shard
// outcomes; 2 aborts (a config error will fail every incarnation alike).
func superviseShard(ctx context.Context, sc spawnConfig, idx int) int {
	ckpt := sc.shardCkpt(idx)
	for attempt := 1; ; attempt++ {
		resume := sc.resume || attempt > 1
		code, err := runShardOnce(ctx, sc, idx, ckpt, resume, attempt == 1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "[orchestrator] shard %d/%d: %v\n", idx, sc.shards, err)
			return 2
		}
		switch code {
		case 0, 1, 3:
			fmt.Fprintf(os.Stderr, "[orchestrator] shard %d/%d exited %d\n", idx, sc.shards, code)
			return code
		case 2:
			fmt.Fprintf(os.Stderr, "[orchestrator] shard %d/%d exited 2 (usage or harness error)\n", idx, sc.shards)
			return 2
		}
		if ctx.Err() != nil || attempt >= maxShardAttempts {
			fmt.Fprintf(os.Stderr, "[orchestrator] shard %d/%d died (exit %d); giving up after %d attempt(s)\n",
				idx, sc.shards, code, attempt)
			return 3
		}
		fmt.Fprintf(os.Stderr, "[orchestrator] shard %d/%d died (exit %d); re-spawning with -resume (attempt %d/%d)\n",
			idx, sc.shards, code, attempt+1, maxShardAttempts)
	}
}

// runShardOnce spawns one incarnation of a shard and waits for it,
// forwarding its output to stderr line by line with a shard prefix. The
// returned code is the process exit status (-1 = killed by a signal);
// the error is reserved for spawn-infrastructure failures.
func runShardOnce(ctx context.Context, sc spawnConfig, idx int, ckpt string, resume, firstIncarnation bool) (int, error) {
	args := append(append([]string{}, sc.baseArgs...),
		"-shards", strconv.Itoa(sc.shards),
		"-shard-index", strconv.Itoa(idx),
		"-checkpoint", ckpt)
	if sc.poolFile {
		args = append(args, "-pool-file", sc.shardPool(idx))
	}
	if sc.vcache != "" {
		args = append(args, "-verdict-cache", sc.shardVCache(idx))
	}
	if resume {
		// -resume covers both the checkpoint and, for file-backed shards,
		// the surviving pool file: a respawned incarnation reopens it and
		// compare-skips the pages its predecessor already persisted.
		args = append(args, "-resume")
	}
	if sc.fromRecord != "" {
		args = append(args, "-from-record", sc.fromRecord)
	}
	encoded, err := json.Marshal(args)
	if err != nil {
		return 0, err
	}
	exe, err := os.Executable()
	if err != nil {
		return 0, err
	}

	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), shardArgsEnv+"="+string(encoded))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return 0, err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return 0, err
	}
	if err := cmd.Start(); err != nil {
		return 0, err
	}
	fmt.Fprintf(os.Stderr, "[orchestrator] spawned shard %d/%d (pid %d)%s\n",
		idx, sc.shards, cmd.Process.Pid, map[bool]string{true: " with -resume", false: ""}[resume])

	var fwd sync.WaitGroup
	for _, pipe := range []io.Reader{stdout, stderr} {
		fwd.Add(1)
		go func(r io.Reader) {
			defer fwd.Done()
			forwardLines(r, idx)
		}(pipe)
	}

	// Cancellation (^C on the orchestrator) asks the shard to stop at its
	// next failure-point boundary; its checkpoint stays resumable. A shard
	// that ignores the SIGTERM — wedged in a post-run the deadline didn't
	// catch — is SIGKILLed after the grace period, so shutdown can never
	// hang on fwd.Wait()/cmd.Wait() forever.
	waitDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			serve.TerminateThenKill(cmd.Process, waitDone, sc.killGrace)
		case <-waitDone:
		}
	}()
	if firstIncarnation && os.Getenv(spawnTestKillEnv) == strconv.Itoa(idx) {
		go killShardWhenCheckpointed(ckpt, cmd.Process, waitDone)
	}

	fwd.Wait()
	err = cmd.Wait()
	close(waitDone)
	if err == nil {
		return 0, nil
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), nil
	}
	return 0, err
}

// forwardLines copies one shard output stream to stderr, one prefixed line
// at a time so the fleet's interleaved progress stays readable. It reads
// through ckpt.ForEachLine — bufio.Reader, no line cap — because the old
// bufio.Scanner with its fixed 1 MiB buffer would hit ErrTooLong on one
// long line (a big report set printed by a shard) and silently drop the
// rest of the stream for the shard's lifetime. Long lines are truncated
// and marked for display only; nothing parsed goes through here.
func forwardLines(r io.Reader, idx int) {
	forwardLabeled(r, fmt.Sprintf("shard %d", idx))
}

// forwardLabeled is forwardLines with an arbitrary prefix (the record-once
// child is not a shard).
func forwardLabeled(r io.Reader, label string) {
	ckpt.ForEachLine(r, func(line string) error {
		fmt.Fprintf(os.Stderr, "[%s] %s\n", label, ckpt.Truncate(line, forwardLineCap))
		return nil
	})
}

// forwardLineCap bounds forwarded display lines, mirroring the worker
// loop's cap in internal/serve.
const forwardLineCap = 16 << 10

// killShardWhenCheckpointed implements the test hook: SIGKILL the shard
// once its checkpoint holds at least two durable lines, guaranteeing the
// respawned incarnation has real work both behind and ahead of it.
func killShardWhenCheckpointed(ckpt string, proc *os.Process, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.After(2 * time.Millisecond):
		}
		if countCheckpointLines(ckpt) >= 2 {
			proc.Kill()
			return
		}
	}
}

func countCheckpointLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	return n
}
