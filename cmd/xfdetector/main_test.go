package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the CLI when re-exec'd by the kill-and-resume and
// sharding tests: with XFDETECTOR_SHARD_ARGS (JSON, set by the -spawn
// orchestrator) or XFDETECTOR_HELPER_ARGS set, the test binary IS
// xfdetector. The shard vector must win: an orchestrator running as a
// helper passes its own helper env down to the shards it spawns.
func TestMain(m *testing.M) {
	if encoded := os.Getenv(shardArgsEnv); encoded != "" {
		var args []string
		if err := json.Unmarshal([]byte(encoded), &args); err != nil {
			fmt.Fprintf(os.Stderr, "bad %s: %v\n", shardArgsEnv, err)
			os.Exit(2)
		}
		os.Exit(realMain(args))
	}
	if args := os.Getenv("XFDETECTOR_HELPER_ARGS"); args != "" {
		os.Exit(realMain(strings.Fields(args)))
	}
	os.Exit(m.Run())
}

func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	return runCLIEnv(t, nil, args...)
}

// runCLIEnv is runCLI with extra environment entries for the re-exec'd
// process (e.g. the orchestrator's deterministic kill hook), usable from
// parallel tests where t.Setenv is not.
func runCLIEnv(t *testing.T, extraEnv []string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "XFDETECTOR_HELPER_ARGS="+strings.Join(args, " "))
	cmd.Env = append(cmd.Env, extraEnv...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running helper: %v", err)
	}
	return code, out.String()
}

const campaign = "-workload btree -init 3 -test 80 -patch btree-skip-add-leaf"

// TestKillAndResume is the acceptance test for crash-safe resume: a
// checkpointed campaign killed with SIGKILL mid-run and then resumed must
// produce the byte-identical deduplicated report set of an uninterrupted
// run — sequentially and with the parallel engine's worker-goroutine
// checkpoint callbacks.
func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs a full detection campaign")
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := fmt.Sprintf("%s -workers %d", campaign, workers)
			dir := t.TempDir()
			refKeys := filepath.Join(dir, "ref-keys.txt")
			ckpt := filepath.Join(dir, "ckpt.jsonl")
			resKeys := filepath.Join(dir, "resumed-keys.txt")

			// Reference: the same campaign, uninterrupted.
			code, out := runCLI(t, run+" -keys-out "+refKeys)
			if code != 0 && code != 1 {
				t.Fatalf("reference run exited %d:\n%s", code, out)
			}

			// Start the checkpointed campaign and SIGKILL it once enough
			// failure points are durably recorded — no chance to flush or
			// trap anything.
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(),
				"XFDETECTOR_HELPER_ARGS="+run+" -checkpoint "+ckpt)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(30 * time.Second)
			for countLines(ckpt) < 5 {
				if time.Now().After(deadline) {
					cmd.Process.Kill()
					cmd.Wait()
					t.Fatalf("campaign recorded only %d checkpoint lines in 30s", countLines(ckpt))
				}
				time.Sleep(5 * time.Millisecond)
			}
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			cmd.Wait()
			killedAt := countLines(ckpt)

			// Resume and compare.
			code, out = runCLI(t, run+" -checkpoint "+ckpt+" -resume -keys-out "+resKeys)
			if code != 0 && code != 1 {
				t.Fatalf("resumed run exited %d:\n%s", code, out)
			}
			if !strings.Contains(out, "resumed:") {
				t.Errorf("resumed run does not report reused failure points (killed at %d lines):\n%s", killedAt, out)
			}
			ref, err := os.ReadFile(refKeys)
			if err != nil {
				t.Fatal(err)
			}
			res, err := os.ReadFile(resKeys)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, res) {
				t.Errorf("report sets diverge after kill+resume (killed at %d checkpoint lines):\nreference:\n%s\nresumed:\n%s",
					killedAt, ref, res)
			}
		})
	}
}

// TestTruncatedCheckpointTolerated: a torn trailing line (the write the
// crash interrupted) is discarded on load instead of failing the resume.
func TestTruncatedCheckpointTolerated(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	if err := os.WriteFile(ckpt, []byte(`{"fp":0}
{"fp":1,"reports":[{"Class":0,"ReaderIP":"a.go:1","WriterIP":"b.go:2"}]}
{"fp":2,"repor`), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := loadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Done) != 2 || !cp.Done[0] || !cp.Done[1] {
		t.Errorf("done = %v, want fps 0 and 1 (torn fp 2 discarded)", cp.Done)
	}
	if len(cp.Seed) != 1 || cp.Seed[0].ReaderIP != "a.go:1" {
		t.Errorf("seed = %v, want the one recorded report", cp.Seed)
	}
	if cp.Total != -1 {
		t.Errorf("total = %d, want -1 (no summary line)", cp.Total)
	}
}

// TestFreshCheckpointRefusesExisting: without -resume, an existing
// checkpoint must be an error, not a silent mixed campaign.
func TestFreshCheckpointRefusesExisting(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := os.WriteFile(ckpt, []byte(`{"fp":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openCheckpoint(ckpt, false); err == nil {
		t.Fatal("openCheckpoint overwrote an existing campaign")
	}
	if w, err := openCheckpoint(ckpt, true); err != nil {
		t.Fatalf("resume open failed: %v", err)
	} else {
		w.close()
	}
}

func countLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte("\n"))
}
