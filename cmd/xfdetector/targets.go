package main

import (
	"github.com/pmemgo/xfdetector/internal/bench"
	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmredis"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

// redisTarget and memcachedTarget delegate to the shared experiment
// harness so the CLI and xfdbench drive identical targets.
func redisTarget(opts pmredis.Options, cfg workloads.TargetConfig) core.Target {
	return bench.RedisTarget(opts, cfg)
}

func memcachedTarget(cfg workloads.TargetConfig) core.Target {
	return bench.MemcachedTarget(cfg)
}
