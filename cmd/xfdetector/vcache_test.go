package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestVerdictCacheFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-verdict-cache", "v.cache", "-no-prune"},
		{"-serve", "127.0.0.1:0", "-verdict-cache", "v.cache"},
		{"-submit", "http://127.0.0.1:1", "-verdict-cache", "v.cache"},
	} {
		if code := realMain(args); code != 2 {
			t.Errorf("realMain(%v) = %d, want 2", args, code)
		}
	}
}

var postRunsRe = regexp.MustCompile(`post-failure runs: (\d+)`)
var cacheHitsRe = regexp.MustCompile(`verdict cache: (\d+) failure point`)

// cleanCampaign seeds a write-after-commit race: it reports real bugs but
// never corrupts the structure, so no post-run faults. That matters here —
// a faulting post-run poisons its class (PR 6's value-bearing rule) and
// dirty verdicts are never cached, so only a fault-free campaign can prove
// the warm run post-runs exactly zero. The default campaign's
// btree-skip-add-leaf patch trips the consistency checker and would
// legitimately re-run its poisoned classes every time.
const cleanCampaign = "-workload btree -init 3 -test 80 -patch btree-write-after-commit"

func extract(t *testing.T, re *regexp.Regexp, out string) int {
	t.Helper()
	m := re.FindStringSubmatch(out)
	if m == nil {
		return 0
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestWarmVerdictCacheSecondRun is the cross-campaign acceptance test: a
// repeat campaign against the cache the first one filled post-runs nothing,
// attributes every class from the cache, and reports the byte-identical
// key set. A third run of a different program must share none of it.
func TestWarmVerdictCacheSecondRun(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs full detection campaigns")
	}
	dir := t.TempDir()
	cache := filepath.Join(dir, "verdicts.cache")
	coldKeys := filepath.Join(dir, "cold.txt")
	warmKeys := filepath.Join(dir, "warm.txt")
	run := cleanCampaign + " -verdict-cache " + cache

	code, out := runCLI(t, run+" -keys-out "+coldKeys)
	if code != 0 && code != 1 {
		t.Fatalf("cold run exited %d:\n%s", code, out)
	}
	if hits := extract(t, cacheHitsRe, out); hits != 0 {
		t.Errorf("cold run claims %d cache hits:\n%s", hits, out)
	}
	coldPost := extract(t, postRunsRe, out)
	if coldPost == 0 {
		t.Fatalf("cold run reports no post-runs:\n%s", out)
	}

	code, out = runCLI(t, run+" -keys-out "+warmKeys)
	if code != 0 && code != 1 {
		t.Fatalf("warm run exited %d:\n%s", code, out)
	}
	if post := extract(t, postRunsRe, out); post != 0 {
		t.Errorf("warm run still post-ran %d failure points, want 0:\n%s", post, out)
	}
	if hits := extract(t, cacheHitsRe, out); hits == 0 {
		t.Errorf("warm run reports no cache hits:\n%s", out)
	}
	cold, err := os.ReadFile(coldKeys)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := os.ReadFile(warmKeys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm key set diverges from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	// -no-verdict-cache must ignore the warm cache entirely.
	code, out = runCLI(t, run+" -no-verdict-cache")
	if code != 0 && code != 1 {
		t.Fatalf("opted-out run exited %d:\n%s", code, out)
	}
	if hits := extract(t, cacheHitsRe, out); hits != 0 {
		t.Errorf("-no-verdict-cache run still hit the cache %d times:\n%s", hits, out)
	}

	// A different program (an extra update round changes the traced
	// execution) shares nothing despite the same cache file.
	code, out = runCLI(t, run+" -update-rounds 3")
	if code != 0 && code != 1 {
		t.Fatalf("different-program run exited %d:\n%s", code, out)
	}
	if hits := extract(t, cacheHitsRe, out); hits != 0 {
		t.Errorf("a different program reused %d cached verdicts:\n%s", hits, out)
	}
}

// TestSpawnShardVerdictCaches: a -spawn fleet lays per-shard cache files
// and a repeat fleet reuses them — the merged key set stays identical and
// the summed summaries land in the cache_hits bucket.
func TestSpawnShardVerdictCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs shard fleets")
	}
	dir := t.TempDir()
	workdir := filepath.Join(dir, "fleet")
	coldKeys := filepath.Join(dir, "cold.txt")
	warmKeys := filepath.Join(dir, "warm.txt")
	base := cleanCampaign + " -spawn 2 -workdir " + workdir +
		" -checkpoint " + filepath.Join(dir, "c.ckpt") + " -verdict-cache marker"

	code, out := runCLI(t, base+" -keys-out "+coldKeys)
	if code != 0 && code != 1 {
		t.Fatalf("cold fleet exited %d:\n%s", code, out)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(filepath.Join(workdir, fmt.Sprintf("shard%d.vcache", i))); err != nil {
			t.Errorf("shard %d cache file missing: %v", i, err)
		}
	}

	// Fresh checkpoints, same workdir: the shard caches are warm.
	warmdir := filepath.Join(dir, "fleet2")
	for i := 0; i < 2; i++ {
		src := filepath.Join(workdir, fmt.Sprintf("shard%d.vcache", i))
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(warmdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(warmdir, fmt.Sprintf("shard%d.vcache", i)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warmBase := cleanCampaign + " -spawn 2 -workdir " + warmdir +
		" -checkpoint " + filepath.Join(dir, "c2.ckpt") + " -verdict-cache marker"
	code, out = runCLI(t, warmBase+" -keys-out "+warmKeys)
	if code != 0 && code != 1 {
		t.Fatalf("warm fleet exited %d:\n%s", code, out)
	}
	if hits := extract(t, cacheHitsRe, out); hits == 0 {
		t.Errorf("warm fleet reports no cache hits in the merged result:\n%s", out)
	}
	if post := extract(t, postRunsRe, out); post != 0 {
		t.Errorf("warm fleet still post-ran %d failure points, want 0:\n%s", post, out)
	}

	cold, err := os.ReadFile(coldKeys)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := os.ReadFile(warmKeys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm fleet key set diverges:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if strings.TrimSpace(string(cold)) == "" {
		t.Error("campaign found no bugs; the equivalence proves nothing")
	}
}
