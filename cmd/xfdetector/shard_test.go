package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Sharded-campaign tests at the CLI level: manual -shards/-shard-index
// runs merged with -merge, and the -spawn orchestrator with its
// crash-respawn supervision. All of them pin the contract that the merged
// report key set is byte-identical to the single-process campaign's
// -keys-out.

// TestShardFlagValidation: inconsistent shard flags are usage errors, not
// silently partial campaigns.
func TestShardFlagValidation(t *testing.T) {
	for _, args := range []string{
		"-shards 2",                           // no -shard-index
		"-shards 2 -shard-index 2",            // index out of range
		"-shard-index 0",                      // index without -shards
		"-spawn 2",                            // no -checkpoint
		"-spawn 1 -checkpoint c",              // fewer than 2 shards
		"-spawn 2 -shards 2 -checkpoint c",    // conflicting layouts
		"-merge -spawn 2",                     // conflicting modes
		"-merge",                              // nothing to merge
		"-merge /nonexistent/definitely.ckpt", // typo'd operand
	} {
		if code, out := runCLI(t, args); code != 2 {
			t.Errorf("%q exited %d, want 2:\n%s", args, code, out)
		}
	}
}

// shardTable is the Table 4 workload matrix the sharded-equivalence
// acceptance criterion runs over: the five micro benchmarks with a seeded
// bug, Redis with the paper's Bug 3, and Memcached clean (whose empty
// report set also exercises the empty -keys-out encoding).
var shardTable = []struct {
	name string
	args string
}{
	{"btree", "-workload btree -init 2 -test 2 -patch btree-skip-add-leaf"},
	{"ctree", "-workload ctree -init 2 -test 2 -patch ctree-skip-add-count"},
	{"rbtree", "-workload rbtree -init 2 -test 2 -patch rbt-skip-add-root"},
	{"hashmap-tx", "-workload hashmap-tx -init 2 -test 2 -patch hmtx-skip-add-slot"},
	{"hashmap-atomic", "-workload hashmap-atomic -init 2 -test 2 -patch hma-sem-inverted-dirty"},
	{"redis", "-workload redis -init 2 -test 2 -patch init-race"},
	{"memcached", "-workload memcached -init 2 -test 2"},
}

// TestShardedCampaignEquivalence: for every workload in the equivalence
// table, an N-shard campaign (N ∈ {2, 3}) driven by the -spawn
// orchestrator merges to the byte-identical key set of the single-process
// run — including when one shard is SIGKILLed mid-run and re-spawned with
// -resume (the 3-shard variant arms the orchestrator's deterministic
// kill hook on shard 1).
func TestShardedCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs full detection campaigns")
	}
	for _, tt := range shardTable {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			refKeys := filepath.Join(dir, "ref-keys.txt")
			code, out := runCLI(t, tt.args+" -keys-out "+refKeys)
			if code != 0 && code != 1 {
				t.Fatalf("single-process run exited %d:\n%s", code, out)
			}
			ref, err := os.ReadFile(refKeys)
			if err != nil {
				t.Fatal(err)
			}

			for _, shards := range []int{2, 3} {
				ckpt := filepath.Join(dir, fmt.Sprintf("n%d.ckpt", shards))
				keys := filepath.Join(dir, fmt.Sprintf("n%d-keys.txt", shards))
				var env []string
				if shards == 3 {
					env = []string{spawnTestKillEnv + "=1"}
				}
				mcode, mout := runCLIEnv(t, env, fmt.Sprintf("%s -spawn %d -checkpoint %s -keys-out %s", tt.args, shards, ckpt, keys))
				if mcode != code {
					t.Fatalf("spawn %d exited %d, single-process run exited %d:\n%s", shards, mcode, code, mout)
				}
				got, err := os.ReadFile(keys)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ref, got) {
					t.Errorf("spawn %d merged keys diverge from single-process run:\nref:\n%s\nmerged:\n%s\norchestrator output:\n%s",
						shards, ref, got, mout)
				}
			}
		})
	}
}

// TestManualShardingAndMerge: the two-terminal workflow — each shard run
// by hand with -shards/-shard-index and its own checkpoint, then -merge.
// A merge over a strict subset of the shards must exit 3 (the union does
// not cover the campaign); the full merge must equal the single-process
// key set byte for byte.
func TestManualShardingAndMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs full detection campaigns")
	}
	const base = "-workload btree -init 2 -test 4 -patch btree-skip-add-leaf"
	dir := t.TempDir()
	refKeys := filepath.Join(dir, "ref-keys.txt")
	refCode, out := runCLI(t, base+" -keys-out "+refKeys)
	if refCode != 1 {
		t.Fatalf("single-process run exited %d, want 1 (seeded bug):\n%s", refCode, out)
	}

	const shards = 3
	paths := make([]string, shards)
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("s%d.ckpt", i))
		code, out := runCLI(t, fmt.Sprintf("%s -shards %d -shard-index %d -checkpoint %s", base, shards, i, paths[i]))
		if code != 0 && code != 1 {
			t.Fatalf("shard %d exited %d:\n%s", i, code, out)
		}
		if !strings.Contains(out, fmt.Sprintf("shard %d/%d:", i, shards)) {
			t.Errorf("shard %d did not report its shard accounting:\n%s", i, out)
		}
	}

	// Partial union: the orchestration equivalent of a lost shard.
	code, out := runCLI(t, "-merge "+paths[0]+" "+paths[2])
	if code != 3 {
		t.Fatalf("partial merge exited %d, want 3 (union does not cover the campaign):\n%s", code, out)
	}
	if !strings.Contains(out, "INCOMPLETE") {
		t.Errorf("partial merge does not report incompleteness:\n%s", out)
	}

	mergedKeys := filepath.Join(dir, "merged-keys.txt")
	code, out = runCLI(t, fmt.Sprintf("-merge -keys-out %s %s", mergedKeys, strings.Join(paths, " ")))
	if code != refCode {
		t.Fatalf("full merge exited %d, want %d:\n%s", code, refCode, out)
	}
	ref, err := os.ReadFile(refKeys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(mergedKeys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Errorf("merged keys diverge from single-process run:\nref:\n%s\nmerged:\n%s", ref, got)
	}
}

// TestSpawnRespawnsKilledShard: on a campaign long enough that the kill
// hook reliably lands mid-run, the orchestrator must actually re-spawn the
// SIGKILLed shard with -resume and still merge to the single-process key
// set.
func TestSpawnRespawnsKilledShard(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs a full detection campaign")
	}
	dir := t.TempDir()
	refKeys := filepath.Join(dir, "ref-keys.txt")
	code, out := runCLI(t, campaign+" -keys-out "+refKeys)
	if code != 1 {
		t.Fatalf("single-process run exited %d, want 1:\n%s", code, out)
	}

	ckpt := filepath.Join(dir, "spawn.ckpt")
	keys := filepath.Join(dir, "spawn-keys.txt")
	mcode, mout := runCLIEnv(t, []string{spawnTestKillEnv + "=1"},
		fmt.Sprintf("%s -spawn 3 -checkpoint %s -keys-out %s", campaign, ckpt, keys))
	if mcode != 1 {
		t.Fatalf("orchestrator exited %d, want 1:\n%s", mcode, mout)
	}
	if !strings.Contains(mout, "re-spawning with -resume") {
		t.Fatalf("orchestrator never re-spawned the killed shard:\n%s", mout)
	}
	if !strings.Contains(mout, "resumed:") {
		t.Errorf("re-spawned shard did not resume from its checkpoint:\n%s", mout)
	}
	ref, err := os.ReadFile(refKeys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, got) {
		t.Errorf("merged keys diverge after kill+respawn:\nref:\n%s\nmerged:\n%s", ref, got)
	}
}
