package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/pmemgo/xfdetector/internal/ckpt"
	"github.com/pmemgo/xfdetector/internal/core"
)

// Merge mode: union shard checkpoints into one deduplicated report.
//
//	xfdetector -merge shard0.ckpt shard1.ckpt shard2.ckpt [-keys-out keys.txt]
//
// The mechanics live in ckpt.Merger, which the -serve daemon also drives
// incrementally as workers stream their lines in; this path just feeds it
// whole files. The merged result reuses the CLI exit-code contract —
// 0 clean, 1 bugs, 2 unreadable or inconsistent checkpoints, 3 union
// incomplete — and its buckets are summed from the shard summaries, so
// the merged Result satisfies the same PostRuns + Pruned + OtherShard +
// Resumed + Skipped == FailurePoints invariant as any single run.

// mergeCheckpoints unions the named checkpoints into a single Result with
// reports deduplicated by DedupKey. Missing files are an error when
// strict — a typo'd -merge operand must not read as an empty shard — and
// tolerated by the orchestrator, whose crashed shards may never have
// created their file (the coverage check still reports the hole).
func mergeCheckpoints(paths []string, strict bool) (*core.Result, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no checkpoint files to merge")
	}
	m := ckpt.NewMerger()
	for _, path := range paths {
		if strict {
			if _, err := os.Stat(path); err != nil {
				return nil, err
			}
		}
		lines, err := ckpt.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if err := m.AddAll(path, lines); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
	}
	return m.Result(fmt.Sprintf("merge of %d checkpoint(s)", len(paths))), nil
}

// runMerge is the -merge entry point: union, print, optionally write the
// key fingerprint, and exit by the shared contract.
func runMerge(paths []string, keysOut string) int {
	res, err := mergeCheckpoints(paths, true)
	if err != nil {
		return errorf("merging checkpoints: %v", err)
	}
	fmt.Print(res)
	fmt.Printf("merged checkpoints: %s\n", strings.Join(paths, ", "))
	if keysOut != "" {
		if err := writeKeys(keysOut, res.Reports); err != nil {
			return errorf("writing keys: %v", err)
		}
	}
	switch {
	case res.Incomplete:
		return 3
	case !res.Clean():
		return 1
	}
	return 0
}
