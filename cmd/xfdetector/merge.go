package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/pmemgo/xfdetector/internal/core"
)

// Merge mode: union shard checkpoints into one deduplicated report.
//
//	xfdetector -merge shard0.ckpt shard1.ckpt shard2.ckpt [-keys-out keys.txt]
//
// Sharded campaigns run the identical deterministic pre-failure execution,
// so their checkpoints agree on failure-point numbering; the union of their
// per-point lines is the single-process campaign's report set once every
// failure point is covered. Coverage is decided against the summary lines:
// each completed (shard) campaign records the total failure-point count it
// observed, and the merge requires every point in [0, total) to be present.
// The merged result reuses the CLI exit-code contract — 0 clean, 1 bugs,
// 2 unreadable or inconsistent checkpoints, 3 union incomplete.

// mergeCheckpoints unions the named checkpoints into a single Result with
// reports deduplicated by DedupKey. Missing files are an error when
// strict — a typo'd -merge operand must not read as an empty shard — and
// tolerated by the orchestrator, whose crashed shards may never have
// created their file (the coverage check still reports the hole).
func mergeCheckpoints(paths []string, strict bool) (*core.Result, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no checkpoint files to merge")
	}
	seen := make(map[string]bool)
	var reports []core.Report
	done := make(map[int]bool)
	total := -1
	for _, path := range paths {
		if strict {
			if _, err := os.Stat(path); err != nil {
				return nil, err
			}
		}
		cp, err := loadCheckpoint(path)
		if err != nil {
			return nil, err
		}
		if cp.total >= 0 {
			if total >= 0 && total != cp.total {
				return nil, fmt.Errorf("%s: failure-point total %d disagrees with %d from earlier checkpoints; these shards ran different campaigns", path, cp.total, total)
			}
			total = cp.total
		}
		for fp := range cp.done {
			done[fp] = true
		}
		for _, rep := range cp.seed {
			if k := rep.DedupKey(); !seen[k] {
				seen[k] = true
				reports = append(reports, rep)
			}
		}
	}

	res := &core.Result{
		Target:   fmt.Sprintf("merge of %d checkpoint(s)", len(paths)),
		Reports:  reports,
		PostRuns: len(done),
	}
	maxFP := -1
	for fp := range done {
		if fp > maxFP {
			maxFP = fp
		}
	}
	switch {
	case total < 0:
		// No shard finished its campaign, so the true failure-point count
		// is unknown; whatever was recorded cannot be shown complete.
		res.FailurePoints = maxFP + 1
		res.Incomplete = true
		res.IncompleteReason = "no checkpoint carries a completion summary; the campaign's failure-point total is unknown"
		res.SkippedFailurePoints = missingBelow(done, maxFP+1)
	default:
		res.FailurePoints = total
		switch {
		case maxFP >= total:
			// A per-point line outside [0, total) contradicts the summary.
			// The degenerate case used to slip through as full coverage: a
			// summary claiming total 0 merged with nonzero checkpointed
			// failure points left missingBelow(done, 0) == 0, and the union
			// exited 0/1 instead of 3. The checkpoints disagree about the
			// campaign, so the union cannot be shown complete.
			res.Incomplete = true
			res.IncompleteReason = fmt.Sprintf("checkpoint records failure point %d but the completion summary claims only %d; these checkpoints describe different campaigns", maxFP, total)
			res.SkippedFailurePoints = missingBelow(done, total)
		case missingBelow(done, total) > 0:
			res.Incomplete = true
			res.IncompleteReason = fmt.Sprintf("union covers %d of %d failure points", len(done), total)
			res.SkippedFailurePoints = missingBelow(done, total)
		}
	}
	return res, nil
}

// missingBelow counts failure points in [0, n) absent from done.
func missingBelow(done map[int]bool, n int) int {
	missing := 0
	for fp := 0; fp < n; fp++ {
		if !done[fp] {
			missing++
		}
	}
	return missing
}

// runMerge is the -merge entry point: union, print, optionally write the
// key fingerprint, and exit by the shared contract.
func runMerge(paths []string, keysOut string) int {
	res, err := mergeCheckpoints(paths, true)
	if err != nil {
		return errorf("merging checkpoints: %v", err)
	}
	fmt.Print(res)
	fmt.Printf("merged checkpoints: %s\n", strings.Join(paths, ", "))
	if keysOut != "" {
		if err := writeKeys(keysOut, res.Reports); err != nil {
			return errorf("writing keys: %v", err)
		}
	}
	switch {
	case res.Incomplete:
		return 3
	case !res.Clean():
		return 1
	}
	return 0
}
