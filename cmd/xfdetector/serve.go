package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"github.com/pmemgo/xfdetector/internal/ckpt"
	"github.com/pmemgo/xfdetector/internal/serve"
	"github.com/pmemgo/xfdetector/internal/vcache"
)

// Distributed campaign modes. The daemon and workers share one binary:
//
//	xfdetector -serve 0.0.0.0:7433 -workdir /var/lib/xfd     # daemon
//	xfdetector -worker http://daemon:7433                     # per machine
//	xfdetector -submit http://daemon:7433 -shards 8 \
//	    -workload btree -test 500 -patch btree-skip-add-leaf  # a campaign
//
// The submit mode blocks until the campaign resolves and exits by the
// usual contract (0 clean, 1 bugs, 2 failed, 3 incomplete).

// workerCrashEnv is the deterministic worker crash hook for the serve
// tests and CI smoke: XFDETECTOR_WORKER_TEST_CRASH=N makes the worker
// SIGKILL its shard child after streaming N checkpoint lines and exit
// without telling the daemon — a machine loss the lease expiry must
// absorb.
const workerCrashEnv = "XFDETECTOR_WORKER_TEST_CRASH"

// runServe hosts the campaign daemon until SIGINT/SIGTERM.
func runServe(addr, workdir string, leaseTTL time.Duration) int {
	if workdir == "" {
		dir, err := os.MkdirTemp("", "xfdserve-")
		if err != nil {
			return errorf("creating serve workdir: %v", err)
		}
		workdir = dir
	} else if err := os.MkdirAll(workdir, 0o755); err != nil {
		return errorf("creating -workdir: %v", err)
	}

	srv := serve.NewServer(workdir, leaseTTL)
	// The daemon owns the cross-campaign verdict cache: one file under the
	// workdir, shared by every campaign it ever schedules.
	cache, err := vcache.Open(filepath.Join(workdir, "verdicts.cache"))
	if err != nil {
		return errorf("opening verdict cache: %v", err)
	}
	defer cache.Close()
	srv.Cache = cache
	// Record-once launcher: the daemon execs this binary with -record to
	// capture each campaign's pre-failure pass into its campaign directory;
	// workers then fetch the artifact over their leases.
	exe, err := os.Executable()
	if err != nil {
		return errorf("locating daemon binary: %v", err)
	}
	srv.Record = func(dir string, args []string) (string, error) {
		return recordForDaemon(exe, dir, args)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return errorf("listening on %s: %v", addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "[serve] campaign daemon listening on %s (workdir %s, lease TTL %s)\n",
		ln.Addr(), workdir, leaseTTL)
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return errorf("serving: %v", err)
	}
	return 0
}

// recordForDaemon runs one campaign's record-once child and returns the
// artifact path. Exit 0 and 1 (clean / pre-failure bugs reported) both
// leave a complete artifact.
func recordForDaemon(exe, dir string, baseArgs []string) (string, error) {
	path := filepath.Join(dir, "campaign.xfdr")
	args := append(append([]string{}, baseArgs...), "-record", path)
	encoded, err := json.Marshal(args)
	if err != nil {
		return "", err
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), serve.ShardArgsEnv+"="+string(encoded))
	out, err := cmd.CombinedOutput()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) && ee.ExitCode() == 1 {
			return path, nil // pre-failure bugs reported; the artifact is complete
		}
		return "", fmt.Errorf("record child: %v: %s", err, ckpt.Truncate(string(out), 2048))
	}
	return path, nil
}

// runWorker joins a daemon's fleet until SIGINT/SIGTERM. The worker execs
// this same binary for shard children.
func runWorker(daemonURL string, heartbeat, killGrace time.Duration) int {
	exe, err := os.Executable()
	if err != nil {
		return errorf("locating worker binary: %v", err)
	}
	host, _ := os.Hostname()
	var caps []string
	if runtime.GOOS == "linux" {
		// File-backed pools are mmap/msync-based and linux-only; only
		// linux workers can run -pool-file campaign shards.
		caps = append(caps, serve.CapFileBacked)
	}
	w := &serve.Worker{
		Client:         &serve.Client{BaseURL: daemonURL},
		ID:             fmt.Sprintf("%s-%d", host, os.Getpid()),
		Exe:            exe,
		Caps:           caps,
		HeartbeatEvery: heartbeat,
		Grace:          killGrace,
	}
	if spec := os.Getenv(workerCrashEnv); spec != "" {
		if _, err := fmt.Sscanf(spec, "%d", &w.CrashAfterLines); err != nil || w.CrashAfterLines < 1 {
			return errorf("bad %s=%q: want a positive line count", workerCrashEnv, spec)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch err := w.Run(ctx); {
	case errors.Is(err, serve.ErrWorkerCrashed):
		fmt.Fprintf(os.Stderr, "xfdetector: worker crash hook fired after %d line(s)\n", w.CrashAfterLines)
		return 1
	case errors.Is(err, context.Canceled):
		return 0
	case err != nil:
		return errorf("worker: %v", err)
	}
	return 0
}

// runSubmit submits one campaign, waits for it, prints the merged report,
// and optionally writes the key fingerprint.
func runSubmit(daemonURL string, args []string, shards int, poolFile bool, keysOut string) int {
	client := &serve.Client{BaseURL: daemonURL}
	id, err := client.Submit(serve.CampaignSpec{Args: args, Shards: shards, PoolFile: poolFile})
	if err != nil {
		return errorf("submitting campaign: %v", err)
	}
	fmt.Fprintf(os.Stderr, "submitted campaign %s (%d shard(s)) to %s\n", id, shards, daemonURL)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err := client.WaitDone(ctx, id, 500*time.Millisecond, func(st serve.CampaignStatus) {
		total := "?"
		if st.Total >= 0 {
			total = fmt.Sprint(st.Total)
		}
		fmt.Fprintf(os.Stderr, "campaign %s: %d/%s failure point(s) covered, %d report(s)\n",
			st.ID, st.Covered, total, st.Reports)
	})
	if err != nil {
		return errorf("waiting for campaign %s: %v", id, err)
	}

	for _, sh := range st.ShardStates {
		extra := ""
		if sh.Resume {
			extra = ", rescheduled with -resume"
		}
		if sh.GaveUp {
			extra += ", gave up"
		}
		fmt.Fprintf(os.Stderr, "shard %d/%d: %s (exit %d) on %s after %d attempt(s)%s\n",
			sh.Index, st.Shards, sh.State, sh.ExitCode, sh.Worker, sh.Attempts, extra)
	}
	if st.State == "failed" {
		return errorf("campaign %s failed: %s", id, st.Failure)
	}
	fmt.Print(st.ResultText)
	if keysOut != "" {
		if err := os.WriteFile(keysOut, []byte(ckpt.KeysFileText(st.Keys)), 0o644); err != nil {
			return errorf("writing keys: %v", err)
		}
	}
	return st.ExitCode
}
