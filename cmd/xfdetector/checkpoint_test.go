package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/ckpt"
	"github.com/pmemgo/xfdetector/internal/core"
)

// Regression tests for the checkpoint loader/writer bugs that sharding
// exposed: a fixed line cap, silent truncation on mid-file corruption, and
// an empty report set rendering as a lone newline.

// TestLoadCheckpointHugeLine: a failure point that contributed a large
// report set writes a line far past bufio.Scanner's old 1 MiB cap; resume
// must still read the intact file instead of failing with ErrTooLong.
func TestLoadCheckpointHugeLine(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	w, err := openCheckpoint(ckpt, false)
	if err != nil {
		t.Fatal(err)
	}
	big := core.Report{Class: core.PostFailureFault, FailurePoint: 1,
		Message: strings.Repeat("stack frame / ", 1<<17)} // ~1.8 MiB marshaled
	w.record(0, 0, nil)
	w.record(1, 0, []core.Report{big})
	w.record(2, 0, nil)
	w.close()

	fi, err := os.Stat(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 1<<20 {
		t.Fatalf("checkpoint only %d bytes; too small to exercise the old 1 MiB cap", fi.Size())
	}
	cp, err := loadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("loading a >1MiB-line checkpoint: %v", err)
	}
	if len(cp.Done) != 3 || !cp.Done[0] || !cp.Done[1] || !cp.Done[2] {
		t.Errorf("done = %v, want fps 0..2", cp.Done)
	}
	if len(cp.Seed) != 1 || cp.Seed[0].Message != big.Message {
		t.Errorf("the large report did not survive the round trip (%d seeds)", len(cp.Seed))
	}
}

// TestLoadCheckpointMidFileCorruption: a corrupt line with valid lines
// after it is not the torn-write case — silently dropping the valid tail
// would let a merge under-count completed failure points, so it must be a
// load error.
func TestLoadCheckpointMidFileCorruption(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := os.WriteFile(ckpt, []byte(`{"fp":0}
{"fp":1,"repor@@@ damaged
{"fp":2}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(ckpt); err == nil {
		t.Fatal("mid-file corruption loaded without error, discarding valid lines")
	} else if !strings.Contains(err.Error(), ":2:") {
		t.Errorf("error %q does not locate the corrupt line", err)
	}
}

// TestLoadCheckpointSummary: the completion summary line carries the
// failure-point total and the pre-failure (fp < 0) reports; repeated
// agreeing summaries are fine, disagreeing ones are a mixed campaign.
func TestLoadCheckpointSummary(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	w, err := openCheckpoint(ckpt, false)
	if err != nil {
		t.Fatal(err)
	}
	w.record(0, 0, []core.Report{{Class: core.CrossFailureRace, ReaderIP: "r.go:1", WriterIP: "w.go:2", FailurePoint: 0}})
	res := &core.Result{
		FailurePoints: 7,
		Reports: []core.Report{
			{Class: core.CrossFailureRace, ReaderIP: "r.go:1", WriterIP: "w.go:2", FailurePoint: 0},
			{Class: core.Performance, ReaderIP: "p.go:3", FailurePoint: -1},
		},
	}
	w.recordSummary(res, 3)
	w.recordSummary(res, 3) // a resumed completion appends an identical summary
	w.close()

	cp, err := loadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Total != 7 {
		t.Errorf("total = %d, want 7", cp.Total)
	}
	if len(cp.Done) != 1 || !cp.Done[0] {
		t.Errorf("done = %v, want fp 0 only (summary lines are not failure points)", cp.Done)
	}
	perf := 0
	for _, rep := range cp.Seed {
		if rep.FailurePoint < 0 {
			perf++
		}
	}
	if perf != 2 { // one per summary line; deduplication happens downstream
		t.Errorf("pre-failure seeds = %d, want 2", perf)
	}

	disagree := filepath.Join(dir, "mixed.jsonl")
	if err := os.WriteFile(disagree, []byte(`{"fp":-1,"total":7}
{"fp":-1,"total":9}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(disagree); err == nil {
		t.Error("disagreeing summary totals loaded without error")
	}
}

// TestMergeZeroTotalWithCheckpointedPoints: a summary claiming a
// failure-point total of 0 merged with per-point lines used to read as full
// coverage — missingBelow(done, 0) is 0 — and the union exited 0/1. The
// checkpoints disagree about the campaign, so the merge must come out
// Incomplete (exit 3), for the degenerate zero total and for any summary
// total below a checkpointed failure point.
func TestMergeZeroTotalWithCheckpointedPoints(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// The zero-total summary marshals without its omitempty total field,
	// exactly as recordSummary writes it for an empty campaign.
	zero := write("zero.jsonl", `{"fp":0}
{"fp":1}
{"fp":-1}
`)
	res, err := mergeCheckpoints([]string{zero}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Fatalf("zero-total summary with 2 checkpointed failure points merged as complete:\n%s", res)
	}
	if res.FailurePoints != 0 || res.PostRuns != 2 {
		t.Errorf("merged totals = %d failure points, %d post-runs; want 0 and 2",
			res.FailurePoints, res.PostRuns)
	}

	// Same disagreement with a nonzero total: fp 5 recorded, summary says 3.
	low := write("low.jsonl", `{"fp":5}
{"fp":-1,"total":3}
`)
	res, err = mergeCheckpoints([]string{low}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incomplete {
		t.Fatalf("checkpointed fp 5 beyond summary total 3 merged as complete:\n%s", res)
	}

	// A consistent empty campaign — summary total 0, no per-point lines —
	// still merges complete.
	empty := write("empty.jsonl", `{"fp":-1}
`)
	res, err = mergeCheckpoints([]string{empty}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Errorf("genuinely empty campaign merged as incomplete: %s", res.IncompleteReason)
	}
}

// TestMergedBucketAccounting is the regression test for the fabricated
// merge accounting: mergeCheckpoints used to set PostRuns to the
// covered-point count, so a pruned campaign's merge claimed post-runs
// that never executed. The merged result must instead sum the per-shard
// summary buckets and uphold the same disjoint-bucket invariant every
// single-process run does.
func TestMergedBucketAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs full detection campaigns")
	}
	// The repetitive-update shape makes pruning bite: most failure points
	// collapse into a few crash-state classes, so covered != post-ran.
	const base = "-workload btree -init 2 -test 1 -updates 2 -update-rounds 20 -patch btree-skip-add-leaf"
	const shards = 3
	dir := t.TempDir()
	paths := make([]string, shards)
	wantPostRuns, wantPruned := 0, 0
	for i := 0; i < shards; i++ {
		paths[i] = filepath.Join(dir, fmt.Sprintf("s%d.ckpt", i))
		code, out := runCLI(t, fmt.Sprintf("%s -shards %d -shard-index %d -checkpoint %s", base, shards, i, paths[i]))
		if code != 0 && code != 1 {
			t.Fatalf("shard %d exited %d:\n%s", i, code, out)
		}
		lines, err := ckpt.ReadFile(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range lines {
			if l.IsSummary() {
				wantPostRuns += l.PostRuns
				wantPruned += l.Pruned
			}
		}
	}
	if wantPruned == 0 {
		t.Fatal("campaign shape pruned nothing; the regression needs covered > post-ran")
	}

	res, err := mergeCheckpoints(paths, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete {
		t.Fatalf("full merge incomplete: %s", res.IncompleteReason)
	}
	if res.PostRuns != wantPostRuns {
		t.Errorf("merged post-runs = %d, want %d (the sum of the shard summaries, not the covered-point count)",
			res.PostRuns, wantPostRuns)
	}
	if res.PrunedFailurePoints != wantPruned {
		t.Errorf("merged pruned = %d, want %d", res.PrunedFailurePoints, wantPruned)
	}
	if res.PostRuns >= res.FailurePoints {
		t.Errorf("merged post-runs (%d) >= failure points (%d): the pruned campaign's accounting is fabricated",
			res.PostRuns, res.FailurePoints)
	}
	if got := res.BucketedFailurePoints(); got != res.FailurePoints {
		t.Errorf("merged bucket invariant broken: buckets sum to %d, %d failure points", got, res.FailurePoints)
	}
	if res.OtherShardFailurePoints != 0 {
		t.Errorf("merged other-shard = %d, want 0 (the union has no other shards)", res.OtherShardFailurePoints)
	}
}

// TestWriteKeysEmptySet: zero reports must write zero bytes — the old
// rendering (a single newline) was byte-identical to a set holding one
// empty key, confusing the CI diffs of clean workloads.
func TestWriteKeysEmptySet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.txt")
	if err := writeKeys(path, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("empty report set wrote %q, want an empty file", data)
	}

	// And a non-empty set still ends with exactly one trailing newline.
	if err := writeKeys(path, []core.Report{{Class: core.CrossFailureRace, ReaderIP: "a", WriterIP: "b"}}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' || strings.Count(string(data), "\n") != 1 {
		t.Errorf("single-key file = %q, want one newline-terminated line", data)
	}
}
