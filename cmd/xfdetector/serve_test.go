package main

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/pmemgo/xfdetector/internal/ckpt"
	"github.com/pmemgo/xfdetector/internal/serve"
)

// Distributed-campaign tests: the daemon/worker/lease machinery at the
// CLI level, pinned to the same contract every other orchestration mode
// upholds — the merged report key set is byte-identical to the
// single-process campaign's.

// TestServeFlagValidation: the serve modes are mutually exclusive and own
// their flags; inconsistent combinations are usage errors.
func TestServeFlagValidation(t *testing.T) {
	for _, args := range []string{
		"-serve 127.0.0.1:0 -worker http://x",  // two modes at once
		"-serve 127.0.0.1:0 -submit http://x",  // two modes at once
		"-worker http://x -spawn 2",            // worker is not an orchestrator
		"-serve 127.0.0.1:0 -shards 2",         // the daemon has no shard layout
		"-worker http://x -shards 2",           // shard layout comes from the daemon
		"-worker http://x -workdir /tmp/x",     // the daemon owns the workdir
		"-submit http://x -shard-index 0",      // the daemon schedules every shard
		"-submit http://x -checkpoint c.jsonl", // campaigns checkpoint on the daemon
		"-submit http://x -resume",             // resume is the daemon's decision
		"-submit http://x -workdir /tmp/x",     // ditto the workdir
		"-spawn 2 -checkpoint -",               // stdout streaming is for daemon shards
	} {
		if code, out := runCLI(t, args); code != 2 {
			t.Errorf("%q exited %d, want 2:\n%s", args, code, out)
		}
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeCampaignEquivalence is the distributed acceptance test: an
// in-process daemon, two workers re-exec'ing this test binary for shard
// children, one worker crashing mid-shard (SIGKILLing its child and
// vanishing without a word). The daemon must expire the dead lease by
// heartbeat deadline, reschedule the shard onto the surviving worker with
// -resume against the daemon-held checkpoint, and the final merged key
// set must be byte-identical to the single-process run — with honest
// bucket accounting on the merged result.
func TestServeCampaignEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs full detection campaigns")
	}
	dir := t.TempDir()
	refKeys := filepath.Join(dir, "ref-keys.txt")
	code, out := runCLI(t, campaign+" -keys-out "+refKeys)
	if code != 1 {
		t.Fatalf("single-process run exited %d, want 1 (seeded bug):\n%s", code, out)
	}
	ref, err := os.ReadFile(refKeys)
	if err != nil {
		t.Fatal(err)
	}

	work := filepath.Join(dir, "daemon")
	if err := os.MkdirAll(work, 0o755); err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(work, 500*time.Millisecond)
	srv.Logf = t.Logf
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL}

	id, err := client.Submit(serve.CampaignSpec{Args: strings.Fields(campaign), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mkWorker := func(name string) *serve.Worker {
		return &serve.Worker{
			Client:         client,
			ID:             name,
			Exe:            os.Args[0],
			Poll:           20 * time.Millisecond,
			HeartbeatEvery: 100 * time.Millisecond,
			Grace:          5 * time.Second,
			Output:         io.Discard,
		}
	}

	// The doomed worker goes first and must be holding a lease before the
	// survivor starts, so the crash provably interrupts real work.
	doomed := mkWorker("doomed")
	doomed.CrashAfterLines = 2
	crashErr := make(chan error, 1)
	go func() { crashErr <- doomed.Run(ctx) }()
	waitUntil(t, "the doomed worker to hold a lease", func() bool {
		st, err := client.Campaign(id)
		if err != nil {
			return false
		}
		for _, sh := range st.ShardStates {
			if sh.State == "leased" && sh.Worker == "doomed" {
				return true
			}
		}
		return false
	})

	survivor := mkWorker("survivor")
	go survivor.Run(ctx)

	st, err := client.WaitDone(ctx, id, 50*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("waiting for campaign: %v", err)
	}
	select {
	case err := <-crashErr:
		if !errors.Is(err, serve.ErrWorkerCrashed) {
			t.Errorf("doomed worker returned %v, want ErrWorkerCrashed", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("doomed worker never returned from its crash")
	}

	if st.State != "done" || st.ExitCode != 1 {
		t.Fatalf("campaign = state %s exit %d, want done/1 (seeded bug):\n%+v", st.State, st.ExitCode, st)
	}
	if st.Incomplete {
		t.Fatalf("campaign incomplete: %s", st.IncompleteReason)
	}

	// The crash must have cost the shard an attempt and forced a -resume
	// reschedule, visible in the lease accounting and the Resumed bucket.
	rescheduled := false
	for _, sh := range st.ShardStates {
		if sh.Attempts >= 2 && sh.Resume {
			rescheduled = true
		}
	}
	if !rescheduled {
		t.Errorf("no shard was rescheduled after the worker crash: %+v", st.ShardStates)
	}
	if st.Buckets.Resumed == 0 {
		t.Errorf("resumed bucket empty after a -resume reschedule: %+v", st.Buckets)
	}
	b := st.Buckets
	if sum := b.PostRuns + b.Pruned + b.Resumed + b.Skipped + b.OtherShard; sum != st.FailurePoints {
		t.Errorf("merged bucket invariant broken: %d+%d+%d+%d+%d = %d, %d failure points",
			b.PostRuns, b.Pruned, b.Resumed, b.Skipped, b.OtherShard, sum, st.FailurePoints)
	}

	if got := ckpt.KeysFileText(st.Keys); !bytes.Equal(ref, []byte(got)) {
		t.Errorf("distributed keys diverge from single-process run:\nref:\n%s\nmerged:\n%s", ref, got)
	}
}

// TestCheckpointStdoutStreams: -checkpoint - writes the checkpoint JSONL
// to stdout (the wire format a worker parses) and moves the human report
// to stderr; with -resume the prior checkpoint arrives on stdin.
func TestCheckpointStdoutStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs a detection campaign")
	}
	const small = "-workload btree -init 2 -test 2 -patch btree-skip-add-leaf"
	code, stdout, stderr := runCLISplit(t, "", small+" -checkpoint -")
	if code != 1 {
		t.Fatalf("run exited %d, want 1:\n%s", code, stderr)
	}
	lines, err := ckpt.Read(strings.NewReader(stdout), "stdout")
	if err != nil {
		t.Fatalf("stdout is not a parseable checkpoint stream: %v\n%s", err, stdout)
	}
	summaries := 0
	for _, l := range lines {
		if l.IsSummary() {
			summaries++
		}
	}
	if summaries != 1 {
		t.Errorf("stdout stream carries %d summaries, want 1:\n%s", summaries, stdout)
	}
	if strings.Contains(stdout, "XFDetector report") {
		t.Errorf("human report leaked into the checkpoint stream:\n%s", stdout)
	}
	if !strings.Contains(stderr, "failure points:") {
		t.Errorf("human report missing from stderr:\n%s", stderr)
	}

	// Resume over stdin: feed the full checkpoint back; every point must
	// be reused (resumed == total) and the stream re-summarized.
	code, stdout2, stderr2 := runCLISplit(t, stdout, small+" -checkpoint - -resume")
	if code != 1 {
		t.Fatalf("stdin-resumed run exited %d, want 1:\n%s", code, stderr2)
	}
	if !strings.Contains(stderr2, "resumed:") {
		t.Errorf("stdin-resumed run did not reuse completed failure points:\n%s", stderr2)
	}
	relines, err := ckpt.Read(strings.NewReader(stdout2), "stdout")
	if err != nil {
		t.Fatalf("resumed stdout unparseable: %v", err)
	}
	perPoint := 0
	for _, l := range relines {
		if !l.IsSummary() {
			perPoint++
		}
	}
	if perPoint != 0 {
		t.Errorf("fully-resumed run re-streamed %d per-point lines, want 0", perPoint)
	}
}

// runCLISplit is runCLIEnv with stdin and separated stdout/stderr, for
// tests that inspect the -checkpoint - wire format.
func runCLISplit(t *testing.T, stdin, args string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "XFDETECTOR_HELPER_ARGS="+args)
	cmd.Stdin = strings.NewReader(stdin)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running helper: %v", err)
	}
	return code, out.String(), errb.String()
}
