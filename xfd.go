// Package xfd is the public API of this XFDetector reproduction — a tool
// that detects cross-failure bugs in persistent-memory (PM) programs by
// injecting failures into the pre-failure execution and checking the
// post-failure continuation against a shadow PM, as described in
// "Cross-Failure Bug Detection in Persistent Memory Programs"
// (Liu et al., ASPLOS 2020).
//
// # Model
//
// A program under test is a Target with up to three stages:
//
//   - Setup initializes the PM image (not failure-injected);
//   - Pre is the pre-failure execution: XFDetector injects a failure point
//     before every ordering point (CLWB;SFENCE and library equivalents);
//   - Post is the post-failure execution (recovery plus resumption), run
//     once per failure point on a copy of the PM image.
//
// Each stage receives a Ctx giving access to the simulated PM pool
// (Ctx.Pool: loads, stores, CLWB, SFENCE, persist barriers) and the
// annotation interface of the paper's Table 2 (regions of interest, commit
// variables, skip regions, manual failure points).
//
// Run returns a Result whose Reports classify every detected bug:
//
//   - CrossFailureRace — the post-failure stage read data modified
//     pre-failure whose persistence was not guaranteed;
//   - CrossFailureSemantic — it read persisted data that is semantically
//     inconsistent under the registered commit variables (Eq. 3);
//   - Performance — redundant writebacks or duplicated TX_ADDs;
//   - PostFailureFault — the recovery itself crashed or failed.
//
// # Quickstart
//
//	res, err := xfd.Run(xfd.Config{}, xfd.Target{
//	    Name: "counter",
//	    Pre: func(c *xfd.Ctx) error {
//	        p := c.Pool()
//	        p.Store64(0x00, 42) // BUG: never persisted
//	        p.Store64(0x40, 1)
//	        p.Persist(0x40, 8)
//	        return nil
//	    },
//	    Post: func(c *xfd.Ctx) error {
//	        c.Pool().Load64(0x00) // cross-failure race
//	        return nil
//	    },
//	})
//
// Programs built on the bundled pmobj library (a PMDK-like transactional
// persistent-object store, see internal/pmobj) get undo-log transactions,
// a crash-consistent allocator and pool recovery; its events are
// understood natively by the detector.
package xfd

import "github.com/pmemgo/xfdetector/internal/core"

// Config parameterizes a detection run. The zero value detects with a
// 1 MiB pool.
type Config = core.Config

// Target is a program under test.
type Target = core.Target

// Ctx is the per-stage handle: PM pool access plus the Table 2 annotation
// interface.
type Ctx = core.Ctx

// Result is the outcome of a detection run.
type Result = core.Result

// Report is one detected bug.
type Report = core.Report

// BugClass classifies a Report.
type BugClass = core.BugClass

// Bug classes.
const (
	CrossFailureRace     = core.CrossFailureRace
	CrossFailureSemantic = core.CrossFailureSemantic
	Performance          = core.Performance
	PostFailureFault     = core.PostFailureFault
)

// Mode selects what the harness does with the target (Fig. 12b's three
// configurations).
type Mode = core.Mode

// Modes.
const (
	ModeDetect    = core.ModeDetect
	ModeTraceOnly = core.ModeTraceOnly
	ModeOriginal  = core.ModeOriginal
)

// Run executes one detection run of t under cfg. It returns an error only
// for harness-level failures; bugs in the tested program are reported in
// the Result.
func Run(cfg Config, t Target) (*Result, error) { return core.Run(cfg, t) }
