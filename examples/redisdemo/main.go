// Redis demo — the mini PM-Redis served over a real TCP socket, then the
// paper's Bug 3 (§6.3.2) reproduced under detection.
//
// Part 1 starts the server on a loopback listener, speaks the inline
// protocol over the socket, restarts the "server" (reopening the pool) and
// shows the data survived.
//
// Part 2 runs the server's initialization + query loop under XFDetector
// twice: once with the correct initPersistentMemory and once with the Bug 3
// variant (num_dict_entries initialized outside the transaction), which is
// reported as a cross-failure race — the paper's Fig. 14c.
//
//	go run ./examples/redisdemo
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"

	xfd "github.com/pmemgo/xfdetector"
	"github.com/pmemgo/xfdetector/internal/pmredis"
)

func main() {
	if err := serveOverSocket(); err != nil {
		log.Fatal(err)
	}
	if err := detectBug3(); err != nil {
		log.Fatal(err)
	}
}

func serveOverSocket() error {
	fmt.Println("== part 1: PM-Redis over a TCP socket ==")
	target := xfd.Target{
		Name: "redis-socket",
		Pre: func(c *xfd.Ctx) error {
			db, err := pmredis.Create(c, pmredis.Options{})
			if err != nil {
				return err
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			defer ln.Close()
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				_ = db.ServeConn(conn)
			}()

			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return err
			}
			defer conn.Close()
			rd := bufio.NewScanner(conn)
			say := func(cmd string) string {
				fmt.Fprintf(conn, "%s\n", cmd)
				rd.Scan()
				fmt.Printf("  > %-22s %s\n", cmd, rd.Text())
				return rd.Text()
			}
			say("PING")
			say("SET language go")
			say("SET paper asplos2020")
			say("GET paper")
			say("DBSIZE")
			say("QUIT")

			// "Restart the server": reopen the same pool and check the
			// data is still there.
			db2, err := pmredis.Open(c, pmredis.Options{})
			if err != nil {
				return err
			}
			v, ok := db2.Get("language")
			fmt.Printf("  after restart: GET language -> %q (%v)\n", v, ok)
			if !ok || v != "go" {
				return fmt.Errorf("data lost across restart")
			}
			return nil
		},
	}
	_, err := xfd.Run(xfd.Config{Mode: xfd.ModeOriginal, PoolSize: 4 << 20}, target)
	return err
}

func detectBug3() error {
	fmt.Println("\n== part 2: the paper's Bug 3 under detection ==")
	for _, buggy := range []bool{false, true} {
		opts := pmredis.Options{InitRaceBug: buggy}
		name := "redis-correct-init"
		if buggy {
			name = "redis-bug3"
		}
		target := xfd.Target{
			Name: name,
			Pre: func(c *xfd.Ctx) error {
				db, err := pmredis.Create(c, opts) // initPersistentMemory
				if err != nil {
					return err
				}
				for i := 0; i < 3; i++ {
					if _, err := db.Do(fmt.Sprintf("SET key:%d val:%d", i, i)); err != nil {
						return err
					}
				}
				return nil
			},
			Post: func(c *xfd.Ctx) error {
				db, err := pmredis.Open(c, opts)
				if err != nil {
					return nil // pool not created yet: server starts fresh
				}
				if _, err := db.Do("DBSIZE"); err != nil { // the Bug 3 read
					return err
				}
				return db.Verify()
			},
		}
		res, err := xfd.Run(xfd.Config{PoolSize: 4 << 20}, target)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s", res)
	}
	return nil
}
