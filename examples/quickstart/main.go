// Quickstart: detect a cross-failure race, then fix it with a
// commit-variable protocol.
//
// The buggy version updates a persistent balance in place; whenever a
// failure lands between the store and its writeback, the recovery reads a
// value that was never guaranteed persistent — a cross-failure race.
//
// The fixed version keeps two slots and a commit index (registered as a
// commit variable with Ctx.AddCommitRange): a new value is persisted into
// the inactive slot before the index commits it, so the recovery's read of
// the index is a benign race and the slot it selects is always consistent.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	xfd "github.com/pmemgo/xfdetector"
)

const (
	// Buggy layout: a single in-place balance.
	balanceOff = 0x000

	// Fixed layout: commit index plus two slots, on separate cache lines.
	curOff   = 0x100
	slot0Off = 0x140
	slot1Off = 0x180
)

func buggy() xfd.Target {
	return xfd.Target{
		Name: "quickstart-buggy",
		Pre: func(c *xfd.Ctx) error {
			p := c.Pool()
			for _, v := range []uint64{100, 90, 75} {
				p.Store64(balanceOff, v) // in-place update:
				p.Persist(balanceOff, 8) // racy between store and fence
			}
			return nil
		},
		Post: func(c *xfd.Ctx) error {
			c.Pool().Load64(balanceOff) // cross-failure race
			return nil
		},
	}
}

func fixed() xfd.Target {
	slot := func(i uint64) uint64 {
		if i == 0 {
			return slot0Off
		}
		return slot1Off
	}
	return xfd.Target{
		Name: "quickstart-fixed",
		Setup: func(c *xfd.Ctx) error {
			p := c.Pool()
			c.AddCommitRange(curOff, 8, slot0Off, 0x80)
			p.Store64(slot0Off, 100)
			p.Persist(slot0Off, 8)
			p.Store64(curOff, 0)
			p.Persist(curOff, 8)
			return nil
		},
		Pre: func(c *xfd.Ctx) error {
			p := c.Pool()
			for _, v := range []uint64{90, 75} {
				next := 1 - p.Load64(curOff)
				p.Store64(slot(next), v) // write the inactive slot,
				p.Persist(slot(next), 8) // persist it,
				p.Store64(curOff, next)  // then commit it.
				p.Persist(curOff, 8)
			}
			return nil
		},
		Post: func(c *xfd.Ctx) error {
			p := c.Pool()
			c.AddCommitRange(curOff, 8, slot0Off, 0x80)
			cur := p.Load64(curOff) // benign commit-variable read
			balance := p.Load64(slot(cur))
			if balance != 100 && balance != 90 && balance != 75 {
				return fmt.Errorf("recovered impossible balance %d", balance)
			}
			return nil
		},
	}
}

func main() {
	for _, t := range []xfd.Target{buggy(), fixed()} {
		fmt.Printf("== %s ==\n", t.Name)
		res, err := xfd.Run(xfd.Config{}, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res)
		fmt.Println()
	}
}
