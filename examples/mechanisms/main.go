// Mechanisms — the paper's Table 1, live.
//
// Each of the six crash-consistency mechanisms (undo logging, redo
// logging, checkpointing, shadow paging, operational logging, checksum
// recovery) updates a persistent record under full failure injection,
// first with the correct ordering (clean) and then with its characteristic
// ordering broken (detected), printing what XFDetector reports.
//
//	go run ./examples/mechanisms
package main

import (
	"fmt"
	"log"

	xfd "github.com/pmemgo/xfdetector"
	"github.com/pmemgo/xfdetector/internal/mechanisms"
)

func target(m mechanisms.Mechanism) xfd.Target {
	return xfd.Target{
		Name: m.Name(),
		Setup: func(c *xfd.Ctx) error {
			m.Init(c, mechanisms.MakePayload(1))
			return nil
		},
		Pre: func(c *xfd.Ctx) error {
			for seed := uint64(2); seed <= 3; seed++ {
				m.Update(c, mechanisms.MakePayload(seed))
			}
			return nil
		},
		Post: func(c *xfd.Ctx) error {
			v, err := m.Recover(c)
			if err != nil {
				return err
			}
			if s := v.Seed(); s < 1 || s > 3 {
				return fmt.Errorf("recovered impossible version %d", s)
			}
			return nil
		},
	}
}

func main() {
	fmt.Println("Table 1 — crash-consistency mechanisms under XFDetector")
	for i, m := range mechanisms.All() {
		fmt.Printf("\n== %s ==\n", m.Name())
		res, err := xfd.Run(xfd.Config{}, target(m))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "CLEAN"
		if !res.Clean() {
			verdict = "BUGGY?!"
		}
		fmt.Printf("  correct ordering: %s (%d failure points)\n", verdict, res.FailurePoints)

		buggy := mechanisms.All()[i]
		buggy.SetBuggy(true)
		res, err = xfd.Run(xfd.Config{}, target(buggy))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  broken ordering:\n")
		for _, r := range res.Reports {
			fmt.Printf("    %s\n", r)
		}
		if len(res.Reports) == 0 {
			fmt.Println("    (nothing detected?!)")
		}
	}
}
