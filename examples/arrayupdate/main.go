// Array update — the paper's Figure 2 and the worked detection example of
// Figure 11.
//
// update() backs an array element up, guards the backup with a valid bit
// (a commit variable), updates in place, and releases the guard. Three
// variants run under detection:
//
//   - fig11: backup and valid persist with ONE barrier (the Fig. 11
//     program): failure point F1 makes the recovery's backup read a
//     cross-failure race, and F2 a cross-failure semantic bug, exactly the
//     two reports of the paper's step-by-step example;
//
//   - fig2-buggy: the valid bit is written with inverted values (Fig. 2's
//     red code): the recovery always performs the wrong action, reported
//     as a cross-failure semantic bug;
//
//   - fig2-fixed: the corrected ordering (Fig. 2's green box): clean.
//
//     go run ./examples/arrayupdate
package main

import (
	"fmt"
	"log"

	xfd "github.com/pmemgo/xfdetector"
)

const (
	backupIdxOff = 0x100 // backup.idx
	backupValOff = 0x108 // backup.val
	validOff     = 0x140 // the commit variable (own cache line)
	arrOff       = 0x200 // item_t arr[8]
)

func annotate(c *xfd.Ctx) {
	c.AddCommitRange(validOff, 8, backupIdxOff, 16)
	c.AddCommitRange(validOff, 8, arrOff, 64)
}

func setup(c *xfd.Ctx) error {
	p := c.Pool()
	annotate(c)
	for i := uint64(0); i < 8; i++ {
		p.Store64(arrOff+8*i, 1000+i)
	}
	p.Store64(validOff, 0)
	p.Persist(arrOff, 64)
	p.Persist(validOff, 8)
	return nil
}

// recover is Fig. 2 lines 13-17: if valid, roll back from the backup.
func recover(c *xfd.Ctx) error {
	p := c.Pool()
	annotate(c)
	if p.Load64(validOff) != 0 { // benign commit-variable read
		idx := p.Load64(backupIdxOff)
		val := p.Load64(backupValOff) // F1: race, F2: semantic bug
		if idx >= 8 {
			return fmt.Errorf("recovery read impossible index %d", idx)
		}
		p.Store64(arrOff+8*idx, val)
		p.Persist(arrOff+8*idx, 8)
		p.Store64(validOff, 0)
		p.Persist(validOff, 8)
	}
	return nil
}

// fig11 is the two-barrier program of Fig. 11: backup and valid written
// back together, then the in-place update.
func fig11(c *xfd.Ctx) error {
	p := c.Pool()
	p.Store64(backupIdxOff, 0)
	p.Store64(backupValOff, p.Load64(arrOff))
	p.Store64(validOff, 1)
	p.CLWB(backupIdxOff, 16) // one barrier covers backup and valid:
	p.CLWB(validOff, 8)      // nothing orders the backup before its commit
	p.SFence()
	p.Store64(arrOff, 2222)
	p.Persist(arrOff, 8)
	return nil
}

// update is Fig. 2's update() with selectable valid-bit values; the buggy
// variant writes them inverted (0 where 1 belongs and vice versa).
func update(c *xfd.Ctx, inverted bool) error {
	p := c.Pool()
	set, clear := uint64(1), uint64(0)
	if inverted {
		set, clear = 0, 1 // BUG: Fig. 2 lines 6 and 10
	}
	p.Store64(backupIdxOff, 0)
	p.Store64(backupValOff, p.Load64(arrOff))
	p.Persist(backupIdxOff, 16)
	p.Store64(validOff, set)
	p.Persist(validOff, 8)
	p.Store64(arrOff, 2222)
	p.Persist(arrOff, 8)
	p.Store64(validOff, clear)
	p.Persist(validOff, 8)
	return nil
}

func main() {
	targets := []xfd.Target{
		{
			Name:  "fig11-single-barrier",
			Setup: setup,
			Pre:   fig11,
			Post:  recover,
		},
		{
			Name:  "fig2-buggy-inverted-valid",
			Setup: setup,
			Pre:   func(c *xfd.Ctx) error { return update(c, true) },
			Post:  recover,
		},
		{
			Name:  "fig2-fixed",
			Setup: setup,
			Pre:   func(c *xfd.Ctx) error { return update(c, false) },
			Post:  recover,
		},
	}
	for _, t := range targets {
		fmt.Printf("== %s ==\n", t.Name)
		res, err := xfd.Run(xfd.Config{}, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res)
		fmt.Println()
	}
}
