// Linked list — the paper's Figure 1, reproduced end to end.
//
// A persistent linked list appends nodes inside undo-log transactions, but
// the programmer forgot to TX_ADD the length field. Whether that is a bug
// depends on the post-failure stage:
//
//   - recover(): applies the undo logs (pmobj.Open does) and resumes with
//     pop(), which trusts the possibly-non-persisted length — XFDetector
//     reports the cross-failure race of Fig. 4a, and when the stale length
//     claims the empty list has an element, pop() dereferences a nil head:
//     the segmentation-fault scenario, observable as a post-failure fault.
//
//   - recover_alt(): traverses the list and overwrites length with the
//     recomputed value (the paper's green arrows); pop() then reads only
//     consistent data and detection is clean, even though the pre-failure
//     transaction still omits the length — the paper's point that a
//     pre-failure-only tool would report a false positive here.
//
//     go run ./examples/linkedlist
package main

import (
	"fmt"
	"log"

	xfd "github.com/pmemgo/xfdetector"
	"github.com/pmemgo/xfdetector/internal/pmobj"
)

// Root object: head (offset of first node) and length.
// Node: next | value.
const (
	headOff = 0
	lenOff  = 8

	nodeNext  = 0
	nodeValue = 8
	nodeSize  = 16
)

type list struct {
	po   *pmobj.Pool
	root uint64
}

// append adds a node at the head — Fig. 1 lines 1-8, including its bug:
// list.length is updated inside the transaction without TX_ADD.
func (l *list) append(value uint64) error {
	p := l.po.PM()
	return l.po.Tx(func(tx *pmobj.Tx) error {
		n, err := tx.Alloc(nodeSize)
		if err != nil {
			return err
		}
		p.Store64(n+nodeValue, value)
		p.Store64(n+nodeNext, p.Load64(l.root+headOff))
		if err := tx.Add(l.root+headOff, 8); err != nil { // TX_ADD(list.head)
			return err
		}
		p.Store64(l.root+headOff, n)
		p.Store64(l.root+lenOff, p.Load64(l.root+lenOff)+1) // BUG: not added
		return nil
	})
}

// pop removes the head node — Fig. 1 lines 13-21: it trusts length to
// decide whether a node exists.
func (l *list) pop() error {
	p := l.po.PM()
	return l.po.Tx(func(tx *pmobj.Tx) error {
		if p.Load64(l.root+lenOff) == 0 {
			return nil
		}
		head := p.Load64(l.root + headOff)
		// With an inconsistent length this dereferences a nil head — the
		// paper's segmentation fault (an out-of-pool panic here).
		next := p.Load64(head + nodeNext)
		if err := tx.Add(l.root, 16); err != nil {
			return err
		}
		p.Store64(l.root+headOff, next)
		p.Store64(l.root+lenOff, p.Load64(l.root+lenOff)-1)
		return tx.Free(head)
	})
}

// recoverAlt is Fig. 1 lines 22-31: traverse the list (reading only
// transaction-protected data) and overwrite the inconsistent length.
func (l *list) recoverAlt() {
	p := l.po.PM()
	count := uint64(0)
	for cur := p.Load64(l.root + headOff); cur != 0; cur = p.Load64(cur + nodeNext) {
		count++
	}
	p.Store64(l.root+lenOff, count)
	p.Persist(l.root+lenOff, 8)
}

func target(name string, altRecovery bool) xfd.Target {
	return xfd.Target{
		Name: name,
		Setup: func(c *xfd.Ctx) error {
			po, err := pmobj.Create(c.Pool(), 16, nil)
			if err != nil {
				return err
			}
			_ = po
			return nil
		},
		Pre: func(c *xfd.Ctx) error {
			po, err := pmobj.Open(c.Pool())
			if err != nil {
				return err
			}
			l := &list{po: po, root: po.Root()}
			for v := uint64(1); v <= 3; v++ {
				if err := l.append(10 * v); err != nil {
					return err
				}
			}
			return nil
		},
		Post: func(c *xfd.Ctx) error {
			// recover(): pmobj.Open rolls incomplete transactions back.
			po, err := pmobj.Open(c.Pool())
			if err != nil {
				return err
			}
			l := &list{po: po, root: po.Root()}
			if altRecovery {
				l.recoverAlt() // recover_alt(): overwrite length first
			}
			// Resumption: the next operation is pop() (Fig. 1 line 13).
			return l.pop()
		},
	}
}

func main() {
	for _, alt := range []bool{false, true} {
		name := "linkedlist-naive-recover"
		if alt {
			name = "linkedlist-recover-alt"
		}
		fmt.Printf("== %s ==\n", name)
		res, err := xfd.Run(xfd.Config{}, target(name, alt))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res)
		fmt.Println()
	}
}
