// Benchmark harness regenerating the paper's evaluation (§6): one
// testing.B benchmark per table and figure, plus substrate micro
// benchmarks and ablations of the detector's design choices.
//
//	go test -bench=. -benchmem .
//
// Reported custom metrics:
//
//	pre-s/op, post-s/op   the Fig. 12a stage breakdown
//	failpoints/op         injected failure points per run
//	bugs/op               reports per run (Table 5 benchmarks)
package xfd_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	xfd "github.com/pmemgo/xfdetector"
	"github.com/pmemgo/xfdetector/internal/bench"
	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/mechanisms"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/pmobj"
	"github.com/pmemgo/xfdetector/internal/pmredis"
	"github.com/pmemgo/xfdetector/internal/record"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

// runDetection executes one detection run and accumulates its metrics.
func runDetection(b *testing.B, cfg core.Config, target core.Target) (pre, post float64, fps, bugs int) {
	b.Helper()
	res, err := core.Run(cfg, target)
	if err != nil {
		b.Fatal(err)
	}
	return res.PreSeconds, res.PostSeconds, res.FailurePoints, len(res.Reports)
}

// BenchmarkFig12a measures full detection per workload with the §6.2.1
// configuration (1 init insertion + 1 test insertion, one post-failure
// operation per failure point), reporting the pre/post breakdown.
func BenchmarkFig12a(b *testing.B) {
	for _, w := range bench.Table4() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var pre, post float64
			var fps int
			for i := 0; i < b.N; i++ {
				p1, p2, f, _ := runDetection(b,
					core.Config{PoolSize: bench.DefaultPoolSize}, w.Target(bench.Fig12Config))
				pre += p1
				post += p2
				fps += f
			}
			n := float64(b.N)
			b.ReportMetric(pre/n, "pre-s/op")
			b.ReportMetric(post/n, "post-s/op")
			b.ReportMetric(float64(fps)/n, "failpoints/op")
		})
	}
}

// BenchmarkFig12b runs the three §6.2.1 configurations per workload; the
// slowdown ratios of Fig. 12b fall out of the ns/op columns.
func BenchmarkFig12b(b *testing.B) {
	modes := []struct {
		name string
		mode core.Mode
	}{
		{"Detect", core.ModeDetect},
		{"TraceOnly", core.ModeTraceOnly},
		{"Original", core.ModeOriginal},
	}
	for _, w := range bench.Table4() {
		w := w
		for _, m := range modes {
			m := m
			b.Run(w.Name+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := core.Run(core.Config{
						PoolSize: bench.DefaultPoolSize, Mode: m.mode,
					}, w.Target(bench.Fig12Config))
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig13 sweeps the number of pre-failure transactions (§6.2.2);
// ns/op must scale linearly with the reported failure points.
func BenchmarkFig13(b *testing.B) {
	for _, m := range workloads.Makers() {
		m := m
		for _, n := range bench.Fig13Transactions {
			n := n
			b.Run(fmt.Sprintf("%s/tx=%d", m.Name, n), func(b *testing.B) {
				fps := 0
				for i := 0; i < b.N; i++ {
					cfg := workloads.TargetConfig{InitSize: 1, TestSize: n, PostOps: true}
					_, _, f, _ := runDetection(b,
						core.Config{PoolSize: 16 << 20}, workloads.DetectionTarget(m, cfg))
					fps += f
				}
				b.ReportMetric(float64(fps)/float64(b.N), "failpoints/op")
			})
		}
	}
}

// BenchmarkTable5 measures one representative seeded-bug detection per
// workload (the full 59-bug suite runs in TestTable5Validation).
func BenchmarkTable5(b *testing.B) {
	picks := map[string]string{
		"B-Tree":         "btree-skip-add-leaf",
		"C-Tree":         "ctree-skip-add-link",
		"RB-Tree":        "rbt-skip-add-insert-link",
		"Hashmap-TX":     "hmtx-skip-add-slot",
		"Hashmap-Atomic": "hma-sem-inverted-dirty",
	}
	for _, m := range workloads.Makers() {
		m := m
		fault := picks[m.Name]
		b.Run(m.Name, func(b *testing.B) {
			bugs := 0
			for i := 0; i < b.N; i++ {
				cfg := workloads.TargetConfig{
					InitSize: 5, TestSize: 3, Updates: 1, Removes: 2,
					PostOps: true, Fault: fault, FaultInCreate: true,
				}
				_, _, _, nbugs := runDetection(b,
					core.Config{PoolSize: bench.DefaultPoolSize}, workloads.DetectionTarget(m, cfg))
				bugs += nbugs
			}
			if bugs == 0 {
				b.Fatalf("seeded bug %s not detected", fault)
			}
			b.ReportMetric(float64(bugs)/float64(b.N), "bugs/op")
		})
	}
}

// BenchmarkTable1 measures detection over each Table 1 mechanism.
func BenchmarkTable1(b *testing.B) {
	for i, m := range mechanisms.All() {
		i := i
		b.Run(m.Name(), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				mech := mechanisms.All()[i]
				target := xfd.Target{
					Name: mech.Name(),
					Setup: func(c *xfd.Ctx) error {
						mech.Init(c, mechanisms.MakePayload(1))
						return nil
					},
					Pre: func(c *xfd.Ctx) error {
						mech.Update(c, mechanisms.MakePayload(2))
						return nil
					},
					Post: func(c *xfd.Ctx) error {
						_, err := mech.Recover(c)
						return err
					},
				}
				if _, err := xfd.Run(xfd.Config{}, target); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablations: the detector's design choices called out in DESIGN.md.

// BenchmarkAblationIPCapture compares detection with and without
// source-location capture (the runtime.Caller cost of the tracing
// frontend).
func BenchmarkAblationIPCapture(b *testing.B) {
	m, _ := workloads.MakerFor("B-Tree")
	for _, disabled := range []bool{false, true} {
		name := "WithIP"
		if disabled {
			name = "NoIP"
		}
		disabled := disabled
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := workloads.TargetConfig{InitSize: 2, TestSize: 2, PostOps: true}
				_, err := core.Run(core.Config{
					PoolSize: bench.DefaultPoolSize, DisableIPCapture: disabled,
				}, workloads.DetectionTarget(m, cfg))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFailurePointElision compares detection with and without
// the §5.4 empty-interval optimization.
func BenchmarkAblationFailurePointElision(b *testing.B) {
	m, _ := workloads.MakerFor("Hashmap-TX")
	for _, disabled := range []bool{false, true} {
		name := "Elide"
		if disabled {
			name = "NoElide"
		}
		disabled := disabled
		b.Run(name, func(b *testing.B) {
			fps := 0
			for i := 0; i < b.N; i++ {
				cfg := workloads.TargetConfig{InitSize: 2, TestSize: 2, PostOps: true}
				_, _, f, _ := runDetection(b, core.Config{
					PoolSize:                   bench.DefaultPoolSize,
					DisableFailurePointElision: disabled,
				}, workloads.DetectionTarget(m, cfg))
				fps += f
			}
			b.ReportMetric(float64(fps)/float64(b.N), "failpoints/op")
		})
	}
}

// BenchmarkAblationSnapshots compares detection per Table 4 workload with
// the incremental dirty-page snapshots and copy-on-write post images
// (default) against full image copies per failure point
// (DisableIncrementalSnapshots, the mechanism as the paper states it).
func BenchmarkAblationSnapshots(b *testing.B) {
	for _, w := range bench.Table4() {
		w := w
		for _, ablate := range []bool{false, true} {
			name, ablate := "Incremental", ablate
			if ablate {
				name = "FullCopy"
			}
			b.Run(w.Name+"/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := core.Run(core.Config{
						PoolSize:                    bench.DefaultPoolSize,
						DisableIncrementalSnapshots: ablate,
					}, w.Target(bench.Fig12Config))
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSnapshotPoolSweep sweeps the pool size under a fixed small
// working set. The per-failure-point snapshot cost is what separates the
// two schemes: incremental snapshots pay for the delta (near-flat in the
// pool size), full image copies pay for the whole pool (linear).
func BenchmarkSnapshotPoolSweep(b *testing.B) {
	target := core.Target{
		Name: "sweep",
		Pre: func(c *core.Ctx) error {
			p := c.Pool()
			for i := uint64(0); i < 64; i++ {
				p.Store64(i*8, i)
				p.Persist(i*8, 8)
			}
			return nil
		},
		Post: func(c *core.Ctx) error {
			c.Pool().Load64(0)
			return nil
		},
	}
	for _, mib := range []int{1, 4, 16, 64} {
		for _, ablate := range []bool{false, true} {
			name := fmt.Sprintf("pool=%dMiB/incremental", mib)
			if ablate {
				name = fmt.Sprintf("pool=%dMiB/fullcopy", mib)
			}
			mib, ablate := mib, ablate
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := core.Run(core.Config{
						PoolSize:                    uint64(mib) << 20,
						DisableIncrementalSnapshots: ablate,
					}, target)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationShadow compares detection per Table 4 workload with the
// sparse paged shadow PM and its range-batched transitions (default)
// against the dense flat-array representation with per-byte transitions
// (DenseShadow, the previous design), reporting the peak shadow footprint
// of each.
func BenchmarkAblationShadow(b *testing.B) {
	for _, w := range bench.Table4() {
		w := w
		for _, ablate := range []bool{false, true} {
			name, ablate := "Sparse", ablate
			if ablate {
				name = "Dense"
			}
			b.Run(w.Name+"/"+name, func(b *testing.B) {
				var peak float64
				for i := 0; i < b.N; i++ {
					res, err := core.Run(core.Config{
						PoolSize:    bench.DefaultPoolSize,
						DenseShadow: ablate,
					}, w.Target(bench.Fig12Config))
					if err != nil {
						b.Fatal(err)
					}
					peak += float64(res.ShadowPeakBytes)
				}
				b.ReportMetric(peak/float64(b.N), "shadow-peak-B/op")
			})
		}
	}
}

// BenchmarkAblationPruning compares detection per Table 4 workload with
// crash-state pruning (default: one post-failure execution per distinct
// crash-state fingerprint) against running every failure point
// (DisablePruning, the mechanism as the paper states it). The workload
// configuration repeats the update pass thirty times with identical
// values, the repetitive-loop shape whose failure points freeze
// byte-identical crash states; TestPruneEquivalenceAcrossTable4 proves the
// report-key sets identical either way.
func BenchmarkAblationPruning(b *testing.B) {
	for _, w := range bench.Table4() {
		w := w
		for _, ablate := range []bool{false, true} {
			name, ablate := "Pruned", ablate
			if ablate {
				name = "NoPrune"
			}
			b.Run(w.Name+"/"+name, func(b *testing.B) {
				var fps, classes, pruned float64
				for i := 0; i < b.N; i++ {
					res, err := core.Run(core.Config{
						PoolSize:       bench.DefaultPoolSize,
						DisablePruning: ablate,
					}, w.Target(bench.PruneAblationConfig))
					if err != nil {
						b.Fatal(err)
					}
					fps += float64(res.FailurePoints)
					classes += float64(res.CrashStateClasses)
					pruned += float64(res.PrunedFailurePoints)
				}
				n := float64(b.N)
				b.ReportMetric(fps/n, "failpoints/op")
				b.ReportMetric(classes/n, "classes/op")
				b.ReportMetric(pruned/n, "pruned/op")
			})
		}
	}
}

// BenchmarkCrossShardPruning measures the cross-shard verdict channel
// (PR 9): a three-shard campaign whose shards share a class registry —
// the in-process form of the -serve daemon's claim/resolve protocol —
// against the same fleet with the channel disabled
// (-no-cross-shard-prune), where each shard prunes only within its own
// failure-point partition. Two campaigns: the steady-state update loop,
// whose crash-state classes all span the round-robin shard split (the
// shape the channel exists for — post-runs drop toward 1/shards), and
// B-Tree under the update-heavy ablation configuration as the
// real-workload point. TestCrossShardPruningAcceptance pins the >= 2x
// update-loop claim and the byte-identical merged key sets.
func BenchmarkCrossShardPruning(b *testing.B) {
	const shards = 3
	campaigns := []struct {
		name   string
		target func() core.Target
	}{
		{"UpdateLoop", func() core.Target { return bench.UpdateLoopTarget("update-loop", 16, 30) }},
		{"B-Tree", func() core.Target { return bench.Table4()[0].Target(bench.PruneAblationConfig) }},
	}
	for _, c := range campaigns {
		c := c
		for _, shared := range []bool{true, false} {
			name, shared := "Shared", shared
			if !shared {
				name = "NoCrossShard"
			}
			b.Run(c.name+"/"+name, func(b *testing.B) {
				var posts, cross, postSec float64
				for i := 0; i < b.N; i++ {
					var reg *core.ClassRegistry
					if shared {
						reg = core.NewClassRegistry()
					}
					for idx := 0; idx < shards; idx++ {
						var v core.VerdictSource
						if reg != nil {
							v = reg.Bind(fmt.Sprintf("shard%d", idx))
						}
						res, err := core.Run(core.Config{
							PoolSize:   bench.DefaultPoolSize,
							ShardCount: shards,
							ShardIndex: idx,
							Verdicts:   v,
						}, c.target())
						if err != nil {
							b.Fatal(err)
						}
						posts += float64(res.PostRuns)
						cross += float64(res.CrossShardPrunedFailurePoints)
						postSec += res.PostSeconds
					}
				}
				n := float64(b.N)
				b.ReportMetric(posts/n, "postruns/op")
				b.ReportMetric(cross/n, "crossshard/op")
				b.ReportMetric(postSec/n, "post-s/op")
			})
		}
	}
}

// BenchmarkRecordedFanout measures the record-once fast-forward path
// (PR 10): a three-shard update-heavy campaign where the pre-failure pass
// is recorded once and every shard replays the artifact — jumping to the
// nearest engine checkpoint below its first owned failure point — against
// the same fleet with the knob off (-no-fast-forward), where every shard
// re-executes the full pre-failure stage live. The fleet's pre-failure
// cost drops from O(shards x trace) to O(trace + per-shard suffixes);
// pre-s/shard carries the per-shard reduction, record-s/op the one-time
// recording cost the fast-forward variant amortizes. The campaign is
// B-Tree under the update-heavy ablation configuration: a live shard
// re-executes every pmobj transaction with source-location capture, which
// is exactly the work the replay drops.
// TestRecordedFanoutAcceptance pins the >= 2x per-shard claim and the
// byte-identical merged key sets.
func BenchmarkRecordedFanout(b *testing.B) {
	const shards = 3
	target := bench.RecordedFanoutTarget
	for _, ff := range []bool{true, false} {
		name, ff := "FastForward", ff
		if !ff {
			name = "NoFastForward"
		}
		b.Run(name, func(b *testing.B) {
			var preSec, recSec float64
			for i := 0; i < b.N; i++ {
				var artifact *record.Artifact
				if ff {
					var buf bytes.Buffer
					cfg := core.Config{PoolSize: bench.DefaultPoolSize}
					cfg.Record = record.NewWriter(&buf, 1, bench.DefaultPoolSize, 0)
					res, err := core.Run(cfg, target())
					if err != nil {
						b.Fatal(err)
					}
					recSec += res.PreSeconds
					if artifact, err = record.Read(&buf); err != nil {
						b.Fatal(err)
					}
				}
				for idx := 0; idx < shards; idx++ {
					cfg := core.Config{
						PoolSize:   bench.DefaultPoolSize,
						ShardCount: shards,
						ShardIndex: idx,
						Replay:     artifact,
					}
					res, err := core.Run(cfg, target())
					if err != nil {
						b.Fatal(err)
					}
					preSec += res.PreSeconds
				}
			}
			n := float64(b.N)
			b.ReportMetric(preSec/n/shards, "pre-s/shard")
			if ff {
				b.ReportMetric(recSec/n, "record-s/op")
			}
		})
	}
}

// BenchmarkShadowPoolSweep sweeps the pool size under a fixed small
// working set. The shadow representation is what separates the two
// schemes: the sparse paged shadow allocates per-byte metadata only for
// touched 4 KiB slabs (near-flat in the pool size), the dense arrays are
// sized to the whole pool (linear — 30 bytes of metadata per pool byte).
func BenchmarkShadowPoolSweep(b *testing.B) {
	target := core.Target{
		Name: "shadow-sweep",
		Pre: func(c *core.Ctx) error {
			p := c.Pool()
			for i := uint64(0); i < 64; i++ {
				p.Store64(i*8, i)
				p.Persist(i*8, 8)
			}
			return nil
		},
		Post: func(c *core.Ctx) error {
			c.Pool().Load64(0)
			return nil
		},
	}
	for _, mib := range []int{1, 4, 16, 64} {
		for _, ablate := range []bool{false, true} {
			name := fmt.Sprintf("pool=%dMiB/sparse", mib)
			if ablate {
				name = fmt.Sprintf("pool=%dMiB/dense", mib)
			}
			mib, ablate := mib, ablate
			b.Run(name, func(b *testing.B) {
				var peak, pages float64
				for i := 0; i < b.N; i++ {
					res, err := core.Run(core.Config{
						PoolSize:    uint64(mib) << 20,
						DenseShadow: ablate,
					}, target)
					if err != nil {
						b.Fatal(err)
					}
					peak += float64(res.ShadowPeakBytes)
					pages += float64(res.ShadowPages)
				}
				n := float64(b.N)
				b.ReportMetric(peak/n, "shadow-peak-B/op")
				b.ReportMetric(pages/n, "shadow-pages/op")
			})
		}
	}
}

// BenchmarkBackendSweep compares detection per Table 4 workload on the
// in-memory pool (default) against the file-backed pool, whose durable
// image advances by range-batched msync at every ordering point and
// failure-point snapshot. The delta is the price of durability: the
// dirty-page walks, page copies into the shared mapping, read-back
// verifications and msync calls. The msync accounting metrics show how
// much of that work the compare-skip optimization elides.
func BenchmarkBackendSweep(b *testing.B) {
	for _, w := range bench.Table4() {
		w := w
		for _, file := range []bool{false, true} {
			name, file := "Memory", file
			if file {
				name = "File"
			}
			b.Run(w.Name+"/"+name, func(b *testing.B) {
				if file && runtime.GOOS != "linux" {
					b.Skip("file-backed pools are linux-only")
				}
				var ranges, pages, skipped float64
				for i := 0; i < b.N; i++ {
					cfg := core.Config{PoolSize: bench.DefaultPoolSize}
					if file {
						cfg.Backend = pmem.FileBackend{Path: filepath.Join(b.TempDir(), "pool.img")}
					}
					res, err := core.Run(cfg, w.Target(bench.Fig12Config))
					if err != nil {
						b.Fatal(err)
					}
					ranges += float64(res.MsyncRanges)
					pages += float64(res.MsyncPages)
					skipped += float64(res.MsyncSkipped)
				}
				if file {
					n := float64(b.N)
					b.ReportMetric(ranges/n, "msync-ranges/op")
					b.ReportMetric(pages/n, "msync-pages/op")
					b.ReportMetric(skipped/n, "msync-skipped/op")
				}
			})
		}
	}
}

// Substrate micro benchmarks.

// BenchmarkPmemOps measures the simulated device primitives.
func BenchmarkPmemOps(b *testing.B) {
	b.Run("Store64", func(b *testing.B) {
		p := pmem.New("bench", 1<<20)
		p.SetIPCapture(false)
		for i := 0; i < b.N; i++ {
			p.Store64(uint64(i*8)%(1<<19), uint64(i))
		}
	})
	b.Run("Store64Traced", func(b *testing.B) {
		p := pmem.New("bench", 1<<20)
		p.SetSink(discard{})
		for i := 0; i < b.N; i++ {
			p.Store64(uint64(i*8)%(1<<19), uint64(i))
		}
	})
	b.Run("PersistBarrier", func(b *testing.B) {
		p := pmem.New("bench", 1<<20)
		p.SetIPCapture(false)
		for i := 0; i < b.N; i++ {
			off := uint64(i*64) % (1 << 19)
			p.Store64(off, uint64(i))
			p.Persist(off, 8)
		}
	})
}

type discard struct{}

func (discard) Record(trace.Entry) {}

// BenchmarkShadowApply measures the backend state machine.
func BenchmarkShadowApply(b *testing.B) {
	sh := shadow.NewPM(1 << 20)
	entries := []trace.Entry{
		{Kind: trace.Write, Addr: 0x100, Size: 64, IP: "b.go:1"},
		{Kind: trace.CLWB, Addr: 0x100, Size: 64, IP: "b.go:2"},
		{Kind: trace.SFence},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range entries {
			sh.Apply(e)
		}
	}
}

// BenchmarkPmobjTx measures a minimal transaction on the PMDK-like
// substrate (alloc + add + store + commit), without detection.
func BenchmarkPmobjTx(b *testing.B) {
	p := pmem.New("bench", 16<<20)
	p.SetIPCapture(false)
	po, err := pmobj.Create(p, 64, nil)
	if err != nil {
		b.Fatal(err)
	}
	root := po.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := po.Tx(func(tx *pmobj.Tx) error {
			if err := tx.Add(root, 8); err != nil {
				return err
			}
			p.Store64(root, uint64(i))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelDetection measures the parallelized detector (the
// future work of §6.2.1) against the sequential baseline on the Redis
// workload, whose many failure points make the post-failure stage large.
// On a single-core host the workers only add coordination overhead; the
// speedup shape needs real cores (see EXPERIMENTS.md).
func BenchmarkParallelDetection(b *testing.B) {
	cfg := workloads.TargetConfig{InitSize: 2, TestSize: 2, PostOps: true}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					PoolSize: bench.DefaultPoolSize, Workers: workers,
				}, bench.RedisTarget(pmredis.Options{}, cfg))
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Reports) != 0 {
					b.Fatalf("unexpected reports:\n%s", res)
				}
			}
		})
	}
}
