package xfd_test

import (
	"fmt"
	"log"
	"strings"
	"testing"

	xfd "github.com/pmemgo/xfdetector"
)

// Example demonstrates the package-level quickstart: a write that is never
// persisted is read by the recovery — a cross-failure race.
func Example() {
	res, err := xfd.Run(xfd.Config{}, xfd.Target{
		Name: "counter",
		Pre: func(c *xfd.Ctx) error {
			p := c.Pool()
			p.Store64(0x00, 42) // BUG: never persisted
			p.Store64(0x40, 1)
			p.Persist(0x40, 8)
			return nil
		},
		Post: func(c *xfd.Ctx) error {
			c.Pool().Load64(0x00) // cross-failure race
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("races:", res.Count(xfd.CrossFailureRace))
	// Output: races: 1
}

// TestFacade checks the re-exported API surface end to end, including the
// parallel mode and the report accessors.
func TestFacade(t *testing.T) {
	target := xfd.Target{
		Name: "facade",
		Pre: func(c *xfd.Ctx) error {
			p := c.Pool()
			p.Store64(0, 7)
			p.Persist(0, 8)
			p.Store64(64, 9) // unpersisted
			p.Store64(128, 1)
			p.Persist(128, 8)
			return nil
		},
		Post: func(c *xfd.Ctx) error {
			c.Pool().Load64(64)
			return nil
		},
	}
	for _, workers := range []int{1, 3} {
		res, err := xfd.Run(xfd.Config{Workers: workers}, target)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count(xfd.CrossFailureRace) != 1 {
			t.Fatalf("workers=%d: races = %d, want 1", workers, res.Count(xfd.CrossFailureRace))
		}
		if res.Clean() {
			t.Error("Clean() must be false with a race")
		}
		reps := res.ByClass(xfd.CrossFailureRace)
		if len(reps) != 1 || !strings.Contains(reps[0].String(), "CROSS-FAILURE RACE") {
			t.Errorf("report = %v", reps)
		}
		if !strings.Contains(res.String(), "1 bug(s) detected") {
			t.Errorf("summary = %q", res.String())
		}
	}
}

// TestFacadeModes checks the three execution modes through the façade.
func TestFacadeModes(t *testing.T) {
	target := xfd.Target{
		Name: "modes",
		Pre: func(c *xfd.Ctx) error {
			c.Pool().Store64(0, 1)
			c.Pool().Persist(0, 8)
			return nil
		},
	}
	for _, m := range []xfd.Mode{xfd.ModeDetect, xfd.ModeTraceOnly, xfd.ModeOriginal} {
		res, err := xfd.Run(xfd.Config{Mode: m}, target)
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		if m == xfd.ModeOriginal && res.PreEntries != 0 {
			t.Errorf("original mode traced %d entries", res.PreEntries)
		}
		if m != xfd.ModeOriginal && res.PreEntries == 0 {
			t.Errorf("mode %v traced nothing", m)
		}
	}
}
