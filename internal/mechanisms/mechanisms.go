// Package mechanisms implements the six crash-consistency mechanisms of
// the paper's Table 1 — undo logging, redo logging, checkpointing, shadow
// paging, operational logging, and checksum-based recovery — as small,
// self-contained persistent records with an update and a recovery side.
//
// Each mechanism maintains a fixed-size payload (a "record" of eight
// uint64s) and guarantees that after any failure the recovered payload is
// one of the two adjacent versions and internally consistent. The paper's
// data-consistency column of Table 1 maps directly onto which PM locations
// each recovery is allowed to read:
//
//   - undo logging: the update if committed, else the log;
//   - redo logging: the committed log, else the existing data;
//   - checkpointing: the latest committed checkpoint;
//   - shadow paging: the object the persistent pointer commits to;
//   - operational logging: the logged operations, re-executed;
//   - checksums: whatever version the checksum validates (requiring the
//     extra failure points of §5.5, injected with AddFailurePoint).
//
// Every mechanism has a Buggy flag that breaks its characteristic ordering,
// so the detection tests can show XFDetector flags each one.
package mechanisms

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// PayloadWords is the record size in uint64s.
const PayloadWords = 8

// Payload is the value a mechanism keeps crash-consistent. Consistent
// payloads satisfy Check.
type Payload [PayloadWords]uint64

// MakePayload derives a consistent payload from a seed: seven words plus a
// sum word, so torn payloads are observable.
func MakePayload(seed uint64) Payload {
	var p Payload
	sum := uint64(0)
	for i := 0; i < PayloadWords-1; i++ {
		p[i] = seed*1000 + uint64(i)
		sum += p[i]
	}
	p[PayloadWords-1] = sum
	return p
}

// Check reports whether the payload is internally consistent.
func (p Payload) Check() error {
	sum := uint64(0)
	for i := 0; i < PayloadWords-1; i++ {
		sum += p[i]
	}
	if p[PayloadWords-1] != sum {
		return fmt.Errorf("mechanisms: torn payload %v", p)
	}
	return nil
}

// Seed extracts the seed a consistent payload was built from.
func (p Payload) Seed() uint64 { return p[0] / 1000 }

// Mechanism is one Table 1 crash-consistency mechanism operating on a
// region of PM starting at Base.
type Mechanism interface {
	// Name is the Table 1 row name.
	Name() string
	// Init writes the initial payload (pre-failure, before the RoI).
	Init(c *core.Ctx, p Payload)
	// Update replaces the payload crash-consistently.
	Update(c *core.Ctx, p Payload)
	// Recover restores and returns a consistent payload after a failure.
	Recover(c *core.Ctx) (Payload, error)
	// SetBuggy breaks the mechanism's characteristic ordering.
	SetBuggy(bool)
}

// region lays the mechanisms' records out; each mechanism gets a disjoint
// 1 KiB region so one pool can host any of them.
const (
	regionSize  = 1024
	payloadSize = PayloadWords * 8
)

func storePayload(p *pmem.Pool, off uint64, v Payload) {
	for i, w := range v {
		p.Store64(off+uint64(i)*8, w)
	}
}

func loadPayload(p *pmem.Pool, off uint64) Payload {
	var v Payload
	for i := range v {
		v[i] = p.Load64(off + uint64(i)*8)
	}
	return v
}

// All returns one instance of each mechanism, at staggered pool offsets.
func All() []Mechanism {
	return []Mechanism{
		NewUndoLog(1 * regionSize),
		NewRedoLog(2 * regionSize),
		NewCheckpoint(3 * regionSize),
		NewShadowPaging(4 * regionSize),
		NewOpLog(5 * regionSize),
		NewChecksum(6 * regionSize),
	}
}

// UndoLog is Table 1 row 1: back up the old data, set the log valid bit,
// update in place, clear the valid bit — the corrected Fig. 2 protocol.
// Layout: data | log | valid.
type UndoLog struct {
	base  uint64
	buggy bool
}

// NewUndoLog returns an undo-logged record at base.
func NewUndoLog(base uint64) *UndoLog { return &UndoLog{base: base} }

// Name implements Mechanism.
func (u *UndoLog) Name() string { return "undo-logging" }

// SetBuggy implements Mechanism: the buggy variant sets the valid bit with
// the same barrier that persists the log (Fig. 11's F2 situation).
func (u *UndoLog) SetBuggy(b bool) { u.buggy = b }

func (u *UndoLog) dataOff() uint64  { return u.base }
func (u *UndoLog) logOff() uint64   { return u.base + 128 }
func (u *UndoLog) validOff() uint64 { return u.base + 256 }

// Init implements Mechanism.
func (u *UndoLog) Init(c *core.Ctx, v Payload) {
	p := c.Pool()
	c.AddCommitRange(u.validOff(), 8, u.logOff(), payloadSize)
	storePayload(p, u.dataOff(), v)
	p.Persist(u.dataOff(), payloadSize)
	p.Store64(u.validOff(), 0)
	p.Persist(u.validOff(), 8)
}

// Update implements Mechanism.
func (u *UndoLog) Update(c *core.Ctx, v Payload) {
	p := c.Pool()
	// Back up the old data, persist, then commit the log.
	p.Copy(u.logOff(), u.dataOff(), payloadSize)
	if u.buggy {
		// BUG: the valid bit persists with the log — nothing orders the
		// backup before its commit.
		p.Store64(u.validOff(), 1)
		p.CLWB(u.logOff(), payloadSize)
		p.CLWB(u.validOff(), 8)
		p.SFence()
	} else {
		p.Persist(u.logOff(), payloadSize)
		p.Store64(u.validOff(), 1)
		p.Persist(u.validOff(), 8)
	}
	// In-place update, then release the log.
	storePayload(p, u.dataOff(), v)
	p.Persist(u.dataOff(), payloadSize)
	p.Store64(u.validOff(), 0)
	p.Persist(u.validOff(), 8)
}

// Recover implements Mechanism: if the log is valid, the update may be
// torn — roll back.
func (u *UndoLog) Recover(c *core.Ctx) (Payload, error) {
	p := c.Pool()
	c.AddCommitRange(u.validOff(), 8, u.logOff(), payloadSize)
	if p.Load64(u.validOff()) != 0 { // benign commit-variable read
		p.Copy(u.dataOff(), u.logOff(), payloadSize)
		p.Persist(u.dataOff(), payloadSize)
		p.Store64(u.validOff(), 0)
		p.Persist(u.validOff(), 8)
	}
	v := loadPayload(p, u.dataOff())
	return v, v.Check()
}

// RedoLog is Table 1 row 2: write the new data to the log, commit it, then
// apply in place. Data consistency: the committed log, otherwise the
// existing data.
type RedoLog struct {
	base  uint64
	buggy bool
}

// NewRedoLog returns a redo-logged record at base.
func NewRedoLog(base uint64) *RedoLog { return &RedoLog{base: base} }

// Name implements Mechanism.
func (r *RedoLog) Name() string { return "redo-logging" }

// SetBuggy implements Mechanism: the buggy variant applies the update in
// place before committing the log.
func (r *RedoLog) SetBuggy(b bool) { r.buggy = b }

func (r *RedoLog) dataOff() uint64   { return r.base }
func (r *RedoLog) logOff() uint64    { return r.base + 128 }
func (r *RedoLog) commitOff() uint64 { return r.base + 256 }

// Init implements Mechanism.
func (r *RedoLog) Init(c *core.Ctx, v Payload) {
	p := c.Pool()
	c.AddCommitRange(r.commitOff(), 8, r.logOff(), payloadSize)
	storePayload(p, r.dataOff(), v)
	p.Persist(r.dataOff(), payloadSize)
	p.Store64(r.commitOff(), 0)
	p.Persist(r.commitOff(), 8)
}

// Update implements Mechanism.
func (r *RedoLog) Update(c *core.Ctx, v Payload) {
	p := c.Pool()
	if r.buggy {
		// BUG: in-place update before the log commits; a failure here
		// leaves torn data and an invalid log.
		storePayload(p, r.dataOff(), v)
		p.Persist(r.dataOff(), payloadSize)
	}
	storePayload(p, r.logOff(), v)
	p.Persist(r.logOff(), payloadSize)
	p.Store64(r.commitOff(), 1)
	p.Persist(r.commitOff(), 8)
	if !r.buggy {
		storePayload(p, r.dataOff(), v)
		p.Persist(r.dataOff(), payloadSize)
	}
	p.Store64(r.commitOff(), 0)
	p.Persist(r.commitOff(), 8)
}

// Recover implements Mechanism: a committed log is replayed; an
// uncommitted one is discarded.
func (r *RedoLog) Recover(c *core.Ctx) (Payload, error) {
	p := c.Pool()
	c.AddCommitRange(r.commitOff(), 8, r.logOff(), payloadSize)
	if p.Load64(r.commitOff()) != 0 { // benign commit-variable read
		p.Copy(r.dataOff(), r.logOff(), payloadSize)
		p.Persist(r.dataOff(), payloadSize)
		p.Store64(r.commitOff(), 0)
		p.Persist(r.commitOff(), 8)
	}
	v := loadPayload(p, r.dataOff())
	return v, v.Check()
}

// Checkpoint is Table 1 row 3: two checkpoint slots and a persistent
// latest-committed index. Data consistency: the latest committed
// checkpoint; older checkpoints are persisted yet semantically stale —
// the paper's canonical cross-failure *semantic* scenario.
type Checkpoint struct {
	base  uint64
	buggy bool
}

// NewCheckpoint returns a checkpointed record at base.
func NewCheckpoint(base uint64) *Checkpoint { return &Checkpoint{base: base} }

// Name implements Mechanism.
func (k *Checkpoint) Name() string { return "checkpointing" }

// SetBuggy implements Mechanism: the buggy recovery reads the *older*
// checkpoint — persisted data that violates the mechanism's semantics.
func (k *Checkpoint) SetBuggy(b bool) { k.buggy = b }

func (k *Checkpoint) slotOff(i uint64) uint64 { return k.base + 128 + i*128 }
func (k *Checkpoint) currentOff() uint64      { return k.base } // commit variable

// Init implements Mechanism.
func (k *Checkpoint) Init(c *core.Ctx, v Payload) {
	p := c.Pool()
	c.AddCommitRange(k.currentOff(), 8, k.slotOff(0), 256)
	storePayload(p, k.slotOff(0), v)
	p.Persist(k.slotOff(0), payloadSize)
	p.Store64(k.currentOff(), 0)
	p.Persist(k.currentOff(), 8)
}

// Update implements Mechanism: write the next checkpoint slot, then commit
// the index.
func (k *Checkpoint) Update(c *core.Ctx, v Payload) {
	p := c.Pool()
	cur := p.Load64(k.currentOff())
	next := 1 - cur
	storePayload(p, k.slotOff(next), v)
	p.Persist(k.slotOff(next), payloadSize)
	p.Store64(k.currentOff(), next)
	p.Persist(k.currentOff(), 8)
}

// Recover implements Mechanism.
func (k *Checkpoint) Recover(c *core.Ctx) (Payload, error) {
	p := c.Pool()
	c.AddCommitRange(k.currentOff(), 8, k.slotOff(0), 256)
	cur := p.Load64(k.currentOff()) // benign commit-variable read
	if k.buggy {
		// BUG: reads the previous checkpoint — persisted but stale.
		cur = 1 - cur
	}
	v := loadPayload(p, k.slotOff(cur))
	return v, v.Check()
}

// ShadowPaging is Table 1 row 4: copy-on-write into a shadow object, then
// swap a persistent pointer. Data consistency: the object the pointer
// commits to.
type ShadowPaging struct {
	base  uint64
	buggy bool
}

// NewShadowPaging returns a shadow-paged record at base.
func NewShadowPaging(base uint64) *ShadowPaging { return &ShadowPaging{base: base} }

// Name implements Mechanism.
func (s *ShadowPaging) Name() string { return "shadow-paging" }

// SetBuggy implements Mechanism: the buggy variant swaps the pointer
// before the shadow object is persisted.
func (s *ShadowPaging) SetBuggy(b bool) { s.buggy = b }

func (s *ShadowPaging) ptrOff() uint64         { return s.base } // commit variable
func (s *ShadowPaging) objOff(i uint64) uint64 { return s.base + 128 + i*128 }
func (s *ShadowPaging) indexOf(ptr uint64) uint64 {
	if ptr == s.objOff(1) {
		return 1
	}
	return 0
}

// Init implements Mechanism.
func (s *ShadowPaging) Init(c *core.Ctx, v Payload) {
	p := c.Pool()
	c.AddCommitRange(s.ptrOff(), 8, s.objOff(0), 256)
	storePayload(p, s.objOff(0), v)
	p.Persist(s.objOff(0), payloadSize)
	p.Store64(s.ptrOff(), s.objOff(0))
	p.Persist(s.ptrOff(), 8)
}

// Update implements Mechanism.
func (s *ShadowPaging) Update(c *core.Ctx, v Payload) {
	p := c.Pool()
	cur := s.indexOf(p.Load64(s.ptrOff()))
	shadow := s.objOff(1 - cur)
	storePayload(p, shadow, v)
	if !s.buggy {
		p.Persist(shadow, payloadSize)
	}
	// BUG (when buggy): the pointer commits to a shadow object whose
	// content was never written back.
	p.Store64(s.ptrOff(), shadow)
	p.Persist(s.ptrOff(), 8)
}

// Recover implements Mechanism.
func (s *ShadowPaging) Recover(c *core.Ctx) (Payload, error) {
	p := c.Pool()
	c.AddCommitRange(s.ptrOff(), 8, s.objOff(0), 256)
	ptr := p.Load64(s.ptrOff()) // benign commit-variable read
	if ptr == 0 {
		return Payload{}, fmt.Errorf("shadow paging: nil object pointer")
	}
	v := loadPayload(p, ptr)
	return v, v.Check()
}

// OpLog is Table 1 row 5: log the operation (here: "set seed") rather than
// the data; recovery re-executes logged operations. Data consistency:
// logged operations are consistent.
type OpLog struct {
	base  uint64
	buggy bool
}

// NewOpLog returns an operation-logged record at base.
func NewOpLog(base uint64) *OpLog { return &OpLog{base: base} }

// Name implements Mechanism.
func (o *OpLog) Name() string { return "operational-logging" }

// SetBuggy implements Mechanism: the buggy variant marks the operation
// complete before the in-place result persists.
func (o *OpLog) SetBuggy(b bool) { o.buggy = b }

func (o *OpLog) dataOff() uint64 { return o.base }
func (o *OpLog) opOff() uint64   { return o.base + 128 } // {seed, pending}
func (o *OpLog) pendOff() uint64 { return o.base + 192 } // commit variable

// Init implements Mechanism.
func (o *OpLog) Init(c *core.Ctx, v Payload) {
	p := c.Pool()
	c.AddCommitVar(o.pendOff(), 8)
	storePayload(p, o.dataOff(), v)
	p.Persist(o.dataOff(), payloadSize)
	p.Store64(o.pendOff(), 0)
	p.Persist(o.pendOff(), 8)
}

// Update implements Mechanism: log the operation, mark pending, apply,
// clear.
func (o *OpLog) Update(c *core.Ctx, v Payload) {
	p := c.Pool()
	p.Store64(o.opOff(), v.Seed())
	p.Persist(o.opOff(), 8)
	p.Store64(o.pendOff(), 1)
	p.Persist(o.pendOff(), 8)
	storePayload(p, o.dataOff(), v)
	if o.buggy {
		// BUG: the operation is marked complete without the result ever
		// being written back, so recovery trusts data that is not
		// guaranteed persistent.
		p.Store64(o.pendOff(), 0)
		p.Persist(o.pendOff(), 8)
		return
	}
	p.Persist(o.dataOff(), payloadSize)
	p.Store64(o.pendOff(), 0)
	p.Persist(o.pendOff(), 8)
}

// Recover implements Mechanism: a pending operation is re-executed from
// its log record (recovery overwrites the possibly-torn data, the
// recover_alt pattern).
func (o *OpLog) Recover(c *core.Ctx) (Payload, error) {
	p := c.Pool()
	c.AddCommitVar(o.pendOff(), 8)
	if p.Load64(o.pendOff()) != 0 { // benign commit-variable read
		seed := p.Load64(o.opOff())
		storePayload(p, o.dataOff(), MakePayload(seed))
		p.Persist(o.dataOff(), payloadSize)
		p.Store64(o.pendOff(), 0)
		p.Persist(o.pendOff(), 8)
	}
	v := loadPayload(p, o.dataOff())
	return v, v.Check()
}

// Checksum is Table 1 row 6: data is written together with a checksum;
// recovery reads both and decides validity. Consistency does not hinge on
// ordering points, so — per §5.5 — the update requests additional failure
// points between its stores with AddFailurePoint.
type Checksum struct {
	base  uint64
	buggy bool
}

// NewChecksum returns a checksum-protected record at base.
func NewChecksum(base uint64) *Checksum { return &Checksum{base: base} }

// Name implements Mechanism.
func (s *Checksum) Name() string { return "checksum-recovery" }

// SetBuggy implements Mechanism: the buggy recovery skips the checksum
// validation (and the benign-race annotation that goes with it), reading
// the slot like ordinary consistent data.
func (s *Checksum) SetBuggy(b bool) { s.buggy = b }

func (s *Checksum) slotOff(i uint64) uint64 { return s.base + 128 + i*128 } // payload + checksum
func (s *Checksum) seqOff() uint64          { return s.base }               // latest slot hint

func checksum(v Payload) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range v {
		h = (h ^ w) * 1099511628211
	}
	return h
}

// Init implements Mechanism.
func (s *Checksum) Init(c *core.Ctx, v Payload) {
	p := c.Pool()
	for i := uint64(0); i < 2; i++ {
		storePayload(p, s.slotOff(i), v)
		p.Store64(s.slotOff(i)+payloadSize, checksum(v))
		p.Persist(s.slotOff(i), payloadSize+8)
	}
	p.Store64(s.seqOff(), 0)
	p.Persist(s.seqOff(), 8)
}

// Update implements Mechanism: write the inactive slot (data + checksum),
// then flip the hint. The hint itself needs no ordering: recovery
// validates with the checksum, which is why extra failure points are
// injected mid-update (§5.5).
func (s *Checksum) Update(c *core.Ctx, v Payload) {
	p := c.Pool()
	cur := p.Load64(s.seqOff())
	next := 1 - cur
	slot := s.slotOff(next)
	storePayload(p, slot, v)
	c.AddFailurePoint(true) // §5.5: checksum consistency is not fence-bounded
	p.Store64(slot+payloadSize, checksum(v))
	c.AddFailurePoint(true)
	p.Persist(slot, payloadSize+8)
	p.Store64(s.seqOff(), next)
	p.Persist(s.seqOff(), 8)
}

// Recover implements Mechanism: read the hinted slot and validate it by
// checksum — the checksum read pattern is itself a benign cross-failure
// race (§3.1), annotated with a skip-detection region and scrubbed.
func (s *Checksum) Recover(c *core.Ctx) (Payload, error) {
	p := c.Pool()
	if s.buggy {
		// BUG: plain reads of the hint and slot, as if they were ordinary
		// consistent data — no validation, no annotation, no scrub. A
		// failure inside the update window makes these reads cross-failure
		// races.
		hint := p.Load64(s.seqOff())
		v := loadPayload(p, s.slotOff(hint%2))
		return v, v.Check()
	}
	for attempt := uint64(0); attempt < 2; attempt++ {
		c.SkipDetectionBegin(true, trace.BothStages)
		hint := p.Load64(s.seqOff())
		slot := s.slotOff((hint + attempt) % 2)
		v := loadPayload(p, slot)
		sum := p.Load64(slot + payloadSize)
		c.SkipDetectionEnd(true, trace.BothStages)
		if !s.buggy && (checksum(v) != sum || v.Check() != nil) {
			continue // torn slot: fall back to the other version
		}
		// Scrub: commit the validated version so resumption reads
		// guaranteed-persistent data.
		storePayload(p, slot, v)
		p.Store64(slot+payloadSize, sum)
		p.Persist(slot, payloadSize+8)
		p.Store64(s.seqOff(), (hint+attempt)%2)
		p.Persist(s.seqOff(), 8)
		return v, v.Check()
	}
	return Payload{}, fmt.Errorf("checksum recovery: no valid slot")
}
