package mechanisms_test

import (
	"fmt"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/mechanisms"
)

// target builds the detection target for one mechanism: init with seed 1,
// update through seeds 2..4 pre-failure; recover, check consistency, and
// resume with one more update post-failure.
func target(m mechanisms.Mechanism, buggy bool) core.Target {
	m.SetBuggy(buggy)
	return core.Target{
		Name: m.Name(),
		Setup: func(c *core.Ctx) error {
			m.Init(c, mechanisms.MakePayload(1))
			return nil
		},
		Pre: func(c *core.Ctx) error {
			for seed := uint64(2); seed <= 4; seed++ {
				m.Update(c, mechanisms.MakePayload(seed))
			}
			return nil
		},
		Post: func(c *core.Ctx) error {
			v, err := m.Recover(c)
			if err != nil {
				return err
			}
			if s := v.Seed(); s < 1 || s > 4 {
				return fmt.Errorf("%s: recovered impossible seed %d", m.Name(), s)
			}
			// Resumption: one more update must succeed on the recovered
			// state.
			m.Update(c, mechanisms.MakePayload(9))
			return nil
		},
	}
}

// TestTable1MechanismsClean: every correct mechanism recovers a consistent
// version at every failure point with no reports — the data-consistency
// guarantees of Table 1.
func TestTable1MechanismsClean(t *testing.T) {
	for _, m := range mechanisms.All() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			res, err := core.Run(core.Config{}, target(m, false))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d failure points, %d post entries",
				m.Name(), res.FailurePoints, res.PostEntries)
			if len(res.Reports) != 0 {
				t.Fatalf("clean %s produced reports:\n%s", m.Name(), res)
			}
			if res.FailurePoints < 5 {
				t.Errorf("failure points = %d, want several", res.FailurePoints)
			}
		})
	}
}

// TestTable1MechanismsBuggy: each mechanism's characteristic ordering bug
// is detected with the expected class.
func TestTable1MechanismsBuggy(t *testing.T) {
	want := map[string]core.BugClass{
		"undo-logging":        core.CrossFailureSemantic,
		"redo-logging":        core.CrossFailureRace,
		"checkpointing":       core.CrossFailureSemantic,
		"shadow-paging":       core.CrossFailureRace,
		"operational-logging": core.CrossFailureRace,
		"checksum-recovery":   core.CrossFailureRace,
	}
	for _, m := range mechanisms.All() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			res, err := core.Run(core.Config{}, target(m, true))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("\n%s", res)
			if res.Count(want[m.Name()]) == 0 {
				t.Fatalf("%s bug not reported as %s:\n%s", m.Name(), want[m.Name()], res)
			}
		})
	}
}

// TestPayload checks the payload helpers themselves.
func TestPayload(t *testing.T) {
	p := mechanisms.MakePayload(42)
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if p.Seed() != 42 {
		t.Fatalf("seed = %d", p.Seed())
	}
	p[3]++
	if err := p.Check(); err == nil {
		t.Fatal("torn payload passed Check")
	}
}
