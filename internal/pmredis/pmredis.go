// Package pmredis is a miniature PM-backed Redis in the spirit of Intel's
// pmem-redis port (the paper's Table 4 "Redis" row): a string key-value
// store whose dictionary lives in persistent memory behind pmobj
// transactions, with a text command interface (SET/GET/DEL/EXISTS/DBSIZE/
// KEYS/PING) served either in-process or over a network connection.
//
// The paper's Bug 3 (server.c:4029) lives in initPersistentMemory: the
// server initializes `num_dict_entries` without transaction protection, so
// a failure during initialization leaves the counter's persistence
// unguaranteed while the post-failure server reads it. The seeded
// InitRaceBug option reproduces it; the correct initialization covers the
// counter with the creating transaction.
package pmredis

import (
	"bufio"
	"fmt"
	"net"
	"strings"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/pmobj"
)

// Root object layout (64 bytes).
const (
	rootDir      = 0  // bucket directory offset
	rootNBuckets = 8  // directory size
	rootEntries  = 16 // num_dict_entries (the Bug 3 counter)
	rootSize     = 64

	nBuckets = 16
)

// Entry layout (40 bytes): next | keyOff | keyLen | valOff | valLen.
const (
	entNext   = 0
	entKeyOff = 8
	entKeyLen = 16
	entValOff = 24
	entValLen = 32
	entSize   = 40
)

// Options configures DB creation.
type Options struct {
	// InitRaceBug seeds the paper's Bug 3: num_dict_entries is
	// initialized outside the dictionary-creating transaction.
	InitRaceBug bool
}

// DB is an open PM-Redis database.
type DB struct {
	c    *core.Ctx
	po   *pmobj.Pool
	p    *pmem.Pool
	root uint64
	opts Options
}

// Create initializes the persistent dictionary — initPersistentMemory in
// the paper's terms.
func Create(c *core.Ctx, opts Options) (*DB, error) {
	po, err := pmobj.Create(c.Pool(), rootSize, nil)
	if err != nil {
		return nil, err
	}
	db := &DB{c: c, po: po, p: c.Pool(), root: po.Root(), opts: opts}
	err = po.Tx(func(tx *pmobj.Tx) error {
		dir, err := tx.Alloc(nBuckets * 8)
		if err != nil {
			return err
		}
		if err := tx.Add(db.root, 24); err != nil {
			return err
		}
		db.p.Store64(db.root+rootDir, dir)
		db.p.Store64(db.root+rootNBuckets, nBuckets)
		if !opts.InitRaceBug {
			db.p.Store64(db.root+rootEntries, 0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.InitRaceBug {
		// BUG 3 (paper Fig. 14c): the counter is initialized outside the
		// transaction, with a raw store that is never written back.
		db.p.Store64(db.root+rootEntries, 0)
	}
	return db, nil
}

// Open opens an existing database, running pmobj recovery.
func Open(c *core.Ctx, opts Options) (*DB, error) {
	po, err := pmobj.Open(c.Pool())
	if err != nil {
		return nil, err
	}
	db := &DB{c: c, po: po, p: c.Pool(), root: po.Root(), opts: opts}
	if db.p.Load64(db.root+rootDir) == 0 {
		return nil, fmt.Errorf("pmredis: dictionary not initialized")
	}
	return db, nil
}

func (db *DB) bucket(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h % db.p.Load64(db.root+rootNBuckets)
}

// loadString reads a persistent string blob.
func (db *DB) loadString(off, n uint64) string {
	if n == 0 {
		return ""
	}
	buf := make([]byte, n)
	db.p.Load(off, buf)
	return string(buf)
}

// storeString allocates and writes a string inside the transaction.
func (db *DB) storeString(tx *pmobj.Tx, s string) (uint64, error) {
	if len(s) == 0 {
		return 0, nil
	}
	off, err := tx.Alloc(uint64(len(s)))
	if err != nil {
		return 0, err
	}
	db.p.Store(off, []byte(s))
	return off, nil
}

// findEntry returns (entry, prev) for key, or (0, prev-tail).
func (db *DB) findEntry(key string) (e, prev uint64) {
	dir := db.p.Load64(db.root + rootDir)
	slot := dir + 8*db.bucket(key)
	e = db.p.Load64(slot)
	for e != 0 {
		k := db.loadString(db.p.Load64(e+entKeyOff), db.p.Load64(e+entKeyLen))
		if k == key {
			return e, prev
		}
		prev = e
		e = db.p.Load64(e + entNext)
	}
	return 0, prev
}

// Set stores key → value.
func (db *DB) Set(key, value string) error {
	if key == "" {
		return fmt.Errorf("pmredis: empty key")
	}
	return db.po.Tx(func(tx *pmobj.Tx) error {
		e, _ := db.findEntry(key)
		if e != 0 {
			// Replace the value blob.
			valOff, err := db.storeString(tx, value)
			if err != nil {
				return err
			}
			if old := db.p.Load64(e + entValOff); old != 0 {
				if err := tx.Free(old); err != nil {
					return err
				}
			}
			if err := tx.Add(e, entSize); err != nil {
				return err
			}
			db.p.Store64(e+entValOff, valOff)
			db.p.Store64(e+entValLen, uint64(len(value)))
			return nil
		}
		keyOff, err := db.storeString(tx, key)
		if err != nil {
			return err
		}
		valOff, err := db.storeString(tx, value)
		if err != nil {
			return err
		}
		ne, err := tx.Alloc(entSize)
		if err != nil {
			return err
		}
		dir := db.p.Load64(db.root + rootDir)
		slot := dir + 8*db.bucket(key)
		db.p.Store64(ne+entKeyOff, keyOff)
		db.p.Store64(ne+entKeyLen, uint64(len(key)))
		db.p.Store64(ne+entValOff, valOff)
		db.p.Store64(ne+entValLen, uint64(len(value)))
		db.p.Store64(ne+entNext, db.p.Load64(slot))
		if err := tx.Add(slot, 8); err != nil {
			return err
		}
		db.p.Store64(slot, ne)
		if err := tx.Add(db.root+rootEntries, 8); err != nil {
			return err
		}
		db.p.Store64(db.root+rootEntries, db.p.Load64(db.root+rootEntries)+1)
		return nil
	})
}

// Get retrieves key's value.
func (db *DB) Get(key string) (string, bool) {
	e, _ := db.findEntry(key)
	if e == 0 {
		return "", false
	}
	return db.loadString(db.p.Load64(e+entValOff), db.p.Load64(e+entValLen)), true
}

// Del removes key; it reports whether the key existed.
func (db *DB) Del(key string) (bool, error) {
	existed := false
	err := db.po.Tx(func(tx *pmobj.Tx) error {
		e, prev := db.findEntry(key)
		if e == 0 {
			return nil
		}
		existed = true
		next := db.p.Load64(e + entNext)
		if prev == 0 {
			dir := db.p.Load64(db.root + rootDir)
			slot := dir + 8*db.bucket(key)
			if err := tx.Add(slot, 8); err != nil {
				return err
			}
			db.p.Store64(slot, next)
		} else {
			if err := tx.Add(prev, entSize); err != nil {
				return err
			}
			db.p.Store64(prev+entNext, next)
		}
		for _, blob := range []struct{ off uint64 }{
			{db.p.Load64(e + entKeyOff)}, {db.p.Load64(e + entValOff)},
		} {
			if blob.off != 0 {
				if err := tx.Free(blob.off); err != nil {
					return err
				}
			}
		}
		if err := tx.Free(e); err != nil {
			return err
		}
		if err := tx.Add(db.root+rootEntries, 8); err != nil {
			return err
		}
		db.p.Store64(db.root+rootEntries, db.p.Load64(db.root+rootEntries)-1)
		return nil
	})
	return existed, err
}

// DBSize returns num_dict_entries — the counter of the paper's Bug 3.
func (db *DB) DBSize() uint64 {
	return db.p.Load64(db.root + rootEntries)
}

// Keys returns every key (unordered).
func (db *DB) Keys() []string {
	var keys []string
	dir := db.p.Load64(db.root + rootDir)
	nb := db.p.Load64(db.root + rootNBuckets)
	for b := uint64(0); b < nb; b++ {
		for e := db.p.Load64(dir + 8*b); e != 0; e = db.p.Load64(e + entNext) {
			keys = append(keys, db.loadString(db.p.Load64(e+entKeyOff), db.p.Load64(e+entKeyLen)))
		}
	}
	return keys
}

// Verify checks that num_dict_entries matches the reachable entries and
// that every key routes to its bucket.
func (db *DB) Verify() error {
	dir := db.p.Load64(db.root + rootDir)
	nb := db.p.Load64(db.root + rootNBuckets)
	if nb == 0 {
		return fmt.Errorf("pmredis: no buckets")
	}
	n := uint64(0)
	for b := uint64(0); b < nb; b++ {
		for e := db.p.Load64(dir + 8*b); e != 0; e = db.p.Load64(e + entNext) {
			k := db.loadString(db.p.Load64(e+entKeyOff), db.p.Load64(e+entKeyLen))
			if db.bucket(k) != b {
				return fmt.Errorf("pmredis: key %q in bucket %d, want %d", k, b, db.bucket(k))
			}
			n++
			if n > 1<<22 {
				return fmt.Errorf("pmredis: chain cycle suspected")
			}
		}
	}
	if c := db.DBSize(); c != n {
		return fmt.Errorf("pmredis: num_dict_entries=%d but %d reachable entries", c, n)
	}
	return nil
}

// Do executes one command line ("SET k v", "GET k", ...) and returns the
// reply in Redis's inline style.
func (db *DB) Do(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", fmt.Errorf("pmredis: empty command")
	}
	cmd := strings.ToUpper(fields[0])
	switch {
	case cmd == "PING":
		return "+PONG", nil
	case cmd == "SET" && len(fields) == 3:
		if err := db.Set(fields[1], fields[2]); err != nil {
			return "", err
		}
		return "+OK", nil
	case cmd == "GET" && len(fields) == 2:
		v, ok := db.Get(fields[1])
		if !ok {
			return "$-1", nil
		}
		return fmt.Sprintf("$%d %s", len(v), v), nil
	case cmd == "DEL" && len(fields) == 2:
		existed, err := db.Del(fields[1])
		if err != nil {
			return "", err
		}
		if existed {
			return ":1", nil
		}
		return ":0", nil
	case cmd == "EXISTS" && len(fields) == 2:
		if _, ok := db.Get(fields[1]); ok {
			return ":1", nil
		}
		return ":0", nil
	case cmd == "DBSIZE":
		return fmt.Sprintf(":%d", db.DBSize()), nil
	case cmd == "KEYS":
		return fmt.Sprintf("*%d %s", len(db.Keys()), strings.Join(db.Keys(), " ")), nil
	default:
		return "", fmt.Errorf("pmredis: unknown command %q", line)
	}
}

// ServeConn serves the inline protocol on one connection until it closes.
func (db *DB) ServeConn(conn net.Conn) error {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			fmt.Fprintf(conn, "+OK\n")
			return nil
		}
		reply, err := db.Do(line)
		if err != nil {
			reply = "-ERR " + err.Error()
		}
		if _, err := fmt.Fprintf(conn, "%s\n", reply); err != nil {
			return err
		}
	}
	return sc.Err()
}
