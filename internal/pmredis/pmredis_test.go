package pmredis_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmredis"
)

// run executes fn against a fresh DB without detection.
func run(t *testing.T, fn func(c *core.Ctx) error) {
	t.Helper()
	_, err := core.Run(core.Config{Mode: core.ModeOriginal, PoolSize: 4 << 20},
		core.Target{Name: t.Name(), Pre: fn})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetGetDel(t *testing.T) {
	run(t, func(c *core.Ctx) error {
		db, err := pmredis.Create(c, pmredis.Options{})
		if err != nil {
			return err
		}
		if err := db.Set("name", "redis"); err != nil {
			return err
		}
		if err := db.Set("port", "6379"); err != nil {
			return err
		}
		if v, ok := db.Get("name"); !ok || v != "redis" {
			return fmt.Errorf("get name = %q, %v", v, ok)
		}
		if err := db.Set("name", "pm-redis"); err != nil {
			return err
		}
		if v, _ := db.Get("name"); v != "pm-redis" {
			return fmt.Errorf("after update: %q", v)
		}
		if db.DBSize() != 2 {
			return fmt.Errorf("dbsize = %d, want 2", db.DBSize())
		}
		existed, err := db.Del("name")
		if err != nil || !existed {
			return fmt.Errorf("del name = %v, %v", existed, err)
		}
		if _, ok := db.Get("name"); ok {
			return fmt.Errorf("name still present after DEL")
		}
		if db.DBSize() != 1 {
			return fmt.Errorf("dbsize = %d, want 1", db.DBSize())
		}
		return db.Verify()
	})
}

func TestPersistenceAcrossOpen(t *testing.T) {
	run(t, func(c *core.Ctx) error {
		db, err := pmredis.Create(c, pmredis.Options{})
		if err != nil {
			return err
		}
		for i := 0; i < 50; i++ {
			if err := db.Set(fmt.Sprintf("key:%d", i), fmt.Sprintf("val:%d", i)); err != nil {
				return err
			}
		}
		db2, err := pmredis.Open(c, pmredis.Options{})
		if err != nil {
			return err
		}
		if db2.DBSize() != 50 {
			return fmt.Errorf("dbsize after reopen = %d", db2.DBSize())
		}
		for i := 0; i < 50; i++ {
			v, ok := db2.Get(fmt.Sprintf("key:%d", i))
			if !ok || v != fmt.Sprintf("val:%d", i) {
				return fmt.Errorf("key:%d = %q, %v", i, v, ok)
			}
		}
		if got := len(db2.Keys()); got != 50 {
			return fmt.Errorf("KEYS returned %d", got)
		}
		return db2.Verify()
	})
}

func TestCommandInterface(t *testing.T) {
	run(t, func(c *core.Ctx) error {
		db, err := pmredis.Create(c, pmredis.Options{})
		if err != nil {
			return err
		}
		steps := []struct{ cmd, want string }{
			{"PING", "+PONG"},
			{"SET lang go", "+OK"},
			{"GET lang", "$2 go"},
			{"EXISTS lang", ":1"},
			{"EXISTS nope", ":0"},
			{"DBSIZE", ":1"},
			{"DEL lang", ":1"},
			{"DEL lang", ":0"},
			{"GET lang", "$-1"},
		}
		for _, s := range steps {
			got, err := db.Do(s.cmd)
			if err != nil {
				return fmt.Errorf("%s: %v", s.cmd, err)
			}
			if got != s.want {
				return fmt.Errorf("%s = %q, want %q", s.cmd, got, s.want)
			}
		}
		if _, err := db.Do("BOGUS"); err == nil {
			return fmt.Errorf("BOGUS accepted")
		}
		return nil
	})
}

func TestServeConn(t *testing.T) {
	run(t, func(c *core.Ctx) error {
		db, err := pmredis.Create(c, pmredis.Options{})
		if err != nil {
			return err
		}
		client, server := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- db.ServeConn(server) }()
		rd := bufio.NewScanner(client)
		say := func(cmd string) string {
			fmt.Fprintf(client, "%s\n", cmd)
			if !rd.Scan() {
				t.Fatalf("no reply to %q", cmd)
			}
			return rd.Text()
		}
		if got := say("SET greeting hello"); got != "+OK" {
			return fmt.Errorf("SET over conn = %q", got)
		}
		if got := say("GET greeting"); !strings.Contains(got, "hello") {
			return fmt.Errorf("GET over conn = %q", got)
		}
		if got := say("BOGUS"); !strings.HasPrefix(got, "-ERR") {
			return fmt.Errorf("error reply = %q", got)
		}
		say("QUIT")
		client.Close()
		return <-done
	})
}

// redisTarget is the detection setup of §6.1: updates as the pre-failure
// RoI, recovery + resumption as the post-failure RoI.
func redisTarget(name string, opts pmredis.Options, queries int) core.Target {
	return core.Target{
		Name: name,
		Pre: func(c *core.Ctx) error {
			db, err := pmredis.Create(c, opts)
			if err != nil {
				return err
			}
			for i := 0; i < queries; i++ {
				if err := db.Set(fmt.Sprintf("key:%d", i), fmt.Sprintf("val:%d", i)); err != nil {
					return err
				}
			}
			_, err = db.Del("key:0")
			return err
		},
		Post: func(c *core.Ctx) error {
			db, err := pmredis.Open(c, opts)
			if err != nil {
				return nil // creation had not committed; server starts fresh
			}
			db.DBSize() // the Bug 3 read
			if _, err := db.Do("SET resumed yes"); err != nil {
				return err
			}
			return db.Verify()
		},
	}
}

// TestCleanRedisUnderDetection: the correct server survives all failure
// points without reports.
func TestCleanRedisUnderDetection(t *testing.T) {
	res, err := core.Run(core.Config{PoolSize: 4 << 20},
		redisTarget("redis-clean", pmredis.Options{}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 0 {
		t.Fatalf("clean redis produced reports:\n%s", res)
	}
	if res.FailurePoints < 10 {
		t.Errorf("failure points = %d, want many", res.FailurePoints)
	}
}

// TestBug3InitRaceDetected reproduces the paper's Bug 3: the server
// initializes num_dict_entries without transaction protection; a failure
// during initialization lets the post-failure server read a counter whose
// persistence was never guaranteed.
func TestBug3InitRaceDetected(t *testing.T) {
	res, err := core.Run(core.Config{PoolSize: 4 << 20},
		redisTarget("redis-bug3", pmredis.Options{InitRaceBug: true}, 4))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Count(core.CrossFailureRace) == 0 {
		t.Fatalf("Bug 3 went undetected:\n%s", res)
	}
}
