package bench

import (
	"fmt"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
)

// runVerdictFleet runs target as a three-shard fleet, optionally sharing
// a class registry (the in-process form of the -serve daemon's
// claim/resolve channel; nil models -no-cross-shard-prune, where each
// shard prunes only within its own partition).
func runVerdictFleet(t *testing.T, target func() core.Target, reg *core.ClassRegistry) (posts, cross int, union map[string]bool) {
	t.Helper()
	const shards = 3
	union = map[string]bool{}
	for idx := 0; idx < shards; idx++ {
		var v core.VerdictSource
		if reg != nil {
			v = reg.Bind(fmt.Sprintf("shard%d", idx))
		}
		res, err := core.Run(core.Config{
			PoolSize:   DefaultPoolSize,
			ShardCount: shards,
			ShardIndex: idx,
			Verdicts:   v,
		}, target())
		if err != nil {
			t.Fatal(err)
		}
		if got := res.BucketedFailurePoints(); got != res.FailurePoints {
			t.Errorf("shard %d: buckets sum to %d, want %d failure points", idx, got, res.FailurePoints)
		}
		posts += res.PostRuns
		cross += res.CrossShardPrunedFailurePoints
		for _, k := range dedupKeys(res) {
			union[k] = true
		}
	}
	return posts, cross, union
}

// TestCrossShardPruningEquivalence pins the cross-shard verdict
// channel's soundness contract on every Table 4 workload under the
// update-heavy ablation configuration: a three-shard fleet sharing a
// core.ClassRegistry must produce the byte-identical merged report-key
// set of a fleet with the channel disabled, with no more post-failure
// executions in aggregate, and the drop must be fully accounted by
// cross-shard attributions.
func TestCrossShardPruningEquivalence(t *testing.T) {
	for _, row := range Table4() {
		row := row
		t.Run(row.Name, func(t *testing.T) {
			target := func() core.Target { return row.Target(PruneAblationConfig) }
			localPosts, localCross, localUnion := runVerdictFleet(t, target, nil)
			if localCross != 0 {
				t.Errorf("registry-less fleet attributed %d cross-shard failure points", localCross)
			}
			sharedPosts, sharedCross, sharedUnion := runVerdictFleet(t, target, core.NewClassRegistry())
			if got, want := sortedSetKeys(sharedUnion), sortedSetKeys(localUnion); !stringSlicesEqual(got, want) {
				t.Errorf("shared-registry report keys diverge from the local-only fleet\nlocal:  %v\nshared: %v",
					want, got)
			}
			if sharedPosts > localPosts {
				t.Errorf("sharing verdicts increased post-runs: %d -> %d", localPosts, sharedPosts)
			}
			if localPosts-sharedPosts > 0 && sharedCross == 0 {
				t.Errorf("post-runs dropped %d -> %d with no cross-shard attributions recorded",
					localPosts, sharedPosts)
			}
			t.Logf("%s: post-runs %d local-only -> %d shared (%d cross-shard attributions)",
				row.Name, localPosts, sharedPosts, sharedCross)
		})
	}
}

// TestCrossShardPruningAcceptance is the headline claim of the verdict
// channel, pinned as a test so a regression cannot silently erode it:
// on the steady-state update-loop campaign BenchmarkCrossShardPruning
// measures, the shared-registry fleet must post-run at least 2x fewer
// failure points than the -no-cross-shard-prune fleet, report the
// byte-identical merged key set, and land exactly at the single-process
// pruned run's representative count (sequential shards make ownership
// deterministic, so the bound is an equality).
func TestCrossShardPruningAcceptance(t *testing.T) {
	target := func() core.Target { return UpdateLoopTarget("update-loop", 16, 30) }

	single, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, target())
	if err != nil {
		t.Fatal(err)
	}
	if len(dedupKeys(single)) == 0 {
		t.Fatal("update-loop campaign found no bugs; the key-set equivalence would be vacuous")
	}

	localPosts, _, localUnion := runVerdictFleet(t, target, nil)
	sharedPosts, sharedCross, sharedUnion := runVerdictFleet(t, target, core.NewClassRegistry())

	if got, want := sortedSetKeys(sharedUnion), sortedSetKeys(localUnion); !stringSlicesEqual(got, want) {
		t.Errorf("shared-registry report keys diverge from the local-only fleet\nlocal:  %v\nshared: %v", want, got)
	}
	if got, want := sortedSetKeys(sharedUnion), dedupKeys(single); !stringSlicesEqual(got, want) {
		t.Errorf("fleet report keys diverge from the single-process run\nsingle: %v\nfleet:  %v", want, got)
	}
	if sharedPosts != single.PostRuns {
		t.Errorf("shared fleet post-ran %d failure points, want %d (one per global class)",
			sharedPosts, single.PostRuns)
	}
	if sharedCross == 0 {
		t.Error("no cross-shard attributions; the registry did nothing")
	}
	if sharedPosts*2 > localPosts {
		t.Errorf("cross-shard pruning saved under 2x: %d post-runs shared vs %d local-only",
			sharedPosts, localPosts)
	}
	t.Logf("update-loop: post-runs %d local-only -> %d shared (%.2fx, %d cross-shard attributions)",
		localPosts, sharedPosts, float64(localPosts)/float64(sharedPosts), sharedCross)
}
