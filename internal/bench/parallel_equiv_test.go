package bench

import (
	"fmt"
	"sort"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmredis"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

// table4Case is one Table 4 workload with (for all but Memcached) a
// seeded bug whose detection makes an equivalence comparison non-trivial.
type table4Case struct {
	name      string
	fault     string // documentation: the seeded fault, if any
	wantClass core.BugClass
	wantBug   bool
	target    func() core.Target
}

// table4Cases builds the seven-workload equivalence table of the paper's
// Table 4: each of the five micro benchmarks with a seeded bug from its
// validation suite, Redis with the paper's Bug 3, and Memcached clean.
func table4Cases(t *testing.T) []table4Case {
	cfg := workloads.TargetConfig{InitSize: 2, TestSize: 2, Removes: 1, PostOps: true}
	micro := func(workload, fault string) func() core.Target {
		return func() core.Target {
			m, ok := workloads.MakerFor(workload)
			if !ok {
				t.Fatalf("unknown workload %q", workload)
			}
			c := cfg
			c.Fault = fault
			return workloads.DetectionTarget(m, c)
		}
	}
	return []table4Case{
		{"B-Tree", "btree-skip-add-leaf", core.CrossFailureRace, true,
			micro("B-Tree", "btree-skip-add-leaf")},
		{"C-Tree", "ctree-skip-add-count", core.CrossFailureRace, true,
			micro("C-Tree", "ctree-skip-add-count")},
		{"RB-Tree", "rbt-skip-add-root", core.CrossFailureRace, true,
			micro("RB-Tree", "rbt-skip-add-root")},
		{"Hashmap-TX", "hmtx-skip-add-slot", core.CrossFailureRace, true,
			micro("Hashmap-TX", "hmtx-skip-add-slot")},
		{"Hashmap-Atomic", "hma-sem-inverted-dirty", core.CrossFailureSemantic, true,
			micro("Hashmap-Atomic", "hma-sem-inverted-dirty")},
		{"Redis", "bug3-init-race", core.CrossFailureRace, true,
			func() core.Target { return RedisTarget(pmredis.Options{InitRaceBug: true}, cfg) }},
		{"Memcached", "", 0, false,
			func() core.Target { return MemcachedTarget(cfg) }},
	}
}

// TestParallelEquivalenceAcrossTable4 pins the parallel engine's
// equivalence contract on every evaluated program of the paper's Table 4:
// a Workers>1 run must produce exactly the sequential run's report-key
// set, failure-point count, post-run count and benign byte count. Where a
// bug is seeded, the expected class must actually be detected, so the
// equivalence is established on non-trivial report sets.
func TestParallelEquivalenceAcrossTable4(t *testing.T) {
	for _, tt := range table4Cases(t) {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			seq, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, tt.target())
			if err != nil {
				t.Fatal(err)
			}
			if tt.wantBug && seq.Count(tt.wantClass) == 0 {
				t.Fatalf("seeded fault %q not detected sequentially:\n%s", tt.fault, seq)
			}
			if !tt.wantBug && !seq.Clean() {
				t.Fatalf("expected a clean run:\n%s", seq)
			}
			for _, workers := range []int{2, 4} {
				par, err := core.Run(core.Config{PoolSize: DefaultPoolSize, Workers: workers}, tt.target())
				if err != nil {
					t.Fatal(err)
				}
				if got, want := dedupKeys(par), dedupKeys(seq); !stringSlicesEqual(got, want) {
					t.Errorf("workers=%d: report keys diverge\nseq: %v\npar: %v", workers, want, got)
				}
				for _, c := range []struct {
					field    string
					got, seq interface{}
				}{
					{"failure-points", par.FailurePoints, seq.FailurePoints},
					{"post-runs", par.PostRuns, seq.PostRuns},
					{"benign-reads", par.BenignReads, seq.BenignReads},
					{"post-entries", par.PostEntries, seq.PostEntries},
				} {
					if fmt.Sprint(c.got) != fmt.Sprint(c.seq) {
						t.Errorf("workers=%d: %s = %v, want %v", workers, c.field, c.got, c.seq)
					}
				}
			}
		})
	}
}

func dedupKeys(res *core.Result) []string {
	keys := make([]string, 0, len(res.Reports))
	for _, r := range res.Reports {
		keys = append(keys, r.DedupKey())
	}
	sort.Strings(keys)
	return keys
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
