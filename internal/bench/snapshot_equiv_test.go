package bench

import (
	"fmt"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
)

// TestSnapshotEquivalenceAcrossTable4 pins the incremental-snapshot/COW
// optimization's correctness bar on the seven-workload table: a run with
// Config.DisableIncrementalSnapshots (full image copy per failure point,
// exactly as the paper describes the mechanism) must produce the same
// report-key set and counters as the optimized default, sequentially and
// under workers. Where a bug is seeded, the expected class must actually
// be detected, so the equivalence is established on non-trivial report
// sets.
func TestSnapshotEquivalenceAcrossTable4(t *testing.T) {
	for _, tt := range table4Cases(t) {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			base, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, tt.target())
			if err != nil {
				t.Fatal(err)
			}
			if tt.wantBug && base.Count(tt.wantClass) == 0 {
				t.Fatalf("seeded fault %q not detected with incremental snapshots:\n%s", tt.fault, base)
			}
			if !tt.wantBug && !base.Clean() {
				t.Fatalf("expected a clean run:\n%s", base)
			}
			for _, workers := range []int{1, 2} {
				ablated, err := core.Run(core.Config{
					PoolSize:                    DefaultPoolSize,
					Workers:                     workers,
					DisableIncrementalSnapshots: true,
				}, tt.target())
				if err != nil {
					t.Fatal(err)
				}
				if got, want := dedupKeys(ablated), dedupKeys(base); !stringSlicesEqual(got, want) {
					t.Errorf("workers=%d: ablated report keys diverge\noptimized: %v\nfull-copy: %v",
						workers, want, got)
				}
				for _, c := range []struct {
					field     string
					got, base interface{}
				}{
					{"failure-points", ablated.FailurePoints, base.FailurePoints},
					{"post-runs", ablated.PostRuns, base.PostRuns},
					{"benign-reads", ablated.BenignReads, base.BenignReads},
					{"post-entries", ablated.PostEntries, base.PostEntries},
				} {
					if fmt.Sprint(c.got) != fmt.Sprint(c.base) {
						t.Errorf("workers=%d: %s = %v, want %v", workers, c.field, c.got, c.base)
					}
				}
			}
		})
	}
}

// TestSnapshotMutationCaughtByTable4 proves the seven-workload table has
// teeth against snapshot-layer soundness regressions: with a deliberately
// stale dirty bitmap (incremental snapshots reuse outdated base pages) or
// a torn COW privatization, at least one workload must diverge from its
// unmutated run — real recovery code branches on the bytes it reads, so
// corrupted post-failure images change reports, entry counts, or crash
// the post stage into a PostFailureFault.
//
// Must not run in parallel with other tests: the mutation switches are
// package-level toggles in internal/pmem.
func TestSnapshotMutationCaughtByTable4(t *testing.T) {
	cases := table4Cases(t)
	type summary struct {
		keys    []string
		fps     int
		posts   int
		benign  uint64
		entries int
	}
	baselines := make(map[string]summary)
	for _, tt := range cases {
		res, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, tt.target())
		if err != nil {
			t.Fatal(err)
		}
		baselines[tt.name] = summary{dedupKeys(res), res.FailurePoints, res.PostRuns, res.BenignReads, res.PostEntries}
	}
	for _, mut := range []struct {
		name string
		set  func(bool)
	}{
		{"stale-dirty-bitmap", pmem.SetStaleDirtyForTest},
		{"torn-cow-page", pmem.SetTornCOWForTest},
	} {
		t.Run(mut.name, func(t *testing.T) {
			mut.set(true)
			defer mut.set(false)
			caught := 0
			for _, tt := range cases {
				res, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, tt.target())
				if err != nil {
					// A harness-level failure under mutation is itself a
					// divergence from the clean baseline run.
					caught++
					continue
				}
				b := baselines[tt.name]
				if !stringSlicesEqual(dedupKeys(res), b.keys) ||
					res.FailurePoints != b.fps || res.PostRuns != b.posts ||
					res.BenignReads != b.benign || res.PostEntries != b.entries {
					caught++
				}
			}
			if caught == 0 {
				t.Fatalf("seeded %s mutation went undetected by all %d workloads", mut.name, len(cases))
			}
			t.Logf("%s caught by %d/%d workloads", mut.name, caught, len(cases))
		})
	}
}
