package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Machine-readable benchmark baselines.
//
// `go test -bench` output is a stable line-oriented text format, but
// comparing runs (a perf regression gate, or the before/after tables in
// EXPERIMENTS.md) wants structured data. ParseGoBench converts the text
// into a BenchBaseline, which cmd/xfdbench serializes as JSON — the
// checked-in BENCH_baseline.json at the repo root records the numbers the
// current tree produced on the reference machine.

// BenchResult is one benchmark line: its name, iteration count, ns/op,
// and any custom metrics (pre-s/op, failpoints/op, B/op, ...).
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// BenchBaseline is a parsed `go test -bench` run.
type BenchBaseline struct {
	GoOS       string        `json:"goos,omitempty"`
	GoArch     string        `json:"goarch,omitempty"`
	Package    string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// ParseGoBench reads `go test -bench` output and returns the structured
// baseline. Non-benchmark lines (test chatter, PASS/ok trailers) are
// skipped; a stream with no benchmark lines at all is an error, so a
// silently-empty baseline cannot be committed.
func ParseGoBench(r io.Reader) (*BenchBaseline, error) {
	base := &BenchBaseline{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			base.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			base.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			base.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			base.Benchmarks = append(base.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(base.Benchmarks) == 0 {
		return nil, fmt.Errorf("bench: no benchmark result lines in input")
	}
	return base, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub-8   100   12345 ns/op   0.5 pre-s/op   3 failpoints/op
//
// The fields after the iteration count come in (value, unit) pairs.
func parseBenchLine(line string) (BenchResult, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return BenchResult{}, fmt.Errorf("bench: malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return BenchResult{}, fmt.Errorf("bench: bad iteration count in %q: %v", line, err)
	}
	res := BenchResult{Name: f[0], Iterations: iters}
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return BenchResult{}, fmt.Errorf("bench: bad metric value in %q: %v", line, err)
		}
		if f[i+1] == "ns/op" {
			res.NsPerOp = v
			continue
		}
		if res.Metrics == nil {
			res.Metrics = map[string]float64{}
		}
		res.Metrics[f[i+1]] = v
	}
	return res, nil
}

// WriteJSON serializes the baseline as indented, diff-friendly JSON.
func (b *BenchBaseline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
