//go:build race

package bench

// raceEnabled reports whether this build runs under the Go race detector.
// See racetag_off_test.go for why the stale-fork-page subtests consult it.
const raceEnabled = true
