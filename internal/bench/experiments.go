package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/pmemgo/xfdetector/internal/baseline"
	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/mechanisms"
	"github.com/pmemgo/xfdetector/internal/pmobj"
	"github.com/pmemgo/xfdetector/internal/pmredis"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

// Fig12aRow is one bar of Fig. 12a: detection wall-clock time for one
// workload, broken into pre- and post-failure stages.
type Fig12aRow struct {
	Workload      string
	PreSeconds    float64
	PostSeconds   float64
	FailurePoints int
	PostRuns      int
}

// Fig12a runs the §6.2.1 execution-time experiment: each workload performs
// one insertion under detection (after a one-insertion initialization),
// with one post-failure operation per failure point. The paper's campaign
// runs every failure point, so the reproduction disables crash-state
// pruning; the pruning win is measured separately (PruneAblation).
func Fig12a() ([]Fig12aRow, error) {
	var rows []Fig12aRow
	for _, w := range Table4() {
		res, err := core.Run(core.Config{PoolSize: DefaultPoolSize, DisablePruning: true}, w.Target(Fig12Config))
		if err != nil {
			return nil, fmt.Errorf("fig12a %s: %w", w.Name, err)
		}
		rows = append(rows, Fig12aRow{
			Workload:      w.Name,
			PreSeconds:    res.PreSeconds,
			PostSeconds:   res.PostSeconds,
			FailurePoints: res.FailurePoints,
			PostRuns:      res.PostRuns,
		})
	}
	return rows, nil
}

// WriteFig12a renders the experiment as the paper's figure data.
func WriteFig12a(w io.Writer) error {
	rows, err := Fig12a()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 12a — XFDetector execution time per workload (1 init + 1 test insertion)")
	fmt.Fprintf(w, "%-16s %12s %12s %12s %8s\n", "workload", "pre (s)", "post (s)", "total (s)", "#FPs")
	var geoPre, geoPost float64 = 1, 1
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.4f %12.4f %12.4f %8d\n",
			r.Workload, r.PreSeconds, r.PostSeconds, r.PreSeconds+r.PostSeconds, r.FailurePoints)
		geoPre *= r.PreSeconds + 1e-9
		geoPost *= r.PostSeconds + 1e-9
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "geomean pre %.4fs, post %.4fs — post-failure stage dominates (paper: same shape)\n",
		pow(geoPre, 1/n), pow(geoPost, 1/n))
	return nil
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Exp(y * math.Log(x))
}

// Fig12bRow is one group of Fig. 12b: the slowdown of full detection over
// the tracing-only ("Pure Pin") and original configurations.
type Fig12bRow struct {
	Workload         string
	DetectSeconds    float64
	TraceSeconds     float64
	OriginalSeconds  float64
	OverTraceOnly    float64
	OverOriginal     float64
	TraceOverOrig    float64
	FailurePointsRun int
}

// Fig12b runs the three configurations of §6.2.1 for every workload.
func Fig12b() ([]Fig12bRow, error) {
	var rows []Fig12bRow
	for _, w := range Table4() {
		times := map[core.Mode]float64{}
		fps := 0
		for _, mode := range []core.Mode{core.ModeDetect, core.ModeTraceOnly, core.ModeOriginal} {
			start := time.Now()
			res, err := core.Run(core.Config{PoolSize: DefaultPoolSize, Mode: mode, DisablePruning: true}, w.Target(Fig12Config))
			if err != nil {
				return nil, fmt.Errorf("fig12b %s %v: %w", w.Name, mode, err)
			}
			times[mode] = time.Since(start).Seconds()
			if mode == core.ModeDetect {
				fps = res.FailurePoints
			}
		}
		const floor = 50e-9 // avoid dividing by timer noise
		orig := times[core.ModeOriginal]
		if orig < floor {
			orig = floor
		}
		tr := times[core.ModeTraceOnly]
		if tr < floor {
			tr = floor
		}
		rows = append(rows, Fig12bRow{
			Workload:         w.Name,
			DetectSeconds:    times[core.ModeDetect],
			TraceSeconds:     times[core.ModeTraceOnly],
			OriginalSeconds:  times[core.ModeOriginal],
			OverTraceOnly:    times[core.ModeDetect] / tr,
			OverOriginal:     times[core.ModeDetect] / orig,
			TraceOverOrig:    tr / orig,
			FailurePointsRun: fps,
		})
	}
	return rows, nil
}

// WriteFig12b renders the slowdown comparison.
func WriteFig12b(w io.Writer) error {
	rows, err := Fig12b()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 12b — slowdown of detection over tracing-only (\"Pure Pin\") and original")
	fmt.Fprintf(w, "%-16s %12s %12s %12s %14s %14s\n",
		"workload", "detect (s)", "trace (s)", "orig (s)", "over trace", "over original")
	geoTrace, geoOrig := 1.0, 1.0
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %12.4f %12.6f %12.6f %13.1fx %13.1fx\n",
			r.Workload, r.DetectSeconds, r.TraceSeconds, r.OriginalSeconds,
			r.OverTraceOnly, r.OverOriginal)
		geoTrace *= r.OverTraceOnly
		geoOrig *= r.OverOriginal
	}
	n := float64(len(rows))
	fmt.Fprintf(w, "geomean: %.1fx over tracing-only, %.1fx over original (paper: 12.3x and 400.8x)\n",
		pow(geoTrace, 1/n), pow(geoOrig, 1/n))
	return nil
}

// PruneAblationRow is one row of the crash-state pruning ablation: the
// same workload under the update-heavy PruneAblationConfig with pruning
// enabled (the default) and disabled.
type PruneAblationRow struct {
	Workload      string
	FailurePoints int
	// Classes and Pruned are the pruned run's crash-state classes tested
	// and member failure points skipped; Classes + Pruned == FailurePoints
	// when every class is clean.
	Classes int
	Pruned  int
	// PrunedSeconds and FullSeconds are total detection times (pre + post)
	// with and without pruning; Speedup is their ratio.
	PrunedSeconds float64
	FullSeconds   float64
	Speedup       float64
}

// PruneAblation measures what crash-state pruning buys on each Table 4
// workload when the pre-failure stage repeats an update pass with
// identical values — the repetitive loop shape pruning targets. Both runs
// produce the identical deduplicated report-key set (pinned by
// TestPruneEquivalenceUpdateHeavy); only the number of post-failure
// executions differs.
func PruneAblation() ([]PruneAblationRow, error) {
	var rows []PruneAblationRow
	for _, w := range Table4() {
		full, err := core.Run(core.Config{PoolSize: DefaultPoolSize, DisablePruning: true},
			w.Target(PruneAblationConfig))
		if err != nil {
			return nil, fmt.Errorf("prune ablation %s (no-prune): %w", w.Name, err)
		}
		pruned, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, w.Target(PruneAblationConfig))
		if err != nil {
			return nil, fmt.Errorf("prune ablation %s: %w", w.Name, err)
		}
		fullT := full.PreSeconds + full.PostSeconds
		prunedT := pruned.PreSeconds + pruned.PostSeconds
		speedup := 0.0
		if prunedT > 0 {
			speedup = fullT / prunedT
		}
		rows = append(rows, PruneAblationRow{
			Workload:      w.Name,
			FailurePoints: pruned.FailurePoints,
			Classes:       pruned.CrashStateClasses,
			Pruned:        pruned.PrunedFailurePoints,
			PrunedSeconds: prunedT,
			FullSeconds:   fullT,
			Speedup:       speedup,
		})
	}
	return rows, nil
}

// WritePruneAblation renders the pruning ablation table.
func WritePruneAblation(w io.Writer) error {
	rows, err := PruneAblation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Pruning ablation — crash-state classes vs. failure points (update-heavy config)")
	fmt.Fprintf(w, "%-16s %8s %8s %8s %12s %12s %9s\n",
		"workload", "#FPs", "classes", "pruned", "pruned (s)", "full (s)", "speedup")
	geo := 1.0
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %8d %8d %8d %12.4f %12.4f %8.1fx\n",
			r.Workload, r.FailurePoints, r.Classes, r.Pruned,
			r.PrunedSeconds, r.FullSeconds, r.Speedup)
		geo *= r.Speedup + 1e-9
	}
	fmt.Fprintf(w, "geomean speedup %.1fx; report-key sets identical with and without pruning\n",
		pow(geo, 1/float64(len(rows))))
	return nil
}

// Fig13Row is one point of Fig. 13: detection time and failure points as
// the number of pre-failure transactions scales.
type Fig13Row struct {
	Workload      string
	Transactions  int
	Seconds       float64
	FailurePoints int
}

// Fig13Transactions are the x-axis points of Fig. 13.
var Fig13Transactions = []int{1, 10, 20, 30, 40, 50}

// Fig13 runs the §6.2.2 scalability sweep over the five micro benchmarks.
func Fig13() ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, m := range workloads.Makers() {
		for _, n := range Fig13Transactions {
			cfg := workloads.TargetConfig{InitSize: 1, TestSize: n, PostOps: true}
			// Unpruned like Fig12a: the paper's linear time-per-failure-point
			// shape is a property of running every failure point.
			res, err := core.Run(core.Config{PoolSize: 16 << 20, DisablePruning: true},
				workloads.DetectionTarget(m, cfg))
			if err != nil {
				return nil, fmt.Errorf("fig13 %s n=%d: %w", m.Name, n, err)
			}
			rows = append(rows, Fig13Row{
				Workload:      m.Name,
				Transactions:  n,
				Seconds:       res.PreSeconds + res.PostSeconds,
				FailurePoints: res.FailurePoints,
			})
		}
	}
	return rows, nil
}

// WriteFig13 renders the scalability sweep and a linearity estimate.
func WriteFig13(w io.Writer) error {
	rows, err := Fig13()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 13 — execution time vs. number of pre-failure transactions")
	fmt.Fprintf(w, "%-16s %8s %12s %8s %14s\n", "workload", "#tx", "time (s)", "#FPs", "ms per FP")
	for _, r := range rows {
		perFP := 0.0
		if r.FailurePoints > 0 {
			perFP = r.Seconds / float64(r.FailurePoints) * 1000
		}
		fmt.Fprintf(w, "%-16s %8d %12.4f %8d %14.3f\n",
			r.Workload, r.Transactions, r.Seconds, r.FailurePoints, perFP)
	}
	fmt.Fprintln(w, "shape check: time grows linearly with #failure points (constant ms/FP per workload)")
	return nil
}

// Table5Result summarizes the validation suite per workload.
type Table5Result struct {
	Workload                        string
	Races, Semantic, Perf           int
	DetectedR, DetectedS, DetectedP int
	MisclassifiedOrMissed           []string
}

// Table5 runs every synthetic bug and tallies detections by class.
func Table5() ([]Table5Result, error) {
	cfg := workloads.TargetConfig{
		InitSize: 10, TestSize: 5, Updates: 2, Removes: 5,
		PostOps: true, FaultInCreate: true,
	}
	byWorkload := map[string]*Table5Result{}
	var order []string
	for _, fl := range workloads.AllFaults() {
		r, ok := byWorkload[fl.Workload]
		if !ok {
			r = &Table5Result{Workload: fl.Workload}
			byWorkload[fl.Workload] = r
			order = append(order, fl.Workload)
		}
		m, _ := workloads.MakerFor(fl.Workload)
		c := cfg
		c.Fault = fl.Name
		res, err := core.Run(core.Config{PoolSize: DefaultPoolSize, MaxPostOps: 1 << 17}, workloads.DetectionTarget(m, c))
		if err != nil {
			return nil, fmt.Errorf("table5 %s: %w", fl.Name, err)
		}
		detected := res.Count(fl.Class) > 0
		switch fl.Class {
		case core.CrossFailureRace:
			r.Races++
			if detected {
				r.DetectedR++
			}
		case core.CrossFailureSemantic:
			r.Semantic++
			if detected {
				r.DetectedS++
			}
		case core.Performance:
			r.Perf++
			if detected {
				r.DetectedP++
			}
		}
		if !detected {
			r.MisclassifiedOrMissed = append(r.MisclassifiedOrMissed, fl.Name)
		}
	}
	var out []Table5Result
	for _, name := range order {
		out = append(out, *byWorkload[name])
	}
	return out, nil
}

// WriteTable5 renders the validation table.
func WriteTable5(w io.Writer) error {
	rows, err := Table5()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 5 — synthetic-bug validation (R: cross-failure race, S: semantic, P: performance)")
	fmt.Fprintf(w, "%-16s %10s %10s %10s %8s\n", "workload", "R det/tot", "S det/tot", "P det/tot", "missed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %6d/%-3d %6d/%-3d %6d/%-3d %8d\n",
			r.Workload, r.DetectedR, r.Races, r.DetectedS, r.Semantic,
			r.DetectedP, r.Perf, len(r.MisclassifiedOrMissed))
		for _, m := range r.MisclassifiedOrMissed {
			fmt.Fprintf(w, "    MISSED: %s\n", m)
		}
	}
	return nil
}

// CoverageRow compares XFDetector against the pre-failure-only baselines
// on one seeded bug (the Fig. 3 comparison).
type CoverageRow struct {
	Fault     string
	Workload  string
	Class     core.BugClass
	XFD       bool
	Pmemcheck bool
	PMTest    bool
}

// Coverage runs every synthetic bug under XFDetector and both baselines.
func Coverage() ([]CoverageRow, error) {
	cfg := workloads.TargetConfig{
		InitSize: 10, TestSize: 5, Updates: 2, Removes: 5,
		PostOps: true, FaultInCreate: true,
	}
	var rows []CoverageRow
	for _, fl := range workloads.AllFaults() {
		m, _ := workloads.MakerFor(fl.Workload)
		c := cfg
		c.Fault = fl.Name
		res, err := core.Run(core.Config{PoolSize: DefaultPoolSize, MaxPostOps: 1 << 17}, workloads.DetectionTarget(m, c))
		if err != nil {
			return nil, err
		}
		trRes, err := core.Run(core.Config{
			PoolSize: DefaultPoolSize, Mode: core.ModeTraceOnly, KeepTrace: true,
		}, workloads.DetectionTarget(m, c))
		if err != nil {
			return nil, err
		}
		tr := trRes.PreTrace()
		size := baseline.PoolSizeFor(tr)
		rows = append(rows, CoverageRow{
			Fault:     fl.Name,
			Workload:  fl.Workload,
			Class:     fl.Class,
			XFD:       res.Count(fl.Class) > 0,
			Pmemcheck: len(baseline.Pmemcheck(tr, size)) > 0,
			PMTest:    len(baseline.PMTest(tr, size)) > 0,
		})
	}
	return rows, nil
}

// WriteCoverage renders the Fig. 3 comparison summary.
func WriteCoverage(w io.Writer) error {
	rows, err := Coverage()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3 — detection coverage: XFDetector vs. pre-failure-only tools")
	fmt.Fprintf(w, "%-34s %-26s %5s %10s %7s\n", "fault", "class", "XFD", "pmemcheck", "PMTest")
	var xfd, pc, pt, total int
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %-26s %5s %10s %7s\n",
			r.Fault, r.Class, mark(r.XFD), mark(r.Pmemcheck), mark(r.PMTest))
		total++
		if r.XFD {
			xfd++
		}
		if r.Pmemcheck {
			pc++
		}
		if r.PMTest {
			pt++
		}
	}
	fmt.Fprintf(w, "detected: XFDetector %d/%d, pmemcheck-like %d/%d, PMTest-like %d/%d\n",
		xfd, total, pc, total, pt, total)
	return nil
}

func mark(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

// NewBugsReport reproduces §6.3.2: the four new bugs the paper found.
func NewBugsReport(w io.Writer) error {
	fmt.Fprintln(w, "§6.3.2 — the four new bugs, reproduced")
	cfg := workloads.TargetConfig{
		InitSize: 4, TestSize: 3, PostOps: true, FaultInCreate: true,
	}
	type bug struct {
		id     string
		desc   string
		target core.Target
		class  core.BugClass
	}
	hm, _ := workloads.MakerFor("Hashmap-Atomic")
	bug1 := cfg
	bug1.Fault = "hma-bug1-seed-no-persist"
	bug2 := cfg
	bug2.Fault = "hma-bug2-count-uninit"
	bugs := []bug{
		{"Bug 1", "Hashmap-Atomic: hash metadata not persisted at creation (hashmap_atomic.c:132-138)",
			workloads.DetectionTarget(hm, bug1), core.CrossFailureRace},
		{"Bug 2", "Hashmap-Atomic: count read potentially uninitialized after allocation (hashmap_atomic.c:280)",
			workloads.DetectionTarget(hm, bug2), core.CrossFailureRace},
		{"Bug 3", "Redis: num_dict_entries initialized outside the transaction (server.c:4029)",
			RedisTarget(pmredis.Options{InitRaceBug: true},
				workloads.TargetConfig{InitSize: 2, TestSize: 2, PostOps: true}), core.CrossFailureRace},
		{"Bug 4", "libpmemobj: pool creation metadata not ordered before the validity flag (obj.c:1324)",
			bug4Target(), core.CrossFailureRace},
	}
	for _, b := range bugs {
		res, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, b.target)
		if err != nil {
			return err
		}
		status := "NOT DETECTED"
		if res.Count(b.class) > 0 || res.Count(core.CrossFailureSemantic) > 0 {
			status = "DETECTED"
		}
		fmt.Fprintf(w, "\n%s — %s: %s\n", b.id, b.desc, status)
		for _, rep := range res.Reports {
			if rep.Class == core.CrossFailureRace || rep.Class == core.CrossFailureSemantic {
				fmt.Fprintf(w, "  %s\n", rep)
			}
		}
	}
	return nil
}

func bug4Target() core.Target {
	return core.Target{
		Name: "pmemobj-create",
		Pre: func(c *core.Ctx) error {
			_, err := pmobj.Create(c.Pool(), 64,
				&pmobj.Options{Faults: pmobj.Faults{CreateUnorderedMeta: true}})
			return err
		},
		Post: func(c *core.Ctx) error {
			po, err := pmobj.Open(c.Pool())
			if err == pmobj.ErrNotAPool {
				return nil
			}
			if err != nil {
				return err
			}
			c.Pool().Load64(po.Root())
			return nil
		},
	}
}

// WriteTable1 validates the six Table 1 mechanisms (clean and buggy).
func WriteTable1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1 — crash-consistency mechanisms under detection")
	fmt.Fprintf(w, "%-22s %8s %10s %28s\n", "mechanism", "clean", "#FPs", "seeded bug detected as")
	for i, m := range mechanisms.All() {
		clean, fps, err := runMechanism(m, false)
		if err != nil {
			return err
		}
		res, _, err := runMechanismResult(mechanisms.All()[i], true)
		if err != nil {
			return err
		}
		kind := "(none)"
		for _, class := range []core.BugClass{
			core.CrossFailureSemantic, core.CrossFailureRace, core.PostFailureFault,
		} {
			if res.Count(class) > 0 {
				kind = class.String()
				break
			}
		}
		fmt.Fprintf(w, "%-22s %8v %10d %28s\n", m.Name(), clean, fps, kind)
	}
	return nil
}

func runMechanism(m mechanisms.Mechanism, buggy bool) (clean bool, fps int, err error) {
	res, fps, err := runMechanismResult(m, buggy)
	if err != nil {
		return false, 0, err
	}
	return len(res.Reports) == 0, fps, nil
}

func runMechanismResult(m mechanisms.Mechanism, buggy bool) (*core.Result, int, error) {
	m.SetBuggy(buggy)
	res, err := core.Run(core.Config{}, core.Target{
		Name: m.Name(),
		Setup: func(c *core.Ctx) error {
			m.Init(c, mechanisms.MakePayload(1))
			return nil
		},
		Pre: func(c *core.Ctx) error {
			for seed := uint64(2); seed <= 4; seed++ {
				m.Update(c, mechanisms.MakePayload(seed))
			}
			return nil
		},
		Post: func(c *core.Ctx) error {
			v, err := m.Recover(c)
			if err != nil {
				return err
			}
			if s := v.Seed(); s < 1 || s > 4 {
				return fmt.Errorf("recovered impossible seed %d", s)
			}
			return nil
		},
	})
	if err != nil {
		return nil, 0, err
	}
	return res, res.FailurePoints, nil
}
