package bench

import (
	"fmt"
	"sort"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/shadow"
)

// TestPruneEquivalenceAcrossTable4 pins crash-state pruning's soundness
// contract on every evaluated program of the paper's Table 4: a run with
// pruning enabled (the default) must produce the byte-identical
// deduplicated report-key set of the -no-prune run — sequentially, under
// workers (where members park behind in-flight representatives), and
// across shards (where each shard prunes within its own failure-point
// partition and the union must still cover everything). The accounting
// must be exact: every injected failure point is either post-run, pruned,
// or delegated to another shard. A second pass repeats each workload's
// update-heavy ablation configuration, where pruning actually collapses
// long runs of byte-identical crash states, so the equivalence is not
// established only on workloads that never prune.
func TestPruneEquivalenceAcrossTable4(t *testing.T) {
	for _, tt := range table4Cases(t) {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			base, err := core.Run(core.Config{PoolSize: DefaultPoolSize, DisablePruning: true}, tt.target())
			if err != nil {
				t.Fatal(err)
			}
			if tt.wantBug && base.Count(tt.wantClass) == 0 {
				t.Fatalf("seeded fault %q not detected without pruning:\n%s", tt.fault, base)
			}
			if !tt.wantBug && !base.Clean() {
				t.Fatalf("expected a clean run:\n%s", base)
			}
			if base.PrunedFailurePoints != 0 || base.CrashStateClasses != 0 {
				t.Fatalf("-no-prune run reports pruning activity (%d classes, %d pruned)",
					base.CrashStateClasses, base.PrunedFailurePoints)
			}
			for _, workers := range []int{1, 2} {
				for _, shards := range []int{1, 3} {
					name := fmt.Sprintf("workers=%d shards=%d", workers, shards)
					union := map[string]bool{}
					totalPosts, totalPruned := 0, 0
					for shard := 0; shard < shards; shard++ {
						pruned, err := core.Run(core.Config{
							PoolSize:   DefaultPoolSize,
							Workers:    workers,
							ShardCount: shards,
							ShardIndex: shard,
						}, tt.target())
						if err != nil {
							t.Fatal(err)
						}
						if pruned.FailurePoints != base.FailurePoints {
							t.Errorf("%s shard %d: %d failure points, want %d",
								name, shard, pruned.FailurePoints, base.FailurePoints)
						}
						if got := pruned.PostRuns + pruned.PrunedFailurePoints +
							pruned.OtherShardFailurePoints; got != pruned.FailurePoints {
							t.Errorf("%s shard %d: post-runs %d + pruned %d + other-shard %d = %d, want %d failure points",
								name, shard, pruned.PostRuns, pruned.PrunedFailurePoints,
								pruned.OtherShardFailurePoints, got, pruned.FailurePoints)
						}
						if pruned.PostRuns < pruned.CrashStateClasses {
							t.Errorf("%s shard %d: %d post-runs below %d classes tested",
								name, shard, pruned.PostRuns, pruned.CrashStateClasses)
						}
						for _, k := range dedupKeys(pruned) {
							union[k] = true
						}
						totalPosts += pruned.PostRuns
						totalPruned += pruned.PrunedFailurePoints
					}
					if want := base.FailurePoints; totalPosts+totalPruned != want {
						t.Errorf("%s: post-runs %d + pruned %d across shards != %d failure points",
							name, totalPosts, totalPruned, want)
					}
					got := sortedSetKeys(union)
					if want := dedupKeys(base); !stringSlicesEqual(got, want) {
						t.Errorf("%s: pruned report keys diverge from -no-prune\nno-prune: %v\npruned:   %v",
							name, want, got)
					}
				}
			}
		})
	}
}

func sortedSetKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestPruneEquivalenceUpdateHeavy is the half of the equivalence bar where
// pruning demonstrably fires: the ablation configuration repeats each
// workload's update pass thirty times with identical values, a pruned run
// must skip a substantial share of those failure points, and the report
// keys must still match the -no-prune run byte for byte.
func TestPruneEquivalenceUpdateHeavy(t *testing.T) {
	anyPruned := false
	for _, row := range Table4() {
		row := row
		t.Run(row.Name, func(t *testing.T) {
			base, err := core.Run(core.Config{PoolSize: DefaultPoolSize, DisablePruning: true},
				row.Target(PruneAblationConfig))
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := core.Run(core.Config{PoolSize: DefaultPoolSize},
				row.Target(PruneAblationConfig))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := dedupKeys(pruned), dedupKeys(base); !stringSlicesEqual(got, want) {
				t.Errorf("pruned report keys diverge from -no-prune\nno-prune: %v\npruned:   %v", want, got)
			}
			if pruned.FailurePoints != base.FailurePoints {
				t.Errorf("failure points diverge: pruned %d, no-prune %d",
					pruned.FailurePoints, base.FailurePoints)
			}
			if got := pruned.PostRuns + pruned.PrunedFailurePoints; got != pruned.FailurePoints {
				t.Errorf("post-runs %d + pruned %d = %d, want %d failure points",
					pruned.PostRuns, pruned.PrunedFailurePoints, got, pruned.FailurePoints)
			}
			if pruned.PrunedFailurePoints > 0 {
				anyPruned = true
			}
			t.Logf("%s: %d failure points, %d classes tested, %d pruned",
				row.Name, pruned.FailurePoints, pruned.CrashStateClasses, pruned.PrunedFailurePoints)
		})
	}
	if !anyPruned {
		t.Errorf("update-heavy ablation config pruned nothing on any Table 4 workload")
	}
}

// TestPruneMutationCaughtByTable4 proves the seven-workload table has
// teeth against fingerprint soundness regressions: with page hashes
// collapsed to a constant (colliding-fingerprint) or the cached hash
// frozen at the state a fence already consumed (stale-fence-fingerprint),
// pruning conflates genuinely distinct crash states and at least one
// workload must diverge from its unmutated run — lost report keys or a
// changed post-run/pruned split. Must not run in parallel with other
// tests: the mutation switches are package-level toggles in
// internal/shadow.
func TestPruneMutationCaughtByTable4(t *testing.T) {
	cases := table4Cases(t)
	type summary struct {
		keys   []string
		fps    int
		posts  int
		pruned int
	}
	baselines := make(map[string]summary)
	for _, tt := range cases {
		res, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, tt.target())
		if err != nil {
			t.Fatal(err)
		}
		baselines[tt.name] = summary{dedupKeys(res), res.FailurePoints, res.PostRuns, res.PrunedFailurePoints}
	}
	for _, mut := range []struct {
		name string
		set  func(bool)
	}{
		{"colliding-fingerprint", shadow.SetCollidingFingerprintForTest},
		{"stale-fence-fingerprint", shadow.SetStaleFenceFingerprintForTest},
	} {
		t.Run(mut.name, func(t *testing.T) {
			mut.set(true)
			defer mut.set(false)
			caught := 0
			for _, tt := range cases {
				res, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, tt.target())
				if err != nil {
					caught++
					continue
				}
				b := baselines[tt.name]
				if !stringSlicesEqual(dedupKeys(res), b.keys) ||
					res.FailurePoints != b.fps || res.PostRuns != b.posts ||
					res.PrunedFailurePoints != b.pruned {
					caught++
				}
			}
			if caught == 0 {
				t.Fatalf("seeded %s mutation went undetected by all %d workloads", mut.name, len(cases))
			}
			t.Logf("%s caught by %d/%d workloads", mut.name, caught, len(cases))
		})
	}
}
