package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: github.com/pmemgo/xfdetector
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig12a/B-Tree-8         	     100	    123456 ns/op	         0.000100 pre-s/op	         0.000900 post-s/op	        12.00 failpoints/op
BenchmarkSnapshotPoolSweep/pool=1MiB/incremental         	       1	   2276148 ns/op
PASS
ok  	github.com/pmemgo/xfdetector	22.208s
`

func TestParseGoBench(t *testing.T) {
	base, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if base.GoOS != "linux" || base.GoArch != "amd64" || base.Package != "github.com/pmemgo/xfdetector" {
		t.Fatalf("header mis-parsed: %+v", base)
	}
	if len(base.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(base.Benchmarks))
	}
	b0 := base.Benchmarks[0]
	if b0.Name != "BenchmarkFig12a/B-Tree-8" || b0.Iterations != 100 || b0.NsPerOp != 123456 {
		t.Fatalf("first benchmark mis-parsed: %+v", b0)
	}
	if b0.Metrics["failpoints/op"] != 12 || b0.Metrics["pre-s/op"] != 0.0001 {
		t.Fatalf("custom metrics mis-parsed: %+v", b0.Metrics)
	}
	b1 := base.Benchmarks[1]
	if b1.Name != "BenchmarkSnapshotPoolSweep/pool=1MiB/incremental" || b1.NsPerOp != 2276148 {
		t.Fatalf("second benchmark mis-parsed: %+v", b1)
	}
	if len(b1.Metrics) != 0 {
		t.Fatalf("unexpected metrics: %+v", b1.Metrics)
	}

	var buf bytes.Buffer
	if err := base.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round BenchBaseline
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v", err)
	}
	if len(round.Benchmarks) != 2 || round.CPU != base.CPU {
		t.Fatalf("round-trip mismatch: %+v", round)
	}
}

func TestParseGoBenchRejectsEmptyAndMalformed(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ParseGoBench(strings.NewReader("BenchmarkX 12\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ParseGoBench(strings.NewReader("BenchmarkX abc 5 ns/op\n")); err == nil {
		t.Fatal("bad iteration count accepted")
	}
}
