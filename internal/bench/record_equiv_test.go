package bench

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/record"
)

// TestFastForwardEquivalenceAcrossTable4 pins the record/replay contract on
// every evaluated program of the paper's Table 4: a campaign replayed from
// the recorded pre-failure artifact (fast-forward on) must produce exactly
// the same report-key set and exact per-failure-point bucket accounting as
// the same campaign executed live (fast-forward off, the -no-fast-forward
// ablation), across workers 1/2 and shards 1/3. Where a bug is seeded, the
// expected class must actually be detected, so the equivalence is
// established on non-trivial report sets.
// TestRecordedFanoutAcceptance is the headline claim of the record-once
// fast-forward path, pinned as a test so a regression cannot silently
// erode it: on the three-shard update-heavy B-Tree campaign
// BenchmarkRecordedFanout measures, a shard replaying the recorded
// artifact must spend at least 2x less wall-clock in its pre-failure
// stage than a shard executing it live, while the merged report-key sets
// stay byte-identical. The live stage executes every pmobj transaction
// with source-location capture; the replay applies trace entries — in
// practice a 2.5-3x gap, so the 2x floor (taken over the best of three
// timing rounds, wall-clock being noisy) holds with margin.
func TestRecordedFanoutAcceptance(t *testing.T) {
	const shards = 3
	target := RecordedFanoutTarget

	var buf bytes.Buffer
	recCfg := core.Config{PoolSize: DefaultPoolSize}
	recCfg.Record = record.NewWriter(&buf, 1, DefaultPoolSize, 0)
	if _, err := core.Run(recCfg, target()); err != nil {
		t.Fatal(err)
	}
	a, err := record.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	runFleet := func(artifact *record.Artifact) (preSec float64, union []string) {
		seen := map[string]bool{}
		for idx := 0; idx < shards; idx++ {
			res, err := core.Run(core.Config{
				PoolSize:   DefaultPoolSize,
				ShardCount: shards,
				ShardIndex: idx,
				Replay:     artifact,
			}, target())
			if err != nil {
				t.Fatal(err)
			}
			preSec += res.PreSeconds
			for _, k := range dedupKeys(res) {
				seen[k] = true
			}
		}
		for k := range seen {
			union = append(union, k)
		}
		sort.Strings(union)
		return preSec, union
	}

	best := 0.0
	var liveKeys, ffKeys []string
	var livePre, ffPre float64
	for round := 0; round < 3; round++ {
		livePre, liveKeys = runFleet(nil)
		ffPre, ffKeys = runFleet(a)
		if len(liveKeys) == 0 {
			t.Fatal("B-Tree campaign found no bugs; the key-set equivalence would be vacuous")
		}
		if !stringSlicesEqual(ffKeys, liveKeys) {
			t.Fatalf("fast-forwarded fleet keys diverge from the live fleet\nlive: %v\nff:   %v", liveKeys, ffKeys)
		}
		if ratio := livePre / ffPre; ratio > best {
			best = ratio
		}
		t.Logf("round %d: pre-failure %.4fs/shard live -> %.4fs/shard fast-forwarded (%.2fx)",
			round, livePre/shards, ffPre/shards, livePre/ffPre)
		if best >= 2 {
			break
		}
	}
	if best < 2 {
		t.Errorf("fast-forward saved under 2x per shard in all rounds (best %.2fx)", best)
	}
}

func TestFastForwardEquivalenceAcrossTable4(t *testing.T) {
	for _, tt := range table4Cases(t) {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			live, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, tt.target())
			if err != nil {
				t.Fatal(err)
			}
			if tt.wantBug && live.Count(tt.wantClass) == 0 {
				t.Fatalf("seeded fault %q not detected live:\n%s", tt.fault, live)
			}
			if !tt.wantBug && !live.Clean() {
				t.Fatalf("expected a clean run:\n%s", live)
			}
			liveKeys := dedupKeys(live)

			// Record once: the artifact every fast-forwarded config replays.
			var buf bytes.Buffer
			recCfg := core.Config{PoolSize: DefaultPoolSize}
			recCfg.Record = record.NewWriter(&buf, 7, DefaultPoolSize, 0)
			if _, err := core.Run(recCfg, tt.target()); err != nil {
				t.Fatalf("recording: %v", err)
			}
			a, err := record.Read(&buf)
			if err != nil {
				t.Fatalf("decoding artifact: %v", err)
			}

			for _, ff := range []bool{true, false} {
				for _, workers := range []int{1, 2} {
					for _, shards := range []int{1, 3} {
						name := fmt.Sprintf("ff=%v/workers=%d/shards=%d", ff, workers, shards)
						union := map[string]bool{}
						for idx := 0; idx < shards; idx++ {
							cfg := core.Config{PoolSize: DefaultPoolSize, Workers: workers}
							if shards > 1 {
								cfg.ShardCount, cfg.ShardIndex = shards, idx
							}
							if ff {
								cfg.Replay = a
							}
							res, err := core.Run(cfg, tt.target())
							if err != nil {
								t.Fatalf("%s shard %d: %v", name, idx, err)
							}
							if res.Incomplete {
								t.Fatalf("%s shard %d incomplete: %s", name, idx, res.IncompleteReason)
							}
							if res.FailurePoints != live.FailurePoints {
								t.Errorf("%s shard %d: %d failure points, live had %d",
									name, idx, res.FailurePoints, live.FailurePoints)
							}
							if got := res.BucketedFailurePoints(); got != res.FailurePoints {
								t.Errorf("%s shard %d: buckets account for %d of %d failure points",
									name, idx, got, res.FailurePoints)
							}
							for _, k := range dedupKeys(res) {
								union[k] = true
							}
						}
						got := make([]string, 0, len(union))
						for k := range union {
							got = append(got, k)
						}
						sort.Strings(got)
						if !stringSlicesEqual(got, liveKeys) {
							t.Errorf("%s: merged keys diverge from live\nlive: %v\ngot:  %v", name, liveKeys, got)
						}
					}
				}
			}
		})
	}
}
