//go:build !race

package bench

// raceEnabled reports whether this build runs under the Go race detector
// (racetag_on_test.go is the -race counterpart). The stale-fork-page
// shadow mutant disables copy-on-write privatization, making the canonical
// shadow and worker forks genuinely race on shared pages, so the subtests
// that enable it skip under -race.
const raceEnabled = false
