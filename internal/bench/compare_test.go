package bench

import (
	"bytes"
	"strings"
	"testing"
)

func baselineOf(results ...BenchResult) *BenchBaseline {
	return &BenchBaseline{Benchmarks: results}
}

func TestCompareBaselinesFlagsRegressions(t *testing.T) {
	old := baselineOf(
		BenchResult{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"post-s/op": 0.010}},
		BenchResult{Name: "BenchmarkB", NsPerOp: 2000},
		BenchResult{Name: "BenchmarkGone", NsPerOp: 10},
	)
	cur := baselineOf(
		// ns/op within threshold, but post-s/op doubled: flagged.
		BenchResult{Name: "BenchmarkA", NsPerOp: 1050, Metrics: map[string]float64{"post-s/op": 0.020}},
		// 5% slower: inside a 10% threshold.
		BenchResult{Name: "BenchmarkB", NsPerOp: 2100},
		BenchResult{Name: "BenchmarkNew", NsPerOp: 5},
	)
	var buf bytes.Buffer
	regressed, err := CompareBaselines(&buf, old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 1 || regressed[0] != "BenchmarkA" {
		t.Errorf("regressed = %v, want [BenchmarkA]\n%s", regressed, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED", "[new]", "[removed]", "post-s/op", "+5.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

func TestCompareBaselinesImprovementIsNotARegression(t *testing.T) {
	old := baselineOf(BenchResult{Name: "BenchmarkA", NsPerOp: 1000, Metrics: map[string]float64{"post-s/op": 0.010}})
	cur := baselineOf(BenchResult{Name: "BenchmarkA", NsPerOp: 200, Metrics: map[string]float64{"post-s/op": 0.001}})
	var buf bytes.Buffer
	regressed, err := CompareBaselines(&buf, old, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressed) != 0 {
		t.Errorf("a 5x speedup was flagged: %v\n%s", regressed, buf.String())
	}
}

func TestCompareBaselinesIgnoresCPUSuffix(t *testing.T) {
	old := baselineOf(BenchResult{Name: "BenchmarkA/sub", NsPerOp: 1000})
	cur := baselineOf(BenchResult{Name: "BenchmarkA/sub-8", NsPerOp: 1000})
	var buf bytes.Buffer
	regressed, err := CompareBaselines(&buf, old, cur, 0.10)
	if err != nil {
		t.Fatalf("baselines from different core counts did not match: %v\n%s", err, buf.String())
	}
	if len(regressed) != 0 || strings.Contains(buf.String(), "[new]") {
		t.Errorf("suffix-only rename treated as a different benchmark:\n%s", buf.String())
	}
}

func TestCompareBaselinesRejectsDisjointRuns(t *testing.T) {
	old := baselineOf(BenchResult{Name: "BenchmarkA", NsPerOp: 1})
	cur := baselineOf(BenchResult{Name: "BenchmarkB", NsPerOp: 1})
	var buf bytes.Buffer
	if _, err := CompareBaselines(&buf, old, cur, 0.10); err == nil {
		t.Fatal("disjoint benchmark sets compared without error")
	}
}

func TestReadBaselineJSONRoundTrip(t *testing.T) {
	base := baselineOf(BenchResult{Name: "BenchmarkA", Iterations: 3, NsPerOp: 42,
		Metrics: map[string]float64{"post-s/op": 0.5}})
	var buf bytes.Buffer
	if err := base.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaselineJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 42 || got.Benchmarks[0].Metrics["post-s/op"] != 0.5 {
		t.Errorf("round-trip mismatch: %+v", got.Benchmarks)
	}
	if _, err := ReadBaselineJSON(strings.NewReader(`{"benchmarks":[]}`)); err == nil {
		t.Error("empty baseline accepted")
	}
}
