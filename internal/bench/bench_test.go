package bench

import (
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmredis"
)

func TestTable4Composition(t *testing.T) {
	rows := Table4()
	if len(rows) != 7 {
		t.Fatalf("Table 4 has %d rows, want 7 (5 micro + Memcached + Redis)", len(rows))
	}
	wantTypes := map[string]string{
		"B-Tree": "Transaction", "C-Tree": "Transaction", "RB-Tree": "Transaction",
		"Hashmap-TX": "Transaction", "Hashmap-Atomic": "Low-level",
		"Memcached": "Low-level", "Redis": "Transaction",
	}
	for _, r := range rows {
		if wantTypes[r.Name] != r.Type {
			t.Errorf("%s type = %q, want %q", r.Name, r.Type, wantTypes[r.Name])
		}
		if r.Target == nil {
			t.Errorf("%s has no target builder", r.Name)
		}
	}
}

// TestRealWorldTargetsCleanUnderDetection runs the Redis and Memcached
// detection targets (the Table 4 real-world rows) with the Fig. 12
// configuration and requires them to be clean.
func TestRealWorldTargetsCleanUnderDetection(t *testing.T) {
	targets := []core.Target{
		RedisTarget(pmredis.Options{}, Fig12Config),
		MemcachedTarget(Fig12Config),
	}
	for _, target := range targets {
		res, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, target)
		if err != nil {
			t.Fatalf("%s: %v", target.Name, err)
		}
		if len(res.Reports) != 0 {
			t.Errorf("%s produced reports:\n%s", target.Name, res)
		}
		if res.FailurePoints == 0 {
			t.Errorf("%s injected no failure points", target.Name)
		}
	}
}

// TestNewBugsReportOutput checks the §6.3.2 reproduction driver reports
// all four bugs as detected.
func TestNewBugsReportOutput(t *testing.T) {
	var sb strings.Builder
	if err := NewBugsReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, bug := range []string{"Bug 1", "Bug 2", "Bug 3", "Bug 4"} {
		if !strings.Contains(out, bug) {
			t.Errorf("report misses %s", bug)
		}
	}
	if strings.Contains(out, "NOT DETECTED") {
		t.Errorf("a paper bug was not detected:\n%s", out)
	}
	if strings.Count(out, "DETECTED") != 4 {
		t.Errorf("want 4 detections:\n%s", out)
	}
}

// TestWriteTable1Output checks the mechanisms driver output shape.
func TestWriteTable1Output(t *testing.T) {
	var sb strings.Builder
	if err := WriteTable1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, m := range []string{"undo-logging", "redo-logging", "checkpointing",
		"shadow-paging", "operational-logging", "checksum-recovery"} {
		if !strings.Contains(out, m) {
			t.Errorf("table misses %s", m)
		}
	}
	if strings.Contains(out, "false") {
		t.Errorf("a mechanism was not clean:\n%s", out)
	}
	if strings.Contains(out, "(none)") {
		t.Errorf("a seeded mechanism bug was not detected:\n%s", out)
	}
}

// TestFig12aShape runs the Fig. 12a experiment once and checks the
// paper's shape: the post-failure stage dominates for every workload.
func TestFig12aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	rows, err := Fig12a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PostSeconds <= r.PreSeconds {
			t.Errorf("%s: post %.4fs <= pre %.4fs — post-failure stage must dominate",
				r.Workload, r.PostSeconds, r.PreSeconds)
		}
		if r.FailurePoints == 0 || r.PostRuns != r.FailurePoints {
			t.Errorf("%s: failure points %d, post runs %d", r.Workload, r.FailurePoints, r.PostRuns)
		}
	}
}
