// Package bench assembles the detection targets and experiment drivers
// that regenerate every table and figure of the paper's evaluation (§6).
// It is shared by cmd/xfdbench, cmd/xfdetector and the repository's
// testing.B benchmarks.
package bench

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmcache"
	"github.com/pmemgo/xfdetector/internal/pmredis"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

// RedisTarget drives the mini PM-Redis the way §6.1 drives Intel's
// pmem-redis: query-processing updates as the pre-failure stage, server
// restart (open + recovery + one query) as the post-failure stage.
func RedisTarget(opts pmredis.Options, cfg workloads.TargetConfig) core.Target {
	return core.Target{
		Name: "Redis",
		Pre: func(c *core.Ctx) error {
			db, err := pmredis.Create(c, opts)
			if err != nil {
				return err
			}
			for i := 0; i < cfg.InitSize+cfg.TestSize; i++ {
				if _, err := db.Do(fmt.Sprintf("SET key:%d val:%d", i, i)); err != nil {
					return err
				}
			}
			rounds := cfg.UpdateRounds
			if rounds < 1 {
				rounds = 1
			}
			for r := 0; r < rounds; r++ {
				// Identical values every round: from the second round on the
				// server revisits byte-identical PM states, the repetition
				// the crash-state pruning ablation measures.
				for i := 0; i < cfg.Updates && i < cfg.InitSize; i++ {
					if _, err := db.Do(fmt.Sprintf("SET key:%d upd:%d", i, i)); err != nil {
						return err
					}
				}
			}
			for i := 0; i < cfg.Removes && i < cfg.InitSize; i++ {
				if _, err := db.Do(fmt.Sprintf("DEL key:%d", i)); err != nil {
					return err
				}
			}
			return nil
		},
		Post: func(c *core.Ctx) error {
			db, err := pmredis.Open(c, opts)
			if err != nil {
				return nil // creation had not committed; server starts fresh
			}
			if _, err := db.Do("DBSIZE"); err != nil {
				return err
			}
			if !cfg.PostOps {
				return nil
			}
			if _, err := db.Do("SET resumed yes"); err != nil {
				return err
			}
			return db.Verify()
		},
	}
}

// MemcachedTarget drives the mini PM-Memcached analogously.
func MemcachedTarget(cfg workloads.TargetConfig) core.Target {
	return core.Target{
		Name: "Memcached",
		Pre: func(c *core.Ctx) error {
			m, err := pmcache.Create(c)
			if err != nil {
				return err
			}
			for i := 0; i < cfg.InitSize+cfg.TestSize; i++ {
				if _, err := m.Do(fmt.Sprintf("set key%d val%d", i, i)); err != nil {
					return err
				}
			}
			rounds := cfg.UpdateRounds
			if rounds < 1 {
				rounds = 1
			}
			for r := 0; r < rounds; r++ {
				for i := 0; i < cfg.Updates && i < cfg.InitSize; i++ {
					if _, err := m.Do(fmt.Sprintf("set key%d updated%d", i, i)); err != nil {
						return err
					}
				}
			}
			for i := 0; i < cfg.Removes && i < cfg.InitSize; i++ {
				if _, err := m.Do(fmt.Sprintf("delete key%d", i)); err != nil {
					return err
				}
			}
			return nil
		},
		Post: func(c *core.Ctx) error {
			m, err := pmcache.Open(c)
			if err != nil {
				return nil // pool or cache not created yet
			}
			if _, err := m.Do("get key1"); err != nil {
				return err
			}
			if !cfg.PostOps {
				return nil
			}
			if _, err := m.Do("set resumed yes"); err != nil {
				return err
			}
			return m.Verify()
		},
	}
}

// Table4Row is one evaluated program.
type Table4Row struct {
	Name   string
	Type   string // "Transaction" or "Low-level"
	Target func(cfg workloads.TargetConfig) core.Target
}

// Table4 returns the evaluated programs of the paper's Table 4: five
// micro benchmarks plus the two real-world workloads.
func Table4() []Table4Row {
	rows := []Table4Row{}
	for _, m := range workloads.Makers() {
		m := m
		typ := "Transaction"
		if m.Name == "Hashmap-Atomic" {
			typ = "Low-level"
		}
		rows = append(rows, Table4Row{
			Name: m.Name,
			Type: typ,
			Target: func(cfg workloads.TargetConfig) core.Target {
				return workloads.DetectionTarget(m, cfg)
			},
		})
	}
	rows = append(rows,
		Table4Row{
			Name: "Memcached",
			Type: "Low-level",
			Target: func(cfg workloads.TargetConfig) core.Target {
				return MemcachedTarget(cfg)
			},
		},
		Table4Row{
			Name: "Redis",
			Type: "Transaction",
			Target: func(cfg workloads.TargetConfig) core.Target {
				return RedisTarget(pmredis.Options{}, cfg)
			},
		},
	)
	return rows
}

// DefaultPoolSize is the pool size the experiments run with.
const DefaultPoolSize = 4 << 20

// Fig12Config is the §6.2.1 configuration: the workload is initialized
// with one insertion and then tested with one insertion, with one
// post-failure operation per failure point.
var Fig12Config = workloads.TargetConfig{InitSize: 1, TestSize: 1, PostOps: true}

// UpdateLoopTarget is the cross-shard pruning experiment's campaign
// shape: a steady-state update loop over a fixed set of slots, the
// server workload whose failure points overwhelmingly freeze repeated
// crash states. The warm-up pass writes every slot under one persist
// barrier, so it contributes only a handful of failure points and — by
// writing each slot once before the loop starts — puts every byte in
// the same shadow classification the loop maintains: from the first
// round on, each pass revisits byte-identical crash states. A
// round-robin shard split then spreads every class's members across all
// shards, which is exactly the redundancy only the cross-shard verdict
// channel can remove (per-shard pruning still re-tests each class once
// per shard).
func UpdateLoopTarget(name string, slots, rounds int) core.Target {
	return core.Target{
		Name: name,
		Pre: func(c *core.Ctx) error {
			p := c.Pool()
			// A dirty byte the post stage reads: present in every crash
			// image but never persisted, so each class's representative
			// reports the same cross-failure race — the campaign finds a
			// real bug, which gives the cross-shard equivalence tests a
			// non-empty key set to hold fixed.
			p.Store64(uint64(slots)*64, 1)
			// One store site for warm-up and loop: the crash-state
			// fingerprint attributes each byte to its writer, so a separate
			// warm-up store line would leave the loop's first round
			// classifying differently (bytes not yet rewritten still blame
			// the warm-up) and turn a full round into unique classes.
			store := func(i int) { p.Store64(uint64(i)*64, uint64(i)+1) }
			for i := 0; i < slots; i++ {
				store(i)
			}
			p.Persist(0, uint64(slots)*64)
			for r := 0; r < rounds; r++ {
				for i := 0; i < slots; i++ {
					store(i)
					p.Persist(uint64(i)*64, 8)
				}
			}
			return nil
		},
		Post: func(c *core.Ctx) error {
			p := c.Pool()
			for i := 0; i <= slots; i++ {
				p.Load64(uint64(i) * 64)
			}
			return nil
		},
	}
}

// PruneAblationConfig is the crash-state pruning ablation's workload
// configuration: a small structure whose update pass is repeated thirty
// times with identical values, so the bulk of the failure points freeze
// byte-identical crash states and a pruned run tests each distinct class
// once. BenchmarkAblationPruning and the EXPERIMENTS.md ablation use it.
var PruneAblationConfig = workloads.TargetConfig{
	InitSize: 2, TestSize: 1, Updates: 2, UpdateRounds: 30, PostOps: true,
}

// RecordedFanoutTarget is the campaign BenchmarkRecordedFanout and
// TestRecordedFanoutAcceptance share: the update-heavy B-Tree with its
// validation suite's skip-add-leaf fault seeded, so the merged key sets
// both compare are non-empty. The pre-failure stage runs sixty pmobj
// update transactions with per-store source-location capture — the work a
// fast-forwarded shard replaces with trace application, which is where
// the recorded artifact's speedup comes from.
func RecordedFanoutTarget() core.Target {
	m, ok := workloads.MakerFor("B-Tree")
	if !ok {
		panic("bench: B-Tree workload not registered")
	}
	cfg := PruneAblationConfig
	cfg.Fault = "btree-skip-add-leaf"
	return workloads.DetectionTarget(m, cfg)
}
