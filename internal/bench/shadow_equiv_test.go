package bench

import (
	"fmt"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/shadow"
)

// TestShadowEquivalenceAcrossTable4 pins the sparse paged shadow's
// correctness bar on the seven-workload table: a run with
// Config.DenseShadow (the flat per-byte arrays and per-byte state
// transitions of the previous design) must produce the same report-key set
// and counters as the sparse default with its range-batched transitions —
// sequentially and under workers, where the sparse engine additionally
// hands copy-on-write forks to the checkers. Where a bug is seeded, the
// expected class must actually be detected, so the equivalence is
// established on non-trivial report sets.
func TestShadowEquivalenceAcrossTable4(t *testing.T) {
	for _, tt := range table4Cases(t) {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			base, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, tt.target())
			if err != nil {
				t.Fatal(err)
			}
			if tt.wantBug && base.Count(tt.wantClass) == 0 {
				t.Fatalf("seeded fault %q not detected with the sparse shadow:\n%s", tt.fault, base)
			}
			if !tt.wantBug && !base.Clean() {
				t.Fatalf("expected a clean run:\n%s", base)
			}
			if base.ShadowPages == 0 || base.ShadowPeakBytes == 0 {
				t.Errorf("sparse run reported no shadow footprint (%d pages, %d peak bytes)",
					base.ShadowPages, base.ShadowPeakBytes)
			}
			for _, workers := range []int{1, 2} {
				ablated, err := core.Run(core.Config{
					PoolSize:    DefaultPoolSize,
					Workers:     workers,
					DenseShadow: true,
				}, tt.target())
				if err != nil {
					t.Fatal(err)
				}
				if got, want := dedupKeys(ablated), dedupKeys(base); !stringSlicesEqual(got, want) {
					t.Errorf("workers=%d: dense-shadow report keys diverge\nsparse: %v\ndense:  %v",
						workers, want, got)
				}
				for _, c := range []struct {
					field     string
					got, base interface{}
				}{
					{"failure-points", ablated.FailurePoints, base.FailurePoints},
					{"post-runs", ablated.PostRuns, base.PostRuns},
					{"benign-reads", ablated.BenignReads, base.BenignReads},
					{"post-entries", ablated.PostEntries, base.PostEntries},
				} {
					if fmt.Sprint(c.got) != fmt.Sprint(c.base) {
						t.Errorf("workers=%d: %s = %v, want %v", workers, c.field, c.got, c.base)
					}
				}
				if ablated.ShadowPages != 0 {
					t.Errorf("workers=%d: dense run allocated %d shadow pages, want 0", workers, ablated.ShadowPages)
				}
				if base.ShadowPeakBytes >= ablated.ShadowPeakBytes {
					t.Errorf("workers=%d: sparse peak %d B not below dense peak %d B",
						workers, base.ShadowPeakBytes, ablated.ShadowPeakBytes)
				}
			}
		})
	}
}

// TestShadowMutationCaughtByTable4 proves the seven-workload table has
// teeth against shadow-layer soundness regressions: with the fence fast
// path wrongly range-persisting demoted mixed-state lines
// (lost-range-batch) or copy-on-write privatization disabled so worker
// forks observe shadow state from after their failure point
// (stale-fork-page), at least one workload must diverge from its
// unmutated run. The real workloads update structures in place after
// writebacks and persist continuously across failure points, so both
// corruptions change classifications and hence report keys or counters.
//
// Must not run in parallel with other tests: the mutation switches are
// package-level toggles in internal/shadow.
func TestShadowMutationCaughtByTable4(t *testing.T) {
	cases := table4Cases(t)
	type summary struct {
		keys    []string
		fps     int
		posts   int
		benign  uint64
		entries int
	}
	baselines := make(map[string]summary)
	for _, tt := range cases {
		res, err := core.Run(core.Config{PoolSize: DefaultPoolSize}, tt.target())
		if err != nil {
			t.Fatal(err)
		}
		baselines[tt.name] = summary{dedupKeys(res), res.FailurePoints, res.PostRuns, res.BenignReads, res.PostEntries}
	}
	for _, mut := range []struct {
		name string
		set  func(bool)
		// workers is the width the mutated runs use: the stale-fork-page
		// corruption only exists where forks do, i.e. in parallel mode
		// (the parallel equivalence tests pin workers runs to the
		// sequential baseline, so the comparison stays fair).
		workers int
		racy    bool
	}{
		{"lost-range-batch", shadow.SetLostRangeBatchForTest, 0, false},
		{"stale-fork-page", shadow.SetStaleForkPageForTest, 2, true},
	} {
		t.Run(mut.name, func(t *testing.T) {
			if mut.racy && raceEnabled {
				t.Skipf("%s disables COW privatization, a genuine data race; exercised without -race", mut.name)
			}
			mut.set(true)
			defer mut.set(false)
			caught := 0
			for _, tt := range cases {
				res, err := core.Run(core.Config{PoolSize: DefaultPoolSize, Workers: mut.workers}, tt.target())
				if err != nil {
					// A harness-level failure under mutation is itself a
					// divergence from the clean baseline run.
					caught++
					continue
				}
				b := baselines[tt.name]
				if !stringSlicesEqual(dedupKeys(res), b.keys) ||
					res.FailurePoints != b.fps || res.PostRuns != b.posts ||
					res.BenignReads != b.benign || res.PostEntries != b.entries {
					caught++
				}
			}
			if caught == 0 {
				t.Fatalf("seeded %s mutation went undetected by all %d workloads", mut.name, len(cases))
			}
			t.Logf("%s caught by %d/%d workloads", mut.name, caught, len(cases))
		})
	}
}
