package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
)

// Baseline comparison (xfdbench -compare): two parsed benchmark runs,
// matched by benchmark name, with per-benchmark deltas on wall time
// (ns/op) and post-failure time (post-s/op) — the metric the detection
// optimizations actually move. A delta past the regression threshold
// flags the run, which is the CI perf gate: the smoke workflow compares
// every push's benchmark pass against the checked-in baseline.

// ReadBaselineJSON loads a baseline cmd/xfdbench wrote with WriteJSON.
func ReadBaselineJSON(r io.Reader) (*BenchBaseline, error) {
	base := &BenchBaseline{}
	if err := json.NewDecoder(r).Decode(base); err != nil {
		return nil, fmt.Errorf("bench: decoding baseline: %w", err)
	}
	if len(base.Benchmarks) == 0 {
		return nil, fmt.Errorf("bench: baseline holds no benchmarks")
	}
	return base, nil
}

// comparedMetrics are the metrics CompareBaselines reports and gates on,
// in report order. ns/op is stored on its own field, so it is handled
// explicitly; post-s/op rides in the Metrics map.
var comparedMetrics = []string{"ns/op", "post-s/op"}

// metricValue extracts one compared metric, reporting presence.
func metricValue(res BenchResult, metric string) (float64, bool) {
	if metric == "ns/op" {
		return res.NsPerOp, true
	}
	v, ok := res.Metrics[metric]
	return v, ok
}

// cpuSuffix is the "-N" GOMAXPROCS suffix `go test -bench` appends to
// benchmark names. It varies with the machine, and a baseline recorded
// on one core count must still match a run from another, so names are
// compared with the suffix stripped.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// benchKey is the machine-independent identity of a benchmark name.
func benchKey(name string) string { return cpuSuffix.ReplaceAllString(name, "") }

// CompareBaselines writes a per-benchmark delta table for every
// benchmark present in both runs and returns the names of benchmarks
// whose new value regressed past threshold (a fraction: 0.10 flags
// anything more than 10% slower) on any compared metric. Benchmarks
// present on only one side are listed but never flagged — renames must
// not crash the gate — but comparing two runs with no common benchmark
// at all is an error, so a baseline from a different suite cannot pass
// vacuously.
func CompareBaselines(w io.Writer, old, cur *BenchBaseline, threshold float64) ([]string, error) {
	oldByName := make(map[string]BenchResult, len(old.Benchmarks))
	for _, res := range old.Benchmarks {
		oldByName[benchKey(res.Name)] = res
	}

	var regressed []string
	common := 0
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	for _, res := range cur.Benchmarks {
		prev, ok := oldByName[benchKey(res.Name)]
		if !ok {
			fmt.Fprintf(w, "%-60s %14s %14.0f %8s  [new]\n", res.Name+" ns/op", "-", res.NsPerOp, "-")
			continue
		}
		common++
		delete(oldByName, benchKey(res.Name))
		flagged := false
		for _, metric := range comparedMetrics {
			ov, oldHas := metricValue(prev, metric)
			nv, newHas := metricValue(res, metric)
			if !oldHas || !newHas {
				continue
			}
			delta := "-"
			if ov != 0 {
				ratio := (nv - ov) / ov
				delta = fmt.Sprintf("%+.1f%%", 100*ratio)
				if ratio > threshold {
					delta += " REGRESSED"
					flagged = true
				}
			} else if nv > 0 {
				delta = "+inf%"
				flagged = true
			}
			fmt.Fprintf(w, "%-60s %14.4g %14.4g %8s\n", res.Name+" "+metric, ov, nv, delta)
		}
		if flagged {
			regressed = append(regressed, res.Name)
		}
	}
	removed := make([]string, 0, len(oldByName))
	for name := range oldByName {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "%-60s %14.0f %14s %8s  [removed]\n", name+" ns/op", oldByName[name].NsPerOp, "-", "-")
	}
	if common == 0 {
		return nil, fmt.Errorf("bench: the runs share no benchmark; nothing was compared")
	}
	if len(regressed) > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed more than %.0f%%: %v\n",
			len(regressed), 100*threshold, regressed)
	}
	return regressed, nil
}
