package pmobj

import (
	"github.com/pmemgo/xfdetector/internal/trace"
)

// Block allocator.
//
// The heap is an array of 64-byte blocks with a persistent one-byte-per-
// block map. Every allocation is prefixed by an 8-byte size header, so the
// usable data offset is blockStart+8. Non-transactional ("atomic") map
// updates are made failure-atomic with a tiny operation log (Table 1,
// "operational logging"):
//
//	oplogOff+0  status   (0 idle, 1 alloc pending, 2 free pending)
//	oplogOff+8  blockIdx
//	oplogOff+16 count
//
// The record is persisted before the status, and the status before the map
// update, so recovery can always tell whether a pending operation must be
// reverted (alloc) or completed (free). Transactional allocations bypass
// the operation log; their atomicity comes from the undo log (tx.go).

const (
	opIdle        = 0
	opAllocPend   = 1
	opFreePending = 2
)

// findFree returns the first run of n contiguous free blocks, or an error.
// The scan uses the volatile mirror, so it traces nothing.
func (po *Pool) findFree(n uint64) (uint64, error) {
	run := uint64(0)
	for i := uint64(0); i < po.nblocks; i++ {
		if po.free[i] {
			run++
			if run == n {
				return i - n + 1, nil
			}
		} else {
			run = 0
		}
	}
	return 0, ErrOutOfMemory
}

// markBlocks updates the persistent block map (and size header for
// allocations) without any ordering; callers persist.
func (po *Pool) markBlocks(idx, n uint64, used bool) {
	v := byte(0)
	if used {
		v = 1
	}
	for b := idx; b < idx+n; b++ {
		po.p.Store8(po.blkmap+b, v)
		po.free[b] = !used
	}
}

// AllocAtomic allocates size bytes outside any transaction, mirroring
// POBJ_ALLOC: the operation log makes the *allocator metadata* failure
// atomic, but the content of the new object is only as persistent as the
// constructor makes it. The constructor (which may be nil) runs as user
// code: its writes are traced and checked like any other program writes —
// a constructor that forgets to initialize or persist a field recreates
// the paper's Bug 1/Bug 2.
func (po *Pool) AllocAtomic(size uint64, constructor func(off uint64)) (uint64, error) {
	if po.tx != nil {
		return 0, ErrInTx
	}
	if size == 0 {
		size = 1
	}
	n := blocksFor(size)

	done := po.lib()
	idx, err := po.findFree(n)
	if err != nil {
		done()
		return 0, err
	}
	p := po.p
	// Operation record first, then status, then the map: each step
	// persisted before the next so recovery sees a well-defined state.
	p.Store64(oplogOff+8, idx)
	p.Store64(oplogOff+16, n)
	p.Persist(oplogOff+8, 16)
	p.Store64(oplogOff, opAllocPend)
	p.Persist(oplogOff, 8)
	po.markBlocks(idx, n, true)
	blockStart := po.heapOff + idx*BlockSize
	p.Store64(blockStart, size)
	p.CLWB(po.blkmap+idx, n)
	p.CLWB(blockStart, allocHeader)
	p.SFence()
	p.Store64(oplogOff, opIdle)
	p.Persist(oplogOff, 8)
	done()

	dataOff := blockStart + allocHeader
	// Announce the allocation: the new range's content is indeterminate
	// until the program initializes and persists it (paper Bug 2).
	p.Announce(trace.AtomicAlloc, dataOff, size, "pmobj.AllocAtomic")
	if constructor != nil {
		constructor(dataOff)
	}
	return dataOff, nil
}

// FreeAtomic frees an atomic allocation at dataOff.
func (po *Pool) FreeAtomic(dataOff uint64) error {
	if po.tx != nil {
		return ErrInTx
	}
	idx, n, err := po.blocksOf(dataOff)
	if err != nil {
		return err
	}
	done := po.lib()
	defer done()
	p := po.p
	p.Store64(oplogOff+8, idx)
	p.Store64(oplogOff+16, n)
	p.Persist(oplogOff+8, 16)
	p.Store64(oplogOff, opFreePending)
	p.Persist(oplogOff, 8)
	po.markBlocks(idx, n, false)
	p.Persist(po.blkmap+idx, n)
	p.Store64(oplogOff, opIdle)
	p.Persist(oplogOff, 8)
	return nil
}

// blocksOf maps a data offset back to its block run.
func (po *Pool) blocksOf(dataOff uint64) (idx, n uint64, err error) {
	blockStart := dataOff - allocHeader
	if blockStart < po.heapOff || blockStart >= po.heapOff+po.heapSize ||
		(blockStart-po.heapOff)%BlockSize != 0 {
		return 0, 0, ErrBadFree
	}
	idx = (blockStart - po.heapOff) / BlockSize
	done := po.lib()
	size := po.p.Load64(blockStart)
	done()
	n = blocksFor(size)
	if idx+n > po.nblocks {
		return 0, 0, ErrBadFree
	}
	return idx, n, nil
}

// AllocSize returns the size recorded for the allocation at dataOff.
func (po *Pool) AllocSize(dataOff uint64) (uint64, error) {
	blockStart := dataOff - allocHeader
	if blockStart < po.heapOff || blockStart >= po.heapOff+po.heapSize {
		return 0, ErrBadFree
	}
	done := po.lib()
	size := po.p.Load64(blockStart)
	done()
	return size, nil
}

// recoverOplog completes or reverts a pending allocator operation after a
// failure: a pending alloc is reverted (the object was never handed to the
// program durably), a pending free is completed (the program already gave
// the memory up). Callers hold the library bracket.
func (po *Pool) recoverOplog() error {
	p := po.p
	status := p.Load64(oplogOff)
	switch status {
	case opIdle:
		return nil
	case opAllocPend, opFreePending:
		idx := p.Load64(oplogOff + 8)
		n := p.Load64(oplogOff + 16)
		if idx+n > po.nblocks {
			return ErrCorruptMeta
		}
		// Revert the pending alloc / complete the pending free: both
		// clear the blocks.
		for b := idx; b < idx+n; b++ {
			p.Store8(po.blkmap+b, 0)
		}
		p.Persist(po.blkmap+idx, n)
		p.Store64(oplogOff, opIdle)
		p.Persist(oplogOff, 8)
		return nil
	default:
		return ErrCorruptMeta
	}
}
