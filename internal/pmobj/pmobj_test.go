package pmobj

import (
	"testing"

	"github.com/pmemgo/xfdetector/internal/pmem"
)

func newTestPool(t *testing.T) *pmem.Pool {
	t.Helper()
	return pmem.New(t.Name(), 1<<20)
}

func mustCreate(t *testing.T, p *pmem.Pool, rootSize uint64) *Pool {
	t.Helper()
	po, err := Create(p, rootSize, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return po
}

func TestCreateAndOpen(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 256)
	if po.RootSize() != 256 {
		t.Errorf("root size = %d, want 256", po.RootSize())
	}
	root := po.Root()
	p.Store64(root, 0xDEADBEEF)
	p.Persist(root, 8)

	reopened, err := Open(p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if reopened.Root() != root {
		t.Errorf("root moved across open: %#x != %#x", reopened.Root(), root)
	}
	if got := p.Load64(root); got != 0xDEADBEEF {
		t.Errorf("root data = %#x, want 0xDEADBEEF", got)
	}
}

func TestOpenRejectsUninitializedPool(t *testing.T) {
	p := newTestPool(t)
	if _, err := Open(p); err != ErrNotAPool {
		t.Fatalf("Open of raw pool: err = %v, want ErrNotAPool", err)
	}
}

func TestRootZeroed(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 128)
	buf := make([]byte, 128)
	p.Load(po.Root(), buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("root byte %d = %#x, want 0", i, b)
		}
	}
}

func TestAllocAtomicRoundTrip(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	off, err := po.AllocAtomic(100, func(off uint64) {
		p.Store64(off, 42)
		p.Persist(off, 8)
	})
	if err != nil {
		t.Fatalf("AllocAtomic: %v", err)
	}
	if got := p.Load64(off); got != 42 {
		t.Errorf("constructor write lost: %d", got)
	}
	size, err := po.AllocSize(off)
	if err != nil || size != 100 {
		t.Errorf("AllocSize = %d, %v; want 100, nil", size, err)
	}
	before := po.FreeBlocks()
	if err := po.FreeAtomic(off); err != nil {
		t.Fatalf("FreeAtomic: %v", err)
	}
	if po.FreeBlocks() != before+blocksFor(100) {
		t.Errorf("free blocks = %d, want %d", po.FreeBlocks(), before+blocksFor(100))
	}
}

func TestAllocAtomicDistinct(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		off, err := po.AllocAtomic(33, nil)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[off] {
			t.Fatalf("allocation %d returned reused offset %#x", i, off)
		}
		seen[off] = true
	}
}

func TestAllocExhaustion(t *testing.T) {
	p := pmem.New("tiny", 16<<10)
	po, err := Create(p, 64, &Options{TxLogSize: 4096})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	var last error
	for i := 0; i < 10000; i++ {
		if _, last = po.AllocAtomic(512, nil); last != nil {
			break
		}
	}
	if last != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", last)
	}
}

func TestFreeAtomicBadOffset(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	if err := po.FreeAtomic(123457); err != ErrBadFree {
		t.Fatalf("FreeAtomic(bogus) = %v, want ErrBadFree", err)
	}
}

func TestTxCommitPersistsData(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	root := po.Root()
	p.Store64(root, 100)
	p.Persist(root, 8)

	err := po.Tx(func(tx *Tx) error {
		if err := tx.Add(root, 8); err != nil {
			return err
		}
		p.Store64(root, 200)
		return nil
	})
	if err != nil {
		t.Fatalf("Tx: %v", err)
	}
	if got := p.Load64(root); got != 200 {
		t.Errorf("after commit: %d, want 200", got)
	}
	// Reopen: recovery must be a no-op for a committed transaction.
	po2, err := Open(p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := p.Load64(po2.Root()); got != 200 {
		t.Errorf("after reopen: %d, want 200", got)
	}
}

func TestTxAbortRollsBack(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	root := po.Root()
	p.Store64(root, 100)
	p.Persist(root, 8)

	errBoom := po.Tx(func(tx *Tx) error {
		if err := tx.Add(root, 8); err != nil {
			return err
		}
		p.Store64(root, 777)
		return ErrOutOfMemory // any error aborts
	})
	if errBoom != ErrOutOfMemory {
		t.Fatalf("Tx error = %v", errBoom)
	}
	if got := p.Load64(root); got != 100 {
		t.Errorf("after abort: %d, want 100 (rolled back)", got)
	}
}

func TestTxPanicRollsBack(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	root := po.Root()
	p.Store64(root, 5)
	p.Persist(root, 8)

	func() {
		defer func() { recover() }()
		_ = po.Tx(func(tx *Tx) error {
			if err := tx.Add(root, 8); err != nil {
				return err
			}
			p.Store64(root, 6)
			panic("boom")
		})
	}()
	if got := p.Load64(root); got != 5 {
		t.Errorf("after panic: %d, want 5 (rolled back)", got)
	}
	if po.tx != nil {
		t.Error("transaction leaked after panic")
	}
}

func TestTxInterruptedRecoversOnOpen(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	root := po.Root()
	p.Store64(root, 100)
	p.Persist(root, 8)

	// Simulate a failure mid-transaction: mutate without committing, then
	// "crash" by taking the image and reopening it elsewhere.
	tx, err := po.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(root, 8); err != nil {
		t.Fatal(err)
	}
	p.Store64(root, 999)

	crash := pmem.FromImage("crash", p.Snapshot())
	po2, err := Open(crash)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	if got := crash.Load64(po2.Root()); got != 100 {
		t.Errorf("recovery result = %d, want 100 (undo applied)", got)
	}
	// Recovery must have invalidated the log: a second open is a no-op.
	if _, err := Open(crash); err != nil {
		t.Fatalf("second Open: %v", err)
	}
}

func TestTxAllocRolledBackOnCrash(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)

	tx, err := po.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Alloc(128); err != nil {
		t.Fatal(err)
	}
	crash := pmem.FromImage("crash", p.Snapshot())
	po2, err := Open(crash)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	// All heap blocks except the root must be free again.
	want := po2.nblocks - blocksFor(64)
	if got := po2.FreeBlocks(); got != want {
		t.Errorf("free blocks after recovery = %d, want %d", got, want)
	}
}

func TestTxFreeRolledBackOnCrash(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	off, err := po.AllocAtomic(64, func(off uint64) {
		p.Store64(off, 11)
		p.Persist(off, 8)
	})
	if err != nil {
		t.Fatal(err)
	}

	tx, err := po.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Free(off); err != nil {
		t.Fatal(err)
	}
	crash := pmem.FromImage("crash", p.Snapshot())
	po2, err := Open(crash)
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	// The free must have been rolled back: the object is still allocated
	// and its data intact.
	if got := crash.Load64(off); got != 11 {
		t.Errorf("freed-then-recovered data = %d, want 11", got)
	}
	if size, err := po2.AllocSize(off); err != nil || size != 64 {
		t.Errorf("AllocSize after recovery = %d, %v", size, err)
	}
}

func TestTxFreeNoReuseWithinTx(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	off, err := po.AllocAtomic(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = po.Tx(func(tx *Tx) error {
		if err := tx.Free(off); err != nil {
			return err
		}
		off2, err := tx.Alloc(64)
		if err != nil {
			return err
		}
		if off2 == off {
			t.Error("transaction reused blocks it freed itself")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedBeginRejected(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	tx, err := po.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := po.Begin(); err != ErrInTx {
		t.Fatalf("nested Begin = %v, want ErrInTx", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicAllocInsideTxRejected(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	err := po.Tx(func(tx *Tx) error {
		if _, err := po.AllocAtomic(64, nil); err != ErrInTx {
			t.Errorf("AllocAtomic in tx = %v, want ErrInTx", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTxLogFull(t *testing.T) {
	p := newTestPool(t)
	po, err := Create(p, 4096, &Options{TxLogSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := po.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	var last error
	for i := 0; i < 100; i++ {
		if last = tx.Add(po.Root(), 256); last != nil {
			break
		}
	}
	if last != ErrTxLogFull {
		t.Fatalf("expected ErrTxLogFull, got %v", last)
	}
}

func TestOperationsAfterFinishRejected(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	tx, err := po.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add(po.Root(), 8); err != ErrNoTx {
		t.Errorf("Add after commit = %v, want ErrNoTx", err)
	}
	if err := tx.Commit(); err != ErrNoTx {
		t.Errorf("double commit = %v, want ErrNoTx", err)
	}
	if _, err := tx.Alloc(8); err != ErrNoTx {
		t.Errorf("Alloc after commit = %v, want ErrNoTx", err)
	}
}

func TestBug4CreateUnorderedMetaStillReadable(t *testing.T) {
	// The seeded Bug 4 variant must still produce a pool that opens when
	// no failure interrupts creation; the bug is only visible across a
	// failure (that detection is exercised in the workloads package).
	p := newTestPool(t)
	if _, err := Create(p, 64, &Options{Faults: Faults{CreateUnorderedMeta: true}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); err != nil {
		t.Fatalf("Open after complete buggy create: %v", err)
	}
}

func TestCommitFaultsStillFunctional(t *testing.T) {
	// The seeded commit faults change persistence guarantees, not
	// failure-free behaviour.
	for _, f := range []Faults{{CommitSkipFlush: true}, {SkipLogInvalidate: false}} {
		p := newTestPool(t)
		po, err := Create(p, 64, &Options{Faults: f})
		if err != nil {
			t.Fatal(err)
		}
		root := po.Root()
		err = po.Tx(func(tx *Tx) error {
			if err := tx.Add(root, 8); err != nil {
				return err
			}
			p.Store64(root, 321)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Load64(root); got != 321 {
			t.Errorf("faults %+v: data = %d, want 321", f, got)
		}
	}
}

func TestOpenRejectsCorruptMetadata(t *testing.T) {
	corrupt := func(name string, mutate func(p *pmem.Pool)) {
		t.Helper()
		p := newTestPool(t)
		mustCreate(t, p, 64)
		mutate(p)
		if _, err := Open(p); err == nil {
			t.Errorf("%s: corrupt pool opened successfully", name)
		}
	}
	corrupt("zero-heap-off", func(p *pmem.Pool) { p.Store64(offHeapOff, 0) })
	corrupt("root-outside-heap", func(p *pmem.Pool) { p.Store64(offRootOff, 16) })
	corrupt("blkmap-outside-pool", func(p *pmem.Pool) { p.Store64(offBlkmap, p.Size()) })
	corrupt("heap-outside-pool", func(p *pmem.Pool) { p.Store64(offHeapSize, p.Size()*2) })
	corrupt("bad-magic", func(p *pmem.Pool) { p.Store64(offMagic, 0x1234) })
	corrupt("bad-oplog-status", func(p *pmem.Pool) { p.Store64(oplogOff, 99) })
	corrupt("oplog-range-out", func(p *pmem.Pool) {
		p.Store64(oplogOff, opAllocPend)
		p.Store64(oplogOff+8, 1<<40)
		p.Store64(oplogOff+16, 1)
	})
}

func TestOplogRecoveryRevertsPendingAlloc(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	free := po.FreeBlocks()
	// Simulate a crash mid-AllocAtomic: record + status persisted, map
	// half-updated.
	p.Store64(oplogOff+8, 10) // blockIdx
	p.Store64(oplogOff+16, 2) // count
	p.Persist(oplogOff+8, 16)
	p.Store64(oplogOff, opAllocPend)
	p.Persist(oplogOff, 8)
	p.Store8(po.blkmap+10, 1) // only the first block marked
	crash := pmem.FromImage("crash", p.Snapshot())
	po2, err := Open(crash)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if po2.FreeBlocks() != free {
		t.Errorf("pending alloc not reverted: free=%d want %d", po2.FreeBlocks(), free)
	}
	if crash.Load64(oplogOff) != opIdle {
		t.Error("oplog status not cleared")
	}
}

func TestOplogRecoveryCompletesPendingFree(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	off, err := po.AllocAtomic(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := po.FreeBlocks()
	// Simulate a crash mid-FreeAtomic: record + status persisted, map
	// untouched.
	blockStart := off - allocHeader
	idx := (blockStart - po.heapOff) / BlockSize
	p.Store64(oplogOff+8, idx)
	p.Store64(oplogOff+16, blocksFor(100))
	p.Persist(oplogOff+8, 16)
	p.Store64(oplogOff, opFreePending)
	p.Persist(oplogOff, 8)
	crash := pmem.FromImage("crash", p.Snapshot())
	po2, err := Open(crash)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := po2.FreeBlocks(); got != freeBefore+blocksFor(100) {
		t.Errorf("pending free not completed: free=%d want %d", got, freeBefore+blocksFor(100))
	}
}

func TestAllocSizeBadOffset(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	if _, err := po.AllocSize(3); err == nil {
		t.Error("AllocSize(bogus) succeeded")
	}
}

func TestTxAddZeroSizeRejected(t *testing.T) {
	p := newTestPool(t)
	po := mustCreate(t, p, 64)
	tx, err := po.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	if err := tx.Add(po.Root(), 0); err == nil {
		t.Error("zero-size TX_ADD accepted")
	}
}
