// Package pmobj is a from-scratch PMDK-like persistent object library — the
// substrate the paper's evaluated workloads are built on (libpmemobj's
// transactional API and the low-level atomic API).
//
// A pmobj pool lives inside a pmem.Pool and provides:
//
//   - a persistent header with metadata and a validity flag, written with
//     the proper ordering at creation (the seeded Bug 4 variant omits the
//     ordering, reproducing the paper's pmemobj_createU bug);
//   - a root object of caller-chosen size, like pmemobj_root;
//   - a block allocator whose operations are made failure-atomic with a
//     small operation log (Table 1, "operational logging");
//   - undo-log transactions: Begin/Add/Commit/Abort with recovery applied
//     on Open (Table 1, "undo logging");
//   - an atomic (non-transactional) allocation API mirroring POBJ_ALLOC,
//     including its sharp edge: the new object's content is only as
//     persistent as the constructor makes it (the paper's Bug 2).
//
// Like the paper's handling of PMDK (§5.3, §5.5), the library's internal
// metadata manipulation is traced at function granularity and excluded from
// read checking (skip-detection), while the events that matter to the
// backend — TX_BEGIN/TX_ADD/TX_COMMIT, allocations, and the header commit
// variable — are announced explicitly.
package pmobj

import (
	"errors"
	"fmt"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// Pool layout (all offsets are pmem.Pool offsets):
//
//	[0,   128)  header
//	[128, 192)  allocator operation log
//	[192, 192+txLogSize)  transaction undo log
//	[...      )  block map (1 byte per heap block)
//	[...      )  heap (64-byte blocks)
const (
	offMagic    = 0
	offVersion  = 8
	offRootOff  = 16
	offRootSize = 24
	offHeapOff  = 32
	offHeapSize = 40
	offTxLogOff = 48
	offBlkmap   = 56
	offUUID     = 64 // 16 bytes
	offValid    = 80 // 8 bytes: the header commit variable
	headerSize  = 128

	oplogOff  = 128
	oplogSize = 64

	txLogOff = 192

	// Magic marks an initialized pmobj pool.
	Magic = 0x504d4f424a310001

	// Version is the layout version.
	Version = 1

	// BlockSize is the allocation granularity.
	BlockSize = 64

	// allocHeader is the per-allocation size prefix.
	allocHeader = 8

	defaultTxLogSize = 64 << 10
)

// Errors returned by the library.
var (
	// ErrNotAPool indicates the pmem pool does not contain an initialized
	// pmobj pool (bad magic or validity flag).
	ErrNotAPool = errors.New("pmobj: not a valid pmobj pool")
	// ErrCorruptMeta indicates the header validity flag is set but the
	// metadata is not usable — the observable symptom of the paper's
	// Bug 4.
	ErrCorruptMeta = errors.New("pmobj: pool metadata is corrupt")
	// ErrOutOfMemory indicates the heap cannot satisfy an allocation.
	ErrOutOfMemory = errors.New("pmobj: out of persistent memory")
	// ErrTxLogFull indicates the undo log arena is exhausted.
	ErrTxLogFull = errors.New("pmobj: transaction undo log is full")
	// ErrNoTx indicates a transactional operation outside a transaction.
	ErrNoTx = errors.New("pmobj: no transaction in progress")
	// ErrInTx indicates an operation that is illegal inside a transaction.
	ErrInTx = errors.New("pmobj: operation not allowed inside a transaction")
	// ErrBadFree indicates a free of an address that is not an allocation.
	ErrBadFree = errors.New("pmobj: free of non-allocated address")
)

// Faults enumerates the seeded bugs of the library itself. All flags
// default to off (correct behaviour).
type Faults struct {
	// CreateUnorderedMeta reproduces the paper's Bug 4
	// (pmemobj_createU/util_pool_create_uuids): pool creation sets the
	// validity flag without ordering it after the metadata persists, so a
	// failure during creation leaves a pool that claims to be valid but
	// has incomplete metadata.
	CreateUnorderedMeta bool
	// CommitSkipFlush makes transaction commit skip the writeback of the
	// transaction's object ranges: committed data is not guaranteed
	// persistent.
	CommitSkipFlush bool
	// SkipLogInvalidate makes commit skip invalidating the undo log, so
	// recovery after a completed transaction rolls it back with stale
	// data.
	SkipLogInvalidate bool
}

// Options configures pool creation.
type Options struct {
	// TxLogSize is the undo-log arena size (default 64 KiB).
	TxLogSize uint64
	// Faults selects seeded library bugs.
	Faults Faults
}

// Pool is an open pmobj pool.
type Pool struct {
	p      *pmem.Pool
	faults Faults

	rootOff  uint64
	rootSize uint64
	heapOff  uint64
	heapSize uint64
	txLogOff uint64
	txLogLen uint64
	blkmap   uint64
	nblocks  uint64

	// free is the volatile mirror of the block map.
	free []bool

	tx *Tx
}

// lib brackets library-internal code: entries are flagged InLibrary and
// excluded from post-failure read checking, mirroring the paper's
// function-granularity handling of PMDK internals.
func (po *Pool) lib() func() {
	po.p.EnterLibrary()
	po.p.EnterSkipDetection()
	return func() {
		po.p.ExitSkipDetection()
		po.p.ExitLibrary()
	}
}

// Create initializes a pmobj pool with a zeroed root object of rootSize
// bytes inside p, and returns it opened. opts may be nil.
func Create(p *pmem.Pool, rootSize uint64, opts *Options) (*Pool, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.TxLogSize == 0 {
		o.TxLogSize = defaultTxLogSize
	}
	o.TxLogSize = pmem.LineUp(o.TxLogSize)

	blkmapOff := pmem.LineUp(txLogOff + o.TxLogSize)
	// Solve for a block count where map and heap fit the pool.
	avail := p.Size() - blkmapOff
	nblocks := avail / (BlockSize + 1)
	nblocks -= nblocks % BlockSize // keep the heap line-aligned
	if nblocks == 0 {
		return nil, fmt.Errorf("pmobj: pool of %d bytes is too small", p.Size())
	}
	heapOff := pmem.LineUp(blkmapOff + nblocks)

	po := &Pool{
		p:        p,
		faults:   o.Faults,
		heapOff:  heapOff,
		heapSize: nblocks * BlockSize,
		txLogOff: txLogOff,
		txLogLen: o.TxLogSize,
		blkmap:   blkmapOff,
		nblocks:  nblocks,
		free:     make([]bool, nblocks),
	}
	for i := range po.free {
		po.free[i] = true
	}

	done := po.lib()
	defer done()

	// The header validity flag is the creation commit variable: metadata
	// is consistent only if persisted before the flag (Eq. 3). The magic
	// number is part of the same validity decision, so reading either
	// during recovery is a benign cross-failure race. Register both before
	// the writes they govern.
	registerHeaderCommitVars(p, "pmobj.Create")

	// Root allocation: carve the first blocks of the heap directly (the
	// pool is not live yet, so no operation log is needed).
	rootBlocks := blocksFor(rootSize)
	if rootBlocks > nblocks {
		return nil, ErrOutOfMemory
	}
	rootOff := heapOff + allocHeader
	po.rootOff = rootOff
	po.rootSize = rootSize

	p.Store64(offMagic, Magic)
	p.Store64(offVersion, Version)
	p.Store64(offRootOff, rootOff)
	p.Store64(offRootSize, rootSize)
	p.Store64(offHeapOff, heapOff)
	p.Store64(offHeapSize, po.heapSize)
	p.Store64(offTxLogOff, po.txLogOff)
	p.Store64(offBlkmap, blkmapOff)
	for i := uint64(0); i < 16; i++ { // a fixed UUID keeps runs deterministic
		p.Store8(offUUID+i, byte(0xA0+i))
	}

	// Empty undo log and idle operation log.
	p.Memset(po.txLogOff, 0, 24)
	p.Memset(oplogOff, 0, 24)

	// Mark the root's blocks used and lay down its size header.
	for b := uint64(0); b < rootBlocks; b++ {
		p.Store8(blkmapOff+b, 1)
		po.free[b] = false
	}
	p.Store64(heapOff, rootSize)
	p.Memset(rootOff, 0, rootSize)

	if po.faults.CreateUnorderedMeta {
		// BUG (paper Bug 4): the validity flag is written together with
		// the metadata and everything is persisted with a single barrier,
		// so nothing orders the metadata before the flag. A failure during
		// creation leaves a pool that may claim validity with incomplete
		// metadata.
		p.Store64(offValid, 1)
		p.CLWB(0, headerSize)
		p.CLWB(po.txLogOff, 24)
		p.CLWB(blkmapOff, rootBlocks)
		p.CLWB(heapOff, allocHeader+rootSize)
		p.SFence()
	} else {
		// Correct ordering: persist all metadata, then set and persist
		// the validity flag.
		p.CLWB(0, offValid) // header fields and UUID, not yet the flag
		p.CLWB(po.txLogOff, 24)
		p.CLWB(oplogOff, 24)
		p.CLWB(blkmapOff, rootBlocks)
		p.CLWB(heapOff, allocHeader+rootSize)
		p.SFence()
		p.Store64(offValid, 1)
		p.Persist(offValid, 8)
	}
	return po, nil
}

// Open opens an existing pmobj pool in p and runs recovery: validity
// checks, undo-log rollback, and operation-log completion. It is the
// post-failure entry point of every workload.
func Open(p *pmem.Pool) (*Pool, error) {
	po := &Pool{p: p}

	// The validation reads below are the recovery's decision points; they
	// are deliberately NOT skip-detected. The validity flag is a commit
	// variable (benign to read) and the header fields are its associated
	// set, so a creation that failed to order them is reported.
	p.EnterLibrary()
	registerHeaderCommitVars(p, "pmobj.Open")
	valid := p.Load64(offValid)
	magic := p.Load64(offMagic)
	if valid != 1 || magic != Magic {
		p.ExitLibrary()
		return nil, ErrNotAPool
	}
	po.rootOff = p.Load64(offRootOff)
	po.rootSize = p.Load64(offRootSize)
	po.heapOff = p.Load64(offHeapOff)
	po.heapSize = p.Load64(offHeapSize)
	po.txLogOff = p.Load64(offTxLogOff)
	po.blkmap = p.Load64(offBlkmap)
	p.ExitLibrary()

	po.nblocks = po.heapSize / BlockSize
	if po.heapOff == 0 || po.heapSize == 0 || po.nblocks == 0 ||
		po.rootOff < po.heapOff || po.rootOff >= po.heapOff+po.heapSize ||
		po.blkmap == 0 || po.blkmap+po.nblocks > p.Size() ||
		po.heapOff+po.heapSize > p.Size() {
		return nil, ErrCorruptMeta
	}
	po.txLogLen = po.blkmap - po.txLogOff // arena runs up to the block map
	if po.txLogOff < headerSize || po.txLogLen < 64 {
		return nil, ErrCorruptMeta
	}

	done := po.lib()
	defer done()

	if err := po.recoverTxLog(); err != nil {
		return nil, err
	}
	if err := po.recoverOplog(); err != nil {
		return nil, err
	}

	// Rebuild the volatile free map from the (now consistent) block map.
	po.free = make([]bool, po.nblocks)
	m := make([]byte, po.nblocks)
	po.p.Load(po.blkmap, m)
	for i, b := range m {
		po.free[i] = b == 0
	}
	return po, nil
}

// PM returns the underlying pmem pool.
func (po *Pool) PM() *pmem.Pool { return po.p }

// SetFaults enables seeded library bugs on an opened pool (faults are a
// property of the code, not the pool image, so Open does not restore them).
func (po *Pool) SetFaults(f Faults) { po.faults = f }

// Root returns the offset of the root object.
func (po *Pool) Root() uint64 { return po.rootOff }

// RootSize returns the root object size requested at creation.
func (po *Pool) RootSize() uint64 { return po.rootSize }

// HeapOff returns the heap base offset (useful in tests).
func (po *Pool) HeapOff() uint64 { return po.heapOff }

// Persist writes back and fences [off, off+size) — pmemobj_persist.
func (po *Pool) Persist(off, size uint64) { po.p.Persist(off, size) }

// FreeBlocks reports the number of free heap blocks (volatile view).
func (po *Pool) FreeBlocks() uint64 {
	n := uint64(0)
	for _, f := range po.free {
		if f {
			n++
		}
	}
	return n
}

func blocksFor(size uint64) uint64 {
	return (size + allocHeader + BlockSize - 1) / BlockSize
}

// registerHeaderCommitVars announces the header's validity flag and magic
// number as commit variables, with the remaining header fields as the
// flag's associated address set (Eq. 3): metadata is consistent only when
// persisted between the last two validity-flag updates.
func registerHeaderCommitVars(p *pmem.Pool, fn string) {
	p.AnnounceEntry(trace.Entry{
		Kind: trace.RegCommitRange,
		Addr: offValid, Size: 8,
		Addr2: offVersion, Size2: offValid - offVersion,
		Func: fn,
	})
	p.AnnounceEntry(trace.Entry{Kind: trace.RegCommitVar, Addr: offMagic, Size: 8, Func: fn})
}
