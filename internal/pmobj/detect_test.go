package pmobj_test

import (
	"fmt"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmobj"
)

// counterTarget is a minimal transactional program: the root holds two
// counters whose sum is invariant; the pre-failure stage moves value
// between them inside a transaction, the post-failure stage recovers and
// checks the invariant. skipAdd seeds the cross-failure race of the
// paper's Fig. 1 (a field missing from the transaction).
func counterTarget(name string, skipAdd bool) core.Target {
	return core.Target{
		Name: name,
		Setup: func(c *core.Ctx) error {
			po, err := pmobj.Create(c.Pool(), 16, nil)
			if err != nil {
				return err
			}
			p := c.Pool()
			p.Store64(po.Root(), 70)
			p.Store64(po.Root()+8, 30)
			p.Persist(po.Root(), 16)
			return nil
		},
		Pre: func(c *core.Ctx) error {
			po, err := pmobj.Open(c.Pool())
			if err != nil {
				return err
			}
			p := c.Pool()
			root := po.Root()
			return po.Tx(func(tx *pmobj.Tx) error {
				if err := tx.Add(root, 8); err != nil {
					return err
				}
				if !skipAdd {
					if err := tx.Add(root+8, 8); err != nil {
						return err
					}
				}
				p.Store64(root, p.Load64(root)-10)
				p.Store64(root+8, p.Load64(root+8)+10)
				return nil
			})
		},
		Post: func(c *core.Ctx) error {
			po, err := pmobj.Open(c.Pool())
			if err != nil {
				return err
			}
			p := c.Pool()
			a := p.Load64(po.Root())
			b := p.Load64(po.Root() + 8)
			if a+b != 100 {
				return fmt.Errorf("invariant broken: %d + %d != 100", a, b)
			}
			return nil
		},
	}
}

// TestCleanTransactionUnderDetection is the substrate's acid test: a
// correct undo-logged update plus recovery must survive every injected
// failure point with no report of any class.
func TestCleanTransactionUnderDetection(t *testing.T) {
	res, err := core.Run(core.Config{}, counterTarget("tx-clean", false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Reports) != 0 {
		t.Fatalf("clean transaction produced reports:\n%s", res)
	}
	if res.FailurePoints < 5 {
		t.Errorf("failure points = %d, want several (create + tx ordering points)", res.FailurePoints)
	}
}

// TestMissingTxAddDetected seeds the Fig. 1 bug: one field is updated
// inside the transaction without TX_ADD, so the post-failure stage reads a
// value that is not guaranteed persisted.
func TestMissingTxAddDetected(t *testing.T) {
	res, err := core.Run(core.Config{}, counterTarget("tx-missing-add", true))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	bad := res.Count(core.CrossFailureRace) + res.Count(core.PostFailureFault)
	if bad == 0 {
		t.Fatalf("missing TX_ADD went undetected:\n%s", res)
	}
}

// TestDuplicateTxAddPerformanceBug seeds PMTest's duplicated-TX_ADD
// performance bug.
func TestDuplicateTxAddPerformanceBug(t *testing.T) {
	target := counterTarget("tx-dup-add", false)
	inner := target.Pre
	target.Pre = func(c *core.Ctx) error {
		_ = inner // replaced wholesale below
		po, err := pmobj.Open(c.Pool())
		if err != nil {
			return err
		}
		root := po.Root()
		p := c.Pool()
		return po.Tx(func(tx *pmobj.Tx) error {
			if err := tx.Add(root, 16); err != nil {
				return err
			}
			if err := tx.Add(root, 16); err != nil { // duplicate
				return err
			}
			p.Store64(root, p.Load64(root)-10)
			p.Store64(root+8, p.Load64(root+8)+10)
			return nil
		})
	}
	res, err := core.Run(core.Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Count(core.Performance); got != 1 {
		t.Fatalf("performance bugs = %d, want 1 (duplicate TX_ADD):\n%s", got, res)
	}
}

// TestBug4UnorderedCreateDetected reproduces the paper's Bug 4: a failure
// injected during the buggy pool creation leaves metadata whose
// persistence is not ordered before the validity flag; the post-failure
// open observes it.
func TestBug4UnorderedCreateDetected(t *testing.T) {
	target := core.Target{
		Name: "bug4",
		Pre: func(c *core.Ctx) error {
			_, err := pmobj.Create(c.Pool(), 64,
				&pmobj.Options{Faults: pmobj.Faults{CreateUnorderedMeta: true}})
			return err
		},
		Post: func(c *core.Ctx) error {
			_, err := pmobj.Open(c.Pool())
			return err
		},
	}
	res, err := core.Run(core.Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	bad := res.Count(core.CrossFailureRace) + res.Count(core.CrossFailureSemantic)
	if bad == 0 {
		t.Fatalf("unordered pool creation went undetected:\n%s", res)
	}
}

// TestCorrectCreateCleanUnderDetection is Bug 4's control: the correctly
// ordered creation must be clean, with mid-creation failure points
// yielding only the well-defined ErrNotAPool (which the post stage treats
// as "pool not yet created").
func TestCorrectCreateCleanUnderDetection(t *testing.T) {
	target := core.Target{
		Name: "create-clean",
		Pre: func(c *core.Ctx) error {
			_, err := pmobj.Create(c.Pool(), 64, nil)
			return err
		},
		Post: func(c *core.Ctx) error {
			po, err := pmobj.Open(c.Pool())
			if err == pmobj.ErrNotAPool {
				return nil // creation had not committed: start over
			}
			if err != nil {
				return err
			}
			c.Pool().Load64(po.Root())
			return nil
		},
	}
	res, err := core.Run(core.Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 0 {
		t.Fatalf("correct creation produced reports:\n%s", res)
	}
}

// TestCommitSkipFlushDetected seeds a commit that does not write back the
// transaction's data: resumption after a later failure reads data that was
// never guaranteed persisted.
func TestCommitSkipFlushDetected(t *testing.T) {
	target := core.Target{
		Name: "commit-skip-flush",
		Setup: func(c *core.Ctx) error {
			po, err := pmobj.Create(c.Pool(), 16,
				&pmobj.Options{Faults: pmobj.Faults{CommitSkipFlush: true}})
			if err != nil {
				return err
			}
			c.Pool().Store64(po.Root(), 1)
			c.Pool().Persist(po.Root(), 8)
			return nil
		},
		Pre: func(c *core.Ctx) error {
			po, err := pmobj.Open(c.Pool())
			if err != nil {
				return err
			}
			po.SetFaults(pmobj.Faults{CommitSkipFlush: true})
			root := po.Root()
			if err := po.Tx(func(tx *pmobj.Tx) error {
				if err := tx.Add(root, 8); err != nil {
					return err
				}
				c.Pool().Store64(root, 2)
				return nil
			}); err != nil {
				return err
			}
			// A later, unrelated barrier gives the detector a failure
			// point after the (broken) commit.
			c.Pool().Store64(root+8, 9)
			c.Pool().Persist(root+8, 8)
			return nil
		},
		Post: func(c *core.Ctx) error {
			po, err := pmobj.Open(c.Pool())
			if err != nil {
				return err
			}
			c.Pool().Load64(po.Root())
			return nil
		},
	}
	res, err := core.Run(core.Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Count(core.CrossFailureRace) == 0 {
		t.Fatalf("unflushed commit went undetected:\n%s", res)
	}
}
