package pmobj

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pmemgo/xfdetector/internal/pmem"
)

// TestTxAtomicityProperty: whatever a transaction does — adds, writes,
// allocations, frees — a crash before commit recovers to exactly the
// pre-transaction state of the data and of the allocator (property-based).
func TestTxAtomicityProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := pmem.New("prop", 1<<20)
		po, err := Create(p, 512, nil)
		if err != nil {
			t.Log(err)
			return false
		}
		root := po.Root()
		// Committed baseline state.
		for i := uint64(0); i < 64; i++ {
			p.Store64(root+i*8, 0xBA5E+i)
		}
		p.Persist(root, 512)
		var allocs, baselineAllocs []uint64
		for i := 0; i < 3; i++ {
			off, err := po.AllocAtomic(64, func(off uint64) {
				p.Store64(off, uint64(i)+7)
				p.Persist(off, 8)
			})
			if err != nil {
				t.Log(err)
				return false
			}
			allocs = append(allocs, off)
			baselineAllocs = append(baselineAllocs, off)
		}
		baseline := p.Snapshot()
		baseFree := po.FreeBlocks()

		// One transaction doing random mutations, never committed.
		tx, err := po.Begin()
		if err != nil {
			t.Log(err)
			return false
		}
		for i := 0; i < int(nOps%12)+1; i++ {
			switch r.Intn(4) {
			case 0: // backed-up in-place write
				off := root + (r.Uint64()%64)*8
				if err := tx.Add(off, 8); err != nil {
					t.Log(err)
					return false
				}
				p.Store64(off, r.Uint64())
			case 1: // transactional allocation + write
				off, err := tx.Alloc(uint64(r.Intn(100)) + 1)
				if err != nil {
					t.Log(err)
					return false
				}
				p.Store64(off, r.Uint64())
			case 2: // transactional free of a baseline allocation
				if len(allocs) > 0 {
					off := allocs[len(allocs)-1]
					allocs = allocs[:len(allocs)-1]
					if err := tx.Free(off); err != nil {
						t.Log(err)
						return false
					}
				}
			case 3: // write to a range added earlier in this tx (no-op ok)
				off := root + (r.Uint64()%64)*8
				if err := tx.Add(off, 8); err != nil {
					t.Log(err)
					return false
				}
				p.Store64(off, ^r.Uint64())
			}
		}

		// Crash: copy the image mid-transaction and recover elsewhere.
		crash := pmem.FromImage("crash", p.Snapshot())
		po2, err := Open(crash)
		if err != nil {
			t.Logf("open after crash: %v", err)
			return false
		}
		// The recovered LIVE data must equal the committed baseline: the
		// root object, every baseline allocation (frees were rolled
		// back), and the allocator's free space. Blocks the aborted
		// transaction allocated and lost may retain garbage — they are
		// free space, like PMDK's.
		if !bytes.Equal(crash.Bytes()[root:root+512], baseline[root:root+512]) {
			t.Log("root object differs after rollback")
			return false
		}
		for i, off := range baselineAllocs {
			if crash.Load64(off) != uint64(i)+7 {
				t.Logf("baseline allocation %d lost its value", i)
				return false
			}
			if size, err := po2.AllocSize(off); err != nil || size != 64 {
				t.Logf("baseline allocation %d not live: size=%d err=%v", i, size, err)
				return false
			}
		}
		if po2.FreeBlocks() != baseFree {
			t.Logf("free blocks %d != baseline %d", po2.FreeBlocks(), baseFree)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestTxDurabilityProperty: a committed transaction survives a crash
// immediately after commit, and recovery is a no-op (property-based).
func TestTxDurabilityProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := pmem.New("prop", 1<<20)
		po, err := Create(p, 512, nil)
		if err != nil {
			return false
		}
		root := po.Root()
		want := map[uint64]uint64{}
		err = po.Tx(func(tx *Tx) error {
			for i := 0; i < int(nOps%10)+1; i++ {
				off := root + (r.Uint64()%64)*8
				if err := tx.Add(off, 8); err != nil {
					return err
				}
				v := r.Uint64()
				p.Store64(off, v)
				want[off] = v
			}
			return nil
		})
		if err != nil {
			return false
		}
		crash := pmem.FromImage("crash", p.Snapshot())
		if _, err := Open(crash); err != nil {
			return false
		}
		for off, v := range want {
			if crash.Load64(off) != v {
				t.Logf("committed value at %#x lost", off)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocFreeProperty: random interleavings of atomic allocations and
// frees never hand out overlapping blocks and always restore free space
// (property-based allocator invariant).
func TestAllocFreeProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		p := pmem.New("prop", 1<<20)
		po, err := Create(p, 64, nil)
		if err != nil {
			return false
		}
		initialFree := po.FreeBlocks()
		type alloc struct{ off, size uint64 }
		var live []alloc
		overlaps := func(a, b alloc) bool {
			return a.off < b.off+b.size && b.off < a.off+a.size
		}
		for i := 0; i < int(nOps); i++ {
			if r.Intn(3) != 0 || len(live) == 0 {
				size := uint64(r.Intn(300)) + 1
				off, err := po.AllocAtomic(size, nil)
				if err != nil {
					return false
				}
				na := alloc{off, size}
				for _, l := range live {
					if overlaps(na, l) {
						t.Logf("allocation [%#x,+%d) overlaps [%#x,+%d)", na.off, na.size, l.off, l.size)
						return false
					}
				}
				live = append(live, na)
			} else {
				i := r.Intn(len(live))
				if err := po.FreeAtomic(live[i].off); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, l := range live {
			if err := po.FreeAtomic(l.off); err != nil {
				return false
			}
		}
		return po.FreeBlocks() == initialFree
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
