package pmobj

import (
	"fmt"
	"sort"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// Undo-log transactions (Table 1, "undo logging").
//
// Log layout at txLogOff:
//
//	+0  valid      (commit flag: 1 while the log must be applied on recovery)
//	+8  numEntries
//	+16 used       (arena bytes consumed)
//	+64 arena      (entries, sequential)
//
// Entry encoding: {type u64, off u64, size u64} followed, for data entries,
// by the size bytes of the old data. Each TX_ADD persists the entry before
// updating (and persisting) the log header, so a failure anywhere leaves
// either a fully recorded entry or an unrecorded one — never a torn log.
//
// Commit writes back every object range touched by the transaction, fences,
// then invalidates the log. Abort (and recovery on Open) applies the
// entries in reverse: data entries restore the old bytes, alloc entries
// release the new blocks, free entries re-mark the released blocks.
const (
	txValidOff   = 0
	txCountOff   = 8
	txUsedOff    = 16
	txArenaStart = 64

	entData  = 1
	entAlloc = 2
	entFree  = 3

	entHeaderSize = 24
)

// Tx is an open transaction. Create one with Begin or Tx.
type Tx struct {
	po *Pool
	// flush accumulates the ranges commit must write back.
	flush []txRange
	// freed defers the volatile free-map release to commit so the
	// transaction cannot reuse (and overwrite) blocks it freed itself.
	freed []txRange
	done  bool
}

type txRange struct{ off, size uint64 }

// Begin starts a transaction. Nested transactions are not supported.
func (po *Pool) Begin() (*Tx, error) {
	if po.tx != nil {
		return nil, ErrInTx
	}
	tx := &Tx{po: po}
	po.tx = tx
	po.p.Announce(trace.TxBegin, 0, 0, "pmobj.Begin")
	return tx, nil
}

// Tx runs fn inside a transaction, committing on nil return and aborting
// (rolling back every Add/Alloc/Free) when fn returns an error or panics.
func (po *Pool) Tx(fn func(tx *Tx) error) error {
	tx, err := po.Begin()
	if err != nil {
		return err
	}
	defer func() {
		if !tx.done {
			// fn panicked: roll back, then let the panic continue.
			tx.abort()
		}
	}()
	if err := fn(tx); err != nil {
		tx.abort()
		return err
	}
	return tx.Commit()
}

// Add backs up [off, off+size) in the undo log — TX_ADD. Data added to the
// transaction may be modified freely afterwards; whatever the failure,
// recovery restores a consistent version.
func (tx *Tx) Add(off, size uint64) error {
	if tx.done {
		return ErrNoTx
	}
	if size == 0 {
		return fmt.Errorf("pmobj: TX_ADD of empty range at 0x%x", off)
	}
	// Announce first, from user level, so the backend attributes the
	// TX_ADD (and any duplicate-add performance bug) to the caller.
	tx.po.p.Announce(trace.TxAdd, off, size, "pmobj.TxAdd")
	if err := tx.appendEntry(entData, off, size); err != nil {
		return err
	}
	tx.flush = append(tx.flush, txRange{off, size})
	return nil
}

// Alloc allocates size bytes transactionally — TX_ALLOC. On abort or
// recovery the allocation is rolled back. The new range is zeroed, and
// commit persists it along with the allocator metadata.
func (tx *Tx) Alloc(size uint64) (uint64, error) {
	if tx.done {
		return 0, ErrNoTx
	}
	if size == 0 {
		size = 1
	}
	po := tx.po
	n := blocksFor(size)
	done := po.lib()
	idx, err := po.findFree(n)
	done()
	if err != nil {
		return 0, err
	}
	blockStart := po.heapOff + idx*BlockSize
	dataOff := blockStart + allocHeader
	// Log the allocation before touching the map: a failure after this
	// point rolls the blocks back to free.
	if err := tx.appendEntry(entAlloc, dataOff, size); err != nil {
		return 0, err
	}
	done = po.lib()
	po.markBlocks(idx, n, true)
	po.p.Store64(blockStart, size)
	po.p.Memset(dataOff, 0, size)
	done()
	tx.flush = append(tx.flush,
		txRange{po.blkmap + idx, n},
		txRange{blockStart, allocHeader + size})
	po.p.Announce(trace.TxAlloc, dataOff, size, "pmobj.TxAlloc")
	return dataOff, nil
}

// Free releases an allocation transactionally — TX_FREE. The blocks are
// reusable only after commit; abort and recovery re-mark them used.
func (tx *Tx) Free(dataOff uint64) error {
	if tx.done {
		return ErrNoTx
	}
	po := tx.po
	idx, n, err := po.blocksOf(dataOff)
	if err != nil {
		return err
	}
	if err := tx.appendEntry(entFree, dataOff, 0); err != nil {
		return err
	}
	done := po.lib()
	for b := idx; b < idx+n; b++ {
		po.p.Store8(po.blkmap+b, 0)
		// po.free[b] stays false until commit: the transaction must not
		// reuse blocks it freed, or abort could not restore their data.
	}
	done()
	tx.flush = append(tx.flush, txRange{po.blkmap + idx, n})
	tx.freed = append(tx.freed, txRange{idx, n})
	po.p.Announce(trace.TxFree, dataOff, 0, "pmobj.TxFree")
	return nil
}

// appendEntry records one undo entry: entry bytes first (persisted), then
// the log header (persisted), so the log is never torn.
func (tx *Tx) appendEntry(typ, off, size uint64) error {
	po := tx.po
	done := po.lib()
	defer done()
	p := po.p

	used := p.Load64(po.txLogOff + txUsedOff)
	count := p.Load64(po.txLogOff + txCountOff)
	entSize := uint64(entHeaderSize)
	if typ == entData {
		entSize += size
	}
	ent := po.txLogOff + txArenaStart + used
	if ent+entSize > po.txLogOff+po.txLogLen {
		return ErrTxLogFull
	}
	p.Store64(ent, typ)
	p.Store64(ent+8, off)
	p.Store64(ent+16, size)
	if typ == entData {
		p.Copy(ent+entHeaderSize, off, size)
	}
	p.Persist(ent, entSize)

	p.Store64(po.txLogOff+txUsedOff, used+entSize)
	p.Store64(po.txLogOff+txCountOff, count+1)
	p.Store64(po.txLogOff+txValidOff, 1)
	p.Persist(po.txLogOff, entHeaderSize)
	return nil
}

// Commit makes the transaction's effects durable and discards the undo log.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrNoTx
	}
	po := tx.po
	p := po.p
	done := po.lib()
	if !po.faults.CommitSkipFlush {
		// Coalesce the ranges by cache line (as PMDK does) so overlapping
		// TX_ADDs do not issue redundant writebacks.
		for _, r := range coalesceLines(tx.flush) {
			p.CLWB(r.off, r.size)
		}
		p.SFence()
	}
	// BUG when SkipLogInvalidate (seeded): leaving the log valid makes
	// recovery roll a *committed* transaction back with stale data.
	if !po.faults.SkipLogInvalidate {
		po.invalidateLog()
	}
	for _, f := range tx.freed {
		for b := f.off; b < f.off+f.size; b++ {
			po.free[b] = true
		}
	}
	done()
	tx.finish(trace.TxCommit, "pmobj.TxCommit")
	return nil
}

// Abort rolls the transaction back immediately.
func (tx *Tx) Abort() error {
	if tx.done {
		return ErrNoTx
	}
	tx.abort()
	return nil
}

func (tx *Tx) abort() {
	po := tx.po
	done := po.lib()
	po.rollbackLog()
	done()
	tx.finish(trace.TxAbort, "pmobj.TxAbort")
}

func (tx *Tx) finish(kind trace.Kind, fn string) {
	tx.done = true
	tx.po.tx = nil
	tx.po.p.Announce(kind, 0, 0, fn)
}

// coalesceLines converts ranges to a minimal sorted set of distinct
// cache-line-aligned ranges.
func coalesceLines(ranges []txRange) []txRange {
	lines := make(map[uint64]struct{})
	for _, r := range ranges {
		for l := pmem.LineDown(r.off); l < r.off+r.size; l += pmem.CacheLineSize {
			lines[l] = struct{}{}
		}
	}
	sorted := make([]uint64, 0, len(lines))
	for l := range lines {
		sorted = append(sorted, l)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []txRange
	for _, l := range sorted {
		if n := len(out); n > 0 && out[n-1].off+out[n-1].size == l {
			out[n-1].size += pmem.CacheLineSize
		} else {
			out = append(out, txRange{l, pmem.CacheLineSize})
		}
	}
	return out
}

// invalidateLog clears the undo log header, persisting the single line that
// holds all three fields.
func (po *Pool) invalidateLog() {
	p := po.p
	p.Store64(po.txLogOff+txValidOff, 0)
	p.Store64(po.txLogOff+txCountOff, 0)
	p.Store64(po.txLogOff+txUsedOff, 0)
	p.Persist(po.txLogOff, entHeaderSize)
}

// rollbackLog applies the undo log in reverse and invalidates it. Callers
// hold the library bracket. It is used both by Abort and by recovery.
func (po *Pool) rollbackLog() {
	p := po.p
	if p.Load64(po.txLogOff+txValidOff) != 1 {
		return
	}
	count := p.Load64(po.txLogOff + txCountOff)

	// Walk the arena forward to locate each entry, then apply in reverse.
	type entry struct{ typ, off, size, pos uint64 }
	entries := make([]entry, 0, count)
	pos := po.txLogOff + txArenaStart
	for i := uint64(0); i < count; i++ {
		e := entry{
			typ:  p.Load64(pos),
			off:  p.Load64(pos + 8),
			size: p.Load64(pos + 16),
			pos:  pos,
		}
		entries = append(entries, e)
		pos += entHeaderSize
		if e.typ == entData {
			pos += e.size
		}
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		switch e.typ {
		case entData:
			p.Copy(e.off, e.pos+entHeaderSize, e.size)
			p.CLWB(e.off, e.size)
		case entAlloc:
			blockStart := e.off - allocHeader
			idx := (blockStart - po.heapOff) / BlockSize
			n := blocksFor(e.size)
			for b := idx; b < idx+n; b++ {
				p.Store8(po.blkmap+b, 0)
				if po.free != nil {
					po.free[b] = true
				}
			}
			p.CLWB(po.blkmap+idx, n)
		case entFree:
			idx, n, err := po.blocksOf(e.off)
			if err != nil {
				continue // torn entry cannot occur; be defensive anyway
			}
			for b := idx; b < idx+n; b++ {
				p.Store8(po.blkmap+b, 1)
				if po.free != nil {
					po.free[b] = false
				}
			}
			p.CLWB(po.blkmap+idx, n)
		}
	}
	p.SFence()
	po.invalidateLog()
}

// recoverTxLog rolls back an interrupted transaction during Open. Callers
// hold the library bracket.
func (po *Pool) recoverTxLog() error {
	po.rollbackLog()
	return nil
}
