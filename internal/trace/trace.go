// Package trace defines the persistent-memory operation trace that flows
// from the XFDetector frontend (the instrumented execution) to the backend
// (the shadow-PM replayer). It corresponds to the trace entries of §5.3 of
// the paper: each entry records the operation kind, the PM address range it
// touches, the "instruction pointer" (a file:line source location in this
// reproduction), and the execution stage (pre- or post-failure) it belongs
// to.
//
// The package is a leaf: everything else (pmem, shadow, core) imports it.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind enumerates the PM operations the tracer records. Low-level kinds
// mirror x86 persistency instructions; Tx* and Func* kinds mirror the
// library-function-granularity tracing XFDetector uses for PMDK code.
type Kind uint8

const (
	// Write is a regular store to PM. The data lands in the (volatile)
	// cache hierarchy; it is not guaranteed persistent until written back
	// and fenced.
	Write Kind = iota
	// Read is a load from PM.
	Read
	// CLWB requests writeback of the cache lines covering the range. The
	// lines become writeback-pending; persistence is guaranteed only after
	// a following SFence.
	CLWB
	// CLFlush evicts-and-writes-back the covering cache lines. For the
	// persistence state machine it behaves like CLWB (it still requires an
	// SFence to be ordered).
	CLFlush
	// NTStore is a non-temporal store: the data bypasses the cache and
	// enters a write-combining buffer, so the range is immediately
	// writeback-pending, persistent after the next SFence.
	NTStore
	// SFence is a store fence: every writeback-pending range becomes
	// persisted, and the global ordering timestamp advances. SFence is an
	// ordering point; XFDetector injects a failure point before each one.
	SFence
	// TxBegin marks the start of a failure-atomic transaction.
	TxBegin
	// TxAdd records that the range has been added to the transaction's
	// undo log. From this point to the end of detection the range is
	// recoverable: whatever the failure, recovery restores either the old
	// or the committed value, so post-failure reads of it are consistent.
	TxAdd
	// TxCommit marks a successful transaction commit.
	TxCommit
	// TxAbort marks an explicit transaction abort (undo applied).
	TxAbort
	// TxAlloc records a transactional allocation of the range.
	TxAlloc
	// TxFree records a transactional free of the range.
	TxFree
	// FuncBegin and FuncEnd bracket a traced library function (PMDK-style
	// function-granularity tracing, §5.3).
	FuncBegin
	FuncEnd
	// CommitVarWrite is a write to a registered commit variable. It alters
	// the consistency status of its associated address set (§3.2).
	CommitVarWrite
	// FailurePoint marks a point where the frontend injected a failure.
	FailurePoint
	// RoIBegin and RoIEnd delimit the region-of-interest (Table 2).
	RoIBegin
	RoIEnd
	// AtomicAlloc records a non-transactional allocation. The new range's
	// content is not guaranteed initialized or persisted (the allocator may
	// or may not zero it — the root cause of the paper's Bug 2), so the
	// shadow PM treats it as modified-but-not-persisted.
	AtomicAlloc
	// RegCommitVar registers [Addr, Addr+Size) as a commit variable
	// (Table 2: addCommitVar). Post-failure reads of it are benign
	// cross-failure races.
	RegCommitVar
	// RegCommitRange associates the address set [Addr2, Addr2+Size2) with
	// the commit variable at [Addr, Addr+Size) (Table 2: addCommitRange).
	RegCommitRange
	numKinds
)

var kindNames = [...]string{
	Write:          "WRITE",
	Read:           "READ",
	CLWB:           "CLWB",
	CLFlush:        "CLFLUSH",
	NTStore:        "NTSTORE",
	SFence:         "SFENCE",
	TxBegin:        "TX_BEGIN",
	TxAdd:          "TX_ADD",
	TxCommit:       "TX_COMMIT",
	TxAbort:        "TX_ABORT",
	TxAlloc:        "TX_ALLOC",
	TxFree:         "TX_FREE",
	FuncBegin:      "FUNC_BEGIN",
	FuncEnd:        "FUNC_END",
	CommitVarWrite: "COMMIT_WRITE",
	FailurePoint:   "FAILURE_POINT",
	RoIBegin:       "ROI_BEGIN",
	RoIEnd:         "ROI_END",
	AtomicAlloc:    "ATOMIC_ALLOC",
	RegCommitVar:   "REG_COMMIT_VAR",
	RegCommitRange: "REG_COMMIT_RANGE",
}

// String returns the canonical upper-case mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < numKinds }

// IsMemOp reports whether the kind carries a meaningful address range.
func (k Kind) IsMemOp() bool {
	switch k {
	case Write, Read, CLWB, CLFlush, NTStore, TxAdd, TxAlloc, TxFree,
		CommitVarWrite, AtomicAlloc, RegCommitVar, RegCommitRange:
		return true
	}
	return false
}

// Stage identifies which side of the failure an entry was recorded on.
type Stage uint8

const (
	// PreFailure is the execution stage before the injected failure.
	PreFailure Stage = iota
	// PostFailure is the recovery-and-resumption stage after the failure.
	PostFailure
	// BothStages is accepted by annotation functions that apply to either
	// stage (Table 2's stage argument).
	BothStages
)

// String returns "pre", "post" or "both".
func (s Stage) String() string {
	switch s {
	case PreFailure:
		return "pre"
	case PostFailure:
		return "post"
	case BothStages:
		return "both"
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// Entry is one traced PM operation.
type Entry struct {
	Seq   uint64 // monotonically increasing sequence number within a trace
	Addr  uint64 // pool-relative address of the first byte touched
	Size  uint64 // number of bytes touched (0 for pure ordering ops)
	Addr2 uint64 // secondary range start (RegCommitRange's associated set)
	Size2 uint64 // secondary range size
	IP    string // source location ("file.go:123") of the operation
	Func  string // traced library function name for Func*/Tx* kinds
	Kind  Kind
	Stage Stage
	TID   uint32 // goroutine-local id of the mutator
	// InLibrary marks entries generated inside a traced PM library (pmobj)
	// rather than user code; the backend uses function-granularity
	// semantics for them (§5.3).
	InLibrary bool
	// SkipDetection marks entries produced inside a skipDetection region
	// (Table 2); the backend does not check them.
	SkipDetection bool
}

// End returns the exclusive end address of the range touched by the entry.
func (e Entry) End() uint64 { return e.Addr + e.Size }

// Overlaps reports whether the entry's range intersects [addr, addr+size).
func (e Entry) Overlaps(addr, size uint64) bool {
	return e.Addr < addr+size && addr < e.Addr+e.Size
}

// String formats the entry like the paper's trace listings:
// "WRITE 0x100 16 @ file.go:12".
func (e Entry) String() string {
	s := fmt.Sprintf("%s 0x%x %d", e.Kind, e.Addr, e.Size)
	if e.IP != "" {
		s += " @ " + e.IP
	}
	return s
}

// Trace is an in-memory sequence of entries with O(1) append. The frontend
// appends while the backend reads a stable prefix, mirroring the pre- and
// post-failure trace FIFOs of Fig. 8.
type Trace struct {
	entries []Entry
	nextSeq uint64
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Append adds e to the trace, assigning its sequence number, and returns the
// assigned sequence number.
func (t *Trace) Append(e Entry) uint64 {
	e.Seq = t.nextSeq
	t.nextSeq++
	t.entries = append(t.entries, e)
	return e.Seq
}

// Len returns the number of entries recorded so far.
func (t *Trace) Len() int { return len(t.entries) }

// At returns the i-th entry.
func (t *Trace) At(i int) Entry { return t.entries[i] }

// Entries returns the underlying entry slice. Callers must treat it as
// read-only; it remains valid until the next Append reallocates.
func (t *Trace) Entries() []Entry { return t.entries }

// Slice returns entries[i:j] without copying.
func (t *Trace) Slice(i, j int) []Entry { return t.entries[i:j] }

// Reset discards all entries but keeps the allocated capacity.
func (t *Trace) Reset() {
	t.entries = t.entries[:0]
	t.nextSeq = 0
}

// Counts tallies entries by kind; useful for tests and reports.
func (t *Trace) Counts() map[Kind]int {
	m := make(map[Kind]int)
	for _, e := range t.entries {
		m[e.Kind]++
	}
	return m
}

// Binary encoding
//
// The frontend and backend run in-process in this reproduction, but the
// paper's design decouples them through a FIFO (§5.5: the backend "can be
// attached to other tracing frameworks"). The wire format below preserves
// that decoupling: traces can be serialized, shipped, and replayed by a
// separate process.

const (
	wireMagic   = 0x58464454 // "XFDT"
	wireVersion = 1
)

var (
	// ErrBadMagic is returned when decoding a stream that does not start
	// with the trace file magic.
	ErrBadMagic = errors.New("trace: bad magic")
	// ErrBadVersion is returned for an unsupported wire version.
	ErrBadVersion = errors.New("trace: unsupported version")
)

// WriteTo serializes the trace in the XFDT binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], wireMagic)
	binary.LittleEndian.PutUint32(hdr[4:], wireVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(t.entries)))
	k, err := w.Write(hdr[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf := make([]byte, 0, 64)
	for _, e := range t.entries {
		buf = appendEntry(buf[:0], e)
		k, err = w.Write(buf)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func appendEntry(buf []byte, e Entry) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], e.Seq)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], e.Addr)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], e.Size)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], e.Addr2)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], e.Size2)
	buf = append(buf, tmp[:]...)
	buf = append(buf, byte(e.Kind), byte(e.Stage))
	var flags byte
	if e.InLibrary {
		flags |= 1
	}
	if e.SkipDetection {
		flags |= 2
	}
	buf = append(buf, flags)
	binary.LittleEndian.PutUint32(tmp[:4], e.TID)
	buf = append(buf, tmp[:4]...)
	buf = appendString(buf, e.IP)
	buf = appendString(buf, e.Func)
	return buf
}

func appendString(buf []byte, s string) []byte {
	var tmp [2]byte
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

// ReadFrom decodes a trace previously written with WriteTo, replacing the
// receiver's contents.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	var hdr [16]byte
	k, err := io.ReadFull(r, hdr[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != wireMagic {
		return n, ErrBadMagic
	}
	if binary.LittleEndian.Uint32(hdr[4:]) != wireVersion {
		return n, ErrBadVersion
	}
	count := binary.LittleEndian.Uint64(hdr[8:])
	t.Reset()
	br := newByteReader(r)
	for i := uint64(0); i < count; i++ {
		e, k, err := readEntry(br)
		n += int64(k)
		if err != nil {
			return n, fmt.Errorf("trace: entry %d: %w", i, err)
		}
		t.entries = append(t.entries, e)
		if e.Seq >= t.nextSeq {
			t.nextSeq = e.Seq + 1
		}
	}
	return n, nil
}

type byteReader struct {
	r   io.Reader
	buf []byte
}

func newByteReader(r io.Reader) *byteReader {
	return &byteReader{r: r, buf: make([]byte, 0, 256)}
}

func (b *byteReader) read(n int) ([]byte, error) {
	if cap(b.buf) < n {
		b.buf = make([]byte, n)
	}
	buf := b.buf[:n]
	if _, err := io.ReadFull(b.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func readEntry(br *byteReader) (Entry, int, error) {
	var e Entry
	n := 0
	fixed, err := br.read(47)
	if err != nil {
		return e, n, err
	}
	n += 47
	e.Seq = binary.LittleEndian.Uint64(fixed[0:])
	e.Addr = binary.LittleEndian.Uint64(fixed[8:])
	e.Size = binary.LittleEndian.Uint64(fixed[16:])
	e.Addr2 = binary.LittleEndian.Uint64(fixed[24:])
	e.Size2 = binary.LittleEndian.Uint64(fixed[32:])
	e.Kind = Kind(fixed[40])
	e.Stage = Stage(fixed[41])
	flags := fixed[42]
	e.InLibrary = flags&1 != 0
	e.SkipDetection = flags&2 != 0
	e.TID = binary.LittleEndian.Uint32(fixed[43:])
	if !e.Kind.Valid() {
		return e, n, fmt.Errorf("invalid kind %d", uint8(e.Kind))
	}
	for _, dst := range []*string{&e.IP, &e.Func} {
		lenBuf, err := br.read(2)
		if err != nil {
			return e, n, err
		}
		n += 2
		slen := int(binary.LittleEndian.Uint16(lenBuf))
		if slen > 0 {
			sb, err := br.read(slen)
			if err != nil {
				return e, n, err
			}
			n += slen
			*dst = string(sb)
		}
	}
	return e, n, nil
}
