package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k.Valid(); k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no mnemonic", k)
		}
	}
	if Kind(200).Valid() {
		t.Error("kind 200 must be invalid")
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Error("invalid kind must stringify defensively")
	}
}

func TestStageStrings(t *testing.T) {
	cases := map[Stage]string{PreFailure: "pre", PostFailure: "post", BothStages: "both"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestEntryHelpers(t *testing.T) {
	e := Entry{Kind: Write, Addr: 100, Size: 8}
	if e.End() != 108 {
		t.Errorf("End = %d", e.End())
	}
	if !e.Overlaps(104, 8) || !e.Overlaps(96, 8) || e.Overlaps(108, 8) || e.Overlaps(92, 8) {
		t.Error("Overlaps wrong")
	}
	if got := e.String(); !strings.Contains(got, "WRITE 0x64 8") {
		t.Errorf("String = %q", got)
	}
}

func TestAppendAssignsSequence(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		seq := tr.Append(Entry{Kind: Write, Addr: uint64(i)})
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if tr.Len() != 10 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.At(3).Addr != 3 {
		t.Fatalf("At(3).Addr = %d", tr.At(3).Addr)
	}
	if got := len(tr.Slice(2, 5)); got != 3 {
		t.Fatalf("Slice(2,5) len = %d", got)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Append(Entry{}) != 0 {
		t.Fatal("Reset did not reset")
	}
}

func TestCounts(t *testing.T) {
	tr := New()
	tr.Append(Entry{Kind: Write})
	tr.Append(Entry{Kind: Write})
	tr.Append(Entry{Kind: SFence})
	c := tr.Counts()
	if c[Write] != 2 || c[SFence] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

// randomEntry builds a wire-safe random entry (valid kind, bounded
// strings).
func randomEntry(r *rand.Rand) Entry {
	return Entry{
		Addr:          r.Uint64() % (1 << 40),
		Size:          r.Uint64() % (1 << 20),
		Addr2:         r.Uint64() % (1 << 40),
		Size2:         r.Uint64() % (1 << 20),
		IP:            randString(r, 40),
		Func:          randString(r, 20),
		Kind:          Kind(r.Intn(int(numKinds))),
		Stage:         Stage(r.Intn(3)),
		TID:           r.Uint32(),
		InLibrary:     r.Intn(2) == 0,
		SkipDetection: r.Intn(2) == 0,
	}
}

func randString(r *rand.Rand, max int) string {
	n := r.Intn(max)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

// TestWireRoundTripProperty: encode/decode is the identity on any trace
// (property-based, testing/quick).
func TestWireRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		for i := 0; i < int(n); i++ {
			tr.Append(randomEntry(r))
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got := New()
		if _, err := got.ReadFrom(&buf); err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return reflect.DeepEqual(tr.Entries(), got.Entries()) ||
			(tr.Len() == 0 && got.Len() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	var tr Trace
	if _, err := tr.ReadFrom(bytes.NewReader([]byte("not a trace file at all"))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	good := New()
	good.Append(Entry{Kind: Write})
	good.WriteTo(&buf)
	raw := buf.Bytes()
	raw[4] = 99 // version
	if _, err := tr.ReadFrom(bytes.NewReader(raw)); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
	// Truncated body.
	buf.Reset()
	good.WriteTo(&buf)
	raw = buf.Bytes()[:buf.Len()-3]
	if _, err := tr.ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Invalid kind byte.
	buf.Reset()
	good.WriteTo(&buf)
	raw = buf.Bytes()
	raw[16+40] = 250 // kind field of entry 0
	if _, err := tr.ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestWireRoundTripLongStringsTruncated(t *testing.T) {
	tr := New()
	tr.Append(Entry{Kind: Write, IP: strings.Repeat("x", 70000)})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got := New()
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if len(got.At(0).IP) != 0xFFFF {
		t.Fatalf("IP length = %d, want capped at 65535", len(got.At(0).IP))
	}
}

func TestIsMemOp(t *testing.T) {
	if !Write.IsMemOp() || !CLWB.IsMemOp() || !RegCommitRange.IsMemOp() {
		t.Error("memory ops misclassified")
	}
	if SFence.IsMemOp() || TxBegin.IsMemOp() || FailurePoint.IsMemOp() {
		t.Error("non-memory ops misclassified")
	}
}
