package pmcache_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmcache"
)

func run(t *testing.T, fn func(c *core.Ctx) error) {
	t.Helper()
	_, err := core.Run(core.Config{Mode: core.ModeOriginal, PoolSize: 4 << 20},
		core.Target{Name: t.Name(), Pre: fn})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetGetDelete(t *testing.T) {
	run(t, func(c *core.Ctx) error {
		m, err := pmcache.Create(c)
		if err != nil {
			return err
		}
		if err := m.Set("alpha", "1", 7); err != nil {
			return err
		}
		if err := m.Set("beta", "2", 0); err != nil {
			return err
		}
		v, flags, ok := m.Get("alpha")
		if !ok || v != "1" || flags != 7 {
			return fmt.Errorf("get alpha = (%q,%d,%v)", v, flags, ok)
		}
		if err := m.Set("alpha", "one", 7); err != nil { // replace
			return err
		}
		if v, _, _ := m.Get("alpha"); v != "one" {
			return fmt.Errorf("after replace: %q", v)
		}
		if m.Len() != 2 {
			return fmt.Errorf("len = %d, want 2", m.Len())
		}
		existed, err := m.Delete("alpha")
		if err != nil || !existed {
			return fmt.Errorf("delete = %v, %v", existed, err)
		}
		if _, _, ok := m.Get("alpha"); ok {
			return fmt.Errorf("alpha still present")
		}
		return m.Verify()
	})
}

func TestRebuildAcrossOpen(t *testing.T) {
	run(t, func(c *core.Ctx) error {
		m, err := pmcache.Create(c)
		if err != nil {
			return err
		}
		for i := 0; i < 64; i++ {
			if err := m.Set(fmt.Sprintf("item%02d", i), strings.Repeat("x", i%9), uint64(i)); err != nil {
				return err
			}
		}
		m2, err := pmcache.Open(c)
		if err != nil {
			return err
		}
		if m2.Len() != 64 {
			return fmt.Errorf("rebuilt len = %d, want 64", m2.Len())
		}
		for i := 0; i < 64; i++ {
			key := fmt.Sprintf("item%02d", i)
			v, flags, ok := m2.Get(key)
			if !ok || v != strings.Repeat("x", i%9) || flags != uint64(i) {
				return fmt.Errorf("%s = (%q,%d,%v)", key, v, flags, ok)
			}
		}
		return m2.Verify()
	})
}

func TestFlushAll(t *testing.T) {
	run(t, func(c *core.Ctx) error {
		m, err := pmcache.Create(c)
		if err != nil {
			return err
		}
		for i := 0; i < 20; i++ {
			if err := m.Set(fmt.Sprintf("k%d", i), "v", 0); err != nil {
				return err
			}
		}
		free := 0 // heap must fully drain: reopen and refill
		_ = free
		if err := m.FlushAll(); err != nil {
			return err
		}
		if m.Len() != 0 {
			return fmt.Errorf("len after flush = %d", m.Len())
		}
		m2, err := pmcache.Open(c)
		if err != nil {
			return err
		}
		if m2.Len() != 0 {
			return fmt.Errorf("reopened len after flush = %d", m2.Len())
		}
		return m2.Verify()
	})
}

func TestStatsAndCommands(t *testing.T) {
	run(t, func(c *core.Ctx) error {
		m, err := pmcache.Create(c)
		if err != nil {
			return err
		}
		steps := []struct{ cmd, want string }{
			{"set k1 hello", "STORED"},
			{"get k1", "VALUE k1 0 5 hello END"},
			{"get k2", "END"},
			{"delete k1", "DELETED"},
			{"delete k1", "NOT_FOUND"},
			{"flush_all", "OK"},
		}
		for _, s := range steps {
			got, err := m.Do(s.cmd)
			if err != nil {
				return fmt.Errorf("%s: %v", s.cmd, err)
			}
			if got != s.want {
				return fmt.Errorf("%s = %q, want %q", s.cmd, got, s.want)
			}
		}
		st := m.Stats()
		if st.GetHits != 1 || st.GetMisses != 1 || st.Sets != 1 || st.Deletes != 1 {
			return fmt.Errorf("stats = %+v", st)
		}
		if out, err := m.Do("stats"); err != nil || !strings.Contains(out, "get_hits 1") {
			return fmt.Errorf("stats cmd = %q, %v", out, err)
		}
		return nil
	})
}

func TestServeConn(t *testing.T) {
	run(t, func(c *core.Ctx) error {
		m, err := pmcache.Create(c)
		if err != nil {
			return err
		}
		client, server := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- m.ServeConn(server) }()
		rd := bufio.NewScanner(client)
		say := func(cmd string) string {
			fmt.Fprintf(client, "%s\n", cmd)
			if !rd.Scan() {
				t.Fatalf("no reply to %q", cmd)
			}
			return rd.Text()
		}
		if got := say("set color blue"); got != "STORED" {
			return fmt.Errorf("set = %q", got)
		}
		if got := say("get color"); !strings.Contains(got, "blue") {
			return fmt.Errorf("get = %q", got)
		}
		fmt.Fprintf(client, "quit\n")
		client.Close()
		return <-done
	})
}

// TestCleanMemcachedUnderDetection: inserts, a replace and a delete under
// full failure injection must produce no reports.
func TestCleanMemcachedUnderDetection(t *testing.T) {
	target := core.Target{
		Name: "memcached-clean",
		Pre: func(c *core.Ctx) error {
			m, err := pmcache.Create(c)
			if err != nil {
				return err
			}
			for i := 0; i < 5; i++ {
				if err := m.Set(fmt.Sprintf("key%d", i), fmt.Sprintf("val%d", i), 0); err != nil {
					return err
				}
			}
			if err := m.Set("key1", "replaced", 0); err != nil {
				return err
			}
			_, err = m.Delete("key2")
			return err
		},
		Post: func(c *core.Ctx) error {
			m, err := pmcache.Open(c)
			if err != nil {
				return nil // pool not created yet: server starts fresh
			}
			m.Get("key0")
			if err := m.Set("resumed", "yes", 0); err != nil {
				return err
			}
			return m.Verify()
		},
	}
	res, err := core.Run(core.Config{PoolSize: 4 << 20}, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 0 {
		t.Fatalf("clean memcached produced reports:\n%s", res)
	}
	if res.FailurePoints < 10 {
		t.Errorf("failure points = %d, want many", res.FailurePoints)
	}
}
