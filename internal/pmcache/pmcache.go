// Package pmcache is a miniature PM-backed Memcached in the spirit of
// Lenovo's memcached-pmem port (the paper's Table 4 "Memcached" row):
// items live in persistent memory and survive restarts, while the hash
// index is volatile and rebuilt on startup — the hybrid design the real
// port uses. Crash consistency is low-level (no transactions): an item is
// fully written and persisted before the persistent slot directory
// publishes it, so the slot write is the commit point.
//
// The text interface mirrors memcached's ("set k v", "get k", "delete k",
// "flush_all", "stats"), both in-process and over a connection.
package pmcache

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/pmobj"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// ErrNotReady indicates the pool exists but the cache was never
// (completely) created; the server should create it from scratch.
var ErrNotReady = errors.New("pmcache: cache not initialized")

// The pmobj root holds the slot directory: nSlots persistent item offsets.
// Each slot holds at most one item chain (chained via item.next).
const (
	rootNSlots = 0
	rootSlots  = 64 // directory starts on its own cache line
	nSlots     = 32
	rootSize   = rootSlots + nSlots*8
)

// Item layout: next | keyLen | valLen | flags | data (key then value).
const (
	itNext   = 0
	itKeyLen = 8
	itValLen = 16
	itFlags  = 24
	itData   = 32
)

// Stats counts cache operations (volatile, like memcached's counters).
type Stats struct {
	GetHits    uint64
	GetMisses  uint64
	Sets       uint64
	Deletes    uint64
	Evictions  uint64
	ItemsLive  uint64
	BytesLive  uint64
	FlushCalls uint64
}

// Cache is an open PM-Memcached instance.
type Cache struct {
	c    *core.Ctx
	po   *pmobj.Pool
	p    *pmem.Pool
	root uint64
	// index is the volatile hash index rebuilt on Open, mapping key to
	// item offset — the memcached-pmem hybrid design.
	index map[string]uint64
	stats Stats
}

// Create initializes a fresh cache.
func Create(c *core.Ctx) (*Cache, error) {
	po, err := pmobj.Create(c.Pool(), rootSize, nil)
	if err != nil {
		return nil, err
	}
	m := &Cache{c: c, po: po, p: c.Pool(), root: po.Root(), index: make(map[string]uint64)}
	// The root is zeroed and persisted by pmobj.Create; the slot count is
	// set under undo-log protection so a failure during creation leaves
	// either the zeroed root or the committed configuration.
	err = po.Tx(func(tx *pmobj.Tx) error {
		if err := tx.Add(m.root+rootNSlots, 8); err != nil {
			return err
		}
		m.p.Store64(m.root+rootNSlots, nSlots)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Open reopens an existing cache, rebuilding the volatile index from the
// persistent slot directory (startup recovery).
func Open(c *core.Ctx) (*Cache, error) {
	po, err := pmobj.Open(c.Pool())
	if err != nil {
		return nil, err
	}
	m := &Cache{c: c, po: po, p: c.Pool(), root: po.Root(), index: make(map[string]uint64)}
	p := m.p
	n := p.Load64(m.root + rootNSlots)
	if n == 0 {
		// A failure hit before the configuring transaction committed
		// (recovery rolled it back): the cache was never created.
		return nil, ErrNotReady
	}
	if n != nSlots {
		return nil, fmt.Errorf("pmcache: bad slot count %d", n)
	}
	for s := uint64(0); s < nSlots; s++ {
		slot := m.root + rootSlots + 8*s
		// A failure may have hit between a link store and its writeback;
		// reading such a link is the intentional benign race of recovery
		// (annotated), and the rebuild scrubs it: whatever value was
		// observed is rewritten and persisted, committing one of the two
		// valid outcomes (both chain versions are structurally sound
		// because items persist before they are published).
		c.SkipDetectionBegin(true, trace.BothStages)
		it := p.Load64(slot)
		c.SkipDetectionEnd(true, trace.BothStages)
		p.Store64(slot, it)
		p.Persist(slot, 8)
		prev := uint64(0)
		steps := 0
		seen := map[string]bool{}
		for it != 0 {
			c.SkipDetectionBegin(true, trace.BothStages)
			next := p.Load64(it + itNext)
			c.SkipDetectionEnd(true, trace.BothStages)
			key := m.loadKey(it)
			if seen[key] {
				// A replace was interrupted after publishing the new item
				// but before unlinking the old one: complete it.
				if prev == 0 {
					p.Store64(slot, next)
					p.Persist(slot, 8)
				} else {
					p.Store64(prev+itNext, next)
					p.Persist(prev+itNext, 8)
				}
				if err := m.po.FreeAtomic(it); err != nil {
					return nil, err
				}
				it = next
				continue
			}
			p.Store64(it+itNext, next)
			p.Persist(it+itNext, 8)
			seen[key] = true
			m.index[key] = it
			m.stats.ItemsLive++
			m.stats.BytesLive += p.Load64(it+itKeyLen) + p.Load64(it+itValLen)
			prev = it
			it = next
			if steps++; steps > 1<<22 {
				return nil, fmt.Errorf("pmcache: chain cycle suspected")
			}
		}
	}
	return m, nil
}

func (m *Cache) slotOf(key string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return m.root + rootSlots + 8*(h%nSlots)
}

func (m *Cache) loadKey(it uint64) string {
	n := m.p.Load64(it + itKeyLen)
	buf := make([]byte, n)
	m.p.Load(it+itData, buf)
	return string(buf)
}

func (m *Cache) loadVal(it uint64) string {
	kn := m.p.Load64(it + itKeyLen)
	vn := m.p.Load64(it + itValLen)
	buf := make([]byte, vn)
	m.p.Load(it+itData+kn, buf)
	return string(buf)
}

// Set stores key → value with the given flags.
func (m *Cache) Set(key, value string, flags uint64) error {
	if key == "" {
		return fmt.Errorf("pmcache: empty key")
	}
	p := m.p
	size := uint64(itData + len(key) + len(value))
	slot := m.slotOf(key)

	// Write and persist the whole item before publishing it: the item is
	// invisible (and reclaimable) until the slot commit below.
	it, err := m.po.AllocAtomic(size, func(off uint64) {
		p.Store64(off+itKeyLen, uint64(len(key)))
		p.Store64(off+itValLen, uint64(len(value)))
		p.Store64(off+itFlags, flags)
		p.Store(off+itData, []byte(key))
		if len(value) > 0 {
			p.Store(off+itData+uint64(len(key)), []byte(value))
		}
		p.Store64(off+itNext, p.Load64(slot))
		p.Persist(off, size)
	})
	if err != nil {
		return err
	}

	old, replacing := m.index[key]

	// Commit point: publish the item.
	p.Store64(slot, it)
	p.Persist(slot, 8)
	m.index[key] = it
	m.stats.Sets++
	m.stats.ItemsLive++
	m.stats.BytesLive += uint64(len(key) + len(value))

	if replacing {
		// Unlink the shadowed old item (it is later in the chain) and
		// reclaim it.
		if err := m.unlink(key, old); err != nil {
			return err
		}
	}
	return nil
}

// unlink removes item old (with the given key) from its chain, then
// frees it.
func (m *Cache) unlink(key string, old uint64) error {
	p := m.p
	slot := m.slotOf(key)
	prev := uint64(0)
	it := p.Load64(slot)
	for it != 0 && it != old {
		prev = it
		it = p.Load64(it + itNext)
	}
	if it == 0 {
		return nil
	}
	next := p.Load64(it + itNext)
	if prev == 0 {
		p.Store64(slot, next)
		p.Persist(slot, 8)
	} else {
		p.Store64(prev+itNext, next)
		p.Persist(prev+itNext, 8)
	}
	m.stats.ItemsLive--
	m.stats.BytesLive -= p.Load64(it+itKeyLen) + p.Load64(it+itValLen)
	return m.po.FreeAtomic(it)
}

// Get retrieves a value.
func (m *Cache) Get(key string) (string, uint64, bool) {
	it, ok := m.index[key]
	if !ok {
		m.stats.GetMisses++
		return "", 0, false
	}
	m.stats.GetHits++
	return m.loadVal(it), m.p.Load64(it + itFlags), true
}

// Delete removes a key; it reports whether the key existed.
func (m *Cache) Delete(key string) (bool, error) {
	it, ok := m.index[key]
	if !ok {
		return false, nil
	}
	if err := m.unlink(key, it); err != nil {
		return false, err
	}
	delete(m.index, key)
	m.stats.Deletes++
	return true, nil
}

// FlushAll removes every item.
func (m *Cache) FlushAll() error {
	p := m.p
	for s := uint64(0); s < nSlots; s++ {
		slot := m.root + rootSlots + 8*s
		it := p.Load64(slot)
		// Unpublish the whole chain first (one commit per slot), then
		// reclaim the items.
		p.Store64(slot, 0)
		p.Persist(slot, 8)
		for it != 0 {
			next := p.Load64(it + itNext)
			if err := m.po.FreeAtomic(it); err != nil {
				return err
			}
			it = next
		}
	}
	m.index = make(map[string]uint64)
	m.stats.FlushCalls++
	m.stats.ItemsLive = 0
	m.stats.BytesLive = 0
	return nil
}

// Stats returns the volatile operation counters.
func (m *Cache) Stats() Stats { return m.stats }

// Len returns the number of live items.
func (m *Cache) Len() int { return len(m.index) }

// Verify checks that the persistent chains agree with the volatile index.
func (m *Cache) Verify() error {
	p := m.p
	reachable := map[string]uint64{}
	n := 0
	for s := uint64(0); s < nSlots; s++ {
		for it := p.Load64(m.root + rootSlots + 8*s); it != 0; it = p.Load64(it + itNext) {
			key := m.loadKey(it)
			if _, dup := reachable[key]; dup {
				return fmt.Errorf("pmcache: key %q appears twice", key)
			}
			reachable[key] = it
			n++
			if n > 1<<22 {
				return fmt.Errorf("pmcache: chain cycle suspected")
			}
		}
	}
	if len(reachable) != len(m.index) {
		return fmt.Errorf("pmcache: %d persistent items but %d indexed", len(reachable), len(m.index))
	}
	for k, it := range m.index {
		if reachable[k] != it {
			return fmt.Errorf("pmcache: index for %q points at 0x%x, chain has 0x%x", k, it, reachable[k])
		}
	}
	return nil
}

// Do executes one memcached-style command line.
func (m *Cache) Do(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", fmt.Errorf("pmcache: empty command")
	}
	switch cmd := strings.ToLower(fields[0]); {
	case cmd == "set" && len(fields) == 3:
		if err := m.Set(fields[1], fields[2], 0); err != nil {
			return "", err
		}
		return "STORED", nil
	case cmd == "get" && len(fields) == 2:
		v, flags, ok := m.Get(fields[1])
		if !ok {
			return "END", nil
		}
		return fmt.Sprintf("VALUE %s %d %d %s END", fields[1], flags, len(v), v), nil
	case cmd == "delete" && len(fields) == 2:
		existed, err := m.Delete(fields[1])
		if err != nil {
			return "", err
		}
		if existed {
			return "DELETED", nil
		}
		return "NOT_FOUND", nil
	case cmd == "flush_all":
		if err := m.FlushAll(); err != nil {
			return "", err
		}
		return "OK", nil
	case cmd == "stats":
		s := m.stats
		return fmt.Sprintf("STAT get_hits %d STAT get_misses %d STAT curr_items %d STAT bytes %d END",
			s.GetHits, s.GetMisses, s.ItemsLive, s.BytesLive), nil
	default:
		return "", fmt.Errorf("pmcache: unknown command %q", line)
	}
}

// ServeConn serves the text protocol on one connection until it closes.
func (m *Cache) ServeConn(conn net.Conn) error {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			return nil
		}
		reply, err := m.Do(line)
		if err != nil {
			reply = "ERROR " + err.Error()
		}
		if _, err := fmt.Fprintf(conn, "%s\n", reply); err != nil {
			return err
		}
	}
	return sc.Err()
}
