package record

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
)

const testPool = 1 << 16

// buildArtifact writes a small synthetic artifact — three failure points,
// checkpoints at 0 and 2 — and returns its encoded bytes.
func buildArtifact(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, 0xfeed, testPool, 2)
	sh := shadow.NewPM(testPool)
	tr := trace.New()
	page := func(idx int, fill byte) pmem.DeltaPage {
		d := pmem.DeltaPage{Index: idx, Data: make([]byte, pmem.PageSize)}
		for i := range d.Data {
			d.Data[i] = fill
		}
		return d
	}
	for fp, in := range [][]pmem.DeltaPage{
		{page(0, 1)},
		{page(0, 2), page(3, 3)},
		nil,
	} {
		tr.Append(trace.Entry{Kind: trace.Write, Addr: uint64(fp) * 64, Size: 8})
		if err := w.OnFailurePoint(fp, tr.Len(), fp+1, uint64(100+fp), in, sh); err != nil {
			t.Fatal(err)
		}
	}
	perf := []Report{{FailurePoint: -1, PerfKind: 1, Message: "redundant flush"}}
	if err := w.Finish("Synthetic", tr, perf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestArtifactRoundTrip(t *testing.T) {
	data := buildArtifact(t)
	a, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if a.Identity != 0xfeed || a.PoolSize != testPool || a.Target != "Synthetic" {
		t.Errorf("header = identity %x pool %d target %q", a.Identity, a.PoolSize, a.Target)
	}
	if a.Trace.Len() != 3 {
		t.Errorf("embedded trace has %d entries, want 3", a.Trace.Len())
	}
	if len(a.Perf) != 1 || a.Perf[0].Message != "redundant flush" {
		t.Errorf("perf reports = %+v", a.Perf)
	}
	if len(a.FPs) != 3 {
		t.Fatalf("artifact has %d failure points, want 3", len(a.FPs))
	}
	for i, fp := range a.FPs {
		if fp.Fingerprint != uint64(100+i) {
			t.Errorf("failure point %d fingerprint = %d, want %d", i, fp.Fingerprint, 100+i)
		}
	}
	if len(a.FPs[1].Delta) != 2 || a.FPs[1].Delta[1].Index != 3 || a.FPs[1].Delta[1].Data[0] != 3 {
		t.Errorf("failure point 1 delta = %d page(s)", len(a.FPs[1].Delta))
	}
	// Checkpoint interval 2 over failure points 0..2 -> checkpoints at 0, 2.
	if len(a.Checkpoints) != 2 || a.Checkpoints[0].FP != 0 || a.Checkpoints[1].FP != 2 {
		t.Fatalf("checkpoints = %+v, want at failure points 0 and 2", a.Checkpoints)
	}
	if _, err := a.OpenShadow(&a.Checkpoints[1]); err != nil {
		t.Errorf("reopening checkpoint shadow: %v", err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XFDT----not-an-artifact"))); err != ErrBadMagic {
		t.Errorf("Read on a non-artifact = %v, want ErrBadMagic", err)
	}
	// A truncated artifact must error, not return a partial decode.
	data := buildArtifact(t)
	if _, err := Read(bytes.NewReader(data[:len(data)-7])); err == nil {
		t.Error("Read accepted a truncated artifact")
	}
}

func TestBestCheckpoint(t *testing.T) {
	a, err := Read(bytes.NewReader(buildArtifact(t)))
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoints live at failure points 0 and 2; the pick must be the
	// latest one STRICTLY below the first dispatched failure point.
	for _, tc := range []struct{ startFP, want int }{
		{0, -1}, // nothing below 0: replay from the trace head
		{1, 0},
		{2, 0},
		{3, 2},
		{99, 2},
	} {
		ck := a.BestCheckpoint(tc.startFP)
		switch {
		case tc.want < 0 && ck != nil:
			t.Errorf("BestCheckpoint(%d) = FP %d, want none", tc.startFP, ck.FP)
		case tc.want >= 0 && (ck == nil || ck.FP != tc.want):
			t.Errorf("BestCheckpoint(%d) = %+v, want FP %d", tc.startFP, ck, tc.want)
		}
	}
}

func TestPoolAtComposesLastWriterWins(t *testing.T) {
	a, err := Read(bytes.NewReader(buildArtifact(t)))
	if err != nil {
		t.Fatal(err)
	}
	// Page 0 is dirtied at failure points 0 (fill 1) and 1 (fill 2); the
	// composed image at or past 1 must carry the later version.
	byIdx := func(fp int) map[int]byte {
		m := map[int]byte{}
		for _, d := range a.PoolAt(fp) {
			m[d.Index] = d.Data[0]
		}
		return m
	}
	if got := byIdx(0); !reflect.DeepEqual(got, map[int]byte{0: 1}) {
		t.Errorf("PoolAt(0) fills = %v, want page 0 -> 1", got)
	}
	if got := byIdx(2); !reflect.DeepEqual(got, map[int]byte{0: 2, 3: 3}) {
		t.Errorf("PoolAt(2) fills = %v, want page 0 -> 2, page 3 -> 3", got)
	}
}

func TestOutOfOrderFailurePointRejected(t *testing.T) {
	w := NewWriter(&bytes.Buffer{}, 1, testPool, 0)
	sh := shadow.NewPM(testPool)
	if err := w.OnFailurePoint(1, 0, 0, 0, nil, sh); err == nil {
		t.Error("out-of-order failure point accepted")
	}
}
