// Package record implements recorded-campaign artifacts: one pre-failure
// pass serialized as the binary trace plus periodic engine checkpoints at
// failure-point boundaries, so that shards, resumed campaigns, and -serve
// workers can fast-forward to their first owned failure point instead of
// re-executing the identical deterministic pre-failure stage.
//
// The container ("XFDR") holds, in order:
//
//   - a header with a version and the campaign's program-identity hash
//     (the vcache identity of the CLI flags that shape the execution), so
//     a stale artifact recorded for a different program is rejected before
//     it can skew detection;
//   - the complete pre-failure trace in the XFDT wire format
//     (internal/trace), the frontend/backend decoupling of §5.5;
//   - the pre-failure performance-bug reports, which a fast-forwarded
//     shard would otherwise lose with the skipped trace prefix;
//   - one record per failure point: the trace index just past its marker,
//     its crash-state fingerprint (the PR 6 pruning identity, doubling as
//     a replay-integrity tripwire), and the page-granular pool delta the
//     execution dirtied since the previous failure point (PR 4 dirty
//     bitmap) — consecutive deltas compose into the pool image at any
//     failure point over a zeroed pool;
//   - periodic engine checkpoints: the serialized sparse shadow
//     (shadow.WriteState — pages, pendingLines, commit variables, and the
//     fingerprint cache) at every Nth failure point, from which a replay
//     jumps straight to the nearest checkpoint at or below its first owned
//     failure point and replays only the trace delta.
package record

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
)

const (
	// Magic is the artifact container magic ("XFDR"), distinguishing
	// recorded campaigns from bare XFDT traces.
	Magic   = 0x52444658
	version = 1

	// DefaultCheckpointEvery is the default engine-checkpoint interval in
	// failure points.
	DefaultCheckpointEvery = 8
)

// ErrBadMagic is returned when the stream is not an XFDR artifact.
var ErrBadMagic = errors.New("record: not a recorded-campaign artifact (bad magic)")

// staleCheckpointForTest makes the Writer reuse checkpoint 0's serialized
// engine state for every later checkpoint — correct failure point and
// trace index, stale shadow — so the differential battery can prove the
// replay-side fingerprint tripwire catches a corrupt or stale checkpoint.
var staleCheckpointForTest = false

// SetStaleCheckpointForTest toggles the stale-checkpoint mutant.
func SetStaleCheckpointForTest(on bool) { staleCheckpointForTest = on }

// Report mirrors core.Report without importing internal/core (core imports
// this package). The recording run's pre-failure performance reports ride
// in the artifact so a checkpoint-jumped replay still reports them.
type Report struct {
	Class        int
	Addr         uint64
	Size         uint64
	ReaderIP     string
	WriterIP     string
	FailurePoint int
	PerfKind     int
	Message      string
}

// FPRecord is the per-failure-point record.
type FPRecord struct {
	// TraceIdx is the number of trace entries recorded up to and including
	// this failure point's marker.
	TraceIdx int
	// Fingerprint is the crash-state fingerprint of the shadow at this
	// failure point (shadow.CrashFingerprint).
	Fingerprint uint64
	// Delta holds the pool pages dirtied since the previous failure point.
	Delta []pmem.DeltaPage
}

// Checkpoint is one serialized engine checkpoint.
type Checkpoint struct {
	// FP is the failure point the checkpoint was taken at: the state
	// reflects the execution just after FP's marker was recorded.
	FP int
	// TraceIdx is the number of trace entries consumed at that state.
	TraceIdx int
	// OpsEver is the runner's cumulative PM-operation count at that state
	// (the final-failure-point injection guard).
	OpsEver int
	// Shadow is the shadow.WriteState blob.
	Shadow []byte
}

// Writer accumulates one recording pass and serializes the container to
// dst on Finish. Methods are called from the pre-failure thread only.
type Writer struct {
	dst      io.Writer
	identity uint64
	poolSize uint64
	every    int
	fps      []FPRecord
	cks      []Checkpoint
}

// NewWriter returns a Writer that will serialize a campaign with the given
// program identity and pool size to dst, taking an engine checkpoint every
// checkpointEvery failure points (0 means DefaultCheckpointEvery).
func NewWriter(dst io.Writer, identity, poolSize uint64, checkpointEvery int) *Writer {
	if checkpointEvery <= 0 {
		checkpointEvery = DefaultCheckpointEvery
	}
	return &Writer{dst: dst, identity: identity, poolSize: poolSize, every: checkpointEvery}
}

// OnFailurePoint records failure point fpID: its trace position,
// fingerprint, and pool delta, plus an engine checkpoint at every Nth
// point. Must be called once per failure point, in order.
func (w *Writer) OnFailurePoint(fpID, traceIdx, opsEver int, fingerprint uint64, delta []pmem.DeltaPage, sh *shadow.PM) error {
	if fpID != len(w.fps) {
		return fmt.Errorf("record: failure point %d recorded out of order (have %d)", fpID, len(w.fps))
	}
	w.fps = append(w.fps, FPRecord{TraceIdx: traceIdx, Fingerprint: fingerprint, Delta: delta})
	if fpID%w.every != 0 {
		return nil
	}
	ck := Checkpoint{FP: fpID, TraceIdx: traceIdx, OpsEver: opsEver}
	if staleCheckpointForTest && len(w.cks) > 0 {
		ck.Shadow = w.cks[0].Shadow
		w.cks = append(w.cks, ck)
		return nil
	}
	var buf bytes.Buffer
	if err := sh.WriteState(&buf); err != nil {
		return fmt.Errorf("record: checkpoint at failure point %d: %w", fpID, err)
	}
	ck.Shadow = buf.Bytes()
	w.cks = append(w.cks, ck)
	return nil
}

// FailurePoints returns the number of failure points recorded so far.
func (w *Writer) FailurePoints() int { return len(w.fps) }

// Finish writes the complete container to the Writer's destination.
func (w *Writer) Finish(target string, tr *trace.Trace, perf []Report) error {
	bw := bufio.NewWriterSize(w.dst, 1<<16)
	var b [8]byte
	wu32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(b[:4], v)
		_, err := bw.Write(b[:4])
		return err
	}
	wu64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(b[:8], v)
		_, err := bw.Write(b[:8])
		return err
	}
	wstr := func(s string) error {
		if err := wu32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	fail := func(err error) error { return fmt.Errorf("record: writing artifact: %w", err) }

	if err := wu32(Magic); err != nil {
		return fail(err)
	}
	if err := wu32(version); err != nil {
		return fail(err)
	}
	if err := wu64(w.identity); err != nil {
		return fail(err)
	}
	if err := wu64(w.poolSize); err != nil {
		return fail(err)
	}
	if err := wstr(target); err != nil {
		return fail(err)
	}
	if _, err := tr.WriteTo(bw); err != nil {
		return fail(err)
	}

	if err := wu32(uint32(len(perf))); err != nil {
		return fail(err)
	}
	for _, r := range perf {
		if err := wu32(uint32(r.Class)); err != nil {
			return fail(err)
		}
		if err := wu64(r.Addr); err != nil {
			return fail(err)
		}
		if err := wu64(r.Size); err != nil {
			return fail(err)
		}
		if err := wstr(r.ReaderIP); err != nil {
			return fail(err)
		}
		if err := wstr(r.WriterIP); err != nil {
			return fail(err)
		}
		if err := wu64(uint64(int64(r.FailurePoint))); err != nil {
			return fail(err)
		}
		if err := wu32(uint32(r.PerfKind)); err != nil {
			return fail(err)
		}
		if err := wstr(r.Message); err != nil {
			return fail(err)
		}
	}

	if err := wu32(uint32(len(w.fps))); err != nil {
		return fail(err)
	}
	for _, fp := range w.fps {
		if err := wu64(uint64(fp.TraceIdx)); err != nil {
			return fail(err)
		}
		if err := wu64(fp.Fingerprint); err != nil {
			return fail(err)
		}
		if err := wu32(uint32(len(fp.Delta))); err != nil {
			return fail(err)
		}
		for _, d := range fp.Delta {
			if err := wu32(uint32(d.Index)); err != nil {
				return fail(err)
			}
			if err := wu32(uint32(len(d.Data))); err != nil {
				return fail(err)
			}
			if _, err := bw.Write(d.Data); err != nil {
				return fail(err)
			}
		}
	}

	if err := wu32(uint32(len(w.cks))); err != nil {
		return fail(err)
	}
	for _, ck := range w.cks {
		if err := wu64(uint64(ck.FP)); err != nil {
			return fail(err)
		}
		if err := wu64(uint64(ck.TraceIdx)); err != nil {
			return fail(err)
		}
		if err := wu64(uint64(ck.OpsEver)); err != nil {
			return fail(err)
		}
		if err := wu64(uint64(len(ck.Shadow))); err != nil {
			return fail(err)
		}
		if _, err := bw.Write(ck.Shadow); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	return nil
}

// Artifact is a decoded recorded campaign.
type Artifact struct {
	Identity    uint64
	PoolSize    uint64
	Target      string
	Trace       *trace.Trace
	Perf        []Report
	FPs         []FPRecord
	Checkpoints []Checkpoint
}

// Load reads an artifact from a file.
func Load(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("record: %w", err)
	}
	defer f.Close()
	a, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("record: reading %s: %w", path, err)
	}
	return a, nil
}

// Read decodes an artifact from r.
func Read(r io.Reader) (*Artifact, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var b [8]byte
	ru32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, b[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:4]), nil
	}
	ru64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, b[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:8]), nil
	}
	rstr := func() (string, error) {
		n, err := ru32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("string length %d too large", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	m, err := ru32()
	if err != nil {
		return nil, err
	}
	if m != Magic {
		return nil, ErrBadMagic
	}
	v, err := ru32()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("record: unsupported artifact version %d", v)
	}
	a := &Artifact{Trace: trace.New()}
	if a.Identity, err = ru64(); err != nil {
		return nil, err
	}
	if a.PoolSize, err = ru64(); err != nil {
		return nil, err
	}
	if a.Target, err = rstr(); err != nil {
		return nil, err
	}
	if _, err := a.Trace.ReadFrom(br); err != nil {
		return nil, err
	}

	nPerf, err := ru32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nPerf; i++ {
		var rep Report
		var c uint32
		if c, err = ru32(); err != nil {
			return nil, err
		}
		rep.Class = int(c)
		if rep.Addr, err = ru64(); err != nil {
			return nil, err
		}
		if rep.Size, err = ru64(); err != nil {
			return nil, err
		}
		if rep.ReaderIP, err = rstr(); err != nil {
			return nil, err
		}
		if rep.WriterIP, err = rstr(); err != nil {
			return nil, err
		}
		var fp uint64
		if fp, err = ru64(); err != nil {
			return nil, err
		}
		rep.FailurePoint = int(int64(fp))
		if c, err = ru32(); err != nil {
			return nil, err
		}
		rep.PerfKind = int(c)
		if rep.Message, err = rstr(); err != nil {
			return nil, err
		}
		a.Perf = append(a.Perf, rep)
	}

	nFP, err := ru32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nFP; i++ {
		var fp FPRecord
		var v64 uint64
		if v64, err = ru64(); err != nil {
			return nil, err
		}
		fp.TraceIdx = int(v64)
		if fp.Fingerprint, err = ru64(); err != nil {
			return nil, err
		}
		var nDelta uint32
		if nDelta, err = ru32(); err != nil {
			return nil, err
		}
		for j := uint32(0); j < nDelta; j++ {
			var d pmem.DeltaPage
			var idx, ln uint32
			if idx, err = ru32(); err != nil {
				return nil, err
			}
			if ln, err = ru32(); err != nil {
				return nil, err
			}
			if ln > pmem.PageSize {
				return nil, fmt.Errorf("record: delta page of %d bytes", ln)
			}
			d.Index = int(idx)
			d.Data = make([]byte, ln)
			if _, err = io.ReadFull(br, d.Data); err != nil {
				return nil, err
			}
			fp.Delta = append(fp.Delta, d)
		}
		a.FPs = append(a.FPs, fp)
	}

	nCk, err := ru32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nCk; i++ {
		var ck Checkpoint
		var v64 uint64
		if v64, err = ru64(); err != nil {
			return nil, err
		}
		ck.FP = int(v64)
		if v64, err = ru64(); err != nil {
			return nil, err
		}
		ck.TraceIdx = int(v64)
		if v64, err = ru64(); err != nil {
			return nil, err
		}
		ck.OpsEver = int(v64)
		if v64, err = ru64(); err != nil {
			return nil, err
		}
		if v64 > 1<<32 {
			return nil, fmt.Errorf("record: checkpoint blob of %d bytes", v64)
		}
		ck.Shadow = make([]byte, v64)
		if _, err = io.ReadFull(br, ck.Shadow); err != nil {
			return nil, err
		}
		a.Checkpoints = append(a.Checkpoints, ck)
	}
	return a, nil
}

// BestCheckpoint returns the latest checkpoint strictly below startFP, or
// nil when none qualifies (the replay then starts from the trace head).
// Checkpoint state reflects the execution just after its failure point, so
// jumping to it is sound only when every failure point up to and including
// ck.FP needs no dispatch on this shard — which "strictly below the first
// owned, uncovered failure point" guarantees.
func (a *Artifact) BestCheckpoint(startFP int) *Checkpoint {
	var best *Checkpoint
	for i := range a.Checkpoints {
		ck := &a.Checkpoints[i]
		if ck.FP < startFP && (best == nil || ck.FP > best.FP) {
			best = ck
		}
	}
	return best
}

// OpenShadow reconstructs the checkpoint's shadow PM.
func (a *Artifact) OpenShadow(ck *Checkpoint) (*shadow.PM, error) {
	sh, err := shadow.ReadState(bytes.NewReader(ck.Shadow))
	if err != nil {
		return nil, fmt.Errorf("record: checkpoint at failure point %d: %w", ck.FP, err)
	}
	return sh, nil
}

// PoolAt composes the pool image at failure point fp: the last version of
// every page dirtied by deltas 0..fp, to be applied over a zeroed pool.
func (a *Artifact) PoolAt(fp int) []pmem.DeltaPage {
	last := map[int]pmem.DeltaPage{}
	for i := 0; i <= fp && i < len(a.FPs); i++ {
		for _, d := range a.FPs[i].Delta {
			last[d.Index] = d
		}
	}
	out := make([]pmem.DeltaPage, 0, len(last))
	for _, d := range last {
		out = append(out, d)
	}
	return out
}
