package workloads

import (
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
)

// AllMakers lists the five evaluated micro benchmarks of Table 4.
func allMakers() []Maker {
	return []Maker{BTreeMaker, CTreeMaker, RBTreeMaker, HashmapTXMaker, HashmapAtomicMaker}
}

// cleanCfg is the detection configuration used by the clean-run tests:
// enough operations to exercise splits, rotations, rehashes, updates and
// removals under failure injection.
var cleanCfg = TargetConfig{InitSize: 6, TestSize: 5, Removes: 2, PostOps: true}

// TestCleanWorkloadsUnderDetection is the reproduction's keystone: every
// correct workload must survive every injected failure point with no
// report of any class — no false positives.
func TestCleanWorkloadsUnderDetection(t *testing.T) {
	for _, m := range allMakers() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			res, err := core.Run(core.Config{PoolSize: 4 << 20}, DetectionTarget(m, cleanCfg))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("failure points=%d postRuns=%d preEntries=%d postEntries=%d benign=%d",
				res.FailurePoints, res.PostRuns, res.PreEntries, res.PostEntries, res.BenignReads)
			if len(res.Reports) != 0 {
				t.Fatalf("clean %s produced reports:\n%s", m.Name, res)
			}
			if res.FailurePoints < 10 {
				t.Errorf("suspiciously few failure points: %d", res.FailurePoints)
			}
		})
	}
}

// TestCleanCreateUnderDetection runs creation itself under failure
// injection (the configuration used for creation-time faults) and requires
// it to be clean too.
func TestCleanCreateUnderDetection(t *testing.T) {
	for _, m := range allMakers() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			cfg := cleanCfg
			cfg.FaultInCreate = true
			res, err := core.Run(core.Config{PoolSize: 4 << 20}, DetectionTarget(m, cfg))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Reports) != 0 {
				t.Fatalf("clean %s (create in RoI) produced reports:\n%s", m.Name, res)
			}
		})
	}
}

// TestCleanWorkloadsParallel re-runs the clean-workload check with the
// parallelized detector (§6.2.1's future work): same verdict — no reports
// — and the same failure-point count as the frontend is unchanged.
func TestCleanWorkloadsParallel(t *testing.T) {
	for _, m := range allMakers() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			res, err := core.Run(core.Config{PoolSize: 4 << 20, Workers: 4}, DetectionTarget(m, cleanCfg))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Reports) != 0 {
				t.Fatalf("clean %s (parallel) produced reports:\n%s", m.Name, res)
			}
		})
	}
}
