package workloads

import "github.com/pmemgo/xfdetector/internal/core"

// Fault describes one synthetic bug of the validation suite (Table 5 of
// the paper). Suite "pmtest" corresponds to the bug suite inherited from
// PMTest; suite "additional" to the extra cross-failure bugs the paper
// created (including the four cross-failure semantic bugs seeded on
// Hashmap-Atomic, the only workload whose commit variables are managed by
// hand rather than by the transactional library).
type Fault struct {
	// Name is the injectable fault identifier (TargetConfig.Fault).
	Name string
	// Workload is the Maker name the fault belongs to.
	Workload string
	// Class is the bug class XFDetector must report.
	Class core.BugClass
	// Suite is "pmtest" or "additional".
	Suite string
	// Description explains the seeded defect.
	Description string
}

func f(name, workload string, class core.BugClass, suite, desc string) Fault {
	return Fault{Name: name, Workload: workload, Class: class, Suite: suite, Description: desc}
}

// AllFaults returns the complete synthetic bug suite: per workload, the
// Table 5 counts — B-Tree 8R+2P (+4R), C-Tree 5R+1P (+1R), RB-Tree 7R+1P
// (+1R), Hashmap-TX 6R+1P (+3R), Hashmap-Atomic 10R+2P (+3R+4S).
func AllFaults() []Fault {
	const (
		race = core.CrossFailureRace
		sem  = core.CrossFailureSemantic
		perf = core.Performance
	)
	return []Fault{
		// B-Tree: 8 races + 2 performance (PMTest suite), 4 additional races.
		f("btree-skip-add-leaf", "B-Tree", race, "pmtest", "leaf modified without TX_ADD"),
		f("btree-skip-add-split-child", "B-Tree", race, "pmtest", "split child not TX_ADDed"),
		f("btree-skip-add-split-parent", "B-Tree", race, "pmtest", "split parent not TX_ADDed"),
		f("btree-skip-add-grow-root", "B-Tree", race, "pmtest", "root pointer updated without TX_ADD"),
		f("btree-skip-add-count", "B-Tree", race, "pmtest", "count updated without TX_ADD"),
		f("btree-skip-add-update", "B-Tree", race, "pmtest", "value update without TX_ADD"),
		f("btree-skip-add-remove-leaf", "B-Tree", race, "pmtest", "leaf removal without TX_ADD"),
		f("btree-skip-add-remove-internal", "B-Tree", race, "pmtest", "internal-key replacement without TX_ADD"),
		f("btree-dup-add-leaf", "B-Tree", perf, "pmtest", "same node TX_ADDed twice"),
		f("btree-extra-flush", "B-Tree", perf, "pmtest", "redundant writeback after commit"),
		f("btree-naive-recovery", "B-Tree", race, "additional", "recovery trusts the raw-store cached count (Fig. 1 pattern)"),
		f("btree-write-after-commit", "B-Tree", race, "additional", "node written after TX_END without writeback"),
		f("btree-root-ptr-raw", "B-Tree", race, "additional", "root pointer updated with a raw store"),
		f("btree-remove-count-raw", "B-Tree", race, "additional", "count decremented with a raw store"),

		// C-Tree: 5 races + 1 performance, 1 additional race.
		f("ctree-skip-add-link", "C-Tree", race, "pmtest", "parent link rewritten without TX_ADD"),
		f("ctree-skip-add-root", "C-Tree", race, "pmtest", "root pointer updated without TX_ADD"),
		f("ctree-skip-add-count", "C-Tree", race, "pmtest", "count updated without TX_ADD"),
		f("ctree-skip-add-remove-link", "C-Tree", race, "pmtest", "grandparent link rewritten without TX_ADD on remove"),
		f("ctree-skip-add-update", "C-Tree", race, "pmtest", "leaf value update without TX_ADD"),
		f("ctree-extra-flush", "C-Tree", perf, "pmtest", "redundant writeback after commit"),
		f("ctree-naive-recovery", "C-Tree", race, "additional", "recovery trusts the raw-store cached count"),

		// RB-Tree: 7 races + 1 performance, 1 additional race.
		f("rbt-skip-add-insert-link", "RB-Tree", race, "pmtest", "new node linked without TX_ADD"),
		f("rbt-raw-link-touch", "RB-Tree", race, "pmtest", "rotation link re-applied with a raw store after TX_END"),
		f("rbt-skip-add-color", "RB-Tree", race, "pmtest", "insert-fixup recolor without TX_ADD"),
		f("rbt-skip-add-root", "RB-Tree", race, "pmtest", "root pointer updated without TX_ADD"),
		f("rbt-skip-add-transplant", "RB-Tree", race, "pmtest", "transplant link without TX_ADD"),
		f("rbt-raw-recolor", "RB-Tree", race, "pmtest", "fixup recolor re-applied with a raw store after TX_END"),
		f("rbt-skip-add-count", "RB-Tree", race, "pmtest", "count updated without TX_ADD"),
		f("rbt-extra-flush", "RB-Tree", perf, "pmtest", "redundant writeback after commit"),
		f("rbt-naive-recovery", "RB-Tree", race, "additional", "recovery trusts the raw-store cached count"),

		// Hashmap-TX: 6 races + 1 performance, 3 additional races.
		f("hmtx-skip-add-slot", "Hashmap-TX", race, "pmtest", "bucket slot written without TX_ADD"),
		f("hmtx-skip-add-count", "Hashmap-TX", race, "pmtest", "count updated without TX_ADD"),
		f("hmtx-skip-add-update", "Hashmap-TX", race, "pmtest", "value update without TX_ADD"),
		f("hmtx-skip-add-remove", "Hashmap-TX", race, "pmtest", "unlink without TX_ADD"),
		f("hmtx-grow-root-raw", "Hashmap-TX", race, "pmtest", "directory pointer re-written with a raw store after the rehash commit"),
		f("hmtx-skip-add-rehash-link", "Hashmap-TX", race, "pmtest", "entry relinked without TX_ADD during rehash"),
		f("hmtx-extra-flush", "Hashmap-TX", perf, "pmtest", "redundant writeback after commit"),
		f("hmtx-naive-recovery", "Hashmap-TX", race, "additional", "recovery trusts the raw-store cached count"),
		f("hmtx-write-after-commit", "Hashmap-TX", race, "additional", "entry value written after TX_END"),
		f("hmtx-entry-raw-init", "Hashmap-TX", race, "additional", "entry atomically allocated and initialized without writeback"),

		// Hashmap-Atomic: 10 races + 2 performance, 3 additional races and
		// 4 cross-failure semantic bugs.
		f("hma-skip-entry-persist", "Hashmap-Atomic", race, "pmtest", "entry constructor does not persist the entry"),
		f("hma-next-after-publish", "Hashmap-Atomic", race, "pmtest", "entry link re-written after the commit protocol, never written back"),
		f("hma-skip-slot-persist", "Hashmap-Atomic", race, "pmtest", "bucket link not persisted"),
		f("hma-skip-unlink-persist", "Hashmap-Atomic", race, "pmtest", "interior unlink not persisted"),
		f("hma-skip-head-unlink-persist", "Hashmap-Atomic", race, "pmtest", "head unlink not persisted"),
		f("hma-update-val-no-persist", "Hashmap-Atomic", race, "pmtest", "value update not persisted"),
		f("hma-skip-count-persist", "Hashmap-Atomic", race, "pmtest", "count increment not persisted"),
		f("hma-bug1-seed-no-persist", "Hashmap-Atomic", race, "pmtest", "paper Bug 1: hash metadata not persisted at creation"),
		f("hma-bug2-count-uninit", "Hashmap-Atomic", race, "pmtest", "paper Bug 2: count never initialized after allocation"),
		f("hma-val-after-publish", "Hashmap-Atomic", race, "pmtest", "value re-written after the commit protocol, never written back"),
		f("hma-double-entry-persist", "Hashmap-Atomic", perf, "pmtest", "entry persisted twice"),
		f("hma-redundant-slot-flush", "Hashmap-Atomic", perf, "pmtest", "bucket slot flushed twice"),
		f("hma-skip-buckets-zero", "Hashmap-Atomic", race, "additional", "bucket directory not zeroed at creation"),
		f("hma-link-before-construct", "Hashmap-Atomic", race, "additional", "object published before its construction is persisted"),
		f("hma-recovery-skip-scrub", "Hashmap-Atomic", race, "additional", "recovery clears count_dirty without scrubbing (post-failure bug)"),
		f("hma-sem-inverted-dirty", "Hashmap-Atomic", sem, "additional", "commit variable written with inverted values (Fig. 2 pattern)"),
		f("hma-sem-count-before-dirty", "Hashmap-Atomic", sem, "additional", "count updated outside the commit window"),
		f("hma-sem-dirty-clear-early", "Hashmap-Atomic", sem, "additional", "count and commit write persisted by the same barrier"),
		f("hma-sem-dirty-set-with-count", "Hashmap-Atomic", sem, "additional", "commit write never persisted before being overwritten"),
	}
}

// FaultsFor returns the faults seeded in one workload.
func FaultsFor(workload string) []Fault {
	var out []Fault
	for _, fl := range AllFaults() {
		if fl.Workload == workload {
			out = append(out, fl)
		}
	}
	return out
}

// MakerFor resolves a workload name ("B-Tree", ...) to its Maker.
func MakerFor(name string) (Maker, bool) {
	for _, m := range []Maker{BTreeMaker, CTreeMaker, RBTreeMaker, HashmapTXMaker, HashmapAtomicMaker} {
		if m.Name == name {
			return m, true
		}
	}
	return Maker{}, false
}

// Makers returns the five evaluated micro benchmarks in Table 4 order.
func Makers() []Maker {
	return []Maker{BTreeMaker, CTreeMaker, RBTreeMaker, HashmapTXMaker, HashmapAtomicMaker}
}
