package workloads

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/pmobj"
)

// BTree is a persistent B-tree in the style of PMDK's btree example: fixed
// order, transactional updates, preemptive splitting on descent. Deletion
// replaces internal keys with their in-order predecessor/successor and
// tolerates underfull nodes (as the PMDK example does).
//
// Root object layout (128 bytes):
//
//	+0  treeRoot  offset of the root node (0 = empty tree)
//	+8  count     number of keys
//	+64 cachedCount  a raw-store duplicate of count, recomputed by recovery
//	                 by walking the tree (the Fig. 1 recover_alt pattern)
//
// Node layout (88 bytes): used | keys[3] | vals[3] | kids[4]. A node is a
// leaf iff all children are zero.
type BTree struct {
	c     *core.Ctx
	po    *pmobj.Pool
	p     *pmem.Pool
	root  uint64
	fault string
}

const (
	btKeys = 3 // max keys per node
	btKids = btKeys + 1

	btnUsed = 0
	btnKeys = 8
	btnVals = btnKeys + 8*btKeys
	btnKids = btnVals + 8*btKeys
	btnSize = btnKids + 8*btKids

	wrTreeRoot    = 0
	wrCount       = 8
	wrCachedCount = 64
	wrRootSize    = 128
)

// BTreeMaker builds B-Tree stores.
var BTreeMaker = Maker{
	Name: "B-Tree",
	Create: func(c *core.Ctx, fault string) (Store, error) {
		po, err := pmobj.Create(c.Pool(), wrRootSize, nil)
		if err != nil {
			return nil, err
		}
		return &BTree{c: c, po: po, p: c.Pool(), root: po.Root(), fault: fault}, nil
	},
	Open: func(c *core.Ctx, fault string) (Store, error) {
		po, err := pmobj.Open(c.Pool())
		if err != nil {
			return nil, err
		}
		t := &BTree{c: c, po: po, p: c.Pool(), root: po.Root(), fault: fault}
		if err := t.recoverCachedCount(); err != nil {
			return nil, err
		}
		return t, nil
	},
}

// recoverCachedCount recomputes the raw-store count duplicate from the tree
// itself and overwrites it, so resumption never depends on whether the last
// raw update persisted (the Fig. 1 recover_alt pattern). The seeded
// "naive-recovery" fault skips it, recreating Fig. 1's post-failure bug.
func (t *BTree) recoverCachedCount() error {
	if faultIs(t.fault, "btree-naive-recovery") {
		return nil // BUG: trusts the possibly non-persisted cached count
	}
	n, err := t.walkCount(t.p.Load64(t.root + wrTreeRoot))
	if err != nil {
		return err
	}
	t.p.Store64(t.root+wrCachedCount, n)
	t.p.Persist(t.root+wrCachedCount, 8)
	return nil
}

func (t *BTree) walkCount(node uint64) (uint64, error) {
	if node == 0 {
		return 0, nil
	}
	used := t.p.Load64(node + btnUsed)
	if used > btKeys {
		return 0, fmt.Errorf("btree: node 0x%x has impossible used=%d", node, used)
	}
	total := used
	for i := uint64(0); i <= used; i++ {
		kid := t.p.Load64(node + btnKids + 8*i)
		if kid != 0 {
			sub, err := t.walkCount(kid)
			if err != nil {
				return 0, err
			}
			total += sub
		}
	}
	return total, nil
}

func (t *BTree) isLeaf(node uint64) bool {
	for i := uint64(0); i < btKids; i++ {
		if t.p.Load64(node+btnKids+8*i) != 0 {
			return false
		}
	}
	return true
}

// bumpCached maintains the raw-store cached count outside the transaction.
func (t *BTree) bumpCached(delta int64) {
	v := t.p.Load64(t.root + wrCachedCount)
	t.p.Store64(t.root+wrCachedCount, uint64(int64(v)+delta))
	t.p.Persist(t.root+wrCachedCount, 8)
}

// Insert adds or updates a key.
func (t *BTree) Insert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("btree: zero key")
	}
	updated := false
	err := t.po.Tx(func(tx *pmobj.Tx) error {
		a := newAdder(tx)
		rootNode := t.p.Load64(t.root + wrTreeRoot)
		if rootNode == 0 {
			n, err := tx.Alloc(btnSize)
			if err != nil {
				return err
			}
			t.p.Store64(n+btnKeys, key)
			t.p.Store64(n+btnVals, value)
			t.p.Store64(n+btnUsed, 1)
			if !faultIs(t.fault, "btree-skip-add-grow-root") {
				if err := a.add(t.root, 16); err != nil {
					return err
				}
			}
			t.p.Store64(t.root+wrTreeRoot, n)
			t.p.Store64(t.root+wrCount, 1)
			return nil
		}
		// Preemptive split of a full root.
		if t.p.Load64(rootNode+btnUsed) == btKeys {
			newRoot, err := tx.Alloc(btnSize)
			if err != nil {
				return err
			}
			t.p.Store64(newRoot+btnKids, rootNode)
			if err := t.splitChild(a, newRoot, 0); err != nil {
				return err
			}
			if faultIs(t.fault, "btree-root-ptr-raw") {
				// BUG: the root pointer is updated with a raw store that is
				// neither undo-logged nor written back.
			} else if err := a.add(t.root, 16); err != nil {
				return err
			}
			t.p.Store64(t.root+wrTreeRoot, newRoot)
			rootNode = newRoot
		}
		node := rootNode
		for {
			used := t.p.Load64(node + btnUsed)
			// Existing key: update in place.
			for i := uint64(0); i < used; i++ {
				if t.p.Load64(node+btnKeys+8*i) == key {
					if !faultIs(t.fault, "btree-skip-add-update") {
						if err := a.add(node, btnSize); err != nil {
							return err
						}
					}
					t.p.Store64(node+btnVals+8*i, value)
					updated = true
					return nil
				}
			}
			if t.isLeaf(node) {
				return t.insertIntoLeaf(a, node, key, value)
			}
			i := uint64(0)
			for i < used && key > t.p.Load64(node+btnKeys+8*i) {
				i++
			}
			child := t.p.Load64(node + btnKids + 8*i)
			if t.p.Load64(child+btnUsed) == btKeys {
				if err := t.splitChild(a, node, i); err != nil {
					return err
				}
				// Re-examine this node: the hoisted separator may equal
				// the key (update case) or change the descent slot.
				continue
			}
			node = child
		}
	})
	if err != nil {
		return err
	}
	if !updated {
		t.bumpCached(1)
	}
	if faultIs(t.fault, "btree-write-after-commit") {
		// BUG: a node field is written after TX_END with no writeback.
		if n := t.p.Load64(t.root + wrTreeRoot); n != 0 {
			t.p.Store64(n+btnVals, value)
		}
	}
	if faultIs(t.fault, "btree-extra-flush") {
		// BUG (performance): everything is already persisted by the commit.
		t.p.Persist(t.root, 16)
	}
	return nil
}

// insertIntoLeaf places key into a non-full leaf.
func (t *BTree) insertIntoLeaf(a *adder, node, key, value uint64) error {
	if faultIs(t.fault, "btree-dup-add-leaf") {
		// BUG (performance): the same node is TX_ADDed twice.
		if err := a.tx.Add(node, btnSize); err != nil {
			return err
		}
		if err := a.tx.Add(node, btnSize); err != nil {
			return err
		}
	} else if !faultIs(t.fault, "btree-skip-add-leaf") {
		if err := a.add(node, btnSize); err != nil {
			return err
		}
	}
	used := t.p.Load64(node + btnUsed)
	i := used
	for i > 0 && t.p.Load64(node+btnKeys+8*(i-1)) > key {
		t.p.Store64(node+btnKeys+8*i, t.p.Load64(node+btnKeys+8*(i-1)))
		t.p.Store64(node+btnVals+8*i, t.p.Load64(node+btnVals+8*(i-1)))
		i--
	}
	t.p.Store64(node+btnKeys+8*i, key)
	t.p.Store64(node+btnVals+8*i, value)
	t.p.Store64(node+btnUsed, used+1)
	return t.bumpCount(a, 1)
}

func (t *BTree) bumpCount(a *adder, delta int64) error {
	if !faultIs(t.fault, "btree-skip-add-count") && !faultIs(t.fault, "btree-remove-count-raw") {
		if err := a.add(t.root, 16); err != nil {
			return err
		}
	}
	v := t.p.Load64(t.root + wrCount)
	t.p.Store64(t.root+wrCount, uint64(int64(v)+delta))
	return nil
}

// splitChild splits the full child at parent's slot i, hoisting the median
// key into the parent.
func (t *BTree) splitChild(a *adder, parent, i uint64) error {
	child := t.p.Load64(parent + btnKids + 8*i)
	right, err := a.tx.Alloc(btnSize)
	if err != nil {
		return err
	}
	if !faultIs(t.fault, "btree-skip-add-split-child") {
		if err := a.add(child, btnSize); err != nil {
			return err
		}
	}
	if !faultIs(t.fault, "btree-skip-add-split-parent") {
		if err := a.add(parent, btnSize); err != nil {
			return err
		}
	}
	// Median (index 1 of 3) moves up; key/val 2 move right.
	medianKey := t.p.Load64(child + btnKeys + 8)
	medianVal := t.p.Load64(child + btnVals + 8)
	t.p.Store64(right+btnKeys, t.p.Load64(child+btnKeys+16))
	t.p.Store64(right+btnVals, t.p.Load64(child+btnVals+16))
	t.p.Store64(right+btnUsed, 1)
	if !t.isLeaf(child) {
		t.p.Store64(right+btnKids, t.p.Load64(child+btnKids+16))
		t.p.Store64(right+btnKids+8, t.p.Load64(child+btnKids+24))
		t.p.Store64(child+btnKids+16, 0)
		t.p.Store64(child+btnKids+24, 0)
	}
	t.p.Store64(child+btnUsed, 1)

	used := t.p.Load64(parent + btnUsed)
	for j := used; j > i; j-- {
		t.p.Store64(parent+btnKeys+8*j, t.p.Load64(parent+btnKeys+8*(j-1)))
		t.p.Store64(parent+btnVals+8*j, t.p.Load64(parent+btnVals+8*(j-1)))
		t.p.Store64(parent+btnKids+8*(j+1), t.p.Load64(parent+btnKids+8*j))
	}
	t.p.Store64(parent+btnKeys+8*i, medianKey)
	t.p.Store64(parent+btnVals+8*i, medianVal)
	t.p.Store64(parent+btnKids+8*(i+1), right)
	t.p.Store64(parent+btnUsed, used+1)
	return nil
}

// Get looks key up.
func (t *BTree) Get(key uint64) (uint64, bool, error) {
	node := t.p.Load64(t.root + wrTreeRoot)
	for node != 0 {
		used := t.p.Load64(node + btnUsed)
		i := uint64(0)
		for i < used && key > t.p.Load64(node+btnKeys+8*i) {
			i++
		}
		if i < used && t.p.Load64(node+btnKeys+8*i) == key {
			return t.p.Load64(node + btnVals + 8*i), true, nil
		}
		node = t.p.Load64(node + btnKids + 8*i)
	}
	return 0, false, nil
}

// Remove deletes key if present.
func (t *BTree) Remove(key uint64) error {
	removed := false
	err := t.po.Tx(func(tx *pmobj.Tx) error {
		a := newAdder(tx)
		rootNode := t.p.Load64(t.root + wrTreeRoot)
		if rootNode == 0 {
			return nil
		}
		var err error
		removed, err = t.removeFrom(a, rootNode, key)
		if err != nil || !removed {
			return err
		}
		if faultIs(t.fault, "btree-remove-count-raw") {
			// BUG: count is decremented with a raw, unprotected store.
			v := t.p.Load64(t.root + wrCount)
			t.p.Store64(t.root+wrCount, v-1)
			return nil
		}
		return t.bumpCount(a, -1)
	})
	if err != nil {
		return err
	}
	if removed {
		t.bumpCached(-1)
	}
	return nil
}

func (t *BTree) removeFrom(a *adder, node, key uint64) (bool, error) {
	used := t.p.Load64(node + btnUsed)
	i := uint64(0)
	for i < used && key > t.p.Load64(node+btnKeys+8*i) {
		i++
	}
	found := i < used && t.p.Load64(node+btnKeys+8*i) == key
	leaf := t.isLeaf(node)
	switch {
	case found && leaf:
		if !faultIs(t.fault, "btree-skip-add-remove-leaf") {
			if err := a.add(node, btnSize); err != nil {
				return false, err
			}
		}
		for j := i; j+1 < used; j++ {
			t.p.Store64(node+btnKeys+8*j, t.p.Load64(node+btnKeys+8*(j+1)))
			t.p.Store64(node+btnVals+8*j, t.p.Load64(node+btnVals+8*(j+1)))
		}
		t.p.Store64(node+btnUsed, used-1)
		return true, nil
	case found:
		if !faultIs(t.fault, "btree-skip-add-remove-internal") {
			if err := a.add(node, btnSize); err != nil {
				return false, err
			}
		}
		if pk, pv, ok := t.subtreeMax(t.p.Load64(node + btnKids + 8*i)); ok {
			t.p.Store64(node+btnKeys+8*i, pk)
			t.p.Store64(node+btnVals+8*i, pv)
			return t.removeFrom(a, t.p.Load64(node+btnKids+8*i), pk)
		}
		if sk, sv, ok := t.subtreeMin(t.p.Load64(node + btnKids + 8*(i+1))); ok {
			t.p.Store64(node+btnKeys+8*i, sk)
			t.p.Store64(node+btnVals+8*i, sv)
			return t.removeFrom(a, t.p.Load64(node+btnKids+8*(i+1)), sk)
		}
		// Both adjacent subtrees are empty: drop the key and the (empty)
		// right child.
		for j := i; j+1 < used; j++ {
			t.p.Store64(node+btnKeys+8*j, t.p.Load64(node+btnKeys+8*(j+1)))
			t.p.Store64(node+btnVals+8*j, t.p.Load64(node+btnVals+8*(j+1)))
		}
		for j := i + 1; j < used; j++ {
			t.p.Store64(node+btnKids+8*j, t.p.Load64(node+btnKids+8*(j+1)))
		}
		t.p.Store64(node+btnKids+8*used, 0)
		t.p.Store64(node+btnUsed, used-1)
		return true, nil
	case leaf:
		return false, nil
	default:
		return t.removeFrom(a, t.p.Load64(node+btnKids+8*i), key)
	}
}

func (t *BTree) subtreeMax(node uint64) (uint64, uint64, bool) {
	if node == 0 {
		return 0, 0, false
	}
	used := t.p.Load64(node + btnUsed)
	if k, v, ok := t.subtreeMax(t.p.Load64(node + btnKids + 8*used)); ok {
		return k, v, ok
	}
	if used > 0 {
		return t.p.Load64(node + btnKeys + 8*(used-1)), t.p.Load64(node + btnVals + 8*(used-1)), true
	}
	return t.subtreeMax(t.p.Load64(node + btnKids))
}

func (t *BTree) subtreeMin(node uint64) (uint64, uint64, bool) {
	if node == 0 {
		return 0, 0, false
	}
	if k, v, ok := t.subtreeMin(t.p.Load64(node + btnKids)); ok {
		return k, v, ok
	}
	used := t.p.Load64(node + btnUsed)
	if used > 0 {
		return t.p.Load64(node + btnKeys), t.p.Load64(node + btnVals), true
	}
	return t.subtreeMin(t.p.Load64(node + btnKids + 8*used))
}

// Count returns the transactional key count.
func (t *BTree) Count() (uint64, error) {
	return t.p.Load64(t.root + wrCount), nil
}

// Verify walks the tree checking order, reachable-key count against both
// counters, and node sanity.
func (t *BTree) Verify() error {
	var keys []uint64
	var walk func(node uint64) error
	walk = func(node uint64) error {
		if node == 0 {
			return nil
		}
		used := t.p.Load64(node + btnUsed)
		if used > btKeys {
			return fmt.Errorf("btree: node 0x%x used=%d out of range", node, used)
		}
		leaf := t.isLeaf(node)
		for i := uint64(0); i < used; i++ {
			if !leaf {
				if err := walk(t.p.Load64(node + btnKids + 8*i)); err != nil {
					return err
				}
			}
			keys = append(keys, t.p.Load64(node+btnKeys+8*i))
			t.p.Load64(node + btnVals + 8*i) // values must be readable too
		}
		if !leaf {
			return walk(t.p.Load64(node + btnKids + 8*used))
		}
		return nil
	}
	if err := walk(t.p.Load64(t.root + wrTreeRoot)); err != nil {
		return err
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return fmt.Errorf("btree: keys out of order at %d: %#x >= %#x", i, keys[i-1], keys[i])
		}
	}
	if count := t.p.Load64(t.root + wrCount); count != uint64(len(keys)) {
		return fmt.Errorf("btree: count=%d but %d reachable keys", count, len(keys))
	}
	if cached := t.p.Load64(t.root + wrCachedCount); cached != uint64(len(keys)) {
		return fmt.Errorf("btree: cachedCount=%d but %d reachable keys", cached, len(keys))
	}
	return nil
}
