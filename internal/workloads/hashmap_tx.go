package workloads

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/pmobj"
)

// HashmapTX is a persistent chained hash map in the style of PMDK's
// hashmap_tx example: a directory of bucket head pointers, chained entries,
// transactional updates, and a transactional rehash that doubles the
// directory when the load factor exceeds 2.
//
// Root object layout (128 bytes):
//
//	+0  dirOff       offset of the bucket directory (u64 slots)
//	+8  nbuckets
//	+16 count
//	+64 cachedCount  raw-store duplicate, recomputed by recovery
//
// Entry layout (32 bytes): key | val | next | pad.
type HashmapTX struct {
	c     *core.Ctx
	po    *pmobj.Pool
	p     *pmem.Pool
	root  uint64
	fault string
	// grewTo records a rehash inside the current insert, for the seeded
	// post-commit raw-write bug.
	grewTo uint64
}

const (
	htxDir         = 0
	htxNBuckets    = 8
	htxCount       = 16
	htxCachedCount = 64

	htxEntKey  = 0
	htxEntVal  = 8
	htxEntNext = 16
	htxEntSize = 32

	htxInitialBuckets = 4
)

// HashmapTXMaker builds Hashmap-TX stores.
var HashmapTXMaker = Maker{
	Name: "Hashmap-TX",
	Create: func(c *core.Ctx, fault string) (Store, error) {
		po, err := pmobj.Create(c.Pool(), wrRootSize, nil)
		if err != nil {
			return nil, err
		}
		h := &HashmapTX{c: c, po: po, p: c.Pool(), root: po.Root(), fault: fault}
		err = po.Tx(func(tx *pmobj.Tx) error {
			dir, err := tx.Alloc(htxInitialBuckets * 8)
			if err != nil {
				return err
			}
			if err := tx.Add(h.root, 24); err != nil {
				return err
			}
			h.p.Store64(h.root+htxDir, dir)
			h.p.Store64(h.root+htxNBuckets, htxInitialBuckets)
			h.p.Store64(h.root+htxCount, 0)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return h, nil
	},
	Open: func(c *core.Ctx, fault string) (Store, error) {
		po, err := pmobj.Open(c.Pool())
		if err != nil {
			return nil, err
		}
		h := &HashmapTX{c: c, po: po, p: c.Pool(), root: po.Root(), fault: fault}
		if h.p.Load64(h.root+htxDir) == 0 {
			// A failure hit before the directory-creating transaction
			// committed (recovery rolled it back): start over.
			return nil, ErrNotInitialized
		}
		if err := h.recoverCachedCount(); err != nil {
			return nil, err
		}
		return h, nil
	},
}

func (h *HashmapTX) recoverCachedCount() error {
	if faultIs(h.fault, "hmtx-naive-recovery") {
		return nil // BUG: trusts the possibly non-persisted cached count
	}
	n, err := h.walkCount()
	if err != nil {
		return err
	}
	h.p.Store64(h.root+htxCachedCount, n)
	h.p.Persist(h.root+htxCachedCount, 8)
	return nil
}

func (h *HashmapTX) walkCount() (uint64, error) {
	dir := h.p.Load64(h.root + htxDir)
	nb := h.p.Load64(h.root + htxNBuckets)
	if nb == 0 || nb > 1<<20 {
		return 0, fmt.Errorf("hashmap-tx: implausible bucket count %d", nb)
	}
	n := uint64(0)
	for b := uint64(0); b < nb; b++ {
		for e := h.p.Load64(dir + 8*b); e != 0; e = h.p.Load64(e + htxEntNext) {
			n++
			if n > 1<<22 {
				return 0, fmt.Errorf("hashmap-tx: chain cycle suspected")
			}
		}
	}
	return n, nil
}

func (h *HashmapTX) bumpCached(delta int64) {
	v := h.p.Load64(h.root + htxCachedCount)
	h.p.Store64(h.root+htxCachedCount, uint64(int64(v)+delta))
	h.p.Persist(h.root+htxCachedCount, 8)
}

func (h *HashmapTX) bucket(key, nb uint64) uint64 {
	x := key * 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x % nb
}

// Insert adds or updates a key, growing the directory at load factor 2.
func (h *HashmapTX) Insert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("hashmap-tx: zero key")
	}
	inserted := false
	var rawEntry uint64
	if faultIs(h.fault, "hmtx-entry-raw-init") {
		// BUG: the entry comes from the atomic allocator, outside the
		// transaction, and its fields are initialized with raw stores
		// that are never written back; only the link is transactional.
		var err error
		if rawEntry, err = h.po.AllocAtomic(htxEntSize, nil); err != nil {
			return err
		}
	}
	err := h.po.Tx(func(tx *pmobj.Tx) error {
		a := newAdder(tx)
		dir := h.p.Load64(h.root + htxDir)
		nb := h.p.Load64(h.root + htxNBuckets)
		slot := dir + 8*h.bucket(key, nb)
		for e := h.p.Load64(slot); e != 0; e = h.p.Load64(e + htxEntNext) {
			if h.p.Load64(e+htxEntKey) == key {
				if !faultIs(h.fault, "hmtx-skip-add-update") {
					if err := a.add(e, htxEntSize); err != nil {
						return err
					}
				}
				h.p.Store64(e+htxEntVal, value)
				return nil
			}
		}
		e := rawEntry
		if e == 0 {
			var err error
			if e, err = tx.Alloc(htxEntSize); err != nil {
				return err
			}
		}
		h.p.Store64(e+htxEntKey, key)
		h.p.Store64(e+htxEntVal, value)
		h.p.Store64(e+htxEntNext, h.p.Load64(slot))
		if !faultIs(h.fault, "hmtx-skip-add-slot") {
			if err := a.add(slot, 8); err != nil {
				return err
			}
		}
		h.p.Store64(slot, e)
		if !faultIs(h.fault, "hmtx-skip-add-count") {
			if err := a.add(h.root, 24); err != nil {
				return err
			}
		}
		count := h.p.Load64(h.root+htxCount) + 1
		h.p.Store64(h.root+htxCount, count)
		inserted = true
		if count > 2*nb {
			return h.grow(a, tx, nb*2)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if inserted {
		h.bumpCached(1)
	}
	if faultIs(h.fault, "hmtx-write-after-commit") {
		// BUG: the value is "touched up" after TX_END with no writeback.
		dir := h.p.Load64(h.root + htxDir)
		nb := h.p.Load64(h.root + htxNBuckets)
		if e := h.p.Load64(dir + 8*h.bucket(key, nb)); e != 0 {
			h.p.Store64(e+htxEntVal, value)
		}
	}
	if faultIs(h.fault, "hmtx-extra-flush") {
		// BUG (performance): already persisted by the commit.
		h.p.Persist(h.root, 24)
	}
	if h.grewTo != 0 {
		if faultIs(h.fault, "hmtx-grow-root-raw") {
			// BUG: the directory pointer is re-written with a raw store
			// after the rehash transaction committed, with no writeback.
			h.p.Store64(h.root+htxDir, h.grewTo)
		}
		h.grewTo = 0
	}
	return nil
}

// grow doubles the directory inside the caller's transaction, relinking
// every entry into the new bucket array.
func (h *HashmapTX) grow(a *adder, tx *pmobj.Tx, newNB uint64) error {
	oldDir := h.p.Load64(h.root + htxDir)
	oldNB := h.p.Load64(h.root + htxNBuckets)
	newDir, err := tx.Alloc(newNB * 8)
	if err != nil {
		return err
	}
	for b := uint64(0); b < oldNB; b++ {
		e := h.p.Load64(oldDir + 8*b)
		for e != 0 {
			next := h.p.Load64(e + htxEntNext)
			newSlot := newDir + 8*h.bucket(h.p.Load64(e+htxEntKey), newNB)
			if !faultIs(h.fault, "hmtx-skip-add-rehash-link") {
				if err := a.add(e, htxEntSize); err != nil {
					return err
				}
			}
			h.p.Store64(e+htxEntNext, h.p.Load64(newSlot))
			h.p.Store64(newSlot, e)
			e = next
		}
	}
	if err := a.add(h.root, 24); err != nil {
		return err
	}
	h.p.Store64(h.root+htxDir, newDir)
	h.p.Store64(h.root+htxNBuckets, newNB)
	h.grewTo = newDir
	return tx.Free(oldDir)
}

// Get looks key up.
func (h *HashmapTX) Get(key uint64) (uint64, bool, error) {
	dir := h.p.Load64(h.root + htxDir)
	nb := h.p.Load64(h.root + htxNBuckets)
	if nb == 0 {
		return 0, false, fmt.Errorf("hashmap-tx: no buckets")
	}
	for e := h.p.Load64(dir + 8*h.bucket(key, nb)); e != 0; e = h.p.Load64(e + htxEntNext) {
		if h.p.Load64(e+htxEntKey) == key {
			return h.p.Load64(e + htxEntVal), true, nil
		}
	}
	return 0, false, nil
}

// Remove deletes key if present.
func (h *HashmapTX) Remove(key uint64) error {
	removed := false
	err := h.po.Tx(func(tx *pmobj.Tx) error {
		a := newAdder(tx)
		dir := h.p.Load64(h.root + htxDir)
		nb := h.p.Load64(h.root + htxNBuckets)
		slot := dir + 8*h.bucket(key, nb)
		prev := uint64(0)
		e := h.p.Load64(slot)
		for e != 0 && h.p.Load64(e+htxEntKey) != key {
			prev = e
			e = h.p.Load64(e + htxEntNext)
		}
		if e == 0 {
			return nil
		}
		removed = true
		next := h.p.Load64(e + htxEntNext)
		if prev == 0 {
			if !faultIs(h.fault, "hmtx-skip-add-remove") {
				if err := a.add(slot, 8); err != nil {
					return err
				}
			}
			h.p.Store64(slot, next)
		} else {
			if !faultIs(h.fault, "hmtx-skip-add-remove") {
				if err := a.add(prev, htxEntSize); err != nil {
					return err
				}
			}
			h.p.Store64(prev+htxEntNext, next)
		}
		if err := tx.Free(e); err != nil {
			return err
		}
		if !faultIs(h.fault, "hmtx-skip-add-count") {
			if err := a.add(h.root, 24); err != nil {
				return err
			}
		}
		h.p.Store64(h.root+htxCount, h.p.Load64(h.root+htxCount)-1)
		return nil
	})
	if err != nil {
		return err
	}
	if removed {
		h.bumpCached(-1)
	}
	return nil
}

// Count returns the transactional key count.
func (h *HashmapTX) Count() (uint64, error) {
	return h.p.Load64(h.root + htxCount), nil
}

// Verify checks bucket routing, key uniqueness and both counters.
func (h *HashmapTX) Verify() error {
	dir := h.p.Load64(h.root + htxDir)
	nb := h.p.Load64(h.root + htxNBuckets)
	if nb == 0 {
		return fmt.Errorf("hashmap-tx: no buckets")
	}
	seen := map[uint64]bool{}
	n := uint64(0)
	for b := uint64(0); b < nb; b++ {
		for e := h.p.Load64(dir + 8*b); e != 0; e = h.p.Load64(e + htxEntNext) {
			k := h.p.Load64(e + htxEntKey)
			if seen[k] {
				return fmt.Errorf("hashmap-tx: duplicate key %#x", k)
			}
			seen[k] = true
			if h.bucket(k, nb) != b {
				return fmt.Errorf("hashmap-tx: key %#x in bucket %d, want %d", k, b, h.bucket(k, nb))
			}
			h.p.Load64(e + htxEntVal)
			n++
			if n > 1<<22 {
				return fmt.Errorf("hashmap-tx: chain cycle suspected")
			}
		}
	}
	if c := h.p.Load64(h.root + htxCount); c != n {
		return fmt.Errorf("hashmap-tx: count=%d but %d reachable entries", c, n)
	}
	if cc := h.p.Load64(h.root + htxCachedCount); cc != n {
		return fmt.Errorf("hashmap-tx: cachedCount=%d but %d reachable entries", cc, n)
	}
	return nil
}
