package workloads

import (
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
)

// table5Cfg exercises every fault site: creation under injection, inserts
// with splits/rotations/rehashes, updates and removals.
var table5Cfg = TargetConfig{
	InitSize:      10,
	TestSize:      5,
	Updates:       2,
	Removes:       5,
	PostOps:       true,
	FaultInCreate: true,
}

// runFault runs one seeded bug under full detection.
func runFault(t *testing.T, fl Fault) *core.Result {
	t.Helper()
	m, ok := MakerFor(fl.Workload)
	if !ok {
		t.Fatalf("unknown workload %q", fl.Workload)
	}
	cfg := table5Cfg
	cfg.Fault = fl.Name
	res, err := core.Run(core.Config{PoolSize: 4 << 20, MaxPostOps: 1 << 17}, DetectionTarget(m, cfg))
	if err != nil {
		t.Fatalf("fault %s: harness error: %v", fl.Name, err)
	}
	return res
}

// TestTable5Validation reproduces the paper's Table 5: every synthetic bug
// of the suite must be detected with the expected class.
func TestTable5Validation(t *testing.T) {
	for _, fl := range AllFaults() {
		fl := fl
		t.Run(fl.Name, func(t *testing.T) {
			t.Parallel()
			res := runFault(t, fl)
			if got := res.Count(fl.Class); got == 0 {
				t.Errorf("fault %q (%s): expected a %s report, got:\n%s",
					fl.Name, fl.Description, fl.Class, res)
			}
		})
	}
}

// TestTable5Counts pins the Table 5 suite composition: per-workload counts
// of seeded races, semantic bugs and performance bugs.
func TestTable5Counts(t *testing.T) {
	type counts struct{ r, s, p int }
	want := map[string]counts{
		"B-Tree":         {r: 12, s: 0, p: 2},
		"C-Tree":         {r: 6, s: 0, p: 1},
		"RB-Tree":        {r: 8, s: 0, p: 1},
		"Hashmap-TX":     {r: 9, s: 0, p: 1},
		"Hashmap-Atomic": {r: 13, s: 4, p: 2},
	}
	got := map[string]counts{}
	for _, fl := range AllFaults() {
		c := got[fl.Workload]
		switch fl.Class {
		case core.CrossFailureRace:
			c.r++
		case core.CrossFailureSemantic:
			c.s++
		case core.Performance:
			c.p++
		}
		got[fl.Workload] = c
	}
	for w, wc := range want {
		if got[w] != wc {
			t.Errorf("%s: suite has %+v, want %+v", w, got[w], wc)
		}
	}
	if len(AllFaults()) != 59 {
		t.Errorf("suite size = %d, want 59 (48 R + 4 S + 7 P)", len(AllFaults()))
	}
}

// TestFaultNamesUnique guards the registry against typos.
func TestFaultNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, fl := range AllFaults() {
		if seen[fl.Name] {
			t.Errorf("duplicate fault name %q", fl.Name)
		}
		seen[fl.Name] = true
		if _, ok := MakerFor(fl.Workload); !ok {
			t.Errorf("fault %q references unknown workload %q", fl.Name, fl.Workload)
		}
		if fl.Suite != "pmtest" && fl.Suite != "additional" {
			t.Errorf("fault %q has unknown suite %q", fl.Name, fl.Suite)
		}
	}
}
