package workloads

import "github.com/pmemgo/xfdetector/internal/pmobj"

// adder wraps a transaction and dedupes TX_ADDs: backing the same node up
// twice in one transaction is the duplicated-TX_ADD performance bug the
// backend reports, so correct workload code adds each range once. The
// seeded duplicate-add faults bypass the adder on purpose.
type adder struct {
	tx    *pmobj.Tx
	added map[uint64]bool
}

func newAdder(tx *pmobj.Tx) *adder {
	return &adder{tx: tx, added: make(map[uint64]bool)}
}

// add TX_ADDs [off, off+size) unless this offset was already added in this
// transaction.
func (a *adder) add(off, size uint64) error {
	if a.added[off] {
		return nil
	}
	a.added[off] = true
	return a.tx.Add(off, size)
}
