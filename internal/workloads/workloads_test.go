package workloads

import (
	"fmt"
	"sort"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
)

// exercise drives a Maker through a deterministic mixed workload (inserts,
// updates, removals, lookups) without any detection, comparing against a
// volatile reference map and verifying invariants along the way.
func exercise(t *testing.T, m Maker, ops int) {
	t.Helper()
	target := core.Target{
		Name: m.Name + "-functional",
		Pre: func(c *core.Ctx) error {
			st, err := m.Create(c, "")
			if err != nil {
				return err
			}
			ref := map[uint64]uint64{}
			rng := uint64(0x12345678)
			next := func(n uint64) uint64 {
				rng = rng*6364136223846793005 + 1442695040888963407
				return (rng >> 33) % n
			}
			keyOf := func(i uint64) uint64 { return Key(int(i)) }
			for i := 0; i < ops; i++ {
				switch next(10) {
				case 0, 1, 2, 3, 4: // insert / update
					k := keyOf(next(64))
					v := next(1<<30) + 1
					if err := st.Insert(k, v); err != nil {
						return fmt.Errorf("op %d insert %#x: %w", i, k, err)
					}
					ref[k] = v
				case 5, 6: // remove (possibly absent)
					k := keyOf(next(64))
					if err := st.Remove(k); err != nil {
						return fmt.Errorf("op %d remove %#x: %w", i, k, err)
					}
					delete(ref, k)
				default: // lookup
					k := keyOf(next(64))
					v, ok, err := st.Get(k)
					if err != nil {
						return fmt.Errorf("op %d get %#x: %w", i, k, err)
					}
					want, wantOK := ref[k]
					if ok != wantOK || (ok && v != want) {
						return fmt.Errorf("op %d get %#x = (%d,%v), want (%d,%v)", i, k, v, ok, want, wantOK)
					}
				}
				if i%25 == 24 {
					if err := st.Verify(); err != nil {
						return fmt.Errorf("op %d verify: %w", i, err)
					}
					n, err := st.Count()
					if err != nil {
						return err
					}
					if n != uint64(len(ref)) {
						return fmt.Errorf("op %d count=%d want %d", i, n, len(ref))
					}
				}
			}
			// Final: every reference key present with the right value.
			keys := make([]uint64, 0, len(ref))
			for k := range ref {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				v, ok, err := st.Get(k)
				if err != nil {
					return err
				}
				if !ok || v != ref[k] {
					return fmt.Errorf("final get %#x = (%d,%v), want (%d,true)", k, v, ok, ref[k])
				}
			}
			return st.Verify()
		},
	}
	if _, err := core.Run(core.Config{Mode: core.ModeOriginal, PoolSize: 4 << 20}, target); err != nil {
		t.Fatal(err)
	}
}

// reopen drives persistence across open: insert, reopen, check.
func reopen(t *testing.T, m Maker) {
	t.Helper()
	target := core.Target{
		Name: m.Name + "-reopen",
		Pre: func(c *core.Ctx) error {
			st, err := m.Create(c, "")
			if err != nil {
				return err
			}
			for i := 0; i < 20; i++ {
				if err := st.Insert(Key(i), Value(Key(i))); err != nil {
					return err
				}
			}
			st2, err := m.Open(c, "")
			if err != nil {
				return err
			}
			for i := 0; i < 20; i++ {
				v, ok, err := st2.Get(Key(i))
				if err != nil {
					return err
				}
				if !ok || v != Value(Key(i)) {
					return fmt.Errorf("after reopen: key %d = (%d,%v)", i, v, ok)
				}
			}
			n, err := st2.Count()
			if err != nil {
				return err
			}
			if n != 20 {
				return fmt.Errorf("after reopen: count=%d", n)
			}
			return st2.Verify()
		},
	}
	if _, err := core.Run(core.Config{Mode: core.ModeOriginal, PoolSize: 4 << 20}, target); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeFunctional(t *testing.T) { exercise(t, BTreeMaker, 600) }
func TestBTreeReopen(t *testing.T)     { reopen(t, BTreeMaker) }

func TestCTreeFunctional(t *testing.T)  { exercise(t, CTreeMaker, 600) }
func TestCTreeReopen(t *testing.T)      { reopen(t, CTreeMaker) }
func TestRBTreeFunctional(t *testing.T) { exercise(t, RBTreeMaker, 600) }
func TestRBTreeReopen(t *testing.T)     { reopen(t, RBTreeMaker) }

func TestHashmapTXFunctional(t *testing.T)     { exercise(t, HashmapTXMaker, 600) }
func TestHashmapTXReopen(t *testing.T)         { reopen(t, HashmapTXMaker) }
func TestHashmapAtomicFunctional(t *testing.T) { exercise(t, HashmapAtomicMaker, 600) }
func TestHashmapAtomicReopen(t *testing.T)     { reopen(t, HashmapAtomicMaker) }
