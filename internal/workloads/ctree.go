package workloads

import (
	"fmt"
	"math/bits"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/pmobj"
)

// CTree is a persistent crit-bit tree in the style of PMDK's ctree example:
// internal nodes test the most significant bit where two keys differ,
// leaves hold key/value pairs, and updates are transactional.
//
// Root object layout (128 bytes):
//
//	+0  rootNode     offset of the root node (0 = empty)
//	+8  count
//	+64 cachedCount  raw-store duplicate, recomputed by recovery
//
// Node layout (32 bytes): tag | a | b | c. Leaves (tag 0) use a=key,
// b=value; internal nodes (tag 1) use a=diffBit, b=child0, c=child1.
// Internal nodes closer to the root test higher bit indices.
type CTree struct {
	c     *core.Ctx
	po    *pmobj.Pool
	p     *pmem.Pool
	root  uint64
	fault string
}

const (
	ctnTag  = 0
	ctnA    = 8
	ctnB    = 16
	ctnC    = 24
	ctnSize = 32

	ctLeaf     = 0
	ctInternal = 1
)

// CTreeMaker builds C-Tree stores.
var CTreeMaker = Maker{
	Name: "C-Tree",
	Create: func(c *core.Ctx, fault string) (Store, error) {
		po, err := pmobj.Create(c.Pool(), wrRootSize, nil)
		if err != nil {
			return nil, err
		}
		return &CTree{c: c, po: po, p: c.Pool(), root: po.Root(), fault: fault}, nil
	},
	Open: func(c *core.Ctx, fault string) (Store, error) {
		po, err := pmobj.Open(c.Pool())
		if err != nil {
			return nil, err
		}
		t := &CTree{c: c, po: po, p: c.Pool(), root: po.Root(), fault: fault}
		if err := t.recoverCachedCount(); err != nil {
			return nil, err
		}
		return t, nil
	},
}

func (t *CTree) recoverCachedCount() error {
	if faultIs(t.fault, "ctree-naive-recovery") {
		return nil // BUG: trusts the possibly non-persisted cached count
	}
	n, err := t.walkCount(t.p.Load64(t.root + wrTreeRoot))
	if err != nil {
		return err
	}
	t.p.Store64(t.root+wrCachedCount, n)
	t.p.Persist(t.root+wrCachedCount, 8)
	return nil
}

func (t *CTree) walkCount(node uint64) (uint64, error) {
	if node == 0 {
		return 0, nil
	}
	if t.p.Load64(node+ctnTag) == ctLeaf {
		return 1, nil
	}
	l, err := t.walkCount(t.p.Load64(node + ctnB))
	if err != nil {
		return 0, err
	}
	r, err := t.walkCount(t.p.Load64(node + ctnC))
	if err != nil {
		return 0, err
	}
	return l + r, nil
}

func (t *CTree) bumpCached(delta int64) {
	v := t.p.Load64(t.root + wrCachedCount)
	t.p.Store64(t.root+wrCachedCount, uint64(int64(v)+delta))
	t.p.Persist(t.root+wrCachedCount, 8)
}

// descendToLeaf returns the leaf the key routes to (tree must be nonempty).
func (t *CTree) descendToLeaf(key uint64) uint64 {
	node := t.p.Load64(t.root + wrTreeRoot)
	for t.p.Load64(node+ctnTag) == ctInternal {
		bit := t.p.Load64(node + ctnA)
		if key&(1<<bit) == 0 {
			node = t.p.Load64(node + ctnB)
		} else {
			node = t.p.Load64(node + ctnC)
		}
	}
	return node
}

// Insert adds or updates a key.
func (t *CTree) Insert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("ctree: zero key")
	}
	inserted := false
	err := t.po.Tx(func(tx *pmobj.Tx) error {
		a := newAdder(tx)
		rootNode := t.p.Load64(t.root + wrTreeRoot)
		if rootNode == 0 {
			leaf, err := tx.Alloc(ctnSize)
			if err != nil {
				return err
			}
			t.p.Store64(leaf+ctnTag, ctLeaf)
			t.p.Store64(leaf+ctnA, key)
			t.p.Store64(leaf+ctnB, value)
			if !faultIs(t.fault, "ctree-skip-add-root") {
				if err := a.add(t.root, 16); err != nil {
					return err
				}
			}
			t.p.Store64(t.root+wrTreeRoot, leaf)
			t.p.Store64(t.root+wrCount, 1)
			inserted = true
			return nil
		}
		near := t.descendToLeaf(key)
		nearKey := t.p.Load64(near + ctnA)
		if nearKey == key { // update in place
			if !faultIs(t.fault, "ctree-skip-add-update") {
				if err := a.add(near, ctnSize); err != nil {
					return err
				}
			}
			t.p.Store64(near+ctnB, value)
			return nil
		}
		diff := uint64(63 - bits.LeadingZeros64(nearKey^key))
		leaf, err := tx.Alloc(ctnSize)
		if err != nil {
			return err
		}
		t.p.Store64(leaf+ctnTag, ctLeaf)
		t.p.Store64(leaf+ctnA, key)
		t.p.Store64(leaf+ctnB, value)
		internal, err := tx.Alloc(ctnSize)
		if err != nil {
			return err
		}
		t.p.Store64(internal+ctnTag, ctInternal)
		t.p.Store64(internal+ctnA, diff)

		// Find the link where the new internal node belongs: the first
		// node (from the root) that is a leaf or tests a lower bit.
		parent := uint64(0) // 0 = the root pointer itself
		node := rootNode
		for t.p.Load64(node+ctnTag) == ctInternal && t.p.Load64(node+ctnA) > diff {
			parent = node
			if key&(1<<t.p.Load64(node+ctnA)) == 0 {
				node = t.p.Load64(node + ctnB)
			} else {
				node = t.p.Load64(node + ctnC)
			}
		}
		if key&(1<<diff) == 0 {
			t.p.Store64(internal+ctnB, leaf)
			t.p.Store64(internal+ctnC, node)
		} else {
			t.p.Store64(internal+ctnB, node)
			t.p.Store64(internal+ctnC, leaf)
		}
		if parent == 0 {
			if !faultIs(t.fault, "ctree-skip-add-root") {
				if err := a.add(t.root, 16); err != nil {
					return err
				}
			}
			t.p.Store64(t.root+wrTreeRoot, internal)
		} else {
			if !faultIs(t.fault, "ctree-skip-add-link") {
				if err := a.add(parent, ctnSize); err != nil {
					return err
				}
			}
			if key&(1<<t.p.Load64(parent+ctnA)) == 0 {
				t.p.Store64(parent+ctnB, internal)
			} else {
				t.p.Store64(parent+ctnC, internal)
			}
		}
		if !faultIs(t.fault, "ctree-skip-add-count") {
			if err := a.add(t.root, 16); err != nil {
				return err
			}
		}
		t.p.Store64(t.root+wrCount, t.p.Load64(t.root+wrCount)+1)
		inserted = true
		return nil
	})
	if err != nil {
		return err
	}
	if inserted {
		t.bumpCached(1)
	}
	if faultIs(t.fault, "ctree-extra-flush") {
		// BUG (performance): the commit already persisted everything.
		t.p.Persist(t.root, 16)
	}
	return nil
}

// Get looks key up.
func (t *CTree) Get(key uint64) (uint64, bool, error) {
	if t.p.Load64(t.root+wrTreeRoot) == 0 {
		return 0, false, nil
	}
	leaf := t.descendToLeaf(key)
	if t.p.Load64(leaf+ctnA) == key {
		return t.p.Load64(leaf + ctnB), true, nil
	}
	return 0, false, nil
}

// Remove deletes key if present, collapsing its parent internal node.
func (t *CTree) Remove(key uint64) error {
	removed := false
	err := t.po.Tx(func(tx *pmobj.Tx) error {
		a := newAdder(tx)
		rootNode := t.p.Load64(t.root + wrTreeRoot)
		if rootNode == 0 {
			return nil
		}
		// Descend remembering parent and grandparent links.
		var gparent, parent uint64
		node := rootNode
		for t.p.Load64(node+ctnTag) == ctInternal {
			gparent = parent
			parent = node
			if key&(1<<t.p.Load64(node+ctnA)) == 0 {
				node = t.p.Load64(node + ctnB)
			} else {
				node = t.p.Load64(node + ctnC)
			}
		}
		if t.p.Load64(node+ctnA) != key {
			return nil
		}
		removed = true
		switch {
		case parent == 0:
			// The leaf is the whole tree.
			if err := a.add(t.root, 16); err != nil {
				return err
			}
			t.p.Store64(t.root+wrTreeRoot, 0)
		default:
			// Replace the parent with the leaf's sibling.
			var sibling uint64
			if t.p.Load64(parent+ctnB) == node {
				sibling = t.p.Load64(parent + ctnC)
			} else {
				sibling = t.p.Load64(parent + ctnB)
			}
			if gparent == 0 {
				if err := a.add(t.root, 16); err != nil {
					return err
				}
				t.p.Store64(t.root+wrTreeRoot, sibling)
			} else {
				if !faultIs(t.fault, "ctree-skip-add-remove-link") {
					if err := a.add(gparent, ctnSize); err != nil {
						return err
					}
				}
				if t.p.Load64(gparent+ctnB) == parent {
					t.p.Store64(gparent+ctnB, sibling)
				} else {
					t.p.Store64(gparent+ctnC, sibling)
				}
			}
			if err := tx.Free(parent); err != nil {
				return err
			}
		}
		if err := tx.Free(node); err != nil {
			return err
		}
		if !faultIs(t.fault, "ctree-skip-add-count") {
			if err := a.add(t.root, 16); err != nil {
				return err
			}
		}
		t.p.Store64(t.root+wrCount, t.p.Load64(t.root+wrCount)-1)
		return nil
	})
	if err != nil {
		return err
	}
	if removed {
		t.bumpCached(-1)
	}
	return nil
}

// Count returns the transactional key count.
func (t *CTree) Count() (uint64, error) {
	return t.p.Load64(t.root + wrCount), nil
}

// Verify checks the radix invariant (each leaf is reachable along links
// consistent with its key bits), key uniqueness and both counters.
func (t *CTree) Verify() error {
	count := uint64(0)
	seen := map[uint64]bool{}
	var walk func(node uint64, depthBit int64) error
	walk = func(node uint64, parentBit int64) error {
		if node == 0 {
			return nil
		}
		switch t.p.Load64(node + ctnTag) {
		case ctLeaf:
			k := t.p.Load64(node + ctnA)
			if seen[k] {
				return fmt.Errorf("ctree: duplicate key %#x", k)
			}
			seen[k] = true
			t.p.Load64(node + ctnB)
			count++
			return nil
		case ctInternal:
			bit := int64(t.p.Load64(node + ctnA))
			if bit >= parentBit {
				return fmt.Errorf("ctree: bit order violated: %d under %d", bit, parentBit)
			}
			if err := walk(t.p.Load64(node+ctnB), bit); err != nil {
				return err
			}
			return walk(t.p.Load64(node+ctnC), bit)
		default:
			return fmt.Errorf("ctree: bad tag at 0x%x", node)
		}
	}
	if err := walk(t.p.Load64(t.root+wrTreeRoot), 64); err != nil {
		return err
	}
	if c := t.p.Load64(t.root + wrCount); c != count {
		return fmt.Errorf("ctree: count=%d but %d reachable leaves", c, count)
	}
	if cc := t.p.Load64(t.root + wrCachedCount); cc != count {
		return fmt.Errorf("ctree: cachedCount=%d but %d reachable leaves", cc, count)
	}
	return nil
}
