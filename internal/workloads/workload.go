// Package workloads implements the PM programs of the paper's evaluation
// (Table 4): the five PMDK-example-style micro benchmarks — B-Tree, C-Tree,
// RB-Tree, Hashmap-TX and Hashmap-Atomic — on top of the pmobj substrate,
// each with initialization, insert/remove/get, recovery and an invariant
// checker.
//
// Every workload carries a registry of named, individually injectable
// synthetic bugs reproducing the validation suite of Table 5 (cross-failure
// races, cross-failure semantic bugs, and performance bugs). A fault name
// is threaded through the Maker; the workload code consults it at the
// specific site the bug lives at.
package workloads

import (
	"errors"
	"fmt"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmobj"
)

// ErrNotInitialized indicates the pool exists but the workload's structure
// was never (completely) created — a well-defined state when a failure
// interrupts creation: the program starts over.
var ErrNotInitialized = errors.New("workloads: structure not initialized")

// Store is the uniform key-value interface the harness drives. Keys and
// values are non-zero uint64s.
type Store interface {
	// Insert adds or updates a key.
	Insert(key, value uint64) error
	// Remove deletes a key; removing an absent key is a no-op.
	Remove(key uint64) error
	// Get looks a key up.
	Get(key uint64) (value uint64, ok bool, err error)
	// Count returns the number of keys the structure believes it holds.
	Count() (uint64, error)
	// Verify walks the entire structure and checks its invariants,
	// including that Count matches the number of reachable keys.
	Verify() error
}

// Maker creates and opens one workload kind.
type Maker struct {
	// Name is the workload name as used in the paper ("B-Tree", ...).
	Name string
	// Create initializes the structure in the Ctx's fresh pool.
	Create func(c *core.Ctx, fault string) (Store, error)
	// Open opens an existing structure, running recovery. It is the
	// post-failure (and resumed pre-failure) entry point.
	Open func(c *core.Ctx, fault string) (Store, error)
}

// Key derives the i-th deterministic test key (Fibonacci hashing of the
// index; never zero).
func Key(i int) uint64 {
	return uint64(i+1)*0x9E3779B97F4A7C15 | 1
}

// Value derives the value stored for key k.
func Value(k uint64) uint64 { return k ^ 0xABCDEF }

// TargetConfig parameterizes DetectionTarget.
type TargetConfig struct {
	// InitSize is the number of insertions performed while initializing
	// the PM image, before failure injection starts (the artifact's
	// INITSIZE).
	InitSize int
	// TestSize is the number of insertions performed in the pre-failure
	// stage under failure injection (TESTSIZE).
	TestSize int
	// Removes optionally removes this many of the init keys during the
	// pre-failure stage, exercising delete paths.
	Removes int
	// Updates optionally re-inserts this many existing keys with new
	// values during the pre-failure stage, exercising update paths.
	Updates int
	// UpdateRounds repeats the Updates pass this many times (0 or 1 = one
	// pass). Every round re-stores the identical values, so from the second
	// round on the pre-failure execution revisits byte-identical PM states
	// — the long uniform store runs whose failure points crash-state
	// pruning collapses. The lever of the pruning ablation
	// (xfdetector -update-rounds).
	UpdateRounds int
	// Fault names the synthetic bug to inject ("" = correct program).
	Fault string
	// FaultInCreate moves structure creation from Setup into the
	// pre-failure stage so creation-time bugs see failure injection.
	FaultInCreate bool
	// PostOps controls the resumption work after recovery: one Get, one
	// Insert and a full Verify when true (the default used by the
	// harness); when false the post stage only opens and verifies.
	PostOps bool
}

// DetectionTarget assembles a core.Target that initializes the workload,
// runs cfg.TestSize insertions (and cfg.Removes removals) as the
// pre-failure stage, and recovers + verifies + resumes as the post-failure
// stage — the experiment setup of §6.1.
func DetectionTarget(m Maker, cfg TargetConfig) core.Target {
	doCreate := func(c *core.Ctx) error {
		st, err := m.Create(c, cfg.Fault)
		if err != nil {
			return err
		}
		for i := 0; i < cfg.InitSize; i++ {
			if err := st.Insert(Key(i), Value(Key(i))); err != nil {
				return fmt.Errorf("%s: init insert %d: %w", m.Name, i, err)
			}
		}
		return nil
	}
	mutate := func(c *core.Ctx) error {
		st, err := m.Open(c, cfg.Fault)
		if err != nil {
			return err
		}
		for i := 0; i < cfg.TestSize; i++ {
			k := Key(cfg.InitSize + i)
			if err := st.Insert(k, Value(k)); err != nil {
				return fmt.Errorf("%s: insert %d: %w", m.Name, i, err)
			}
		}
		rounds := cfg.UpdateRounds
		if rounds < 1 {
			rounds = 1
		}
		for r := 0; r < rounds; r++ {
			for i := 0; i < cfg.Updates && i < cfg.InitSize; i++ {
				k := Key(i)
				if err := st.Insert(k, Value(k)+uint64(i)+7); err != nil {
					return fmt.Errorf("%s: update round %d, %d: %w", m.Name, r, i, err)
				}
			}
		}
		for i := 0; i < cfg.Removes && i < cfg.InitSize; i++ {
			if err := st.Remove(Key(i)); err != nil {
				return fmt.Errorf("%s: remove %d: %w", m.Name, i, err)
			}
		}
		return nil
	}

	t := core.Target{Name: m.Name}
	if cfg.FaultInCreate {
		// Creation-time bugs need failure points during creation.
		t.Pre = func(c *core.Ctx) error {
			if err := doCreate(c); err != nil {
				return err
			}
			return mutate(c)
		}
	} else {
		t.Setup = doCreate
		t.Pre = mutate
	}
	t.Post = func(c *core.Ctx) error {
		st, err := m.Open(c, cfg.Fault)
		if errors.Is(err, pmobj.ErrNotAPool) || errors.Is(err, ErrNotInitialized) {
			// The failure hit before creation committed: the program
			// starts from scratch, which is a consistent outcome.
			return nil
		}
		if err != nil {
			return err
		}
		if cfg.PostOps {
			// Resumption: the interrupted work is redone, exactly like the
			// paper's "resume the previously preempted execution".
			k := Key(cfg.InitSize + cfg.TestSize)
			if _, _, err := st.Get(Key(0)); err != nil {
				return err
			}
			if err := st.Insert(k, Value(k)); err != nil {
				return err
			}
		}
		return st.Verify()
	}
	return t
}

// stats is the raw-store statistics block embedded in each workload's root
// object: fields maintained with low-level stores + persist barriers
// outside any transaction (several Table 5 races live in the omission of
// those barriers). Offsets are relative to the stats base.
const (
	statOps     = 0 // total mutations
	statLastKey = 8 // last key touched
	statsSize   = 16
)

// faultIs reports whether the configured fault matches name.
func faultIs(fault, name string) bool { return fault == name }
