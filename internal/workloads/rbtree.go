package workloads

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/pmobj"
)

// RBTree is a persistent red-black tree in the style of PMDK's rbtree
// example: full CLRS insertion and deletion with rotations and fixups, all
// node mutations undo-logged.
//
// Root object layout (128 bytes): as the other trees (treeRoot, count,
// cachedCount). Node layout (48 bytes):
//
//	+0  key   +8 val   +16 left   +24 right   +32 parent   +40 color
//
// Offset 0 is nil and is black by definition.
type RBTree struct {
	c     *core.Ctx
	po    *pmobj.Pool
	p     *pmem.Pool
	root  uint64
	fault string
}

const (
	rbKey    = 0
	rbVal    = 8
	rbLeft   = 16
	rbRight  = 24
	rbParent = 32
	rbColor  = 40
	rbSize   = 48

	rbBlack = 0
	rbRed   = 1
)

// RBTreeMaker builds RB-Tree stores.
var RBTreeMaker = Maker{
	Name: "RB-Tree",
	Create: func(c *core.Ctx, fault string) (Store, error) {
		po, err := pmobj.Create(c.Pool(), wrRootSize, nil)
		if err != nil {
			return nil, err
		}
		return &RBTree{c: c, po: po, p: c.Pool(), root: po.Root(), fault: fault}, nil
	},
	Open: func(c *core.Ctx, fault string) (Store, error) {
		po, err := pmobj.Open(c.Pool())
		if err != nil {
			return nil, err
		}
		t := &RBTree{c: c, po: po, p: c.Pool(), root: po.Root(), fault: fault}
		if err := t.recoverCachedCount(); err != nil {
			return nil, err
		}
		return t, nil
	},
}

func (t *RBTree) recoverCachedCount() error {
	if faultIs(t.fault, "rbt-naive-recovery") {
		return nil // BUG: trusts the possibly non-persisted cached count
	}
	n := t.walkCount(t.p.Load64(t.root + wrTreeRoot))
	t.p.Store64(t.root+wrCachedCount, n)
	t.p.Persist(t.root+wrCachedCount, 8)
	return nil
}

func (t *RBTree) walkCount(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return 1 + t.walkCount(t.left(n)) + t.walkCount(t.right(n))
}

func (t *RBTree) bumpCached(delta int64) {
	v := t.p.Load64(t.root + wrCachedCount)
	t.p.Store64(t.root+wrCachedCount, uint64(int64(v)+delta))
	t.p.Persist(t.root+wrCachedCount, 8)
}

func (t *RBTree) key(n uint64) uint64    { return t.p.Load64(n + rbKey) }
func (t *RBTree) left(n uint64) uint64   { return t.p.Load64(n + rbLeft) }
func (t *RBTree) right(n uint64) uint64  { return t.p.Load64(n + rbRight) }
func (t *RBTree) parent(n uint64) uint64 { return t.p.Load64(n + rbParent) }

func (t *RBTree) color(n uint64) uint64 {
	if n == 0 {
		return rbBlack
	}
	return t.p.Load64(n + rbColor)
}

func (t *RBTree) treeRoot() uint64 { return t.p.Load64(t.root + wrTreeRoot) }

func (t *RBTree) setTreeRoot(a *adder, n uint64) error {
	if !faultIs(t.fault, "rbt-skip-add-root") {
		if err := a.add(t.root, 16); err != nil {
			return err
		}
	}
	t.p.Store64(t.root+wrTreeRoot, n)
	return nil
}

// set writes one field of a node under undo protection.
func (t *RBTree) set(a *adder, n, field, v uint64) error {
	if err := a.add(n, rbSize); err != nil {
		return err
	}
	t.p.Store64(n+field, v)
	return nil
}

// setColorAt recolors n; the two fault parameters select the seeded
// skip-add sites in the insert and delete fixups.
func (t *RBTree) setColorAt(a *adder, n, color uint64, skip bool) error {
	if !skip {
		if err := a.add(n, rbSize); err != nil {
			return err
		}
	}
	t.p.Store64(n+rbColor, color)
	return nil
}

func (t *RBTree) rotateLeft(a *adder, x uint64) error {
	y := t.right(x)
	if err := a.add(x, rbSize); err != nil {
		return err
	}
	if err := a.add(y, rbSize); err != nil {
		return err
	}
	yl := t.left(y)
	t.p.Store64(x+rbRight, yl)
	if yl != 0 {
		if err := t.set(a, yl, rbParent, x); err != nil {
			return err
		}
	}
	xp := t.parent(x)
	t.p.Store64(y+rbParent, xp)
	if xp == 0 {
		if err := t.setTreeRoot(a, y); err != nil {
			return err
		}
	} else if t.left(xp) == x {
		if err := t.set(a, xp, rbLeft, y); err != nil {
			return err
		}
	} else {
		if err := t.set(a, xp, rbRight, y); err != nil {
			return err
		}
	}
	t.p.Store64(y+rbLeft, x)
	t.p.Store64(x+rbParent, y)
	return nil
}

func (t *RBTree) rotateRight(a *adder, x uint64) error {
	y := t.left(x)
	if err := a.add(x, rbSize); err != nil {
		return err
	}
	if err := a.add(y, rbSize); err != nil {
		return err
	}
	yr := t.right(y)
	t.p.Store64(x+rbLeft, yr)
	if yr != 0 {
		if err := t.set(a, yr, rbParent, x); err != nil {
			return err
		}
	}
	xp := t.parent(x)
	t.p.Store64(y+rbParent, xp)
	if xp == 0 {
		if err := t.setTreeRoot(a, y); err != nil {
			return err
		}
	} else if t.left(xp) == x {
		if err := t.set(a, xp, rbLeft, y); err != nil {
			return err
		}
	} else {
		if err := t.set(a, xp, rbRight, y); err != nil {
			return err
		}
	}
	t.p.Store64(y+rbRight, x)
	t.p.Store64(x+rbParent, y)
	return nil
}

// Insert adds or updates a key.
func (t *RBTree) Insert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("rbtree: zero key")
	}
	inserted := false
	err := t.po.Tx(func(tx *pmobj.Tx) error {
		a := newAdder(tx)
		var parent uint64
		node := t.treeRoot()
		for node != 0 {
			parent = node
			k := t.key(node)
			switch {
			case key == k:
				if err := a.add(node, rbSize); err != nil {
					return err
				}
				t.p.Store64(node+rbVal, value)
				return nil
			case key < k:
				node = t.left(node)
			default:
				node = t.right(node)
			}
		}
		z, err := tx.Alloc(rbSize)
		if err != nil {
			return err
		}
		t.p.Store64(z+rbKey, key)
		t.p.Store64(z+rbVal, value)
		t.p.Store64(z+rbParent, parent)
		t.p.Store64(z+rbColor, rbRed)
		if parent == 0 {
			if err := t.setTreeRoot(a, z); err != nil {
				return err
			}
		} else {
			field := uint64(rbLeft)
			if key > t.key(parent) {
				field = rbRight
			}
			if faultIs(t.fault, "rbt-skip-add-insert-link") {
				t.p.Store64(parent+field, z) // BUG: link without undo backup
			} else if err := t.set(a, parent, field, z); err != nil {
				return err
			}
		}
		if err := t.insertFixup(a, z); err != nil {
			return err
		}
		if !faultIs(t.fault, "rbt-skip-add-count") {
			if err := a.add(t.root, 16); err != nil {
				return err
			}
		}
		t.p.Store64(t.root+wrCount, t.p.Load64(t.root+wrCount)+1)
		inserted = true
		return nil
	})
	if err != nil {
		return err
	}
	if inserted {
		t.bumpCached(1)
	}
	if faultIs(t.fault, "rbt-extra-flush") {
		// BUG (performance): the commit already persisted the root object.
		t.p.Persist(t.root, 16)
	}
	if faultIs(t.fault, "rbt-raw-link-touch") {
		// BUG: a rotation link is re-applied with a raw store after
		// TX_END, with no writeback (the value is unchanged, so only the
		// persistence guarantee is lost).
		if n := t.treeRoot(); n != 0 {
			t.p.Store64(n+rbLeft, t.left(n))
		}
	}
	return nil
}

func (t *RBTree) insertFixup(a *adder, z uint64) error {
	skipColor := faultIs(t.fault, "rbt-skip-add-color")
	for t.color(t.parent(z)) == rbRed {
		zp := t.parent(z)
		zpp := t.parent(zp)
		if zp == t.left(zpp) {
			u := t.right(zpp) // uncle
			if t.color(u) == rbRed {
				if err := t.setColorAt(a, zp, rbBlack, false); err != nil {
					return err
				}
				if err := t.setColorAt(a, u, rbBlack, false); err != nil {
					return err
				}
				if err := t.setColorAt(a, zpp, rbRed, skipColor); err != nil {
					return err
				}
				z = zpp
				continue
			}
			if z == t.right(zp) {
				z = zp
				if err := t.rotateLeft(a, z); err != nil {
					return err
				}
				zp = t.parent(z)
				zpp = t.parent(zp)
			}
			if err := t.setColorAt(a, zp, rbBlack, false); err != nil {
				return err
			}
			if err := t.setColorAt(a, zpp, rbRed, false); err != nil {
				return err
			}
			if err := t.rotateRight(a, zpp); err != nil {
				return err
			}
		} else {
			u := t.left(zpp)
			if t.color(u) == rbRed {
				if err := t.setColorAt(a, zp, rbBlack, false); err != nil {
					return err
				}
				if err := t.setColorAt(a, u, rbBlack, false); err != nil {
					return err
				}
				if err := t.setColorAt(a, zpp, rbRed, skipColor); err != nil {
					return err
				}
				z = zpp
				continue
			}
			if z == t.left(zp) {
				z = zp
				if err := t.rotateRight(a, z); err != nil {
					return err
				}
				zp = t.parent(z)
				zpp = t.parent(zp)
			}
			if err := t.setColorAt(a, zp, rbBlack, false); err != nil {
				return err
			}
			if err := t.setColorAt(a, zpp, rbRed, false); err != nil {
				return err
			}
			if err := t.rotateLeft(a, zpp); err != nil {
				return err
			}
		}
	}
	r := t.treeRoot()
	if t.color(r) != rbBlack {
		return t.setColorAt(a, r, rbBlack, false)
	}
	return nil
}

// Get looks key up.
func (t *RBTree) Get(key uint64) (uint64, bool, error) {
	node := t.treeRoot()
	for node != 0 {
		k := t.key(node)
		switch {
		case key == k:
			return t.p.Load64(node + rbVal), true, nil
		case key < k:
			node = t.left(node)
		default:
			node = t.right(node)
		}
	}
	return 0, false, nil
}

// transplant replaces subtree u with subtree v (v may be 0).
func (t *RBTree) transplant(a *adder, u, v uint64) error {
	up := t.parent(u)
	if up == 0 {
		if err := t.setTreeRoot(a, v); err != nil {
			return err
		}
	} else {
		field := uint64(rbLeft)
		if t.right(up) == u {
			field = rbRight
		}
		if faultIs(t.fault, "rbt-skip-add-transplant") {
			t.p.Store64(up+field, v) // BUG: link without undo backup
		} else if err := t.set(a, up, field, v); err != nil {
			return err
		}
	}
	if v != 0 {
		if err := t.set(a, v, rbParent, up); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes key if present (CLRS delete with explicit fixup parent
// tracking, since nil is a real 0 offset here, not a sentinel node).
func (t *RBTree) Remove(key uint64) error {
	removed := false
	err := t.po.Tx(func(tx *pmobj.Tx) error {
		a := newAdder(tx)
		z := t.treeRoot()
		for z != 0 && t.key(z) != key {
			if key < t.key(z) {
				z = t.left(z)
			} else {
				z = t.right(z)
			}
		}
		if z == 0 {
			return nil
		}
		removed = true

		y := z
		yColor := t.color(y)
		var x, xParent uint64
		switch {
		case t.left(z) == 0:
			x, xParent = t.right(z), t.parent(z)
			if err := t.transplant(a, z, x); err != nil {
				return err
			}
		case t.right(z) == 0:
			x, xParent = t.left(z), t.parent(z)
			if err := t.transplant(a, z, x); err != nil {
				return err
			}
		default:
			y = t.right(z)
			for t.left(y) != 0 {
				y = t.left(y)
			}
			yColor = t.color(y)
			x = t.right(y)
			if t.parent(y) == z {
				xParent = y
				if x != 0 {
					if err := t.set(a, x, rbParent, y); err != nil {
						return err
					}
				}
			} else {
				xParent = t.parent(y)
				if err := t.transplant(a, y, x); err != nil {
					return err
				}
				if err := t.set(a, y, rbRight, t.right(z)); err != nil {
					return err
				}
				if err := t.set(a, t.right(y), rbParent, y); err != nil {
					return err
				}
			}
			if err := t.transplant(a, z, y); err != nil {
				return err
			}
			if err := t.set(a, y, rbLeft, t.left(z)); err != nil {
				return err
			}
			if err := t.set(a, t.left(y), rbParent, y); err != nil {
				return err
			}
			if err := t.set(a, y, rbColor, t.color(z)); err != nil {
				return err
			}
		}
		if yColor == rbBlack {
			if err := t.deleteFixup(a, x, xParent); err != nil {
				return err
			}
		}
		if err := tx.Free(z); err != nil {
			return err
		}
		if !faultIs(t.fault, "rbt-skip-add-count") {
			if err := a.add(t.root, 16); err != nil {
				return err
			}
		}
		t.p.Store64(t.root+wrCount, t.p.Load64(t.root+wrCount)-1)
		return nil
	})
	if err != nil {
		return err
	}
	if removed {
		t.bumpCached(-1)
		if faultIs(t.fault, "rbt-raw-recolor") {
			// BUG: a fixup recolor is re-applied with a raw store after
			// TX_END, with no writeback.
			if n := t.treeRoot(); n != 0 {
				t.p.Store64(n+rbColor, t.color(n))
			}
		}
	}
	return nil
}

func (t *RBTree) deleteFixup(a *adder, x, xParent uint64) error {
	skip := false
	for x != t.treeRoot() && t.color(x) == rbBlack {
		if x == t.left(xParent) {
			w := t.right(xParent)
			if t.color(w) == rbRed {
				if err := t.setColorAt(a, w, rbBlack, false); err != nil {
					return err
				}
				if err := t.setColorAt(a, xParent, rbRed, false); err != nil {
					return err
				}
				if err := t.rotateLeft(a, xParent); err != nil {
					return err
				}
				w = t.right(xParent)
			}
			if t.color(t.left(w)) == rbBlack && t.color(t.right(w)) == rbBlack {
				if err := t.setColorAt(a, w, rbRed, skip); err != nil {
					return err
				}
				x, xParent = xParent, t.parent(xParent)
				continue
			}
			if t.color(t.right(w)) == rbBlack {
				if err := t.setColorAt(a, t.left(w), rbBlack, false); err != nil {
					return err
				}
				if err := t.setColorAt(a, w, rbRed, false); err != nil {
					return err
				}
				if err := t.rotateRight(a, w); err != nil {
					return err
				}
				w = t.right(xParent)
			}
			if err := t.setColorAt(a, w, t.color(xParent), false); err != nil {
				return err
			}
			if err := t.setColorAt(a, xParent, rbBlack, false); err != nil {
				return err
			}
			if r := t.right(w); r != 0 {
				if err := t.setColorAt(a, r, rbBlack, false); err != nil {
					return err
				}
			}
			if err := t.rotateLeft(a, xParent); err != nil {
				return err
			}
			x = t.treeRoot()
		} else {
			w := t.left(xParent)
			if t.color(w) == rbRed {
				if err := t.setColorAt(a, w, rbBlack, false); err != nil {
					return err
				}
				if err := t.setColorAt(a, xParent, rbRed, false); err != nil {
					return err
				}
				if err := t.rotateRight(a, xParent); err != nil {
					return err
				}
				w = t.left(xParent)
			}
			if t.color(t.left(w)) == rbBlack && t.color(t.right(w)) == rbBlack {
				if err := t.setColorAt(a, w, rbRed, skip); err != nil {
					return err
				}
				x, xParent = xParent, t.parent(xParent)
				continue
			}
			if t.color(t.left(w)) == rbBlack {
				if err := t.setColorAt(a, t.right(w), rbBlack, false); err != nil {
					return err
				}
				if err := t.setColorAt(a, w, rbRed, false); err != nil {
					return err
				}
				if err := t.rotateLeft(a, w); err != nil {
					return err
				}
				w = t.left(xParent)
			}
			if err := t.setColorAt(a, w, t.color(xParent), false); err != nil {
				return err
			}
			if err := t.setColorAt(a, xParent, rbBlack, false); err != nil {
				return err
			}
			if l := t.left(w); l != 0 {
				if err := t.setColorAt(a, l, rbBlack, false); err != nil {
					return err
				}
			}
			if err := t.rotateRight(a, xParent); err != nil {
				return err
			}
			x = t.treeRoot()
		}
	}
	if x != 0 && t.color(x) != rbBlack {
		return t.setColorAt(a, x, rbBlack, false)
	}
	return nil
}

// Count returns the transactional key count.
func (t *RBTree) Count() (uint64, error) {
	return t.p.Load64(t.root + wrCount), nil
}

// Verify checks the binary-search-tree order, the red-black properties
// (no red-red edge, equal black height), parent-pointer consistency and
// both counters.
func (t *RBTree) Verify() error {
	count := uint64(0)
	var lastKey uint64
	var check func(n, parent uint64) (blackHeight int, err error)
	check = func(n, parent uint64) (int, error) {
		if n == 0 {
			return 1, nil
		}
		if t.parent(n) != parent {
			return 0, fmt.Errorf("rbtree: node %#x parent=%#x, want %#x", n, t.parent(n), parent)
		}
		if t.color(n) == rbRed && t.color(parent) == rbRed {
			return 0, fmt.Errorf("rbtree: red-red edge at %#x", n)
		}
		lh, err := check(t.left(n), n)
		if err != nil {
			return 0, err
		}
		k := t.key(n)
		if count > 0 && k <= lastKey {
			return 0, fmt.Errorf("rbtree: order violated at key %#x", k)
		}
		lastKey = k
		count++
		t.p.Load64(n + rbVal)
		rh, err := check(t.right(n), n)
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("rbtree: black height mismatch at %#x: %d != %d", n, lh, rh)
		}
		if t.color(n) == rbBlack {
			lh++
		}
		return lh, nil
	}
	r := t.treeRoot()
	if r != 0 && t.color(r) != rbBlack {
		return fmt.Errorf("rbtree: red root")
	}
	if _, err := check(r, 0); err != nil {
		return err
	}
	if c := t.p.Load64(t.root + wrCount); c != count {
		return fmt.Errorf("rbtree: count=%d but %d reachable nodes", c, count)
	}
	if cc := t.p.Load64(t.root + wrCachedCount); cc != count {
		return fmt.Errorf("rbtree: cachedCount=%d but %d reachable nodes", cc, count)
	}
	return nil
}
