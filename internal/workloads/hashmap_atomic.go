package workloads

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/pmobj"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// HashmapAtomic is a persistent chained hash map built on low-level
// primitives in the style of PMDK's hashmap_atomic example: no
// transactions, every update made crash-consistent by ordering individual
// persists, with a count_dirty commit variable guarding the element count —
// the protocol of the paper's Fig. 14a and the host of its Bug 1 and Bug 2.
//
// The pmobj root (16 bytes) holds only the offset of the hashmap object,
// which is allocated with the atomic allocator (as PMDK's example does) and
// laid out across three cache lines so the commit variable and the count
// it governs can be written back independently:
//
//	+0   nbuckets     +8  bucketsOff   +16 seed   +24 hashA   (line 0)
//	+64  count                                                (line 1)
//	+128 countDirty                                           (line 2)
//
// Insert protocol: countDirty=1 (persist) → construct entry (persist) →
// link bucket (persist) → count++ (persist) → countDirty=0 (persist).
// Recovery: if countDirty != 0, walk the buckets (an intentional, annotated
// benign read of racy links), scrub every link by rewriting and persisting
// the observed value, recompute count, and clear countDirty.
type HashmapAtomic struct {
	c     *core.Ctx
	po    *pmobj.Pool
	p     *pmem.Pool
	hm    uint64 // offset of the hashmap object
	fault string
}

const (
	hmaNBuckets = 0
	hmaDir      = 8
	hmaSeed     = 16
	hmaHashA    = 24
	hmaCount    = 64
	hmaDirty    = 128
	hmaSize     = 136

	hmaEntKey  = 0
	hmaEntVal  = 8
	hmaEntNext = 16
	hmaEntSize = 32

	hmaBuckets = 8
)

// HashmapAtomicMaker builds Hashmap-Atomic stores.
var HashmapAtomicMaker = Maker{
	Name:   "Hashmap-Atomic",
	Create: createHashmapAtomic,
	Open:   openHashmapAtomic,
}

func createHashmapAtomic(c *core.Ctx, fault string) (Store, error) {
	po, err := pmobj.Create(c.Pool(), 16, nil)
	if err != nil {
		return nil, err
	}
	h := &HashmapAtomic{c: c, po: po, p: c.Pool(), fault: fault}
	p := c.Pool()

	// The root's hashmap pointer doubles as the creation commit variable:
	// recovery reads it to decide whether the structure exists, so that
	// read is an intentional benign cross-failure race.
	c.AddCommitVar(po.Root(), 8)

	// The bucket directory first: correct creation zeroes and persists it
	// (the seeded bug leaves it uninitialized, as an allocator that does
	// not zero would — the scenario behind the paper's Bug 2).
	dir, err := po.AllocAtomic(hmaBuckets*8, func(off uint64) {
		if faultIs(fault, "hma-skip-buckets-zero") {
			return // BUG: trusts the allocator to have zeroed the memory
		}
		p.Memset(off, 0, hmaBuckets*8)
		p.Persist(off, hmaBuckets*8)
	})
	if err != nil {
		return nil, err
	}

	hm, err := po.AllocAtomic(hmaSize, func(off uint64) {
		// Expose the crash-consistency semantics to the detector before
		// the first write to the commit variable (Table 2 annotations —
		// the only annotation the paper needed for this workload).
		c.AddCommitRange(off+hmaDirty, 8, off+hmaCount, 8)
		p.Store64(off+hmaNBuckets, hmaBuckets)
		p.Store64(off+hmaDir, dir)
		p.Store64(off+hmaSeed, 0x5EED5EED)
		p.Store64(off+hmaHashA, 0x9E3779B97F4A7C15)
		p.Store64(off+hmaCount, 0)
		if faultIs(fault, "hma-bug1-seed-no-persist") {
			// BUG 1 (paper Fig. 14a): the hash parameters are part of the
			// metadata but are not persisted by the constructor.
			p.Persist(off+hmaCount, 8)
		} else if faultIs(fault, "hma-bug2-count-uninit") {
			// BUG 2 (paper Fig. 14a): count is never initialized — the
			// allocator happened to zero the memory, but that is not
			// guaranteed.
			p.Persist(off, 32)
		} else {
			p.CLWB(off, 32)
			p.CLWB(off+hmaCount, 8)
			p.SFence()
		}
		// The commit variable is initialized with its own barrier,
		// ordered after the count it governs (Eq. 3).
		p.Store64(off+hmaDirty, 0)
		p.Persist(off+hmaDirty, 8)
	})
	if err != nil {
		return nil, err
	}
	h.hm = hm

	// Publish the hashmap through the root. Correct code persists the
	// object fully (done by the constructor) before linking it.
	if faultIs(fault, "hma-link-before-construct") {
		// BUG: the root pointer is persisted, but nothing ordered the
		// object's construction before it; rewrite one field afterwards
		// without a barrier to recreate the window.
		p.Store64(po.Root(), hm)
		p.Persist(po.Root(), 8)
		p.Store64(hm+hmaSeed, 0x5EED5EED) // dangling unpersisted write
	} else {
		p.Store64(po.Root(), hm)
		p.Persist(po.Root(), 8)
	}
	return h, nil
}

func openHashmapAtomic(c *core.Ctx, fault string) (Store, error) {
	po, err := pmobj.Open(c.Pool())
	if err != nil {
		return nil, err
	}
	p := c.Pool()
	h := &HashmapAtomic{c: c, po: po, p: p, fault: fault}
	c.AddCommitVar(po.Root(), 8)
	h.hm = p.Load64(po.Root())
	if h.hm == 0 {
		return nil, ErrNotInitialized
	}
	// Re-announce the commit variable (idempotent) so recovery reads of
	// countDirty are benign.
	c.AddCommitRange(h.hm+hmaDirty, 8, h.hm+hmaCount, 8)
	if err := h.recover(); err != nil {
		return nil, err
	}
	return h, nil
}

// recover re-establishes count consistency after a failure: if the commit
// variable says an update was in flight, the bucket links are scrubbed
// (read under a skip-detection annotation — the intentional benign race of
// recovery — then rewritten and persisted) and the count is recomputed,
// the Fig. 1 recover_alt pattern.
func (h *HashmapAtomic) recover() error {
	// Recovery uses the documented convention — 1 means in flight. The
	// inverted-protocol fault writes the opposite values on the update
	// side, so recovery then skips exactly the states that needed
	// scrubbing (the Fig. 2 pattern: the writer, not the reader, is wrong).
	if h.p.Load64(h.hm+hmaDirty) != 1 {
		return nil
	}
	if faultIs(h.fault, "hma-recovery-skip-scrub") {
		// BUG (post-failure stage): recovery clears the flag without
		// re-establishing the links and count it guards.
		h.p.Store64(h.hm+hmaDirty, 0)
		h.p.Persist(h.hm+hmaDirty, 8)
		return nil
	}
	p := h.p
	dir := p.Load64(h.hm + hmaDir)
	nb := p.Load64(h.hm + hmaNBuckets)
	if nb == 0 || nb > 1<<20 {
		return fmt.Errorf("hashmap-atomic: implausible bucket count %d", nb)
	}
	n := uint64(0)
	for b := uint64(0); b < nb; b++ {
		slot := dir + 8*b
		h.c.SkipDetectionBegin(true, trace.BothStages)
		e := p.Load64(slot)
		h.c.SkipDetectionEnd(true, trace.BothStages)
		p.Store64(slot, e) // scrub: commit the observed link
		p.Persist(slot, 8)
		for e != 0 {
			n++
			if n > 1<<22 {
				return fmt.Errorf("hashmap-atomic: chain cycle suspected")
			}
			// Scrub the whole entry: an in-flight insert or update may
			// have left any field not-guaranteed-persisted.
			h.c.SkipDetectionBegin(true, trace.BothStages)
			key := p.Load64(e + hmaEntKey)
			val := p.Load64(e + hmaEntVal)
			next := p.Load64(e + hmaEntNext)
			h.c.SkipDetectionEnd(true, trace.BothStages)
			p.Store64(e+hmaEntKey, key)
			p.Store64(e+hmaEntVal, val)
			p.Store64(e+hmaEntNext, next)
			p.Persist(e, hmaEntSize)
			e = next
		}
	}
	p.Store64(h.hm+hmaCount, n)
	p.Persist(h.hm+hmaCount, 8)
	p.Store64(h.hm+hmaDirty, 0)
	p.Persist(h.hm+hmaDirty, 8)
	return nil
}

// dirtyValue returns the flag value the update side writes for "update in
// flight". The inverted-protocol fault swaps the writer's values,
// recreating the Fig. 2 bug (recovery keeps the documented convention).
func (h *HashmapAtomic) dirtyValue() uint64 {
	if faultIs(h.fault, "hma-sem-inverted-dirty") {
		return 0 // BUG: the commit variable is written with inverted values
	}
	return 1
}

func (h *HashmapAtomic) bucket(key uint64) uint64 {
	nb := h.p.Load64(h.hm + hmaNBuckets)
	a := h.p.Load64(h.hm + hmaHashA)
	seed := h.p.Load64(h.hm + hmaSeed)
	x := key*a + seed
	x ^= x >> 29
	return x % nb
}

func (h *HashmapAtomic) setDirty(inFlight bool) {
	v := h.dirtyValue()
	if !inFlight {
		v = 1 - v
	}
	h.p.Store64(h.hm+hmaDirty, v)
}

// Insert adds or updates a key using the count_dirty protocol.
func (h *HashmapAtomic) Insert(key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("hashmap-atomic: zero key")
	}
	p := h.p
	dir := p.Load64(h.hm + hmaDir)
	slot := dir + 8*h.bucket(key)

	// Update in place if present — still under the dirty window, so that
	// a failure between the value store and its writeback is scrubbed.
	for e := p.Load64(slot); e != 0; e = p.Load64(e + hmaEntNext) {
		if p.Load64(e+hmaEntKey) == key {
			h.setDirty(true)
			p.Persist(h.hm+hmaDirty, 8)
			p.Store64(e+hmaEntVal, value)
			if !faultIs(h.fault, "hma-update-val-no-persist") {
				p.Persist(e+hmaEntVal, 8)
			}
			h.setDirty(false)
			p.Persist(h.hm+hmaDirty, 8)
			return nil
		}
	}

	if faultIs(h.fault, "hma-sem-count-before-dirty") {
		// BUG (semantic): count is updated outside the commit window.
		p.Store64(h.hm+hmaCount, p.Load64(h.hm+hmaCount)+1)
		p.Persist(h.hm+hmaCount, 8)
	}

	h.setDirty(true)
	if !faultIs(h.fault, "hma-sem-dirty-set-with-count") {
		p.Persist(h.hm+hmaDirty, 8)
	}

	head := p.Load64(slot)
	e, err := h.po.AllocAtomic(hmaEntSize, func(off uint64) {
		p.Store64(off+hmaEntKey, key)
		p.Store64(off+hmaEntVal, value)
		if faultIs(h.fault, "hma-skip-entry-persist") {
			p.Store64(off+hmaEntNext, head) // BUG: nothing is written back
		} else {
			// Batched-drain construction, as PMDK's flush/drain split
			// encourages: write the key and value back, link the chain
			// after the writeback — the entry line is now mixed
			// writeback-pending/modified at the drain — and persist the
			// link with its own barrier. Failures inside this window are
			// scrubbed by recovery (the entry is under the dirty flag).
			p.CLWB(off, hmaEntSize)
			p.Store64(off+hmaEntNext, head)
			p.SFence()
			p.Persist(off+hmaEntNext, 8)
		}
		if faultIs(h.fault, "hma-double-entry-persist") {
			// BUG (performance): every field was just persisted above.
			p.Persist(off, hmaEntSize)
		}
	})
	if err != nil {
		return err
	}

	p.Store64(slot, e)
	if !faultIs(h.fault, "hma-skip-slot-persist") {
		p.Persist(slot, 8)
	}
	if faultIs(h.fault, "hma-redundant-slot-flush") {
		// BUG (performance): the slot line is already persisted.
		p.Persist(slot, 8)
	}

	if !faultIs(h.fault, "hma-sem-count-before-dirty") {
		p.Store64(h.hm+hmaCount, p.Load64(h.hm+hmaCount)+1)
		switch {
		case faultIs(h.fault, "hma-sem-dirty-clear-early"):
			// BUG (semantic): a single barrier persists the count and the
			// commit write together, so neither is ordered before the
			// other (the Fig. 11 F2 situation).
			h.setDirty(false)
			p.CLWB(h.hm+hmaCount, 8)
			p.CLWB(h.hm+hmaDirty, 8)
			p.SFence()
			return nil
		case faultIs(h.fault, "hma-skip-count-persist"):
			// BUG: the count is never written back.
		default:
			p.Persist(h.hm+hmaCount, 8)
		}
	}
	h.setDirty(false)
	p.Persist(h.hm+hmaDirty, 8)
	if faultIs(h.fault, "hma-val-after-publish") {
		// BUG: the value is "touched up" after the commit protocol
		// completed, with no writeback.
		p.Store64(e+hmaEntVal, value)
	}
	if faultIs(h.fault, "hma-next-after-publish") {
		// BUG: the link is re-written after the commit protocol completed,
		// with no writeback.
		p.Store64(e+hmaEntNext, head)
	}
	return nil
}

// Get looks key up.
func (h *HashmapAtomic) Get(key uint64) (uint64, bool, error) {
	p := h.p
	dir := p.Load64(h.hm + hmaDir)
	for e := p.Load64(dir + 8*h.bucket(key)); e != 0; e = p.Load64(e + hmaEntNext) {
		if p.Load64(e+hmaEntKey) == key {
			return p.Load64(e + hmaEntVal), true, nil
		}
	}
	return 0, false, nil
}

// Remove deletes key if present, unlinking under the count_dirty protocol.
func (h *HashmapAtomic) Remove(key uint64) error {
	p := h.p
	dir := p.Load64(h.hm + hmaDir)
	slot := dir + 8*h.bucket(key)
	prev := uint64(0)
	e := p.Load64(slot)
	for e != 0 && p.Load64(e+hmaEntKey) != key {
		prev = e
		e = p.Load64(e + hmaEntNext)
	}
	if e == 0 {
		return nil
	}
	h.setDirty(true)
	p.Persist(h.hm+hmaDirty, 8)

	next := p.Load64(e + hmaEntNext)
	if prev == 0 {
		p.Store64(slot, next)
		if !faultIs(h.fault, "hma-skip-head-unlink-persist") {
			p.Persist(slot, 8)
		}
	} else {
		p.Store64(prev+hmaEntNext, next)
		if !faultIs(h.fault, "hma-skip-unlink-persist") {
			p.Persist(prev+hmaEntNext, 8)
		}
	}

	p.Store64(h.hm+hmaCount, p.Load64(h.hm+hmaCount)-1)
	p.Persist(h.hm+hmaCount, 8)
	h.setDirty(false)
	p.Persist(h.hm+hmaDirty, 8)

	return h.po.FreeAtomic(e)
}

// Count returns the guarded element count.
func (h *HashmapAtomic) Count() (uint64, error) {
	return h.p.Load64(h.hm + hmaCount), nil
}

// Verify checks bucket routing, uniqueness and the count.
func (h *HashmapAtomic) Verify() error {
	p := h.p
	dir := p.Load64(h.hm + hmaDir)
	nb := p.Load64(h.hm + hmaNBuckets)
	if nb == 0 {
		return fmt.Errorf("hashmap-atomic: no buckets")
	}
	seen := map[uint64]bool{}
	n := uint64(0)
	for b := uint64(0); b < nb; b++ {
		for e := p.Load64(dir + 8*b); e != 0; e = p.Load64(e + hmaEntNext) {
			k := p.Load64(e + hmaEntKey)
			if seen[k] {
				return fmt.Errorf("hashmap-atomic: duplicate key %#x", k)
			}
			seen[k] = true
			if h.bucket(k) != b {
				return fmt.Errorf("hashmap-atomic: key %#x in bucket %d, want %d", k, b, h.bucket(k))
			}
			p.Load64(e + hmaEntVal)
			n++
			if n > 1<<22 {
				return fmt.Errorf("hashmap-atomic: chain cycle suspected")
			}
		}
	}
	if c := p.Load64(h.hm + hmaCount); c != n {
		return fmt.Errorf("hashmap-atomic: count=%d but %d reachable entries", c, n)
	}
	return nil
}
