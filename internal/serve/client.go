package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/pmemgo/xfdetector/internal/core"
)

// Client speaks the daemon's HTTP/JSON API. The zero HTTP client is fine;
// the wire format is small JSON plus raw JSONL chunks.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// do issues one request and decodes a JSON response into out (when
// non-nil). 409 maps to ErrLeaseGone, 204 to a nil result.
func (c *Client) do(method, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequest(method, strings.TrimRight(c.BaseURL, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusConflict:
		return ErrLeaseGone
	case resp.StatusCode == http.StatusNoContent:
		return errNoContent
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// errNoContent is internal: a 204 lease poll (nothing schedulable).
var errNoContent = fmt.Errorf("no content")

func (c *Client) postJSON(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do("POST", path, "application/json", body, out)
}

// Submit registers a campaign and returns its ID.
func (c *Client) Submit(spec CampaignSpec) (string, error) {
	var resp struct {
		ID string `json:"id"`
	}
	if err := c.postJSON("/campaigns", spec, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// Status fetches every campaign's live status.
func (c *Client) Status() ([]CampaignStatus, error) {
	var resp struct {
		Campaigns []CampaignStatus `json:"campaigns"`
	}
	if err := c.do("GET", "/status", "", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Campaigns, nil
}

// Campaign fetches one campaign's live status.
func (c *Client) Campaign(id string) (CampaignStatus, error) {
	var st CampaignStatus
	err := c.do("GET", "/campaigns/"+id, "", nil, &st)
	return st, err
}

// Acquire polls for a lease, advertising the worker's capability tags;
// nil means nothing is schedulable right now.
func (c *Client) Acquire(worker string, caps ...string) (*LeaseGrant, error) {
	var grant LeaseGrant
	err := c.postJSON("/lease", map[string]any{"worker": worker, "caps": caps}, &grant)
	if err == errNoContent {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return &grant, nil
}

// Claim files a crash-state class claim on the lease.
func (c *Client) Claim(leaseID string, fingerprint uint64) (ClaimReply, error) {
	var reply ClaimReply
	err := c.postJSON("/leases/"+leaseID+"/claim", map[string]any{"fpr": fingerprint}, &reply)
	return reply, err
}

// Resolve publishes a class representative's outcome on the lease.
func (c *Client) Resolve(leaseID string, fingerprint uint64, clean bool, reports []core.Report) error {
	return c.postJSON("/leases/"+leaseID+"/resolve",
		map[string]any{"fpr": fingerprint, "clean": clean, "reports": reports}, nil)
}

// SendLines streams a chunk of checkpoint JSONL (newline-terminated) to
// the lease; the send doubles as a heartbeat.
func (c *Client) SendLines(leaseID string, chunk []byte) error {
	return c.do("POST", "/leases/"+leaseID+"/lines", "application/x-ndjson", chunk, nil)
}

// FetchArtifact downloads the lease's campaign artifact (raw XFDR bytes)
// into dst. The download doubles as a heartbeat.
func (c *Client) FetchArtifact(leaseID string, dst io.Writer) error {
	req, err := http.NewRequest("GET", strings.TrimRight(c.BaseURL, "/")+"/leases/"+leaseID+"/artifact", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusConflict:
		return ErrLeaseGone
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET artifact: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	_, err = io.Copy(dst, resp.Body)
	return err
}

// Heartbeat renews the lease deadline without sending lines.
func (c *Client) Heartbeat(leaseID string) error {
	return c.postJSON("/leases/"+leaseID+"/heartbeat", struct{}{}, nil)
}

// Finish resolves the lease with the shard's exit code, or releases it
// for rescheduling (released=true) on worker-initiated teardown.
func (c *Client) Finish(leaseID string, code int, released bool) error {
	return c.postJSON("/leases/"+leaseID+"/done", map[string]any{"code": code, "released": released}, nil)
}

// WaitDone polls until the campaign leaves the running state, reporting
// progress through onChange (may be nil) whenever coverage advances.
func (c *Client) WaitDone(ctx context.Context, id string, poll time.Duration, onChange func(CampaignStatus)) (CampaignStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	lastCovered := -1
	for {
		st, err := c.Campaign(id)
		if err != nil {
			return CampaignStatus{}, err
		}
		if onChange != nil && st.Covered != lastCovered {
			lastCovered = st.Covered
			onChange(st)
		}
		if st.State != campaignRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}
