// Package serve turns the xfdetector CLI into a distributed campaign
// service: a daemon (-serve) accepts campaign submissions over an
// HTTP/JSON API, splits each into per-shard leases, and schedules the
// leases onto registered workers (-worker); every worker runs the
// existing shard path (-shards N -shard-index i -checkpoint -) and
// streams the shard's checkpoint JSONL lines back over its lease, which
// the daemon appends to per-shard files and merges online with live
// coverage accounting. Leases carry heartbeat deadlines: a worker that
// goes silent has its lease expired and the shard rescheduled with
// -resume against the daemon-held checkpoint — the crash-respawn
// semantics the -spawn orchestrator implements locally, generalized over
// the network.
package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/pmemgo/xfdetector/internal/ckpt"
	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/vcache"
)

// CampaignSpec is a submission: the workload/engine argument vector every
// shard shares, and how many shards to split the campaign into. PoolFile
// requests file-backed PM pools: the daemon lays a per-shard pool file
// under the campaign directory and only leases the campaign's shards to
// workers advertising the "file-backed" capability tag.
type CampaignSpec struct {
	Args     []string `json:"args"`
	Shards   int      `json:"shards"`
	PoolFile bool     `json:"pool_file,omitempty"`
}

// CapFileBacked is the worker capability tag for file-backed pool support
// (pmem.FileBackend is mmap/msync-based and linux-only); workers advertise
// their tags on every lease poll.
const CapFileBacked = "file-backed"

// LeaseGrant is what a worker receives for one shard: the full child
// argument vector (the daemon owns the shard layout; the worker execs it
// verbatim), and — for a rescheduled shard — the daemon-held checkpoint
// to pipe into the child's stdin alongside -resume.
type LeaseGrant struct {
	Lease      string   `json:"lease"`
	Campaign   string   `json:"campaign"`
	Shard      int      `json:"shard"`
	Shards     int      `json:"shards"`
	Args       []string `json:"args"`
	Resume     bool     `json:"resume"`
	Checkpoint string   `json:"checkpoint,omitempty"`
	// Artifact reports that the campaign has a recorded pre-failure
	// artifact: the worker fetches it over GET /leases/{id}/artifact and
	// runs the shard child with -from-record instead of a live pre-failure
	// stage.
	Artifact bool `json:"artifact,omitempty"`
}

// shard lease/state machine:
//
//	pending ──acquire──▶ leased ──finish 0/1/3──▶ done
//	   ▲                    │
//	   │   expiry / crash / release (attempts left)
//	   └────────────────────┘            resume=true
//
// A shard that exhausts its attempts is finalized with exit 3 (the
// -spawn orchestrator's giving-up semantics); the campaign completes
// Incomplete through the merge's coverage check.
const (
	shardPending = "pending"
	shardLeased  = "leased"
	shardDone    = "done"
)

type shardState struct {
	index    int
	state    string
	attempts int
	resume   bool
	exitCode int
	gaveUp   bool
	lines    int
	worker   string
	path     string // daemon-held checkpoint file
	lease    string // active lease ID when leased
}

const (
	campaignRunning = "running"
	campaignDone    = "done"
	campaignFailed  = "failed"
)

type campaign struct {
	id      string
	spec    CampaignSpec
	dir     string
	shards  []*shardState
	merger  *ckpt.Merger
	state   string
	failure string
	result  *core.Result
	// registry is the campaign's cross-shard crash-state class table;
	// shard children claim classes over the lease API (Claim/Resolve) so
	// each class's representative post-runs on exactly one shard. identity
	// keys the daemon's cross-campaign verdict cache; noCache opts the
	// campaign out of it (-no-verdict-cache in the submitted args).
	// cacheHits counts claims answered from the on-disk cache.
	registry  *core.ClassRegistry
	identity  uint64
	noCache   bool
	cacheHits int
	// recording is true while the daemon's record-once pass runs; the
	// campaign's shards are not leased until it finishes. artifact is the
	// recorded pre-failure artifact every shard replays ("" after a failed
	// or skipped recording — shards then run the pre-failure stage live).
	recording bool
	artifact  string
}

type lease struct {
	id       string
	c        *campaign
	sh       *shardState
	worker   string
	deadline time.Time
}

// Server is the campaign daemon's state: campaigns in submission order, a
// lease table, and the per-campaign online mergers. It is driven by the
// HTTP handlers (Handler) but fully usable in-process for tests.
type Server struct {
	// Workdir owns the per-campaign directories (c<N>/shard<i>.ckpt).
	Workdir string
	// LeaseTTL is the heartbeat deadline: a lease not renewed (by lines,
	// a heartbeat, or completion) within it is expired and its shard
	// rescheduled.
	LeaseTTL time.Duration
	// MaxAttempts bounds the lease chain per shard: the initial grant
	// plus the crash recoveries, mirroring the -spawn orchestrator.
	MaxAttempts int
	// Logf receives scheduler events; nil logs to stderr.
	Logf func(format string, args ...any)
	// Cache is the daemon's cross-campaign verdict cache (nil disables
	// it): clean class verdicts resolved over any campaign's leases are
	// persisted keyed by (campaign argv identity, crash-state fingerprint)
	// and answer Claim calls from later campaigns with the same argv.
	Cache *vcache.Cache
	// Record, when non-nil, is the record-once launcher: it runs the
	// campaign's deterministic pre-failure pass (the CLI execs itself with
	// -record) and returns the artifact path. Submissions carrying
	// -no-fast-forward skip it. Recording happens off the scheduler lock;
	// a recording campaign's shards stay unleased until it resolves, and a
	// failed recording falls back to live pre-failure stages.
	Record func(dir string, args []string) (string, error)

	now func() time.Time

	mu        sync.Mutex
	campaigns []*campaign
	byID      map[string]*campaign
	leases    map[string]*lease
	nextC     int
	nextL     int
	// rr is the round-robin cursor: Acquire starts its campaign scan one
	// past the campaign that granted the previous lease, so concurrent
	// runnable campaigns share the worker fleet instead of draining in
	// strict submission order.
	rr int
}

// NewServer returns a daemon rooted at workdir (which must exist) with
// the given heartbeat TTL.
func NewServer(workdir string, ttl time.Duration) *Server {
	return &Server{
		Workdir:     workdir,
		LeaseTTL:    ttl,
		MaxAttempts: 4,
		now:         time.Now,
		byID:        make(map[string]*campaign),
		leases:      make(map[string]*lease),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, "[serve] "+format+"\n", args...)
}

// ownedFlags are argument prefixes a submission must not carry: the
// daemon owns the shard layout and checkpoint transport, and a worker is
// not a place to start nested orchestration.
var ownedFlags = []string{
	"-spawn", "-merge", "-shards", "-shard-index", "-checkpoint", "-resume",
	"-keys-out", "-serve", "-worker", "-submit", "-workdir", "-pool-file",
	"-verdict-cache", "-record", "-from-record",
}

// specHasFlag reports whether args sets the named boolean flag (in the
// -name or -name=value form the CLI's flag forwarding emits).
func specHasFlag(args []string, flag string) bool {
	for _, arg := range args {
		name, val, ok := strings.Cut(arg, "=")
		if name == flag && (!ok || val != "false") {
			return true
		}
	}
	return false
}

// Submit validates and registers a campaign, returning its ID. Shards are
// all pending; workers pick them up on their next poll.
func (s *Server) Submit(spec CampaignSpec) (string, error) {
	if spec.Shards < 1 {
		return "", fmt.Errorf("campaign needs at least 1 shard, got %d", spec.Shards)
	}
	for _, arg := range spec.Args {
		name := strings.SplitN(arg, "=", 2)[0]
		for _, owned := range ownedFlags {
			if name == owned {
				return "", fmt.Errorf("submission must not carry %s: the daemon owns shard layout and checkpoint transport", arg)
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextC++
	c := &campaign{
		id:       fmt.Sprintf("c%d", s.nextC),
		spec:     spec,
		dir:      filepath.Join(s.Workdir, fmt.Sprintf("c%d", s.nextC)),
		merger:   ckpt.NewMerger(),
		state:    campaignRunning,
		registry: core.NewClassRegistry(),
		identity: vcache.Identity(spec.Args...),
		noCache:  specHasFlag(spec.Args, "-no-verdict-cache"),
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return "", fmt.Errorf("creating campaign dir: %v", err)
	}
	for i := 0; i < spec.Shards; i++ {
		c.shards = append(c.shards, &shardState{
			index: i,
			state: shardPending,
			path:  filepath.Join(c.dir, fmt.Sprintf("shard%d.ckpt", i)),
		})
	}
	s.campaigns = append(s.campaigns, c)
	s.byID[c.id] = c
	s.logf("campaign %s submitted: %d shard(s), args %q", c.id, spec.Shards, strings.Join(spec.Args, " "))
	if s.Record != nil && !specHasFlag(spec.Args, "-no-fast-forward") {
		c.recording = true
		go s.recordCampaign(c)
	}
	return c.id, nil
}

// recordCampaign runs the record-once pass for a freshly submitted
// campaign and publishes the artifact. Failure is logged, not fatal: the
// campaign's shards simply run their pre-failure stages live.
func (s *Server) recordCampaign(c *campaign) {
	path, err := s.Record(c.dir, c.spec.Args)
	s.mu.Lock()
	defer s.mu.Unlock()
	c.recording = false
	if err != nil {
		s.logf("campaign %s: record pass failed (%v); shards run the pre-failure stage live", c.id, err)
		return
	}
	c.artifact = path
	s.logf("campaign %s: recorded pre-failure artifact %s", c.id, path)
}

// shardArgs is the child argument vector for one shard of a campaign: the
// shared workload flags plus the shard layout and the stdout checkpoint
// stream (stdin-seeded when resuming). File-backed campaigns get a
// per-shard pool file under the campaign directory — the same path on
// every incarnation, so a resumed shard reopens its own pool.
func shardArgs(spec CampaignSpec, index int, resume bool, dir string) []string {
	args := append([]string{}, spec.Args...)
	if spec.Shards > 1 {
		args = append(args, "-shards", fmt.Sprint(spec.Shards), "-shard-index", fmt.Sprint(index))
	}
	if spec.PoolFile {
		args = append(args, "-pool-file", filepath.Join(dir, fmt.Sprintf("shard%d.pool", index)))
	}
	args = append(args, "-checkpoint", "-")
	if resume {
		args = append(args, "-resume")
	}
	return args
}

// Acquire grants a pending shard to the worker, or returns nil when
// nothing is schedulable. Campaigns are scanned round-robin — the scan
// starts one past the campaign that granted the previous lease — so
// concurrent runnable campaigns share the worker fleet instead of
// draining in strict submission order; within a campaign, shards still go
// out lowest-index first. Every call first expires overdue leases, so a
// polling fleet is itself the expiry clock (no reaper goroutine to leak);
// a rescheduled shard's grant carries the daemon-held checkpoint. caps
// are the worker's capability tags: campaigns demanding a capability
// (today only PoolFile -> "file-backed") are skipped for workers that do
// not advertise it, rather than granted a lease doomed to exit 2. A
// campaign whose record-once pass is still running is skipped too — its
// shards lease once the artifact (or the live fallback) is decided.
func (s *Server) Acquire(worker string, caps ...string) (*LeaseGrant, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()

	n := len(s.campaigns)
	for k := 0; k < n; k++ {
		c := s.campaigns[(s.rr+k)%n]
		if c.state != campaignRunning || c.recording {
			continue
		}
		if c.spec.PoolFile && !hasCap(caps, CapFileBacked) {
			continue
		}
		for _, sh := range c.shards {
			if sh.state != shardPending {
				continue
			}
			s.rr = (s.rr + k + 1) % n
			sh.attempts++
			sh.state = shardLeased
			sh.worker = worker
			s.nextL++
			l := &lease{
				id:       fmt.Sprintf("l%d", s.nextL),
				c:        c,
				sh:       sh,
				worker:   worker,
				deadline: s.now().Add(s.LeaseTTL),
			}
			sh.lease = l.id
			s.leases[l.id] = l
			var held []byte
			if sh.resume {
				held, _ = os.ReadFile(sh.path) // absent file = empty checkpoint
			}
			s.logf("lease %s: campaign %s shard %d/%d -> worker %s (attempt %d/%d%s)",
				l.id, c.id, sh.index, c.spec.Shards, worker, sh.attempts, s.MaxAttempts,
				map[bool]string{true: ", -resume", false: ""}[sh.resume])
			return &LeaseGrant{
				Lease:      l.id,
				Campaign:   c.id,
				Shard:      sh.index,
				Shards:     c.spec.Shards,
				Args:       shardArgs(c.spec, sh.index, sh.resume, c.dir),
				Resume:     sh.resume,
				Checkpoint: string(held),
				Artifact:   c.artifact != "",
			}, nil
		}
	}
	return nil, nil
}

// ArtifactPath validates a lease (renewing its heartbeat) and returns the
// path of its campaign's recorded artifact; "" when the campaign has none.
func (s *Server) ArtifactPath(leaseID string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	l, err := s.activeLease(leaseID)
	if err != nil {
		return "", err
	}
	return l.c.artifact, nil
}

// hasCap reports whether a worker's capability tags include want.
func hasCap(caps []string, want string) bool {
	for _, c := range caps {
		if c == want {
			return true
		}
	}
	return false
}

// expireLocked reschedules every shard whose lease missed its heartbeat
// deadline. The expired lease's pending class claims are released so the
// classes can be re-claimed — a representative whose worker died never
// resolves, and holding its classes pending forever would stall every
// other shard's parked members behind a verdict that will never come.
func (s *Server) expireLocked() {
	now := s.now()
	for id, l := range s.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(s.leases, id)
		l.sh.lease = ""
		l.c.registry.ReleaseOwner(id)
		s.logf("lease %s (campaign %s shard %d, worker %s) missed its heartbeat deadline; rescheduling with -resume",
			id, l.c.id, l.sh.index, l.worker)
		s.rescheduleLocked(l.c, l.sh)
	}
}

// rescheduleLocked returns a shard to the pending queue with -resume, or
// finalizes it as given-up (exit 3, the orchestrator's semantics) when
// its attempts are exhausted.
func (s *Server) rescheduleLocked(c *campaign, sh *shardState) {
	if sh.attempts >= s.MaxAttempts {
		sh.state = shardDone
		sh.exitCode = 3
		sh.gaveUp = true
		s.logf("campaign %s shard %d: giving up after %d attempt(s)", c.id, sh.index, sh.attempts)
		s.maybeCompleteLocked(c)
		return
	}
	sh.state = shardPending
	sh.resume = true
}

// activeLease validates a lease ID and renews its heartbeat deadline.
func (s *Server) activeLease(id string) (*lease, error) {
	l, ok := s.leases[id]
	if !ok {
		return nil, ErrLeaseGone
	}
	l.deadline = s.now().Add(s.LeaseTTL)
	return l, nil
}

// Heartbeat renews a lease's deadline; a long post-run produces no
// checkpoint lines, and silence must not read as death.
func (s *Server) Heartbeat(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	_, err := s.activeLease(id)
	return err
}

// AppendLines takes a chunk of checkpoint JSONL from a lease, appends it
// durably to the shard's daemon-held file, and folds each line into the
// campaign's online merge. Lines from an expired lease are rejected — its
// shard may already be streaming from another worker, and double-counting
// a summary would corrupt the bucket accounting.
func (s *Server) AppendLines(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	l, err := s.activeLease(id)
	if err != nil {
		return err
	}

	var lines []ckpt.Line
	parsed, err := ckpt.Read(strings.NewReader(string(data)), "lease "+id)
	if err != nil {
		return fmt.Errorf("parsing streamed lines: %v", err)
	}
	lines = parsed

	f, err := os.OpenFile(l.sh.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	f.Close()

	source := fmt.Sprintf("shard%d", l.sh.index)
	for _, line := range lines {
		if err := l.c.merger.Add(source, line); err != nil {
			return err
		}
	}
	l.sh.lines += len(lines)
	return nil
}

// Finish resolves a lease: released=true is a worker-initiated teardown
// (shutdown; the shard is rescheduled), exit 0/1/3 is a final shard
// outcome, exit 2 is a usage/harness error that would fail every
// incarnation alike and fails the campaign, and anything else — death by
// signal surfaces as -1 — is a crash, rescheduled with -resume while
// attempts remain.
func (s *Server) Finish(id string, code int, released bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	l, err := s.activeLease(id)
	if err != nil {
		return err
	}
	delete(s.leases, id)
	l.sh.lease = ""
	l.c.registry.ReleaseOwner(id)

	switch {
	case released:
		s.logf("lease %s released by worker %s; rescheduling campaign %s shard %d", id, l.worker, l.c.id, l.sh.index)
		s.rescheduleLocked(l.c, l.sh)
	case code == 0 || code == 1 || code == 3:
		l.sh.state = shardDone
		l.sh.exitCode = code
		s.logf("campaign %s shard %d finished (exit %d) on worker %s after %d attempt(s)",
			l.c.id, l.sh.index, code, l.worker, l.sh.attempts)
		s.maybeCompleteLocked(l.c)
	case code == 2:
		l.sh.state = shardDone
		l.sh.exitCode = code
		l.c.state = campaignFailed
		l.c.failure = fmt.Sprintf("shard %d exited 2 (usage or harness error) on worker %s", l.sh.index, l.worker)
		s.logf("campaign %s failed: %s", l.c.id, l.c.failure)
	default:
		s.logf("campaign %s shard %d crashed (exit %d) on worker %s; rescheduling with -resume",
			l.c.id, l.sh.index, code, l.worker)
		s.rescheduleLocked(l.c, l.sh)
	}
	return nil
}

// maybeCompleteLocked finalizes a campaign once every shard is done: the
// online merger already holds the union, so completion is just the
// coverage check and the bucket sums.
func (s *Server) maybeCompleteLocked(c *campaign) {
	if c.state != campaignRunning {
		return
	}
	for _, sh := range c.shards {
		if sh.state != shardDone {
			return
		}
	}
	c.state = campaignDone
	c.result = c.merger.Result(fmt.Sprintf("campaign %s (%d shard(s))", c.id, c.spec.Shards))
	s.logf("campaign %s complete: %d/%d failure points covered, %d report(s)%s",
		c.id, c.merger.Covered(), c.result.FailurePoints, len(c.result.Reports),
		map[bool]string{true: ", INCOMPLETE", false: ""}[c.result.Incomplete])
}
