package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"

	"github.com/pmemgo/xfdetector/internal/ckpt"
	"github.com/pmemgo/xfdetector/internal/core"
)

// ErrLeaseGone reports a lease the daemon no longer recognizes: expired
// (and its shard rescheduled) or never granted. Workers must tear down
// the shard child on it — the daemon has moved on.
var ErrLeaseGone = errors.New("lease expired or unknown")

// Buckets is the merged per-failure-point accounting exposed by /status —
// the same disjoint buckets core.Result carries, summed from the shard
// summaries (never fabricated from the covered-point count).
type Buckets struct {
	PostRuns   int `json:"post_runs"`
	Pruned     int `json:"pruned"`
	CrossShard int `json:"cross_shard"`
	CacheHits  int `json:"cache_hits"`
	Resumed    int `json:"resumed"`
	Skipped    int `json:"skipped"`
	OtherShard int `json:"other_shard"`
	Abandoned  int `json:"abandoned"`
}

// ShardStatus is one shard's scheduling state.
type ShardStatus struct {
	Index    int    `json:"index"`
	State    string `json:"state"`
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts"`
	Resume   bool   `json:"resume"`
	Lines    int    `json:"lines"`
	ExitCode int    `json:"exit_code"`
	GaveUp   bool   `json:"gave_up,omitempty"`
}

// CampaignStatus is the live view of one campaign: coverage, deduplicated
// report count, and degradation buckets while running; plus the merged
// result text, sorted report keys, and exit code once done.
type CampaignStatus struct {
	ID               string  `json:"id"`
	State            string  `json:"state"`
	Failure          string  `json:"failure,omitempty"`
	Shards           int     `json:"shards"`
	Covered          int     `json:"covered"`
	Total            int     `json:"total"` // -1 until a shard completes
	Reports          int     `json:"reports"`
	Buckets          Buckets `json:"buckets"`
	// Registry-side verdict-sharing counters, live while the campaign
	// runs: distinct crash-state classes claimed over the lease API, clean
	// verdicts attributed to non-owning shards, and claims answered from
	// the daemon's cross-campaign cache. (Buckets carries the shard-side
	// view summed from completed summaries; these count as claims happen.)
	CrashStateClasses int  `json:"crash_state_classes"`
	CrossShardPruned  int  `json:"cross_shard_pruned"`
	CacheHits         int  `json:"cache_hits"`
	Clean             bool `json:"clean"`
	Incomplete       bool    `json:"incomplete"`
	IncompleteReason string  `json:"incomplete_reason,omitempty"`
	FailurePoints    int     `json:"failure_points"`
	// ExitCode follows the CLI contract (0 clean, 1 bugs, 2 failed,
	// 3 incomplete); -1 while the campaign is still running.
	ExitCode    int           `json:"exit_code"`
	ResultText  string        `json:"result_text,omitempty"`
	Keys        []string      `json:"keys,omitempty"`
	ShardStates []ShardStatus `json:"shard_states"`
}

// statusLocked snapshots one campaign. The merger is consulted live, so a
// running campaign reports real coverage and buckets, not placeholders.
func (s *Server) statusLocked(c *campaign) CampaignStatus {
	res := c.result
	if res == nil {
		res = c.merger.Result("live")
	}
	st := CampaignStatus{
		ID:      c.id,
		State:   c.state,
		Failure: c.failure,
		Shards:  c.spec.Shards,
		Covered: c.merger.Covered(),
		Total:   c.merger.Total(),
		Reports: len(c.merger.Reports()),
		Buckets: Buckets{
			PostRuns:   res.PostRuns,
			Pruned:     res.PrunedFailurePoints,
			CrossShard: res.CrossShardPrunedFailurePoints,
			CacheHits:  res.CacheHitFailurePoints,
			Resumed:    res.ResumedFailurePoints,
			Skipped:    res.SkippedFailurePoints,
			OtherShard: res.OtherShardFailurePoints,
			Abandoned:  res.AbandonedPostRuns,
		},
		CacheHits:        c.cacheHits,
		Clean:            res.Clean(),
		Incomplete:       res.Incomplete,
		IncompleteReason: res.IncompleteReason,
		FailurePoints:    res.FailurePoints,
		ExitCode:         -1,
	}
	st.CrashStateClasses, st.CrossShardPruned = c.registry.Stats()
	for _, sh := range c.shards {
		st.ShardStates = append(st.ShardStates, ShardStatus{
			Index: sh.index, State: sh.state, Worker: sh.worker,
			Attempts: sh.attempts, Resume: sh.resume, Lines: sh.lines,
			ExitCode: sh.exitCode, GaveUp: sh.gaveUp,
		})
	}
	switch {
	case c.state == campaignFailed:
		st.ExitCode = 2
	case c.state == campaignDone:
		st.ResultText = res.String()
		st.Keys = ckpt.SortedKeys(res.Reports)
		switch {
		case res.Incomplete:
			st.ExitCode = 3
		case !res.Clean():
			st.ExitCode = 1
		default:
			st.ExitCode = 0
		}
	}
	return st
}

// Status snapshots every campaign in submission order.
func (s *Server) Status() []CampaignStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	out := make([]CampaignStatus, 0, len(s.campaigns))
	for _, c := range s.campaigns {
		out = append(out, s.statusLocked(c))
	}
	return out
}

// CampaignStatus snapshots one campaign by ID.
func (s *Server) CampaignStatus(id string) (CampaignStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	c, ok := s.byID[id]
	if !ok {
		return CampaignStatus{}, fmt.Errorf("unknown campaign %q", id)
	}
	return s.statusLocked(c), nil
}

// Handler mounts the HTTP/JSON API:
//
//	POST /campaigns              {"args":[...],"shards":N} -> {"id":"c1"}
//	GET  /status                 -> {"campaigns":[...]}
//	GET  /campaigns/{id}         -> CampaignStatus
//	POST /lease                  {"worker":"w1","caps":["file-backed"]} -> LeaseGrant | 204
//	POST /leases/{id}/lines      raw JSONL chunk -> 200 | 409 lease gone
//	POST /leases/{id}/heartbeat  -> 200 | 409
//	POST /leases/{id}/claim      {"fpr":N} -> {"verdict":"own|run|clean|cached","reports":[...]} | 409
//	POST /leases/{id}/resolve    {"fpr":N,"clean":true,"reports":[...]} -> 200 | 409
//	POST /leases/{id}/done       {"code":0,"released":false} -> 200 | 409
//	GET  /healthz                -> 200
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})

	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec CampaignSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]string{"id": id})
	})

	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"campaigns": s.Status()})
	})

	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.CampaignStatus(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, st)
	})

	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string   `json:"worker"`
			Caps   []string `json:"caps"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		grant, err := s.Acquire(req.Worker, req.Caps...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if grant == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, grant)
	})

	mux.HandleFunc("POST /leases/{id}/lines", func(w http.ResponseWriter, r *http.Request) {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		leaseErr(w, s.AppendLines(r.PathValue("id"), data))
	})

	mux.HandleFunc("POST /leases/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		leaseErr(w, s.Heartbeat(r.PathValue("id")))
	})

	// Raw-bytes artifact download for fast-forwarded shards; the fetch
	// doubles as a heartbeat (ArtifactPath validates and renews the lease).
	mux.HandleFunc("GET /leases/{id}/artifact", func(w http.ResponseWriter, r *http.Request) {
		path, err := s.ArtifactPath(r.PathValue("id"))
		if err != nil {
			leaseErr(w, err)
			return
		}
		if path == "" {
			http.Error(w, "campaign has no recorded artifact", http.StatusNotFound)
			return
		}
		f, err := os.Open(path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		io.Copy(w, f)
	})

	mux.HandleFunc("POST /leases/{id}/claim", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			FPrint uint64 `json:"fpr"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply, err := s.Claim(r.PathValue("id"), req.FPrint)
		if err != nil {
			leaseErr(w, err)
			return
		}
		writeJSON(w, reply)
	})

	mux.HandleFunc("POST /leases/{id}/resolve", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			FPrint  uint64        `json:"fpr"`
			Clean   bool          `json:"clean"`
			Reports []core.Report `json:"reports"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		leaseErr(w, s.Resolve(r.PathValue("id"), req.FPrint, req.Clean, req.Reports))
	})

	mux.HandleFunc("POST /leases/{id}/done", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Code     int  `json:"code"`
			Released bool `json:"released"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		leaseErr(w, s.Finish(r.PathValue("id"), req.Code, req.Released))
	})

	return mux
}

func leaseErr(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		w.WriteHeader(http.StatusOK)
	case errors.Is(err, ErrLeaseGone):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
