package serve

import (
	"fmt"
	"os"

	"github.com/pmemgo/xfdetector/internal/core"
)

// Cross-shard verdict sharing over the lease API.
//
// Every shard of a campaign enumerates the same failure points and
// computes the same crash-state fingerprints (the pre-failure execution is
// deterministic), so shards keep rediscovering each other's classes. The
// daemon holds one core.ClassRegistry per campaign; a shard child — handed
// its lease through the environment (VerdictURLEnv/VerdictLeaseEnv by the
// worker) — claims each class the first time it reaches it. The first
// claimant post-runs the representative and publishes the outcome with
// Resolve; later claimants on other shards attribute the clean verdict
// without running anything. The daemon also fronts its cross-campaign
// on-disk cache here: a claim whose (argv identity, fingerprint) pair is
// already cached is answered "cached" with the stored reports, so repeat
// campaigns skip even the first representative run.

// Environment variables the worker sets on shard children so the runner
// can reach its campaign's class registry.
const (
	VerdictURLEnv   = "XFDETECTOR_VERDICT_URL"
	VerdictLeaseEnv = "XFDETECTOR_VERDICT_LEASE"
)

// Wire verdicts for POST /leases/{id}/claim, mirroring core.ClassVerdict.
const (
	wireOwn    = "own"
	wireRun    = "run"
	wireClean  = "clean"
	wireCached = "cached"
)

// ClaimReply is the daemon's answer to a class claim. Reports is only set
// for "cached" answers (see core.ClassClaim).
type ClaimReply struct {
	Verdict string        `json:"verdict"`
	Reports []core.Report `json:"reports,omitempty"`
}

// Claim files a crash-state class claim for the lease's shard and renews
// the lease heartbeat. An "own" answer is first checked against the
// daemon's cross-campaign cache: a hit converts the fresh ownership into a
// seeded clean class and answers "cached" with the stored reports.
func (s *Server) Claim(leaseID string, fingerprint uint64) (ClaimReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	l, err := s.activeLease(leaseID)
	if err != nil {
		return ClaimReply{}, err
	}
	c := l.c
	claim := c.registry.Claim(leaseID, fingerprint)
	if claim.Verdict == core.VerdictOwn && !c.noCache && s.Cache != nil {
		if reports, ok := s.Cache.Lookup(c.identity, fingerprint); ok {
			c.registry.SeedClean(leaseID, fingerprint, reports)
			c.cacheHits++
			return ClaimReply{Verdict: wireCached, Reports: reports}, nil
		}
	}
	switch claim.Verdict {
	case core.VerdictOwn:
		return ClaimReply{Verdict: wireOwn}, nil
	case core.VerdictClean:
		return ClaimReply{Verdict: wireClean}, nil
	default:
		return ClaimReply{Verdict: wireRun}, nil
	}
}

// Resolve records a representative's outcome from the owning lease and
// renews the heartbeat. Clean verdicts flow into the cross-campaign cache
// (unless the campaign opted out); the registry itself drops resolves from
// anyone but the pending owner, so a zombie lease can never attribute.
func (s *Server) Resolve(leaseID string, fingerprint uint64, clean bool, reports []core.Report) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	l, err := s.activeLease(leaseID)
	if err != nil {
		return err
	}
	c := l.c
	if c.registry.Resolve(leaseID, fingerprint, clean, reports) && !c.noCache && s.Cache != nil {
		if err := s.Cache.Store(c.identity, fingerprint, reports); err != nil {
			s.logf("verdict cache store failed (degrading to misses): %v", err)
		}
	}
	return nil
}

// LeaseVerdicts adapts the daemon's claim API to a runner's VerdictSource:
// the shard child constructs one from VerdictURLEnv/VerdictLeaseEnv. It
// fails open — a claim the daemon cannot answer (network error, expired
// lease) degrades to VerdictRun, PR 6's in-process pruning, never to an
// unvalidated attribution.
type LeaseVerdicts struct {
	Client *Client
	Lease  string
}

// Claim asks the daemon who owns the fingerprint's class.
func (v *LeaseVerdicts) Claim(fingerprint uint64) core.ClassClaim {
	reply, err := v.Client.Claim(v.Lease, fingerprint)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xfdetector: class claim failed, running inline: %v\n", err)
		return core.ClassClaim{Verdict: core.VerdictRun}
	}
	switch reply.Verdict {
	case wireOwn:
		return core.ClassClaim{Verdict: core.VerdictOwn}
	case wireClean:
		return core.ClassClaim{Verdict: core.VerdictClean}
	case wireCached:
		return core.ClassClaim{Verdict: core.VerdictCached, Reports: reply.Reports}
	default:
		return core.ClassClaim{Verdict: core.VerdictRun}
	}
}

// Resolve publishes the representative's outcome, best-effort: a lost
// resolve leaves the class pending until the lease ends and is released.
func (v *LeaseVerdicts) Resolve(fingerprint uint64, clean bool, fresh []core.Report) {
	if err := v.Client.Resolve(v.Lease, fingerprint, clean, fresh); err != nil {
		fmt.Fprintf(os.Stderr, "xfdetector: class resolve failed (class stays pending until lease release): %v\n", err)
	}
}
