package serve

import (
	"os"
	"syscall"
	"time"
)

// TerminateThenKill asks a shard process to stop at its next failure-point
// boundary (SIGTERM, which the CLI turns into a context cancellation with
// a resumable checkpoint) and escalates to SIGKILL if the process has not
// exited within grace — a shard wedged inside a post-run the deadline did
// not catch would otherwise hang its supervisor forever. done must be
// closed when the process has been waited on; a nil process is a no-op.
//
// Both supervisors use it: the -spawn orchestrator on ^C, and the worker
// loop when tearing down a lease (shutdown, or the daemon declaring the
// lease expired).
func TerminateThenKill(p *os.Process, done <-chan struct{}, grace time.Duration) {
	if p == nil {
		return
	}
	p.Signal(syscall.SIGTERM)
	if grace <= 0 {
		grace = DefaultKillGrace
	}
	t := time.NewTimer(grace)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		p.Kill()
	}
}

// DefaultKillGrace is how long a supervisor waits between SIGTERM and
// SIGKILL when no -kill-grace was configured.
const DefaultKillGrace = 30 * time.Second
