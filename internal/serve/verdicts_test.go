package serve

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/vcache"
)

// TestClaimResolveProtocol: the first lease to claim a fingerprint owns
// the class; concurrent claimants run inline; once the owner resolves
// clean, later claimants attribute — and a dirty resolution never does.
func TestClaimResolveProtocol(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	id := mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 2})
	l0 := mustAcquire(t, s, "w1")
	l1 := mustAcquire(t, s, "w2")

	reply, err := s.Claim(l0.Lease, 7)
	if err != nil || reply.Verdict != "own" {
		t.Fatalf("first claim = %+v, %v; want own", reply, err)
	}
	if reply, _ := s.Claim(l1.Lease, 7); reply.Verdict != "run" {
		t.Fatalf("claim on a pending class = %q, want run (claimants never block)", reply.Verdict)
	}
	rep := core.Report{Class: core.CrossFailureRace, ReaderIP: "r.go:1", WriterIP: "w.go:2"}
	if err := s.Resolve(l0.Lease, 7, true, []core.Report{rep}); err != nil {
		t.Fatal(err)
	}
	if reply, _ := s.Claim(l1.Lease, 7); reply.Verdict != "clean" {
		t.Fatalf("claim on a clean class = %q, want clean", reply.Verdict)
	}

	// Dirty classes are sticky and never attribute.
	if reply, _ := s.Claim(l0.Lease, 8); reply.Verdict != "own" {
		t.Fatal("second class not owned")
	}
	if err := s.Resolve(l0.Lease, 8, false, nil); err != nil {
		t.Fatal(err)
	}
	if reply, _ := s.Claim(l1.Lease, 8); reply.Verdict != "run" {
		t.Fatalf("claim on a dirty class = %q, want run", reply.Verdict)
	}

	st, err := s.CampaignStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.CrashStateClasses != 2 || st.CrossShardPruned != 1 {
		t.Errorf("status classes=%d cross_shard_pruned=%d, want 2 and 1",
			st.CrashStateClasses, st.CrossShardPruned)
	}
}

// TestExpiredLeaseReleasesClaims: a lease that dies holding pending claims
// must not wedge its classes — the replacement lease re-claims them — and
// the zombie's late resolve must bounce rather than attribute.
func TestExpiredLeaseReleasesClaims(t *testing.T) {
	s, now := testServer(t, 10*time.Second)
	mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1})
	grant := mustAcquire(t, s, "w1")
	if reply, _ := s.Claim(grant.Lease, 7); reply.Verdict != "own" {
		t.Fatal("first claim not owned")
	}

	*now = now.Add(11 * time.Second) // worker goes silent; lease expires
	regrant := mustAcquire(t, s, "w2")
	if reply, _ := s.Claim(regrant.Lease, 7); reply.Verdict != "own" {
		t.Fatal("released class not re-claimable; the campaign would stall on a dead representative")
	}
	if err := s.Resolve(grant.Lease, 7, true, nil); !errors.Is(err, ErrLeaseGone) {
		t.Errorf("zombie resolve accepted (err=%v)", err)
	}
	if reply, _ := s.Claim(regrant.Lease, 9); reply.Verdict != "own" {
		t.Fatal("fresh claim on live lease failed")
	}
}

// TestCacheAcrossCampaigns: clean verdicts resolved in one campaign answer
// claims in a later campaign with the same argument vector — and only the
// same vector; a different workload or a -no-verdict-cache campaign runs
// its own representatives.
func TestCacheAcrossCampaigns(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	cache, err := vcache.Open(filepath.Join(t.TempDir(), "verdicts.cache"))
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	s.Cache = cache

	args := []string{"-workload", "btree", "-test", "50"}
	mustSubmit(t, s, CampaignSpec{Args: args, Shards: 1})
	l1 := mustAcquire(t, s, "w1")
	if reply, _ := s.Claim(l1.Lease, 7); reply.Verdict != "own" {
		t.Fatal("cold claim not owned")
	}
	rep := core.Report{Class: core.CrossFailureSemantic, ReaderIP: "x.go:9"}
	if err := s.Resolve(l1.Lease, 7, true, []core.Report{rep}); err != nil {
		t.Fatal(err)
	}
	if err := s.Resolve(l1.Lease, 8, true, nil); err != nil {
		t.Fatal(err) // never claimed: dropped by the registry, must not be cached
	}
	if err := s.Finish(l1.Lease, 0, false); err != nil {
		t.Fatal(err)
	}

	// Same argv, new campaign: the verdict and its report come back.
	id2 := mustSubmit(t, s, CampaignSpec{Args: args, Shards: 1})
	l2 := mustAcquire(t, s, "w1")
	reply, err := s.Claim(l2.Lease, 7)
	if err != nil || reply.Verdict != "cached" {
		t.Fatalf("warm claim = %+v, %v; want cached", reply, err)
	}
	if len(reply.Reports) != 1 || reply.Reports[0].DedupKey() != rep.DedupKey() {
		t.Fatalf("cached reports = %v, want the resolved report back", reply.Reports)
	}
	if reply, _ := s.Claim(l2.Lease, 8); reply.Verdict != "own" {
		t.Fatalf("unresolved fingerprint = %q, want own (zombie resolves are never cached)", reply.Verdict)
	}
	if st, _ := s.CampaignStatus(id2); st.CacheHits != 1 {
		t.Errorf("status cache_hits = %d, want 1", st.CacheHits)
	}
	if err := s.Finish(l2.Lease, 0, false); err != nil {
		t.Fatal(err)
	}

	// A different argv is a different program: no sharing.
	mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "hashmap", "-test", "50"}, Shards: 1})
	l3 := mustAcquire(t, s, "w1")
	if reply, _ := s.Claim(l3.Lease, 7); reply.Verdict != "own" {
		t.Fatalf("cross-program claim = %q, want own", reply.Verdict)
	}
	if err := s.Finish(l3.Lease, 0, false); err != nil {
		t.Fatal(err)
	}

	// -no-verdict-cache opts the campaign out in both directions.
	optOut := append([]string{"-no-verdict-cache"}, args...)
	mustSubmit(t, s, CampaignSpec{Args: optOut, Shards: 1})
	l4 := mustAcquire(t, s, "w1")
	if reply, _ := s.Claim(l4.Lease, 7); reply.Verdict != "own" {
		t.Fatalf("opted-out claim = %q, want own", reply.Verdict)
	}
	if err := s.Resolve(l4.Lease, 7, true, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(l4.Lease, 0, false); err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, s, CampaignSpec{Args: optOut, Shards: 1})
	l5 := mustAcquire(t, s, "w1")
	if reply, _ := s.Claim(l5.Lease, 7); reply.Verdict != "own" {
		t.Fatalf("second opted-out campaign = %q, want own (its verdicts were never cached)", reply.Verdict)
	}
}

// TestPoolFileCapabilityGating: file-backed campaigns only lease to
// workers advertising the capability, and their grants carry a per-shard
// pool file under the campaign directory.
func TestPoolFileCapabilityGating(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1, PoolFile: true})

	if grant, _ := s.Acquire("plain"); grant != nil {
		t.Fatalf("capless worker leased a file-backed shard: %+v", grant)
	}
	grant, err := s.Acquire("capable", CapFileBacked)
	if err != nil || grant == nil {
		t.Fatalf("capable worker got no lease: %v", err)
	}
	args := strings.Join(grant.Args, " ")
	if !strings.Contains(args, "-pool-file") || !strings.Contains(args, "shard0.pool") {
		t.Errorf("file-backed grant args %q missing the per-shard -pool-file", args)
	}

	// A capless worker still serves campaigns with no demands.
	mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "hashmap"}, Shards: 1})
	plain, err := s.Acquire("plain")
	if err != nil || plain == nil {
		t.Fatalf("capless worker starved despite a plain campaign: %v", err)
	}
	if strings.Contains(strings.Join(plain.Args, " "), "-pool-file") {
		t.Errorf("plain grant args %q carry -pool-file", plain.Args)
	}
}
