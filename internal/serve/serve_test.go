package serve

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// Scheduler tests drive the Server in-process with an injected clock: the
// lease state machine (grant, heartbeat, expiry, reschedule-with-resume,
// attempts exhaustion) must be deterministic without any real waiting.

// testServer returns a daemon with a controllable clock.
func testServer(t *testing.T, ttl time.Duration) (*Server, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	s := NewServer(t.TempDir(), ttl)
	s.Logf = t.Logf
	s.now = func() time.Time { return now }
	return s, &now
}

func mustSubmit(t *testing.T, s *Server, spec CampaignSpec) string {
	t.Helper()
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustAcquire(t *testing.T, s *Server, worker string) *LeaseGrant {
	t.Helper()
	grant, err := s.Acquire(worker)
	if err != nil {
		t.Fatal(err)
	}
	if grant == nil {
		t.Fatal("no lease granted")
	}
	return grant
}

// TestSubmitValidation: the daemon owns shard layout and checkpoint
// transport, so submissions carrying those flags — or no shards — are
// rejected.
func TestSubmitValidation(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	if _, err := s.Submit(CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 0}); err == nil {
		t.Error("zero shards accepted")
	}
	for _, bad := range [][]string{
		{"-checkpoint", "x.ckpt"},
		{"-shards", "3"},
		{"-spawn", "2"},
		{"-resume"},
		{"-checkpoint=-"},
	} {
		if _, err := s.Submit(CampaignSpec{Args: bad, Shards: 1}); err == nil {
			t.Errorf("submission with %v accepted; the daemon owns that flag", bad)
		}
	}
}

// TestLeaseGrantArgs: a grant carries the full child argument vector —
// shard layout, -checkpoint - for the stdout stream, -resume only on
// reschedule.
func TestLeaseGrantArgs(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	id := mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree", "-test", "5"}, Shards: 2})

	grant := mustAcquire(t, s, "w1")
	if grant.Campaign != id || grant.Shard != 0 || grant.Shards != 2 || grant.Resume {
		t.Fatalf("first grant = %+v, want shard 0/2, fresh", grant)
	}
	args := strings.Join(grant.Args, " ")
	for _, want := range []string{"-workload btree", "-shards 2", "-shard-index 0", "-checkpoint -"} {
		if !strings.Contains(args, want) {
			t.Errorf("grant args %q missing %q", args, want)
		}
	}
	if strings.Contains(args, "-resume") {
		t.Errorf("fresh grant args %q carry -resume", args)
	}
	if grant.Checkpoint != "" {
		t.Errorf("fresh grant carries a checkpoint (%d bytes)", len(grant.Checkpoint))
	}

	second := mustAcquire(t, s, "w2")
	if second.Shard != 1 {
		t.Errorf("second grant = shard %d, want 1", second.Shard)
	}
	if third, _ := s.Acquire("w3"); third != nil {
		t.Errorf("third grant = %+v, want nothing schedulable", third)
	}
}

// TestSingleShardCampaignArgs: an unsharded campaign's child must not
// carry a shard layout (the single-process path has no -shards 1 mode).
func TestSingleShardCampaignArgs(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1})
	grant := mustAcquire(t, s, "w1")
	if args := strings.Join(grant.Args, " "); strings.Contains(args, "-shards") {
		t.Errorf("single-shard grant args %q carry a shard layout", args)
	}
}

// TestLeaseExpiryReschedulesWithResume: a missed heartbeat deadline
// expires the lease; the next acquire re-grants the shard with -resume
// and the daemon-held checkpoint, and the zombie's writes are rejected.
func TestLeaseExpiryReschedulesWithResume(t *testing.T) {
	s, now := testServer(t, 10*time.Second)
	id := mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1})

	grant := mustAcquire(t, s, "w1")
	lines := "{\"fp\":0}\n{\"fp\":1,\"reports\":[{\"Class\":0,\"ReaderIP\":\"r.go:1\",\"WriterIP\":\"w.go:2\"}]}\n"
	if err := s.AppendLines(grant.Lease, []byte(lines)); err != nil {
		t.Fatal(err)
	}

	// Heartbeats renew the deadline: 8s + 8s crosses the original 10s TTL
	// but not the renewed one.
	*now = now.Add(8 * time.Second)
	if err := s.Heartbeat(grant.Lease); err != nil {
		t.Fatalf("heartbeat within TTL: %v", err)
	}
	*now = now.Add(8 * time.Second)
	if err := s.Heartbeat(grant.Lease); err != nil {
		t.Fatalf("renewed heartbeat: %v", err)
	}

	// Silence past the TTL: the lease dies, the shard is rescheduled.
	*now = now.Add(11 * time.Second)
	regrant := mustAcquire(t, s, "w2")
	if regrant.Shard != 0 || !regrant.Resume {
		t.Fatalf("regrant = %+v, want shard 0 with -resume", regrant)
	}
	if regrant.Checkpoint != lines {
		t.Errorf("regrant checkpoint = %q, want the streamed lines back", regrant.Checkpoint)
	}
	if args := strings.Join(regrant.Args, " "); !strings.Contains(args, "-resume") {
		t.Errorf("regrant args %q missing -resume", args)
	}

	// The first worker is a zombie now; its stream and completion must
	// bounce so the accounting cannot double-count.
	if err := s.AppendLines(grant.Lease, []byte("{\"fp\":2}\n")); !errors.Is(err, ErrLeaseGone) {
		t.Errorf("zombie lines accepted (err=%v)", err)
	}
	if err := s.Finish(grant.Lease, 0, false); !errors.Is(err, ErrLeaseGone) {
		t.Errorf("zombie finish accepted (err=%v)", err)
	}

	st, err := s.CampaignStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Covered != 2 || st.Reports != 1 {
		t.Errorf("status covered=%d reports=%d, want 2 and 1", st.Covered, st.Reports)
	}
	if sh := st.ShardStates[0]; sh.Attempts != 2 || !sh.Resume {
		t.Errorf("shard state = %+v, want attempt 2 with resume", sh)
	}
}

// TestCrashExitReschedules: a child killed by a signal (exit -1) is a
// crash — rescheduled with -resume — while a clean exit finalizes the
// shard and completes the campaign.
func TestCrashExitReschedules(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	id := mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1})

	grant := mustAcquire(t, s, "w1")
	if err := s.AppendLines(grant.Lease, []byte("{\"fp\":0}\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(grant.Lease, -1, false); err != nil {
		t.Fatal(err)
	}
	regrant := mustAcquire(t, s, "w1")
	if !regrant.Resume || regrant.Checkpoint == "" {
		t.Fatalf("post-crash regrant = %+v, want -resume with held checkpoint", regrant)
	}
	summary := "{\"fp\":-1,\"total\":1,\"resumed\":1}\n"
	if err := s.AppendLines(regrant.Lease, []byte(summary)); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(regrant.Lease, 0, false); err != nil {
		t.Fatal(err)
	}

	st, err := s.CampaignStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.ExitCode != 0 || st.Incomplete {
		t.Fatalf("campaign = %+v, want done exit 0", st)
	}
	if st.Buckets.Resumed != 1 || st.Buckets.PostRuns != 0 {
		t.Errorf("buckets = %+v, want resumed=1 post_runs=0 from the final summary", st.Buckets)
	}
}

// TestAttemptsExhaustion: a shard whose every incarnation dies is
// finalized as given-up (exit 3) after MaxAttempts, and the campaign
// completes Incomplete through the coverage check instead of spinning.
func TestAttemptsExhaustion(t *testing.T) {
	s, now := testServer(t, 10*time.Second)
	s.MaxAttempts = 3
	id := mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1})

	for attempt := 1; attempt <= 3; attempt++ {
		grant := mustAcquire(t, s, fmt.Sprintf("w%d", attempt))
		if grant.Resume != (attempt > 1) {
			t.Errorf("attempt %d resume=%v", attempt, grant.Resume)
		}
		*now = now.Add(11 * time.Second) // every worker goes silent
	}
	if grant, _ := s.Acquire("w4"); grant != nil {
		t.Fatalf("grant after exhausted attempts: %+v", grant)
	}

	st, err := s.CampaignStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.ExitCode != 3 || !st.Incomplete {
		t.Fatalf("campaign = state %s exit %d incomplete %v, want done/3/true", st.State, st.ExitCode, st.Incomplete)
	}
	sh := st.ShardStates[0]
	if !sh.GaveUp || sh.ExitCode != 3 || sh.Attempts != 3 {
		t.Errorf("shard state = %+v, want gave-up exit 3 after 3 attempts", sh)
	}
}

// TestUsageErrorFailsCampaign: exit 2 would fail every incarnation alike
// (a config error), so it fails the campaign instead of burning attempts.
func TestUsageErrorFailsCampaign(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	id := mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 2})
	grant := mustAcquire(t, s, "w1")
	if err := s.Finish(grant.Lease, 2, false); err != nil {
		t.Fatal(err)
	}
	st, err := s.CampaignStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || st.ExitCode != 2 || st.Failure == "" {
		t.Fatalf("campaign = %+v, want failed with exit 2 and a reason", st)
	}
	if grant, _ := s.Acquire("w2"); grant != nil {
		t.Errorf("failed campaign still schedules shards: %+v", grant)
	}
}

// TestReleaseReschedulesImmediately: worker-initiated teardown (shutdown)
// releases the lease so the shard reschedules without waiting out the
// TTL.
func TestReleaseReschedulesImmediately(t *testing.T) {
	s, _ := testServer(t, time.Hour) // TTL long enough that only release can free it
	mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1})
	grant := mustAcquire(t, s, "w1")
	if err := s.Finish(grant.Lease, 3, true); err != nil {
		t.Fatal(err)
	}
	regrant := mustAcquire(t, s, "w2")
	if regrant.Shard != 0 || !regrant.Resume {
		t.Fatalf("regrant after release = %+v, want shard 0 with -resume", regrant)
	}
}

// TestAppendLinesDurable: streamed lines land in the per-shard daemon
// file — the state a reschedule resumes from must survive a daemon crash
// too.
func TestAppendLinesDurable(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	id := mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1})
	grant := mustAcquire(t, s, "w1")
	if err := s.AppendLines(grant.Lease, []byte("{\"fp\":0}\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLines(grant.Lease, []byte("{\"fp\":1}\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.byID[id].shards[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"fp\":0}\n{\"fp\":1}\n" {
		t.Errorf("daemon-held checkpoint = %q", data)
	}
}

// TestAcquireRoundRobinAcrossCampaigns: concurrent runnable campaigns
// share the worker fleet — each grant starts the next scan one past the
// granting campaign, so leases alternate instead of draining campaigns in
// strict submission order. The injected clock then expires a lease and the
// rescheduled shard rejoins the same rotation with -resume.
func TestAcquireRoundRobinAcrossCampaigns(t *testing.T) {
	s, now := testServer(t, time.Minute)
	c1 := mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 2})
	c2 := mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "ctree"}, Shards: 2})

	var order []string
	var grants []*LeaseGrant
	for i := 0; i < 4; i++ {
		g := mustAcquire(t, s, fmt.Sprintf("w%d", i))
		order = append(order, fmt.Sprintf("%s/%d", g.Campaign, g.Shard))
		grants = append(grants, g)
	}
	want := []string{c1 + "/0", c2 + "/0", c1 + "/1", c2 + "/1"}
	if got := strings.Join(order, " "); got != strings.Join(want, " ") {
		t.Fatalf("grant order = %s, want round-robin %s", got, strings.Join(want, " "))
	}
	if g, _ := s.Acquire("w9"); g != nil {
		t.Fatalf("fifth grant = %+v, want nothing schedulable", g)
	}

	// Expire only c1/0 (the others heartbeat); its reschedule must be the
	// only grantable shard and must carry -resume.
	*now = now.Add(45 * time.Second)
	for _, g := range grants[1:] {
		if err := s.Heartbeat(g.Lease); err != nil {
			t.Fatal(err)
		}
	}
	*now = now.Add(30 * time.Second)
	regrant := mustAcquire(t, s, "w9")
	if regrant.Campaign != c1 || regrant.Shard != 0 || !regrant.Resume {
		t.Fatalf("post-expiry regrant = %+v, want campaign %s shard 0 with -resume", regrant, c1)
	}
	if err := s.Heartbeat(grants[0].Lease); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("zombie heartbeat error = %v, want ErrLeaseGone", err)
	}
}

// TestRecordingCampaignNotLeased: while the record-once pass runs, the
// campaign's shards must not lease (a shard started live would duplicate
// the pre-failure work the artifact is about to make redundant); once the
// recording resolves, grants carry Artifact=true. A submission carrying
// -no-fast-forward skips recording entirely and leases immediately.
func TestRecordingCampaignNotLeased(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	release := make(chan struct{})
	done := make(chan struct{})
	s.Record = func(dir string, args []string) (string, error) {
		defer close(done)
		<-release
		return dir + "/campaign.xfdr", nil
	}

	mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1})
	if g, _ := s.Acquire("w1"); g != nil {
		t.Fatalf("grant while recording = %+v, want nothing schedulable", g)
	}
	close(release)
	<-done
	// recordCampaign publishes the artifact under the lock after Record
	// returns; one more lock round-trip orders this Acquire after it.
	deadline := time.Now().Add(5 * time.Second)
	var grant *LeaseGrant
	for grant == nil && time.Now().Before(deadline) {
		grant, _ = s.Acquire("w1")
	}
	if grant == nil {
		t.Fatal("no lease granted after recording resolved")
	}
	if !grant.Artifact {
		t.Error("grant after recording has Artifact=false, want true")
	}

	// -no-fast-forward: no record pass, immediate lease, no artifact.
	s.Record = func(dir string, args []string) (string, error) {
		t.Error("record pass launched for a -no-fast-forward submission")
		return "", nil
	}
	mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree", "-no-fast-forward"}, Shards: 1})
	g2 := mustAcquire(t, s, "w2")
	if g2.Artifact {
		t.Error("-no-fast-forward grant has Artifact=true, want false")
	}
}

// TestFailedRecordingFallsBackToLive: a failed record pass is not fatal —
// the shards lease normally, just without an artifact.
func TestFailedRecordingFallsBackToLive(t *testing.T) {
	s, _ := testServer(t, time.Minute)
	done := make(chan struct{})
	s.Record = func(dir string, args []string) (string, error) {
		defer close(done)
		return "", fmt.Errorf("record child: boom")
	}
	mustSubmit(t, s, CampaignSpec{Args: []string{"-workload", "btree"}, Shards: 1})
	<-done
	deadline := time.Now().Add(5 * time.Second)
	var grant *LeaseGrant
	for grant == nil && time.Now().Before(deadline) {
		grant, _ = s.Acquire("w1")
	}
	if grant == nil {
		t.Fatal("no lease granted after failed recording")
	}
	if grant.Artifact {
		t.Error("failed recording still advertised an artifact")
	}
}
