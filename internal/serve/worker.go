package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"github.com/pmemgo/xfdetector/internal/ckpt"
)

// ShardArgsEnv carries a shard child's argument vector, JSON-encoded, to
// the child process. The child's real argv carries the same flags (so ps
// and pkill can see them), but the environment copy is authoritative:
// when the supervisor is a re-exec'd test binary, argv must not reach the
// testing package's flag parser. The -spawn orchestrator and the worker
// loop share this convention (and therefore the same child binaries).
const ShardArgsEnv = "XFDETECTOR_SHARD_ARGS"

// ErrWorkerCrashed is returned by Worker.Run when the deterministic crash
// hook fired: the worker killed its shard child and vanished without
// finishing or releasing the lease, exactly like a machine going down.
// The daemon finds out by heartbeat expiry.
var ErrWorkerCrashed = errors.New("worker crash hook fired")

// forwardLineCap bounds how much of one shard output line a supervisor
// forwards for display; parsing paths never truncate.
const forwardLineCap = 16 << 10

// Worker runs shard leases against a daemon: poll for a lease, exec the
// shard child it names, stream the child's checkpoint stdout back line by
// line (each send renews the heartbeat; a ticker covers line-less
// stretches inside long post-runs), and resolve the lease with the
// child's exit code. On teardown — shutdown, or the daemon declaring the
// lease gone — the child gets SIGTERM and, after Grace, SIGKILL.
type Worker struct {
	Client *Client
	// ID names this worker in leases and logs.
	ID string
	// Exe is the xfdetector binary to exec for shard children; ExtraEnv
	// is appended to its environment.
	Exe      string
	ExtraEnv []string
	// Caps are the capability tags advertised on every lease poll (e.g.
	// CapFileBacked); the daemon only grants shards whose campaigns this
	// worker can actually run.
	Caps []string
	// Poll is the idle lease-poll interval, HeartbeatEvery the keepalive
	// period while a child runs, Grace the SIGTERM→SIGKILL escalation.
	Poll           time.Duration
	HeartbeatEvery time.Duration
	Grace          time.Duration
	// Output receives forwarded shard progress lines (default stderr).
	Output io.Writer
	// CrashAfterLines, when > 0, is the deterministic crash hook for the
	// lease-expiry tests and CI smoke: after streaming that many
	// checkpoint lines the worker SIGKILLs its child and returns
	// ErrWorkerCrashed without telling the daemon anything.
	CrashAfterLines int

	crashed bool
	sent    int
}

func (w *Worker) out() io.Writer {
	if w.Output != nil {
		return w.Output
	}
	return os.Stderr
}

func (w *Worker) logf(format string, args ...any) {
	fmt.Fprintf(w.out(), "[worker %s] "+format+"\n", append([]any{w.ID}, args...)...)
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 2 * time.Second
}

// Run processes leases until the context is cancelled (returning
// ctx.Err()) or the crash hook fires (ErrWorkerCrashed). A daemon that is
// briefly unreachable is retried at the poll interval — workers outlive
// daemon restarts.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := w.Client.Acquire(w.ID, w.Caps...)
		if err != nil {
			w.logf("lease poll failed (will retry): %v", err)
			grant = nil
		}
		if grant == nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.poll()):
			}
			continue
		}
		if err := w.runLease(ctx, grant); err != nil {
			if errors.Is(err, ErrWorkerCrashed) {
				return err
			}
			w.logf("lease %s: %v", grant.Lease, err)
		}
	}
}

// runLease executes one shard child to an outcome and resolves the lease.
func (w *Worker) runLease(ctx context.Context, grant *LeaseGrant) error {
	w.logf("lease %s: campaign %s shard %d/%d%s", grant.Lease, grant.Campaign,
		grant.Shard, grant.Shards, map[bool]string{true: " (-resume)", false: ""}[grant.Resume])

	// Fast-forward: fetch the campaign's recorded pre-failure artifact and
	// hand it to the child with -from-record. Any fetch failure downgrades
	// to a live pre-failure stage — slower, never unsound.
	if grant.Artifact {
		if path, err := w.fetchArtifact(grant.Lease); err != nil {
			w.logf("lease %s: artifact fetch failed (%v); running the pre-failure stage live", grant.Lease, err)
		} else {
			defer os.Remove(path)
			grant.Args = append(grant.Args, "-from-record", path)
			w.logf("lease %s: fetched recorded artifact; shard fast-forwards with -from-record", grant.Lease)
		}
	}

	encoded, err := json.Marshal(grant.Args)
	if err != nil {
		return err
	}
	cmd := exec.Command(w.Exe, grant.Args...)
	// The lease rides along so the child's runner can claim crash-state
	// classes against the daemon's per-campaign registry.
	cmd.Env = append(append(os.Environ(), w.ExtraEnv...),
		ShardArgsEnv+"="+string(encoded),
		VerdictURLEnv+"="+w.Client.BaseURL,
		VerdictLeaseEnv+"="+grant.Lease)
	// The daemon-held checkpoint rides in on stdin: with -checkpoint -
	// and -resume the child seeds its completed-failure-point set from
	// it, the crash-respawn semantics of -spawn carried over the network.
	cmd.Stdin = strings.NewReader(grant.Checkpoint)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}

	// waitDone closes once the child has been waited on; teardown closes
	// leaseLost at most once to trigger the SIGTERM→SIGKILL escalation.
	waitDone := make(chan struct{})
	leaseLost := make(chan struct{})
	var loseOnce sync.Once
	loseLease := func() { loseOnce.Do(func() { close(leaseLost) }) }
	go func() {
		select {
		case <-ctx.Done():
		case <-leaseLost:
		case <-waitDone:
			return
		}
		TerminateThenKill(cmd.Process, waitDone, w.Grace)
	}()

	// Keepalive: a post-run can run far longer than the lease TTL without
	// emitting a checkpoint line.
	hbEvery := w.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = 5 * time.Second
	}
	hbStop := make(chan struct{})
	go func() {
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				if err := w.Client.Heartbeat(grant.Lease); errors.Is(err, ErrLeaseGone) {
					w.logf("lease %s: daemon expired it; tearing down shard child", grant.Lease)
					loseLease()
					return
				}
			}
		}
	}()

	w.sent = 0
	var fwd sync.WaitGroup
	fwd.Add(1)
	go func() {
		defer fwd.Done()
		ckpt.ForEachLine(stderr, func(line string) error {
			fmt.Fprintf(w.out(), "[worker %s shard %d] %s\n", w.ID, grant.Shard, ckpt.Truncate(line, forwardLineCap))
			return nil
		})
	}()

	// The checkpoint stream: every stdout line is one durable JSONL
	// record, forwarded verbatim (never truncated — it is the wire
	// format, not display output).
	errStreamStop := errors.New("stop streaming")
	streamErr := ckpt.ForEachLine(stdout, func(line string) error {
		if strings.TrimSpace(line) == "" {
			return nil
		}
		if err := w.Client.SendLines(grant.Lease, []byte(line+"\n")); err != nil {
			if errors.Is(err, ErrLeaseGone) {
				w.logf("lease %s: daemon rejected lines; tearing down shard child", grant.Lease)
				loseLease()
				return errStreamStop
			}
			w.logf("lease %s: streaming line failed: %v", grant.Lease, err)
		}
		w.sent++
		if w.CrashAfterLines > 0 && w.sent >= w.CrashAfterLines && !w.crashed {
			w.crashed = true
			cmd.Process.Kill()
			return errStreamStop
		}
		return nil
	})
	if streamErr != nil && streamErr != errStreamStop {
		w.logf("lease %s: checkpoint stream error: %v", grant.Lease, streamErr)
	}
	// Drain whatever the child still writes after we stopped streaming so
	// its pipe cannot block; then reap it.
	io.Copy(io.Discard, stdout)
	fwd.Wait()
	waitErr := cmd.Wait()
	close(waitDone)
	close(hbStop)

	code := 0
	if waitErr != nil {
		code = -1
		var ee *exec.ExitError
		if errors.As(waitErr, &ee) {
			code = ee.ExitCode()
		}
	}

	switch {
	case w.crashed:
		// Crash hook: vanish. No finish, no release — the lease dies by
		// heartbeat expiry, exactly like a machine loss.
		return ErrWorkerCrashed
	case leaseClosed(leaseLost) && ctx.Err() == nil:
		// The daemon already expired the lease; nothing to resolve.
		return nil
	case ctx.Err() != nil:
		// Shutdown teardown: release so the daemon reschedules without
		// waiting out the TTL. Best effort — the lease would expire
		// anyway.
		w.Client.Finish(grant.Lease, code, true)
		return ctx.Err()
	default:
		w.logf("lease %s: shard %d exited %d", grant.Lease, grant.Shard, code)
		return w.Client.Finish(grant.Lease, code, false)
	}
}

// fetchArtifact downloads the lease's campaign artifact into a temp file
// and returns its path; the caller removes it after the shard child exits.
func (w *Worker) fetchArtifact(leaseID string) (string, error) {
	f, err := os.CreateTemp("", "xfdetector-*.xfdr")
	if err != nil {
		return "", err
	}
	if err := w.Client.FetchArtifact(leaseID, f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	return f.Name(), nil
}

func leaseClosed(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}
