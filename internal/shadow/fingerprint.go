package shadow

// Crash-state fingerprinting for representative-testing pruning.
//
// Two failure points whose shadow states classify every byte identically —
// and attribute it to the same pre-failure writer — produce the same
// post-failure verdict for any post-failure execution that branches only on
// classification-visible state, so the detection engine tests one
// representative per fingerprint class and attributes its verdict to the
// members (core's pruning layer; Pathfinder/WITCHER-style representative
// testing).
//
// CrashFingerprint therefore hashes, per byte, exactly the inputs of
// PostChecker.classify collapsed to its *outcome space*: the symbol is the
// classification bucket the byte would fall into (never-written, benign
// commit variable, tx-protected, unpersisted race, Eq. 3 semantic bug,
// consistent) paired with its interned writer index. Raw epochs, data
// values, the pending-line bookkeeping and the transaction/scratch state
// are deliberately excluded: they either cannot influence a post-failure
// verdict or enter it only through the Eq. 3 outcome, which the symbol
// already encodes. This is what lets long runs of uniform update loops
// collapse into one class.
//
// The sparse representation caches one hash per 4 KiB shadow page
// (page.fpHash), invalidated by the mutation paths (stores, flushes,
// fences, TX_ADD, commit-record updates); a failure point then only
// re-hashes the pages dirtied since the previous one. The dense ablation
// representation recomputes chunk hashes of the same 4 KiB granularity with
// the same symbols, so sparse and dense shadows produce byte-identical
// fingerprints. Commit-variable geometry (which addresses are commit
// variables or associated with one) is folded into the final fingerprint
// directly; registrations additionally drop the cached hashes of the pages
// their ranges overlap, since the per-byte symbols under new geometry
// change bucket.

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvMix(h, v uint64) uint64 {
	h ^= v
	return h * fnvPrime
}

// emptyPageHash is the hash of a page whose every byte has the zero symbol
// (writeEpoch 0). Pages hashing to it contribute nothing to a fingerprint,
// exactly like never-allocated pages, keeping sparse and dense fingerprints
// identical.
var emptyPageHash = func() uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < pageBytes; i++ {
		h = fnvMix(h, 0)
	}
	return h
}()

// collidingPageHash is the constant the colliding-fingerprint mutant
// substitutes for every non-empty page hash (mutation.go); distinct from
// emptyPageHash so allocated pages still differ from untouched ones.
const collidingPageHash = 0x9e3779b97f4a7c15

// fpSymbol maps one byte's shadow metadata to its classification symbol,
// mirroring PostChecker.classify's decision order exactly. The writer index
// is folded in because report identity (DedupKey) depends on the writer
// location: two states that classify alike but blame different writers must
// not share a class.
func (s *PM) fpSymbol(b uint64, st PersistState, we uint32, pe uint32, txSafe bool, w uint32) uint64 {
	if we == 0 {
		return 0
	}
	if s.isCommitVarByte(b) {
		return 1<<32 | uint64(w)
	}
	if txSafe {
		return 2<<32 | uint64(w)
	}
	if st != Persisted {
		// Modified → 4, WritebackPending → 5.
		return (3+uint64(st))<<32 | uint64(w)
	}
	if cv := s.assocFor(b); cv != nil && !semanticallyConsistent(cv, we, pe) {
		return 7<<32 | uint64(w)
	}
	return 6<<32 | uint64(w)
}

// pageHash folds the symbols of one sparse page, caching the result on the
// page until a mutation invalidates it.
func (s *PM) pageHash(pi int, pg *page) uint64 {
	if pg.fpValid {
		return pg.fpHash
	}
	base := uint64(pi) << pageShift
	h := uint64(fnvOffset)
	for i := 0; i < pageBytes; i++ {
		b := base + uint64(i)
		h = fnvMix(h, s.fpSymbol(b, pg.state[i], pg.writeEpoch[i], pg.persistEpoch[i], pg.txSafe[i], pg.writerIdx[i]))
	}
	pg.fpHash = h
	pg.fpValid = true
	return h
}

// denseChunkHash folds the symbols of one 4 KiB chunk of the dense arrays;
// bytes past the pool size fold the zero symbol, matching the sparse page
// layout.
func (s *PM) denseChunkHash(pi int) uint64 {
	d := s.d
	base := uint64(pi) << pageShift
	h := uint64(fnvOffset)
	for i := 0; i < pageBytes; i++ {
		b := base + uint64(i)
		var sym uint64
		if b < s.size {
			sym = s.fpSymbol(b, d.state[b], d.writeEpoch[b], d.persistEpoch[b], d.txSafe[b], d.writerIdx[b])
		}
		h = fnvMix(h, sym)
	}
	return h
}

// CrashFingerprint returns the canonical crash-state fingerprint of the
// shadow's current trace position: a hash over the classification symbols
// of every touched page plus the commit-variable geometry. Equal
// fingerprints mean every byte classifies identically with an identical
// writer attribution. Call it on the canonical shadow, at a failure point,
// from the thread advancing the shadow.
func (s *PM) CrashFingerprint() uint64 {
	h := uint64(fnvOffset)
	if s.dense {
		for pi := 0; pi < numPages(s.size); pi++ {
			ph := s.denseChunkHash(pi)
			if ph == emptyPageHash {
				continue
			}
			if collidingFingerprintForTest {
				ph = collidingPageHash
			}
			h = fnvMix(h, uint64(pi)+1)
			h = fnvMix(h, ph)
		}
	} else {
		for pi, pg := range s.pages {
			if pg == nil {
				continue
			}
			ph := s.pageHash(pi, pg)
			if ph == emptyPageHash {
				continue
			}
			if collidingFingerprintForTest {
				ph = collidingPageHash
			}
			h = fnvMix(h, uint64(pi)+1)
			h = fnvMix(h, ph)
		}
	}
	// Commit-variable geometry: registering a variable or an associated
	// range changes how bytes classify without touching any page, so the
	// geometry is part of the fingerprint. (The commit-write *records* enter
	// through the Eq. 3 outcomes in the page symbols; their mutations
	// invalidate the affected pages — see noteCommitWrites.)
	h = fnvMix(h, uint64(len(s.commitVars)))
	for _, cv := range s.commitVars {
		h = fnvMix(h, cv.addr)
		h = fnvMix(h, cv.size)
	}
	h = fnvMix(h, uint64(len(s.assocs)))
	for _, a := range s.assocs {
		h = fnvMix(h, uint64(a.varIdx))
		h = fnvMix(h, a.addr)
		h = fnvMix(h, a.size)
	}
	return h
}

// invalidateFP drops a page's cached fingerprint hash. The stale-fingerprint
// mutant (mutation.go) freezes stuck pages to prove the differential suite
// catches a missing invalidation.
func (pg *page) invalidateFP() {
	if pg.fpStuck {
		return
	}
	pg.fpValid = false
}

// invalidateRangeFP invalidates the cached page hashes overlapping
// [addr, addr+size): used when a commit variable's write record changes,
// which flips Eq. 3 outcomes of its associated bytes without any page
// mutation. Pages never allocated need no invalidation (nothing cached),
// and the dense representation caches nothing.
func (s *PM) invalidateRangeFP(addr, size uint64) {
	if s.dense {
		return
	}
	addr, end := s.clip(addr, size)
	for b := addr; b < end; {
		pi, _, _, next := pageSpan(b, end)
		if pg := s.pages[pi]; pg != nil {
			pg.invalidateFP()
		}
		b = next
	}
}
