package shadow

// Post-failure trace checking (§5.4, "Post-failure Trace").
//
// A PostChecker classifies every post-failure read against the shadow PM
// state frozen at the failure point. Writes performed by the post-failure
// execution overwrite the old data, so subsequently reading them is safe;
// they are tracked in a per-failure-point overlay. The paper's first
// optimization (check only the first read of each location) is implemented
// with a per-failure-point "checked" marker. Both use generation counters
// over the per-byte scratch arrays so that checking a failure point
// allocates nothing proportional to pool size.
//
// In the sparse representation the scratch lives inside the shadow pages:
// a page never touched pre-failure needs no overlay or checked marks,
// because every byte of it has writeEpoch 0 and classifies OK on every
// read — so the checker skips unallocated pages entirely. On a fork, the
// first scratch update of a shared page privatizes it (writablePage), so
// concurrent failure points never see each other's overlay.

// Class is the classification of a post-failure read.
type Class uint8

const (
	// ClassOK: reading the byte cannot cause a cross-failure bug.
	ClassOK Class = iota
	// ClassBenign: the byte belongs to a commit variable; the read is an
	// intentional, well-defined benign cross-failure race (§3.1).
	ClassBenign
	// ClassRace: cross-failure race — the byte was modified pre-failure
	// and is not guaranteed persisted (¬(Wx ≤p F)).
	ClassRace
	// ClassSemantic: cross-failure semantic bug — the byte is persisted
	// but semantically inconsistent under Eq. 3.
	ClassSemantic
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassBenign:
		return "benign-race"
	case ClassRace:
		return "cross-failure-race"
	case ClassSemantic:
		return "cross-failure-semantic-bug"
	}
	return "unknown"
}

// Finding is one classified post-failure read of a contiguous byte range
// with a single last writer.
type Finding struct {
	Class    Class
	Addr     uint64
	Size     uint64
	WriterIP string       // source location of the pre-failure writer
	State    PersistState // persistence state of the range at the failure
}

// PostChecker checks one post-failure execution against the shadow state at
// its failure point. Create one per failure point with BeginPostCheck.
type PostChecker struct {
	pm *PM
	// Benign counts benign cross-failure race bytes observed.
	Benign uint64
}

// BeginPostCheck starts checking a new post-failure execution.
func (s *PM) BeginPostCheck() *PostChecker {
	s.postGen++
	return &PostChecker{pm: s}
}

// OnWrite records a post-failure write: the range becomes consistent for
// the remainder of this post-failure execution. (Inconsistencies introduced
// by post-failure writes are tested when that code later runs as the
// pre-failure stage — §5.4.)
func (c *PostChecker) OnWrite(addr, size uint64) {
	s := c.pm
	addr, end := s.clip(addr, size)
	if s.dense {
		for b := addr; b < end; b++ {
			s.d.postWritten[b] = s.postGen
		}
		return
	}
	for b := addr; b < end; {
		pi, lo, hi, next := pageSpan(b, end)
		if s.pages[pi] == nil {
			// Untouched slab: every byte has writeEpoch 0 and classifies
			// OK with or without the overlay mark, so no page is allocated
			// for post-failure scratch.
			b = next
			continue
		}
		pg := s.writablePage(pi)
		fillU32(pg.postWritten[lo:hi], s.postGen)
		b = next
	}
}

// OnRead classifies a post-failure read and returns the non-OK findings,
// with contiguous bytes of equal classification and writer collapsed into
// single findings. Bytes already checked during this post-failure execution
// are skipped (same result as the first check).
func (c *PostChecker) OnRead(addr, size uint64) []Finding {
	s := c.pm
	addr, end := s.clip(addr, size)
	var findings []Finding
	var cur *Finding
	flush := func() { cur = nil }
	emit := func(b uint64, class Class, st PersistState) {
		switch class {
		case ClassOK:
			flush()
			return
		case ClassBenign:
			c.Benign++
			flush()
			return
		}
		wip := s.WriterIP(b)
		if cur != nil && cur.Class == class && cur.WriterIP == wip && cur.Addr+cur.Size == b {
			cur.Size++
			return
		}
		findings = append(findings, Finding{Class: class, Addr: b, Size: 1, WriterIP: wip, State: st})
		cur = &findings[len(findings)-1]
	}
	if s.dense {
		d := s.d
		for b := addr; b < end; b++ {
			if d.postWritten[b] == s.postGen || d.checked[b] == s.postGen {
				flush()
				continue
			}
			d.checked[b] = s.postGen
			class, st := c.classify(b, d.state[b], d.writeEpoch[b], d.persistEpoch[b], d.txSafe[b])
			emit(b, class, st)
		}
		return findings
	}
	for b := addr; b < end; {
		pi, lo, hi, next := pageSpan(b, end)
		if s.pages[pi] == nil {
			// Never written pre-failure: every byte classifies OK (and,
			// unlike the dense path, needs no checked mark — re-reading
			// yields the same OK without scratch).
			flush()
			b = next
			continue
		}
		pg := s.writablePage(pi)
		for i := lo; i < hi; i++ {
			if pg.postWritten[i] == s.postGen || pg.checked[i] == s.postGen {
				flush()
				continue
			}
			pg.checked[i] = s.postGen
			bb := b + uint64(i-lo)
			class, st := c.classify(bb, pg.state[i], pg.writeEpoch[i], pg.persistEpoch[i], pg.txSafe[i])
			emit(bb, class, st)
		}
		b = next
	}
	return findings
}

// classify implements the check order of §5.4 for the byte at b, given its
// per-byte metadata: consistency first (a consistent location is certainly
// bug-free), then persistence, then semantic consistency for persisted
// data.
func (c *PostChecker) classify(b uint64, st PersistState, writeEpoch, persistEpoch uint32, txSafe bool) (Class, PersistState) {
	s := c.pm
	// Not modified during the pre-failure stage: a cross-failure bug
	// requires a pre-failure writer (§2.2).
	if writeEpoch == 0 {
		return ClassOK, st
	}
	// Reading a commit variable is a benign cross-failure race.
	if s.isCommitVarByte(b) {
		return ClassBenign, st
	}
	// Undo-log protection: TX_ADDed (or transactionally allocated) data is
	// recoverable no matter where the failure hits.
	if txSafe {
		return ClassOK, st
	}
	// Cross-failure race: not guaranteed persisted before the failure.
	if st != Persisted {
		return ClassRace, st
	}
	// Persisted, but possibly semantically inconsistent (Eq. 3).
	if cv := s.assocFor(b); cv != nil {
		if !semanticallyConsistent(cv, writeEpoch, persistEpoch) {
			return ClassSemantic, st
		}
	}
	return ClassOK, st
}
