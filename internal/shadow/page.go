package shadow

// Sparse paged shadow representation.
//
// The default shadow PM stores its per-byte metadata in lazily allocated
// 4 KiB pages (struct-of-arrays per page), so shadow memory is proportional
// to the bytes the traced execution actually touches, not to the pool size
// — the standard sanitizer shadow-memory layout. A page that was never
// allocated means every byte of its range is Unmodified with writeEpoch 0,
// which the accessors and the post-failure checker exploit to skip whole
// pages.
//
// Pages are reference-counted so that parallel detection can capture
// copy-on-write forks of the canonical shadow (Fork): a fork shares every
// page with its parent, and whichever side writes first privatizes the page
// (writablePage). The pre-failure thread is the only writer of the
// canonical shadow and each fork is written only by the worker that owns
// it, so the only cross-thread traffic on a shared page is the refcount,
// which is manipulated atomically; the page arrays themselves are immutable
// while shared.

import (
	"sync/atomic"
	"unsafe"
)

const (
	// pageShift/pageBytes mirror pmem's 4 KiB snapshot-page granularity.
	pageShift = 12
	pageBytes = 1 << pageShift
	pageMask  = pageBytes - 1
)

// page holds the per-byte shadow metadata of one 4 KiB slab of the pool.
type page struct {
	// refs counts the shadow tables referencing this page: the canonical
	// shadow plus any live forks. A page with refs > 1 is immutable; a
	// holder that needs to write clones it first (writablePage) and drops
	// its reference to the shared original.
	refs int32

	state        [pageBytes]PersistState
	writeEpoch   [pageBytes]uint32
	persistEpoch [pageBytes]uint32
	writerIdx    [pageBytes]uint32
	txSafe       [pageBytes]bool
	txAddGen     [pageBytes]uint32
	txExplicit   [pageBytes]uint32
	postWritten  [pageBytes]uint32
	checked      [pageBytes]uint32

	// anyTxSafe is a conservative hint: false guarantees no byte of the
	// page has undo-log protection, which lets the store fast path skip
	// the per-byte txSafe scan. Set by applyTxAdd and never cleared.
	anyTxSafe bool

	// fpHash caches the page's crash-state fingerprint hash
	// (fingerprint.go) while fpValid is set; every mutation path drops the
	// cache. Only the thread advancing the canonical shadow reads or
	// writes these fields on shared pages — workers touch them only on
	// pages they privatized — and a COW clone starts with an empty cache.
	// fpStuck exists solely for the stale-fingerprint mutant
	// (mutation.go): a stuck page ignores invalidation.
	fpHash  uint64
	fpValid bool
	fpStuck bool
}

// pageFootprint is the accounted size of one shadow page.
const pageFootprint = int64(unsafe.Sizeof(page{}))

// denseBytesPerByte is the dense representation's shadow cost per pool
// byte: one PersistState + bool and seven uint32 arrays.
const denseBytesPerByte = 30

func denseFootprint(size uint64) int64 { return int64(size) * denseBytesPerByte }

func numPages(size uint64) int { return int((size + pageBytes - 1) >> pageShift) }

// Stats aggregates shadow memory accounting for one detection run. The
// canonical shadow and every fork taken from it share one Stats, so the
// peak covers all concurrently live shadow state across workers.
type Stats struct {
	live  atomic.Int64
	peak  atomic.Int64
	pages atomic.Int64 // cumulative pages allocated, including COW clones
}

func (st *Stats) grow(n int64) {
	v := st.live.Add(n)
	for {
		p := st.peak.Load()
		if v <= p || st.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

func (st *Stats) shrink(n int64) { st.live.Add(-n) }

// MemStats reports the peak number of live shadow bytes over the run —
// canonical shadow plus all concurrently live forks — and the cumulative
// number of 4 KiB shadow pages allocated (lazy allocations plus
// copy-on-write clones; zero in dense mode, whose whole-pool arrays are
// accounted in the byte peak instead).
func (s *PM) MemStats() (peakBytes, pagesAllocated uint64) {
	return uint64(s.stats.peak.Load()), uint64(s.stats.pages.Load())
}

func (s *PM) newPage() *page {
	pg := &page{refs: 1}
	s.stats.pages.Add(1)
	s.stats.grow(pageFootprint)
	return pg
}

func (s *PM) dropPageRef(pg *page) {
	if atomic.AddInt32(&pg.refs, -1) == 0 {
		s.stats.shrink(pageFootprint)
	}
}

// adoptPageRef takes one more reference on an already-live page (a cold
// singleton gaining a slot, compact.go). No accounting: the page's
// footprint was counted at allocation and shrinks only when the last
// reference drops.
func adoptPageRef(pg *page) { atomic.AddInt32(&pg.refs, 1) }

// writablePage returns the page at index pi ready for mutation: allocated
// if the slab was never touched, privatized (cloned) if it is shared with
// a fork. The stale-fork mutation switch (mutation.go) deliberately skips
// the privatization so the differential suite can prove it would catch a
// broken COW contract.
func (s *PM) writablePage(pi int) *page {
	pg := s.pages[pi]
	if pg == nil {
		pg = s.newPage()
		s.pages[pi] = pg
		return pg
	}
	if atomic.LoadInt32(&pg.refs) > 1 && !staleForkPageForTest {
		np := s.newPage()
		np.state = pg.state
		np.writeEpoch = pg.writeEpoch
		np.persistEpoch = pg.persistEpoch
		np.writerIdx = pg.writerIdx
		np.txSafe = pg.txSafe
		np.txAddGen = pg.txAddGen
		np.txExplicit = pg.txExplicit
		np.postWritten = pg.postWritten
		np.checked = pg.checked
		np.anyTxSafe = pg.anyTxSafe
		// The fingerprint cache (fpHash/fpValid) is deliberately not
		// copied: the clone is about to be mutated, and leaving the cache
		// empty keeps these fields single-writer on shared pages. The
		// mutant stickiness does carry over.
		np.fpStuck = pg.fpStuck
		s.pages[pi] = np
		s.dropPageRef(pg)
		return np
	}
	return pg
}

// pageSpan splits [b, end) at b's page boundary: it returns the page
// index, the intra-page range [lo, hi) the span covers, and the first
// address past the span.
func pageSpan(b, end uint64) (pi, lo, hi int, next uint64) {
	pi = int(b >> pageShift)
	lo = int(b & pageMask)
	next = (uint64(pi) + 1) << pageShift
	if end < next {
		next = end
	}
	hi = lo + int(next-b)
	return
}

// Fork captures an immutable copy-on-write snapshot of the shadow at its
// current trace position. The fork shares all shadow pages with its parent
// (refcounted; either side privatizes a page before writing it), deep-
// copies the commit-variable records — the parent keeps mutating those in
// place at every store and fence — and shares the interned-writer table
// under the same stable-prefix aliasing contract the parallel engine uses
// for the pre-failure trace. Fork must be called from the thread advancing
// the shadow; handing the fork to another goroutine (e.g. through a
// channel) establishes the ordering its reads rely on.
//
// A fork supports the post-failure check surface — BeginPostCheck,
// PostChecker, the accessors, and Apply of RegCommitVar/RegCommitRange —
// but must not replay pre-failure entries. Call Release when done.
func (s *PM) Fork() *PM {
	f := &PM{
		size:    s.size,
		dense:   s.dense,
		clock:   s.clock,
		txDepth: s.txDepth,
		txGen:   s.txGen,
		postGen: s.postGen,
		writers: s.writers,
		assocs:  s.assocs[:len(s.assocs):len(s.assocs)],
		stats:   s.stats,
	}
	f.curTx = append([]txRange(nil), s.curTx...)
	f.commitVars = make([]*commitVar, len(s.commitVars))
	for i, cv := range s.commitVars {
		c := *cv
		f.commitVars[i] = &c
	}
	if s.dense {
		f.d = s.d.clone()
		s.stats.grow(denseFootprint(s.size))
		return f
	}
	f.pages = make([]*page, len(s.pages))
	copy(f.pages, s.pages)
	for _, pg := range f.pages {
		if pg != nil {
			atomic.AddInt32(&pg.refs, 1)
		}
	}
	return f
}

// Release returns a fork's shadow pages (or its dense copy) to the
// accounting; pages whose last reference this was stop counting toward
// live shadow bytes. The fork must not be used afterwards.
func (s *PM) Release() {
	if s.dense {
		if s.d != nil {
			s.d = nil
			s.stats.shrink(denseFootprint(s.size))
		}
		return
	}
	for i, pg := range s.pages {
		if pg != nil {
			s.dropPageRef(pg)
			s.pages[i] = nil
		}
	}
}

func fillState(a []PersistState, v PersistState) {
	for i := range a {
		a[i] = v
	}
}

func fillU32(a []uint32, v uint32) {
	for i := range a {
		a[i] = v
	}
}

func fillBool(a []bool, v bool) {
	for i := range a {
		a[i] = v
	}
}
