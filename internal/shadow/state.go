package shadow

// Engine-state serialization for recorded campaigns (internal/record).
//
// A recorded-campaign artifact stores periodic checkpoints of the canonical
// shadow at failure-point boundaries so a shard can fast-forward to its
// first owned failure point instead of replaying the whole pre-failure
// trace. WriteState captures everything the pre-failure state machine
// carries forward — the sparse pages (including the PR 6 fingerprint
// cache), the pending-line fence fast-path map, the interned writer table,
// the transaction state, and the commit-variable records — and ReadState
// reconstructs an equivalent canonical shadow.
//
// Post-failure scratch (postWritten/checked/postGen) is deliberately not
// serialized: it is zero on the recording run, whose post stage never
// executes, and every post-failure check runs on a Fork whose scratch
// starts from a fresh generation anyway. Cold-page compaction state
// (compact.go) is likewise not serialized: the recording pool is
// memory-backed, so compaction is never active while recording, and a
// replaying shard that re-enables it simply starts with empty cold maps —
// compaction is fingerprint-transparent either way. Only sparse shadows
// serialize; the dense ablation representation falls back to full-trace
// replay in core.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	stateMagic   = 0x53444658 // "XFDS"
	stateVersion = 1
)

// ErrDenseState marks an attempt to serialize the dense ablation shadow,
// which has no checkpoint form.
var ErrDenseState = errors.New("shadow: dense shadow state cannot be serialized")

type stateWriter struct {
	w   *bufio.Writer
	err error
	b   [8]byte
}

func (sw *stateWriter) u8(v uint8) {
	if sw.err == nil {
		sw.err = sw.w.WriteByte(v)
	}
}

func (sw *stateWriter) u32(v uint32) {
	if sw.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(sw.b[:4], v)
	_, sw.err = sw.w.Write(sw.b[:4])
}

func (sw *stateWriter) u64(v uint64) {
	if sw.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(sw.b[:8], v)
	_, sw.err = sw.w.Write(sw.b[:8])
}

func (sw *stateWriter) str(s string) {
	sw.u32(uint32(len(s)))
	if sw.err == nil {
		_, sw.err = sw.w.WriteString(s)
	}
}

func (sw *stateWriter) u32s(a []uint32) {
	if sw.err != nil {
		return
	}
	buf := make([]byte, 4*len(a))
	for i, v := range a {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	_, sw.err = sw.w.Write(buf)
}

func (sw *stateWriter) bools(a []bool) {
	if sw.err != nil {
		return
	}
	buf := make([]byte, len(a))
	for i, v := range a {
		if v {
			buf[i] = 1
		}
	}
	_, sw.err = sw.w.Write(buf)
}

// WriteState serializes the shadow's complete pre-failure state to w.
// Sparse canonical shadows only: forks and the dense representation are
// rejected.
func (s *PM) WriteState(w io.Writer) error {
	if s.dense {
		return ErrDenseState
	}
	sw := &stateWriter{w: bufio.NewWriterSize(w, 1<<16)}
	sw.u32(stateMagic)
	sw.u32(stateVersion)
	sw.u64(s.size)
	sw.u32(s.clock)
	sw.u32(uint32(s.txDepth))
	sw.u32(s.txGen)

	sw.u32(uint32(len(s.writers)))
	for _, ip := range s.writers {
		sw.str(ip)
	}

	sw.u32(uint32(len(s.pendingLines)))
	for line, full := range s.pendingLines {
		sw.u64(line)
		if full {
			sw.u8(1)
		} else {
			sw.u8(0)
		}
	}

	sw.u32(uint32(len(s.curTx)))
	for _, r := range s.curTx {
		sw.u64(r.addr)
		sw.u64(r.size)
	}

	sw.u32(uint32(len(s.commitVars)))
	for _, cv := range s.commitVars {
		sw.u64(cv.addr)
		sw.u64(cv.size)
		sw.u32(cv.last.writeEpoch)
		sw.u32(cv.last.persistEpoch)
		sw.u32(cv.prev.writeEpoch)
		sw.u32(cv.prev.persistEpoch)
		sw.u64(uint64(cv.nWrites))
		if cv.pendingPersist {
			sw.u8(1)
		} else {
			sw.u8(0)
		}
	}

	sw.u32(uint32(len(s.assocs)))
	for _, a := range s.assocs {
		sw.u32(uint32(a.varIdx))
		sw.u64(a.addr)
		sw.u64(a.size)
	}

	nPages := uint32(0)
	for _, pg := range s.pages {
		if pg != nil {
			nPages++
		}
	}
	sw.u32(nPages)
	for pi, pg := range s.pages {
		if pg == nil {
			continue
		}
		sw.u32(uint32(pi))
		if sw.err == nil {
			_, sw.err = sw.w.Write(stateBytes(pg.state[:]))
		}
		sw.u32s(pg.writeEpoch[:])
		sw.u32s(pg.persistEpoch[:])
		sw.u32s(pg.writerIdx[:])
		sw.bools(pg.txSafe[:])
		sw.u32s(pg.txAddGen[:])
		sw.u32s(pg.txExplicit[:])
		if pg.anyTxSafe {
			sw.u8(1)
		} else {
			sw.u8(0)
		}
		sw.u64(pg.fpHash)
		if pg.fpValid {
			sw.u8(1)
		} else {
			sw.u8(0)
		}
	}
	if sw.err != nil {
		return fmt.Errorf("shadow: writing state: %w", sw.err)
	}
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("shadow: writing state: %w", err)
	}
	return nil
}

// stateBytes views a PersistState slice as raw bytes (PersistState is a
// uint8 with identical memory layout).
func stateBytes(a []PersistState) []byte {
	b := make([]byte, len(a))
	for i, v := range a {
		b[i] = byte(v)
	}
	return b
}

type stateReader struct {
	r   *bufio.Reader
	err error
	b   [8]byte
}

func (sr *stateReader) u8() uint8 {
	if sr.err != nil {
		return 0
	}
	v, err := sr.r.ReadByte()
	sr.err = err
	return v
}

func (sr *stateReader) u32() uint32 {
	if sr.err != nil {
		return 0
	}
	if _, sr.err = io.ReadFull(sr.r, sr.b[:4]); sr.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(sr.b[:4])
}

func (sr *stateReader) u64() uint64 {
	if sr.err != nil {
		return 0
	}
	if _, sr.err = io.ReadFull(sr.r, sr.b[:8]); sr.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(sr.b[:8])
}

func (sr *stateReader) str() string {
	n := sr.u32()
	if sr.err != nil {
		return ""
	}
	if n > 1<<20 {
		sr.err = fmt.Errorf("string length %d too large", n)
		return ""
	}
	buf := make([]byte, n)
	if _, sr.err = io.ReadFull(sr.r, buf); sr.err != nil {
		return ""
	}
	return string(buf)
}

func (sr *stateReader) u32s(a []uint32) {
	if sr.err != nil {
		return
	}
	buf := make([]byte, 4*len(a))
	if _, sr.err = io.ReadFull(sr.r, buf); sr.err != nil {
		return
	}
	for i := range a {
		a[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
}

func (sr *stateReader) bools(a []bool) {
	if sr.err != nil {
		return
	}
	buf := make([]byte, len(a))
	if _, sr.err = io.ReadFull(sr.r, buf); sr.err != nil {
		return
	}
	for i := range a {
		a[i] = buf[i] != 0
	}
}

// ReadState reconstructs a canonical sparse shadow from a WriteState
// stream.
func ReadState(r io.Reader) (*PM, error) {
	sr := &stateReader{r: bufio.NewReaderSize(r, 1<<16)}
	if m := sr.u32(); sr.err == nil && m != stateMagic {
		return nil, fmt.Errorf("shadow: bad state magic 0x%x", m)
	}
	if v := sr.u32(); sr.err == nil && v != stateVersion {
		return nil, fmt.Errorf("shadow: unsupported state version %d", v)
	}
	size := sr.u64()
	if sr.err == nil && (size == 0 || size > 1<<40) {
		return nil, fmt.Errorf("shadow: implausible pool size %d", size)
	}
	if sr.err != nil {
		return nil, fmt.Errorf("shadow: reading state: %w", sr.err)
	}
	s := NewPM(size)
	s.clock = sr.u32()
	s.txDepth = int(sr.u32())
	s.txGen = sr.u32()

	nWriters := sr.u32()
	for i := uint32(0); i < nWriters && sr.err == nil; i++ {
		ip := sr.str()
		s.writers = append(s.writers, ip)
		s.writerIDs[ip] = uint32(len(s.writers)) // 1-based, order-preserving
	}

	nPending := sr.u32()
	for i := uint32(0); i < nPending && sr.err == nil; i++ {
		line := sr.u64()
		s.pendingLines[line] = sr.u8() != 0
	}

	nTx := sr.u32()
	for i := uint32(0); i < nTx && sr.err == nil; i++ {
		addr := sr.u64()
		sz := sr.u64()
		s.curTx = append(s.curTx, txRange{addr: addr, size: sz})
	}

	nCV := sr.u32()
	for i := uint32(0); i < nCV && sr.err == nil; i++ {
		cv := &commitVar{addr: sr.u64(), size: sr.u64()}
		cv.last = commitWrite{writeEpoch: sr.u32(), persistEpoch: sr.u32()}
		cv.prev = commitWrite{writeEpoch: sr.u32(), persistEpoch: sr.u32()}
		cv.nWrites = int(sr.u64())
		cv.pendingPersist = sr.u8() != 0
		s.commitVars = append(s.commitVars, cv)
	}

	nAssoc := sr.u32()
	for i := uint32(0); i < nAssoc && sr.err == nil; i++ {
		a := assoc{varIdx: int(sr.u32()), addr: sr.u64(), size: sr.u64()}
		if sr.err == nil && (a.varIdx < 0 || a.varIdx >= len(s.commitVars)) {
			return nil, fmt.Errorf("shadow: assoc references commit variable %d of %d", a.varIdx, len(s.commitVars))
		}
		s.assocs = append(s.assocs, a)
	}

	nPages := sr.u32()
	if sr.err == nil && int(nPages) > len(s.pages) {
		return nil, fmt.Errorf("shadow: %d pages for a pool of %d slots", nPages, len(s.pages))
	}
	for i := uint32(0); i < nPages && sr.err == nil; i++ {
		pi := sr.u32()
		if sr.err == nil && int(pi) >= len(s.pages) {
			return nil, fmt.Errorf("shadow: page index %d outside pool of %d pages", pi, len(s.pages))
		}
		if sr.err != nil {
			break
		}
		pg := s.newPage()
		stateBuf := make([]byte, pageBytes)
		if _, sr.err = io.ReadFull(sr.r, stateBuf); sr.err != nil {
			break
		}
		for j, b := range stateBuf {
			pg.state[j] = PersistState(b)
		}
		sr.u32s(pg.writeEpoch[:])
		sr.u32s(pg.persistEpoch[:])
		sr.u32s(pg.writerIdx[:])
		sr.bools(pg.txSafe[:])
		sr.u32s(pg.txAddGen[:])
		sr.u32s(pg.txExplicit[:])
		pg.anyTxSafe = sr.u8() != 0
		pg.fpHash = sr.u64()
		pg.fpValid = sr.u8() != 0
		s.pages[pi] = pg
	}
	if sr.err != nil {
		return nil, fmt.Errorf("shadow: reading state: %w", sr.err)
	}
	return s, nil
}
