package shadow

import (
	"math/rand"
	"testing"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// coldInit bulk-initializes pages [0, n): one uniform write + flush +
// fence per page, the shape that goes cold.
func coldInit(s *PM, n int) {
	for pg := 0; pg < n; pg++ {
		base := uint64(pg) << pageShift
		apply(s, trace.Write, base, pageBytes)
		apply(s, trace.CLWB, base, pageBytes)
	}
	apply(s, trace.SFence, 0, 0)
}

// Cold pages collapse into singletons and live shadow memory drops; the
// accessors still read the exact pre-compaction metadata.
func TestColdPageCompactionDropsPages(t *testing.T) {
	const n = 8
	s := NewPM(n << pageShift)
	s.SetColdPageCompaction(true)
	coldInit(s, n)

	if got := s.ColdPages(); got != n {
		t.Fatalf("ColdPages = %d, want %d", got, n)
	}
	// All n slots share one singleton: n+1 distinct pages were allocated
	// (n lazily + 1 singleton) but only 1 is live beyond the registry.
	ref := NewPM(n << pageShift)
	coldInit(ref, n)
	peak, _ := s.MemStats()
	refPeak, _ := ref.MemStats()
	if s.stats.live.Load() >= ref.stats.live.Load() {
		t.Fatalf("compaction did not drop live shadow bytes: %d vs %d", s.stats.live.Load(), ref.stats.live.Load())
	}
	if peak > refPeak+uint64(pageFootprint) {
		t.Fatalf("compaction peak %d exceeds uncompacted %d by more than the singleton", peak, refPeak)
	}

	for _, b := range []uint64{0, pageBytes + 7, (n - 1) << pageShift} {
		if s.State(b) != ref.State(b) || s.WriteEpoch(b) != ref.WriteEpoch(b) ||
			s.PersistEpoch(b) != ref.PersistEpoch(b) || s.WriterIP(b) != ref.WriterIP(b) ||
			s.TxProtected(b) != ref.TxProtected(b) {
			t.Fatalf("byte 0x%x: compacted accessors diverge from reference", b)
		}
	}
	if s.CrashFingerprint() != ref.CrashFingerprint() {
		t.Fatal("compacted fingerprint diverges from uncompacted")
	}
}

// A store to a compacted slot privatizes the singleton; the other slots
// keep their metadata.
func TestColdPageWriteRehydratesOneSlot(t *testing.T) {
	s := NewPM(4 << pageShift)
	s.SetColdPageCompaction(true)
	coldInit(s, 4)
	preEpoch := s.WriteEpoch(pageBytes)

	apply(s, trace.Write, 0, 8) // slot 0 privatizes
	if s.State(0) != Modified {
		t.Fatalf("written byte state %v", s.State(0))
	}
	if s.State(pageBytes) != Persisted || s.WriteEpoch(pageBytes) != preEpoch {
		t.Fatal("write to slot 0 leaked into slot 1's singleton")
	}
	if got := s.ColdPages(); got != 3 {
		t.Fatalf("ColdPages after write = %d, want 3", got)
	}
}

// Pages with non-uniform metadata, open-transaction protection, or
// commit-variable geometry must not compact.
func TestColdPageCompactionExclusions(t *testing.T) {
	s := NewPM(4 << pageShift)
	s.SetColdPageCompaction(true)

	// Page 0: two write epochs.
	apply(s, trace.Write, 0, pageBytes)
	apply(s, trace.CLWB, 0, pageBytes)
	apply(s, trace.SFence, 0, 0)
	apply(s, trace.Write, 0, 64)
	apply(s, trace.CLWB, 0, 64)
	// Page 1: commit variable inside.
	apply(s, trace.RegCommitVar, pageBytes+8, 8)
	apply(s, trace.Write, pageBytes, pageBytes)
	apply(s, trace.CLWB, pageBytes, pageBytes)
	apply(s, trace.SFence, 0, 0)
	if got := s.ColdPages(); got != 0 {
		t.Fatalf("excluded pages compacted: ColdPages = %d", got)
	}

	// Page 2 inside an open transaction: the fence must skip compaction.
	apply(s, trace.TxBegin, 0, 0)
	apply(s, trace.TxAdd, 2*pageBytes, pageBytes)
	apply(s, trace.Write, 2*pageBytes, pageBytes)
	apply(s, trace.CLWB, 2*pageBytes, pageBytes)
	apply(s, trace.SFence, 0, 0)
	if got := s.ColdPages(); got != 0 {
		t.Fatalf("in-transaction fence compacted: ColdPages = %d", got)
	}
	apply(s, trace.TxCommit, 0, 0)
}

// Registering commit geometry over an already-compacted slot rehydrates
// it, so the slot stops sharing a fingerprint cache with slots elsewhere:
// fingerprints must keep matching an uncompacted reference afterwards.
func TestColdPageGeometryRehydration(t *testing.T) {
	run := func(compact bool) *PM {
		s := NewPM(4 << pageShift)
		s.SetColdPageCompaction(compact)
		coldInit(s, 4)
		// Late geometry over slot 1, then a commit write that flips its
		// associated bytes' Eq. 3 outcomes.
		s.Apply(trace.Entry{Kind: trace.RegCommitRange, Addr: 3*pageBytes + 8, Size: 8,
			Addr2: pageBytes, Size2: 128})
		apply(s, trace.Write, 3*pageBytes+8, 8)
		apply(s, trace.CLWB, 3*pageBytes+8, 8)
		apply(s, trace.SFence, 0, 0)
		return s
	}
	c, ref := run(true), run(false)
	if c.CrashFingerprint() != ref.CrashFingerprint() {
		t.Fatal("fingerprint diverges after late geometry over a compacted slot")
	}
	// The non-rehydrated slots still share the singleton.
	if c.ColdPages() == 0 {
		t.Fatal("rehydration dropped every compacted slot")
	}
	ck := c.BeginPostCheck()
	rk := ref.BeginPostCheck()
	for b := uint64(0); b < c.Size(); b += 64 {
		cf, rf := ck.OnRead(b, 64), rk.OnRead(b, 64)
		if len(cf) != len(rf) {
			t.Fatalf("addr 0x%x: %d findings vs %d uncompacted", b, len(cf), len(rf))
		}
	}
}

// Randomized equivalence: the same trace applied with compaction on and
// off must agree on every accessor, the fingerprint, and every
// post-failure classification at every fence.
func TestColdPageCompactionEquivalence(t *testing.T) {
	const size = 8 << pageShift
	rng := rand.New(rand.NewSource(7))
	c, ref := NewPM(size), NewPM(size)
	c.SetColdPageCompaction(true)

	step := func(e trace.Entry) {
		c.Apply(e)
		ref.Apply(e)
	}
	checkAll := func() {
		t.Helper()
		if cf, rf := c.CrashFingerprint(), ref.CrashFingerprint(); cf != rf {
			t.Fatalf("fingerprint mismatch: %x vs %x", cf, rf)
		}
		for b := uint64(0); b < size; b += 97 {
			if c.State(b) != ref.State(b) || c.WriteEpoch(b) != ref.WriteEpoch(b) ||
				c.PersistEpoch(b) != ref.PersistEpoch(b) || c.WriterIP(b) != ref.WriterIP(b) ||
				c.TxProtected(b) != ref.TxProtected(b) {
				t.Fatalf("byte 0x%x: accessor mismatch", b)
			}
		}
		cc, rc := c.Fork(), ref.Fork()
		ck, rk := cc.BeginPostCheck(), rc.BeginPostCheck()
		for b := uint64(0); b+256 <= size; b += 512 {
			cf, rf := ck.OnRead(b, 256), rk.OnRead(b, 256)
			if len(cf) != len(rf) {
				t.Fatalf("post-read 0x%x: %d findings vs %d", b, len(cf), len(rf))
			}
			for i := range cf {
				if cf[i] != rf[i] {
					t.Fatalf("post-read 0x%x finding %d: %+v vs %+v", b, i, cf[i], rf[i])
				}
			}
		}
		cc.Release()
		rc.Release()
	}

	for round := 0; round < 60; round++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			base := uint64(rng.Intn(8)) << pageShift
			step(trace.Entry{Kind: trace.Write, Addr: base, Size: pageBytes, IP: "init.go:1"})
			step(trace.Entry{Kind: trace.CLWB, Addr: base, Size: pageBytes, IP: "init.go:2"})
		case 3, 4:
			addr := uint64(rng.Intn(size - 64))
			step(trace.Entry{Kind: trace.Write, Addr: addr, Size: uint64(1 + rng.Intn(64)), IP: "w.go:3"})
		case 5:
			addr := uint64(rng.Intn(size - 64))
			step(trace.Entry{Kind: trace.NTStore, Addr: addr, Size: uint64(1 + rng.Intn(64)), IP: "nt.go:4"})
		case 6:
			addr := uint64(rng.Intn(size - 256))
			step(trace.Entry{Kind: trace.CLWB, Addr: addr, Size: uint64(1 + rng.Intn(256)), IP: "f.go:5"})
		case 7:
			step(trace.Entry{Kind: trace.TxBegin})
			addr := uint64(rng.Intn(size - 128))
			step(trace.Entry{Kind: trace.TxAdd, Addr: addr, Size: 128, IP: "tx.go:6"})
			step(trace.Entry{Kind: trace.Write, Addr: addr, Size: 64, IP: "tx.go:7"})
			step(trace.Entry{Kind: trace.TxCommit})
		case 8:
			addr := uint64(rng.Intn(size - 16))
			step(trace.Entry{Kind: trace.RegCommitVar, Addr: addr, Size: 8})
		case 9:
			va := uint64(rng.Intn(size - 16))
			da := uint64(rng.Intn(size - 256))
			step(trace.Entry{Kind: trace.RegCommitRange, Addr: va, Size: 8, Addr2: da, Size2: 128})
		}
		step(trace.Entry{Kind: trace.SFence})
		checkAll()
	}
}
