package shadow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pmemgo/xfdetector/internal/trace"
)

func apply(s *PM, k trace.Kind, addr, size uint64) {
	s.Apply(trace.Entry{Kind: k, Addr: addr, Size: size, IP: "t.go:1"})
}

// TestPersistenceFSM walks the Fig. 9 state machine.
func TestPersistenceFSM(t *testing.T) {
	s := NewPM(4096)
	if s.State(100) != Unmodified {
		t.Fatal("initial state not U")
	}
	apply(s, trace.Write, 100, 8)
	if s.State(100) != Modified {
		t.Fatalf("after WRITE: %v", s.State(100))
	}
	apply(s, trace.SFence, 0, 0)
	if s.State(100) != Modified {
		t.Fatal("SFENCE without CLWB must not persist")
	}
	apply(s, trace.CLWB, 64, 64)
	if s.State(100) != WritebackPending {
		t.Fatalf("after CLWB: %v", s.State(100))
	}
	apply(s, trace.Write, 100, 8) // write again before the fence
	if s.State(100) != Modified {
		t.Fatal("re-dirtied byte must be M again")
	}
	apply(s, trace.CLWB, 64, 64)
	apply(s, trace.SFence, 0, 0)
	if s.State(100) != Persisted {
		t.Fatalf("after CLWB;SFENCE: %v", s.State(100))
	}
	if s.PersistEpoch(100) == 0 {
		t.Fatal("persist epoch unset")
	}
	apply(s, trace.Write, 100, 8)
	if s.State(100) != Modified {
		t.Fatal("P -> M on write")
	}
}

// TestFSMStateStrings covers the U/M/W/P codes.
func TestFSMStateStrings(t *testing.T) {
	want := map[PersistState]string{Unmodified: "U", Modified: "M", WritebackPending: "W", Persisted: "P"}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("%v.String() = %q", st, st.String())
		}
	}
}

// TestNTStoreSkipsCache: NT stores are immediately writeback-pending.
func TestNTStoreSkipsCache(t *testing.T) {
	s := NewPM(4096)
	apply(s, trace.NTStore, 128, 16)
	if s.State(128) != WritebackPending {
		t.Fatalf("after NTSTORE: %v", s.State(128))
	}
	apply(s, trace.SFence, 0, 0)
	if s.State(128) != Persisted {
		t.Fatalf("after NTSTORE;SFENCE: %v", s.State(128))
	}
}

// TestFlushIsLineGranular: flushing one byte persists its whole line's
// modified bytes, and nothing beyond.
func TestFlushIsLineGranular(t *testing.T) {
	s := NewPM(4096)
	apply(s, trace.Write, 10, 1)
	apply(s, trace.Write, 60, 1)
	apply(s, trace.Write, 70, 1) // next line
	s.Apply(trace.Entry{Kind: trace.CLWB, Addr: 0, Size: 64})
	apply(s, trace.SFence, 0, 0)
	if s.State(10) != Persisted || s.State(60) != Persisted {
		t.Fatal("same-line bytes must persist together")
	}
	if s.State(70) != Modified {
		t.Fatal("other-line byte must stay modified")
	}
}

// TestRedundantFlushReported covers the Fig. 9 yellow edges.
func TestRedundantFlushReported(t *testing.T) {
	s := NewPM(4096)
	var bugs []PerfBug
	s.SetPerfBugHandler(func(b PerfBug) { bugs = append(bugs, b) })

	apply(s, trace.CLWB, 0, 8) // nothing modified: redundant
	if len(bugs) != 1 || bugs[0].Kind != RedundantFlush {
		t.Fatalf("bugs = %v", bugs)
	}
	apply(s, trace.Write, 0, 8)
	apply(s, trace.CLWB, 0, 8) // useful
	apply(s, trace.CLWB, 0, 8) // W -> W: redundant
	if len(bugs) != 2 {
		t.Fatalf("bugs = %v", bugs)
	}
	apply(s, trace.SFence, 0, 0)
	apply(s, trace.CLWB, 0, 8) // P -> P: redundant
	if len(bugs) != 3 {
		t.Fatalf("bugs = %v", bugs)
	}
}

// TestDuplicateTxAdd covers explicit duplicate adds and the TX_ALLOC
// exemption.
func TestDuplicateTxAdd(t *testing.T) {
	s := NewPM(4096)
	var bugs []PerfBug
	s.SetPerfBugHandler(func(b PerfBug) { bugs = append(bugs, b) })

	apply(s, trace.TxBegin, 0, 0)
	apply(s, trace.TxAlloc, 0, 64)
	apply(s, trace.TxAdd, 0, 64) // adding a fresh allocation is fine
	if len(bugs) != 0 {
		t.Fatalf("alloc+add flagged: %v", bugs)
	}
	apply(s, trace.TxAdd, 0, 32) // repeat of an explicit add: bug
	if len(bugs) != 1 || bugs[0].Kind != DuplicateTxAdd {
		t.Fatalf("bugs = %v", bugs)
	}
	apply(s, trace.TxCommit, 0, 0)
	// A new transaction adding the same range is not a duplicate.
	apply(s, trace.TxBegin, 0, 0)
	apply(s, trace.TxAdd, 0, 64)
	if len(bugs) != 1 {
		t.Fatalf("cross-tx add flagged: %v", bugs)
	}
}

// TestTxProtectionLifecycle: TX_ADD protects through the transaction and
// ends at commit.
func TestTxProtectionLifecycle(t *testing.T) {
	s := NewPM(4096)
	apply(s, trace.TxBegin, 0, 0)
	apply(s, trace.TxAdd, 128, 64)
	apply(s, trace.Write, 128, 8)
	if !s.TxProtected(128) {
		t.Fatal("added+written byte lost protection")
	}
	apply(s, trace.Write, 256, 8) // in-tx write without add
	if s.TxProtected(256) {
		t.Fatal("unadded byte must not be protected")
	}
	apply(s, trace.TxCommit, 0, 0)
	if s.TxProtected(128) {
		t.Fatal("protection must end at commit")
	}
	c := s.BeginPostCheck()
	if f := c.OnRead(128, 8); len(f) == 0 || f[0].Class != ClassRace {
		t.Fatalf("unflushed committed data not a race: %v", f)
	}
}

// TestPostCheckerBasics covers the classify order.
func TestPostCheckerBasics(t *testing.T) {
	s := NewPM(4096)
	// never-written byte: OK.
	c := s.BeginPostCheck()
	if f := c.OnRead(500, 8); len(f) != 0 {
		t.Fatalf("unwritten read flagged: %v", f)
	}
	// modified, unpersisted: race with the writer location.
	apply(s, trace.Write, 0, 8)
	c = s.BeginPostCheck()
	f := c.OnRead(0, 8)
	if len(f) != 1 || f[0].Class != ClassRace || f[0].WriterIP != "t.go:1" || f[0].Size != 8 {
		t.Fatalf("findings = %v", f)
	}
	// persisted: OK.
	apply(s, trace.CLWB, 0, 8)
	apply(s, trace.SFence, 0, 0)
	c = s.BeginPostCheck()
	if f := c.OnRead(0, 8); len(f) != 0 {
		t.Fatalf("persisted read flagged: %v", f)
	}
}

// TestPostWriteOverlay: post-failure writes make subsequent reads safe.
func TestPostWriteOverlay(t *testing.T) {
	s := NewPM(4096)
	apply(s, trace.Write, 0, 8)
	c := s.BeginPostCheck()
	c.OnWrite(0, 8)
	if f := c.OnRead(0, 8); len(f) != 0 {
		t.Fatalf("overwritten read flagged: %v", f)
	}
	// The overlay is per failure point.
	c2 := s.BeginPostCheck()
	if f := c2.OnRead(0, 8); len(f) != 1 {
		t.Fatalf("fresh checker inherited overlay: %v", f)
	}
}

// TestFirstReadOnlyOptimization: re-reads within one post-failure run are
// skipped (same result as the first check).
func TestFirstReadOnlyOptimization(t *testing.T) {
	s := NewPM(4096)
	apply(s, trace.Write, 0, 8)
	c := s.BeginPostCheck()
	if f := c.OnRead(0, 8); len(f) != 1 {
		t.Fatal("first read must be checked")
	}
	if f := c.OnRead(0, 8); len(f) != 0 {
		t.Fatal("second read must be skipped")
	}
}

// TestCommitVarBenign: reads of registered commit variables are benign.
func TestCommitVarBenign(t *testing.T) {
	s := NewPM(4096)
	s.Apply(trace.Entry{Kind: trace.RegCommitVar, Addr: 64, Size: 8})
	apply(s, trace.Write, 64, 8) // unpersisted commit-variable write
	c := s.BeginPostCheck()
	if f := c.OnRead(64, 8); len(f) != 0 {
		t.Fatalf("commit variable read flagged: %v", f)
	}
	if c.Benign != 8 {
		t.Fatalf("benign bytes = %d", c.Benign)
	}
}

// TestEq3Semantics reproduces the Fig. 11 epoch arithmetic directly on the
// shadow.
func TestEq3Semantics(t *testing.T) {
	s := NewPM(4096)
	s.Apply(trace.Entry{Kind: trace.RegCommitRange, Addr: 0, Size: 8, Addr2: 128, Size2: 64})

	// backup and commit variable persisted by the same fence: the backup
	// is semantically inconsistent (Fig. 11 F2).
	apply(s, trace.Write, 128, 8) // backup
	apply(s, trace.Write, 0, 8)   // commit write
	apply(s, trace.CLWB, 0, 8)
	apply(s, trace.CLWB, 128, 8)
	apply(s, trace.SFence, 0, 0)
	c := s.BeginPostCheck()
	f := c.OnRead(128, 8)
	if len(f) != 1 || f[0].Class != ClassSemantic {
		t.Fatalf("same-epoch commit: %v", f)
	}

	// Properly ordered: backup persists strictly before the commit write,
	// previous commit strictly before the backup write.
	apply(s, trace.Write, 128, 8)
	apply(s, trace.CLWB, 128, 8)
	apply(s, trace.SFence, 0, 0)
	apply(s, trace.Write, 0, 8)
	apply(s, trace.CLWB, 0, 8)
	apply(s, trace.SFence, 0, 0)
	c = s.BeginPostCheck()
	if f := c.OnRead(128, 8); len(f) != 0 {
		t.Fatalf("ordered commit flagged: %v", f)
	}

	// Stale: modified before the previous commit write.
	apply(s, trace.Write, 0, 8)
	apply(s, trace.CLWB, 0, 8)
	apply(s, trace.SFence, 0, 0)
	c = s.BeginPostCheck()
	if f := c.OnRead(128, 8); len(f) != 1 || f[0].Class != ClassSemantic {
		t.Fatalf("stale version not flagged: %v", f)
	}
}

// TestAtomicAllocMarksUnknown: allocation content is
// modified-but-unpersisted until initialized (the Bug 2 model).
func TestAtomicAllocMarksUnknown(t *testing.T) {
	s := NewPM(4096)
	apply(s, trace.AtomicAlloc, 256, 64)
	c := s.BeginPostCheck()
	if f := c.OnRead(256, 8); len(f) != 1 || f[0].Class != ClassRace {
		t.Fatalf("alloc read not a race: %v", f)
	}
}

// TestFindingCoalescing: adjacent bytes with one writer collapse into one
// finding; distinct writers split.
func TestFindingCoalescing(t *testing.T) {
	s := NewPM(4096)
	s.Apply(trace.Entry{Kind: trace.Write, Addr: 0, Size: 8, IP: "w1"})
	s.Apply(trace.Entry{Kind: trace.Write, Addr: 8, Size: 8, IP: "w2"})
	c := s.BeginPostCheck()
	f := c.OnRead(0, 16)
	if len(f) != 2 || f[0].WriterIP != "w1" || f[1].WriterIP != "w2" {
		t.Fatalf("findings = %v", f)
	}
	if f[0].Size != 8 || f[1].Size != 8 {
		t.Fatalf("sizes = %d, %d", f[0].Size, f[1].Size)
	}
}

// TestClipOutOfRange: out-of-pool applies are clipped, not panics (the
// backend must survive arbitrary traces).
func TestClipOutOfRange(t *testing.T) {
	s := NewPM(128)
	apply(s, trace.Write, 120, 64) // clipped to [120, 128)
	apply(s, trace.Write, 4096, 8) // fully out: ignored
	if s.State(127) != Modified {
		t.Fatal("clipped write lost")
	}
	c := s.BeginPostCheck()
	if f := c.OnRead(4096, 8); len(f) != 0 {
		t.Fatalf("out-of-range read flagged: %v", f)
	}
}

// TestInvariantsProperty drives the shadow with random operation sequences
// and checks global invariants after every step (property-based):
//
//  1. persisted bytes have a persist epoch in (0, clock];
//  2. written bytes have a write epoch in (0, clock];
//  3. immediately after an SFence no byte is writeback-pending;
//  4. unwritten bytes stay Unmodified forever.
func TestInvariantsProperty(t *testing.T) {
	const size = 1024
	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewPM(size)
		touched := make([]bool, size)
		inTx := false
		for i := 0; i < int(steps); i++ {
			addr := r.Uint64() % (size - 8)
			switch r.Intn(8) {
			case 0, 1, 2:
				apply(s, trace.Write, addr, 8)
				for b := addr; b < addr+8; b++ {
					touched[b] = true
				}
			case 3:
				apply(s, trace.CLWB, addr, 8)
			case 4:
				apply(s, trace.SFence, 0, 0)
				for b := uint64(0); b < size; b++ {
					if s.State(b) == WritebackPending {
						t.Logf("byte %d pending after fence", b)
						return false
					}
				}
			case 5:
				if !inTx {
					apply(s, trace.TxBegin, 0, 0)
					inTx = true
				} else {
					apply(s, trace.TxCommit, 0, 0)
					inTx = false
				}
			case 6:
				if inTx {
					apply(s, trace.TxAdd, addr, 8)
				}
			case 7:
				apply(s, trace.NTStore, addr, 8)
				for b := addr; b < addr+8; b++ {
					touched[b] = true
				}
			}
			for b := uint64(0); b < size; b += 37 { // sampled invariant check
				st := s.State(b)
				if st == Persisted && (s.PersistEpoch(b) == 0 || s.PersistEpoch(b) > s.Clock()) {
					return false
				}
				if st != Unmodified && s.WriteEpoch(b) == 0 && st != Persisted {
					return false
				}
				if !touched[b] && st != Unmodified {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPersistedImpliesSafeProperty: any byte driven through
// write→CLWB→SFENCE (in any interleaving with other bytes) is never
// reported by a fresh post check (property-based soundness of the
// classify path for persisted data with no commit semantics).
func TestPersistedImpliesSafeProperty(t *testing.T) {
	const size = 512
	f := func(seed int64, writes uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewPM(size)
		var addrs []uint64
		for i := 0; i < int(writes%20)+1; i++ {
			addr := r.Uint64() % (size - 8)
			apply(s, trace.Write, addr, 8)
			apply(s, trace.CLWB, addr, 8)
			addrs = append(addrs, addr)
		}
		apply(s, trace.SFence, 0, 0)
		c := s.BeginPostCheck()
		for _, a := range addrs {
			if f := c.OnRead(a, 8); len(f) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
