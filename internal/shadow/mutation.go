package shadow

// Soundness-mutation test hook.
//
// The fuzzgen differential suite validates this package against an
// independent brute-force oracle. To prove the suite can actually catch a
// soundness regression here — and does not merely co-evolve with whatever
// this package computes — its mutation test flips this switch, which makes
// applyFlush deliberately mis-model CLWB/CLFLUSH as immediately
// persistent. That is the classic misunderstanding the Fig. 9 persistence
// FSM exists to rule out: a writeback instruction alone guarantees nothing
// until the next SFENCE. With the switch on, the differential suite must
// report mismatches on dropped-fence programs; if it ever stops doing so,
// the suite has lost its teeth.
//
// Production code must never set this; it exists solely for the mutation
// test in internal/fuzzgen.
var unsoundFlushForTest bool

// SetUnsoundFlushForTest toggles the deliberate CLWB mis-model. Callers
// must not toggle it while a detection run is in flight.
func SetUnsoundFlushForTest(on bool) { unsoundFlushForTest = on }
