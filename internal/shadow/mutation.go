package shadow

// Soundness-mutation test hook.
//
// The fuzzgen differential suite validates this package against an
// independent brute-force oracle. To prove the suite can actually catch a
// soundness regression here — and does not merely co-evolve with whatever
// this package computes — its mutation test flips this switch, which makes
// applyFlush deliberately mis-model CLWB/CLFLUSH as immediately
// persistent. That is the classic misunderstanding the Fig. 9 persistence
// FSM exists to rule out: a writeback instruction alone guarantees nothing
// until the next SFENCE. With the switch on, the differential suite must
// report mismatches on dropped-fence programs; if it ever stops doing so,
// the suite has lost its teeth.
//
// Production code must never set this; it exists solely for the mutation
// test in internal/fuzzgen.
var unsoundFlushForTest bool

// SetUnsoundFlushForTest toggles the deliberate CLWB mis-model. Callers
// must not toggle it while a detection run is in flight.
func SetUnsoundFlushForTest(on bool) { unsoundFlushForTest = on }

// staleForkPageForTest breaks the copy-on-write fork contract: the
// canonical shadow's writablePage skips privatizing pages shared with
// forks and mutates them in place, so a fork observes pre-failure state
// from *after* its failure point — typically seeing bytes as Persisted
// that a later fence persisted, and therefore missing cross-failure races.
// This is the exact bug class the fork design must exclude; the mutation
// suite proves the differential fuzzer and the Table 4 equivalence tests
// would catch it. Because the mutant writes shared pages while workers
// read them, it is a genuine data race: the tests that enable it are
// skipped under the race detector (see internal/fuzzgen/racetag_off.go).
var staleForkPageForTest bool

// SetStaleForkPageForTest toggles the deliberate COW-fork break. Callers
// must not toggle it while a detection run is in flight.
func SetStaleForkPageForTest(on bool) { staleForkPageForTest = on }

// lostRangeBatchForTest breaks the fence's range-fill fast path: every
// pending line is treated as uniformly WritebackPending, including lines
// demoted because a store re-modified bytes after the flush. The mutant
// then spuriously persists those Modified bytes at the fence, hiding
// cross-failure races on them — the mistake the pendingLines full/demoted
// bookkeeping exists to rule out.
var lostRangeBatchForTest bool

// SetLostRangeBatchForTest toggles the deliberate range-batch mis-model.
// Callers must not toggle it while a detection run is in flight.
func SetLostRangeBatchForTest(on bool) { lostRangeBatchForTest = on }

// collidingFingerprintForTest breaks crash-state fingerprinting's
// injectivity: every non-empty page hashes to one constant, so the
// fingerprint degenerates to a function of the touched-page set and the
// commit-variable geometry. Distinct crash states then collide, the pruning
// layer groups them into one class, and bugs reachable only from the
// non-representative states are silently skipped — the exact soundness
// hazard a fingerprint-based pruner must exclude. The mutation suite proves
// the differential fuzzer and the Table 4 equivalence tests catch it.
var collidingFingerprintForTest bool

// SetCollidingFingerprintForTest toggles the deliberate fingerprint
// collision. Callers must not toggle it while a detection run is in flight.
func SetCollidingFingerprintForTest(on bool) { collidingFingerprintForTest = on }

// staleFenceFingerprintForTest breaks the fingerprint cache's invalidation
// contract: a fence processing a pending line no longer drops the line's
// page hash — and the page ignores every later invalidation too — so the
// cached hash is frozen at a previous failure point's state while the true
// state moves on. Later, genuinely distinct crash states then alias the
// frozen one and are pruned without testing. A one-shot staleness would be
// provably harmless (a later, cleaner state aliasing an earlier dirtier
// one only over-reports), which is why the mutant is sticky.
var staleFenceFingerprintForTest bool

// SetStaleFenceFingerprintForTest toggles the deliberate fence-invalidation
// omission. Callers must not toggle it while a detection run is in flight.
func SetStaleFenceFingerprintForTest(on bool) { staleFenceFingerprintForTest = on }
