package shadow

// Commit variables (§3.2 of the paper).
//
// Most crash-consistency mechanisms keep two versions of data and use a
// commit variable to indicate which version is consistent. Formally
// (Eq. 3): with C[x,n] the n-th commit write to variable x and Sx its
// associated address set, every m ∈ Sx is semantically consistent iff
//
//	C[x,n-1] ≤p W[m]  ∧  W[m] ≤p C[x,n]
//
// i.e. m was last modified "between" the last two commit writes in persist
// order. The persist order ≤p is evaluated with epochs: Wa ≤p Wb holds iff
// a became persisted at an epoch strictly before the epoch of b's write —
// only then is a guaranteed to persist before b in every interleaving. Two
// writes persisted by the same fence are unordered, which is exactly why
// the paper's Fig. 11 F2 case (backup and valid written back together) is a
// semantic bug.

// commitWrite records one write to a commit variable.
type commitWrite struct {
	writeEpoch   uint32 // epoch of the store
	persistEpoch uint32 // epoch the store became persisted; 0 = not yet
}

// commitVar is a registered commit variable.
type commitVar struct {
	addr, size uint64
	// last and prev are the paper's C[x,n] and C[x,n-1]: the last two
	// writes to the variable, in program order.
	last, prev commitWrite
	nWrites    int
	// pendingPersist is set while the latest write has not persisted.
	pendingPersist bool
}

// assoc associates an address range with a commit variable (addCommitRange).
type assoc struct {
	varIdx     int
	addr, size uint64
}

func (s *PM) registerCommitVar(addr, size uint64) int {
	for i, cv := range s.commitVars {
		if cv.addr == addr && cv.size == size {
			return i
		}
	}
	// New geometry makes the covered bytes' classification address-
	// dependent; compacted slots under it must stop sharing a singleton
	// (compact.go), and cached page hashes over it go stale — fpSymbol
	// buckets 1 and 7 read the geometry.
	s.rehydrateCold(addr, size)
	s.invalidateRangeFP(addr, size)
	s.commitVars = append(s.commitVars, &commitVar{addr: addr, size: size})
	return len(s.commitVars) - 1
}

func (s *PM) registerCommitRange(varAddr, varSize, addr, size uint64) {
	idx := s.registerCommitVar(varAddr, varSize)
	for _, a := range s.assocs {
		if a.varIdx == idx && a.addr == addr && a.size == size {
			return
		}
	}
	s.rehydrateCold(addr, size)
	s.invalidateRangeFP(addr, size)
	s.assocs = append(s.assocs, assoc{varIdx: idx, addr: addr, size: size})
}

// CommitVarCount returns the number of registered commit variables.
func (s *PM) CommitVarCount() int { return len(s.commitVars) }

// isCommitVarByte reports whether addr belongs to a registered commit
// variable. Post-failure reads of such bytes are benign cross-failure races
// (§3.1).
func (s *PM) isCommitVarByte(addr uint64) bool {
	for _, cv := range s.commitVars {
		if addr >= cv.addr && addr < cv.addr+cv.size {
			return true
		}
	}
	return false
}

// assocFor returns the commit variable whose associated address set
// contains addr, or nil.
func (s *PM) assocFor(addr uint64) *commitVar {
	for _, a := range s.assocs {
		if addr >= a.addr && addr < a.addr+a.size {
			return s.commitVars[a.varIdx]
		}
	}
	return nil
}

// noteCommitWrites records commit writes for every registered variable the
// just-applied store overlaps.
func (s *PM) noteCommitWrites(addr, end uint64) {
	for _, cv := range s.commitVars {
		if cv.addr >= end || addr >= cv.addr+cv.size {
			continue
		}
		if cv.pendingPersist && cv.last.writeEpoch == s.clock {
			// Multiple stores to the variable within one epoch collapse:
			// they persist atomically at the same fence, so only the last
			// value matters and the write record is already correct.
			continue
		}
		cv.prev = cv.last
		cv.last = commitWrite{writeEpoch: s.clock}
		cv.nWrites++
		cv.pendingPersist = true
		// The record change flips Eq. 3 outcomes for the variable's
		// associated bytes without touching their pages; drop those pages'
		// cached fingerprint hashes. (noteCommitPersists needs no such
		// invalidation: Eq. 3 never reads last.persistEpoch, and prev's
		// persist epoch is only consulted after the next record change,
		// which invalidates here.)
		for _, a := range s.assocs {
			if s.commitVars[a.varIdx] == cv {
				s.invalidateRangeFP(a.addr, a.size)
			}
		}
	}
}

// noteCommitPersists runs at each fence, after pending bytes transition to
// Persisted: a commit write whose bytes are now all persisted gets its
// persist epoch.
func (s *PM) noteCommitPersists() {
	for _, cv := range s.commitVars {
		if !cv.pendingPersist {
			continue
		}
		all := true
		for b := cv.addr; b < cv.addr+cv.size && b < s.size; b++ {
			if s.State(b) != Persisted {
				all = false
				break
			}
		}
		if all {
			cv.last.persistEpoch = s.clock
			cv.pendingPersist = false
		}
	}
}

// semanticallyConsistent evaluates Eq. 3 for the byte at addr against the
// commit variable cv. The byte must already be known Persisted; writeEpoch
// and persistEpoch are its last-write and persist epochs.
func semanticallyConsistent(cv *commitVar, writeEpoch, persistEpoch uint32) bool {
	// Before the first commit write the mechanism is not in play yet
	// (e.g. a failure between initializing the guarded data and the first
	// write of its commit variable); the data's safety is then governed by
	// the persistence check alone.
	if cv.nWrites == 0 {
		return true
	}
	// W[m] ≤p C[x,n]: the byte persisted strictly before the last commit
	// write's store.
	if persistEpoch >= cv.last.writeEpoch {
		return false
	}
	// C[x,n-1] ≤p W[m]: the previous commit write persisted strictly
	// before the byte's store. With fewer than two commit writes there is
	// no previous version boundary, so the condition holds vacuously.
	if cv.nWrites < 2 {
		return true
	}
	if cv.prev.persistEpoch == 0 {
		// The previous commit write never persisted (it was overwritten in
		// cache); it cannot be ordered before anything.
		return false
	}
	return cv.prev.persistEpoch < writeEpoch
}
