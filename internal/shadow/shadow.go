// Package shadow implements XFDetector's shadow persistent memory (§5.4 of
// the paper): a per-byte model of PM status that the detection backend
// updates while replaying the pre-failure trace and queries while checking
// the post-failure trace.
//
// For each PM byte the shadow records:
//
//   - the persistence state of Fig. 9: Unmodified → (WRITE) → Modified →
//     (CLWB) → WritebackPending → (SFENCE) → Persisted, with the redundant
//     transitions (flushing unmodified or already-persisted data) reported
//     as performance bugs;
//   - the epoch of its last write and the epoch at which it last became
//     persisted, where the global timestamp ("epoch") increments after each
//     ordering point, exactly like the paper's global timestamp;
//   - the source location of its last writer, for bug reports;
//   - whether it is protected by a transaction's undo log (PMDK-style
//     TX_ADD semantics, §5.4: "objects that have been added to the
//     transaction are regarded as consistent").
//
// The metadata lives in lazily allocated 4 KiB shadow pages (page.go), so
// memory is proportional to the bytes the execution touches rather than to
// the pool size, and the hot FSM transitions fast-path uniform cache lines
// and pages with range fills instead of per-byte loops. The previous dense
// full-pool representation is preserved (dense.go, NewDensePM) as an
// ablation knob and differential-testing reference. Parallel detection
// captures copy-on-write forks of the shadow per failure point (Fork in
// page.go).
//
// Commit variables (§3.2) are registered through RegCommitVar /
// RegCommitRange trace entries; see commit.go for the Eq. 3 consistency
// rule. Post-failure reads are classified by a PostChecker; see
// postcheck.go.
package shadow

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// PersistState is the per-byte persistence FSM state of Fig. 9.
type PersistState uint8

const (
	// Unmodified: never written during the traced execution.
	Unmodified PersistState = iota
	// Modified: written but not yet written back; lost on failure.
	Modified
	// WritebackPending: written back (CLWB/CLFLUSH/NT store) but not yet
	// fenced; still not guaranteed persistent.
	WritebackPending
	// Persisted: written back and fenced; guaranteed to survive a failure.
	Persisted
)

// String returns the single-letter code the paper uses (U/M/W/P).
func (s PersistState) String() string {
	switch s {
	case Unmodified:
		return "U"
	case Modified:
		return "M"
	case WritebackPending:
		return "W"
	case Persisted:
		return "P"
	}
	return fmt.Sprintf("PersistState(%d)", uint8(s))
}

// PerfBugKind classifies the performance bugs XFDetector reports while
// updating the shadow PM (§5.4, yellow edges of Fig. 9).
type PerfBugKind uint8

const (
	// RedundantFlush is a writeback covering no modified data (flushing
	// unmodified, already-pending, or already-persisted lines).
	RedundantFlush PerfBugKind = iota
	// DuplicateTxAdd is a TX_ADD fully covered by an earlier TX_ADD of the
	// same transaction.
	DuplicateTxAdd
)

// String names the performance bug kind.
func (k PerfBugKind) String() string {
	switch k {
	case RedundantFlush:
		return "redundant-writeback"
	case DuplicateTxAdd:
		return "duplicate-tx-add"
	}
	return fmt.Sprintf("PerfBugKind(%d)", uint8(k))
}

// PerfBug is one performance-bug observation.
type PerfBug struct {
	Kind PerfBugKind
	Addr uint64
	Size uint64
	IP   string
}

// PM is the shadow persistent memory for one pool.
type PM struct {
	size  uint64
	dense bool

	// pages is the sparse (default) representation: lazily allocated
	// 4 KiB shadow pages, nil where the pool was never touched (all bytes
	// Unmodified, writeEpoch 0). See page.go.
	pages []*page
	// d is the dense ablation representation (NewDensePM). See dense.go.
	d *denseState

	writers   []string // interned writer locations
	writerIDs map[string]uint32

	// pendingLines maps each cache-line start address with
	// writeback-pending bytes to whether the whole line was uniformly
	// WritebackPending when marked ("full"). Full lines take the fence's
	// range-fill fast path; a store that re-modifies bytes of a pending
	// line demotes it to the per-byte path (demotePendingLines). The
	// dense fence ignores the flag and always scans per byte.
	pendingLines map[uint64]bool
	clock        uint32 // global timestamp; increments after each SFence

	txDepth int
	txGen   uint32
	// curTx accumulates the ranges TX_ADDed (or transactionally
	// allocated) by the open transaction. Undo-log protection lasts only
	// until commit or abort: afterwards the data's safety rests on the
	// library actually having written it back, so an unflushed commit is
	// detectable as a race.
	curTx []txRange

	commitVars []*commitVar
	assocs     []assoc

	onPerf func(PerfBug) // optional performance-bug callback

	// postGen is the post-failure check generation counter (postcheck.go);
	// the per-byte scratch lives in the pages/dense arrays.
	postGen uint32

	// Cold-page compaction (compact.go): compactCold gates it, cold maps
	// each uniform-metadata class to its shared singleton page, coldSlots
	// remembers which slots were compacted (for rehydration). Canonical
	// sparse shadows only; forks never compact.
	compactCold bool
	cold        map[coldKey]*page
	coldSlots   map[int]*page

	// stats is the run-wide shadow memory accounting, shared with forks.
	stats *Stats
}

// NewPM returns a sparse paged shadow for a pool of the given size with
// the clock at epoch 1 (epoch 0 is reserved for "never").
func NewPM(size uint64) *PM {
	return &PM{
		size:         size,
		pages:        make([]*page, numPages(size)),
		writerIDs:    make(map[string]uint32),
		pendingLines: make(map[uint64]bool),
		clock:        1,
		stats:        &Stats{},
	}
}

// NewDensePM returns a shadow using the dense full-pool-size per-byte
// representation with per-byte FSM transitions — the ablation reference
// behind core.Config.DenseShadow. Its report behavior is identical to the
// sparse default.
func NewDensePM(size uint64) *PM {
	s := &PM{
		size:         size,
		dense:        true,
		d:            newDenseState(size),
		writerIDs:    make(map[string]uint32),
		pendingLines: make(map[uint64]bool),
		clock:        1,
		stats:        &Stats{},
	}
	s.stats.grow(denseFootprint(size))
	return s
}

// Size returns the shadowed pool size.
func (s *PM) Size() uint64 { return s.size }

// Clock returns the current global timestamp.
func (s *PM) Clock() uint32 { return s.clock }

// Dense reports whether this shadow uses the dense ablation
// representation.
func (s *PM) Dense() bool { return s.dense }

// SetPerfBugHandler installs the callback invoked for each performance-bug
// observation. A nil handler disables reporting.
func (s *PM) SetPerfBugHandler(f func(PerfBug)) { s.onPerf = f }

// State returns the persistence state of the byte at addr.
func (s *PM) State(addr uint64) PersistState {
	if s.dense {
		return s.d.state[addr]
	}
	if pg := s.pages[addr>>pageShift]; pg != nil {
		return pg.state[addr&pageMask]
	}
	return Unmodified
}

// WriteEpoch returns the epoch of the last write to addr (0 if never).
func (s *PM) WriteEpoch(addr uint64) uint32 {
	if s.dense {
		return s.d.writeEpoch[addr]
	}
	if pg := s.pages[addr>>pageShift]; pg != nil {
		return pg.writeEpoch[addr&pageMask]
	}
	return 0
}

// PersistEpoch returns the epoch at which addr last became persisted.
func (s *PM) PersistEpoch(addr uint64) uint32 {
	if s.dense {
		return s.d.persistEpoch[addr]
	}
	if pg := s.pages[addr>>pageShift]; pg != nil {
		return pg.persistEpoch[addr&pageMask]
	}
	return 0
}

// TxProtected reports whether addr is covered by undo-log protection.
func (s *PM) TxProtected(addr uint64) bool {
	if s.dense {
		return s.d.txSafe[addr]
	}
	if pg := s.pages[addr>>pageShift]; pg != nil {
		return pg.txSafe[addr&pageMask]
	}
	return false
}

// WriterIP returns the source location of the last writer of addr.
func (s *PM) WriterIP(addr uint64) string {
	var i uint32
	if s.dense {
		i = s.d.writerIdx[addr]
	} else if pg := s.pages[addr>>pageShift]; pg != nil {
		i = pg.writerIdx[addr&pageMask]
	}
	if i != 0 {
		return s.writers[i-1]
	}
	return ""
}

func (s *PM) internWriter(ip string) uint32 {
	if ip == "" {
		return 0
	}
	if id, ok := s.writerIDs[ip]; ok {
		return id
	}
	s.writers = append(s.writers, ip)
	id := uint32(len(s.writers)) // 1-based
	s.writerIDs[ip] = id
	return id
}

func (s *PM) clip(addr, size uint64) (uint64, uint64) {
	if addr >= s.size {
		return s.size, s.size
	}
	end := addr + size
	if end > s.size || end < addr {
		end = s.size
	}
	return addr, end
}

// Apply updates the shadow with one pre-failure trace entry. Entries whose
// kinds carry no persistence meaning (reads, RoI markers, function
// boundaries) are ignored.
func (s *PM) Apply(e trace.Entry) {
	switch e.Kind {
	case trace.Write, trace.CommitVarWrite:
		s.applyWrite(e.Addr, e.Size, e.IP)
	case trace.NTStore:
		s.applyNTStore(e.Addr, e.Size, e.IP)
	case trace.CLWB, trace.CLFlush:
		s.applyFlush(e.Addr, e.Size, e.IP)
	case trace.SFence:
		s.applyFence()
	case trace.TxBegin:
		s.txDepth++
		if s.txDepth == 1 {
			s.txGen++
		}
	case trace.TxCommit, trace.TxAbort:
		if s.txDepth > 0 {
			s.txDepth--
		}
		if s.txDepth == 0 {
			s.endTxProtection()
		}
	case trace.TxAdd:
		s.applyTxAdd(e.Addr, e.Size, e.IP, true)
	case trace.TxAlloc:
		// Transactionally allocated memory is rolled back (freed) on
		// abort, so, like TX_ADDed data, it is recoverable. It does not
		// count toward duplicate-TX_ADD detection: explicitly adding a
		// freshly allocated object afterwards is common, correct PM code.
		s.applyTxAdd(e.Addr, e.Size, e.IP, false)
	case trace.TxFree:
		// The freed range is no longer reachable through consistent
		// pointers after commit; nothing to track.
	case trace.AtomicAlloc:
		s.applyAtomicAlloc(e.Addr, e.Size, e.IP)
	case trace.RegCommitVar:
		s.registerCommitVar(e.Addr, e.Size)
	case trace.RegCommitRange:
		s.registerCommitRange(e.Addr, e.Size, e.Addr2, e.Size2)
	}
}

// sparseStore applies a store's per-byte effects page by page: the state,
// epoch, and writer arrays take unconditional range fills, and the txSafe
// voiding scan runs only on pages that may hold protected bytes.
func (s *PM) sparseStore(addr, end uint64, w uint32, inTx bool, st PersistState) {
	for b := addr; b < end; {
		pi, lo, hi, next := pageSpan(b, end)
		pg := s.writablePage(pi)
		pg.invalidateFP()
		fillState(pg.state[lo:hi], st)
		fillU32(pg.writeEpoch[lo:hi], s.clock)
		fillU32(pg.writerIdx[lo:hi], w)
		if pg.anyTxSafe {
			for i := lo; i < hi; i++ {
				if pg.txSafe[i] && (!inTx || pg.txAddGen[i] != s.txGen) {
					// A write outside any transaction, or inside a
					// transaction that did not TX_ADD this byte, voids the
					// protection.
					pg.txSafe[i] = false
				}
			}
		}
		b = next
	}
}

// demotePendingLines drops the fence fast path for lines a store just made
// non-uniform: a full (all-WritebackPending) line that now contains
// Modified bytes must take the per-byte fence path again.
func (s *PM) demotePendingLines(addr, end uint64) {
	if len(s.pendingLines) == 0 {
		return
	}
	for line := pmem.LineDown(addr); line < end; line += pmem.CacheLineSize {
		if s.pendingLines[line] {
			s.pendingLines[line] = false
		}
	}
}

func (s *PM) applyWrite(addr, size uint64, ip string) {
	addr, end := s.clip(addr, size)
	if addr == end {
		return
	}
	w := s.internWriter(ip)
	inTx := s.txDepth > 0
	if s.dense {
		s.denseStore(addr, end, w, inTx, Modified)
	} else {
		s.sparseStore(addr, end, w, inTx, Modified)
		s.demotePendingLines(addr, end)
	}
	s.noteCommitWrites(addr, end)
}

func (s *PM) applyNTStore(addr, size uint64, ip string) {
	addr, end := s.clip(addr, size)
	if addr == end {
		return
	}
	w := s.internWriter(ip)
	inTx := s.txDepth > 0
	if s.dense {
		s.denseStore(addr, end, w, inTx, WritebackPending)
		for line := pmem.LineDown(addr); line < end; line += pmem.CacheLineSize {
			s.pendingLines[line] = true // flag unused by the dense fence
		}
	} else {
		s.sparseStore(addr, end, w, inTx, WritebackPending)
		for line := pmem.LineDown(addr); line < end; line += pmem.CacheLineSize {
			lineEnd := line + pmem.CacheLineSize
			if lineEnd > s.size {
				lineEnd = s.size
			}
			if addr <= line && end >= lineEnd {
				// The store covers the whole line, so every byte of it is
				// now WritebackPending: eligible for the fence fast path.
				// (An earlier partial marking is superseded.)
				s.pendingLines[line] = true
			} else if _, ok := s.pendingLines[line]; !ok {
				// Partial store: bytes outside it may be in any state.
				// Conservatively take the per-byte fence path — unless the
				// line is already known fully pending, which a partial NT
				// store preserves (its bytes end up WritebackPending too).
				s.pendingLines[line] = false
			}
		}
	}
	s.noteCommitWrites(addr, end)
}

func (s *PM) applyFlush(addr, size uint64, ip string) {
	start := pmem.LineDown(addr)
	limit := pmem.LineUp(addr + size)
	start, limit = s.clip(start, limit-start)
	useful := false
	if s.dense {
		s.denseFlush(start, limit, &useful)
	} else {
		s.sparseFlush(start, limit, &useful)
	}
	if !useful && s.onPerf != nil {
		s.onPerf(PerfBug{Kind: RedundantFlush, Addr: addr, Size: size, IP: ip})
	}
}

// sparseFlush transitions Modified bytes of the flushed lines to
// WritebackPending. Pages never touched contain nothing modified and are
// skipped whole; lines that end up uniformly WritebackPending are marked
// full for the fence fast path.
func (s *PM) sparseFlush(start, limit uint64, useful *bool) {
	for line := start; line < limit; line += pmem.CacheLineSize {
		lineEnd := line + pmem.CacheLineSize
		if lineEnd > s.size {
			lineEnd = s.size
		}
		pi := int(line >> pageShift) // a 64 B line never spans 4 KiB pages
		pg := s.pages[pi]
		if pg == nil {
			continue
		}
		lo := int(line & pageMask)
		hi := lo + int(lineEnd-line)
		nM, nOther := 0, 0
		for i := lo; i < hi; i++ {
			switch pg.state[i] {
			case Modified:
				nM++
			case WritebackPending:
			default:
				nOther++
			}
		}
		if nM == 0 {
			continue
		}
		*useful = true
		pg = s.writablePage(pi)
		pg.invalidateFP()
		if unsoundFlushForTest {
			// Deliberately wrong (see mutation.go): jump straight to
			// Persisted without waiting for the fence.
			for i := lo; i < hi; i++ {
				if pg.state[i] == Modified {
					pg.state[i] = Persisted
					pg.persistEpoch[i] = s.clock
				}
			}
			continue
		}
		if nOther == 0 {
			// Only Modified and WritebackPending bytes: after the
			// transition the line is uniformly pending.
			fillState(pg.state[lo:hi], WritebackPending)
			s.pendingLines[line] = true
		} else {
			for i := lo; i < hi; i++ {
				if pg.state[i] == Modified {
					pg.state[i] = WritebackPending
				}
			}
			s.pendingLines[line] = false
		}
	}
}

func (s *PM) applyFence() {
	var cands []int
	if s.dense {
		s.denseFence()
	} else {
		if s.compactCold && s.txDepth == 0 {
			// Pages whose lines persist at this fence are the only new
			// cold-page candidates; collect them before the map is cleared.
			cands = s.compactCandidates()
		}
		for line, full := range s.pendingLines {
			lineEnd := line + pmem.CacheLineSize
			if lineEnd > s.size {
				lineEnd = s.size
			}
			pi := int(line >> pageShift)
			if s.pages[pi] == nil {
				continue
			}
			pg := s.writablePage(pi)
			if staleFenceFingerprintForTest {
				// Deliberately wrong (see mutation.go): the fence's fill
				// "forgets" to drop this page's fingerprint cache, and the
				// page ignores all invalidation from here on.
				pg.fpStuck = true
			}
			pg.invalidateFP()
			lo := int(line & pageMask)
			hi := lo + int(lineEnd-line)
			if full || lostRangeBatchForTest {
				// Fast path: the whole line is WritebackPending, so the
				// transition is one range fill per array. The mutation
				// switch (mutation.go) deliberately takes it for demoted
				// mixed-state lines too, spuriously persisting their
				// re-modified bytes.
				fillState(pg.state[lo:hi], Persisted)
				fillU32(pg.persistEpoch[lo:hi], s.clock)
				continue
			}
			for i := lo; i < hi; i++ {
				if pg.state[i] == WritebackPending {
					pg.state[i] = Persisted
					pg.persistEpoch[i] = s.clock
				}
			}
		}
	}
	clear(s.pendingLines)
	s.noteCommitPersists()
	s.clock++
	if len(cands) > 0 {
		s.compactColdPages(cands)
	}
}

func (s *PM) applyTxAdd(addr, size uint64, ip string, explicit bool) {
	addr, end := s.clip(addr, size)
	if addr == end {
		return
	}
	if s.txDepth == 0 {
		// A TX_ADD outside a transaction protects nothing; ignore. The
		// pmobj library reports this as a usage error before it gets here.
		return
	}
	var duplicate bool
	if s.dense {
		duplicate = s.denseTxAdd(addr, end, explicit)
	} else {
		duplicate = explicit
		for b := addr; b < end; {
			pi, lo, hi, next := pageSpan(b, end)
			pg := s.writablePage(pi)
			pg.invalidateFP()
			pg.anyTxSafe = true
			for i := lo; i < hi; i++ {
				if pg.txExplicit[i] != s.txGen {
					duplicate = false
				}
				pg.txAddGen[i] = s.txGen
				if explicit {
					pg.txExplicit[i] = s.txGen
				}
				pg.txSafe[i] = true
			}
			b = next
		}
	}
	s.curTx = append(s.curTx, txRange{addr, end - addr})
	if duplicate && s.onPerf != nil {
		s.onPerf(PerfBug{Kind: DuplicateTxAdd, Addr: addr, Size: size, IP: ip})
	}
}

type txRange struct{ addr, size uint64 }

// endTxProtection runs when the outermost transaction commits or aborts:
// the undo log no longer covers its ranges, so their post-failure safety
// falls back to the persistence state (the commit's writeback).
func (s *PM) endTxProtection() {
	if s.dense {
		s.denseEndTxProtection()
	} else {
		for _, r := range s.curTx {
			for b := r.addr; b < r.addr+r.size; {
				pi, lo, hi, next := pageSpan(b, r.addr+r.size)
				pg := s.writablePage(pi)
				pg.invalidateFP()
				fillBool(pg.txSafe[lo:hi], false)
				b = next
				// anyTxSafe stays set: the hint is conservative.
			}
		}
	}
	s.curTx = s.curTx[:0]
}

func (s *PM) applyAtomicAlloc(addr, size uint64, ip string) {
	addr, end := s.clip(addr, size)
	if addr == end {
		return
	}
	w := s.internWriter(ip)
	if s.dense {
		s.denseAtomicAlloc(addr, end, w)
		return
	}
	// Freshly allocated memory has indeterminate content: with a different
	// allocator it may not be zeroed (paper Bug 2), so it is modified-but-
	// not-guaranteed-persisted until the program initializes and persists
	// it. sparseStore with inTx=false also voids any undo-log protection.
	s.sparseStore(addr, end, w, false, Modified)
	s.demotePendingLines(addr, end)
}
