// Package shadow implements XFDetector's shadow persistent memory (§5.4 of
// the paper): a per-byte model of PM status that the detection backend
// updates while replaying the pre-failure trace and queries while checking
// the post-failure trace.
//
// For each PM byte the shadow records:
//
//   - the persistence state of Fig. 9: Unmodified → (WRITE) → Modified →
//     (CLWB) → WritebackPending → (SFENCE) → Persisted, with the redundant
//     transitions (flushing unmodified or already-persisted data) reported
//     as performance bugs;
//   - the epoch of its last write and the epoch at which it last became
//     persisted, where the global timestamp ("epoch") increments after each
//     ordering point, exactly like the paper's global timestamp;
//   - the source location of its last writer, for bug reports;
//   - whether it is protected by a transaction's undo log (PMDK-style
//     TX_ADD semantics, §5.4: "objects that have been added to the
//     transaction are regarded as consistent").
//
// Commit variables (§3.2) are registered through RegCommitVar /
// RegCommitRange trace entries; see commit.go for the Eq. 3 consistency
// rule. Post-failure reads are classified by a PostChecker; see
// postcheck.go.
package shadow

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// PersistState is the per-byte persistence FSM state of Fig. 9.
type PersistState uint8

const (
	// Unmodified: never written during the traced execution.
	Unmodified PersistState = iota
	// Modified: written but not yet written back; lost on failure.
	Modified
	// WritebackPending: written back (CLWB/CLFLUSH/NT store) but not yet
	// fenced; still not guaranteed persistent.
	WritebackPending
	// Persisted: written back and fenced; guaranteed to survive a failure.
	Persisted
)

// String returns the single-letter code the paper uses (U/M/W/P).
func (s PersistState) String() string {
	switch s {
	case Unmodified:
		return "U"
	case Modified:
		return "M"
	case WritebackPending:
		return "W"
	case Persisted:
		return "P"
	}
	return fmt.Sprintf("PersistState(%d)", uint8(s))
}

// PerfBugKind classifies the performance bugs XFDetector reports while
// updating the shadow PM (§5.4, yellow edges of Fig. 9).
type PerfBugKind uint8

const (
	// RedundantFlush is a writeback covering no modified data (flushing
	// unmodified, already-pending, or already-persisted lines).
	RedundantFlush PerfBugKind = iota
	// DuplicateTxAdd is a TX_ADD fully covered by an earlier TX_ADD of the
	// same transaction.
	DuplicateTxAdd
)

// String names the performance bug kind.
func (k PerfBugKind) String() string {
	switch k {
	case RedundantFlush:
		return "redundant-writeback"
	case DuplicateTxAdd:
		return "duplicate-tx-add"
	}
	return fmt.Sprintf("PerfBugKind(%d)", uint8(k))
}

// PerfBug is one performance-bug observation.
type PerfBug struct {
	Kind PerfBugKind
	Addr uint64
	Size uint64
	IP   string
}

// PM is the shadow persistent memory for one pool.
type PM struct {
	size uint64

	state        []PersistState
	writeEpoch   []uint32 // epoch of last write; 0 = never written
	persistEpoch []uint32 // epoch at which the byte last became persisted
	writerIdx    []uint32 // 1-based index into writers; 0 = none
	txSafe       []bool   // protected by a (committed or active) undo entry
	txAddGen     []uint32 // generation of the tx that last covered the byte
	txExplicit   []uint32 // generation of the tx that last TX_ADDed the byte explicitly

	writers   []string // interned writer locations
	writerIDs map[string]uint32

	pendingLines map[uint64]struct{} // line indices with writeback-pending bytes
	clock        uint32              // global timestamp; increments after each SFence

	txDepth int
	txGen   uint32
	// curTx accumulates the ranges TX_ADDed (or transactionally
	// allocated) by the open transaction. Undo-log protection lasts only
	// until commit or abort: afterwards the data's safety rests on the
	// library actually having written it back, so an unflushed commit is
	// detectable as a race.
	curTx []txRange

	commitVars []*commitVar
	assocs     []assoc

	onPerf func(PerfBug) // optional performance-bug callback

	// Post-failure check scratch, reused across failure points via the
	// generation counter (see postcheck.go).
	postWrittenGen []uint32
	checkedGen     []uint32
	postGen        uint32
}

// NewPM returns a shadow for a pool of the given size with the clock at
// epoch 1 (epoch 0 is reserved for "never").
func NewPM(size uint64) *PM {
	return &PM{
		size:           size,
		state:          make([]PersistState, size),
		writeEpoch:     make([]uint32, size),
		persistEpoch:   make([]uint32, size),
		writerIdx:      make([]uint32, size),
		txSafe:         make([]bool, size),
		txAddGen:       make([]uint32, size),
		txExplicit:     make([]uint32, size),
		writerIDs:      make(map[string]uint32),
		pendingLines:   make(map[uint64]struct{}),
		clock:          1,
		postWrittenGen: make([]uint32, size),
		checkedGen:     make([]uint32, size),
	}
}

// Size returns the shadowed pool size.
func (s *PM) Size() uint64 { return s.size }

// Clock returns the current global timestamp.
func (s *PM) Clock() uint32 { return s.clock }

// SetPerfBugHandler installs the callback invoked for each performance-bug
// observation. A nil handler disables reporting.
func (s *PM) SetPerfBugHandler(f func(PerfBug)) { s.onPerf = f }

// State returns the persistence state of the byte at addr.
func (s *PM) State(addr uint64) PersistState { return s.state[addr] }

// WriteEpoch returns the epoch of the last write to addr (0 if never).
func (s *PM) WriteEpoch(addr uint64) uint32 { return s.writeEpoch[addr] }

// PersistEpoch returns the epoch at which addr last became persisted.
func (s *PM) PersistEpoch(addr uint64) uint32 { return s.persistEpoch[addr] }

// TxProtected reports whether addr is covered by undo-log protection.
func (s *PM) TxProtected(addr uint64) bool { return s.txSafe[addr] }

// WriterIP returns the source location of the last writer of addr.
func (s *PM) WriterIP(addr uint64) string {
	if i := s.writerIdx[addr]; i != 0 {
		return s.writers[i-1]
	}
	return ""
}

func (s *PM) internWriter(ip string) uint32 {
	if ip == "" {
		return 0
	}
	if id, ok := s.writerIDs[ip]; ok {
		return id
	}
	s.writers = append(s.writers, ip)
	id := uint32(len(s.writers)) // 1-based
	s.writerIDs[ip] = id
	return id
}

func (s *PM) clip(addr, size uint64) (uint64, uint64) {
	if addr >= s.size {
		return s.size, s.size
	}
	end := addr + size
	if end > s.size || end < addr {
		end = s.size
	}
	return addr, end
}

// Apply updates the shadow with one pre-failure trace entry. Entries whose
// kinds carry no persistence meaning (reads, RoI markers, function
// boundaries) are ignored.
func (s *PM) Apply(e trace.Entry) {
	switch e.Kind {
	case trace.Write, trace.CommitVarWrite:
		s.applyWrite(e.Addr, e.Size, e.IP)
	case trace.NTStore:
		s.applyNTStore(e.Addr, e.Size, e.IP)
	case trace.CLWB, trace.CLFlush:
		s.applyFlush(e.Addr, e.Size, e.IP)
	case trace.SFence:
		s.applyFence()
	case trace.TxBegin:
		s.txDepth++
		if s.txDepth == 1 {
			s.txGen++
		}
	case trace.TxCommit, trace.TxAbort:
		if s.txDepth > 0 {
			s.txDepth--
		}
		if s.txDepth == 0 {
			s.endTxProtection()
		}
	case trace.TxAdd:
		s.applyTxAdd(e.Addr, e.Size, e.IP, true)
	case trace.TxAlloc:
		// Transactionally allocated memory is rolled back (freed) on
		// abort, so, like TX_ADDed data, it is recoverable. It does not
		// count toward duplicate-TX_ADD detection: explicitly adding a
		// freshly allocated object afterwards is common, correct PM code.
		s.applyTxAdd(e.Addr, e.Size, e.IP, false)
	case trace.TxFree:
		// The freed range is no longer reachable through consistent
		// pointers after commit; nothing to track.
	case trace.AtomicAlloc:
		s.applyAtomicAlloc(e.Addr, e.Size, e.IP)
	case trace.RegCommitVar:
		s.registerCommitVar(e.Addr, e.Size)
	case trace.RegCommitRange:
		s.registerCommitRange(e.Addr, e.Size, e.Addr2, e.Size2)
	}
}

func (s *PM) applyWrite(addr, size uint64, ip string) {
	addr, end := s.clip(addr, size)
	if addr == end {
		return
	}
	w := s.internWriter(ip)
	inTx := s.txDepth > 0
	for b := addr; b < end; b++ {
		s.state[b] = Modified
		s.writeEpoch[b] = s.clock
		s.writerIdx[b] = w
		if s.txSafe[b] {
			// A write outside any transaction, or inside a transaction
			// that did not TX_ADD this byte, voids the protection.
			if !inTx || s.txAddGen[b] != s.txGen {
				s.txSafe[b] = false
			}
		}
	}
	s.noteCommitWrites(addr, end)
}

func (s *PM) applyNTStore(addr, size uint64, ip string) {
	addr, end := s.clip(addr, size)
	if addr == end {
		return
	}
	w := s.internWriter(ip)
	inTx := s.txDepth > 0
	for b := addr; b < end; b++ {
		s.state[b] = WritebackPending
		s.writeEpoch[b] = s.clock
		s.writerIdx[b] = w
		if s.txSafe[b] && (!inTx || s.txAddGen[b] != s.txGen) {
			s.txSafe[b] = false
		}
	}
	for line := pmem.LineDown(addr); line < end; line += pmem.CacheLineSize {
		s.pendingLines[line] = struct{}{}
	}
	s.noteCommitWrites(addr, end)
}

func (s *PM) applyFlush(addr, size uint64, ip string) {
	start := pmem.LineDown(addr)
	limit := pmem.LineUp(addr + size)
	start, limit = s.clip(start, limit-start)
	useful := false
	for line := start; line < limit; line += pmem.CacheLineSize {
		lineEnd := line + pmem.CacheLineSize
		if lineEnd > s.size {
			lineEnd = s.size
		}
		for b := line; b < lineEnd; b++ {
			if s.state[b] == Modified {
				if unsoundFlushForTest {
					// Deliberately wrong (see mutation.go): jump straight to
					// Persisted without waiting for the fence.
					s.state[b] = Persisted
					s.persistEpoch[b] = s.clock
					useful = true
					continue
				}
				s.state[b] = WritebackPending
				s.pendingLines[line] = struct{}{}
				useful = true
			}
		}
	}
	if !useful && s.onPerf != nil {
		s.onPerf(PerfBug{Kind: RedundantFlush, Addr: addr, Size: size, IP: ip})
	}
}

func (s *PM) applyFence() {
	for line := range s.pendingLines {
		lineEnd := line + pmem.CacheLineSize
		if lineEnd > s.size {
			lineEnd = s.size
		}
		for b := line; b < lineEnd; b++ {
			if s.state[b] == WritebackPending {
				s.state[b] = Persisted
				s.persistEpoch[b] = s.clock
			}
		}
	}
	clear(s.pendingLines)
	s.noteCommitPersists()
	s.clock++
}

func (s *PM) applyTxAdd(addr, size uint64, ip string, explicit bool) {
	addr, end := s.clip(addr, size)
	if addr == end {
		return
	}
	if s.txDepth == 0 {
		// A TX_ADD outside a transaction protects nothing; ignore. The
		// pmobj library reports this as a usage error before it gets here.
		return
	}
	duplicate := explicit
	for b := addr; b < end; b++ {
		if s.txExplicit[b] != s.txGen {
			duplicate = false
		}
		s.txAddGen[b] = s.txGen
		if explicit {
			s.txExplicit[b] = s.txGen
		}
		s.txSafe[b] = true
	}
	s.curTx = append(s.curTx, txRange{addr, end - addr})
	if duplicate && s.onPerf != nil {
		s.onPerf(PerfBug{Kind: DuplicateTxAdd, Addr: addr, Size: size, IP: ip})
	}
}

type txRange struct{ addr, size uint64 }

// endTxProtection runs when the outermost transaction commits or aborts:
// the undo log no longer covers its ranges, so their post-failure safety
// falls back to the persistence state (the commit's writeback).
func (s *PM) endTxProtection() {
	for _, r := range s.curTx {
		for b := r.addr; b < r.addr+r.size; b++ {
			s.txSafe[b] = false
		}
	}
	s.curTx = s.curTx[:0]
}

func (s *PM) applyAtomicAlloc(addr, size uint64, ip string) {
	addr, end := s.clip(addr, size)
	w := s.internWriter(ip)
	for b := addr; b < end; b++ {
		// Freshly allocated memory has indeterminate content: with a
		// different allocator it may not be zeroed (paper Bug 2), so it is
		// modified-but-not-guaranteed-persisted until the program
		// initializes and persists it.
		s.state[b] = Modified
		s.writeEpoch[b] = s.clock
		s.writerIdx[b] = w
		s.txSafe[b] = false
	}
}
