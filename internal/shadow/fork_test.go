package shadow

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// TestForkFrozenAtCapture: a fork must keep observing the shadow exactly
// as it was at Fork time while the parent keeps replaying.
func TestForkFrozenAtCapture(t *testing.T) {
	s := NewPM(1 << 16)
	apply(s, trace.Write, 0, 64)
	apply(s, trace.CLWB, 0, 64)
	apply(s, trace.Write, 4096, 8) // second page, never persisted

	f := s.Fork()
	defer f.Release()

	// Parent advances past the failure point: the flushed line persists
	// and the second page gets overwritten and persisted too.
	apply(s, trace.SFence, 0, 0)
	apply(s, trace.Write, 4096, 8)
	apply(s, trace.CLWB, 4096, 8)
	apply(s, trace.SFence, 0, 0)

	if got := s.State(0); got != Persisted {
		t.Fatalf("parent state(0) = %v, want P", got)
	}
	if got := f.State(0); got != WritebackPending {
		t.Fatalf("fork state(0) = %v, want W (frozen pre-fence)", got)
	}
	if got := f.State(4096); got != Modified {
		t.Fatalf("fork state(4096) = %v, want M", got)
	}
	if f.Clock() == s.Clock() {
		t.Fatal("fork clock advanced with parent")
	}

	// The fork's post-failure checker sees the frozen state: both ranges
	// race (W and M are not guaranteed persisted)...
	ch := f.BeginPostCheck()
	if fs := ch.OnRead(0, 8); len(fs) != 1 || fs[0].Class != ClassRace {
		t.Fatalf("fork OnRead(0) = %+v, want one race", fs)
	}
	// ...while the parent's checker sees them persisted.
	pch := s.BeginPostCheck()
	if fs := pch.OnRead(0, 8); len(fs) != 0 {
		t.Fatalf("parent OnRead(0) = %+v, want clean", fs)
	}
	if fs := pch.OnRead(4096, 8); len(fs) != 0 {
		t.Fatalf("parent OnRead(4096) = %+v, want clean", fs)
	}
}

// TestForkScratchIsolation: post-check overlay and checked marks made
// through a fork must not leak into the parent or sibling forks.
func TestForkScratchIsolation(t *testing.T) {
	s := NewPM(1 << 14)
	apply(s, trace.Write, 100, 8)
	f1 := s.Fork()
	defer f1.Release()
	f2 := s.Fork()
	defer f2.Release()

	c1 := f1.BeginPostCheck()
	c1.OnWrite(100, 8) // overwrites the range: subsequent reads are safe
	if fs := c1.OnRead(100, 8); len(fs) != 0 {
		t.Fatalf("f1 read after post write = %+v, want clean", fs)
	}
	c2 := f2.BeginPostCheck()
	if fs := c2.OnRead(100, 8); len(fs) != 1 || fs[0].Class != ClassRace {
		t.Fatalf("f2 OnRead = %+v, want one race (no leaked overlay)", fs)
	}
	cp := s.BeginPostCheck()
	if fs := cp.OnRead(100, 8); len(fs) != 1 || fs[0].Class != ClassRace {
		t.Fatalf("parent OnRead = %+v, want one race (no leaked overlay)", fs)
	}
}

// TestForkCommitVarIsolation: commit-variable records are deep-copied into
// the fork — the parent mutates them in place at every store and fence.
func TestForkCommitVarIsolation(t *testing.T) {
	s := NewPM(1 << 14)
	s.Apply(trace.Entry{Kind: trace.RegCommitRange, Addr: 0, Size: 8, Addr2: 64, Size2: 8})
	// Guarded data persisted, then the first commit write, not yet fenced.
	apply(s, trace.Write, 64, 8)
	apply(s, trace.CLWB, 64, 8)
	apply(s, trace.SFence, 0, 0)
	apply(s, trace.Write, 0, 8)

	f := s.Fork()
	defer f.Release()

	// Parent: the commit write persists, then the data is re-modified and
	// re-persisted without a second commit write — semantically
	// inconsistent under Eq. 3 from the parent's vantage point.
	apply(s, trace.CLWB, 0, 8)
	apply(s, trace.SFence, 0, 0)
	apply(s, trace.Write, 64, 8)
	apply(s, trace.CLWB, 64, 8)
	apply(s, trace.SFence, 0, 0)

	fch := f.BeginPostCheck()
	if fs := fch.OnRead(64, 8); len(fs) != 0 {
		t.Fatalf("fork OnRead(64) = %+v, want clean (commit write unpersisted at fork)", fs)
	}
	sch := s.BeginPostCheck()
	if fs := sch.OnRead(64, 8); len(fs) != 1 || fs[0].Class != ClassSemantic {
		t.Fatalf("parent OnRead(64) = %+v, want one semantic bug", fs)
	}

	// Post-failure recovery re-registering commit variables must stay
	// local to the fork (idempotent here, but must not touch the parent).
	f.Apply(trace.Entry{Kind: trace.RegCommitVar, Addr: 0, Size: 8})
	if f.CommitVarCount() != 1 || s.CommitVarCount() != 1 {
		t.Fatalf("commit var counts = %d/%d, want 1/1", f.CommitVarCount(), s.CommitVarCount())
	}
}

// TestForkStatsAccounting: page refcounts and the shared Stats must track
// lazily allocated pages, COW clones, and fork release.
func TestForkStatsAccounting(t *testing.T) {
	s := NewPM(1 << 20) // 256 potential pages
	apply(s, trace.Write, 0, 8)
	apply(s, trace.Write, 4096, 8)
	if _, pages := s.MemStats(); pages != 2 {
		t.Fatalf("pages after two writes = %d, want 2 (lazy)", pages)
	}
	peakBefore, _ := s.MemStats()

	f := s.Fork()
	// Forking allocates nothing.
	if _, pages := s.MemStats(); pages != 2 {
		t.Fatalf("pages after fork = %d, want 2", pages)
	}
	// Parent write to a shared page privatizes it (one clone)...
	apply(s, trace.Write, 0, 8)
	if _, pages := s.MemStats(); pages != 3 {
		t.Fatalf("pages after COW write = %d, want 3", pages)
	}
	// ...and the peak now covers parent + fork.
	peakShared, _ := s.MemStats()
	if peakShared <= peakBefore {
		t.Fatalf("peak %d not above pre-clone peak %d", peakShared, peakBefore)
	}
	// Fresh parent pages are invisible to the fork.
	apply(s, trace.Write, 8192, 8)
	if got := f.State(8192); got != Unmodified {
		t.Fatalf("fork sees parent's post-fork page: %v", got)
	}
	f.Release()

	live := s.stats.live.Load()
	// After release the fork's original page 0 is freed; the parent holds
	// its clone of page 0, the shared page 1, and the fresh page 2.
	if want := 3 * pageFootprint; live != want {
		t.Fatalf("live bytes after release = %d, want %d", live, want)
	}
}

// TestDenseForkIsDeepCopy: the ablation representation forks by copying
// the whole table, and Release returns its accounted footprint.
func TestDenseForkIsDeepCopy(t *testing.T) {
	s := NewDensePM(1 << 14)
	apply(s, trace.Write, 0, 8)
	f := s.Fork()
	apply(s, trace.CLWB, 0, 8)
	apply(s, trace.SFence, 0, 0)
	if got := f.State(0); got != Modified {
		t.Fatalf("dense fork state = %v, want M", got)
	}
	liveForked := s.stats.live.Load()
	if want := 2 * denseFootprint(s.Size()); liveForked != want {
		t.Fatalf("live bytes with dense fork = %d, want %d", liveForked, want)
	}
	f.Release()
	if live := s.stats.live.Load(); live != denseFootprint(s.Size()) {
		t.Fatalf("live bytes after release = %d, want %d", live, denseFootprint(s.Size()))
	}
	if peak, _ := s.MemStats(); peak != uint64(liveForked) {
		t.Fatalf("peak = %d, want %d", peak, liveForked)
	}
}

// TestMixedStateLineFencePath pins the semantics the lost-range-batch
// mutant breaks: a line flushed whole (full fast path) and then partially
// re-modified must keep its Modified bytes unpersisted across the fence.
func TestMixedStateLineFencePath(t *testing.T) {
	for _, mk := range []func(uint64) *PM{NewPM, NewDensePM} {
		s := mk(4096)
		apply(s, trace.Write, 0, 64) // whole line
		apply(s, trace.CLWB, 0, 64)  // uniformly WritebackPending
		apply(s, trace.Write, 8, 8)  // re-modify: line is now mixed W/M
		apply(s, trace.SFence, 0, 0)
		if got := s.State(0); got != Persisted {
			t.Errorf("dense=%v: state(0) = %v, want P", s.Dense(), got)
		}
		if got := s.State(8); got != Modified {
			t.Errorf("dense=%v: state(8) = %v, want M (not covered by the fence)", s.Dense(), got)
		}
		if got := s.State(16); got != Persisted {
			t.Errorf("dense=%v: state(16) = %v, want P", s.Dense(), got)
		}
	}
}

// TestLostRangeBatchMutantFlipsMixedLine: with the mutation switch on, the
// sparse fence mis-persists the re-modified bytes — the observable defect
// the differential suites must catch.
func TestLostRangeBatchMutantFlipsMixedLine(t *testing.T) {
	SetLostRangeBatchForTest(true)
	defer SetLostRangeBatchForTest(false)
	s := NewPM(4096)
	apply(s, trace.Write, 0, 64)
	apply(s, trace.CLWB, 0, 64)
	apply(s, trace.Write, 8, 8)
	apply(s, trace.SFence, 0, 0)
	if got := s.State(8); got != Persisted {
		t.Fatalf("mutant state(8) = %v, want the unsound P", got)
	}
}

// randomEntries generates a deterministic pseudo-random pre-failure
// workload over a small pool: stores, NT stores, flushes, fences,
// transactions, allocations, and commit-variable registrations.
func randomEntries(rng *rand.Rand, n int, poolSize uint64) []trace.Entry {
	var out []trace.Entry
	txDepth := 0
	for i := 0; i < n; i++ {
		addr := uint64(rng.Intn(int(poolSize)))
		size := uint64(1 + rng.Intn(128))
		ip := fmt.Sprintf("rnd.go:%d", rng.Intn(12))
		switch rng.Intn(12) {
		case 0, 1, 2:
			out = append(out, trace.Entry{Kind: trace.Write, Addr: addr, Size: size, IP: ip})
		case 3:
			out = append(out, trace.Entry{Kind: trace.NTStore, Addr: addr, Size: size, IP: ip})
		case 4, 5:
			out = append(out, trace.Entry{Kind: trace.CLWB, Addr: addr, Size: size, IP: ip})
		case 6, 7:
			out = append(out, trace.Entry{Kind: trace.SFence})
		case 8:
			out = append(out, trace.Entry{Kind: trace.TxBegin})
			txDepth++
		case 9:
			if txDepth > 0 {
				out = append(out, trace.Entry{Kind: trace.TxAdd, Addr: addr, Size: size, IP: ip})
			}
		case 10:
			if txDepth > 0 {
				out = append(out, trace.Entry{Kind: trace.TxCommit})
				txDepth--
			}
		case 11:
			if rng.Intn(4) == 0 {
				out = append(out, trace.Entry{Kind: trace.RegCommitRange,
					Addr: addr &^ 7, Size: 8, Addr2: uint64(rng.Intn(int(poolSize))), Size2: size})
			} else {
				out = append(out, trace.Entry{Kind: trace.AtomicAlloc, Addr: addr, Size: size, IP: ip})
			}
		}
	}
	for ; txDepth > 0; txDepth-- {
		out = append(out, trace.Entry{Kind: trace.TxCommit})
	}
	return out
}

// TestSparseDenseEquivalence replays random workloads into both
// representations and requires byte-identical metadata and post-check
// classifications — the in-package analogue of the fuzzer's dense-shadow
// differential config.
func TestSparseDenseEquivalence(t *testing.T) {
	const poolSize = 3*pageBytes + 128 // deliberately not page-aligned
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sp, de := NewPM(poolSize), NewDensePM(poolSize)
		for _, e := range randomEntries(rng, 400, poolSize) {
			sp.Apply(e)
			de.Apply(e)
		}
		for b := uint64(0); b < poolSize; b++ {
			if sp.State(b) != de.State(b) || sp.WriteEpoch(b) != de.WriteEpoch(b) ||
				sp.PersistEpoch(b) != de.PersistEpoch(b) || sp.TxProtected(b) != de.TxProtected(b) ||
				sp.WriterIP(b) != de.WriterIP(b) {
				t.Fatalf("seed %d: byte %d diverges: sparse (%v e%d p%d tx%v %q) dense (%v e%d p%d tx%v %q)",
					seed, b,
					sp.State(b), sp.WriteEpoch(b), sp.PersistEpoch(b), sp.TxProtected(b), sp.WriterIP(b),
					de.State(b), de.WriteEpoch(b), de.PersistEpoch(b), de.TxProtected(b), de.WriterIP(b))
			}
		}
		cs, cd := sp.BeginPostCheck(), de.BeginPostCheck()
		for off := uint64(0); off < poolSize; off += 64 {
			fs, fd := cs.OnRead(off, 64), cd.OnRead(off, 64)
			if len(fs) != len(fd) {
				t.Fatalf("seed %d read@%d: %d sparse vs %d dense findings", seed, off, len(fs), len(fd))
			}
			for i := range fs {
				if fs[i] != fd[i] {
					t.Fatalf("seed %d read@%d: finding %d: %+v vs %+v", seed, off, i, fs[i], fd[i])
				}
			}
		}
		if cs.Benign != cd.Benign {
			t.Fatalf("seed %d: benign %d sparse vs %d dense", seed, cs.Benign, cd.Benign)
		}
	}
}
