package shadow

// Dense (ablation) shadow representation.
//
// This file preserves the pre-sparse implementation: full-pool-size
// per-byte arrays and per-byte FSM transition loops, selected by
// NewDensePM (core.Config.DenseShadow / xfdetector -dense-shadow). It is
// deliberately an independent code path rather than a parameterization of
// the sparse one: the differential fuzzer's dense-shadow config and the
// ablation benchmarks compare the two representations against each other,
// which only has teeth while they do not share their transition code.
// Forking a dense shadow deep-copies every array — the O(pool × workers)
// cost the sparse representation exists to avoid.

import "github.com/pmemgo/xfdetector/internal/pmem"

// denseState holds the flat per-byte arrays of the dense representation.
type denseState struct {
	state        []PersistState
	writeEpoch   []uint32
	persistEpoch []uint32
	writerIdx    []uint32
	txSafe       []bool
	txAddGen     []uint32
	txExplicit   []uint32
	postWritten  []uint32
	checked      []uint32
}

func newDenseState(size uint64) *denseState {
	return &denseState{
		state:        make([]PersistState, size),
		writeEpoch:   make([]uint32, size),
		persistEpoch: make([]uint32, size),
		writerIdx:    make([]uint32, size),
		txSafe:       make([]bool, size),
		txAddGen:     make([]uint32, size),
		txExplicit:   make([]uint32, size),
		postWritten:  make([]uint32, size),
		checked:      make([]uint32, size),
	}
}

func (d *denseState) clone() *denseState {
	return &denseState{
		state:        append([]PersistState(nil), d.state...),
		writeEpoch:   append([]uint32(nil), d.writeEpoch...),
		persistEpoch: append([]uint32(nil), d.persistEpoch...),
		writerIdx:    append([]uint32(nil), d.writerIdx...),
		txSafe:       append([]bool(nil), d.txSafe...),
		txAddGen:     append([]uint32(nil), d.txAddGen...),
		txExplicit:   append([]uint32(nil), d.txExplicit...),
		postWritten:  append([]uint32(nil), d.postWritten...),
		checked:      append([]uint32(nil), d.checked...),
	}
}

// denseStore is the dense body of applyWrite (st = Modified) and
// applyNTStore (st = WritebackPending).
func (s *PM) denseStore(addr, end uint64, w uint32, inTx bool, st PersistState) {
	d := s.d
	for b := addr; b < end; b++ {
		d.state[b] = st
		d.writeEpoch[b] = s.clock
		d.writerIdx[b] = w
		if d.txSafe[b] {
			// A write outside any transaction, or inside a transaction
			// that did not TX_ADD this byte, voids the protection.
			if !inTx || d.txAddGen[b] != s.txGen {
				d.txSafe[b] = false
			}
		}
	}
}

func (s *PM) denseFlush(start, limit uint64, useful *bool) {
	d := s.d
	for line := start; line < limit; line += pmem.CacheLineSize {
		lineEnd := line + pmem.CacheLineSize
		if lineEnd > s.size {
			lineEnd = s.size
		}
		for b := line; b < lineEnd; b++ {
			if d.state[b] == Modified {
				if unsoundFlushForTest {
					// Deliberately wrong (see mutation.go): jump straight to
					// Persisted without waiting for the fence.
					d.state[b] = Persisted
					d.persistEpoch[b] = s.clock
					*useful = true
					continue
				}
				d.state[b] = WritebackPending
				s.pendingLines[line] = true
				*useful = true
			}
		}
	}
}

func (s *PM) denseFence() {
	d := s.d
	for line := range s.pendingLines {
		lineEnd := line + pmem.CacheLineSize
		if lineEnd > s.size {
			lineEnd = s.size
		}
		for b := line; b < lineEnd; b++ {
			if d.state[b] == WritebackPending {
				d.state[b] = Persisted
				d.persistEpoch[b] = s.clock
			}
		}
	}
}

// denseTxAdd is the dense body of applyTxAdd; it reports whether the range
// was already explicitly TX_ADDed by this transaction.
func (s *PM) denseTxAdd(addr, end uint64, explicit bool) bool {
	d := s.d
	duplicate := explicit
	for b := addr; b < end; b++ {
		if d.txExplicit[b] != s.txGen {
			duplicate = false
		}
		d.txAddGen[b] = s.txGen
		if explicit {
			d.txExplicit[b] = s.txGen
		}
		d.txSafe[b] = true
	}
	return duplicate
}

func (s *PM) denseEndTxProtection() {
	d := s.d
	for _, r := range s.curTx {
		for b := r.addr; b < r.addr+r.size; b++ {
			d.txSafe[b] = false
		}
	}
}

func (s *PM) denseAtomicAlloc(addr, end uint64, w uint32) {
	d := s.d
	for b := addr; b < end; b++ {
		// Freshly allocated memory has indeterminate content: with a
		// different allocator it may not be zeroed (paper Bug 2), so it is
		// modified-but-not-guaranteed-persisted until the program
		// initializes and persists it.
		d.state[b] = Modified
		d.writeEpoch[b] = s.clock
		d.writerIdx[b] = w
		d.txSafe[b] = false
	}
}
