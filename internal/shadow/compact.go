package shadow

// Cold-page compaction for file-backed campaigns.
//
// Once a file-backed pool persists a page's lines, the page typically goes
// cold: bulk-initialized data is written in one epoch, flushed, fenced, and
// never touched again — yet its 4 KiB shadow page (~100 KiB of metadata)
// stays live for the rest of the campaign. After each fence, compaction
// scans the pages whose lines just persisted; a page whose every byte
// carries identical metadata — Persisted, no undo-log protection, same
// write epoch, persist epoch and writer — and whose range overlaps no
// commit-variable geometry is swapped for a shared singleton page holding
// exactly those uniform values. N cold pages with the same metadata then
// cost one shadow page instead of N, and the dropped pages stop counting
// toward live shadow bytes (Stats) — the sparse shadow "drops" its cold
// pages once their lines persist.
//
// Transparency argument, piece by piece:
//
//   - Accessors (State, WriteEpoch, PersistEpoch, TxProtected, WriterIP)
//     and the post-failure classifier read per-byte arrays; the singleton
//     holds the byte-identical uniform values, so every read is unchanged.
//   - The scratch arrays (postWritten, checked, txAddGen, txExplicit) are
//     zeroed on the singleton. All four are guarded by generation counters
//     that start at 1 and never reuse a value, so zero is semantically
//     identical to any stale generation. Compaction additionally refuses
//     to run while a transaction is open, so no txAddGen/txExplicit value
//     of the *current* generation can be live on an all-txSafe-false page.
//   - Mutation goes through writablePage. A singleton's refcount is always
//     at least its registry reference plus one per adopted slot, so any
//     writer first clones it — exactly the existing fork-COW contract; the
//     other slots never observe the write.
//   - Fingerprints: with no commit-variable geometry over the page, every
//     byte's symbol is the persisted-consistent bucket with the shared
//     writer (fpSymbol), independent of the byte's address — so one cached
//     hash is correct for every slot sharing the singleton, and equals
//     what pageHash would compute on the uncompacted page. Geometry
//     registered *later* would break that address independence, so
//     registerCommitVar/registerCommitRange rehydrate any compacted slot
//     their ranges overlap (rehydrateCold) before the geometry lands.
//
// Compaction is enabled by the detection frontend for file-backed
// campaigns (SetColdPageCompaction); the sparse/dense equivalence of
// fingerprints and classifications with it on vs. off is pinned by
// TestColdPageCompactionEquivalence and the fuzzer's file-backed configs.

// coldKey identifies one uniform-metadata singleton page.
type coldKey struct {
	we, pe, w uint32
}

// SetColdPageCompaction toggles cold-page compaction on a sparse canonical
// shadow. Enable it before replay starts; forks never compact (they take
// no fences).
func (s *PM) SetColdPageCompaction(on bool) {
	s.compactCold = on && !s.dense
	if s.compactCold && s.cold == nil {
		s.cold = make(map[coldKey]*page)
		s.coldSlots = make(map[int]*page)
	}
}

// ColdPages returns how many page slots currently share a compacted
// singleton (test and stats surface).
func (s *PM) ColdPages() int {
	n := 0
	for pi, pg := range s.coldSlots {
		if s.pages[pi] == pg {
			n++
		}
	}
	return n
}

// compactCandidates returns the distinct page indices holding lines this
// fence is about to persist — the only pages that can newly become cold.
// Called before applyFence clears pendingLines.
func (s *PM) compactCandidates() []int {
	var cands []int
	seen := make(map[int]bool, len(s.pendingLines))
	for line := range s.pendingLines {
		pi := int(line >> pageShift)
		if !seen[pi] && s.pages[pi] != nil {
			seen[pi] = true
			cands = append(cands, pi)
		}
	}
	return cands
}

// compactColdPages swaps every candidate page that is uniformly cold for
// the singleton of its metadata class. Runs on the thread advancing the
// canonical shadow, after the fence transitions.
func (s *PM) compactColdPages(cands []int) {
	for _, pi := range cands {
		pg := s.pages[pi]
		if pg == nil || s.coldSlots[pi] == pg {
			continue
		}
		we, pe, w, ok := pageUniformCold(pg)
		if !ok {
			continue
		}
		lo := uint64(pi) << pageShift
		hi := lo + pageBytes
		if hi > s.size {
			hi = s.size
		}
		if s.geometryOverlaps(lo, hi) {
			continue
		}
		key := coldKey{we: we, pe: pe, w: w}
		single := s.cold[key]
		if single == nil {
			single = s.newColdPage(we, pe, w)
			s.cold[key] = single
		}
		adoptPageRef(single)
		s.pages[pi] = single
		s.coldSlots[pi] = single
		s.dropPageRef(pg)
	}
}

// pageUniformCold reports whether every byte of pg carries the same cold
// metadata: Persisted, unprotected, one write epoch, one persist epoch,
// one writer. A never-written byte (writeEpoch 0) fails the state check,
// so partial trailing pages and half-initialized pages are excluded.
func pageUniformCold(pg *page) (we, pe, w uint32, ok bool) {
	we, pe, w = pg.writeEpoch[0], pg.persistEpoch[0], pg.writerIdx[0]
	for i := 0; i < pageBytes; i++ {
		if pg.state[i] != Persisted || pg.txSafe[i] ||
			pg.writeEpoch[i] != we || pg.persistEpoch[i] != pe || pg.writerIdx[i] != w {
			return 0, 0, 0, false
		}
	}
	return we, pe, w, true
}

// geometryOverlaps reports whether [lo, hi) intersects any registered
// commit variable or associated range — geometry makes fpSymbol
// address-dependent, which a shared singleton cannot represent.
func (s *PM) geometryOverlaps(lo, hi uint64) bool {
	for _, cv := range s.commitVars {
		if cv.addr < hi && lo < cv.addr+cv.size {
			return true
		}
	}
	for _, a := range s.assocs {
		if a.addr < hi && lo < a.addr+a.size {
			return true
		}
	}
	return false
}

// newColdPage builds the singleton for one metadata class, with its
// address-independent fingerprint hash precomputed: every byte folds the
// persisted-consistent symbol with the shared writer, exactly what
// pageHash computes for an uncompacted page of this class.
func (s *PM) newColdPage(we, pe, w uint32) *page {
	pg := s.newPage()
	fillState(pg.state[:], Persisted)
	fillU32(pg.writeEpoch[:], we)
	fillU32(pg.persistEpoch[:], pe)
	fillU32(pg.writerIdx[:], w)
	h := uint64(fnvOffset)
	sym := uint64(6)<<32 | uint64(w)
	for i := 0; i < pageBytes; i++ {
		h = fnvMix(h, sym)
	}
	pg.fpHash = h
	pg.fpValid = true
	return pg
}

// rehydrateCold replaces compacted slots overlapping [addr, addr+size)
// with private copies of their singleton. Commit-variable registration
// calls it before new geometry lands: afterwards the slot's symbols are
// address-dependent, so it must stop sharing a page (and a cached hash)
// with slots elsewhere in the pool. Slots privatized since compaction are
// recognized by pointer and just forgotten.
func (s *PM) rehydrateCold(addr, size uint64) {
	if len(s.coldSlots) == 0 {
		return
	}
	addr, end := s.clip(addr, size)
	for b := addr; b < end; {
		pi, _, _, next := pageSpan(b, end)
		if cold, ok := s.coldSlots[pi]; ok {
			if s.pages[pi] == cold {
				np := s.newPage()
				np.state = cold.state
				np.writeEpoch = cold.writeEpoch
				np.persistEpoch = cold.persistEpoch
				np.writerIdx = cold.writerIdx
				s.pages[pi] = np
				s.dropPageRef(cold)
			}
			delete(s.coldSlots, pi)
		}
		b = next
	}
}
