package baseline_test

import (
	"testing"

	"github.com/pmemgo/xfdetector/internal/baseline"
	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/trace"
	"github.com/pmemgo/xfdetector/internal/workloads"
)

// tracePreFailure runs a seeded workload once, uninterrupted, keeping the
// pre-failure trace — the only input a pre-failure-only tool ever sees.
func tracePreFailure(t *testing.T, fault string, workload string) *trace.Trace {
	t.Helper()
	m, ok := workloads.MakerFor(workload)
	if !ok {
		t.Fatalf("unknown workload %q", workload)
	}
	cfg := workloads.TargetConfig{
		InitSize: 10, TestSize: 5, Updates: 2, Removes: 5,
		Fault: fault, FaultInCreate: true, PostOps: true,
	}
	res, err := core.Run(core.Config{
		Mode: core.ModeTraceOnly, KeepTrace: true, PoolSize: 4 << 20,
	}, workloads.DetectionTarget(m, cfg))
	if err != nil {
		t.Fatalf("tracing %s/%s: %v", workload, fault, err)
	}
	return res.PreTrace()
}

func hasKind(fs []baseline.Finding, kinds ...baseline.FindingKind) bool {
	for _, f := range fs {
		for _, k := range kinds {
			if f.Kind == k {
				return true
			}
		}
	}
	return false
}

// TestBaselinesCatchSimpleRaces confirms the baselines are not strawmen:
// classic missing-writeback and missing-TX_ADD bugs are within their reach.
func TestBaselinesCatchSimpleRaces(t *testing.T) {
	cases := []struct{ workload, fault string }{
		{"Hashmap-Atomic", "hma-skip-entry-persist"},
		{"Hashmap-Atomic", "hma-update-val-no-persist"},
		{"B-Tree", "btree-skip-add-leaf"},
		{"Hashmap-TX", "hmtx-skip-add-slot"},
	}
	for _, c := range cases {
		tr := tracePreFailure(t, c.fault, c.workload)
		size := baseline.PoolSizeFor(tr)
		pc := baseline.Pmemcheck(tr, size)
		pt := baseline.PMTest(tr, size)
		if !hasKind(pc, baseline.NotPersisted, baseline.NotFenced) &&
			!hasKind(pt, baseline.UnprotectedTxWrite, baseline.NotPersisted, baseline.NotFenced) {
			t.Errorf("%s/%s: neither baseline caught it (pmemcheck=%v, pmtest=%v)",
				c.workload, c.fault, pc, pt)
		}
	}
}

// TestBaselinesMissCrossFailureBugs is the Fig. 3 claim: pre-failure-only
// tools cannot see cross-failure semantic bugs or post-failure-stage bugs,
// all of which XFDetector detects (TestTable5Validation).
func TestBaselinesMissCrossFailureBugs(t *testing.T) {
	cases := []struct{ workload, fault string }{
		// The four cross-failure semantic bugs: every store is flushed and
		// fenced and every TX rule is obeyed — only the ordering relative
		// to the commit variable is wrong, which is invisible without
		// running recovery.
		{"Hashmap-Atomic", "hma-sem-inverted-dirty"},
		{"Hashmap-Atomic", "hma-sem-count-before-dirty"},
		{"Hashmap-Atomic", "hma-sem-dirty-clear-early"},
		// A transient persistence bug: the count's missed writeback is
		// masked by a later operation's persist, so the end-of-run state
		// the baselines inspect looks fine — only failure injection inside
		// the window sees it.
		{"Hashmap-Atomic", "hma-skip-count-persist"},
		// Post-failure-stage bugs: the pre-failure trace is flawless; the
		// recovery code is what is broken.
		{"B-Tree", "btree-naive-recovery"},
		{"C-Tree", "ctree-naive-recovery"},
		{"RB-Tree", "rbt-naive-recovery"},
		{"Hashmap-TX", "hmtx-naive-recovery"},
		{"Hashmap-Atomic", "hma-recovery-skip-scrub"},
	}
	for _, c := range cases {
		tr := tracePreFailure(t, c.fault, c.workload)
		size := baseline.PoolSizeFor(tr)
		// The raw-store statistics (cachedCount and the in-flight windows
		// of low-level protocols) legitimately end the run with a small
		// unpersisted tail only when the trace is cut mid-window; a full
		// uninterrupted run ends quiescent, so any NotPersisted finding
		// here would be a real catch. Require both tools to stay silent.
		if fs := baseline.Pmemcheck(tr, size); hasKind(fs, baseline.NotPersisted, baseline.NotFenced, baseline.RedundantFlush) {
			t.Errorf("%s/%s: pmemcheck unexpectedly reported %v", c.workload, c.fault, fs)
		}
		if fs := baseline.PMTest(tr, size); hasKind(fs, baseline.UnprotectedTxWrite, baseline.NotPersisted, baseline.NotFenced, baseline.DuplicateTxAdd) {
			t.Errorf("%s/%s: PMTest unexpectedly reported %v", c.workload, c.fault, fs)
		}
	}
}

// TestBaselinesCleanOnCorrectPrograms: no false positives on the correct
// workloads either.
func TestBaselinesCleanOnCorrectPrograms(t *testing.T) {
	for _, m := range workloads.Makers() {
		tr := tracePreFailure(t, "", m.Name)
		size := baseline.PoolSizeFor(tr)
		if fs := baseline.Pmemcheck(tr, size); len(fs) != 0 {
			t.Errorf("%s: pmemcheck false positives: %v", m.Name, fs)
		}
		if fs := baseline.PMTest(tr, size); len(fs) != 0 {
			t.Errorf("%s: PMTest false positives: %v", m.Name, fs)
		}
	}
}

// TestPmemcheckDirect exercises the checkers on hand-built traces.
func TestPmemcheckDirect(t *testing.T) {
	tr := trace.New()
	tr.Append(trace.Entry{Kind: trace.Write, Addr: 0, Size: 8, IP: "a.go:1"})
	tr.Append(trace.Entry{Kind: trace.CLWB, Addr: 0, Size: 64, IP: "a.go:2"})
	tr.Append(trace.Entry{Kind: trace.SFence})
	tr.Append(trace.Entry{Kind: trace.Write, Addr: 64, Size: 8, IP: "a.go:4"}) // never flushed
	tr.Append(trace.Entry{Kind: trace.Write, Addr: 128, Size: 8, IP: "a.go:5"})
	tr.Append(trace.Entry{Kind: trace.CLWB, Addr: 128, Size: 64, IP: "a.go:6"}) // never fenced

	fs := baseline.Pmemcheck(tr, baseline.PoolSizeFor(tr))
	if len(fs) != 2 {
		t.Fatalf("findings = %v, want 2", fs)
	}
	wantKinds := map[baseline.FindingKind]string{
		NotPersistedKind(): "a.go:4",
		NotFencedKind():    "a.go:5",
	}
	for _, f := range fs {
		if ip, ok := wantKinds[f.Kind]; !ok || ip != f.IP {
			t.Errorf("unexpected finding %v", f)
		}
	}
}

// Tiny indirections keep the expected-kind table readable.
func NotPersistedKind() baseline.FindingKind { return baseline.NotPersisted }
func NotFencedKind() baseline.FindingKind    { return baseline.NotFenced }

func TestPMTestDirectUnprotectedWrite(t *testing.T) {
	tr := trace.New()
	tr.Append(trace.Entry{Kind: trace.TxBegin})
	tr.Append(trace.Entry{Kind: trace.TxAdd, Addr: 0, Size: 16, IP: "b.go:1"})
	tr.Append(trace.Entry{Kind: trace.Write, Addr: 0, Size: 8, IP: "b.go:2"})  // covered
	tr.Append(trace.Entry{Kind: trace.Write, Addr: 64, Size: 8, IP: "b.go:3"}) // unprotected
	tr.Append(trace.Entry{Kind: trace.TxAdd, Addr: 0, Size: 16, IP: "b.go:4"}) // duplicate
	tr.Append(trace.Entry{Kind: trace.TxCommit})

	fs := baseline.PMTest(tr, baseline.PoolSizeFor(tr))
	if !hasKind(fs, baseline.UnprotectedTxWrite) {
		t.Errorf("missed unprotected tx write: %v", fs)
	}
	if !hasKind(fs, baseline.DuplicateTxAdd) {
		t.Errorf("missed duplicate TX_ADD: %v", fs)
	}
}
