// Package baseline implements simplified versions of the two prior-work
// crash-consistency checkers the paper compares against (Fig. 3, §8):
// pmemcheck and PMTest. Both are pre-failure-only tools: they analyze one
// uninterrupted execution trace and never run recovery, so — as the paper
// argues — they cannot see bugs whose symptom only exists across a failure
// (cross-failure semantic bugs and post-failure-stage bugs).
//
// The checkers consume the same trace the XFDetector frontend produces
// (core.Config.KeepTrace), which keeps the comparison apples-to-apples.
package baseline

import (
	"fmt"
	"sort"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// FindingKind classifies a baseline finding.
type FindingKind uint8

const (
	// NotPersisted: a store was still not guaranteed persistent when the
	// program ended (pmemcheck's "stores not made persistent").
	NotPersisted FindingKind = iota
	// NotFenced: a store was written back but never fenced by program end.
	NotFenced
	// RedundantFlush: a writeback covering no modified data (pmemcheck's
	// superfluous-flush report).
	RedundantFlush
	// UnprotectedTxWrite: a write inside a transaction to a range not
	// covered by TX_ADD or a transactional allocation (PMTest's
	// transaction checker).
	UnprotectedTxWrite
	// DuplicateTxAdd: the same range TX_ADDed twice in one transaction
	// (PMTest's performance checker).
	DuplicateTxAdd
)

// String names the finding kind.
func (k FindingKind) String() string {
	switch k {
	case NotPersisted:
		return "store-not-persisted"
	case NotFenced:
		return "store-not-fenced"
	case RedundantFlush:
		return "redundant-flush"
	case UnprotectedTxWrite:
		return "unprotected-tx-write"
	case DuplicateTxAdd:
		return "duplicate-tx-add"
	}
	return fmt.Sprintf("FindingKind(%d)", uint8(k))
}

// Finding is one baseline report, deduplicated by (kind, source location).
type Finding struct {
	Kind  FindingKind
	Addr  uint64
	Size  uint64
	IP    string
	Bytes uint64 // total bytes implicated (NotPersisted/NotFenced)
}

// String formats the finding.
func (f Finding) String() string {
	return fmt.Sprintf("%s at %s ([0x%x, 0x%x))", f.Kind, f.IP, f.Addr, f.Addr+f.Size)
}

// Pmemcheck replays a pre-failure trace through the persistence state
// machine and reports, like pmemcheck: stores whose persistence was never
// guaranteed by the end of the run (split into never-written-back and
// written-back-but-never-fenced) and redundant writebacks. poolSize bounds
// the shadow; it must cover every traced address.
func Pmemcheck(tr *trace.Trace, poolSize uint64) []Finding {
	sh := shadow.NewPM(poolSize)
	var perf []Finding
	seenPerf := map[string]bool{}
	sh.SetPerfBugHandler(func(b shadow.PerfBug) {
		if seenPerf[b.IP] {
			return
		}
		seenPerf[b.IP] = true
		perf = append(perf, Finding{Kind: RedundantFlush, Addr: b.Addr, Size: b.Size, IP: b.IP})
	})
	for _, e := range tr.Entries() {
		sh.Apply(e)
	}
	findings := sweepNonPersisted(sh, poolSize)
	return append(findings, perf...)
}

// sweepNonPersisted scans the final shadow state for bytes whose stores
// were never guaranteed persistent, grouped by writer location.
func sweepNonPersisted(sh *shadow.PM, poolSize uint64) []Finding {
	type agg struct {
		kind        FindingKind
		first, last uint64
		bytes       uint64
	}
	byWriter := map[string]*agg{}
	var order []string
	for b := uint64(0); b < poolSize; b++ {
		st := sh.State(b)
		if sh.WriteEpoch(b) == 0 || st == shadow.Persisted {
			continue
		}
		kind := NotPersisted
		if st == shadow.WritebackPending {
			kind = NotFenced
		}
		ip := sh.WriterIP(b)
		key := fmt.Sprintf("%d|%s", kind, ip)
		a, ok := byWriter[key]
		if !ok {
			a = &agg{kind: kind, first: b, last: b}
			byWriter[key] = a
			order = append(order, key)
		}
		a.last = b
		a.bytes++
	}
	sort.Strings(order)
	var out []Finding
	for _, key := range order {
		a := byWriter[key]
		out = append(out, Finding{
			Kind:  a.kind,
			Addr:  a.first,
			Size:  a.last - a.first + 1,
			IP:    key[2:],
			Bytes: a.bytes,
		})
	}
	return out
}

// PMTest replays a pre-failure trace like PMTest's high-level checkers:
// writes inside a transaction must target TX_ADDed (or transactionally
// allocated) ranges, TX_ADDs must not repeat, and — like its low-level
// isPersisted checks — data modified outside transactions must be
// persisted by the end of the run.
func PMTest(tr *trace.Trace, poolSize uint64) []Finding {
	var findings []Finding
	seen := map[string]bool{}
	report := func(k FindingKind, addr, size uint64, ip string) {
		key := fmt.Sprintf("%d|%s", k, ip)
		if seen[key] {
			return
		}
		seen[key] = true
		findings = append(findings, Finding{Kind: k, Addr: addr, Size: size, IP: ip})
	}

	type span struct{ addr, size uint64 }
	covered := func(spans []span, addr, size uint64) bool {
		// Every byte of [addr, addr+size) must fall in some span.
		for b := addr; b < addr+size; {
			advanced := false
			for _, s := range spans {
				if b >= s.addr && b < s.addr+s.size {
					if s.addr+s.size >= addr+size {
						return true
					}
					b = s.addr + s.size
					advanced = true
					break
				}
			}
			if !advanced {
				return false
			}
		}
		return true
	}

	// Non-tx persistence tracking reuses the shadow FSM.
	sh := shadow.NewPM(poolSize)
	txDepth := 0
	var added, explicit []span // explicit: TX_ADDs only, for duplicate checks
	for _, e := range tr.Entries() {
		sh.Apply(e)
		switch e.Kind {
		case trace.TxBegin:
			if txDepth == 0 {
				added, explicit = added[:0], explicit[:0]
			}
			txDepth++
		case trace.TxCommit, trace.TxAbort:
			if txDepth > 0 {
				txDepth--
			}
		case trace.TxAdd:
			// Adding a freshly tx-allocated object is legitimate; only a
			// repeat of an explicit TX_ADD is the performance bug.
			if txDepth > 0 && covered(explicit, e.Addr, e.Size) {
				report(DuplicateTxAdd, e.Addr, e.Size, e.IP)
			}
			added = append(added, span{e.Addr, e.Size})
			explicit = append(explicit, span{e.Addr, e.Size})
		case trace.TxAlloc:
			added = append(added, span{e.Addr, e.Size})
		case trace.Write, trace.NTStore:
			if txDepth > 0 && !e.InLibrary && !covered(added, e.Addr, e.Size) {
				report(UnprotectedTxWrite, e.Addr, e.Size, e.IP)
			}
		}
	}
	return append(findings, sweepNonPersisted(sh, poolSize)...)
}

// poolSizeFor returns a shadow size covering every address in the trace,
// rounded up to a cache line.
func PoolSizeFor(tr *trace.Trace) uint64 {
	max := uint64(0)
	for _, e := range tr.Entries() {
		if end := e.End(); end > max {
			max = end
		}
	}
	return pmem.LineUp(max)
}
