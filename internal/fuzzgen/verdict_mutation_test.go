package fuzzgen

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/vcache"
)

// Seeded mutants for the verdict-sharing layer (PR 9). Verdict reuse has
// two ways to go wrong that no in-process check can see: trusting a cached
// verdict from a *different* program whose pre-failure states happen to
// fingerprint alike (the cache's identity key exists solely to prevent
// this), and attributing a verdict from a representative that never
// completed cleanly (the registry's dirty state exists solely to prevent
// this). Each mutant disables exactly one of those guards; the battery
// proves the differential suite notices the lost report keys.

// verdictMutationSeeds is the per-knob seed count of both batteries.
const verdictMutationSeeds = 40

// widenPost returns p with one extra post-failure load covering the whole
// pool. The pre-failure stages are untouched, so every crash-state
// fingerprint is identical to p's — but the verdicts are not: the wide load
// classifies every unpersisted byte, so the widened program reports race
// keys p never produces. It is exactly the program change a fingerprint
// cannot see and only the cache identity distinguishes.
func widenPost(p Program) Program {
	q := p
	q.Name = p.Name + "-widened"
	q.Post = append(append([]Op(nil), p.Post...), Op{Kind: OpLoad, Addr: 0, Size: p.PoolSize})
	return q
}

// TestStaleCacheMutationCaught proves the battery catches a verdict cache
// that survives a program change: with the identity component of the cache
// key disabled (vcache.SetIgnoreIdentityForTest), a campaign of program B
// reuses the verdicts a campaign of program A cached — same fingerprints,
// different program — and B's report set silently loses the keys only its
// own post-runs would have produced. Must not run in parallel: the mutation
// switch is a package-level toggle in internal/vcache.
func TestStaleCacheMutationCaught(t *testing.T) {
	knobs := []Knob{KnobDroppedFlush, KnobMixed}
	scenario := func(t *testing.T, seed int64, knob Knob) error {
		a := Generate(seed, knob)
		b := widenPost(a)
		wantB, err := Evaluate(b, EvalOpts{})
		if err != nil {
			return err
		}
		cache, err := vcache.Open(filepath.Join(t.TempDir(), "verdicts.cache"))
		if err != nil {
			return err
		}
		defer cache.Close()
		idA, err := programIdentity(a)
		if err != nil {
			return err
		}
		idB, err := programIdentity(b)
		if err != nil {
			return err
		}
		if _, err := core.Run(core.Config{PoolSize: a.PoolSize, Verdicts: cache.Bind(idA)}, BuildTarget(a)); err != nil {
			return fmt.Errorf("fuzzgen: %q: harness error: %w", a.Name, err)
		}
		res, err := core.Run(core.Config{PoolSize: b.PoolSize, Verdicts: cache.Bind(idB)}, BuildTarget(b))
		if err != nil {
			return fmt.Errorf("fuzzgen: %q: harness error: %w", b.Name, err)
		}
		return compare(b, "stale-cache", "keys", strings.Join(wantB.Keys, " ; "), joinKeys(res))
	}

	for seed := int64(0); seed < verdictMutationSeeds; seed++ {
		for _, k := range knobs {
			if err := scenario(t, seed, k); err != nil {
				t.Fatalf("pre-mutation sanity failed (seed %d, knob %s): %v", seed, k, err)
			}
		}
	}

	vcache.SetIgnoreIdentityForTest(true)
	defer vcache.SetIgnoreIdentityForTest(false)
	caught := 0
	for seed := int64(0); seed < verdictMutationSeeds; seed++ {
		for _, k := range knobs {
			err := scenario(t, seed, k)
			var m *Mismatch
			if errors.As(err, &m) {
				caught++
			} else if err != nil {
				t.Fatalf("seed %d knob %s: non-mismatch error under mutation: %v", seed, k, err)
			}
		}
	}
	if caught == 0 {
		t.Fatalf("seeded stale-cache mutation went undetected on all %d seeds x %d knobs",
			verdictMutationSeeds, len(knobs))
	}
	t.Logf("stale-cache caught on %d/%d seed-knob pairs", caught, verdictMutationSeeds*len(knobs))
}

// TestPoisonedRepresentativeMutationCaught proves the battery catches a
// registry that attributes verdicts from representatives that never ran: a
// three-shard fleet whose shard 0 quarantines every failure point (every
// image copy fails) publishes all its classes dirty, so mutant-off the
// other shards run those classes inline and the fleet's merged key set
// equals the two healthy shards running alone. With the mutant flipping
// dirty resolutions to clean (core.SetAttributeDirtyVerdictsForTest), the
// healthy shards attribute classes nobody ever post-ran and their keys
// vanish from the union. Must not run in parallel: the mutation switch is a
// package-level toggle in internal/core.
func TestPoisonedRepresentativeMutationCaught(t *testing.T) {
	knobs := []Knob{KnobMixed, KnobStaleCommit}
	failSnap := &pmem.FaultHooks{Snapshot: func() error { return errors.New("injected image-copy fault") }}
	runShard := func(p Program, idx int, v core.VerdictSource, h *pmem.FaultHooks) (*core.Result, error) {
		res, err := core.Run(core.Config{
			PoolSize:   p.PoolSize,
			ShardCount: verdictShards,
			ShardIndex: idx,
			Verdicts:   v,
			FaultHooks: h,
		}, BuildTarget(p))
		if err != nil {
			return nil, fmt.Errorf("fuzzgen: %q: shard %d harness error: %w", p.Name, idx, err)
		}
		return res, nil
	}
	scenario := func(seed int64, knob Knob) error {
		p := Generate(seed, knob)
		// The expected union: shard 0 contributes nothing (all quarantined),
		// and verdict sharing among the healthy shards never changes their
		// combined key set — so the fleet must match shards 1 and 2 running
		// with no registry at all.
		s1, err := runShard(p, 1, nil, nil)
		if err != nil {
			return err
		}
		s2, err := runShard(p, 2, nil, nil)
		if err != nil {
			return err
		}
		expect := unionKeys(s1, s2)

		reg := core.NewClassRegistry()
		results := make([]*core.Result, verdictShards)
		for idx := 0; idx < verdictShards; idx++ {
			hooks := (*pmem.FaultHooks)(nil)
			if idx == 0 {
				hooks = failSnap
			}
			res, err := runShard(p, idx, reg.Bind(fmt.Sprintf("shard%d", idx)), hooks)
			if err != nil {
				return err
			}
			results[idx] = res
		}
		return compare(p, "poisoned-representative", "keys", expect, unionKeys(results...))
	}

	for seed := int64(0); seed < verdictMutationSeeds; seed++ {
		for _, k := range knobs {
			if err := scenario(seed, k); err != nil {
				t.Fatalf("pre-mutation sanity failed (seed %d, knob %s): %v", seed, k, err)
			}
		}
	}

	core.SetAttributeDirtyVerdictsForTest(true)
	defer core.SetAttributeDirtyVerdictsForTest(false)
	caught := 0
	for seed := int64(0); seed < verdictMutationSeeds; seed++ {
		for _, k := range knobs {
			err := scenario(seed, k)
			var m *Mismatch
			if errors.As(err, &m) {
				caught++
			} else if err != nil {
				t.Fatalf("seed %d knob %s: non-mismatch error under mutation: %v", seed, k, err)
			}
		}
	}
	if caught == 0 {
		t.Fatalf("seeded poisoned-representative mutation went undetected on all %d seeds x %d knobs",
			verdictMutationSeeds, len(knobs))
	}
	t.Logf("poisoned-representative caught on %d/%d seed-knob pairs", caught, verdictMutationSeeds*len(knobs))
}
