package fuzzgen

import (
	"bytes"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
)

// TestDifferentialCampaign is the tentpole property test: for every
// bug-class knob, hundreds of generated programs are run through every
// engine configuration (sequential, Workers∈{2,4}, elision disabled,
// trace-only, original) and each run must agree with the brute-force
// oracle on the report-key set, failure-point count, post-run count,
// benign-byte count, and trace-entry counts.
//
// Every failure prints a one-line `go run ./cmd/xfdfuzz -seed=N` line
// that reproduces it deterministically.
func TestDifferentialCampaign(t *testing.T) {
	seeds := int64(500)
	if testing.Short() {
		seeds = 60
	}
	for _, knob := range Knobs() {
		knob := knob
		t.Run(string(knob), func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < seeds; seed++ {
				if err := CheckSeed(seed, knob); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestGenerateDeterministic pins the full-determinism requirement: the
// same (seed, knob) pair must produce byte-identical programs, and the
// knob must actually influence generation.
func TestGenerateDeterministic(t *testing.T) {
	for _, knob := range Knobs() {
		a, errA := Generate(7, knob).MarshalIndent()
		b, errB := Generate(7, knob).MarshalIndent()
		if errA != nil || errB != nil {
			t.Fatalf("marshal: %v / %v", errA, errB)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("knob %s: same seed produced different programs", knob)
		}
	}
	clean, _ := Generate(7, KnobClean).MarshalIndent()
	stale, _ := Generate(7, KnobStaleCommit).MarshalIndent()
	if bytes.Equal(clean, stale) {
		t.Fatal("different knobs produced identical programs for seed 7")
	}
}

// TestProgramRoundTrip checks that generated programs survive a
// JSON round trip unchanged — the property the corpus replay relies on.
func TestProgramRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := Generate(seed, KnobMixed)
		data, err := p.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		q, err := ParseProgram(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		data2, err := q.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("seed %d: round trip changed the program", seed)
		}
	}
}

// handProgram runs a hand-written program through the sequential engine
// after confirming oracle agreement, so the absolute assertions below
// are simultaneously checked against both implementations.
func handProgram(t *testing.T, p Program) *core.Result {
	t.Helper()
	if err := CheckProgram(p); err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Config{PoolSize: p.PoolSize}, BuildTarget(p))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExpectedVerdicts pins absolute verdicts for hand-analyzed
// programs, guarding against the failure mode where the oracle and the
// detector are both wrong in the same way.
func TestExpectedVerdicts(t *testing.T) {
	t.Run("clean-protocol", func(t *testing.T) {
		// Data is persisted in setup; pre touches a disjoint line with a
		// full flush+fence protocol; post reads only the setup data. No
		// failure point can observe an unpersisted or inconsistent byte.
		p := Program{
			Name:     "hand-clean",
			PoolSize: 4096,
			Setup: []Op{
				{Kind: OpStore, Addr: 0, Size: 8},
				{Kind: OpCLWB, Addr: 0, Size: 8},
				{Kind: OpFence},
			},
			Pre: []Op{
				{Kind: OpStore, Addr: 64, Size: 8},
				{Kind: OpCLWB, Addr: 64, Size: 8},
				{Kind: OpFence},
			},
			Post: []Op{{Kind: OpLoad, Addr: 0, Size: 8}},
		}
		res := handProgram(t, p)
		if len(res.Reports) != 0 {
			t.Fatalf("expected no reports, got %v", res.Reports)
		}
		if res.FailurePoints != 2 { // one at the pre fence, one final
			t.Fatalf("expected 2 failure points, got %d", res.FailurePoints)
		}
	})

	t.Run("dropped-fence-race", func(t *testing.T) {
		// The store is written back but never fenced: every failure point
		// observes it short of Persisted, so the post read races.
		p := Program{
			Name:     "hand-dropped-fence",
			PoolSize: 4096,
			Pre: []Op{
				{Kind: OpStore, Addr: 0, Size: 8},
				{Kind: OpCLWB, Addr: 0, Size: 8},
			},
			Post: []Op{{Kind: OpLoad, Addr: 0, Size: 8}},
		}
		res := handProgram(t, p)
		if res.Count(core.CrossFailureRace) != 1 {
			t.Fatalf("expected exactly 1 race, got %v", res.Reports)
		}
		if res.Count(core.CrossFailureSemantic) != 0 {
			t.Fatalf("unexpected semantic report: %v", res.Reports)
		}
	})

	t.Run("same-fence-commit-semantic", func(t *testing.T) {
		// Fig. 11 F2: data and commit variable become persistent at the
		// same fence, so Eq. 3 flags the data as semantically inconsistent
		// at the final failure point.
		p := Program{
			Name:     "hand-same-fence-commit",
			PoolSize: 4096,
			Setup: []Op{
				{Kind: OpRegCommitVar, Addr: 0x280, Size: 8},
				{Kind: OpRegCommitRange, Addr: 0x280, Size: 8, Addr2: 0x200, Size2: 8},
			},
			Pre: []Op{
				{Kind: OpStore, Addr: 0x200, Size: 8},
				{Kind: OpStore, Addr: 0x280, Size: 8},
				{Kind: OpCLWB, Addr: 0x200, Size: 8},
				{Kind: OpCLWB, Addr: 0x280, Size: 8},
				{Kind: OpFence},
			},
			Post: []Op{{Kind: OpLoad, Addr: 0x200, Size: 8}},
		}
		res := handProgram(t, p)
		if res.Count(core.CrossFailureSemantic) != 1 {
			t.Fatalf("expected exactly 1 semantic bug, got %v", res.Reports)
		}
	})

	t.Run("commit-var-read-benign", func(t *testing.T) {
		// Reading the commit variable itself is the benign race of §3.1:
		// counted, never reported.
		p := Program{
			Name:     "hand-benign-var-read",
			PoolSize: 4096,
			Setup: []Op{
				{Kind: OpRegCommitVar, Addr: 0x280, Size: 8},
			},
			Pre: []Op{
				{Kind: OpStore, Addr: 0x280, Size: 8},
			},
			Post: []Op{{Kind: OpLoad, Addr: 0x280, Size: 8}},
		}
		res := handProgram(t, p)
		if len(res.Reports) != 0 {
			t.Fatalf("expected no reports, got %v", res.Reports)
		}
		if res.BenignReads == 0 {
			t.Fatal("expected benign commit-variable reads to be counted")
		}
	})

	t.Run("redundant-flush-performance", func(t *testing.T) {
		// Flushing a clean line is the RedundantFlush performance bug.
		p := Program{
			Name:     "hand-redundant-flush",
			PoolSize: 4096,
			Pre: []Op{
				{Kind: OpStore, Addr: 0, Size: 8},
				{Kind: OpCLWB, Addr: 0, Size: 8},
				{Kind: OpFence},
				{Kind: OpCLWB, Addr: 0, Size: 8},
				{Kind: OpFence},
			},
			Post: []Op{{Kind: OpLoad, Addr: 0, Size: 8}},
		}
		res := handProgram(t, p)
		if res.Count(core.Performance) != 1 {
			t.Fatalf("expected exactly 1 performance bug, got %v", res.Reports)
		}
	})
}
