package fuzzgen

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/shadow"
)

// shadowMutants are the deliberate bugs seeded into the sparse shadow
// representation: a fence fast path that treats every pending cache line as
// uniformly WritebackPending (spuriously persisting bytes re-modified after
// the writeback — the range-batching soundness hazard), and a writablePage
// that skips copy-on-write privatization (worker forks observe shadow state
// from after their failure point — the fork-isolation soundness hazard).
// The dense ablation path shares neither mechanism, so only the sparse
// engine configurations can diverge.
var shadowMutants = []struct {
	name string
	set  func(bool)
	// racy marks mutants that break the copy-on-write discipline itself:
	// with privatization disabled, the canonical shadow and worker forks
	// genuinely race on shared pages, so under -race the detector would
	// (correctly) abort the process before the differential comparison
	// could flag the divergence. Those subtests run only without -race.
	racy bool
}{
	{"lost-range-batch", shadow.SetLostRangeBatchForTest, false},
	{"stale-fork-page", shadow.SetStaleForkPageForTest, true},
}

// shadowMutationKnobs are the generator biases the seed-based mutation test
// sweeps: dropped-fence programs leave many lines mid-persistence (the
// states the range-batched fence must not conflate), and mixed programs add
// commit-variable protocols whose semantic classification exposes wrongly
// persisted bytes.
var shadowMutationKnobs = []Knob{KnobDroppedFence, KnobMixed}

// TestShadowMutationCaught proves the differential suite would notice a
// regression in the sparse shadow's range batching or fork privatization.
// Must not run in parallel with other tests: the mutation switches are
// package-level toggles in internal/shadow.
func TestShadowMutationCaught(t *testing.T) {
	const n = 40
	for seed := int64(0); seed < n; seed++ {
		for _, k := range shadowMutationKnobs {
			if err := CheckSeed(seed, k); err != nil {
				t.Fatalf("pre-mutation sanity failed (seed %d, knob %s): %v", seed, k, err)
			}
		}
	}
	for _, mut := range shadowMutants {
		t.Run(mut.name, func(t *testing.T) {
			if mut.racy && raceEnabled {
				t.Skipf("%s disables COW privatization, a genuine data race; exercised without -race", mut.name)
			}
			mut.set(true)
			defer mut.set(false)
			caught := 0
			for seed := int64(0); seed < n; seed++ {
				for _, k := range shadowMutationKnobs {
					err := CheckSeed(seed, k)
					var m *Mismatch
					if errors.As(err, &m) {
						caught++
					} else if err != nil {
						t.Fatalf("seed %d knob %s: non-mismatch error under mutation: %v", seed, k, err)
					}
				}
			}
			if caught == 0 {
				t.Fatalf("seeded %s mutation went undetected on all %d seeds x %d knobs",
					mut.name, n, len(shadowMutationKnobs))
			}
			t.Logf("%s caught on %d/%d seed-knob pairs", mut.name, caught, n*len(shadowMutationKnobs))
		})
	}
}

// TestShadowMutationCaughtByCorpus requires that the checked-in corpus
// alone — the deterministic regression tests replayed in CI — catches both
// shadow mutants, so the safety net does not depend on which seeds a
// fuzzing campaign happens to explore. corpus/mixed-state-line.json is the
// hand-written reproducer for lost-range-batch: a full-line store and
// writeback followed by a partial re-store leaves the line mixed
// WritebackPending/Modified at the fence, and the re-modified bytes sit in
// a commit-variable association, so wrongly persisting them turns a
// cross-failure race into a cross-failure semantic bug — a key the oracle
// never predicts.
func TestShadowMutationCaughtByCorpus(t *testing.T) {
	entries, err := os.ReadDir("corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range shadowMutants {
		t.Run(mut.name, func(t *testing.T) {
			if mut.racy && raceEnabled {
				t.Skipf("%s disables COW privatization, a genuine data race; exercised without -race", mut.name)
			}
			mut.set(true)
			defer mut.set(false)
			caught := 0
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
					continue
				}
				data, err := os.ReadFile(filepath.Join("corpus", e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				p, err := ParseProgram(data)
				if err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				var m *Mismatch
				if err := CheckProgram(p); errors.As(err, &m) {
					caught++
				} else if err != nil {
					t.Fatalf("%s: non-mismatch error under mutation: %v", e.Name(), err)
				}
			}
			if caught == 0 {
				t.Fatalf("%s mutation went undetected by the entire corpus", mut.name)
			}
			t.Logf("%s caught by %d corpus programs", mut.name, caught)
		})
	}
}
