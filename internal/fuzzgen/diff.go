package fuzzgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
)

// The differential driver: one program, every engine configuration, one
// oracle verdict. Any disagreement is a Mismatch carrying a one-line
// reproducer.

// diffWorkers are the parallel widths every program is checked under.
var diffWorkers = []int{2, 4}

// Mismatch is a disagreement between the detector and the oracle (or
// between two engine configurations). It is the fuzzer's bug report.
type Mismatch struct {
	Program Program
	// Config names the engine configuration that disagreed.
	Config string
	// Field names the compared quantity (keys, failure-points, ...).
	Field string
	// Want is the oracle's prediction, Got the detector's output.
	Want, Got string
	// Repro is a one-line command reproducing the failure; empty for
	// corpus-file programs (the file itself is the reproducer).
	Repro string
}

// Error formats the mismatch with the full key sets, so a failing test log
// alone identifies the divergence.
func (m *Mismatch) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fuzzgen: %s: %s mismatch on %q\n  oracle: %s\n  engine: %s",
		m.Config, m.Field, m.Program.Name, m.Want, m.Got)
	if m.Repro != "" {
		fmt.Fprintf(&b, "\n  reproduce: %s", m.Repro)
	}
	return b.String()
}

// CheckSeed generates the program for (seed, knob) and differentially
// checks it. The returned error, if any, embeds the `xfdfuzz` reproducer
// line for exactly this failure.
func CheckSeed(seed int64, knob Knob) error {
	p := Generate(seed, knob)
	err := CheckProgram(p)
	var m *Mismatch
	if errors.As(err, &m) {
		m.Repro = fmt.Sprintf("go run ./cmd/xfdfuzz -seed=%d -n=1 -knob=%s", seed, knob)
	}
	return err
}

// CheckProgram runs p through every engine configuration and compares each
// against the oracle:
//
//   - ModeDetect sequential: full comparison (keys, failure points, post
//     runs, benign bytes, trace-entry counts, post-read byte digests);
//   - ModeDetect with Workers ∈ diffWorkers: same full comparison — the
//     parallel engine promises the identical report set;
//   - ModeDetect with incremental snapshots disabled: same full comparison
//     — the delta-snapshot/copy-on-write optimization must be invisible,
//     down to the exact bytes every post-failure load observes;
//   - ModeDetect with the dense shadow representation: same full
//     comparison — the sparse paged shadow with range-batched transitions
//     must be indistinguishable from the per-byte dense reference,
//     verdicts and post-read byte digests alike;
//   - ModeDetect on a file-backed pool (linux only): same full comparison,
//     plus the backing file must hold the byte-identical final image of
//     the setup+pre stores — msync-granularity persistence must be
//     invisible to detection and honest about what reached the medium;
//   - ModeDetect with failure-point elision disabled: full comparison
//     against a second oracle evaluation with elision disabled;
//   - ModeDetect with crash-state pruning enabled (the default; the
//     configurations above pin DisablePruning because the oracle predicts
//     every post-run): identical deduplicated key set, exact
//     PostRuns + PrunedFailurePoints == FailurePoints accounting, every
//     observed post-read byte digest predicted by the oracle, and
//     identical pruning decisions across sequential, parallel,
//     dense-shadow and file-backed (cold-page-compacted) runs;
//   - ModeDetect as a three-shard fleet sharing a core.ClassRegistry
//     (cross-shard verdict attribution): identical merged key set, exact
//     per-shard bucket accounting, and exactly one post-run per global
//     crash-state class across the fleet;
//   - ModeDetect as a cold+warm campaign pair sharing an on-disk verdict
//     cache (internal/vcache): both runs reproduce the oracle's key set,
//     the warm run's cache hits equal the entries the cold run persisted
//     and its post-runs shrink by exactly that count;
//   - ModeDetect replayed from a recorded pre-failure artifact
//     (internal/record): sequential, three-shard and deep-jump-resume
//     replays must reproduce the oracle's key set (or the full-trace
//     replay's, for the resume) with exact bucket accounting and
//     oracle-predicted post-read byte digests;
//   - ModeTraceOnly: no failure points, no reports, exactly the op entries;
//   - ModeOriginal: no tracing at all.
//
// A non-Mismatch error means the program (or harness) is broken, not the
// detector; Minimize relies on that distinction.
func CheckProgram(p Program) error {
	want, err := Evaluate(p, EvalOpts{})
	if err != nil {
		return err
	}
	run := func(cfg core.Config) (*core.Result, *PostReadLog, error) {
		cfg.PoolSize = p.PoolSize
		log := &PostReadLog{}
		res, err := core.Run(cfg, BuildTargetRecording(p, log))
		if err != nil {
			return nil, nil, fmt.Errorf("fuzzgen: %q: harness error: %w", p.Name, err)
		}
		return res, log, nil
	}
	checkFull := func(config string, want *OracleResult, cfg core.Config) error {
		res, log, err := run(cfg)
		if err != nil {
			return err
		}
		if err := compareFull(p, config, want, res); err != nil {
			return err
		}
		return compare(p, config, "post-read-bytes",
			strings.Join(want.PostReads, " ; "), strings.Join(log.Canonical(), " ; "))
	}

	if err := checkFull("sequential", want, core.Config{DisablePruning: true}); err != nil {
		return err
	}
	for _, w := range diffWorkers {
		if err := checkFull(fmt.Sprintf("workers=%d", w), want,
			core.Config{Workers: w, DisablePruning: true}); err != nil {
			return err
		}
	}
	if err := checkFull("no-incremental-snapshots", want,
		core.Config{DisableIncrementalSnapshots: true, DisablePruning: true}); err != nil {
		return err
	}
	if err := checkFull("dense-shadow", want,
		core.Config{DenseShadow: true, DisablePruning: true}); err != nil {
		return err
	}
	if fileBackedDiff {
		if err := checkFileBacked(p, want); err != nil {
			return err
		}
	}

	wantNoElide, err := Evaluate(p, EvalOpts{DisableElision: true})
	if err != nil {
		return err
	}
	if err := checkFull("no-elision", wantNoElide,
		core.Config{DisableFailurePointElision: true, DisablePruning: true}); err != nil {
		return err
	}
	if len(wantNoElide.Keys) != len(want.Keys) {
		// Elision must never change the verdicts, only skip redundant
		// failure points — a property of the oracle itself worth pinning.
		return &Mismatch{Program: p, Config: "oracle", Field: "elision-invariance",
			Want: strings.Join(want.Keys, " ; "), Got: strings.Join(wantNoElide.Keys, " ; ")}
	}

	// Crash-state pruning (the default) skips failure points whose crash
	// state a clean class representative already covered. Its soundness
	// contract is the identical deduplicated key set; its determinism
	// contract is that sequential, parallel and dense-shadow runs make the
	// identical pruning decisions (the dense run doubles as a
	// sparse-vs-dense fingerprint parity check).
	prunedCfgs := []struct {
		name string
		file bool // back the pool with a file (enables cold-page compaction)
		cfg  core.Config
	}{
		{"pruned", false, core.Config{}},
		{"pruned-workers=2", false, core.Config{Workers: 2}},
		{"pruned-dense", false, core.Config{DenseShadow: true}},
		{"pruned-file", true, core.Config{}},
	}
	var prunedResults []*core.Result
	for _, pc := range prunedCfgs {
		cfg := pc.cfg
		if pc.file {
			if !fileBackedDiff {
				continue
			}
			// The file-backed detect-mode run enables the shadow's cold-page
			// compaction, so this configuration doubles as the fuzzer's proof
			// that compaction leaves the crash-state fingerprints — and hence
			// every pruning decision — untouched.
			dir, err := os.MkdirTemp("", "xfdfuzz-pool-")
			if err != nil {
				return fmt.Errorf("fuzzgen: %q: temp pool dir: %w", p.Name, err)
			}
			defer os.RemoveAll(dir)
			cfg.Backend = pmem.FileBackend{Path: filepath.Join(dir, "pool.img")}
		}
		res, err := checkPruned(p, pc.name, want, cfg)
		if err != nil {
			return err
		}
		prunedResults = append(prunedResults, res)
	}
	base := prunedResults[0]
	for i, res := range prunedResults[1:] {
		name := prunedCfgs[i+1].name
		if err := compare(p, name, "pruned-post-runs",
			fmt.Sprint(base.PostRuns), fmt.Sprint(res.PostRuns)); err != nil {
			return err
		}
		if err := compare(p, name, "pruned-failure-points",
			fmt.Sprint(base.PrunedFailurePoints), fmt.Sprint(res.PrunedFailurePoints)); err != nil {
			return err
		}
		if err := compare(p, name, "crash-state-classes",
			fmt.Sprint(base.CrashStateClasses), fmt.Sprint(res.CrashStateClasses)); err != nil {
			return err
		}
	}

	// Verdict sharing (verdicts.go): the same program as a three-shard
	// fleet sharing a class registry, and as a cold+warm campaign pair
	// sharing an on-disk verdict cache. Both must reproduce the oracle's
	// exact key set while redistributing (cross-shard) or skipping
	// (warm-cache) the post-runs.
	if err := checkCrossShard(p, want, base); err != nil {
		return err
	}
	if err := checkWarmCache(p, want, base); err != nil {
		return err
	}

	// Recorded-campaign fast-forward (recorded.go): record the pre-failure
	// pass once, then hold sequential, sharded and checkpoint-jumping
	// replays of the artifact to the oracle and to the live pruned run.
	if err := checkRecorded(p, want, base); err != nil {
		return err
	}

	traceOnly, _, err := run(core.Config{Mode: core.ModeTraceOnly})
	if err != nil {
		return err
	}
	if err := compare(p, "trace-only", "reports", "", joinKeys(traceOnly)); err != nil {
		return err
	}
	if err := compare(p, "trace-only", "failure-points", "0", fmt.Sprint(traceOnly.FailurePoints)); err != nil {
		return err
	}
	if err := compare(p, "trace-only", "pre-entries", fmt.Sprint(want.OpEntries), fmt.Sprint(traceOnly.PreEntries)); err != nil {
		return err
	}

	orig, _, err := run(core.Config{Mode: core.ModeOriginal})
	if err != nil {
		return err
	}
	if err := compare(p, "original", "reports", "", joinKeys(orig)); err != nil {
		return err
	}
	if err := compare(p, "original", "pre-entries", "0", fmt.Sprint(orig.PreEntries)); err != nil {
		return err
	}
	return nil
}

// checkPruned runs p with crash-state pruning enabled (the default
// configuration) and verifies its soundness against the brute-force
// oracle: the identical deduplicated report-key set, the identical
// failure-point count and pre-entries, exact accounting
// (PostRuns + PrunedFailurePoints == FailurePoints), and every observed
// post-failure read byte digest predicted by the oracle for exactly that
// failure point and load — pruned members simply observe nothing. It
// returns the result so CheckProgram can pin cross-configuration
// determinism of the pruning decisions themselves.
func checkPruned(p Program, config string, want *OracleResult, cfg core.Config) (*core.Result, error) {
	cfg.PoolSize = p.PoolSize
	log := &PostReadLog{}
	res, err := core.Run(cfg, BuildTargetRecording(p, log))
	if err != nil {
		return nil, fmt.Errorf("fuzzgen: %q: harness error: %w", p.Name, err)
	}
	if err := compare(p, config, "keys", strings.Join(want.Keys, " ; "), joinKeys(res)); err != nil {
		return nil, err
	}
	if err := compare(p, config, "failure-points",
		fmt.Sprint(want.FailurePoints), fmt.Sprint(res.FailurePoints)); err != nil {
		return nil, err
	}
	if err := compare(p, config, "pre-entries",
		fmt.Sprint(want.PreEntries), fmt.Sprint(res.PreEntries)); err != nil {
		return nil, err
	}
	if err := compare(p, config, "post-run-accounting",
		fmt.Sprint(res.FailurePoints),
		fmt.Sprint(res.PostRuns+res.PrunedFailurePoints)); err != nil {
		return nil, err
	}
	predicted := make(map[string]bool, len(want.PostReads))
	for _, d := range want.PostReads {
		predicted[d] = true
	}
	for _, d := range log.Canonical() {
		if !predicted[d] {
			return nil, &Mismatch{Program: p, Config: config, Field: "post-read-bytes",
				Want: strings.Join(want.PostReads, " ; "), Got: d}
		}
	}
	return res, nil
}

// fileBackedDiff gates the file-backed engine configurations; the mmap'd
// pool file (pmem.FileBackend) is linux-only.
var fileBackedDiff = runtime.GOOS == "linux"

// checkFileBacked runs p on a file-backed pool and holds it to the same
// full comparison as every in-memory configuration — msync-granularity
// persistence must be invisible to detection — plus one check no other
// configuration has: after the run, the backing file must hold the
// byte-identical final image of the setup+pre stores. The durable image is
// what a -resume campaign replays against, and a silently short or torn
// writeback (the seeded short-msync mutant) corrupts exactly those bytes
// while every verdict stays right.
func checkFileBacked(p Program, want *OracleResult) error {
	dir, err := os.MkdirTemp("", "xfdfuzz-pool-")
	if err != nil {
		return fmt.Errorf("fuzzgen: %q: temp pool dir: %w", p.Name, err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "pool.img")

	cfg := core.Config{DisablePruning: true, Backend: pmem.FileBackend{Path: path}}
	cfg.PoolSize = p.PoolSize
	log := &PostReadLog{}
	res, err := core.Run(cfg, BuildTargetRecording(p, log))
	if err != nil {
		return fmt.Errorf("fuzzgen: %q: harness error: %w", p.Name, err)
	}
	if err := compareFull(p, "file-backed", want, res); err != nil {
		return err
	}
	if err := compare(p, "file-backed", "post-read-bytes",
		strings.Join(want.PostReads, " ; "), strings.Join(log.Canonical(), " ; ")); err != nil {
		return err
	}

	got, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("fuzzgen: %q: reading durable image: %w", p.Name, err)
	}
	if wantImg := finalImage(p); !bytes.Equal(got, wantImg) {
		return &Mismatch{Program: p, Config: "file-backed", Field: "durable-image",
			Want: imageDigest(wantImg), Got: imageDigest(got)}
	}
	return nil
}

// finalImage replays the setup+pre Store/NTStore ops over a zeroed pool:
// the image the backing file must hold after the campaign's final persist
// (Close flushes every page still dirty). Post-failure stages never touch
// it — their pools are COW views with no file state.
func finalImage(p Program) []byte {
	img := make([]byte, pmem.LineUp(uint64(p.PoolSize)))
	setupVals, preVals := storeValues(p)
	apply := func(ops []Op, vals map[int]byte) {
		for i, op := range ops {
			if (op.Kind == OpStore || op.Kind == OpNTStore) && op.Size > 0 {
				for j := op.Addr; j < op.Addr+op.Size; j++ {
					img[j] = vals[i]
				}
			}
		}
	}
	apply(p.Setup, setupVals)
	apply(p.Pre, preVals)
	return img
}

// imageDigest renders an image as a short comparable string: length, FNV
// hash, and the first nonzero byte (images diverge in content, and a full
// hex dump of the pool would drown the mismatch report).
func imageDigest(img []byte) string {
	h := fnv.New64a()
	h.Write(img)
	first := -1
	for i, b := range img {
		if b != 0 {
			first = i
			break
		}
	}
	return fmt.Sprintf("%d bytes, fnv %016x, first nonzero at %d", len(img), h.Sum64(), first)
}

// ResultKeys returns a result's sorted report deduplication keys.
func ResultKeys(res *core.Result) []string {
	keys := make([]string, 0, len(res.Reports))
	for _, r := range res.Reports {
		keys = append(keys, r.DedupKey())
	}
	sort.Strings(keys)
	return keys
}

func joinKeys(res *core.Result) string { return strings.Join(ResultKeys(res), " ; ") }

func compare(p Program, config, field, want, got string) error {
	if want == got {
		return nil
	}
	return &Mismatch{Program: p, Config: config, Field: field, Want: want, Got: got}
}

func compareFull(p Program, config string, want *OracleResult, res *core.Result) error {
	if err := compare(p, config, "keys", strings.Join(want.Keys, " ; "), joinKeys(res)); err != nil {
		return err
	}
	if err := compare(p, config, "failure-points", fmt.Sprint(want.FailurePoints), fmt.Sprint(res.FailurePoints)); err != nil {
		return err
	}
	if err := compare(p, config, "post-runs", fmt.Sprint(want.PostRuns), fmt.Sprint(res.PostRuns)); err != nil {
		return err
	}
	if err := compare(p, config, "benign-bytes", fmt.Sprint(want.Benign), fmt.Sprint(res.BenignReads)); err != nil {
		return err
	}
	if err := compare(p, config, "pre-entries", fmt.Sprint(want.PreEntries), fmt.Sprint(res.PreEntries)); err != nil {
		return err
	}
	return compare(p, config, "post-entries", fmt.Sprint(want.PostEntries), fmt.Sprint(res.PostEntries))
}

// Minimize greedily shrinks a mismatching program while CheckProgram still
// returns a Mismatch, deleting one op at a time to a fixpoint. Programs
// whose shrunken form is invalid or merely harness-broken are rejected, so
// minimization cannot wander away from genuine divergences.
func Minimize(p Program) Program {
	return MinimizeCtx(context.Background(), p)
}

// MinimizeCtx is Minimize with a cancellation point between candidate
// programs: on cancellation it stops deleting and returns the smallest
// still-mismatching program found so far, which remains a valid reproducer.
func MinimizeCtx(ctx context.Context, p Program) Program {
	failing := func(cand Program) bool {
		var m *Mismatch
		return errors.As(CheckProgram(cand), &m)
	}
	if !failing(p) {
		return p
	}
	for improved := true; improved; {
		improved = false
		for _, stage := range []*[]Op{&p.Post, &p.Pre, &p.Setup} {
			for i := len(*stage) - 1; i >= 0; i-- {
				if ctx.Err() != nil {
					p.Name += "-min"
					return p
				}
				saved := *stage
				cand := make([]Op, 0, len(saved)-1)
				cand = append(cand, saved[:i]...)
				cand = append(cand, saved[i+1:]...)
				*stage = cand
				if failing(p) {
					improved = true
					continue
				}
				*stage = saved
			}
		}
	}
	p.Name += "-min"
	return p
}
