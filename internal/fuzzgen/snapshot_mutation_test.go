package fuzzgen

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/pmem"
)

// snapshotMutants are the deliberate soundness bugs seeded into the
// snapshot layer: a dirty bitmap that never records writes (incremental
// snapshots silently reuse stale base pages) and a copy-on-write
// privatization that tears the page it copies. Both produce wrong BYTES
// with correct metadata, so only the post-read digest comparison — not
// the report keys — can catch them.
var snapshotMutants = []struct {
	name string
	set  func(bool)
}{
	{"stale-dirty-bitmap", pmem.SetStaleDirtyForTest},
	{"torn-cow-page", pmem.SetTornCOWForTest},
}

// TestSnapshotMutationCaught proves the differential suite would notice a
// snapshot-layer regression. Must not run in parallel with other tests:
// the mutation switches are package-level toggles in internal/pmem.
func TestSnapshotMutationCaught(t *testing.T) {
	const n = 40
	for seed := int64(0); seed < n; seed++ {
		if err := CheckSeed(seed, KnobDroppedFence); err != nil {
			t.Fatalf("pre-mutation sanity failed: %v", err)
		}
	}
	for _, mut := range snapshotMutants {
		t.Run(mut.name, func(t *testing.T) {
			mut.set(true)
			defer mut.set(false)
			caught := 0
			for seed := int64(0); seed < n; seed++ {
				err := CheckSeed(seed, KnobDroppedFence)
				var m *Mismatch
				if errors.As(err, &m) {
					caught++
				} else if err != nil {
					t.Fatalf("seed %d: non-mismatch error under mutation: %v", seed, err)
				}
			}
			if caught == 0 {
				t.Fatalf("seeded %s mutation went undetected on all %d seeds", mut.name, n)
			}
			t.Logf("%s caught on %d/%d dropped-fence seeds", mut.name, caught, n)
		})
	}
}

// TestSnapshotMutationCaughtByCorpus requires that the checked-in corpus
// alone — the deterministic regression tests replayed in CI — catches
// both snapshot mutants, so the safety net does not depend on which
// seeds a fuzzing campaign happens to explore.
func TestSnapshotMutationCaughtByCorpus(t *testing.T) {
	entries, err := os.ReadDir("corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range snapshotMutants {
		t.Run(mut.name, func(t *testing.T) {
			mut.set(true)
			defer mut.set(false)
			caught := 0
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
					continue
				}
				data, err := os.ReadFile(filepath.Join("corpus", e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				p, err := ParseProgram(data)
				if err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				var m *Mismatch
				if err := CheckProgram(p); errors.As(err, &m) {
					caught++
				} else if err != nil {
					t.Fatalf("%s: non-mismatch error under mutation: %v", e.Name(), err)
				}
			}
			if caught == 0 {
				t.Fatalf("%s mutation went undetected by the entire corpus", mut.name)
			}
			t.Logf("%s caught by %d corpus programs", mut.name, caught)
		})
	}
}
