package fuzzgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// minCorpusFiles guards against the checked-in regression corpus being
// accidentally emptied; the ISSUE calls for 8–10 edge-case programs.
const minCorpusFiles = 8

// TestCorpusReplay replays every checked-in corpus program through the
// full differential check. Each file is a deterministic regression test
// for a generator edge case or a past divergence written by cmd/xfdfuzz.
func TestCorpusReplay(t *testing.T) {
	entries, err := os.ReadDir("corpus")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		n++
		name := e.Name()
		t.Run(strings.TrimSuffix(name, ".json"), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(filepath.Join("corpus", name))
			if err != nil {
				t.Fatal(err)
			}
			p, err := ParseProgram(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			if err := CheckProgram(p); err != nil {
				t.Fatal(err)
			}
		})
	}
	if n < minCorpusFiles {
		t.Fatalf("corpus has only %d programs, want at least %d", n, minCorpusFiles)
	}
}
