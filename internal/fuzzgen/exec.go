package fuzzgen

import (
	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// opTraceKind maps program ops to the trace kinds they announce.
var opTraceKind = [numOpKinds]trace.Kind{
	OpStore:          trace.Write,
	OpNTStore:        trace.NTStore,
	OpCLWB:           trace.CLWB,
	OpCLFlush:        trace.CLFlush,
	OpFence:          trace.SFence,
	OpLoad:           trace.Read,
	OpTxBegin:        trace.TxBegin,
	OpTxAdd:          trace.TxAdd,
	OpTxCommit:       trace.TxCommit,
	OpTxAbort:        trace.TxAbort,
	OpRegCommitVar:   trace.RegCommitVar,
	OpRegCommitRange: trace.RegCommitRange,
}

// BuildTarget compiles p into a runnable detection target.
//
// Memory ops are announced with explicit synthetic source locations
// (OpIP), so each generated op has a stable per-op identity in report
// deduplication — the analogue of distinct source lines. Fences go through
// the pool's real SFence so the detector's fence hook (the failure
// injector) fires exactly as it would for a real program. Generated
// programs are straight-line and data-independent: no op inspects loaded
// values, so the detector's verdicts depend only on the op sequence, which
// is what lets the oracle predict them without executing data flow.
func BuildTarget(p Program) core.Target {
	stageFn := func(stage string, ops []Op) func(*core.Ctx) error {
		return func(c *core.Ctx) error {
			pool := c.Pool()
			for i, op := range ops {
				if op.Kind == OpFence {
					pool.SFence()
					continue
				}
				pool.AnnounceEntry(trace.Entry{
					Kind:  opTraceKind[op.Kind],
					Addr:  op.Addr,
					Size:  op.Size,
					Addr2: op.Addr2,
					Size2: op.Size2,
					IP:    OpIP(stage, i),
				})
			}
			return nil
		}
	}
	t := core.Target{
		Name: p.Name,
		Pre:  stageFn("pre", p.Pre),
	}
	if len(p.Setup) > 0 {
		t.Setup = stageFn("setup", p.Setup)
	}
	t.Post = stageFn("post", p.Post)
	return t
}
