package fuzzgen

import (
	"fmt"
	"sort"
	"sync"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// opTraceKind maps program ops to the trace kinds they announce.
var opTraceKind = [numOpKinds]trace.Kind{
	OpStore:          trace.Write,
	OpNTStore:        trace.NTStore,
	OpCLWB:           trace.CLWB,
	OpCLFlush:        trace.CLFlush,
	OpFence:          trace.SFence,
	OpLoad:           trace.Read,
	OpTxBegin:        trace.TxBegin,
	OpTxAdd:          trace.TxAdd,
	OpTxCommit:       trace.TxCommit,
	OpTxAbort:        trace.TxAbort,
	OpRegCommitVar:   trace.RegCommitVar,
	OpRegCommitRange: trace.RegCommitRange,
}

// Store data patterns.
//
// Generated programs are data-independent — no op branches on a loaded
// value — but the bytes their stores leave behind still matter: the
// post-failure image must be byte-identical however the harness produced
// it (full image copy, incremental dirty-page delta, copy-on-write view).
// Every non-empty store therefore writes a deterministic pattern derived
// from its ordinal, and every post-failure load reads the actual bytes
// back into a PostReadLog whose digests the oracle predicts independently
// (OracleResult.PostReads). A snapshot bug that reports the right
// verdicts over stale or torn data is caught by the digests alone.

// preStoreValue is the byte every part of the k-th non-empty setup/pre
// store writes, with k counted across setup then pre in op order — the
// same numbering the oracle's store ordinals use. Values avoid 0, the
// pool's initial content.
func preStoreValue(ord int) byte { return byte(ord%251) + 1 }

// postStoreValue is the byte the post-failure store at op index i writes.
func postStoreValue(i int) byte { return byte(i%251) + 2 }

// PostReadLog records the exact bytes every post-failure load observed,
// keyed by failure point and post-op index. It is safe for concurrent
// use: parallel workers run post-failure stages concurrently.
type PostReadLog struct {
	mu sync.Mutex
	m  map[string]string
}

// record stores the digest for the load at post-op index opIdx of failure
// point fp. A retried attempt re-observes the same key; if the bytes ever
// differ across observations — itself a snapshot-determinism bug — both
// digests are kept so the comparison fails loudly.
func (l *PostReadLog) record(fp, opIdx int, data []byte) {
	key := fmt.Sprintf("fp%d.%d", fp, opIdx)
	val := fmt.Sprintf("%x", data)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m == nil {
		l.m = make(map[string]string)
	}
	if prev, ok := l.m[key]; ok && prev != val {
		l.m[key] = prev + "|" + val
		return
	}
	l.m[key] = val
}

// Canonical returns the log as sorted "fp<k>.<i>:<hex>" digests, directly
// comparable with OracleResult.PostReads.
func (l *PostReadLog) Canonical() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.m))
	for k, v := range l.m {
		out = append(out, k+":"+v)
	}
	sort.Strings(out)
	return out
}

// BuildTarget compiles p into a runnable detection target with no read
// log attached.
func BuildTarget(p Program) core.Target { return BuildTargetRecording(p, nil) }

// BuildTargetRecording compiles p into a runnable detection target.
//
// Memory ops are announced with explicit synthetic source locations
// (OpIP), so each generated op has a stable per-op identity in report
// deduplication — the analogue of distinct source lines. Fences go
// through the pool's real SFence so the detector's fence hook (the
// failure injector) fires exactly as it would for a real program. Stores
// additionally Poke their deterministic byte pattern into the pool —
// untraced, so entry counts and classification are untouched, but the
// data still flows through the snapshot machinery — and, when log is
// non-nil, every post-failure load Peeks the bytes it covers into log.
func BuildTargetRecording(p Program, log *PostReadLog) core.Target {
	setupVals, preVals := storeValues(p)
	stageFn := func(stage string, ops []Op, vals map[int]byte) func(*core.Ctx) error {
		return func(c *core.Ctx) error {
			pool := c.Pool()
			for i, op := range ops {
				if op.Kind == OpFence {
					pool.SFence()
					continue
				}
				if (op.Kind == OpStore || op.Kind == OpNTStore) && op.Size > 0 {
					// Data lands before the entry is announced, the same
					// order Pool.Store establishes.
					v := postStoreValue(i)
					if stage != "post" {
						v = vals[i]
					}
					pool.Poke(op.Addr, repeatByte(v, op.Size))
				}
				pool.AnnounceEntry(trace.Entry{
					Kind:  opTraceKind[op.Kind],
					Addr:  op.Addr,
					Size:  op.Size,
					Addr2: op.Addr2,
					Size2: op.Size2,
					IP:    OpIP(stage, i),
				})
				if log != nil && stage == "post" && op.Kind == OpLoad && op.Size > 0 {
					buf := make([]byte, op.Size)
					pool.Peek(op.Addr, buf)
					log.record(c.FailurePoint(), i, buf)
				}
			}
			return nil
		}
	}
	t := core.Target{
		Name: p.Name,
		Pre:  stageFn("pre", p.Pre, preVals),
	}
	if len(p.Setup) > 0 {
		t.Setup = stageFn("setup", p.Setup, setupVals)
	}
	t.Post = stageFn("post", p.Post, nil)
	return t
}

// storeValues assigns each non-empty setup/pre store its pattern byte, in
// the setup-then-pre ordinal numbering the oracle uses.
func storeValues(p Program) (setup, pre map[int]byte) {
	setup, pre = map[int]byte{}, map[int]byte{}
	ord := 0
	walk := func(ops []Op, m map[int]byte) {
		for i, op := range ops {
			if (op.Kind == OpStore || op.Kind == OpNTStore) && op.Size > 0 {
				m[i] = preStoreValue(ord)
				ord++
			}
		}
	}
	walk(p.Setup, setup)
	walk(p.Pre, pre)
	return setup, pre
}

func repeatByte(v byte, n uint64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = v
	}
	return b
}
