package fuzzgen

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/shadow"
)

// pruneMutants are the deliberate bugs seeded into crash-state
// fingerprinting, the foundation of failure-point pruning. Colliding
// fingerprints hash every non-empty shadow page to one constant, so
// genuinely distinct crash states fall into one class and the bugs
// reachable only from the non-representative states are silently skipped.
// Stale fingerprints freeze a page's cached hash at the state a fence
// already consumed, so later, dirtier crash states alias an earlier clean
// one and are pruned without testing. Both surface as a lost report key —
// the exact soundness property the differential suite pins. Neither mutant
// touches shared state across goroutines, so both also run under -race.
var pruneMutants = []struct {
	name string
	set  func(bool)
}{
	{"colliding-fingerprint", shadow.SetCollidingFingerprintForTest},
	{"stale-fence-fingerprint", shadow.SetStaleFenceFingerprintForTest},
}

// pruneMutationKnobs bias the generator toward programs with many
// distinguishable crash states: dropped-fence programs leave long
// mid-persistence tails that differ fence to fence, and mixed programs add
// commit-variable protocols whose geometry and Eq. 3 outcomes feed the
// fingerprint.
var pruneMutationKnobs = []Knob{KnobDroppedFence, KnobMixed}

// TestPruneMutationCaught proves the differential suite would notice a
// fingerprint soundness regression: with either mutant active, pruning
// collapses distinct crash states and some seed's pruned run loses a
// report key (or breaks the accounting) relative to the brute-force
// oracle. Must not run in parallel with other tests: the mutation switches
// are package-level toggles in internal/shadow.
func TestPruneMutationCaught(t *testing.T) {
	const n = 40
	for seed := int64(0); seed < n; seed++ {
		for _, k := range pruneMutationKnobs {
			if err := CheckSeed(seed, k); err != nil {
				t.Fatalf("pre-mutation sanity failed (seed %d, knob %s): %v", seed, k, err)
			}
		}
	}
	for _, mut := range pruneMutants {
		t.Run(mut.name, func(t *testing.T) {
			mut.set(true)
			defer mut.set(false)
			caught := 0
			for seed := int64(0); seed < n; seed++ {
				for _, k := range pruneMutationKnobs {
					err := CheckSeed(seed, k)
					var m *Mismatch
					if errors.As(err, &m) {
						caught++
					} else if err != nil {
						t.Fatalf("seed %d knob %s: non-mismatch error under mutation: %v", seed, k, err)
					}
				}
			}
			if caught == 0 {
				t.Fatalf("seeded %s mutation went undetected on all %d seeds x %d knobs",
					mut.name, n, len(pruneMutationKnobs))
			}
			t.Logf("%s caught on %d/%d seed-knob pairs", mut.name, caught, n*len(pruneMutationKnobs))
		})
	}
}

// TestPruneMutationCaughtByCorpus requires that the checked-in corpus
// alone catches both fingerprint mutants, so the safety net does not
// depend on which seeds a fuzzing campaign explores.
// corpus/prune-class-stale-fence.json is the hand-written minimized
// reproducer for both: failure point 0 freezes one writeback-pending line
// and its post-run is clean; failure point 1 adds a second, unpersisted
// line whose post-failure load is a cross-failure race. Collide the page
// hashes (or leave the cached hash frozen at the state the first fence
// consumed) and failure point 1 aliases failure point 0's clean class —
// the race key disappears from the pruned run's report set.
func TestPruneMutationCaughtByCorpus(t *testing.T) {
	entries, err := os.ReadDir("corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range pruneMutants {
		t.Run(mut.name, func(t *testing.T) {
			mut.set(true)
			defer mut.set(false)
			caught := 0
			caughtByReproducer := false
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
					continue
				}
				data, err := os.ReadFile(filepath.Join("corpus", e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				p, err := ParseProgram(data)
				if err != nil {
					t.Fatalf("%s: %v", e.Name(), err)
				}
				var m *Mismatch
				if err := CheckProgram(p); errors.As(err, &m) {
					caught++
					if e.Name() == "prune-class-stale-fence.json" {
						caughtByReproducer = true
					}
				} else if err != nil {
					t.Fatalf("%s: non-mismatch error under mutation: %v", e.Name(), err)
				}
			}
			if caught == 0 {
				t.Fatalf("%s mutation went undetected by the entire corpus", mut.name)
			}
			if !caughtByReproducer {
				t.Fatalf("%s mutation not caught by its minimized reproducer prune-class-stale-fence.json", mut.name)
			}
			t.Logf("%s caught by %d corpus programs", mut.name, caught)
		})
	}
}
