package fuzzgen

import (
	"errors"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/record"
)

// Seeded mutant for the recorded-campaign fast-forward layer (PR 10). A
// checkpoint jump skips re-executing the trace prefix, trusting that the
// serialized engine state really is the state at that failure point; a
// recorder that writes stale checkpoint blobs (here: every checkpoint
// reuses the first one's shadow state) breaks exactly that trust, and the
// replay's per-failure-point fingerprint tripwire exists solely to refuse
// it. The battery proves a deep-jump resume through a stale checkpoint
// either fails at the tripwire or surfaces as a differential mismatch —
// never a silent wrong classification.

// recordMutationSeeds is the battery's per-knob seed count.
const recordMutationSeeds = 40

// TestStaleCheckpointMutationCaught: with record.SetStaleCheckpointForTest
// on, recorded artifacts carry checkpoints whose shadow state belongs to an
// earlier failure point. A resumed replay that jumps through one must be
// caught. Must not run in parallel: the mutation switch is a package-level
// toggle in internal/record.
func TestStaleCheckpointMutationCaught(t *testing.T) {
	knobs := []Knob{KnobDroppedFlush, KnobMixed}
	// scenario records p and deep-jump-resumes it, comparing the jumped
	// replay against the full-trace replay of the same resume. eligible
	// reports whether the resume actually jumps through a non-initial
	// checkpoint — the only ones the mutant corrupts.
	scenario := func(seed int64, knob Knob) (eligible bool, err error) {
		p := Generate(seed, knob)
		a, err := recordProgram(p)
		if err != nil {
			return false, err
		}
		total := len(a.FPs)
		if total < 2 {
			return false, nil
		}
		completed := make(map[int]bool, total-1)
		for fp := 0; fp < total-1; fp++ {
			completed[fp] = true
		}
		if ck := a.BestCheckpoint(total - 1); ck == nil || ck.FP == 0 {
			// A jump to the very first checkpoint replays state the mutant
			// left genuine; the scenario proves nothing there.
			eligible = false
		} else {
			eligible = true
		}
		resume := func(keepTrace bool) (*core.Result, error) {
			return core.Run(core.Config{
				PoolSize:               p.PoolSize,
				Replay:                 a,
				KeepTrace:              keepTrace,
				CompletedFailurePoints: completed,
			}, BuildTarget(p))
		}
		jumped, err := resume(false)
		if err != nil {
			return eligible, err
		}
		full, err := resume(true)
		if err != nil {
			return eligible, err
		}
		return eligible, compare(p, "stale-checkpoint", "keys", joinKeys(full), joinKeys(jumped))
	}

	for seed := int64(0); seed < recordMutationSeeds; seed++ {
		for _, k := range knobs {
			if _, err := scenario(seed, k); err != nil {
				t.Fatalf("pre-mutation sanity failed (seed %d, knob %s): %v", seed, k, err)
			}
		}
	}

	record.SetStaleCheckpointForTest(true)
	defer record.SetStaleCheckpointForTest(false)
	caught, eligiblePairs := 0, 0
	for seed := int64(0); seed < recordMutationSeeds; seed++ {
		for _, k := range knobs {
			eligible, err := scenario(seed, k)
			if !eligible {
				if err != nil && !isTripwire(err) {
					t.Fatalf("seed %d knob %s: ineligible scenario errored under mutation: %v", seed, k, err)
				}
				continue
			}
			eligiblePairs++
			var m *Mismatch
			switch {
			case isTripwire(err):
				caught++ // the replay refused the stale checkpoint outright
			case errors.As(err, &m):
				caught++ // it slipped past the tripwire but diverged visibly
			case err != nil:
				t.Fatalf("seed %d knob %s: non-mismatch error under mutation: %v", seed, k, err)
			}
		}
	}
	if eligiblePairs == 0 {
		t.Fatalf("no seed produced a resume that jumps through a non-initial checkpoint; the battery proved nothing")
	}
	if caught == 0 {
		t.Fatalf("seeded stale-checkpoint mutation went undetected on all %d eligible seed-knob pairs", eligiblePairs)
	}
	t.Logf("stale-checkpoint caught on %d/%d eligible seed-knob pairs", caught, eligiblePairs)
}

// isTripwire reports whether err is the replay's fingerprint tripwire
// refusing a stale or corrupt engine checkpoint.
func isTripwire(err error) bool {
	return err != nil && strings.Contains(err.Error(), "stale or corrupt engine checkpoint")
}
