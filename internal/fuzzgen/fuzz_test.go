package fuzzgen

import "testing"

// FuzzDetector is the native fuzz entry point: the fuzzing engine
// explores (seed, knob) pairs, each of which deterministically expands
// into a generated PM program that must survive the full differential
// check against the brute-force oracle.
//
// Run it with:
//
//	go test ./internal/fuzzgen -fuzz=FuzzDetector -fuzztime=30s
//
// Without -fuzz the registered seed corpus below replays as ordinary
// deterministic tests.
func FuzzDetector(f *testing.F) {
	for i := range Knobs() {
		f.Add(int64(1), uint8(i))
		f.Add(int64(42+i), uint8(i))
		f.Add(int64(1000+997*i), uint8(i))
	}
	knobs := Knobs()
	f.Fuzz(func(t *testing.T, seed int64, knobIdx uint8) {
		knob := knobs[int(knobIdx)%len(knobs)]
		if err := CheckSeed(seed, knob); err != nil {
			t.Fatal(err)
		}
	})
}
