package fuzzgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/vcache"
)

// Differential configurations for cross-shard and cross-campaign verdict
// sharing (the VerdictSource protocol). Both are held to the brute-force
// oracle like every other engine configuration: sharing verdicts may only
// redistribute post-runs, never change the merged key set or the bytes any
// surviving post-run observes.

// verdictShards is the shard width of the cross-shard configuration.
const verdictShards = 3

// programIdentity is the verdict-cache identity of a generated program: a
// hash of its full JSON form, so any change to any stage — including a
// post-only change invisible to the pre-failure fingerprints — is a
// different program that shares no cached verdicts.
func programIdentity(p Program) (uint64, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return 0, fmt.Errorf("fuzzgen: %q: encoding for identity: %w", p.Name, err)
	}
	return vcache.Identity("fuzzgen-program", string(data)), nil
}

// unionKeys merges the deduplicated report keys of several shard results.
func unionKeys(results ...*core.Result) string {
	seen := map[string]bool{}
	for _, res := range results {
		for _, k := range ResultKeys(res) {
			seen[k] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ; ")
}

// checkDigestsPredicted verifies every observed post-read digest was
// predicted by the oracle (attributed failure points simply observe
// nothing, so the observed set is a subset).
func checkDigestsPredicted(p Program, config string, want *OracleResult, log *PostReadLog) error {
	predicted := make(map[string]bool, len(want.PostReads))
	for _, d := range want.PostReads {
		predicted[d] = true
	}
	for _, d := range log.Canonical() {
		if !predicted[d] {
			return &Mismatch{Program: p, Config: config, Field: "post-read-bytes",
				Want: strings.Join(want.PostReads, " ; "), Got: d}
		}
	}
	return nil
}

// checkCrossShard runs p as verdictShards sequential shards of one campaign
// sharing a core.ClassRegistry — the in-process form of the -serve daemon's
// claim/resolve protocol — and verifies the sharing is invisible: the union
// of the shards' report keys equals the oracle's key set, every shard's
// failure points land in exactly one Result bucket, and the total post-runs
// across the fleet equal the single-process pruned run's (base) — one
// representative per global crash-state class, however the members are
// distributed. Sequential shard execution makes ownership deterministic, so
// the post-run count is exact, not a bound.
func checkCrossShard(p Program, want *OracleResult, base *core.Result) error {
	reg := core.NewClassRegistry()
	log := &PostReadLog{}
	results := make([]*core.Result, 0, verdictShards)
	totalPost, totalCross := 0, 0
	for idx := 0; idx < verdictShards; idx++ {
		cfg := core.Config{
			PoolSize:   p.PoolSize,
			ShardCount: verdictShards,
			ShardIndex: idx,
			Verdicts:   reg.Bind(fmt.Sprintf("shard%d", idx)),
		}
		res, err := core.Run(cfg, BuildTargetRecording(p, log))
		if err != nil {
			return fmt.Errorf("fuzzgen: %q: harness error: %w", p.Name, err)
		}
		if err := compare(p, "cross-shard", fmt.Sprintf("shard%d-bucket-accounting", idx),
			fmt.Sprint(res.FailurePoints), fmt.Sprint(res.BucketedFailurePoints())); err != nil {
			return err
		}
		totalPost += res.PostRuns
		totalCross += res.CrossShardPrunedFailurePoints
		results = append(results, res)
	}
	if err := compare(p, "cross-shard", "keys",
		strings.Join(want.Keys, " ; "), unionKeys(results...)); err != nil {
		return err
	}
	if err := compare(p, "cross-shard", "total-post-runs",
		fmt.Sprint(base.PostRuns), fmt.Sprint(totalPost)); err != nil {
		return err
	}
	// Shards of an update-heavy program share classes; attribution must
	// actually fire whenever the single-process run found duplicates spread
	// across the shard partition (a registry that silently answers
	// VerdictRun forever would pass every soundness check while delivering
	// zero speedup).
	if totalCross == 0 && base.PrunedFailurePoints > 0 {
		sharded := 0
		for _, res := range results {
			sharded += res.PrunedFailurePoints
		}
		if sharded < base.PrunedFailurePoints {
			return &Mismatch{Program: p, Config: "cross-shard", Field: "attribution-liveness",
				Want: fmt.Sprintf("cross-shard attributions for %d duplicate crash states", base.PrunedFailurePoints),
				Got:  fmt.Sprintf("0 attributions, %d locally pruned", sharded)}
		}
	}
	return checkDigestsPredicted(p, "cross-shard", want, log)
}

// checkWarmCache runs p twice against one on-disk verdict cache — a cold
// campaign that fills it and a warm one that reuses it — and verifies the
// cross-campaign reuse is invisible: both runs report the oracle's exact
// key set (the warm run re-seeds cached reports rather than losing them),
// the warm run's buckets account for every failure point, its cache hits
// equal the entries the cold run persisted, and its post-runs are exactly
// the cold run's minus the cached classes.
func checkWarmCache(p Program, want *OracleResult, base *core.Result) error {
	dir, err := os.MkdirTemp("", "xfdfuzz-vcache-")
	if err != nil {
		return fmt.Errorf("fuzzgen: %q: temp cache dir: %w", p.Name, err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "verdicts.cache")
	id, err := programIdentity(p)
	if err != nil {
		return err
	}

	runWith := func(config string) (*core.Result, *PostReadLog, int, error) {
		cache, err := vcache.Open(path)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("fuzzgen: %q: opening verdict cache: %w", p.Name, err)
		}
		defer cache.Close()
		log := &PostReadLog{}
		cfg := core.Config{PoolSize: p.PoolSize, Verdicts: cache.Bind(id)}
		res, err := core.Run(cfg, BuildTargetRecording(p, log))
		if err != nil {
			return nil, nil, 0, fmt.Errorf("fuzzgen: %q: %s: harness error: %w", p.Name, config, err)
		}
		return res, log, cache.Len(), nil
	}

	cold, coldLog, cached, err := runWith("cold")
	if err != nil {
		return err
	}
	if err := compare(p, "warm-cache", "cold-keys",
		strings.Join(want.Keys, " ; "), joinKeys(cold)); err != nil {
		return err
	}
	if err := checkDigestsPredicted(p, "warm-cache(cold)", want, coldLog); err != nil {
		return err
	}

	warm, warmLog, _, err := runWith("warm")
	if err != nil {
		return err
	}
	if err := compare(p, "warm-cache", "keys",
		strings.Join(want.Keys, " ; "), joinKeys(warm)); err != nil {
		return err
	}
	if err := compare(p, "warm-cache", "bucket-accounting",
		fmt.Sprint(warm.FailurePoints), fmt.Sprint(warm.BucketedFailurePoints())); err != nil {
		return err
	}
	if err := compare(p, "warm-cache", "cache-hits",
		fmt.Sprint(cached), fmt.Sprint(warm.CacheHitFailurePoints)); err != nil {
		return err
	}
	if err := compare(p, "warm-cache", "post-runs",
		fmt.Sprint(base.PostRuns-cached), fmt.Sprint(warm.PostRuns)); err != nil {
		return err
	}
	return checkDigestsPredicted(p, "warm-cache", want, warmLog)
}
