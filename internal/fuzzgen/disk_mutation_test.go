//go:build linux

package fuzzgen

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/pmem"
)

// The seeded writeback bug: every dirty-range msync of a file-backed pool
// silently persists only its first 256 bytes and clears the range's dirty
// bits anyway (pmem.SetShortMsyncForTest). No error is raised, every
// verdict stays right, and only the durable image is wrong — so only the
// file-backed differential configuration, which digests the backing file
// against the oracle's final image, can catch it. These tests prove it
// does, on fuzzed seeds and on the checked-in corpus alone.

// TestShortMsyncMutationCaught: the dropped-fence seed battery notices the
// silently short writeback. Must not run in parallel with other tests: the
// mutation switch is a package-level toggle in internal/pmem.
func TestShortMsyncMutationCaught(t *testing.T) {
	const n = 40
	pmem.SetShortMsyncForTest(true)
	defer pmem.SetShortMsyncForTest(false)
	caught := 0
	for seed := int64(0); seed < n; seed++ {
		err := CheckSeed(seed, KnobDroppedFence)
		var m *Mismatch
		if errors.As(err, &m) {
			caught++
			if m.Field != "durable-image" || m.Config != "file-backed" {
				t.Fatalf("seed %d: short msync caught by %s/%s, want file-backed/durable-image:\n%v",
					seed, m.Config, m.Field, m)
			}
		} else if err != nil {
			t.Fatalf("seed %d: non-mismatch error under mutation: %v", seed, err)
		}
	}
	if caught == 0 {
		t.Fatalf("seeded short-msync mutation went undetected on all %d seeds", n)
	}
	t.Logf("short-msync caught on %d/%d dropped-fence seeds", caught, n)
}

// TestShortMsyncMutationCaughtByCorpus requires the deterministic corpus
// replayed in CI to catch the mutant without relying on fuzzing luck.
func TestShortMsyncMutationCaughtByCorpus(t *testing.T) {
	entries, err := os.ReadDir("corpus")
	if err != nil {
		t.Fatal(err)
	}
	pmem.SetShortMsyncForTest(true)
	defer pmem.SetShortMsyncForTest(false)
	caught := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join("corpus", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		p, err := ParseProgram(data)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		var m *Mismatch
		if err := CheckProgram(p); errors.As(err, &m) {
			caught++
		} else if err != nil {
			t.Fatalf("%s: non-mismatch error under mutation: %v", e.Name(), err)
		}
	}
	if caught == 0 {
		t.Fatal("short-msync mutation went undetected by the entire corpus")
	}
	t.Logf("short-msync caught by %d corpus programs", caught)
}
