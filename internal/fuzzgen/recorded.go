package fuzzgen

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/record"
)

// Differential configurations for the recorded-campaign artifact (the
// -record / -from-record fast-forward path). Replaying the pre-failure
// stage from an artifact may only change *how* the frontend trace reaches
// the backend, never what the campaign reports: the key set, the
// failure-point accounting, and the exact bytes every surviving post-run
// observes must all match the live execution — and through an engine
// checkpoint jump, the suffix replay must be indistinguishable from a
// full-trace replay.

// recordedCheckpointEvery is the artifact checkpoint interval used by the
// differential configurations: small, so generated programs (a handful of
// failure points) still exercise the checkpoint-jump path.
const recordedCheckpointEvery = 2

// recordProgram runs p's recording pass and decodes the artifact.
func recordProgram(p Program) (*record.Artifact, error) {
	id, err := programIdentity(p)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	cfg := core.Config{PoolSize: p.PoolSize}
	cfg.Record = record.NewWriter(&buf, id, p.PoolSize, recordedCheckpointEvery)
	res, err := core.Run(cfg, BuildTarget(p))
	if err != nil {
		return nil, fmt.Errorf("fuzzgen: %q: recording: %w", p.Name, err)
	}
	if res.PostRuns != 0 {
		return nil, fmt.Errorf("fuzzgen: %q: recording ran %d post-failure executions; the record pass is pre-failure only",
			p.Name, res.PostRuns)
	}
	a, err := record.Read(&buf)
	if err != nil {
		return nil, fmt.Errorf("fuzzgen: %q: decoding artifact: %w", p.Name, err)
	}
	if a.Identity != id {
		return nil, fmt.Errorf("fuzzgen: %q: artifact identity %016x, want %016x", p.Name, a.Identity, id)
	}
	return a, nil
}

// checkRecorded records p once and holds every replayed configuration to
// the oracle: a sequential replay must match the live pruned run key for
// key and bucket for bucket (byte-identical post-read digests included), a
// three-shard replay fleet must union to the oracle's key set with exact
// per-shard accounting, and a deep-jump resume (every failure point but
// the last completed, fast-forwarding through the nearest engine
// checkpoint) must report exactly what a full-trace replay of the same
// resume reports.
func checkRecorded(p Program, want *OracleResult, base *core.Result) error {
	a, err := recordProgram(p)
	if err != nil {
		return err
	}
	if err := compare(p, "recorded", "failure-points",
		fmt.Sprint(want.FailurePoints), fmt.Sprint(len(a.FPs))); err != nil {
		return err
	}

	// Sequential replay vs the live pruned run (base).
	log := &PostReadLog{}
	res, err := core.Run(core.Config{PoolSize: p.PoolSize, Replay: a}, BuildTargetRecording(p, log))
	if err != nil {
		return fmt.Errorf("fuzzgen: %q: replay: %w", p.Name, err)
	}
	if err := compare(p, "recorded", "keys",
		strings.Join(want.Keys, " ; "), joinKeys(res)); err != nil {
		return err
	}
	if err := compare(p, "recorded", "post-runs",
		fmt.Sprint(base.PostRuns), fmt.Sprint(res.PostRuns)); err != nil {
		return err
	}
	if err := compare(p, "recorded", "pruned-failure-points",
		fmt.Sprint(base.PrunedFailurePoints), fmt.Sprint(res.PrunedFailurePoints)); err != nil {
		return err
	}
	if err := compare(p, "recorded", "bucket-accounting",
		fmt.Sprint(res.FailurePoints), fmt.Sprint(res.BucketedFailurePoints())); err != nil {
		return err
	}
	if err := checkDigestsPredicted(p, "recorded", want, log); err != nil {
		return err
	}

	// Three-shard replay fleet: every shard fast-forwards from the same
	// artifact; the union must still be the oracle's key set.
	shardLog := &PostReadLog{}
	results := make([]*core.Result, 0, verdictShards)
	for idx := 0; idx < verdictShards; idx++ {
		res, err := core.Run(core.Config{
			PoolSize:   p.PoolSize,
			ShardCount: verdictShards,
			ShardIndex: idx,
			Replay:     a,
		}, BuildTargetRecording(p, shardLog))
		if err != nil {
			return fmt.Errorf("fuzzgen: %q: replay shard %d: %w", p.Name, idx, err)
		}
		if err := compare(p, "recorded-shards", fmt.Sprintf("shard%d-bucket-accounting", idx),
			fmt.Sprint(res.FailurePoints), fmt.Sprint(res.BucketedFailurePoints())); err != nil {
			return err
		}
		results = append(results, res)
	}
	if err := compare(p, "recorded-shards", "keys",
		strings.Join(want.Keys, " ; "), unionKeys(results...)); err != nil {
		return err
	}
	if err := checkDigestsPredicted(p, "recorded-shards", want, shardLog); err != nil {
		return err
	}

	// Deep-jump resume: everything but the last failure point completed, so
	// the replay fast-forwards through the nearest checkpoint. The full-trace
	// replay of the same resume (KeepTrace pins the no-jump path) is the
	// reference.
	total := len(a.FPs)
	if total < 2 {
		return nil
	}
	completed := make(map[int]bool, total-1)
	for fp := 0; fp < total-1; fp++ {
		completed[fp] = true
	}
	resume := func(keepTrace bool) (*core.Result, error) {
		res, err := core.Run(core.Config{
			PoolSize:               p.PoolSize,
			Replay:                 a,
			KeepTrace:              keepTrace,
			CompletedFailurePoints: completed,
		}, BuildTarget(p))
		if err != nil {
			return nil, fmt.Errorf("fuzzgen: %q: resume replay (keepTrace=%v): %w", p.Name, keepTrace, err)
		}
		return res, nil
	}
	jumped, err := resume(false)
	if err != nil {
		return err
	}
	full, err := resume(true)
	if err != nil {
		return err
	}
	if err := compare(p, "recorded-resume", "keys", joinKeys(full), joinKeys(jumped)); err != nil {
		return err
	}
	if err := compare(p, "recorded-resume", "post-runs",
		fmt.Sprint(full.PostRuns), fmt.Sprint(jumped.PostRuns)); err != nil {
		return err
	}
	if err := compare(p, "recorded-resume", "resumed-failure-points",
		fmt.Sprint(total-1), fmt.Sprint(jumped.ResumedFailurePoints)); err != nil {
		return err
	}
	return compare(p, "recorded-resume", "bucket-accounting",
		fmt.Sprint(jumped.FailurePoints), fmt.Sprint(jumped.BucketedFailurePoints()))
}
