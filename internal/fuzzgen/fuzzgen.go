// Package fuzzgen is a differential crash-state fuzzer for the detector.
//
// It closes the loop that WITCHER (Fu et al.) and the Representative
// Testing work (Gu et al.) argue every PM bug detector needs: an
// *independent oracle* that re-derives the expected verdicts from first
// principles, so a soundness or completeness regression in internal/shadow
// or the parallel engine is caught by construction instead of waiting for a
// hand-written workload to trip over it.
//
// The package has three parts:
//
//   - a deterministic, seed-driven generator (gen.go) that emits small
//     straight-line PM programs mixing raw Store/CLWB/SFENCE sequences,
//     commit-variable protocols and pmobj-style undo-log transactions, with
//     per-knob probabilities for the seeded bug classes (dropped flush,
//     dropped fence, read-before-persist, stale commit);
//   - a brute-force oracle (oracle.go) that shares no code with
//     internal/shadow: it replays the program, enumerates each failure
//     point's reachable crash images by taking persist-order-respecting
//     subsets of the pending stores, and classifies every post-failure read
//     directly from the paper's definitions;
//   - a differential driver (diff.go) that runs the same program through
//     core.Run — sequentially, with Workers>1, and in all three Modes —
//     and fails on any mismatch against the oracle (report keys, failure
//     point and post-run counts, benign bytes, trace-entry counts).
//
// Programs are plain data (JSON-serializable), so fuzzer-found
// discrepancies minimize to small reproducers checked into corpus/ and
// replayed as ordinary deterministic tests. Everything is derived from an
// explicit int64 seed: same seed, same program, same verdicts.
package fuzzgen

import (
	"encoding/json"
	"fmt"

	"github.com/pmemgo/xfdetector/internal/pmem"
)

// OpKind enumerates the operations a generated program can perform. It is a
// deliberately smaller alphabet than trace.Kind: just enough to express raw
// persistency sequences, commit-variable protocols and undo-log
// transactions as straight-line code.
type OpKind uint8

const (
	// OpStore is a regular cached store of [Addr, Addr+Size).
	OpStore OpKind = iota
	// OpNTStore is a non-temporal store: writeback-pending immediately.
	OpNTStore
	// OpCLWB requests writeback of the cache lines covering the range.
	OpCLWB
	// OpCLFlush behaves like OpCLWB for persistence purposes.
	OpCLFlush
	// OpFence is an SFENCE: an ordering point; in the pre-failure stage the
	// detector injects a failure point immediately before it.
	OpFence
	// OpLoad reads [Addr, Addr+Size); in the post-failure stage every load
	// is classified.
	OpLoad
	// OpTxBegin starts an undo-log transaction.
	OpTxBegin
	// OpTxAdd backs [Addr, Addr+Size) up in the undo log.
	OpTxAdd
	// OpTxCommit commits the innermost open transaction.
	OpTxCommit
	// OpTxAbort aborts the innermost open transaction.
	OpTxAbort
	// OpRegCommitVar registers [Addr, Addr+Size) as a commit variable.
	OpRegCommitVar
	// OpRegCommitRange associates [Addr2, Addr2+Size2) with the commit
	// variable at [Addr, Addr+Size).
	OpRegCommitRange
	numOpKinds
)

var opKindNames = [...]string{
	OpStore:          "store",
	OpNTStore:        "ntstore",
	OpCLWB:           "clwb",
	OpCLFlush:        "clflush",
	OpFence:          "sfence",
	OpLoad:           "load",
	OpTxBegin:        "tx_begin",
	OpTxAdd:          "tx_add",
	OpTxCommit:       "tx_commit",
	OpTxAbort:        "tx_abort",
	OpRegCommitVar:   "reg_commit_var",
	OpRegCommitRange: "reg_commit_range",
}

// String returns the lower-case mnemonic used in corpus files.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its mnemonic so corpus files stay
// readable and diffable.
func (k OpKind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(opKindNames) {
		return nil, fmt.Errorf("fuzzgen: cannot marshal invalid op kind %d", uint8(k))
	}
	return json.Marshal(opKindNames[k])
}

// UnmarshalJSON decodes a mnemonic produced by MarshalJSON.
func (k *OpKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, name := range opKindNames {
		if name == s {
			*k = OpKind(i)
			return nil
		}
	}
	return fmt.Errorf("fuzzgen: unknown op kind %q", s)
}

// Op is one operation of a generated program. Addr2/Size2 are used only by
// OpRegCommitRange (the associated address set).
type Op struct {
	Kind  OpKind `json:"op"`
	Addr  uint64 `json:"addr,omitempty"`
	Size  uint64 `json:"size,omitempty"`
	Addr2 uint64 `json:"addr2,omitempty"`
	Size2 uint64 `json:"size2,omitempty"`
}

// Program is a complete generated target: three straight-line op lists
// executed as the Setup, Pre and Post stages of a core.Target. Being plain
// data, a Program is its own reproducer.
type Program struct {
	Name     string `json:"name"`
	PoolSize uint64 `json:"pool_size"`
	Setup    []Op   `json:"setup,omitempty"`
	Pre      []Op   `json:"pre"`
	Post     []Op   `json:"post,omitempty"`
}

// MarshalIndent renders the program as the corpus-file JSON form.
func (p Program) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ParseProgram decodes a corpus file.
func ParseProgram(data []byte) (Program, error) {
	var p Program
	if err := json.Unmarshal(data, &p); err != nil {
		return Program{}, fmt.Errorf("fuzzgen: parse program: %w", err)
	}
	return p, nil
}

// maxProgramPool bounds corpus pool sizes so a malformed file cannot make
// the oracle allocate unbounded per-byte state.
const maxProgramPool = 1 << 20

// Validate checks the invariants the executor and oracle rely on. It
// rejects out-of-bounds ranges (pool accessors would panic mid-run) and
// post-failure registrations that do not replay an earlier one: the
// parallel engine's equivalence contract assumes post-failure
// (re-)registrations are idempotent, which only holds when the original
// registration precedes every failure point that could observe it.
func (p Program) Validate() error {
	if p.PoolSize == 0 || p.PoolSize%pmem.CacheLineSize != 0 || p.PoolSize > maxProgramPool {
		return fmt.Errorf("fuzzgen: pool size %d must be a positive multiple of %d up to %d",
			p.PoolSize, pmem.CacheLineSize, maxProgramPool)
	}
	type reg struct{ a, s, a2, s2 uint64 }
	seen := map[reg]bool{}
	stages := []struct {
		name string
		ops  []Op
	}{{"setup", p.Setup}, {"pre", p.Pre}, {"post", p.Post}}
	for _, st := range stages {
		for i, op := range st.ops {
			if int(op.Kind) >= int(numOpKinds) {
				return fmt.Errorf("fuzzgen: %s op %d: invalid kind %d", st.name, i, uint8(op.Kind))
			}
			inBounds := func(a, s uint64) bool { return a+s >= a && a+s <= p.PoolSize }
			switch op.Kind {
			case OpStore, OpNTStore, OpCLWB, OpCLFlush, OpLoad, OpTxAdd, OpRegCommitVar:
				if !inBounds(op.Addr, op.Size) {
					return fmt.Errorf("fuzzgen: %s op %d (%s): range [0x%x, 0x%x) outside pool of size 0x%x",
						st.name, i, op.Kind, op.Addr, op.Addr+op.Size, p.PoolSize)
				}
			case OpRegCommitRange:
				if !inBounds(op.Addr, op.Size) || !inBounds(op.Addr2, op.Size2) {
					return fmt.Errorf("fuzzgen: %s op %d (%s): range outside pool of size 0x%x",
						st.name, i, op.Kind, p.PoolSize)
				}
			}
			switch op.Kind {
			case OpRegCommitVar, OpRegCommitRange:
				r := reg{op.Addr, op.Size, op.Addr2, op.Size2}
				if st.name == "post" && !seen[r] {
					return fmt.Errorf("fuzzgen: post op %d (%s) registers a commit variable not registered pre-failure; "+
						"post-failure registrations must be idempotent replays", i, op.Kind)
				}
				seen[r] = true
			}
		}
	}
	return nil
}

// OpIP is the synthetic source location attached to the i-th op of a stage.
// Each op gets a distinct location, so every generated operation has its
// own identity in report deduplication keys — exactly like distinct source
// lines in a real program.
func OpIP(stage string, i int) string {
	return fmt.Sprintf("fuzzgen/%s.go:%d", stage, i+1)
}

// rng is a splitmix64 generator: tiny, fast, and — unlike the global
// math/rand state — fully determined by its explicit seed, so every
// generated program is reproducible from its `-seed=N` line alone.
type rng struct{ s uint64 }

func newRng(seed int64, domain string) *rng {
	// Mix the domain (knob name) into the seed with FNV-1a so each knob
	// explores a different program sequence for the same seed numbers.
	h := uint64(14695981039346656037)
	for i := 0; i < len(domain); i++ {
		h ^= uint64(domain[i])
		h *= 1099511628211
	}
	return &rng{s: uint64(seed) ^ h}
}

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// pct reports true with probability p/100.
func (r *rng) pct(p int) bool { return r.intn(100) < p }
