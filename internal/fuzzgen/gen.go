package fuzzgen

import "fmt"

// Knob selects the bug-class bias of the generator. Every knob mixes raw
// persistency sequences, commit-variable protocols and undo-log
// transactions; the knob only shifts the probabilities of the seeded
// mistakes, so each campaign concentrates on one class of discrepancy
// while still exercising the full detector surface.
type Knob string

const (
	// KnobClean generates programs with no seeded correctness bugs:
	// every store is flushed and fenced, every commit protocol is the
	// correct two-barrier form, every transaction writes back on commit.
	// (Accidental performance bugs — e.g. two stores to one cache line
	// flushed twice — can still occur and must match the oracle.)
	KnobClean Knob = "clean"
	// KnobDroppedFlush frequently omits the CLWB after a store.
	KnobDroppedFlush Knob = "dropped-flush"
	// KnobDroppedFence frequently omits the SFENCE after writebacks.
	KnobDroppedFence Knob = "dropped-fence"
	// KnobReadBeforePersist leaves trailing unpersisted stores at the end
	// of the pre-failure stage and makes the post-failure stage read every
	// range ever written.
	KnobReadBeforePersist Knob = "read-before-persist"
	// KnobStaleCommit generates mostly commit-variable protocols, most of
	// them broken (commit write never persisted, data and commit persisted
	// by one barrier, data modified outside the commit window).
	KnobStaleCommit Knob = "stale-commit"
	// KnobMixed enables every mistake at moderate probability.
	KnobMixed Knob = "mixed"
)

// Knobs returns all generator knobs, in campaign order.
func Knobs() []Knob {
	return []Knob{KnobClean, KnobDroppedFlush, KnobDroppedFence,
		KnobReadBeforePersist, KnobStaleCommit, KnobMixed}
}

// genCfg holds the per-knob probabilities (percentages).
type genCfg struct {
	dropFlush   int // omit the writeback after a raw store
	dropFence   int // omit the fence closing a raw/tx block
	commitBlock int // a pre block is a commit-variable protocol
	txBlock     int // a pre block is an undo-log transaction
	staleCommit int // a commit block uses a broken protocol variant
	trailing    int // unfenced stores at the very end of the pre stage
	dupAdd      int // duplicate TX_ADD inside a transaction
	strayFlush  int // flush of a random (possibly unmodified) range
	outsideTx   int // store outside the TX_ADDed range while in tx
	postWrite   int // a post op overwrites a range before reading it
	postLoadAll int // post loads every range ever written
	nested      int // nested (flat-committed) inner transaction
}

func knobConfig(k Knob) genCfg {
	switch k {
	case KnobClean:
		return genCfg{commitBlock: 25, txBlock: 30, strayFlush: 10, postWrite: 10, postLoadAll: 30}
	case KnobDroppedFlush:
		return genCfg{dropFlush: 35, commitBlock: 15, txBlock: 25, strayFlush: 10, postWrite: 10, postLoadAll: 40}
	case KnobDroppedFence:
		return genCfg{dropFence: 40, commitBlock: 15, txBlock: 25, strayFlush: 10, postWrite: 10, postLoadAll: 40}
	case KnobReadBeforePersist:
		return genCfg{dropFlush: 15, dropFence: 15, trailing: 80, commitBlock: 10, txBlock: 20, postLoadAll: 100}
	case KnobStaleCommit:
		return genCfg{commitBlock: 70, staleCommit: 70, txBlock: 10, postWrite: 5, postLoadAll: 60}
	case KnobMixed:
		return genCfg{dropFlush: 20, dropFence: 20, commitBlock: 25, txBlock: 25, staleCommit: 40,
			trailing: 25, dupAdd: 15, strayFlush: 15, outsideTx: 20, postWrite: 15, postLoadAll: 30, nested: 10}
	default:
		return knobConfig(KnobMixed)
	}
}

// Generated-program address map (all well inside the 4 KiB pool):
//
//	0x000–0x0FF  raw-store region (4 cache lines)
//	0x100–0x1FF  transactional region (4 cache lines)
//	0x200–0x27F  commit-protocol data region (one line per variable)
//	0x280–0x2FF  commit variables (8 bytes each, one line apart)
//
// Raw ranges are small (1–16 bytes) and unaligned on purpose, so stores and
// flushes regularly straddle cache-line boundaries.
const (
	genPoolSize = 4096
	rawBase     = 0x000
	rawSpan     = 4 * 64
	txBase      = 0x100
	txSpan      = 4 * 64
	cvDataBase  = 0x200
	cvVarBase   = 0x280
)

type span struct{ addr, size uint64 }

type cvar struct {
	varAddr  uint64
	dataAddr uint64
	dataSize uint64
}

// Generate produces the deterministic program for (seed, knob). The same
// pair always yields the identical program, op for op.
func Generate(seed int64, knob Knob) Program {
	r := newRng(seed, string(knob))
	cfg := knobConfig(knob)
	p := Program{
		Name:     fmt.Sprintf("fuzz-%s-seed%d", knob, seed),
		PoolSize: genPoolSize,
	}
	g := &gen{r: r, cfg: cfg, p: &p}

	// Commit variables are registered in Setup only: the parallel engine's
	// equivalence contract requires every variable to predate the first
	// failure point (post-failure registrations are then idempotent
	// replays; see Program.Validate).
	if cfg.commitBlock > 0 {
		n := 1 + r.intn(2)
		for i := 0; i < n; i++ {
			v := cvar{
				varAddr:  cvVarBase + uint64(i)*64,
				dataAddr: cvDataBase + uint64(i)*64,
				dataSize: uint64(8 + r.intn(3)*8),
			}
			g.vars = append(g.vars, v)
			g.emitSetup(Op{Kind: OpRegCommitVar, Addr: v.varAddr, Size: 8})
			g.emitSetup(Op{Kind: OpRegCommitRange, Addr: v.varAddr, Size: 8,
				Addr2: v.dataAddr, Size2: v.dataSize})
		}
	}
	// A little persisted pre-existing data.
	for i, n := 0, r.intn(3); i < n; i++ {
		s := g.randRaw()
		g.emitSetup(Op{Kind: OpStore, Addr: s.addr, Size: s.size})
		g.emitSetup(Op{Kind: OpCLWB, Addr: s.addr, Size: s.size})
		g.emitSetup(Op{Kind: OpFence})
		g.written = append(g.written, s)
	}
	if r.pct(20) {
		// Dirt left behind by setup: no failure points are injected during
		// setup, but its unpersisted stores carry into the first one.
		s := g.randRaw()
		g.emitSetup(Op{Kind: OpStore, Addr: s.addr, Size: s.size})
		g.written = append(g.written, s)
	}

	nBlocks := 3 + r.intn(5)
	for b := 0; b < nBlocks; b++ {
		roll := r.intn(100)
		switch {
		case len(g.vars) > 0 && roll < cfg.commitBlock:
			g.commitBlock()
		case roll < cfg.commitBlock+cfg.txBlock:
			g.txBlock()
		default:
			g.rawBlock()
		}
	}
	if r.pct(cfg.trailing) {
		// Trailing stores with no closing barrier: only the final failure
		// point (injected at the end of the RoI) sees them unpersisted.
		for i, n := 0, 1+r.intn(2); i < n; i++ {
			s := g.randRaw()
			g.emitPre(Op{Kind: OpStore, Addr: s.addr, Size: s.size})
			g.written = append(g.written, s)
		}
	}

	g.genPost()
	return p
}

type gen struct {
	r         *rng
	cfg       genCfg
	p         *Program
	vars      []cvar
	written   []span // every range stored so far (setup + pre)
	redirtied []span // spans re-stored after their writeback (still dirty)
}

func (g *gen) emitSetup(op Op) { g.p.Setup = append(g.p.Setup, op) }
func (g *gen) emitPre(op Op)   { g.p.Pre = append(g.p.Pre, op) }
func (g *gen) emitPost(op Op)  { g.p.Post = append(g.p.Post, op) }

func (g *gen) randRaw() span {
	size := uint64(1 + g.r.intn(16))
	addr := rawBase + uint64(g.r.intn(int(rawSpan-size)+1))
	return span{addr, size}
}

func (g *gen) randTx() span {
	size := uint64(8 + g.r.intn(25))
	addr := txBase + uint64(g.r.intn(int(txSpan-size)+1))
	return span{addr, size}
}

// rawBlock emits 1–3 stores, their writebacks (each possibly dropped), an
// optional stray flush, and a closing fence (possibly dropped). With some
// probability it re-dirties part of a just-written-back span before the
// fence — the classic update-after-writeback mistake, which demotes a
// uniformly writeback-pending cache line to mixed state — and a later
// block then writes the still-dirty span back again (a useful flush,
// unless a fence wrongly persisted the re-modified bytes).
func (g *gen) rawBlock() {
	if len(g.redirtied) > 0 && g.r.pct(50) {
		i := g.r.intn(len(g.redirtied))
		s := g.redirtied[i]
		g.redirtied = append(g.redirtied[:i], g.redirtied[i+1:]...)
		g.emitPre(Op{Kind: OpCLWB, Addr: s.addr, Size: s.size})
	}
	n := 1 + g.r.intn(3)
	var stores []span
	for i := 0; i < n; i++ {
		s := g.randRaw()
		kind := OpStore
		if g.r.pct(15) {
			kind = OpNTStore // writeback-pending immediately; no flush needed
		}
		g.emitPre(Op{Kind: kind, Addr: s.addr, Size: s.size})
		g.written = append(g.written, s)
		if kind == OpStore {
			stores = append(stores, s)
		}
	}
	var flushed []span
	for _, s := range stores {
		if g.r.pct(g.cfg.dropFlush) {
			continue
		}
		kind := OpCLWB
		if g.r.pct(20) {
			kind = OpCLFlush
		}
		g.emitPre(Op{Kind: kind, Addr: s.addr, Size: s.size})
		flushed = append(flushed, s)
	}
	if len(flushed) > 0 && g.r.pct(25) {
		f := flushed[g.r.intn(len(flushed))]
		rd := span{f.addr, uint64(1 + g.r.intn(int(f.size)))}
		g.emitPre(Op{Kind: OpStore, Addr: rd.addr, Size: rd.size})
		g.written = append(g.written, rd)
		g.redirtied = append(g.redirtied, rd)
	}
	if g.r.pct(g.cfg.strayFlush) {
		s := g.randRaw()
		g.emitPre(Op{Kind: OpCLWB, Addr: s.addr, Size: s.size})
	}
	if !g.r.pct(g.cfg.dropFence) {
		g.emitPre(Op{Kind: OpFence})
	}
}

// commitBlock emits one round of a commit-variable protocol. Variant 0 is
// the correct two-barrier form (persist the data, then write and persist
// the commit variable); the others are the stale-commit mistakes of §3.2
// and Fig. 11.
func (g *gen) commitBlock() {
	v := g.vars[g.r.intn(len(g.vars))]
	size := uint64(1 + g.r.intn(int(v.dataSize)))
	off := uint64(g.r.intn(int(v.dataSize-size) + 1))
	data := span{v.dataAddr + off, size}
	g.written = append(g.written, data, span{v.varAddr, 8})

	variant := 0
	if g.r.pct(g.cfg.staleCommit) {
		variant = 1 + g.r.intn(4)
	}
	st := func(s span) Op { return Op{Kind: OpStore, Addr: s.addr, Size: s.size} }
	wb := func(s span) Op { return Op{Kind: OpCLWB, Addr: s.addr, Size: s.size} }
	cv := span{v.varAddr, 8}
	switch variant {
	case 0: // correct: persist data, then persist the commit write
		g.emitPre(st(data))
		g.emitPre(wb(data))
		g.emitPre(Op{Kind: OpFence})
		g.emitPre(st(cv))
		g.emitPre(wb(cv))
		g.emitPre(Op{Kind: OpFence})
	case 1: // commit write never persisted
		g.emitPre(st(data))
		g.emitPre(wb(data))
		g.emitPre(Op{Kind: OpFence})
		g.emitPre(st(cv))
	case 2: // data and commit write persisted by the same barrier (Fig. 11 F2)
		g.emitPre(st(data))
		g.emitPre(st(cv))
		g.emitPre(wb(data))
		g.emitPre(wb(cv))
		g.emitPre(Op{Kind: OpFence})
	case 3: // data modified outside the commit window
		g.emitPre(st(cv))
		g.emitPre(wb(cv))
		g.emitPre(Op{Kind: OpFence})
		g.emitPre(st(data))
		g.emitPre(wb(data))
		g.emitPre(Op{Kind: OpFence})
	case 4: // data never written back at all (a race, not a semantic bug)
		g.emitPre(st(data))
		g.emitPre(st(cv))
		g.emitPre(wb(cv))
		g.emitPre(Op{Kind: OpFence})
	}
}

// txBlock emits one undo-log transaction: TX_ADD, stores into the added
// range, commit (or abort), and the pmobj-style commit writeback (flush the
// added lines, fence) — each piece subject to the knob's mistakes.
func (g *gen) txBlock() {
	added := g.randTx()
	g.emitPre(Op{Kind: OpTxBegin})
	g.emitPre(Op{Kind: OpTxAdd, Addr: added.addr, Size: added.size})
	n := 1 + g.r.intn(3)
	for i := 0; i < n; i++ {
		size := uint64(1 + g.r.intn(int(added.size)))
		off := uint64(g.r.intn(int(added.size-size) + 1))
		s := span{added.addr + off, size}
		g.emitPre(Op{Kind: OpStore, Addr: s.addr, Size: s.size})
		g.written = append(g.written, s)
	}
	if g.r.pct(g.cfg.dupAdd) {
		g.emitPre(Op{Kind: OpTxAdd, Addr: added.addr, Size: added.size})
	}
	if g.r.pct(g.cfg.nested) {
		inner := g.randTx()
		g.emitPre(Op{Kind: OpTxBegin})
		g.emitPre(Op{Kind: OpTxAdd, Addr: inner.addr, Size: inner.size})
		g.emitPre(Op{Kind: OpStore, Addr: inner.addr, Size: 8})
		g.written = append(g.written, span{inner.addr, 8})
		g.emitPre(Op{Kind: OpTxCommit})
	}
	var outside *span
	if g.r.pct(g.cfg.outsideTx) {
		// A store the transaction did not TX_ADD: unprotected however the
		// transaction ends.
		s := g.randTx()
		g.emitPre(Op{Kind: OpStore, Addr: s.addr, Size: s.size})
		g.written = append(g.written, s)
		outside = &s
	}
	aborted := g.r.pct(12)
	if aborted {
		g.emitPre(Op{Kind: OpTxAbort})
		if g.r.pct(50) {
			g.emitPre(Op{Kind: OpFence})
		}
		return
	}
	g.emitPre(Op{Kind: OpTxCommit})
	if !g.r.pct(g.cfg.dropFlush) {
		g.emitPre(Op{Kind: OpCLWB, Addr: added.addr, Size: added.size})
		if outside != nil && g.r.pct(50) {
			g.emitPre(Op{Kind: OpCLWB, Addr: outside.addr, Size: outside.size})
		}
		if !g.r.pct(g.cfg.dropFence) {
			g.emitPre(Op{Kind: OpFence})
		}
	}
}

// genPost emits the post-failure stage: mostly loads of previously written
// ranges (every one a classification decision), plus overwrite-then-read
// sequences, loads of never-written memory, idempotent commit-variable
// re-registrations, and the occasional flush/fence noise the checker must
// ignore.
func (g *gen) genPost() {
	loadOf := func(s span) Op { return Op{Kind: OpLoad, Addr: s.addr, Size: s.size} }
	pick := func() span {
		if len(g.written) == 0 {
			return span{rawBase, 8}
		}
		return g.written[g.r.intn(len(g.written))]
	}
	n := 3 + g.r.intn(6)
	for i := 0; i < n; i++ {
		switch roll := g.r.intn(100); {
		case roll < g.cfg.postWrite:
			s := pick()
			g.emitPost(Op{Kind: OpStore, Addr: s.addr, Size: s.size})
			g.emitPost(loadOf(s))
		case roll < g.cfg.postWrite+10:
			// Never-written (or only partially written) memory: reads of
			// unmodified bytes are always consistent.
			size := uint64(1 + g.r.intn(24))
			addr := uint64(g.r.intn(int(0x2C0 - size)))
			g.emitPost(Op{Kind: OpLoad, Addr: addr, Size: size})
		case roll < g.cfg.postWrite+18 && len(g.vars) > 0:
			// Recovery re-registers its commit variables (idempotent).
			v := g.vars[g.r.intn(len(g.vars))]
			g.emitPost(Op{Kind: OpRegCommitVar, Addr: v.varAddr, Size: 8})
			g.emitPost(Op{Kind: OpRegCommitRange, Addr: v.varAddr, Size: 8,
				Addr2: v.dataAddr, Size2: v.dataSize})
			g.emitPost(loadOf(span{v.varAddr, 8}))
		case roll < g.cfg.postWrite+23:
			// Flush/fence noise: carries no checking semantics post-failure.
			s := pick()
			g.emitPost(Op{Kind: OpCLWB, Addr: s.addr, Size: s.size})
			g.emitPost(Op{Kind: OpFence})
		default:
			g.emitPost(loadOf(pick()))
		}
	}
	if g.r.pct(g.cfg.postLoadAll) {
		for _, s := range g.written {
			g.emitPost(loadOf(s))
		}
	}
}
