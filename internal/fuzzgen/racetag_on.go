//go:build race

package fuzzgen

// raceEnabled reports whether this build runs under the Go race detector.
// See racetag_off.go for why the stale-fork-page mutation tests consult it.
const raceEnabled = true
