//go:build !race

package fuzzgen

// raceEnabled reports whether this build runs under the Go race detector
// (see racetag_on.go for the -race counterpart). The stale-fork-page shadow
// mutant deliberately breaks the copy-on-write privatization discipline, so
// the canonical shadow and worker forks really do race on shared pages;
// the tests that enable it must skip under -race, where the detector would
// (correctly) abort the process before the differential check could flag
// the divergence.
const raceEnabled = false
