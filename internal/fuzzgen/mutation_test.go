package fuzzgen

import (
	"errors"
	"testing"

	"github.com/pmemgo/xfdetector/internal/shadow"
)

// TestSoundnessMutationCaught proves the differential suite has teeth.
// It seeds a deliberate soundness bug into internal/shadow — CLWB
// treated as immediately persistent instead of waiting for the fence —
// and requires the suite to catch it. If the oracle merely co-evolved
// with the shadow FSM, this test would pass the mutant and fail here.
//
// Must not run in parallel with other tests: the mutation switch is a
// package-level toggle in internal/shadow.
func TestSoundnessMutationCaught(t *testing.T) {
	const n = 40
	// Sanity: the unmutated detector agrees with the oracle on every
	// seed we are about to mutate against.
	for seed := int64(0); seed < n; seed++ {
		if err := CheckSeed(seed, KnobDroppedFence); err != nil {
			t.Fatalf("pre-mutation sanity failed: %v", err)
		}
	}

	shadow.SetUnsoundFlushForTest(true)
	defer shadow.SetUnsoundFlushForTest(false)

	caught := 0
	var firstMiss *Mismatch
	for seed := int64(0); seed < n; seed++ {
		err := CheckSeed(seed, KnobDroppedFence)
		var m *Mismatch
		if errors.As(err, &m) {
			caught++
			if firstMiss == nil {
				firstMiss = m
			}
		} else if err != nil {
			t.Fatalf("seed %d: non-mismatch error under mutation: %v", seed, err)
		}
	}
	if caught == 0 {
		t.Fatalf("seeded CLWB soundness mutation went undetected on all %d seeds", n)
	}
	t.Logf("seeded CLWB soundness mutation caught on %d/%d dropped-fence seeds", caught, n)

	// The minimizer must shrink a genuine mismatch while keeping it a
	// mismatch (exercised here because mutants are the only reliable
	// source of failing programs in a passing tree).
	big := firstMiss.Program
	small := Minimize(big)
	if got, want := opCount(small), opCount(big); got > want {
		t.Fatalf("Minimize grew the program: %d ops -> %d ops", want, got)
	}
	var m *Mismatch
	if err := CheckProgram(small); !errors.As(err, &m) {
		t.Fatalf("minimized program no longer mismatches: %v", err)
	}
}

func opCount(p Program) int { return len(p.Setup) + len(p.Pre) + len(p.Post) }
