package fuzzgen

import (
	"fmt"
	"sort"

	"github.com/pmemgo/xfdetector/internal/core"
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/shadow"
)

// The brute-force oracle.
//
// This file re-derives the detector's expected verdicts from the paper's
// definitions alone, sharing no logic with internal/shadow (which it
// exists to check — shadow is imported only for the PerfBugKind report
// constants). The key difference is HOW a cross-failure race is decided:
//
// internal/shadow runs a per-byte persistence FSM and flags any read of a
// byte whose state is not Persisted. The oracle instead enumerates, for
// each byte a post-failure stage reads, every crash image reachable at the
// failure point: a crash may cut off writebacks anywhere, so each subset
// of the not-yet-guaranteed ("at-risk") stores to that byte may or may not
// have reached the medium, subject to persist order — a store's value
// survives iff the line was evicted after it, in which case every earlier
// store to the byte is superseded. The byte's reachable values are thus
// {max(S)} over the subsets S of at-risk stores (plus the persisted floor
// for S = ∅). The read races exactly when this outcome set has more than
// one element — the from-first-principles form of the paper's
// ¬(Wx ≤p F) condition. The enumeration is exponential in the number of
// at-risk stores per byte, which generated programs keep tiny.
//
// Everything else — epochs, Eq. 3 commit-variable consistency, undo-log
// protection, performance bugs, failure-point elision — is reimplemented
// independently from §3–§5 of the paper so that any disagreement between
// the two codebases surfaces as a differential failure.

// maxEnum caps the per-byte subset enumeration; beyond it the outcome set
// trivially has >1 element (there is at least one at-risk store, and the
// floor differs from it).
const maxEnum = 14

// EvalOpts parameterizes an oracle evaluation.
type EvalOpts struct {
	// DisableElision mirrors Config.DisableFailurePointElision: inject a
	// failure point before every pre-failure fence, even when no PM
	// operation happened since the previous one.
	DisableElision bool
}

// OracleResult is the oracle's prediction of a ModeDetect core.Run.
type OracleResult struct {
	// Keys are the sorted report deduplication keys (core.Report.DedupKey)
	// the run must produce — races, semantic bugs and performance bugs.
	Keys []string
	// FailurePoints and PostRuns predict the run's counters (equal, since
	// generated targets always have a post-failure stage).
	FailurePoints int
	PostRuns      int
	// Benign is the total benign commit-variable bytes read post-failure,
	// summed over all failure points.
	Benign uint64
	// OpEntries counts the trace entries announced by the program's setup
	// and pre ops alone; PreEntries adds one FailurePoint marker per
	// injected failure point. PostEntries is ops-per-post-run times runs.
	OpEntries   int
	PreEntries  int
	PostEntries int
	// PostReads are the predicted post-failure load digests — one sorted
	// "fp<k>.<i>:<hex>" entry per non-empty post load per failure point,
	// the exact shape of PostReadLog.Canonical. They pin footnote 3 of
	// the paper: the image a post-failure stage runs on contains the
	// *latest* pre-failure bytes, persisted or not, so the predicted
	// value of a byte is its last store's pattern (or 0 if never
	// written), overridden by post-failure stores earlier in the stage.
	PostReads []string
}

// Evaluate predicts the outcome of running p under ModeDetect.
func Evaluate(p Program, opts EvalOpts) (*OracleResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := newOracle(p, opts)
	for i, op := range p.Setup {
		if err := o.step("setup", i, op, false); err != nil {
			return nil, err
		}
	}
	for i, op := range p.Pre {
		if err := o.step("pre", i, op, true); err != nil {
			return nil, err
		}
	}
	// The final failure point at the end of the RoI: injected whenever any
	// PM operation ever ran, elided or not.
	if o.opsEver > 0 {
		if err := o.failurePoint(); err != nil {
			return nil, err
		}
	}
	keys := make([]string, 0, len(o.keys))
	for k := range o.keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sort.Strings(o.postReads)
	return &OracleResult{
		Keys:          keys,
		FailurePoints: o.fps,
		PostRuns:      o.fps,
		Benign:        o.benign,
		OpEntries:     o.opEntries,
		PreEntries:    o.opEntries + o.fps,
		PostEntries:   o.fps * len(p.Post),
		PostReads:     o.postReads,
	}, nil
}

// owrite is one commit write: the epochs of its store and its persist.
type owrite struct{ w, p uint32 }

// ovar is the oracle's commit-variable record (Eq. 3 state).
type ovar struct {
	addr, size uint64
	last, prev owrite
	n          int
	pending    bool
}

type oassoc struct {
	varIdx     int
	addr, size uint64
}

// Per-byte persistence states, tracked only as the oracle's own
// self-check against the enumeration (see raced).
const (
	oU = iota // never written
	oM        // written, writeback not requested
	oW        // writeback requested, not yet fenced
	oP        // guaranteed persisted
)

type oracle struct {
	p    Program
	opts EvalOpts
	size uint64

	state        []uint8
	writeEpoch   []uint32
	persistEpoch []uint32
	last         []int32   // ordinal of the last store to the byte; -1 none
	floor        []int32   // ordinal of the last store guaranteed on-medium
	atRisk       [][]int32 // stores after the floor, oldest first
	storeIPs     []string  // ordinal → synthetic source location

	txSafe      []bool
	addedGen    []uint32
	explicitGen []uint32
	txDepth     int
	txGen       uint32
	curTx       []span

	vars   []*ovar
	assocs []oassoc

	clock      uint32
	opsSinceFP int
	opsEver    int
	fps        int
	benign     uint64
	opEntries  int
	keys       map[string]struct{}
	postReads  []string
}

func newOracle(p Program, opts EvalOpts) *oracle {
	n := p.PoolSize
	o := &oracle{
		p:            p,
		opts:         opts,
		size:         n,
		state:        make([]uint8, n),
		writeEpoch:   make([]uint32, n),
		persistEpoch: make([]uint32, n),
		last:         make([]int32, n),
		floor:        make([]int32, n),
		atRisk:       make([][]int32, n),
		txSafe:       make([]bool, n),
		addedGen:     make([]uint32, n),
		explicitGen:  make([]uint32, n),
		clock:        1,
		keys:         map[string]struct{}{},
	}
	for b := range o.last {
		o.last[b] = -1
		o.floor[b] = -1
	}
	return o
}

func (o *oracle) addKey(r core.Report) { o.keys[r.DedupKey()] = struct{}{} }

// step replays one op of the setup or pre stage. inject enables failure
// points (the pre stage); setup is traced and counted but never failed.
func (o *oracle) step(stage string, i int, op Op, inject bool) error {
	o.opEntries++ // every op announces exactly one trace entry
	ip := OpIP(stage, i)
	switch op.Kind {
	case OpFence:
		if inject && (o.opsSinceFP > 0 || o.opts.DisableElision) {
			// The failure point fires immediately BEFORE the fence takes
			// effect: the state it tests is the unfenced one.
			if err := o.failurePoint(); err != nil {
				return err
			}
		}
		o.fence()
		return nil
	case OpStore:
		o.countOp()
		o.store(i, op.Addr, op.Size, ip, false)
	case OpNTStore:
		o.countOp()
		o.store(i, op.Addr, op.Size, ip, true)
	case OpCLWB, OpCLFlush:
		o.countOp()
		o.flush(op.Addr, op.Size, ip)
	case OpTxAdd:
		o.countOp()
		o.txAdd(op.Addr, op.Size, ip)
	case OpTxBegin:
		o.txDepth++
		if o.txDepth == 1 {
			o.txGen++
		}
	case OpTxCommit, OpTxAbort:
		if o.txDepth > 0 {
			o.txDepth--
		}
		if o.txDepth == 0 {
			for _, r := range o.curTx {
				for b := r.addr; b < r.addr+r.size; b++ {
					o.txSafe[b] = false
				}
			}
			o.curTx = o.curTx[:0]
		}
	case OpRegCommitVar:
		o.registerVar(op.Addr, op.Size)
	case OpRegCommitRange:
		idx := o.registerVar(op.Addr, op.Size)
		for _, a := range o.assocs {
			if a.varIdx == idx && a.addr == op.Addr2 && a.size == op.Size2 {
				return nil
			}
		}
		o.assocs = append(o.assocs, oassoc{varIdx: idx, addr: op.Addr2, size: op.Size2})
	case OpLoad:
		// Pre-failure loads are traced but carry no persistence meaning.
	}
	return nil
}

// countOp tracks the §5.4 elision counters: only PM-state-changing ops
// (stores, writebacks, TX_ADDs) make the next failure interval non-empty.
func (o *oracle) countOp() {
	o.opsSinceFP++
	o.opsEver++
}

// ordinal returns the next store ordinal and records its source location.
func (o *oracle) ordinal(ip string) int32 {
	o.storeIPs = append(o.storeIPs, ip)
	return int32(len(o.storeIPs) - 1)
}

func (o *oracle) store(opIdx int, addr, size uint64, ip string, nt bool) {
	if size == 0 {
		return
	}
	ord := o.ordinal(ip)
	st := uint8(oM)
	if nt {
		st = oW
	}
	inTx := o.txDepth > 0
	for b := addr; b < addr+size; b++ {
		o.state[b] = st
		o.writeEpoch[b] = o.clock
		o.last[b] = ord
		o.atRisk[b] = append(o.atRisk[b], ord)
		if o.txSafe[b] && (!inTx || o.addedGen[b] != o.txGen) {
			// Writing outside any transaction — or inside one that did not
			// TX_ADD the byte — voids the undo-log protection.
			o.txSafe[b] = false
		}
	}
	o.noteCommitWrites(addr, addr+size)
}

func (o *oracle) flush(addr, size uint64, ip string) {
	start := pmem.LineDown(addr)
	limit := pmem.LineUp(addr + size)
	if limit > o.size {
		limit = o.size
	}
	useful := false
	for b := start; b < limit; b++ {
		if o.state[b] == oM {
			o.state[b] = oW
			useful = true
		}
	}
	if !useful {
		// A writeback that moves no byte out of Modified is the redundant
		// writeback of Fig. 9's yellow edges.
		o.addKey(core.Report{Class: core.Performance, ReaderIP: ip, PerfKind: shadow.RedundantFlush})
	}
}

func (o *oracle) fence() {
	for b := uint64(0); b < o.size; b++ {
		if o.state[b] == oW {
			o.state[b] = oP
			o.persistEpoch[b] = o.clock
			// The last store is now guaranteed on the medium; every older
			// pending value for this byte is superseded for good.
			o.floor[b] = o.last[b]
			o.atRisk[b] = o.atRisk[b][:0]
		}
	}
	for _, cv := range o.vars {
		if !cv.pending {
			continue
		}
		all := true
		for b := cv.addr; b < cv.addr+cv.size && b < o.size; b++ {
			if o.state[b] != oP {
				all = false
				break
			}
		}
		if all {
			cv.last.p = o.clock
			cv.pending = false
		}
	}
	o.clock++
}

func (o *oracle) txAdd(addr, size uint64, ip string) {
	if size == 0 || o.txDepth == 0 {
		// An empty or out-of-transaction TX_ADD protects nothing.
		return
	}
	dup := true
	for b := addr; b < addr+size; b++ {
		if o.explicitGen[b] != o.txGen {
			dup = false
		}
		o.addedGen[b] = o.txGen
		o.explicitGen[b] = o.txGen
		o.txSafe[b] = true
	}
	o.curTx = append(o.curTx, span{addr, size})
	if dup {
		o.addKey(core.Report{Class: core.Performance, ReaderIP: ip, PerfKind: shadow.DuplicateTxAdd})
	}
}

func (o *oracle) registerVar(addr, size uint64) int {
	for i, cv := range o.vars {
		if cv.addr == addr && cv.size == size {
			return i
		}
	}
	o.vars = append(o.vars, &ovar{addr: addr, size: size})
	return len(o.vars) - 1
}

func (o *oracle) noteCommitWrites(addr, end uint64) {
	for _, cv := range o.vars {
		if cv.addr >= end || addr >= cv.addr+cv.size {
			continue
		}
		if cv.pending && cv.last.w == o.clock {
			// Stores to the variable within one epoch persist atomically at
			// the same fence; only the last value matters.
			continue
		}
		cv.prev = cv.last
		cv.last = owrite{w: o.clock}
		cv.n++
		cv.pending = true
	}
}

func (o *oracle) inVar(b uint64) bool {
	for _, cv := range o.vars {
		if b >= cv.addr && b < cv.addr+cv.size {
			return true
		}
	}
	return false
}

func (o *oracle) assocFor(b uint64) *ovar {
	for _, a := range o.assocs {
		if b >= a.addr && b < a.addr+a.size {
			return o.vars[a.varIdx]
		}
	}
	return nil
}

// raced decides by brute force whether reading byte b post-failure is a
// cross-failure race: enumerate every persist-order-respecting subset of
// the at-risk stores and collect the byte's reachable medium values. More
// than one reachable value means the read is not determined — a race.
//
// The enumeration is cross-checked against the oracle's own persistence
// FSM (raced ⇔ state ≠ Persisted for a written byte); a disagreement is an
// oracle bug and fails the evaluation loudly rather than polluting the
// differential verdict.
func (o *oracle) raced(b uint64) (bool, error) {
	ar := o.atRisk[b]
	var enum bool
	if len(ar) > maxEnum {
		// Too many pending stores to enumerate — but any at-risk store
		// already yields two reachable values (with and without it).
		enum = true
	} else {
		outcomes := map[int32]struct{}{}
		for mask := 0; mask < 1<<len(ar); mask++ {
			eff := o.floor[b]
			for i, ord := range ar {
				if mask&(1<<i) != 0 && ord > eff {
					eff = ord
				}
			}
			outcomes[eff] = struct{}{}
		}
		enum = len(outcomes) > 1
	}
	fsm := o.state[b] != oP && o.state[b] != oU
	if enum != fsm {
		return false, fmt.Errorf("fuzzgen: oracle self-check failed at byte 0x%x: enumeration says raced=%v, FSM state %d disagrees", b, enum, o.state[b])
	}
	return enum, nil
}

// eq3Consistent is the oracle's independent Eq. 3 evaluation for a
// persisted byte associated with commit variable cv: the byte must have
// been last modified between the last two commit writes in persist order.
func eq3Consistent(cv *ovar, writeEpoch, persistEpoch uint32) bool {
	if cv.n == 0 {
		// No commit write yet: the mechanism is not in play; persistence
		// alone governs.
		return true
	}
	// W[m] ≤p C[x,n]: the byte persisted strictly before the last commit
	// write's store epoch.
	if persistEpoch >= cv.last.w {
		return false
	}
	if cv.n < 2 {
		return true
	}
	if cv.prev.p == 0 {
		// The previous commit write never persisted; it orders nothing.
		return false
	}
	// C[x,n-1] ≤p W[m].
	return cv.prev.p < writeEpoch
}

// failurePoint simulates one injected failure: the post-failure stage runs
// on the crash image family frozen at this instant, and every load is
// classified byte by byte.
func (o *oracle) failurePoint() error {
	o.fps++
	o.opsSinceFP = 0
	fp := o.fps - 1 // the engine numbers failure points from 0
	postWritten := map[uint64]bool{}
	postVal := map[uint64]byte{}
	checked := map[uint64]bool{}
	for i, op := range o.p.Post {
		switch op.Kind {
		case OpStore, OpNTStore:
			// Post-failure writes overwrite the old data: the range is
			// consistent for the rest of this post-failure run, and later
			// loads observe the store's pattern byte.
			for b := op.Addr; b < op.Addr+op.Size; b++ {
				postWritten[b] = true
				postVal[b] = postStoreValue(i)
			}
		case OpLoad:
			ip := OpIP("post", i)
			for b := op.Addr; b < op.Addr+op.Size; b++ {
				if postWritten[b] || checked[b] {
					continue
				}
				checked[b] = true
				if err := o.classifyRead(b, ip); err != nil {
					return err
				}
			}
			if op.Size > 0 {
				o.postReads = append(o.postReads,
					fmt.Sprintf("fp%d.%d:%x", fp, i, o.predictLoad(op, postVal)))
			}
			// Other post ops (writebacks, fences, transaction markers,
			// idempotent re-registrations) carry no checking semantics.
		}
	}
	return nil
}

// predictLoad computes the exact bytes a post-failure load observes:
// footnote 3 of the paper says the post image is a copy of the full PM
// image at the failure point — including data not guaranteed persisted —
// so each byte carries its last pre-failure store's pattern (0 if never
// stored), unless a post store earlier in the stage overwrote it.
func (o *oracle) predictLoad(op Op, postVal map[uint64]byte) []byte {
	buf := make([]byte, op.Size)
	for j := range buf {
		b := op.Addr + uint64(j)
		switch {
		case postVal[b] != 0:
			buf[j] = postVal[b]
		case o.last[b] >= 0:
			buf[j] = preStoreValue(int(o.last[b]))
		}
	}
	return buf
}

// classifyRead classifies one first-read of byte b in a post-failure run,
// in the paper's §5.4 order: unmodified, commit variable (benign),
// undo-log protected, then the race enumeration, then Eq. 3.
func (o *oracle) classifyRead(b uint64, readerIP string) error {
	if o.last[b] < 0 {
		return nil // never written pre-failure: no cross-failure bug possible
	}
	if o.inVar(b) {
		o.benign++
		return nil
	}
	if o.txSafe[b] {
		return nil
	}
	raced, err := o.raced(b)
	if err != nil {
		return err
	}
	writer := o.storeIPs[o.last[b]]
	if raced {
		o.addKey(core.Report{Class: core.CrossFailureRace, ReaderIP: readerIP, WriterIP: writer})
		return nil
	}
	if cv := o.assocFor(b); cv != nil {
		if !eq3Consistent(cv, o.writeEpoch[b], o.persistEpoch[b]) {
			o.addKey(core.Report{Class: core.CrossFailureSemantic, ReaderIP: readerIP, WriterIP: writer})
		}
	}
	return nil
}
