package ckpt

import (
	"errors"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/core"
)

// TestForEachLine: unbounded line reads — one line far past any scanner
// buffer survives intact, a final unterminated fragment is delivered, and
// a callback error aborts the scan.
func TestForEachLine(t *testing.T) {
	huge := strings.Repeat("x", 3<<20)
	input := "a\n" + huge + "\nb" // "b" has no trailing newline
	var got []string
	if err := ForEachLine(strings.NewReader(input), func(line string) error {
		got = append(got, line)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "a" || got[1] != huge || got[2] != "b" {
		lens := make([]int, len(got))
		for i, s := range got {
			lens[i] = len(s)
		}
		t.Errorf("got %d lines with lengths %v, want [1 %d 1]", len(got), lens, len(huge))
	}

	calls := 0
	errAbort := errors.New("abort")
	err := ForEachLine(strings.NewReader("a\nb\nc\n"), func(string) error {
		calls++
		return errAbort
	})
	if err == nil || calls != 1 {
		t.Errorf("callback error did not abort the scan (err=%v, calls=%d)", err, calls)
	}
}

// TestTruncate: display truncation marks the cut; short lines and the
// parse paths (max <= 0) pass through untouched.
func TestTruncate(t *testing.T) {
	if got := Truncate("short", 100); got != "short" {
		t.Errorf("short line truncated to %q", got)
	}
	if got := Truncate("abcdef", 0); got != "abcdef" {
		t.Errorf("max=0 must mean no cap, got %q", got)
	}
	got := Truncate("abcdef", 3)
	if !strings.HasPrefix(got, "abc") || !strings.Contains(got, "3 byte(s) truncated") {
		t.Errorf("Truncate(abcdef, 3) = %q", got)
	}
}

// TestReadTornTail: only an unparseable final line is the torn-write
// case; corruption with intact lines after it is an error that names the
// line.
func TestReadTornTail(t *testing.T) {
	lines, err := Read(strings.NewReader("{\"fp\":0}\n{\"fp\":1,\"repor"), "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0].FP != 0 {
		t.Errorf("torn tail: got %v, want just fp 0", lines)
	}

	_, err = Read(strings.NewReader("{\"fp\":0}\n@@damaged\n{\"fp\":2}\n"), "test")
	if err == nil {
		t.Fatal("mid-stream corruption read without error")
	}
	if !strings.Contains(err.Error(), "test:2:") {
		t.Errorf("error %q does not locate the corrupt line", err)
	}
}

// TestSummaryRoundTrip: the summary line carries the full bucket
// accounting and the pre-failure reports, and folding it back preserves
// both the invariant inputs and the total.
func TestSummaryRoundTrip(t *testing.T) {
	res := &core.Result{
		FailurePoints:           10,
		PostRuns:                4,
		PrunedFailurePoints:     3,
		OtherShardFailurePoints: 1,
		ResumedFailurePoints:    1,
		SkippedFailurePoints:    1,
		CrashStateClasses:       4,
		AbandonedPostRuns:       2,
		Reports: []core.Report{
			{Class: core.Performance, ReaderIP: "p.go:1", FailurePoint: -1},
			{Class: core.CrossFailureRace, ReaderIP: "r.go:1", WriterIP: "w.go:2", FailurePoint: 3},
		},
	}
	line := Summary(res, 2)
	if !line.IsSummary() {
		t.Fatal("summary line does not identify as one")
	}
	if got := line.PostRuns + line.Pruned + line.OtherShard + line.Resumed + line.Skipped; got != line.Total {
		t.Errorf("summary buckets sum to %d, total is %d", got, line.Total)
	}
	if line.Abandoned != 2 || line.Classes != 4 {
		t.Errorf("summary carries abandoned=%d classes=%d, want 2 and 4", line.Abandoned, line.Classes)
	}
	if len(line.Reports) != 1 || line.Reports[0].FailurePoint != -1 {
		t.Errorf("summary reports = %v, want only the pre-failure one", line.Reports)
	}

	d, err := Fold([]Line{line}, "test")
	if err != nil {
		t.Fatal(err)
	}
	if d.Total != 10 || len(d.Done) != 0 || len(d.Seed) != 1 {
		t.Errorf("folded summary: total=%d done=%v seeds=%d", d.Total, d.Done, len(d.Seed))
	}
}

// mkSummary builds a summary line with the given buckets (total is their
// sum, upholding the writer invariant).
func mkSummary(postRuns, pruned, resumed, skipped int) Line {
	return Line{
		FP:       SummaryFP,
		Total:    postRuns + pruned + resumed + skipped,
		PostRuns: postRuns, Pruned: pruned, Resumed: resumed, Skipped: skipped,
	}
}

// TestMergerBucketAccounting: the merged Result sums the per-source
// summary buckets instead of fabricating PostRuns from the covered-point
// count, and the bucket invariant holds on the union.
func TestMergerBucketAccounting(t *testing.T) {
	m := NewMerger()
	// Shard 0 post-ran fps 0 and 3, pruned nothing.
	for _, fp := range []int{0, 3} {
		if err := m.Add("s0", Line{FP: fp}); err != nil {
			t.Fatal(err)
		}
	}
	s0 := mkSummary(2, 0, 0, 0)
	s0.Total = 6
	s0.Skipped = 0
	s0.OtherShard = 4 // delegated to shard 1; the union owns them
	if err := m.Add("s0", s0); err != nil {
		t.Fatal(err)
	}
	// Shard 1 post-ran 1 and 4, pruned 2 and 5 (their lines still appear).
	for _, fp := range []int{1, 4, 2, 5} {
		if err := m.Add("s1", Line{FP: fp}); err != nil {
			t.Fatal(err)
		}
	}
	s1 := mkSummary(2, 2, 0, 0)
	s1.Total = 6
	s1.OtherShard = 2
	if err := m.Add("s1", s1); err != nil {
		t.Fatal(err)
	}

	res := m.Result("test")
	if res.Incomplete {
		t.Fatalf("full union came out incomplete: %s", res.IncompleteReason)
	}
	if res.PostRuns != 4 || res.PrunedFailurePoints != 2 {
		t.Errorf("merged buckets: post-runs=%d pruned=%d, want 4 and 2 (summed, not fabricated)",
			res.PostRuns, res.PrunedFailurePoints)
	}
	if res.OtherShardFailurePoints != 0 {
		t.Errorf("merged other-shard = %d, want 0 (a union has no other shards)", res.OtherShardFailurePoints)
	}
	if got := res.BucketedFailurePoints(); got != res.FailurePoints {
		t.Errorf("bucket invariant broken on the union: buckets sum to %d, %d failure points",
			got, res.FailurePoints)
	}
}

// TestMergerLastSummaryWins: a resumed completion appends a second
// summary for the same source; only the final incarnation's accounting
// counts, or the buckets would double.
func TestMergerLastSummaryWins(t *testing.T) {
	m := NewMerger()
	for fp := 0; fp < 3; fp++ {
		if err := m.Add("s0", Line{FP: fp}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Add("s0", mkSummary(3, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	// The resumed re-verification: all three points now Resumed.
	if err := m.Add("s0", mkSummary(0, 0, 3, 0)); err != nil {
		t.Fatal(err)
	}
	res := m.Result("test")
	if res.PostRuns != 0 || res.ResumedFailurePoints != 3 {
		t.Errorf("post-runs=%d resumed=%d, want 0 and 3 (last summary wins)", res.PostRuns, res.ResumedFailurePoints)
	}
	if got := res.BucketedFailurePoints(); got != res.FailurePoints {
		t.Errorf("bucket invariant broken: %d buckets, %d failure points", got, res.FailurePoints)
	}
}

// TestMergerLegacyFallback: checkpoints from before the bucket fields (or
// sources that never completed) parse as all-zero buckets; their covered
// points fall back to PostRuns — each has a durably recorded post-run —
// and points covered by nobody land in Skipped with Incomplete set.
func TestMergerLegacyFallback(t *testing.T) {
	m := NewMerger()
	for _, fp := range []int{0, 1} {
		if err := m.Add("s0", Line{FP: fp}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Add("s0", Line{FP: SummaryFP, Total: 4}); err != nil { // legacy: no buckets
		t.Fatal(err)
	}
	res := m.Result("test")
	if res.PostRuns != 2 {
		t.Errorf("legacy covered points = %d post-runs, want 2", res.PostRuns)
	}
	if !res.Incomplete || res.SkippedFailurePoints != 2 {
		t.Errorf("missing points: incomplete=%v skipped=%d, want true and 2", res.Incomplete, res.SkippedFailurePoints)
	}
	if got := res.BucketedFailurePoints(); got != res.FailurePoints {
		t.Errorf("bucket invariant broken: %d buckets, %d failure points", got, res.FailurePoints)
	}
}

// TestMergerMixedEraCheckpoints: a legacy bucket-less, fingerprint-less
// checkpoint merged with a new-era one carrying fingerprints and the
// cross-shard/cache-hit buckets must still satisfy the coverage invariant;
// a gap in the union must still come out Incomplete (the CLI's exit 3)
// regardless of which era covered the surrounding points.
func TestMergerMixedEraCheckpoints(t *testing.T) {
	mixed := func(coverNewEra []int) *Merger {
		m := NewMerger()
		// Legacy shard: per-point lines without fingerprints, summary
		// without buckets (pre-PR 8 wire format).
		for _, fp := range []int{0, 2} {
			if err := m.Add("legacy", Line{FP: fp}); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Add("legacy", Line{FP: SummaryFP, Total: 6}); err != nil {
			t.Fatal(err)
		}
		// New-era shard: fingerprint-bearing lines, full buckets including
		// the verdict-sharing ones.
		for _, fp := range coverNewEra {
			if err := m.Add("new", Line{FP: fp, FPrint: 0xdeadbeef + uint64(fp)}); err != nil {
				t.Fatal(err)
			}
		}
		s := Line{FP: SummaryFP, Total: 6, PostRuns: 1, Pruned: 1,
			CrossShard: 1, CacheHits: 1, OtherShard: 2}
		if err := m.Add("new", s); err != nil {
			t.Fatal(err)
		}
		return m
	}

	res := mixed([]int{1, 3, 4, 5}).Result("test")
	if res.Incomplete {
		t.Fatalf("full mixed-era union came out incomplete: %s", res.IncompleteReason)
	}
	if res.CrossShardPrunedFailurePoints != 1 || res.CacheHitFailurePoints != 1 {
		t.Errorf("merged verdict buckets: cross-shard=%d cache-hits=%d, want 1 and 1",
			res.CrossShardPrunedFailurePoints, res.CacheHitFailurePoints)
	}
	// Legacy's 2 covered points are unaccounted by its bucket-less summary
	// and fall back to PostRuns: 1 (new) + 2 (fallback) = 3.
	if res.PostRuns != 3 {
		t.Errorf("merged post-runs = %d, want 3 (1 summed + 2 legacy fallback)", res.PostRuns)
	}
	if got := res.BucketedFailurePoints(); got != res.FailurePoints {
		t.Errorf("bucket invariant broken on the mixed-era union: buckets sum to %d, %d failure points",
			got, res.FailurePoints)
	}

	// Same merge with failure point 4 missing: a gap is a gap in any era.
	res = mixed([]int{1, 3, 5}).Result("test")
	if !res.Incomplete {
		t.Fatal("mixed-era union with a gap came out complete")
	}
	if got := res.BucketedFailurePoints(); got != res.FailurePoints {
		t.Errorf("bucket invariant broken on the incomplete union: buckets sum to %d, %d failure points",
			got, res.FailurePoints)
	}
}

// TestSummaryCarriesVerdictBuckets: the fp=-1 summary round-trips the
// cross-shard and cache-hit buckets and keeps the extended invariant.
func TestSummaryCarriesVerdictBuckets(t *testing.T) {
	res := &core.Result{
		FailurePoints:                 12,
		PostRuns:                      3,
		PrunedFailurePoints:           2,
		CrossShardPrunedFailurePoints: 4,
		CacheHitFailurePoints:         2,
		ResumedFailurePoints:          1,
	}
	line := Summary(res, 3)
	if line.CrossShard != 4 || line.CacheHits != 2 {
		t.Fatalf("summary carries cross_shard=%d cache_hits=%d, want 4 and 2", line.CrossShard, line.CacheHits)
	}
	sum := line.PostRuns + line.Pruned + line.CrossShard + line.CacheHits +
		line.OtherShard + line.Resumed + line.Skipped
	if sum != line.Total {
		t.Fatalf("extended summary buckets sum to %d, total is %d", sum, line.Total)
	}
}

// TestMergerTotalConflict: sources whose summaries disagree on the
// failure-point total ran different campaigns.
func TestMergerTotalConflict(t *testing.T) {
	m := NewMerger()
	if err := m.Add("s0", Line{FP: SummaryFP, Total: 5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("s1", Line{FP: SummaryFP, Total: 7}); err == nil {
		t.Fatal("disagreeing totals merged without error")
	}
}

// TestMergerDedup: the union deduplicates reports by key across sources
// in first-seen order.
func TestMergerDedup(t *testing.T) {
	m := NewMerger()
	rep := core.Report{Class: core.CrossFailureRace, ReaderIP: "r.go:1", WriterIP: "w.go:2", FailurePoint: 0}
	dup := rep
	dup.FailurePoint = 1 // same dedup key (location pair), later sighting
	other := core.Report{Class: core.CrossFailureRace, ReaderIP: "r.go:9", WriterIP: "w.go:2", FailurePoint: 1}
	if err := m.Add("s0", Line{FP: 0, Reports: []core.Report{rep}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("s1", Line{FP: 1, Reports: []core.Report{dup, other}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Reports(); len(got) != 2 || got[0].FailurePoint != 0 {
		t.Errorf("dedup union = %v, want [first sighting, other]", got)
	}
	if m.Covered() != 2 {
		t.Errorf("covered = %d, want 2", m.Covered())
	}
}
