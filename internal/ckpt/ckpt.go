// Package ckpt is the checkpoint wire format shared by the CLI and the
// distributed campaign service: one JSON object per line, appended as each
// failure point's post-run completes, with a summary line (fp == -1)
// recording the campaign's failure-point total and its per-bucket
// accounting once the campaign completes.
//
// The same JSONL stream serves three roles: the on-disk crash-recovery
// checkpoint (-checkpoint/-resume), the merge input (-merge and the -spawn
// orchestrator), and the wire format a -worker streams back to a -serve
// daemon line by line. Parsing is therefore deliberately forgiving about
// exactly one thing — a torn trailing line, the write a crash interrupted —
// and strict about everything else.
package ckpt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/pmemgo/xfdetector/internal/core"
)

// SummaryFP marks the summary line; real failure points are 0-based.
const SummaryFP = -1

// Line is one checkpoint record. Per-point lines (FP >= 0) carry the
// reports first observed at that failure point; the summary line
// (FP == SummaryFP) carries the campaign totals, the pre-failure reports
// (fp < 0, i.e. performance bugs from the trace replay), and the
// per-bucket failure-point accounting that lets a merge reconstruct an
// honest Result instead of fabricating one from the covered-point count.
type Line struct {
	FP      int           `json:"fp"`
	Reports []core.Report `json:"reports,omitempty"`
	// FPrint is the failure point's crash-state fingerprint, set on
	// per-point lines by pruning runs (zero under -no-prune and on legacy
	// checkpoints, both of which still parse). The -serve daemon uses it
	// to correlate streamed verdicts across a campaign's shards.
	FPrint uint64 `json:"fpr,omitempty"`
	// Total and Shards are only set on the summary line: the campaign's
	// failure-point count and the shard layout that wrote it (0 when the
	// campaign was not sharded).
	Total  int `json:"total,omitempty"`
	Shards int `json:"shards,omitempty"`
	// ShadowPeakBytes and ShadowPages are only set on the summary line:
	// the run's peak shadow-PM footprint and cumulative 4 KiB shadow page
	// allocations (zero under -dense-shadow, whose flat arrays appear only
	// in the byte peak). Older checkpoints without them still parse.
	ShadowPeakBytes uint64 `json:"shadow_peak_bytes,omitempty"`
	ShadowPages     uint64 `json:"shadow_pages,omitempty"`
	// Classes and Pruned are only set on the summary line: how many
	// crash-state classes the run actually post-ran and how many member
	// failure points it skipped as duplicates (both zero under -no-prune).
	// Pruned points still write their per-point line, so coverage proofs
	// are unaffected.
	Classes int `json:"classes,omitempty"`
	Pruned  int `json:"pruned,omitempty"`
	// The remaining disjoint failure-point buckets of the writing run,
	// only set on the summary line: together with Pruned they satisfy
	// PostRuns + Pruned + OtherShard + Resumed + Skipped == Total, the
	// invariant every run upholds, so a merge can sum real buckets
	// instead of guessing. Abandoned post-runs are a subset of PostRuns
	// (each also reports a PostFailureFault), carried for visibility.
	// Checkpoints from before these fields parse as all-zero buckets; the
	// merger then falls back to attributing covered points to PostRuns.
	PostRuns   int `json:"post_runs,omitempty"`
	OtherShard int `json:"other_shard,omitempty"`
	Resumed    int `json:"resumed,omitempty"`
	Skipped    int `json:"skipped,omitempty"`
	Abandoned  int `json:"abandoned,omitempty"`
	// CrossShard and CacheHits extend the bucket invariant for verdict
	// sharing: failure points attributed from another shard's clean class
	// representative (the -serve registry) and from a previous campaign's
	// on-disk verdict cache. PostRuns + Pruned + CrossShard + CacheHits +
	// OtherShard + Resumed + Skipped == Total.
	CrossShard int `json:"cross_shard,omitempty"`
	CacheHits  int `json:"cache_hits,omitempty"`
}

// IsSummary reports whether the line is a campaign-completion summary.
func (l Line) IsSummary() bool { return l.FP <= SummaryFP }

// Summary builds the completion summary line for a finished run: the
// failure-point total, the shard layout, the bucket accounting, and the
// pre-failure reports (fp < 0) that no per-point line carries.
func Summary(res *core.Result, shards int) Line {
	line := Line{
		FP:              SummaryFP,
		Total:           res.FailurePoints,
		Shards:          shards,
		ShadowPeakBytes: res.ShadowPeakBytes,
		ShadowPages:     res.ShadowPages,
		Classes:         res.CrashStateClasses,
		Pruned:          res.PrunedFailurePoints,
		PostRuns:        res.PostRuns,
		OtherShard:      res.OtherShardFailurePoints,
		Resumed:         res.ResumedFailurePoints,
		Skipped:         res.SkippedFailurePoints,
		Abandoned:       res.AbandonedPostRuns,
		CrossShard:      res.CrossShardPrunedFailurePoints,
		CacheHits:       res.CacheHitFailurePoints,
	}
	for _, rep := range res.Reports {
		if rep.FailurePoint < 0 {
			line.Reports = append(line.Reports, rep)
		}
	}
	return line
}

// ForEachLine reads r line by line with no length cap — bufio.Reader, not
// bufio.Scanner, whose fixed buffer turns one long line into ErrTooLong
// and silently ends the stream — invoking fn for each line without its
// trailing newline. A final unterminated fragment is delivered too. fn
// returning an error stops the scan and returns that error.
//
// This is the one line reader for every checkpoint stream: resume loads,
// merge loads, the worker streaming a shard's stdout to the daemon, and
// the orchestrator forwarding shard progress (which truncates for display
// with Truncate rather than capping the read).
func ForEachLine(r io.Reader, fn func(line string) error) error {
	br := bufio.NewReaderSize(r, 64<<10)
	for {
		line, err := br.ReadString('\n')
		if err == nil {
			if ferr := fn(strings.TrimSuffix(line, "\n")); ferr != nil {
				return ferr
			}
			continue
		}
		if line != "" {
			if ferr := fn(strings.TrimSuffix(line, "\n")); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		return err
	}
}

// Truncate caps s at max bytes for display, marking the cut instead of
// pretending the line ended there. Streams being forwarded for humans
// (shard progress) truncate; streams being parsed (checkpoint lines)
// never do.
func Truncate(s string, max int) string {
	if max <= 0 || len(s) <= max {
		return s
	}
	return fmt.Sprintf("%s … [%d byte(s) truncated]", s[:max], len(s)-max)
}

// Read parses a (possibly torn) checkpoint stream into its lines. Only a
// trailing line that does not parse — the write the crash interrupted —
// is discarded; a corrupt line with valid lines after it is mid-file
// damage, and silently dropping those valid lines would make a resumed or
// merged campaign under-count completed failure points, so it is an
// error. name labels error messages (a path, a shard, "<stdin>").
func Read(r io.Reader, name string) ([]Line, error) {
	var raw []string
	err := ForEachLine(r, func(line string) error {
		raw = append(raw, line)
		return nil
	})
	if err != nil {
		return nil, err
	}

	last := len(raw) - 1
	for last >= 0 && strings.TrimSpace(raw[last]) == "" {
		last--
	}
	var lines []Line
	for i, s := range raw {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		var l Line
		if err := json.Unmarshal([]byte(s), &l); err != nil {
			if i == last {
				break // torn tail from the crash; rerun from here
			}
			return nil, fmt.Errorf("%s:%d: corrupt checkpoint line before intact ones (not a torn tail): %v", name, i+1, err)
		}
		lines = append(lines, l)
	}
	return lines, nil
}

// ReadFile reads the named checkpoint; a missing file is an empty
// checkpoint (nothing recorded yet), not an error.
func ReadFile(path string) ([]Line, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f, path)
}

// Data is a folded checkpoint as resume consumes it: the completed
// failure points, every recorded report (per-point and pre-failure
// alike), and the failure-point total from the summary line (-1 when no
// campaign over this checkpoint completed yet).
type Data struct {
	Done  map[int]bool
	Seed  []core.Report
	Total int
}

// Fold collapses checkpoint lines into resume state. Disagreeing summary
// totals within one checkpoint mean two different campaigns wrote it —
// refusing is the only sound answer.
func Fold(lines []Line, name string) (Data, error) {
	d := Data{Done: make(map[int]bool), Total: -1}
	for _, l := range lines {
		if l.IsSummary() {
			if d.Total >= 0 && d.Total != l.Total {
				return Data{Total: -1}, fmt.Errorf("%s: summary lines disagree on the failure-point total (%d vs %d); refusing to mix campaigns", name, d.Total, l.Total)
			}
			d.Total = l.Total
			d.Seed = append(d.Seed, l.Reports...)
			continue
		}
		d.Done[l.FP] = true
		d.Seed = append(d.Seed, l.Reports...)
	}
	return d, nil
}

// SortedKeys returns the sorted deduplication keys of the reports — the
// stable fingerprint of a report set the equivalence tests and CI smoke
// steps diff between runs.
func SortedKeys(reports []core.Report) []string {
	keys := make([]string, len(reports))
	for i, r := range reports {
		keys[i] = r.DedupKey()
	}
	sort.Strings(keys)
	return keys
}

// KeysFileText renders sorted keys as the -keys-out file body. An empty
// set is an empty file: a lone newline would be byte-identical to a set
// holding one empty key.
func KeysFileText(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	return strings.Join(keys, "\n") + "\n"
}
