package ckpt

import (
	"fmt"

	"github.com/pmemgo/xfdetector/internal/core"
)

// Merger unions checkpoint lines from any number of sources (shard files
// for -merge and -spawn, live lease streams for the -serve daemon) into
// one deduplicated campaign result, incrementally: lines are added as
// they arrive and the merged view can be snapshotted at any point for
// live coverage accounting.
//
// Sharded campaigns run the identical deterministic pre-failure
// execution, so their checkpoints agree on failure-point numbering; the
// union of their per-point lines is the single-process campaign's report
// set once every failure point is covered. Coverage is decided against
// the summary lines: each completed (shard) campaign records the total
// failure-point count it observed, and the merge requires every point in
// [0, total) to be present.
//
// Accounting is summed from the per-source summary buckets, not
// fabricated from the covered-point count: a pruned member or a resumed
// point is covered but was never a post-run, and the merged Result must
// uphold the same PostRuns + Pruned + OtherShard + Resumed + Skipped ==
// FailurePoints invariant every single-process path does. Per source only
// the last summary counts — it is the final incarnation's accounting;
// earlier summaries in the same stream (a resumed completion re-verifying
// a finished campaign) describe superseded incarnations of the same
// points.
type Merger struct {
	seen    map[string]bool
	reports []core.Report
	done    map[int]bool
	total   int // -1 until a summary arrives
	sources map[string]*Line
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{
		seen:    make(map[string]bool),
		done:    make(map[int]bool),
		total:   -1,
		sources: make(map[string]*Line),
	}
}

// Add folds one checkpoint line from the named source (a shard index, a
// file path) into the union. Summary lines that disagree on the
// failure-point total describe different campaigns and are an error.
func (m *Merger) Add(source string, l Line) error {
	if l.IsSummary() {
		if m.total >= 0 && m.total != l.Total {
			return fmt.Errorf("failure-point total %d disagrees with %d from earlier checkpoints; these shards ran different campaigns", l.Total, m.total)
		}
		m.total = l.Total
		cp := l
		m.sources[source] = &cp
	} else {
		m.done[l.FP] = true
	}
	for _, rep := range l.Reports {
		if k := rep.DedupKey(); !m.seen[k] {
			m.seen[k] = true
			m.reports = append(m.reports, rep)
		}
	}
	return nil
}

// AddAll folds a source's lines in order.
func (m *Merger) AddAll(source string, lines []Line) error {
	for _, l := range lines {
		if err := m.Add(source, l); err != nil {
			return err
		}
	}
	return nil
}

// Covered returns the number of distinct failure points with a per-point
// line, and Total the campaign's failure-point count (-1 until some
// source completed).
func (m *Merger) Covered() int { return len(m.done) }
func (m *Merger) Total() int   { return m.total }

// Reports returns the deduplicated union in first-seen order.
func (m *Merger) Reports() []core.Report {
	return append([]core.Report(nil), m.reports...)
}

// Result snapshots the merged campaign. The failure-point buckets are the
// sums of the per-source summaries; covered points beyond what the
// summaries account for (sources whose final incarnation never completed,
// or pre-bucket legacy checkpoints) fall back to PostRuns — each such
// point's line was durably recorded by a real post-run — and points
// covered by nobody land in SkippedFailurePoints with Incomplete set.
// OtherShardFailurePoints is always 0: a merged campaign has no other
// shards; every delegated point is somebody's own point in the union.
func (m *Merger) Result(target string) *core.Result {
	res := &core.Result{
		Target:  target,
		Reports: m.Reports(),
	}
	accounted := 0
	for _, s := range m.sources {
		res.PostRuns += s.PostRuns
		res.PrunedFailurePoints += s.Pruned
		res.CrossShardPrunedFailurePoints += s.CrossShard
		res.CacheHitFailurePoints += s.CacheHits
		res.ResumedFailurePoints += s.Resumed
		res.SkippedFailurePoints += s.Skipped
		res.CrashStateClasses += s.Classes
		res.AbandonedPostRuns += s.Abandoned
		accounted += s.PostRuns + s.Pruned + s.CrossShard + s.CacheHits + s.Resumed
	}
	if extra := len(m.done) - accounted; extra > 0 {
		res.PostRuns += extra
	}

	maxFP := -1
	for fp := range m.done {
		if fp > maxFP {
			maxFP = fp
		}
	}
	switch {
	case m.total < 0:
		// No source finished its campaign, so the true failure-point count
		// is unknown; whatever was recorded cannot be shown complete.
		res.FailurePoints = maxFP + 1
		res.Incomplete = true
		res.IncompleteReason = "no checkpoint carries a completion summary; the campaign's failure-point total is unknown"
		res.SkippedFailurePoints += missingBelow(m.done, maxFP+1)
	default:
		res.FailurePoints = m.total
		switch {
		case maxFP >= m.total:
			// A per-point line outside [0, total) contradicts the summary:
			// these checkpoints describe different campaigns, and the
			// degenerate zero-total case must not read as full coverage.
			res.Incomplete = true
			res.IncompleteReason = fmt.Sprintf("checkpoint records failure point %d but the completion summary claims only %d; these checkpoints describe different campaigns", maxFP, m.total)
			res.SkippedFailurePoints += missingBelow(m.done, m.total)
		case missingBelow(m.done, m.total) > 0:
			res.Incomplete = true
			res.IncompleteReason = fmt.Sprintf("union covers %d of %d failure points", len(m.done), m.total)
			res.SkippedFailurePoints += missingBelow(m.done, m.total)
		}
	}
	return res
}

// missingBelow counts failure points in [0, n) absent from done.
func missingBelow(done map[int]bool, n int) int {
	missing := 0
	for fp := 0; fp < n; fp++ {
		if !done[fp] {
			missing++
		}
	}
	return missing
}
