package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// checkBuckets asserts the exact-accounting identity: every failure point
// lands in exactly one Result bucket.
func checkBuckets(t *testing.T, res *Result) {
	t.Helper()
	sum := res.PostRuns + res.PrunedFailurePoints + res.OtherShardFailurePoints +
		res.ResumedFailurePoints + res.SkippedFailurePoints
	if sum != res.FailurePoints {
		t.Errorf("bucket sum %d (post %d + pruned %d + other-shard %d + resumed %d + skipped %d) != failure points %d",
			sum, res.PostRuns, res.PrunedFailurePoints, res.OtherShardFailurePoints,
			res.ResumedFailurePoints, res.SkippedFailurePoints, res.FailurePoints)
	}
}

// TestFaultHooksPropagation pins the propagation contract documented on
// pmem.SetFaultHooks: fault hooks armed on the campaign's root pool reach
// every post-failure pool the frontend builds — the copy-on-write snapshot
// views, the full-copy ablation pools, and the views checked by parallel
// workers against shadow forks. A fault class arming only post-failure
// stages must therefore quarantine every failure point, in every engine
// mode, with exact accounting and zero false bug reports.
func TestFaultHooksPropagation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sequential-cow", Config{}},
		{"sequential-full-copy", Config{DisableIncrementalSnapshots: true}},
		{"parallel-forks", Config{Workers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var postConsults atomic.Int64
			hooks := &pmem.FaultHooks{Sink: func(e trace.Entry) error {
				if e.Stage == trace.PostFailure {
					postConsults.Add(1)
					return errors.New("post-failure pool lost its spool")
				}
				return nil
			}}
			cfg := tc.cfg
			cfg.DisablePerfBugs = true
			cfg.FaultHooks = hooks
			res, err := Run(cfg, spinMultiFPTarget("hook-propagation"))
			if err != nil {
				t.Fatal(err)
			}
			if res.FailurePoints == 0 {
				t.Fatal("target injected no failure points")
			}
			// Un-propagated hooks would let post-runs complete silently; the
			// contract requires every one to trip the armed class instead.
			if res.SkippedFailurePoints != res.FailurePoints {
				t.Errorf("skipped = %d, want all %d failure points quarantined",
					res.SkippedFailurePoints, res.FailurePoints)
			}
			// Retry-once-then-quarantine: each failure point's post stage is
			// attempted exactly twice, and each attempt's first post-failure
			// entry trips the hook.
			if got := postConsults.Load(); got != int64(2*res.FailurePoints) {
				t.Errorf("post-stage hook consultations = %d, want %d (two attempts per failure point)",
					got, 2*res.FailurePoints)
			}
			if !res.Incomplete || len(res.HarnessFaults) != res.FailurePoints {
				t.Errorf("want Incomplete with %d harness faults, got incomplete=%v faults=%v",
					res.FailurePoints, res.Incomplete, res.HarnessFaults)
			}
			if len(res.Reports) != 0 {
				t.Errorf("harness faults must never become bug reports:\n%s", res)
			}
			checkBuckets(t, res)
		})
	}
}

// TestQuarantineAccountingExact: with only some failure points quarantined,
// the survivors keep their post-runs and reports, and the buckets still
// partition the failure points exactly — sequential and parallel.
func TestQuarantineAccountingExact(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var calls atomic.Int64
			hooks := &pmem.FaultHooks{Snapshot: func() error {
				if n := calls.Add(1); n == 2 || n == 3 {
					return errors.New("copy exhausted")
				}
				return nil
			}}
			res, err := Run(Config{Workers: workers, DisablePerfBugs: true, FaultHooks: hooks},
				spinMultiFPTarget("partial-quarantine"))
			if err != nil {
				t.Fatal(err)
			}
			if res.SkippedFailurePoints != 1 {
				t.Fatalf("skipped = %d, want exactly 1:\n%s", res.SkippedFailurePoints, res)
			}
			if res.Count(CrossFailureRace) == 0 {
				t.Errorf("surviving failure points produced no reports:\n%s", res)
			}
			checkBuckets(t, res)
		})
	}
}
