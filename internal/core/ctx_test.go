package core

import (
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// TestAnnotationConditionAndStage: every Table 2 function is a no-op when
// its condition is false or its stage does not match.
func TestAnnotationConditionAndStage(t *testing.T) {
	target := Target{
		Name:        "cond-stage",
		ExplicitRoI: true,
		Pre: func(c *Ctx) error {
			p := c.Pool()
			// condition=false: RoI never opens, so no failure points.
			c.RoIBegin(false, trace.PreFailure)
			// wrong stage: still no effect.
			c.RoIBegin(true, trace.PostFailure)
			p.Store64(0, 1)
			p.Persist(0, 8)
			c.RoIEnd(false, trace.PreFailure)
			return nil
		},
		Post: func(c *Ctx) error {
			c.Pool().Load64(0)
			return nil
		},
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailurePoints != 0 {
		t.Errorf("failure points = %d, want 0 (RoI never active)", res.FailurePoints)
	}
}

// TestBothStagesMatchesEverywhere: trace.BothStages satisfies the stage
// check in both stages.
func TestBothStagesMatchesEverywhere(t *testing.T) {
	target := Target{
		Name:        "both-stages",
		ExplicitRoI: true,
		Pre: func(c *Ctx) error {
			c.RoIBegin(true, trace.BothStages)
			c.Pool().Store64(0, 1)
			c.Pool().Persist(0x40, 8) // barrier not covering 0x0
			c.RoIEnd(true, trace.BothStages)
			return nil
		},
		Post: func(c *Ctx) error {
			c.RoIBegin(true, trace.BothStages)
			c.Pool().Load64(0) // race, checked because RoI opened via BothStages
			c.RoIEnd(true, trace.BothStages)
			return nil
		},
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(CrossFailureRace) != 1 {
		t.Fatalf("races = %d, want 1:\n%s", res.Count(CrossFailureRace), res)
	}
}

// TestCtxAccessors covers the small informational methods.
func TestCtxAccessors(t *testing.T) {
	checked := false
	target := Target{
		Name: "accessors",
		Pre: func(c *Ctx) error {
			if c.Stage() != trace.PreFailure || c.FailurePoint() != -1 {
				t.Errorf("pre ctx: stage=%v fp=%d", c.Stage(), c.FailurePoint())
			}
			c.Pool().Store64(0, 1)
			c.Pool().Persist(0, 8)
			return nil
		},
		Post: func(c *Ctx) error {
			if c.Stage() != trace.PostFailure || c.FailurePoint() < 0 {
				t.Errorf("post ctx: stage=%v fp=%d", c.Stage(), c.FailurePoint())
			}
			checked = true
			return nil
		},
	}
	if _, err := Run(Config{DisablePerfBugs: true}, target); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("post stage never ran")
	}
}

// TestSetupErrors: harness-level failures surface as errors, not reports.
func TestSetupErrors(t *testing.T) {
	boom := Target{
		Name:  "setup-fail",
		Setup: func(c *Ctx) error { return errTest },
		Pre:   func(c *Ctx) error { return nil },
	}
	if _, err := Run(Config{}, boom); err == nil || !strings.Contains(err.Error(), "setup failed") {
		t.Fatalf("err = %v", err)
	}
	boom2 := Target{
		Name: "pre-fail",
		Pre:  func(c *Ctx) error { return errTest },
	}
	if _, err := Run(Config{}, boom2); err == nil || !strings.Contains(err.Error(), "pre-failure stage failed") {
		t.Fatalf("err = %v", err)
	}
	// Parallel mode must drain workers even when Pre fails.
	boom3 := Target{
		Name: "pre-fail-parallel",
		Pre: func(c *Ctx) error {
			c.Pool().Store64(0, 1)
			c.Pool().Persist(0, 8)
			return errTest
		},
		Post: func(c *Ctx) error { return nil },
	}
	if _, err := Run(Config{Workers: 2}, boom3); err == nil {
		t.Fatal("expected error from failing pre stage")
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "synthetic failure" }

// TestNoFailureInjectionDuringSetup: ordering points in Setup inject
// nothing (the artifact initializes the image before testing starts).
func TestNoFailureInjectionDuringSetup(t *testing.T) {
	target := Target{
		Name: "setup-quiet",
		Setup: func(c *Ctx) error {
			for i := 0; i < 5; i++ {
				c.Pool().Store64(uint64(i)*64, 1)
				c.Pool().Persist(uint64(i)*64, 8)
			}
			return nil
		},
		Pre:  func(c *Ctx) error { return nil },
		Post: func(c *Ctx) error { return nil },
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	// Only the final quiescent failure point (setup ops count as opsEver).
	if res.FailurePoints > 1 {
		t.Errorf("failure points = %d, want <= 1", res.FailurePoints)
	}
}

// TestReportFormatting pins the report rendering used throughout the docs.
func TestReportFormatting(t *testing.T) {
	r := Report{
		Class: CrossFailureRace, Addr: 0x40, Size: 8,
		ReaderIP: "post.go:9", WriterIP: "pre.go:4", FailurePoint: 3,
	}
	s := r.String()
	for _, want := range []string{"CROSS-FAILURE RACE", "post.go:9", "pre.go:4", "0x40", "failure point 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q misses %q", s, want)
		}
	}
	p := Report{Class: Performance, ReaderIP: "x.go:1", Addr: 1, Size: 2}
	if !strings.Contains(p.String(), "redundant-writeback") {
		t.Errorf("perf report: %q", p.String())
	}
	f := Report{Class: PostFailureFault, Message: "pool exploded", FailurePoint: 7}
	if !strings.Contains(f.String(), "pool exploded") {
		t.Errorf("fault report: %q", f.String())
	}
	var unknown BugClass = 99
	if !strings.Contains(unknown.String(), "BugClass(99)") {
		t.Errorf("unknown class: %q", unknown.String())
	}
}

// TestModeStrings pins the mode names used in CLI flags.
func TestModeStrings(t *testing.T) {
	if ModeDetect.String() != "detect" || ModeTraceOnly.String() != "trace-only" ||
		ModeOriginal.String() != "original" {
		t.Error("mode names changed")
	}
}
