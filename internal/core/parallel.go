package core

import (
	"sync"
	"time"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/shadow"
)

// Parallel detection.
//
// §6.2.1 of the paper observes that the repeated post-failure execution is
// the dominant cost and that "the post-failure executions are independent
// as they operate on a copy of the original PM image, and therefore, can
// be parallelized. We leave the parallelized detection as a future work."
// This file implements that future work.
//
// With Config.Workers > 1, the fence hook no longer runs the post-failure
// stage inline. Instead it captures a work item — the failure point's id, a
// copy-on-write fork of the canonical shadow PM (shadow.PM.Fork), and a
// snapshot of the PM image — and hands it to one of W workers, sharded
// round-robin. The fork freezes the shadow exactly at the failure point:
// the pre-failure thread keeps advancing the one canonical shadow and
// privatizes any shared shadow page before mutating it, so total shadow
// work is O(trace + dirtied pages) instead of the W independent full-trace
// replays of the previous design, and shadow memory stays proportional to
// the touched bytes plus in-flight COW deltas. Each worker checks the
// post-failure execution of a copy-on-write view of the snapshot against
// its fork and releases the fork's page references when done. Every
// worker's queue is bounded, so at most a few snapshots and forks are in
// flight per worker and the pre-failure execution back-pressures instead
// of exhausting memory.
//
// Reports are deduplicated across workers by the same reader/writer key as
// in sequential mode, so the report set is identical; only discovery order
// may differ.

// fpWork is one failure point captured for asynchronous checking. fork is
// immutable shadow state as of the failure point (shared pages are
// privatized by whichever side writes first; see shadow/page.go). snap is
// shared under the analogous COW aliasing contract (pmem's snapshot.go):
// its pages may also back the root pool's next delta snapshot and other
// in-flight work items, and every reader treats them as immutable — each
// post-run attempt writes only through its own copy-on-write view.
type fpWork struct {
	id int
	// fpr is the failure point's crash-state fingerprint (zero when
	// pruning is disabled), threaded through to the checkpoint callback.
	fpr  uint64
	fork *shadow.PM
	snap *pmem.Snapshot
	// cls is non-nil when this failure point is the representative of a
	// crash-state class (prune.go): the worker resolves the class after the
	// post-run, pruning or running the members parked behind it.
	cls *crashClass
}

// parallelEngine coordinates the worker pool of one detection run.
type parallelEngine struct {
	r       *runner
	workers []*postWorker
	wg      sync.WaitGroup

	mu       sync.Mutex
	postTime time.Duration // summed wall time inside workers
	benign   uint64
	postEnts int
}

// postWorker checks the failure points of one shard.
type postWorker struct {
	eng   *parallelEngine
	queue chan fpWork
}

const workerQueueDepth = 2

func newParallelEngine(r *runner, workers int) *parallelEngine {
	eng := &parallelEngine{r: r}
	for i := 0; i < workers; i++ {
		w := &postWorker{
			eng:   eng,
			queue: make(chan fpWork, workerQueueDepth),
		}
		eng.workers = append(eng.workers, w)
		eng.wg.Add(1)
		go w.run()
	}
	return eng
}

// submit hands a failure point to its shard, blocking when the shard's
// queue is full (back-pressure on the pre-failure execution).
func (e *parallelEngine) submit(w fpWork) {
	e.workers[w.id%len(e.workers)].queue <- w
}

// close drains the workers and folds their statistics into the runner.
func (e *parallelEngine) close() {
	for _, w := range e.workers {
		close(w.queue)
	}
	e.wg.Wait()
	r := e.r
	r.postTime += e.postTime
	r.benign += e.benign
	r.postEntries += e.postEnts
}

func (w *postWorker) run() {
	defer w.eng.wg.Done()
	for item := range w.queue {
		start := time.Now()
		w.check(item)
		elapsed := time.Since(start)
		w.eng.mu.Lock()
		w.eng.postTime += elapsed
		w.eng.mu.Unlock()
	}
}

// check runs the post-failure stage against the item's shadow fork, with
// the same retry-once-then-quarantine and deadline-abandonment semantics
// as the sequential path. The snapshot was taken (with its own retry) at
// injection time; a worker-side retry builds a fresh copy-on-write view of
// it, dropping the faulted attempt's overlay, and re-checks against the
// same fork (BeginPostCheck renews the scratch generation). The fork is
// released afterwards so its shadow pages stop counting as live.
func (w *postWorker) check(item fpWork) {
	r := w.eng.r
	defer item.fork.Release()
	out, ok := r.runAttempts(item.id, func() postOutcome {
		return r.attemptPost(item.id, item.snap, item.fork)
	})
	if !ok {
		r.unspawnPostRun()
		r.resolveClass(item.cls, false, nil)
		return
	}
	w.eng.mu.Lock()
	w.eng.benign += out.benign
	w.eng.postEnts += out.ents
	w.eng.mu.Unlock()
	r.finishPost(item.id, item.fpr, out)
	r.resolveClass(item.cls, out.clean(), out.fresh)
}

// safePostCall runs the post-failure stage, converting panics into
// post-failure faults: a crashing recovery (the paper's segmentation-fault
// scenario in Fig. 1, or its Bug 4 failed pool open) is itself an
// observable cross-failure bug, as is one that spins past its operation
// budget.
func safePostCall(post func(*Ctx) error, ctx *Ctx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = classifyPostPanic(p)
		}
	}()
	return post(ctx)
}
