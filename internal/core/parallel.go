package core

import (
	"sync"
	"time"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// Parallel detection.
//
// §6.2.1 of the paper observes that the repeated post-failure execution is
// the dominant cost and that "the post-failure executions are independent
// as they operate on a copy of the original PM image, and therefore, can
// be parallelized. We leave the parallelized detection as a future work."
// This file implements that future work.
//
// With Config.Workers > 1, the fence hook no longer runs the post-failure
// stage inline. Instead it captures a work item — the failure point's id,
// the pre-failure trace position, and a snapshot of the PM image — and
// hands it to one of W workers, sharded round-robin so each worker sees its
// failure points in increasing trace order. Every worker owns a private
// shadow PM that it advances by replaying the shared pre-failure trace up
// to each item's position, reproducing exactly the state the sequential
// backend would have had; it then executes the post-failure stage on a
// copy-on-write view of the snapshot and checks it against that shadow.
// Each worker's queue is bounded, so at most a few snapshots are in flight
// per worker and the pre-failure execution back-pressures instead of
// exhausting memory.
//
// Reports are deduplicated across workers by the same reader/writer key as
// in sequential mode, so the report set is identical; only discovery order
// may differ.

// fpWork is one failure point captured for asynchronous checking. The
// entries slice is captured on the pre-failure thread: it aliases a stable
// prefix of the trace's backing array (appends only touch indices beyond
// it, or reallocate into a fresh array), so workers may read it freely.
// snap is shared under the analogous COW aliasing contract (pmem's
// snapshot.go): its pages may also back the root pool's next delta
// snapshot and other in-flight work items, and every reader treats them as
// immutable — each post-run attempt writes only through its own
// copy-on-write view.
type fpWork struct {
	id       int
	tracePos int
	entries  []trace.Entry
	snap     *pmem.Snapshot
}

// parallelEngine coordinates the worker pool of one detection run.
type parallelEngine struct {
	r       *runner
	workers []*postWorker
	wg      sync.WaitGroup

	mu       sync.Mutex
	postTime time.Duration // summed wall time inside workers
	benign   uint64
	postEnts int
}

// postWorker checks the failure points of one shard.
type postWorker struct {
	eng   *parallelEngine
	queue chan fpWork
	sh    *shadow.PM
	// replayed is the number of pre-failure trace entries already applied
	// to this worker's shadow.
	replayed int
}

const workerQueueDepth = 2

func newParallelEngine(r *runner, workers int) *parallelEngine {
	eng := &parallelEngine{r: r}
	for i := 0; i < workers; i++ {
		w := &postWorker{
			eng:   eng,
			queue: make(chan fpWork, workerQueueDepth),
			sh:    shadow.NewPM(r.pool.Size()),
		}
		eng.workers = append(eng.workers, w)
		eng.wg.Add(1)
		go w.run()
	}
	return eng
}

// submit hands a failure point to its shard, blocking when the shard's
// queue is full (back-pressure on the pre-failure execution).
func (e *parallelEngine) submit(w fpWork) {
	e.workers[w.id%len(e.workers)].queue <- w
}

// close drains the workers and folds their statistics into the runner.
func (e *parallelEngine) close() {
	for _, w := range e.workers {
		close(w.queue)
	}
	e.wg.Wait()
	r := e.r
	r.postTime += e.postTime
	r.benign += e.benign
	r.postEntries += e.postEnts
}

func (w *postWorker) run() {
	defer w.eng.wg.Done()
	for item := range w.queue {
		start := time.Now()
		w.check(item)
		elapsed := time.Since(start)
		w.eng.mu.Lock()
		w.eng.postTime += elapsed
		w.eng.mu.Unlock()
	}
}

// check advances the worker's shadow to the failure point and runs the
// post-failure stage against it, with the same retry-once-then-quarantine
// and deadline-abandonment semantics as the sequential path. The snapshot
// was taken (with its own retry) at injection time; a worker-side retry
// builds a fresh copy-on-write view of it, dropping the faulted attempt's
// overlay.
func (w *postWorker) check(item fpWork) {
	r := w.eng.r
	// Advance this worker's shadow to the failure point by replaying the
	// not-yet-seen part of the captured trace prefix.
	for _, e := range item.entries[w.replayed:] {
		w.sh.Apply(e)
	}
	w.replayed = item.tracePos

	out, ok := r.runAttempts(item.id, func() postOutcome {
		return r.attemptPost(item.id, item.snap, w.sh)
	})
	if !ok {
		return
	}
	w.eng.mu.Lock()
	w.eng.benign += out.benign
	w.eng.postEnts += out.ents
	w.eng.mu.Unlock()
	r.finishPost(item.id, out)
}

// safePostCall runs the post-failure stage, converting panics into
// post-failure faults: a crashing recovery (the paper's segmentation-fault
// scenario in Fig. 1, or its Bug 4 failed pool open) is itself an
// observable cross-failure bug, as is one that spins past its operation
// budget.
func safePostCall(post func(*Ctx) error, ctx *Ctx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = classifyPostPanic(p)
		}
	}()
	return post(ctx)
}
