package core

import (
	"sync"
	"time"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// Parallel detection.
//
// §6.2.1 of the paper observes that the repeated post-failure execution is
// the dominant cost and that "the post-failure executions are independent
// as they operate on a copy of the original PM image, and therefore, can
// be parallelized. We leave the parallelized detection as a future work."
// This file implements that future work.
//
// With Config.Workers > 1, the fence hook no longer runs the post-failure
// stage inline. Instead it captures a work item — the failure point's id,
// the pre-failure trace position, and a copy of the PM image — and hands
// it to one of W workers, sharded round-robin so each worker sees its
// failure points in increasing trace order. Every worker owns a private
// shadow PM that it advances by replaying the shared pre-failure trace up
// to each item's position, reproducing exactly the state the sequential
// backend would have had; it then executes the post-failure stage on the
// image copy and checks it against that shadow. Each worker's queue is
// bounded, so at most a few image copies are in flight per worker and the
// pre-failure execution back-pressures instead of exhausting memory.
//
// Reports are deduplicated across workers by the same reader/writer key as
// in sequential mode, so the report set is identical; only discovery order
// may differ.

// fpWork is one failure point captured for asynchronous checking. The
// entries slice is captured on the pre-failure thread: it aliases a stable
// prefix of the trace's backing array (appends only touch indices beyond
// it, or reallocate into a fresh array), so workers may read it freely.
type fpWork struct {
	id       int
	tracePos int
	entries  []trace.Entry
	image    []byte
}

// parallelEngine coordinates the worker pool of one detection run.
type parallelEngine struct {
	r       *runner
	workers []*postWorker
	wg      sync.WaitGroup

	mu       sync.Mutex
	postTime time.Duration // summed wall time inside workers
	benign   uint64
	postEnts int
}

// postWorker checks the failure points of one shard.
type postWorker struct {
	eng   *parallelEngine
	queue chan fpWork
	sh    *shadow.PM
	// replayed is the number of pre-failure trace entries already applied
	// to this worker's shadow.
	replayed int
}

const workerQueueDepth = 2

func newParallelEngine(r *runner, workers int) *parallelEngine {
	eng := &parallelEngine{r: r}
	for i := 0; i < workers; i++ {
		w := &postWorker{
			eng:   eng,
			queue: make(chan fpWork, workerQueueDepth),
			sh:    shadow.NewPM(r.pool.Size()),
		}
		eng.workers = append(eng.workers, w)
		eng.wg.Add(1)
		go w.run()
	}
	return eng
}

// submit hands a failure point to its shard, blocking when the shard's
// queue is full (back-pressure on the pre-failure execution).
func (e *parallelEngine) submit(w fpWork) {
	e.workers[w.id%len(e.workers)].queue <- w
}

// close drains the workers and folds their statistics into the runner.
func (e *parallelEngine) close() {
	for _, w := range e.workers {
		close(w.queue)
	}
	e.wg.Wait()
	r := e.r
	r.postTime += e.postTime
	r.benign += e.benign
	r.postEntries += e.postEnts
}

func (w *postWorker) run() {
	defer w.eng.wg.Done()
	for item := range w.queue {
		start := time.Now()
		w.check(item)
		elapsed := time.Since(start)
		w.eng.mu.Lock()
		w.eng.postTime += elapsed
		w.eng.mu.Unlock()
	}
}

// check advances the worker's shadow to the failure point and runs the
// post-failure stage against it, with the same retry-once-then-quarantine
// and deadline-abandonment semantics as the sequential path.
func (w *postWorker) check(item fpWork) {
	r := w.eng.r
	// Advance this worker's shadow to the failure point by replaying the
	// not-yet-seen part of the captured trace prefix.
	for _, e := range item.entries[w.replayed:] {
		w.sh.Apply(e)
	}
	w.replayed = item.tracePos

	out := w.attempt(item)
	if out.harness != nil {
		prevFresh := out.fresh
		out = w.attempt(item) // retry once
		if out.harness != nil {
			r.noteQuarantined(item.id, out.harness)
			return
		}
		out.fresh = append(prevFresh, out.fresh...)
	}
	w.eng.mu.Lock()
	w.eng.benign += out.benign
	w.eng.postEnts += out.entsRem
	w.eng.mu.Unlock()
	r.finishPost(item.id, out)
}

// attempt executes one post-failure run for the item's failure point,
// inline or — under Config.PostRunTimeout — on its own goroutine. After
// abandon() the runaway goroutine is gated away from the worker's shadow,
// so the worker may keep replaying and checking subsequent failure points.
func (w *postWorker) attempt(item fpWork) postOutcome {
	r := w.eng.r
	post := pmem.FromImage(r.pool.Name()+"@post", item.image)
	post.SetFaultHooks(r.cfg.FaultHooks)
	post.SetStage(trace.PostFailure)
	post.SetIPCapture(!r.cfg.DisableIPCapture)
	checker := w.sh.BeginPostCheck()
	sink := &parallelPostSink{eng: w.eng, checker: checker, fpID: item.id, sh: w.sh}
	ctx := &Ctx{r: r, pool: post, stage: trace.PostFailure, failurePoint: item.id}
	if r.target.ExplicitRoI {
		post.EnterSkipDetection()
		ctx.postOutsideRoI = true
	}
	if r.cfg.PostRunTimeout <= 0 {
		post.SetSink(sink)
		err := safePostCall(r.target.Post, ctx)
		return classifyPost(err, checker.Benign, sink.ents%64, sink.fresh)
	}
	gate := newPostGate()
	sink.gate = gate
	ctx.gate = gate
	post.SetSink(sink)
	done := make(chan error, 1)
	go func() { done <- safePostCall(r.target.Post, ctx) }()
	return awaitPost(r, gate, done, func(err error) postOutcome {
		return classifyPost(err, checker.Benign, sink.ents%64, sink.fresh)
	}, func() []Report { return sink.fresh })
}

// safePostCall mirrors runner.safePost for worker goroutines.
func safePostCall(post func(*Ctx) error, ctx *Ctx) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = classifyPostPanic(p)
		}
	}()
	return post(ctx)
}

// parallelPostSink is the worker-side postSink: identical classification,
// but reports flow through the engine mutex into the shared set.
type parallelPostSink struct {
	eng     *parallelEngine
	checker *shadow.PostChecker
	sh      *shadow.PM
	fpID    int
	ents    int
	// gate is non-nil on timed post-runs; fresh collects the reports this
	// post-run newly added (for checkpointing).
	gate  *postGate
	fresh []Report
}

// Record implements pmem.Sink. It runs on the goroutine executing the
// post-failure stage, so the operation budget unwinds that stage by
// panicking, exactly as in sequential mode.
func (s *parallelPostSink) Record(e trace.Entry) {
	if s.gate != nil {
		s.gate.enter()
		defer s.gate.mu.Unlock()
	}
	s.ents++
	if s.ents > s.eng.r.maxPostOps() {
		panic(postBudgetExceeded{ops: s.ents})
	}
	if s.ents%64 == 0 { // amortize the shared counter update
		s.eng.mu.Lock()
		s.eng.postEnts += 64
		s.eng.mu.Unlock()
	}
	switch e.Kind {
	case trace.Write, trace.NTStore:
		s.checker.OnWrite(e.Addr, e.Size)
	case trace.Read:
		if e.SkipDetection {
			return
		}
		for _, f := range s.checker.OnRead(e.Addr, e.Size) {
			class := CrossFailureRace
			if f.Class == shadow.ClassSemantic {
				class = CrossFailureSemantic
			}
			rep := Report{
				Class:        class,
				Addr:         f.Addr,
				Size:         f.Size,
				ReaderIP:     e.IP,
				WriterIP:     f.WriterIP,
				FailurePoint: s.fpID,
			}
			if s.eng.r.reports.add(rep) {
				s.fresh = append(s.fresh, rep)
			}
		}
	case trace.RegCommitVar, trace.RegCommitRange:
		// Worker-local: recovery re-registrations are idempotent and the
		// pre-failure trace already carries the originals.
		s.sh.Apply(e)
	}
}
