package core

import (
	"sort"
	"testing"
)

// sortedKeys returns the deduplication keys of a result's reports, sorted,
// so sequential and parallel runs can be compared independent of discovery
// order.
func sortedKeys(res *Result) []string {
	var keys []string
	for _, r := range res.Reports {
		keys = append(keys, r.key())
	}
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParallelEquivalence: parallel detection (§6.2.1's future work) must
// produce exactly the sequential report set, for clean and buggy targets
// alike.
func TestParallelEquivalence(t *testing.T) {
	targets := []func() Target{
		func() Target { return figure11Target("par-fig11") },
		figure2FixedTarget,
		func() Target {
			tg := figure2FixedTarget()
			tg.Name = "par-fig2-buggy"
			pre := tg.Pre
			tg.Pre = func(c *Ctx) error {
				c.Pool().Store64(0x700, 1) // extra unpersisted write
				if err := pre(c); err != nil {
					return err
				}
				c.Pool().Load64(0x700)
				return nil
			}
			post := tg.Post
			tg.Post = func(c *Ctx) error {
				c.Pool().Load64(0x700) // race
				return post(c)
			}
			return tg
		},
	}
	for _, mk := range targets {
		seq, err := Run(Config{}, mk())
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := Run(Config{Workers: workers}, mk())
			if err != nil {
				t.Fatal(err)
			}
			if !equalKeys(sortedKeys(seq), sortedKeys(par)) {
				t.Errorf("%s with %d workers: reports differ\nseq: %v\npar: %v",
					seq.Target, workers, seq.Reports, par.Reports)
			}
			if par.FailurePoints != seq.FailurePoints || par.PostRuns != seq.PostRuns {
				t.Errorf("%s with %d workers: failure points %d/%d vs sequential %d/%d",
					seq.Target, workers, par.FailurePoints, par.PostRuns,
					seq.FailurePoints, seq.PostRuns)
			}
			if par.BenignReads != seq.BenignReads {
				t.Errorf("%s with %d workers: benign %d vs %d",
					seq.Target, workers, par.BenignReads, seq.BenignReads)
			}
		}
	}
}

// TestParallelPostFault: worker-side post-failure crashes are reported and
// do not wedge the pool.
func TestParallelPostFault(t *testing.T) {
	target := Target{
		Name: "par-crash",
		Pre: func(c *Ctx) error {
			for i := 0; i < 8; i++ {
				c.Pool().Store64(uint64(i)*64, 1)
				c.Pool().Persist(uint64(i)*64, 8)
			}
			return nil
		},
		Post: func(c *Ctx) error {
			var s []int
			_ = s[1] // crash in every post run
			return nil
		},
	}
	res, err := Run(Config{Workers: 4, DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(PostFailureFault) != 1 {
		t.Fatalf("faults = %d, want 1 (deduplicated):\n%s", res.Count(PostFailureFault), res)
	}
	if res.PostRuns < 8 {
		t.Errorf("post runs = %d, want >= 8", res.PostRuns)
	}
}

// TestParallelTraceRetention: COW shadow forks freed parallel detection
// from replaying the trace in workers, so Workers > 1 no longer forces
// KeepTrace — and explicit retention still works alongside workers.
func TestParallelTraceRetention(t *testing.T) {
	res, err := Run(Config{Workers: 2}, figure11Target("par-trace"))
	if err != nil {
		t.Fatal(err)
	}
	if res.PreTrace() != nil {
		t.Fatal("parallel run retained the pre-failure trace without KeepTrace")
	}
	res, err = Run(Config{Workers: 2, KeepTrace: true}, figure11Target("par-trace-keep"))
	if err != nil {
		t.Fatal(err)
	}
	if res.PreTrace() == nil || res.PreTrace().Len() == 0 {
		t.Fatal("KeepTrace ignored in parallel mode")
	}
}

// TestForkWhileReplaying stresses the central memory-safety claim of the
// parallel engine: each fpWork carries a copy-on-write fork of the
// canonical shadow, whose pages the pre-failure thread keeps mutating —
// legally only after privatizing them — while workers concurrently read
// and scratch-write their forks. A long pre-failure stage (hundreds of
// ordering points repeatedly re-dirtying the same cache lines) maximizes
// the overlap between live forks and ongoing canonical-shadow updates, and
// the bounded worker queues keep several forks of different trace
// positions alive at once; `go test -race ./internal/core` turns any
// violation of the privatize-before-write contract into a hard failure,
// and the sequential comparison pins the equivalence contract at the same
// time.
func TestForkWhileReplaying(t *testing.T) {
	const (
		lines = 32
		iters = 300
	)
	mk := func() Target {
		return Target{
			Name: "par-prefix-aliasing",
			Pre: func(c *Ctx) error {
				p := c.Pool()
				for i := 0; i < iters; i++ {
					addr := uint64(i%lines) * 64
					p.Store64(addr, uint64(i))
					p.Persist(addr, 8)
				}
				// One trailing unpersisted write so the post-failure
				// classification has a race to find at every failure point.
				p.Store64(uint64(lines)*64, 1)
				return nil
			},
			Post: func(c *Ctx) error {
				p := c.Pool()
				for l := 0; l <= lines; l++ {
					p.Load64(uint64(l) * 64)
				}
				return nil
			},
		}
	}
	seq, err := Run(Config{}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if seq.FailurePoints != iters+1 {
		t.Fatalf("sequential failure points = %d, want %d", seq.FailurePoints, iters+1)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Run(Config{Workers: workers}, mk())
		if err != nil {
			t.Fatal(err)
		}
		if !equalKeys(sortedKeys(seq), sortedKeys(par)) {
			t.Errorf("workers=%d: keys diverge from sequential:\nseq: %v\npar: %v",
				workers, sortedKeys(seq), sortedKeys(par))
		}
		if par.FailurePoints != seq.FailurePoints || par.PostRuns != seq.PostRuns {
			t.Errorf("workers=%d: failure points/post runs = %d/%d, want %d/%d",
				workers, par.FailurePoints, par.PostRuns, seq.FailurePoints, seq.PostRuns)
		}
		if par.BenignReads != seq.BenignReads || par.PostEntries != seq.PostEntries {
			t.Errorf("workers=%d: benign/post-entries = %d/%d, want %d/%d",
				workers, par.BenignReads, par.PostEntries, seq.BenignReads, seq.PostEntries)
		}
		if par.ShadowPages == 0 || par.ShadowPeakBytes == 0 {
			t.Errorf("workers=%d: shadow stats empty (%d pages, %d peak bytes)",
				workers, par.ShadowPages, par.ShadowPeakBytes)
		}
	}
}
