package core

// Crash-state pruning (representative testing).
//
// Many failure points freeze equivalent crash states: the same bytes in the
// same persistence classification with the same writer attribution — think
// of a loop re-dirtying and persisting the same structure. Re-running
// post-failure detection on such states cannot observe anything new, so the
// runner fingerprints the shadow at each failure point
// (shadow.CrashFingerprint), groups failure points into classes, executes
// the post-run once per class, and attributes the verdict to the members.
//
// The verdict rule is deliberately asymmetric ("poisoned class"): only a
// representative that completes cleanly — no post-failure fault, no
// abandonment, no cancellation — prunes its members. Any other outcome
// marks the class dirty and every member runs, so value-bearing outcomes
// (fault messages quoting data, runs a resumed campaign must re-execute)
// are never attributed across members. A pruned member completes with no
// fresh reports: its class representative already holds the class's
// reports, and the member's checkpoint line still records it as covered,
// keeping -merge's coverage proof and crash-safe resume exact.
//
// Scheduling is deterministic across sequential and parallel modes: the
// fingerprint sequence is computed on the pre-failure thread in injection
// order, the first member of each class becomes its representative, and in
// parallel mode members arriving while the representative is still in
// flight park on the class with their fork and snapshot captured at their
// own failure point. The resolving worker then either completes them
// (clean) or runs them inline (dirty) — never re-submitting to the worker
// queues, which keeps back-pressure deadlock-free. PostRuns, PostEntries
// and BenignReads therefore match sequential detection exactly.
//
// Sharded and resumed failure points are never fingerprinted: classes are
// local to one process's owned failure points, so every shard prunes
// within its own partition and the union over shards stays byte-identical
// to the single-process report-key set.

import (
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/shadow"
)

// classState is the lifecycle of one crash-state class.
type classState uint8

const (
	// classUntested: no member seen yet (zero value of a fresh class).
	classUntested classState = iota
	// classTesting: the representative's post-run is in flight.
	classTesting
	// classClean: the representative completed cleanly; members are pruned.
	classClean
	// classDirty: the representative faulted, was abandoned, cancelled or
	// quarantined; every member runs its own post-failure execution.
	classDirty
)

// parkedFP is a failure point awaiting its class representative's verdict,
// with the shadow fork and image snapshot captured at its own failure
// point (so a dirty verdict can still run it exactly).
type parkedFP struct {
	id   int
	fork *shadow.PM
	snap *pmem.Snapshot
}

// crashClass is one crash-state fingerprint class.
type crashClass struct {
	state  classState
	parked []parkedFP
	// fpr is the class's fingerprint, and publish records that this
	// process owns the class in the run's VerdictSource (claim answered
	// VerdictOwn) and must publish the representative's outcome on
	// resolution. Claims answered VerdictRun run locally without
	// publishing — only the owning shard resolves a shared class.
	fpr     uint64
	publish bool
}

// pruning reports whether this run fingerprints and prunes failure points.
func (r *runner) pruning() bool {
	return r.cfg.Mode == ModeDetect && !r.cfg.DisablePruning && r.sh != nil
}

// notePostRun accounts one spawned post-failure execution; parked members
// of dirty classes run on worker goroutines, so the counter is locked.
func (r *runner) notePostRun() {
	r.degradeMu.Lock()
	r.postRuns++
	r.degradeMu.Unlock()
}

// unspawnPostRun retracts a spawned post-run that ended void — quarantined
// after its retry, or cancelled — so each failure point lands in exactly
// one Result bucket and PostRuns + PrunedFailurePoints +
// OtherShardFailurePoints + ResumedFailurePoints + SkippedFailurePoints ==
// FailurePoints even for degraded campaigns.
func (r *runner) unspawnPostRun() {
	r.degradeMu.Lock()
	r.postRuns--
	r.degradeMu.Unlock()
}

// clean reports whether a post-run outcome allows pruning its class
// members: anything other than an uneventful completion poisons the class.
func (o postOutcome) clean() bool {
	return !o.cancelled && !o.abandoned && o.err == nil
}

// enterClass fingerprints the current shadow state and files fpID into its
// class. It returns the class when fpID is its representative (the caller
// runs the post-failure execution and resolves the class afterwards), or
// handled=true when the failure point was consumed here: pruned against a
// clean class, parked behind an in-flight representative, or quarantined
// on a failing snapshot. A nil class with handled=false means the failure
// point belongs to a dirty class and runs like an unpruned one. Callers
// hold sinkMu.
func (r *runner) enterClass(fpID int) (cls *crashClass, fpr uint64, handled bool) {
	fp := r.sh.CrashFingerprint()
	r.pruneMu.Lock()
	c := r.classes[fp]
	if c == nil {
		c = &crashClass{fpr: fp}
		r.classes[fp] = c
	}
	switch c.state {
	case classClean:
		r.prunedFPs++
		r.pruneMu.Unlock()
		// The representative already completed cleanly (and checkpointed
		// first): attribute its verdict, record coverage, run nothing.
		r.completeFP(fpID, fp, nil)
		return nil, fp, true
	case classTesting:
		// Parallel mode: the representative is still in flight. Capture
		// this failure point's own fork and snapshot now — the pre-failure
		// stage is about to move on — and park it on the class.
		snap, err := r.snapshotWithRetry()
		if err != nil {
			r.pruneMu.Unlock()
			r.noteQuarantined(fpID, err)
			return nil, fp, true
		}
		c.parked = append(c.parked, parkedFP{id: fpID, fork: r.sh.Fork(), snap: snap})
		r.pruneMu.Unlock()
		return nil, fp, true
	case classUntested:
		c.state = classTesting
		r.pruneMu.Unlock()
		// First local member: consult the run's VerdictSource (if any)
		// before becoming the representative. The class is already
		// reserved as classTesting and enterClass is serialized under
		// sinkMu, so a slow or remote claim cannot race the parking path —
		// parallel workers only resolve classes, never file new members.
		verdict := ClassClaim{Verdict: VerdictOwn}
		if r.cfg.Verdicts != nil {
			verdict = r.cfg.Verdicts.Claim(fp)
		}
		switch verdict.Verdict {
		case VerdictClean:
			// Another shard's representative completed cleanly; attribute
			// its verdict. Its reports live in that shard's checkpoint.
			r.pruneMu.Lock()
			c.state = classClean
			r.crossShardFPs++
			r.pruneMu.Unlock()
			r.completeFP(fpID, fp, nil)
			return nil, fp, true
		case VerdictCached:
			// A previous campaign resolved the class cleanly; attribute
			// the verdict and re-seed its reports so this campaign's
			// merged report set matches an uncached run byte for byte.
			r.pruneMu.Lock()
			c.state = classClean
			r.cacheHitFPs++
			r.pruneMu.Unlock()
			var fresh []Report
			for _, rep := range verdict.Reports {
				if r.reports.add(rep) {
					fresh = append(fresh, rep)
				}
			}
			r.completeFP(fpID, fp, fresh)
			return nil, fp, true
		case VerdictOwn:
			c.publish = true
		}
		// VerdictOwn or VerdictRun: run the representative locally.
		r.pruneMu.Lock()
		r.classesTested++
		r.pruneMu.Unlock()
		return c, fp, false
	default: // classDirty
		r.pruneMu.Unlock()
		return nil, fp, false
	}
}

// resolveClass records the representative's verdict and disposes of the
// members parked behind it: a clean verdict prunes them (checkpointing
// each as covered), a dirty one runs each inline on the resolving
// goroutine. The transition is sticky — a class is resolved exactly once.
// When this process owns the class in the run's VerdictSource, the verdict
// is published with the representative's fresh reports (so a clean class's
// value-bearing reports can be re-seeded by later campaigns) — after the
// representative checkpointed, preserving PR 6's attribute-only-after-
// coverage ordering. cls is nil for non-representative post-runs.
func (r *runner) resolveClass(cls *crashClass, clean bool, fresh []Report) {
	if cls == nil {
		return
	}
	r.pruneMu.Lock()
	if cls.state != classTesting {
		r.pruneMu.Unlock()
		return
	}
	if clean {
		cls.state = classClean
		r.prunedFPs += len(cls.parked)
	} else {
		cls.state = classDirty
	}
	parked := cls.parked
	cls.parked = nil
	publish := cls.publish
	r.pruneMu.Unlock()
	if publish && r.cfg.Verdicts != nil {
		r.cfg.Verdicts.Resolve(cls.fpr, clean, fresh)
	}
	for _, p := range parked {
		if clean {
			r.completeFP(p.id, cls.fpr, nil)
			p.fork.Release()
			continue
		}
		r.runParked(cls.fpr, p)
	}
}

// runParked executes a parked member of a poisoned class against the fork
// and snapshot captured at its failure point, with the same
// retry-once-then-quarantine semantics as any other post-run. It runs on
// the goroutine that resolved the class (a parallel worker), inside that
// worker's timed window, so PostSeconds accounting is unchanged.
func (r *runner) runParked(fpr uint64, p parkedFP) {
	defer p.fork.Release()
	r.notePostRun()
	out, ok := r.runAttempts(p.id, func() postOutcome {
		return r.attemptPost(p.id, p.snap, p.fork)
	})
	if !ok {
		r.unspawnPostRun()
		return
	}
	if r.engine != nil {
		r.engine.mu.Lock()
		r.engine.benign += out.benign
		r.engine.postEnts += out.ents
		r.engine.mu.Unlock()
	} else {
		r.benign += out.benign
		r.postEntries += out.ents
	}
	r.finishPost(p.id, fpr, out)
}
