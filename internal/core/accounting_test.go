package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// entryAccountingTarget has a post-failure stage long enough (>64 traced
// operations) that the old parallel sink's amortized 64-op chunk flushing
// would leak chunks from a voided attempt, and the old sequential sink
// would leak every voided-attempt entry.
func entryAccountingTarget() Target {
	return Target{
		Name: "entry-accounting",
		Setup: func(c *Ctx) error {
			c.Pool().Store64(0, 0xA11CE)
			return nil
		},
		Pre: func(c *Ctx) error {
			p := c.Pool()
			for i := 0; i < 3; i++ {
				p.Store64(8, uint64(i))
				p.Persist(8, 8)
			}
			return nil
		},
		Post: func(c *Ctx) error {
			p := c.Pool()
			p.Load64(0)
			for i := uint64(0); i < 128; i++ {
				p.Store8(64+i, byte(i))
			}
			return nil
		},
	}
}

// TestVoidedAttemptEntriesNotCounted pins the unified post-entry
// accounting: an attempt voided by a harness fault is retried in full, so
// its partial entries must not appear in Result.PostEntries. Before the
// unification, the sequential sink counted every voided-attempt entry live
// and the parallel sink leaked its flushed 64-op chunks.
func TestVoidedAttemptEntriesNotCounted(t *testing.T) {
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := Config{Workers: workers}
			baseline, err := Run(cfg, entryAccountingTarget())
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}
			if baseline.PostEntries == 0 || baseline.PostRuns == 0 {
				t.Fatalf("baseline recorded nothing: %+v", baseline)
			}

			// Fault the trace sink exactly once, mid-attempt, deep enough
			// that the voided attempt has recorded well over one amortized
			// 64-op chunk.
			var postSeen int64
			cfg.FaultHooks = &pmem.FaultHooks{Sink: func(e trace.Entry) error {
				if e.Stage != trace.PostFailure {
					return nil
				}
				if atomic.AddInt64(&postSeen, 1) == 100 {
					return errors.New("trace spool hiccup")
				}
				return nil
			}}
			faulted, err := Run(cfg, entryAccountingTarget())
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			if faulted.SkippedFailurePoints != 0 || len(faulted.HarnessFaults) != 0 {
				t.Fatalf("single fault must be absorbed by the retry, got %+v", faulted)
			}
			if faulted.PostRuns != baseline.PostRuns {
				t.Fatalf("PostRuns = %d, want %d", faulted.PostRuns, baseline.PostRuns)
			}
			if faulted.PostEntries != baseline.PostEntries {
				t.Errorf("PostEntries = %d, want %d (voided attempt leaked entries)",
					faulted.PostEntries, baseline.PostEntries)
			}
			if faulted.BenignReads != baseline.BenignReads {
				t.Errorf("BenignReads = %d, want %d", faulted.BenignReads, baseline.BenignReads)
			}
			if bk, fk := sortedKeys(baseline), sortedKeys(faulted); !equalKeys(bk, fk) {
				t.Errorf("report keys diverged: baseline %v, faulted %v", bk, fk)
			}
		})
	}
}
