package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotWithConcurrentMutators pins the snapshot-vs-mutator aliasing
// contract: while the main pre-failure thread triggers failure points (and
// therefore incremental dirty-page snapshots of the root pool), sibling
// goroutines keep storing into disjoint PM regions. Every store path
// mutates the buffer, marks its dirty pages and captures its trace entry
// inside one pool-mutex critical section, and TakeSnapshot runs under the
// same mutex, so the run must be race-clean (this file is covered by the
// repo's `go test -race ./internal/core` verify) and the report set must be
// deterministic: the post-failure stage only reads a setup-seeded,
// never-persisted address, whose race report does not depend on how the
// mutator stores interleave with the snapshots.
func TestSnapshotWithConcurrentMutators(t *testing.T) {
	const (
		seedAddr   = 0       // written in Setup, never persisted, read by Post
		mainAddr   = 64      // the main thread's persisted counter
		mutRegion  = 1 << 13 // mutators write into disjoint 8 KiB regions
		mutators   = 4
		storesEach = 300
		fences     = 10
	)
	target := Target{
		Name: "snapshot-vs-mutators",
		Setup: func(c *Ctx) error {
			c.Pool().Store64(seedAddr, 0x5EED)
			return nil
		},
		Pre: func(c *Ctx) error {
			p := c.Pool()
			var wg sync.WaitGroup
			for g := 0; g < mutators; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					base := uint64((g + 1)) * mutRegion
					for i := 0; i < storesEach; i++ {
						p.Store8(base+uint64(i), byte(i))
					}
				}(g)
			}
			for i := uint64(0); i < fences; i++ {
				p.Store64(mainAddr, i)
				p.Persist(mainAddr, 8)
			}
			wg.Wait()
			return nil
		},
		Post: func(c *Ctx) error {
			c.Pool().Load64(seedAddr)
			return nil
		},
	}

	var wantKeys []string
	for _, tc := range []struct {
		workers int
		ablate  bool
	}{{1, false}, {1, true}, {2, false}, {4, false}} {
		name := fmt.Sprintf("workers=%d,ablate=%v", tc.workers, tc.ablate)
		t.Run(name, func(t *testing.T) {
			// Two runs per configuration: the report set must not depend on
			// how the mutator goroutines happened to interleave with the
			// failure-point snapshots.
			for run := 0; run < 2; run++ {
				res, err := Run(Config{
					Workers:                     tc.workers,
					DisablePerfBugs:             true,
					DisableIncrementalSnapshots: tc.ablate,
				}, target)
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				// fences ordering points plus the final quiescent-state
				// injection, never elided: the main thread stores before
				// every fence.
				if res.FailurePoints != fences+1 {
					t.Fatalf("run %d: FailurePoints = %d, want %d", run, res.FailurePoints, fences+1)
				}
				keys := sortedKeys(res)
				if len(keys) != 1 || res.Count(CrossFailureRace) != 1 {
					t.Fatalf("run %d: want exactly the seeded race report, got %v", run, res.Reports)
				}
				if wantKeys == nil {
					wantKeys = keys
				} else if !equalKeys(keys, wantKeys) {
					t.Fatalf("run %d (%s): keys %v diverged from %v", run, name, keys, wantKeys)
				}
			}
		})
	}
}
