package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestClassRegistryStateMachine: ownership, sticky resolution, owner-only
// resolve, cache seeding and owner release at the registry level.
func TestClassRegistryStateMachine(t *testing.T) {
	g := NewClassRegistry()
	if v := g.Claim("a", 1); v.Verdict != VerdictOwn {
		t.Fatalf("first claim = %v, want VerdictOwn", v.Verdict)
	}
	if v := g.Claim("b", 1); v.Verdict != VerdictRun {
		t.Fatalf("claim on pending class = %v, want VerdictRun", v.Verdict)
	}
	if g.Resolve("b", 1, true, nil) {
		t.Fatal("non-owner resolve landed")
	}
	rep := Report{Class: CrossFailureRace, ReaderIP: "r.go:1", WriterIP: "w.go:2"}
	if !g.Resolve("a", 1, true, []Report{rep}) {
		t.Fatal("owner's clean resolve did not land")
	}
	if v := g.Claim("b", 1); v.Verdict != VerdictClean {
		t.Fatalf("claim on clean class = %v, want VerdictClean", v.Verdict)
	}
	if got, ok := g.Reports(1); !ok || len(got) != 1 || got[0].DedupKey() != rep.DedupKey() {
		t.Fatalf("Reports(1) = %v, %v", got, ok)
	}
	// A resolve after the fact (zombie) must not flip a settled class.
	if g.Resolve("a", 1, false, nil) {
		t.Fatal("resolve on a settled class landed")
	}

	// Dirty is sticky: claimants run inline forever.
	g.Claim("a", 2)
	if g.Resolve("a", 2, false, nil) {
		t.Fatal("dirty resolve reported clean")
	}
	if v := g.Claim("b", 2); v.Verdict != VerdictRun {
		t.Fatalf("claim on dirty class = %v, want VerdictRun", v.Verdict)
	}

	// ReleaseOwner frees only the owner's pending classes; settled ones stay.
	g.Claim("a", 3)
	g.ReleaseOwner("a")
	if v := g.Claim("b", 3); v.Verdict != VerdictOwn {
		t.Fatalf("claim on released class = %v, want VerdictOwn", v.Verdict)
	}
	if v := g.Claim("c", 1); v.Verdict != VerdictClean {
		t.Fatalf("settled class lost by ReleaseOwner: %v", v.Verdict)
	}
	if g.Resolve("a", 3, true, nil) {
		t.Fatal("released owner's late resolve landed")
	}

	// SeedClean converts a fresh ownership into a resolved class.
	g.Claim("a", 4)
	g.SeedClean("a", 4, []Report{rep})
	if v := g.Claim("b", 4); v.Verdict != VerdictClean {
		t.Fatalf("claim on seeded class = %v, want VerdictClean", v.Verdict)
	}

	if classes, attributed := g.Stats(); classes != 4 || attributed != 3 {
		t.Errorf("Stats = %d classes, %d attributed; want 4 and 3", classes, attributed)
	}
}

// TestCrossShardAttributionSequential: three shards of one campaign run
// back to back against a shared registry. Every crash-state class is
// post-run by exactly one shard — the union of post-runs equals the
// single-process pruned run's — and the merged report set is byte-identical
// to the unsharded campaign.
func TestCrossShardAttributionSequential(t *testing.T) {
	seq, err := Run(Config{}, manyFPTarget("xshard-seq"))
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(Config{}, manyFPTarget("xshard-pruned"))
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	reg := NewClassRegistry()
	union := newReportSet()
	totalPost, totalCross := 0, 0
	for idx := 0; idx < shards; idx++ {
		res, err := Run(Config{
			ShardCount: shards,
			ShardIndex: idx,
			Verdicts:   reg.Bind(fmt.Sprintf("shard%d", idx)),
		}, manyFPTarget("xshard"))
		if err != nil {
			t.Fatal(err)
		}
		if got := res.BucketedFailurePoints(); got != res.FailurePoints {
			t.Errorf("shard %d: buckets sum to %d, want %d: %+v", idx, got, res.FailurePoints, res)
		}
		for _, rep := range res.Reports {
			union.add(rep)
		}
		totalPost += res.PostRuns
		totalCross += res.CrossShardPrunedFailurePoints
	}

	if got := sortedKeys(&Result{Reports: union.snapshot()}); !equalKeys(got, sortedKeys(seq)) {
		t.Errorf("cross-shard union diverges from sequential:\nunion: %v\nseq:   %v", got, sortedKeys(seq))
	}
	// Sequential shards never race on a class, so the representative count
	// is exact: one post-run per global class, like the unsharded pruned run.
	if totalPost != pruned.PostRuns {
		t.Errorf("total post-runs across shards = %d, want %d (one per global class)", totalPost, pruned.PostRuns)
	}
	if totalCross == 0 && pruned.PrunedFailurePoints > 0 {
		t.Error("no cross-shard attributions despite duplicate crash states; the registry did nothing")
	}
}

// TestCrossShardAttributionConcurrent is the same campaign with all three
// shards running at once on parallel runners — the registry is hit from
// many goroutines (run under -race in CI). Ownership may race (a class
// claimed while pending runs inline), so only soundness is asserted: the
// union must stay byte-identical and every shard's buckets must sum.
func TestCrossShardAttributionConcurrent(t *testing.T) {
	seq, err := Run(Config{}, manyFPTarget("xshard-conc-seq"))
	if err != nil {
		t.Fatal(err)
	}

	const shards = 3
	reg := NewClassRegistry()
	union := newReportSet()
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for idx := 0; idx < shards; idx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			res, err := Run(Config{
				Workers:    2,
				ShardCount: shards,
				ShardIndex: idx,
				Verdicts:   reg.Bind(fmt.Sprintf("shard%d", idx)),
			}, manyFPTarget("xshard-conc"))
			if err != nil {
				errs[idx] = err
				return
			}
			if got := res.BucketedFailurePoints(); got != res.FailurePoints {
				errs[idx] = fmt.Errorf("buckets sum to %d, want %d", got, res.FailurePoints)
				return
			}
			mu.Lock()
			for _, rep := range res.Reports {
				union.add(rep)
			}
			mu.Unlock()
		}(idx)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
	}
	if got := sortedKeys(&Result{Reports: union.snapshot()}); !equalKeys(got, sortedKeys(seq)) {
		t.Errorf("concurrent cross-shard union diverges:\nunion: %v\nseq:   %v", got, sortedKeys(seq))
	}
}

// recordingSource wraps a VerdictSource and captures clean resolutions —
// the shape of a verdict cache being filled.
type recordingSource struct {
	inner    VerdictSource
	mu       sync.Mutex
	resolved map[uint64][]Report
}

func (s *recordingSource) Claim(fpr uint64) ClassClaim { return s.inner.Claim(fpr) }
func (s *recordingSource) Resolve(fpr uint64, clean bool, fresh []Report) {
	s.inner.Resolve(fpr, clean, fresh)
	if clean {
		s.mu.Lock()
		s.resolved[fpr] = append([]Report(nil), fresh...)
		s.mu.Unlock()
	}
}

// cachedSource answers every known fingerprint VerdictCached — a fully
// warm cross-campaign cache.
type cachedSource struct{ verdicts map[uint64][]Report }

func (s cachedSource) Claim(fpr uint64) ClassClaim {
	if reps, ok := s.verdicts[fpr]; ok {
		return ClassClaim{Verdict: VerdictCached, Reports: reps}
	}
	return ClassClaim{Verdict: VerdictOwn}
}
func (s cachedSource) Resolve(uint64, bool, []Report) {}

// TestCachedVerdictsSeedReports: a run against a fully warm cache post-runs
// nothing, lands every class in the CacheHits bucket, and still reports the
// cold run's exact key set — the cached reports are re-seeded, not lost.
func TestCachedVerdictsSeedReports(t *testing.T) {
	rec := &recordingSource{inner: NewClassRegistry().Bind("cold"), resolved: make(map[uint64][]Report)}
	cold, err := Run(Config{Verdicts: rec}, manyFPTarget("vcache-cold"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.resolved) == 0 {
		t.Fatal("cold run resolved no classes; nothing to cache")
	}

	warm, err := Run(Config{Verdicts: cachedSource{verdicts: rec.resolved}}, manyFPTarget("vcache-warm"))
	if err != nil {
		t.Fatal(err)
	}
	if warm.PostRuns != 0 {
		t.Errorf("warm run post-ran %d classes, want 0 (everything cached)", warm.PostRuns)
	}
	if warm.CacheHitFailurePoints != cold.CrashStateClasses {
		t.Errorf("cache hits = %d, want one per class (%d)", warm.CacheHitFailurePoints, cold.CrashStateClasses)
	}
	if got := warm.BucketedFailurePoints(); got != warm.FailurePoints {
		t.Errorf("warm buckets sum to %d, want %d: %+v", got, warm.FailurePoints, warm)
	}
	if !equalKeys(sortedKeys(warm), sortedKeys(cold)) {
		t.Errorf("warm keys diverge from cold:\nwarm: %v\ncold: %v", sortedKeys(warm), sortedKeys(cold))
	}
}

// dirtyResolver wraps a registry binding and publishes every resolution as
// dirty — the view a second run has of a predecessor whose representatives
// all died or were quarantined.
type dirtyResolver struct{ inner VerdictSource }

func (s dirtyResolver) Claim(fpr uint64) ClassClaim { return s.inner.Claim(fpr) }
func (s dirtyResolver) Resolve(fpr uint64, clean bool, fresh []Report) {
	s.inner.Resolve(fpr, false, nil)
}

// TestDirtyRepresentativesNeverAttribute: when every class resolved dirty,
// a second run sharing the registry attributes nothing and re-runs every
// representative itself — degrading to PR 6 pruning, never to trust.
func TestDirtyRepresentativesNeverAttribute(t *testing.T) {
	plain, err := Run(Config{}, manyFPTarget("dirty-plain"))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewClassRegistry()
	if _, err := Run(Config{Verdicts: dirtyResolver{inner: reg.Bind("a")}}, manyFPTarget("dirty-a")); err != nil {
		t.Fatal(err)
	}
	second, err := Run(Config{Verdicts: reg.Bind("b")}, manyFPTarget("dirty-b"))
	if err != nil {
		t.Fatal(err)
	}
	if second.CrossShardPrunedFailurePoints != 0 || second.CacheHitFailurePoints != 0 {
		t.Errorf("second run attributed %d cross-shard + %d cached from dirty classes; poisoned verdicts must never attribute",
			second.CrossShardPrunedFailurePoints, second.CacheHitFailurePoints)
	}
	if second.PostRuns != plain.PostRuns {
		t.Errorf("second run post-ran %d, want %d (every representative re-run inline)", second.PostRuns, plain.PostRuns)
	}
	if !equalKeys(sortedKeys(second), sortedKeys(plain)) {
		t.Errorf("second run keys diverge from plain run:\nsecond: %v\nplain:  %v", sortedKeys(second), sortedKeys(plain))
	}
}
