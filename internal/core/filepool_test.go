//go:build linux

package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/pmem"
)

// File-backed campaigns (pmem.FileBackend): report-set identity with the
// in-memory backend, resume over a surviving pool file, and the disk fault
// classes degrading into quarantine instead of false reports.

func filePoolPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "pool.img")
}

// TestFileBackedRunMatchesMemory: the same campaign on a file-backed pool
// yields the byte-identical deduplicated report set as in-memory, and the
// Result carries honest msync accounting.
func TestFileBackedRunMatchesMemory(t *testing.T) {
	mem, err := Run(Config{}, figure11Target("backend-parity"))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			file, err := Run(Config{
				Workers: workers,
				Backend: pmem.FileBackend{Path: filePoolPath(t)},
			}, figure11Target("backend-parity"))
			if err != nil {
				t.Fatal(err)
			}
			if !equalKeys(sortedKeys(mem), sortedKeys(file)) {
				t.Errorf("file-backed report set diverges:\nmem:  %v\nfile: %v",
					sortedKeys(mem), sortedKeys(file))
			}
			if mem.PoolBackend != "memory" || file.PoolBackend != "file" {
				t.Errorf("backends = %q / %q, want memory / file", mem.PoolBackend, file.PoolBackend)
			}
			if file.MsyncRanges == 0 || file.MsyncPages == 0 {
				t.Errorf("file-backed run recorded no msync activity: %d ranges, %d pages",
					file.MsyncRanges, file.MsyncPages)
			}
			if file.Incomplete {
				t.Errorf("clean file-backed run marked incomplete:\n%s", file)
			}
			checkBuckets(t, file)
		})
	}
}

// fileResumeTarget writes each page once and persists it — the bulk-load
// shape the compare-skip optimization targets — plus one never-persisted
// store that every post-run reads (a stable race report).
func fileResumeTarget() Target {
	return Target{
		Name: "file-resume",
		Pre: func(c *Ctx) error {
			c.Pool().Store64(7*4096+8, 0xdead) // never persisted
			for i := uint64(0); i < 6; i++ {
				c.Pool().Store64(i*4096, i+1)
				c.Pool().Persist(i*4096, 8)
			}
			return nil
		},
		Post: func(c *Ctx) error { c.Pool().Load64(7*4096 + 8); return nil },
	}
}

// TestFileBackedResumeSkipsPersistedMsync is the core half of satellite 3:
// resuming a completed file-backed campaign over its surviving pool file
// replays deterministically, so every dirty page whose content the file
// already holds compare-skips — zero pages re-msynced for a write-once
// workload — and the deduplicated key set is byte-identical.
func TestFileBackedResumeSkipsPersistedMsync(t *testing.T) {
	path := filePoolPath(t)
	mk := fileResumeTarget

	done := make(map[int]bool)
	var seed []Report
	first, err := Run(Config{
		Backend: pmem.FileBackend{Path: path},
		OnPostRunComplete: func(fp int, _ uint64, fresh []Report) {
			done[fp] = true
			seed = append(seed, fresh...)
		},
	}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if first.MsyncPages == 0 {
		t.Fatalf("first campaign wrote no pages: %+v", first)
	}

	resumed, err := Run(Config{
		Backend:                pmem.FileBackend{Path: path, Resume: true},
		CompletedFailurePoints: done,
		SeedReports:            seed,
	}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !equalKeys(sortedKeys(first), sortedKeys(resumed)) {
		t.Errorf("resumed report set diverges:\nfirst:   %v\nresumed: %v",
			sortedKeys(first), sortedKeys(resumed))
	}
	if resumed.MsyncPages != 0 {
		t.Errorf("resume re-msynced %d pages; the deterministic replay over the surviving file must compare-skip all of them", resumed.MsyncPages)
	}
	if resumed.MsyncSkipped == 0 {
		t.Error("resume skipped no pages — the dirty tracking never consulted the surviving image")
	}
	if resumed.ResumedFailurePoints != len(done) {
		t.Errorf("resumed failure points = %d, want %d", resumed.ResumedFailurePoints, len(done))
	}
	checkBuckets(t, resumed)
}

// TestFileBackedPoolCollision: a fresh campaign refuses an existing pool
// file with an error naming the resume path out.
func TestFileBackedPoolCollision(t *testing.T) {
	path := filePoolPath(t)
	if _, err := Run(Config{Backend: pmem.FileBackend{Path: path}}, figure11Target("collision")); err != nil {
		t.Fatal(err)
	}
	_, err := Run(Config{Backend: pmem.FileBackend{Path: path}}, figure11Target("collision"))
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("reusing a pool file without resume must fail with a collision error, got: %v", err)
	}
}

// TestFileBackedExtendFaultFailsRun: a disk-full fault while extending the
// backing file fails the run as a harness error before any tracing starts —
// there is no failure point to quarantine yet.
func TestFileBackedExtendFaultFailsRun(t *testing.T) {
	hooks := &pmem.FaultHooks{Extend: func(size uint64) error { return errors.New("no space") }}
	_, err := Run(Config{
		Backend:    pmem.FileBackend{Path: filePoolPath(t), Hooks: hooks},
		FaultHooks: hooks,
	}, figure11Target("extend-fault"))
	if err == nil || !strings.Contains(err.Error(), "pool-extend") {
		t.Fatalf("want a pool-extend harness error, got: %v", err)
	}
}

// TestFileBackedDiskFaultClasses: each injected disk fault class — disk-full
// ENOSPC, short msync, torn mmap page — survives its retry, quarantines
// exactly the affected failure point, never fabricates a bug report, and the
// campaign continues to the identical report set. Sequential and parallel.
func TestFileBackedDiskFaultClasses(t *testing.T) {
	clean, err := Run(Config{DisablePerfBugs: true}, spinMultiFPTarget("disk-fault-clean"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		spec string
		op   string
	}{
		{"disk-full:0", "msync"},
		{"short-msync:0", "short-msync"},
		{"torn-mmap:0", "torn-mmap"},
	} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.spec, workers), func(t *testing.T) {
				hooks, err := pmem.DiskFaultHooksFromSpec(tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(Config{
					Workers:         workers,
					DisablePerfBugs: true,
					Backend:         pmem.FileBackend{Path: filePoolPath(t), Hooks: hooks},
					FaultHooks:      hooks,
				}, spinMultiFPTarget("disk-fault"))
				if err != nil {
					t.Fatal(err)
				}
				if !res.Incomplete || res.SkippedFailurePoints == 0 {
					t.Fatalf("disk fault did not quarantine any failure point:\n%s", res)
				}
				found := false
				for _, f := range res.HarnessFaults {
					if strings.Contains(f, tc.op) {
						found = true
					}
				}
				if !found {
					t.Errorf("harness faults %v name no %q fault", res.HarnessFaults, tc.op)
				}
				// The quarantine must degrade coverage, never fabricate: the
				// surviving failure points converge to the clean key set.
				if !equalKeys(sortedKeys(res), sortedKeys(clean)) {
					t.Errorf("faulted report set diverges from clean:\nclean:   %v\nfaulted: %v",
						sortedKeys(clean), sortedKeys(res))
				}
				checkBuckets(t, res)
			})
		}
	}
}
