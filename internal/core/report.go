// Package core implements XFDetector itself: the failure-injection frontend
// and the shadow-PM detection backend of §4–§5 of the paper.
//
// A detection run (Run) executes a Target's pre-failure stage once. At every
// ordering point inside the region of interest it injects a failure point:
// it suspends the pre-failure execution, copies the PM image (including
// non-persisted updates), executes the Target's post-failure stage on the
// copy, classifies every post-failure read against the shadow PM, and then
// resumes the pre-failure execution — the execute–suspend–spawn–continue
// loop of Fig. 8. Detected cross-failure races, cross-failure semantic
// bugs, performance bugs, and post-failure faults are collected into a
// Result, deduplicated by reader/writer source location the way the paper
// reports file name and line number pairs.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// BugClass classifies a detected bug.
type BugClass uint8

const (
	// CrossFailureRace: the post-failure stage read data modified
	// pre-failure that was not guaranteed persisted (§3.1).
	CrossFailureRace BugClass = iota
	// CrossFailureSemantic: the post-failure stage read persisted data
	// that is semantically inconsistent under the crash-consistency
	// mechanism (§3.2).
	CrossFailureSemantic
	// Performance: an unnecessary PM operation (redundant writeback or
	// duplicated TX_ADD, §5.4).
	Performance
	// PostFailureFault: the post-failure execution itself failed — it
	// panicked (e.g. a segmentation-fault analogue such as an
	// out-of-range PM access) or returned an error (e.g. a pool that can
	// no longer be opened, the paper's Bug 4).
	PostFailureFault
)

// String names the bug class.
func (c BugClass) String() string {
	switch c {
	case CrossFailureRace:
		return "CROSS-FAILURE RACE"
	case CrossFailureSemantic:
		return "CROSS-FAILURE SEMANTIC BUG"
	case Performance:
		return "PERFORMANCE BUG"
	case PostFailureFault:
		return "POST-FAILURE FAULT"
	}
	return fmt.Sprintf("BugClass(%d)", uint8(c))
}

// Report is one detected bug.
type Report struct {
	Class BugClass
	// Addr and Size identify the first PM range on which the bug was
	// observed (informational; deduplication is by source location).
	Addr uint64
	Size uint64
	// ReaderIP is the post-failure read location (races and semantic
	// bugs) or the offending operation (performance bugs).
	ReaderIP string
	// WriterIP is the last pre-failure writer of the range.
	WriterIP string
	// FailurePoint is the 0-based index of the failure point at which the
	// bug was first observed (-1 for performance bugs found while
	// replaying the pre-failure trace).
	FailurePoint int
	// PerfKind refines Performance reports.
	PerfKind shadow.PerfBugKind
	// Message carries the fault description for PostFailureFault reports.
	Message string
}

// DedupKey is the deduplication identity: the paper reports the file/line
// of the reader and the last writer, so repeated observations of the same
// pair collapse into one report. The differential tooling
// (internal/fuzzgen, cmd/xfdfuzz) compares report sets by this key.
func (r Report) DedupKey() string {
	return fmt.Sprintf("%d|%s|%s|%d|%s", r.Class, r.ReaderIP, r.WriterIP, r.PerfKind, r.Message)
}

func (r Report) key() string { return r.DedupKey() }

// String formats the report the way the artifact's debug output does.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", r.Class)
	switch r.Class {
	case CrossFailureRace, CrossFailureSemantic:
		fmt.Fprintf(&b, " post-failure read at %s of [0x%x, 0x%x)", orUnknown(r.ReaderIP), r.Addr, r.Addr+r.Size)
		fmt.Fprintf(&b, ", last pre-failure write at %s", orUnknown(r.WriterIP))
		fmt.Fprintf(&b, " (failure point %d)", r.FailurePoint)
	case Performance:
		fmt.Fprintf(&b, " %s at %s on [0x%x, 0x%x)", r.PerfKind, orUnknown(r.ReaderIP), r.Addr, r.Addr+r.Size)
	case PostFailureFault:
		fmt.Fprintf(&b, " %s (failure point %d)", r.Message, r.FailurePoint)
	}
	return b.String()
}

func orUnknown(ip string) string {
	if ip == "" {
		return "<unknown>"
	}
	return ip
}

// reportSet accumulates deduplicated reports in first-seen order. It is
// safe for concurrent use: in parallel detection the pre-failure thread
// (performance bugs) and the post-failure workers add simultaneously.
type reportSet struct {
	mu      sync.Mutex
	seen    map[string]struct{}
	reports []Report
}

func newReportSet() *reportSet {
	return &reportSet{seen: make(map[string]struct{})}
}

// add inserts r unless an equivalent report exists; it reports whether r
// was new.
func (s *reportSet) add(r Report) bool {
	k := r.key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.seen[k]; ok {
		return false
	}
	s.seen[k] = struct{}{}
	s.reports = append(s.reports, r)
	return true
}

// snapshot returns the accumulated reports.
func (s *reportSet) snapshot() []Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Report(nil), s.reports...)
}

// Result is the outcome of one detection run.
type Result struct {
	// Target is the name of the tested target.
	Target string
	// Reports lists the deduplicated bugs in first-seen order.
	Reports []Report
	// FailurePoints is the number of failure points injected.
	FailurePoints int
	// PostRuns is the number of post-failure executions that ran to an
	// outcome (including deadline-abandoned and budget-exceeded runs, which
	// are reported as faults; excluding quarantined and cancelled ones,
	// which count as SkippedFailurePoints). Every failure point lands in
	// exactly one bucket: PostRuns + PrunedFailurePoints +
	// OtherShardFailurePoints + ResumedFailurePoints +
	// SkippedFailurePoints == FailurePoints, complete or degraded alike.
	PostRuns int
	// CrashStateClasses counts the distinct crash-state fingerprint classes
	// whose representative post-run executed, and PrunedFailurePoints
	// counts the failure points skipped because an earlier representative
	// of their class already completed cleanly (Config.DisablePruning).
	// For a complete, unresumed campaign
	// PostRuns + PrunedFailurePoints + OtherShardFailurePoints ==
	// FailurePoints, and with every class clean PostRuns equals
	// CrashStateClasses.
	CrashStateClasses   int
	PrunedFailurePoints int
	// CrossShardPrunedFailurePoints counts failure points attributed from
	// another shard's clean class representative via Config.Verdicts (the
	// -serve campaign registry), and CacheHitFailurePoints counts failure
	// points attributed from a previous campaign's on-disk verdict cache.
	// Both are disjoint from PrunedFailurePoints: only the first local
	// member of a class consults the source; later members of the same
	// class land in the local pruned bucket as before.
	CrossShardPrunedFailurePoints int
	CacheHitFailurePoints         int
	// PreEntries and PostEntries count traced operations per stage.
	PreEntries  int
	PostEntries int
	// BenignReads counts post-failure bytes read from commit variables
	// (benign cross-failure races, §3.1).
	BenignReads uint64
	// PreSeconds and PostSeconds split the wall-clock detection time into
	// the pre-failure stage and the (repeated) post-failure stage, the
	// breakdown of Fig. 12a.
	PreSeconds  float64
	PostSeconds float64

	// Incomplete reports that the campaign degraded: failure points were
	// skipped because the run was cancelled or post-runs were quarantined
	// after harness faults. The reports above are still sound — each one
	// was genuinely observed — but coverage is partial.
	Incomplete bool
	// IncompleteReason is the first cause of degradation.
	IncompleteReason string
	// SkippedFailurePoints counts failure points whose post-failure
	// executions did not run (cancellation) or were quarantined (harness
	// faults surviving a retry).
	SkippedFailurePoints int
	// AbandonedPostRuns counts post-failure executions abandoned at their
	// Config.PostRunTimeout deadline; each is also reported as a
	// PostFailureFault.
	AbandonedPostRuns int
	// ResumedFailurePoints counts failure points skipped because a
	// checkpoint (Config.CompletedFailurePoints) already covered them.
	ResumedFailurePoints int
	// ShardCount and ShardIndex echo the sharding configuration of the
	// run (both zero when the campaign was not sharded), and
	// OtherShardFailurePoints counts the failure points whose post-runs
	// were delegated to other shards. Like ResumedFailurePoints, a
	// delegated point is covered elsewhere, not a degradation.
	ShardCount              int
	ShardIndex              int
	OtherShardFailurePoints int
	// HarnessFaults describes each quarantined failure point.
	HarnessFaults []string
	// ShadowPeakBytes is the peak number of live shadow-PM bytes across
	// the run — the canonical shadow plus every concurrently live worker
	// fork — and ShadowPages is the cumulative number of 4 KiB shadow
	// pages allocated (lazy allocations plus copy-on-write clones; zero
	// under Config.DenseShadow, whose full-pool arrays appear only in the
	// byte peak). Both are zero in trace-only and original modes, which
	// build no shadow.
	ShadowPeakBytes uint64
	ShadowPages     uint64
	// PoolBackend names the backend the campaign's root pool used
	// ("memory", "file"). For a file-backed pool, MsyncRanges counts the
	// coalesced dirty ranges written back to the pool file at persist
	// boundaries, MsyncPages the 4 KiB pages actually copied and synced,
	// and MsyncSkipped the dirty pages skipped because their on-disk
	// content already matched (compare-skip; a resumed campaign replaying
	// over its surviving file skips everything already persisted).
	PoolBackend  string
	MsyncRanges  uint64
	MsyncPages   uint64
	MsyncSkipped uint64

	trace *trace.Trace
}

// PreTrace returns the retained pre-failure trace, or nil unless the run
// was configured with KeepTrace. The baseline pre-failure-only checkers
// consume it.
func (r *Result) PreTrace() *trace.Trace { return r.trace }

// BucketedFailurePoints sums the disjoint per-failure-point buckets. For
// every run — and for every honest merge of runs — it equals
// FailurePoints: each injected point lands in exactly one of post-run,
// pruned-as-class-member, delegated-to-another-shard, reused-from-a-
// checkpoint, or skipped. The merge paths and the accounting tests assert
// this invariant instead of trusting any single bucket.
func (r *Result) BucketedFailurePoints() int {
	return r.PostRuns + r.PrunedFailurePoints + r.CrossShardPrunedFailurePoints +
		r.CacheHitFailurePoints + r.OtherShardFailurePoints +
		r.ResumedFailurePoints + r.SkippedFailurePoints
}

// Count returns the number of reports of the given class.
func (r *Result) Count(c BugClass) int {
	n := 0
	for _, rep := range r.Reports {
		if rep.Class == c {
			n++
		}
	}
	return n
}

// ByClass returns the reports of the given class in first-seen order.
func (r *Result) ByClass(c BugClass) []Report {
	var out []Report
	for _, rep := range r.Reports {
		if rep.Class == c {
			out = append(out, rep)
		}
	}
	return out
}

// Clean reports whether the run found no correctness bugs (performance
// reports do not count).
func (r *Result) Clean() bool {
	for _, rep := range r.Reports {
		if rep.Class != Performance {
			return false
		}
	}
	return true
}

// String renders a human-readable summary resembling the artifact's
// <workload>_<testsize>_debug.txt output.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== XFDetector report for %q ===\n", r.Target)
	fmt.Fprintf(&b, "failure points: %d, post-failure runs: %d\n", r.FailurePoints, r.PostRuns)
	fmt.Fprintf(&b, "trace entries: %d pre, %d post; benign commit-variable reads: %d bytes\n",
		r.PreEntries, r.PostEntries, r.BenignReads)
	fmt.Fprintf(&b, "time: %.3fs pre-failure, %.3fs post-failure\n", r.PreSeconds, r.PostSeconds)
	if r.ShadowPeakBytes > 0 {
		fmt.Fprintf(&b, "shadow: peak %d KiB, %d page(s) allocated\n",
			(r.ShadowPeakBytes+1023)/1024, r.ShadowPages)
	}
	if r.PoolBackend == "file" {
		fmt.Fprintf(&b, "pool file: %d msync range(s), %d page(s) written, %d already persisted\n",
			r.MsyncRanges, r.MsyncPages, r.MsyncSkipped)
	}
	if r.PrunedFailurePoints > 0 {
		fmt.Fprintf(&b, "pruning: %d crash-state class(es) tested, %d member failure point(s) skipped\n",
			r.CrashStateClasses, r.PrunedFailurePoints)
	}
	if r.CrossShardPrunedFailurePoints > 0 {
		fmt.Fprintf(&b, "cross-shard: %d failure point(s) attributed from other shards' representatives\n",
			r.CrossShardPrunedFailurePoints)
	}
	if r.CacheHitFailurePoints > 0 {
		fmt.Fprintf(&b, "verdict cache: %d failure point(s) reused from a previous campaign\n",
			r.CacheHitFailurePoints)
	}
	if r.ResumedFailurePoints > 0 {
		fmt.Fprintf(&b, "resumed: %d failure point(s) reused from a checkpoint\n", r.ResumedFailurePoints)
	}
	if r.ShardCount > 1 {
		fmt.Fprintf(&b, "shard %d/%d: %d failure point(s) delegated to other shards\n",
			r.ShardIndex, r.ShardCount, r.OtherShardFailurePoints)
	}
	if r.AbandonedPostRuns > 0 {
		fmt.Fprintf(&b, "abandoned: %d post-failure run(s) exceeded their deadline\n", r.AbandonedPostRuns)
	}
	if r.Incomplete {
		fmt.Fprintf(&b, "INCOMPLETE: %d failure point(s) skipped — %s\n", r.SkippedFailurePoints, r.IncompleteReason)
	}
	if len(r.Reports) == 0 {
		b.WriteString("no bugs detected\n")
		return b.String()
	}
	classes := []BugClass{CrossFailureRace, CrossFailureSemantic, PostFailureFault, Performance}
	sorted := append([]Report(nil), r.Reports...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return classOrder(sorted[i].Class, classes) < classOrder(sorted[j].Class, classes)
	})
	fmt.Fprintf(&b, "%d bug(s) detected:\n", len(sorted))
	for i, rep := range sorted {
		fmt.Fprintf(&b, "  [%d] %s\n", i+1, rep)
	}
	return b.String()
}

func classOrder(c BugClass, order []BugClass) int {
	for i, o := range order {
		if o == c {
			return i
		}
	}
	return len(order)
}
