package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDetectorSoundnessProperty: a randomly generated program whose every
// write is immediately followed by a persist barrier, and whose
// post-failure stage only reads addresses written that way, never produces
// a report (property-based absence of false positives).
func TestDetectorSoundnessProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nOps%24) + 1
		// Disjoint cache lines so persists cannot mask each other.
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(i) * 64
		}
		target := Target{
			Name: "sound",
			Pre: func(c *Ctx) error {
				p := c.Pool()
				for _, a := range addrs {
					p.Store64(a, r.Uint64())
					p.Persist(a, 8)
				}
				return nil
			},
			Post: func(c *Ctx) error {
				p := c.Pool()
				for _, a := range addrs {
					// A failure can land between any store and its fence,
					// so a recovery that blindly read these addresses
					// would race; the correct pattern overwrites before
					// reading (recover_alt), which must always be clean.
					p.Store64(a, 0)
					p.Load64(a)
				}
				return nil
			},
		}
		res, err := Run(Config{PoolSize: 1 << 16}, target)
		if err != nil {
			t.Log(err)
			return false
		}
		return len(res.Reports) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDetectorCompletenessProperty: planting one never-persisted write at
// a random position in an otherwise persisted program, with a post-failure
// read of it, is always reported as exactly one cross-failure race
// (property-based: no seeded bug escapes, no spurious extras).
func TestDetectorCompletenessProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nOps%16) + 2
		buggy := r.Intn(n)
		addr := func(i int) uint64 { return uint64(i) * 64 }
		target := Target{
			Name: "complete",
			Pre: func(c *Ctx) error {
				p := c.Pool()
				for i := 0; i < n; i++ {
					p.Store64(addr(i), uint64(i)+1)
					if i != buggy {
						p.Persist(addr(i), 8)
					}
				}
				// A final unrelated barrier guarantees at least one
				// failure point after the buggy write.
				p.Store64(addr(n), 1)
				p.Persist(addr(n), 8)
				return nil
			},
			Post: func(c *Ctx) error {
				c.Pool().Load64(addr(buggy))
				return nil
			},
		}
		res, err := Run(Config{PoolSize: 1 << 16, DisablePerfBugs: true}, target)
		if err != nil {
			t.Log(err)
			return false
		}
		races := res.Count(CrossFailureRace)
		others := len(res.Reports) - races
		if races != 1 || others != 0 {
			t.Logf("n=%d buggy=%d: races=%d others=%d", n, buggy, races, others)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestCommitVarOrderingProperty: for a commit-variable-guarded slot pair,
// the update protocol "write slot; persist; write index; persist" is clean
// for any number of updates, while merging the two barriers is always
// reported as a semantic bug at some failure point (property-based Eq. 3
// check).
func TestCommitVarOrderingProperty(t *testing.T) {
	const (
		idxOff   = 0
		slot0Off = 64
		slot1Off = 128
	)
	slot := func(i uint64) uint64 {
		if i%2 == 0 {
			return slot0Off
		}
		return slot1Off
	}
	build := func(updates int, merged bool) Target {
		return Target{
			Name: "cv-prop",
			Setup: func(c *Ctx) error {
				c.AddCommitRange(idxOff, 8, slot0Off, 128)
				p := c.Pool()
				p.Store64(slot0Off, 1)
				p.Persist(slot0Off, 8)
				p.Store64(idxOff, 0)
				p.Persist(idxOff, 8)
				return nil
			},
			Pre: func(c *Ctx) error {
				p := c.Pool()
				for u := 1; u <= updates; u++ {
					next := p.Load64(idxOff) + 1
					p.Store64(slot(next), uint64(u)*100)
					if merged {
						// BUG: slot and commit write share one barrier.
						p.Store64(idxOff, next)
						p.CLWB(slot(next), 8)
						p.CLWB(idxOff, 8)
						p.SFence()
					} else {
						p.Persist(slot(next), 8)
						p.Store64(idxOff, next)
						p.Persist(idxOff, 8)
					}
				}
				return nil
			},
			Post: func(c *Ctx) error {
				p := c.Pool()
				cur := p.Load64(idxOff) // benign
				p.Load64(slot(cur))
				return nil
			},
		}
	}
	f := func(u uint8) bool {
		updates := int(u%5) + 1
		clean, err := Run(Config{PoolSize: 1 << 16}, build(updates, false))
		if err != nil || len(clean.Reports) != 0 {
			t.Logf("clean protocol flagged (updates=%d): %v %v", updates, err, clean.Reports)
			return false
		}
		merged, err := Run(Config{PoolSize: 1 << 16}, build(updates, true))
		if err != nil || merged.Count(CrossFailureSemantic) == 0 {
			t.Logf("merged-barrier bug missed (updates=%d)", updates)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
