package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/pmemgo/xfdetector/internal/record"
)

// Recorded-campaign equivalence: a replay from the XFDR artifact must be
// report-for-report identical to executing the target live — sequentially,
// across shards, and when fast-forwarding through an engine checkpoint —
// and the fingerprint tripwire must catch a stale checkpoint instead of
// silently mis-classifying crash states.

const replayTestPool = 1 << 20

// recordArtifact runs one recording pass of mk's target and decodes the
// resulting artifact.
func recordArtifact(t *testing.T, mk func(string) Target, name string, every int) *record.Artifact {
	t.Helper()
	var buf bytes.Buffer
	cfg := Config{PoolSize: replayTestPool}
	cfg.Record = record.NewWriter(&buf, 42, replayTestPool, every)
	res, err := Run(cfg, mk(name))
	if err != nil {
		t.Fatalf("recording %s: %v", name, err)
	}
	if res.PostRuns != 0 {
		t.Fatalf("recording %s ran %d post-failure executions; the record pass is pre-failure only", name, res.PostRuns)
	}
	a, err := record.Read(&buf)
	if err != nil {
		t.Fatalf("decoding artifact for %s: %v", name, err)
	}
	if a.PoolSize != replayTestPool || a.Identity != 42 {
		t.Fatalf("artifact header = identity %d pool %d", a.Identity, a.PoolSize)
	}
	if res.FailurePoints != len(a.FPs) {
		t.Fatalf("recorded %d failure points, artifact has %d records", res.FailurePoints, len(a.FPs))
	}
	return a
}

// TestRecordedReplayMatchesLive: replaying the artifact — sequentially and
// sharded, with and without parallel post-run workers — produces exactly
// the live key set with exact failure-point accounting.
func TestRecordedReplayMatchesLive(t *testing.T) {
	targets := map[string]func(string) Target{
		"fig11":  figure11Target,
		"manyFP": manyFPTarget,
	}
	for tname, mk := range targets {
		live, err := Run(Config{PoolSize: replayTestPool}, mk(tname + "-live"))
		if err != nil {
			t.Fatal(err)
		}
		liveKeys := sortedKeys(live)
		a := recordArtifact(t, mk, tname+"-rec", 0)
		for _, workers := range []int{1, 4} {
			for _, shards := range []int{1, 3} {
				t.Run(fmt.Sprintf("%s/workers=%d/shards=%d", tname, workers, shards), func(t *testing.T) {
					union := newReportSet()
					for idx := 0; idx < shards; idx++ {
						cfg := Config{
							PoolSize:   replayTestPool,
							Workers:    workers,
							ShardCount: shards,
							ShardIndex: idx,
							Replay:     a,
						}
						if shards == 1 {
							cfg.ShardCount, cfg.ShardIndex = 0, 0
						}
						res, err := Run(cfg, mk(tname+"-replay"))
						if err != nil {
							t.Fatalf("shard %d: %v", idx, err)
						}
						if res.Incomplete {
							t.Fatalf("shard %d incomplete: %s", idx, res.IncompleteReason)
						}
						if res.FailurePoints != live.FailurePoints {
							t.Errorf("shard %d: %d failure points, live run had %d", idx, res.FailurePoints, live.FailurePoints)
						}
						if got := res.BucketedFailurePoints(); got != res.FailurePoints {
							t.Errorf("shard %d: buckets account for %d of %d failure points", idx, got, res.FailurePoints)
						}
						if !subsetOf(sortedKeys(res), liveKeys) {
							t.Errorf("shard %d reports keys outside the live set:\nshard: %v\nlive:  %v",
								idx, sortedKeys(res), liveKeys)
						}
						for _, rep := range res.Reports {
							union.add(rep)
						}
					}
					if got := sortedKeySet(union); !equalKeys(got, liveKeys) {
						t.Errorf("replayed union differs from live run:\nreplay: %v\nlive:   %v", got, liveKeys)
					}
				})
			}
		}
	}
}

// TestRecordedResumeJumpEquivalence: a resumed replay whose completed
// prefix lets it jump through an engine checkpoint reports exactly what a
// full-trace replay of the same resume reports, with the prefix bucketed
// as resumed.
func TestRecordedResumeJumpEquivalence(t *testing.T) {
	a := recordArtifact(t, manyFPTarget, "resume-rec", 2)
	if len(a.Checkpoints) < 2 {
		t.Fatalf("need ≥2 checkpoints to exercise the jump, have %d", len(a.Checkpoints))
	}
	total := len(a.FPs)
	completed := map[int]bool{}
	for fp := 0; fp < total-1; fp++ {
		completed[fp] = true
	}
	run := func(keepTrace bool) *Result {
		t.Helper()
		res, err := Run(Config{
			PoolSize:               replayTestPool,
			Replay:                 a,
			KeepTrace:              keepTrace, // true forces the full-trace path (no jump)
			CompletedFailurePoints: completed,
		}, manyFPTarget("resume-replay"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	jumped, full := run(false), run(true)
	for _, res := range []*Result{jumped, full} {
		if res.ResumedFailurePoints != total-1 {
			t.Errorf("resumed = %d, want %d", res.ResumedFailurePoints, total-1)
		}
		if got := res.BucketedFailurePoints(); got != res.FailurePoints {
			t.Errorf("buckets account for %d of %d failure points", got, res.FailurePoints)
		}
	}
	if jumped.PostRuns != full.PostRuns {
		t.Errorf("post runs: jumped %d, full replay %d", jumped.PostRuns, full.PostRuns)
	}
	if !equalKeys(sortedKeys(jumped), sortedKeys(full)) {
		t.Errorf("jumped replay keys differ from full replay:\njumped: %v\nfull:   %v",
			sortedKeys(jumped), sortedKeys(full))
	}
}

// TestStaleCheckpointTripwire: a stale engine checkpoint (recorded with the
// seeded mutant) must fail the replay at the fingerprint tripwire, never
// complete with wrong classifications.
func TestStaleCheckpointTripwire(t *testing.T) {
	record.SetStaleCheckpointForTest(true)
	a := recordArtifact(t, manyFPTarget, "stale-rec", 2)
	record.SetStaleCheckpointForTest(false)
	total := len(a.FPs)
	if total < 4 {
		t.Fatalf("target too small to reach a stale checkpoint: %d failure points", total)
	}
	completed := map[int]bool{}
	for fp := 0; fp < total-1; fp++ {
		completed[fp] = true
	}
	_, err := Run(Config{
		PoolSize:               replayTestPool,
		Replay:                 a,
		CompletedFailurePoints: completed,
	}, manyFPTarget("stale-replay"))
	if err == nil {
		t.Fatal("replay through a stale engine checkpoint completed; the fingerprint tripwire must fail it")
	}
}

// sortedKeySet returns a reportSet's dedup keys in sorted order.
func sortedKeySet(s *reportSet) []string {
	res := &Result{Reports: s.snapshot()}
	return sortedKeys(res)
}
