package core

// Recorded-campaign support: the recording hook that captures one
// pre-failure pass into a record.Writer, and the replay path that runs the
// frontend from a record.Artifact instead of executing the target's
// pre-failure stage (Config.Record / Config.Replay).
//
// Replay preserves live semantics exactly: trace entries feed the same
// recordLocked path the tracing sink uses, recorded failure-point markers
// run the same dispatchFP body live injection runs (sharding, resume,
// pruning, verdict sharing), and cancellation behaves like a live run's —
// remaining markers are skipped and counted, the rest of the trace still
// applies. What replay drops is everything that made the pre-failure pass
// expensive: target code, source-location capture, pool instrumentation,
// and — when an engine checkpoint lies below the shard's first owned,
// uncovered failure point — the whole trace prefix up to the checkpoint.

import (
	"context"
	"fmt"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/record"
	"github.com/pmemgo/xfdetector/internal/shadow"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// recordFailurePoint hands one injected failure point to the artifact
// writer: the trace position just past its marker, the crash-state
// fingerprint, and the pool pages dirtied since the previous point.
// Callers hold sinkMu; the recording pass is sequential (Post is nil), so
// the pool delta and the shadow state are exactly the failure point's.
func (r *runner) recordFailurePoint(fpID int) {
	if r.recordErr != nil {
		return
	}
	delta := r.pool.TakeDelta()
	fpr := r.sh.CrashFingerprint()
	if err := r.cfg.Record.OnFailurePoint(fpID, r.preEntries, r.opsEver, fpr, delta, r.sh); err != nil {
		r.recordErr = err
	}
}

// finishRecording finalizes the artifact after a clean recording pass. A
// degraded pass (cancellation, harness faults) fails instead: a short
// artifact would silently shrink every future campaign.
func (r *runner) finishRecording() error {
	if r.recordErr != nil {
		return fmt.Errorf("core: recording: %w", r.recordErr)
	}
	r.degradeMu.Lock()
	incomplete, why := r.incomplete, r.incompleteWhy
	r.degradeMu.Unlock()
	if incomplete {
		return fmt.Errorf("core: recording degraded (%s); refusing to finalize a partial artifact", why)
	}
	var pre []record.Report
	for _, rep := range r.reports.snapshot() {
		pre = append(pre, record.Report{
			Class:        int(rep.Class),
			Addr:         rep.Addr,
			Size:         rep.Size,
			ReaderIP:     rep.ReaderIP,
			WriterIP:     rep.WriterIP,
			FailurePoint: rep.FailurePoint,
			PerfKind:     int(rep.PerfKind),
			Message:      rep.Message,
		})
	}
	if err := r.cfg.Record.Finish(r.target.Name, r.keptTrace, pre); err != nil {
		return fmt.Errorf("core: recording: %w", err)
	}
	return nil
}

// ownsFP reports whether this shard dispatches failure point fp.
func (r *runner) ownsFP(fp int) bool {
	return r.cfg.ShardCount <= 1 || fp%r.cfg.ShardCount == r.cfg.ShardIndex
}

// replayRecorded drives the whole frontend from the recorded artifact.
func (r *runner) replayRecorded() error {
	a := r.cfg.Replay
	// Seed the recording pass's pre-failure reports (performance bugs): a
	// checkpoint jump skips the trace prefix whose replay would have
	// re-detected them, and re-detections in the replayed suffix
	// deduplicate against the seeds.
	for _, rp := range a.Perf {
		r.reports.add(Report{
			Class:        BugClass(rp.Class),
			Addr:         rp.Addr,
			Size:         rp.Size,
			ReaderIP:     rp.ReaderIP,
			WriterIP:     rp.WriterIP,
			FailurePoint: rp.FailurePoint,
			PerfKind:     shadow.PerfBugKind(rp.PerfKind),
			Message:      rp.Message,
		})
	}
	startIdx, nextFP := 0, 0
	if ck := r.replayJump(a); ck != nil {
		startIdx, nextFP = ck.TraceIdx, ck.FP+1
	}
	tr := a.Trace
	for i := startIdx; i < tr.Len(); i++ {
		e := tr.At(i)
		r.sinkMu.Lock()
		var err error
		if e.Kind == trace.FailurePoint && e.Stage == trace.PreFailure {
			err = r.replayFailurePoint(a, nextFP)
			nextFP++
		} else {
			r.recordLocked(e)
		}
		r.sinkMu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// replayJump fast-forwards to the nearest engine checkpoint strictly below
// the first failure point this campaign must dispatch: it restores the
// serialized shadow, composes the pool image from the artifact's page
// deltas, buckets the skipped failure points exactly as live dispatch
// would have (owned-and-completed points resumed, the rest delegated), and
// returns the checkpoint so the caller resumes the trace at its position.
// Returns nil — full-trace replay, still sound — when no checkpoint
// qualifies, when the trace must be retained whole (KeepTrace), when the
// dense ablation shadow is in use (sparse state does not load into it), or
// when the checkpoint fails to decode.
func (r *runner) replayJump(a *record.Artifact) *record.Checkpoint {
	if r.cfg.KeepTrace || r.cfg.DenseShadow {
		return nil
	}
	startFP := len(a.FPs)
	if r.target.Post != nil {
		for fp := 0; fp < len(a.FPs); fp++ {
			if r.ownsFP(fp) && !r.cfg.CompletedFailurePoints[fp] {
				startFP = fp
				break
			}
		}
	}
	ck := a.BestCheckpoint(startFP)
	if ck == nil {
		return nil
	}
	sh, err := a.OpenShadow(ck)
	if err != nil || sh.Size() != r.pool.Size() {
		return nil // undecodable checkpoint: fall back to the full trace
	}
	if !r.cfg.DisablePerfBugs {
		sh.SetPerfBugHandler(r.onPerfBug)
	}
	if r.pool.FileBacked() {
		sh.SetColdPageCompaction(true)
	}
	r.sh = sh
	for _, d := range a.PoolAt(ck.FP) {
		r.pool.Poke(uint64(d.Index)*pmem.PageSize, d.Data)
	}
	r.failurePoints = ck.FP + 1
	r.opsEver = ck.OpsEver
	r.opsSinceFP = 0
	r.preEntries = ck.TraceIdx
	if r.target.Post != nil {
		r.degradeMu.Lock()
		for fp := 0; fp <= ck.FP; fp++ {
			if r.ownsFP(fp) {
				r.resumedFPs++
			} else {
				r.otherShardFPs++
			}
		}
		r.degradeMu.Unlock()
	}
	return ck
}

// replayFailurePoint handles one recorded failure-point marker: it brings
// the pool image up to the failure point with the recorded page delta,
// then mirrors live injection — the cancellation boundary, the counting,
// the marker, and dispatchFP — with one addition: before dispatching a
// point this campaign owns, the replayed shadow's crash-state fingerprint
// must match the recorded one. Callers hold sinkMu.
func (r *runner) replayFailurePoint(a *record.Artifact, fpIdx int) error {
	if fpIdx >= len(a.FPs) {
		return fmt.Errorf("core: recorded trace has more failure-point markers than the artifact's %d records", len(a.FPs))
	}
	if r.ctx.Err() != nil {
		r.opsSinceFP = 0
		r.noteSkipped(fmt.Sprintf("run cancelled: %v", context.Cause(r.ctx)))
		return nil
	}
	fp := a.FPs[fpIdx]
	for _, d := range fp.Delta {
		r.pool.Poke(uint64(d.Index)*pmem.PageSize, d.Data)
	}
	fpID := r.failurePoints
	if fpID != fpIdx {
		return fmt.Errorf("core: replay desynchronized: marker %d arrived at failure point %d", fpIdx, fpID)
	}
	r.failurePoints++
	r.opsSinceFP = 0
	r.recordLocked(trace.Entry{Kind: trace.FailurePoint, Stage: trace.PreFailure})
	if err := r.verifyReplayFingerprint(fpID, fp.Fingerprint); err != nil {
		return err
	}
	r.dispatchFP(fpID)
	return nil
}

// verifyReplayFingerprint is the fast-forward integrity tripwire: at every
// failure point this campaign is about to dispatch under pruning, the
// fingerprint the replayed shadow produces must equal the one the
// recording pass produced. A stale or corrupt engine checkpoint (or a
// truncated delta) cannot reproduce the recorded fingerprints, so it fails
// the run here instead of silently mis-classifying crash states.
func (r *runner) verifyReplayFingerprint(fpID int, want uint64) error {
	if !r.pruning() || r.target.Post == nil {
		return nil
	}
	if !r.ownsFP(fpID) || r.cfg.CompletedFailurePoints[fpID] {
		return nil
	}
	if got := r.sh.CrashFingerprint(); got != want {
		return fmt.Errorf("core: crash-state fingerprint mismatch at failure point %d (recorded %016x, replayed %016x): stale or corrupt engine checkpoint", fpID, want, got)
	}
	return nil
}
