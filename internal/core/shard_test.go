package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// Sharded campaigns: Config.ShardCount/ShardIndex partition the failure
// points of one campaign across processes. These tests pin the contract the
// CLI orchestrator builds on: every shard counts every failure point, each
// shard's report set is a sound subset of the single-process result, and
// the union over shards is exactly the single-process report-key set.

// manyFPTarget: a pre-failure stage with enough ordering points that every
// shard of a 2- or 3-way split owns several failure points, and a trailing
// unpersisted write so every post-run has a distinct race to observe.
func manyFPTarget(name string) Target {
	const lines = 12
	return Target{
		Name: name,
		Pre: func(c *Ctx) error {
			p := c.Pool()
			for i := 0; i < lines; i++ {
				p.Store64(uint64(i)*64, uint64(i)+1)
				p.Persist(uint64(i)*64, 8)
			}
			p.Store64(uint64(lines)*64, 1) // never persisted
			return nil
		},
		Post: func(c *Ctx) error {
			p := c.Pool()
			for l := 0; l <= lines; l++ {
				p.Load64(uint64(l) * 64)
			}
			return nil
		},
	}
}

// TestShardConfigValidation: an out-of-range shard layout is a harness
// error, not a silently empty campaign.
func TestShardConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{ShardCount: -1},
		{ShardCount: 2, ShardIndex: -1},
		{ShardCount: 2, ShardIndex: 2},
		{ShardCount: 3, ShardIndex: 5},
	} {
		if _, err := Run(cfg, figure11Target("shard-cfg")); err == nil {
			t.Errorf("ShardCount=%d ShardIndex=%d: expected a config error", cfg.ShardCount, cfg.ShardIndex)
		}
	}
	// ShardCount 1 and 0 both mean "not sharded" and must behave alike.
	for _, count := range []int{0, 1} {
		res, err := Run(Config{ShardCount: count}, figure11Target("shard-cfg"))
		if err != nil {
			t.Fatal(err)
		}
		if res.ShardCount != 0 || res.OtherShardFailurePoints != 0 {
			t.Errorf("ShardCount=%d: spurious shard accounting: %+v", count, res)
		}
	}
}

// TestShardUnionEquivalence: for both targets, both worker modes, and
// N ∈ {2, 3}: every shard injects the full failure-point count, owns a
// disjoint subset of post-runs, reports a sound subset of the sequential
// key set, and the union over shards equals it exactly.
func TestShardUnionEquivalence(t *testing.T) {
	targets := map[string]func(string) Target{
		"fig11":  figure11Target,
		"manyFP": manyFPTarget,
	}
	for tname, mk := range targets {
		seq, err := Run(Config{}, mk(tname+"-seq"))
		if err != nil {
			t.Fatal(err)
		}
		seqKeys := sortedKeys(seq)
		for _, workers := range []int{1, 4} {
			for _, shards := range []int{2, 3} {
				t.Run(fmt.Sprintf("%s/workers=%d/shards=%d", tname, workers, shards), func(t *testing.T) {
					union := newReportSet()
					postRuns, delegated := 0, 0
					for idx := 0; idx < shards; idx++ {
						res, err := Run(Config{
							Workers:    workers,
							ShardCount: shards,
							ShardIndex: idx,
						}, mk(tname+"-shard"))
						if err != nil {
							t.Fatal(err)
						}
						if res.Incomplete {
							t.Fatalf("shard %d marked incomplete: %+v", idx, res)
						}
						if res.FailurePoints != seq.FailurePoints {
							t.Errorf("shard %d: failure points = %d, want %d (every shard counts all points)",
								idx, res.FailurePoints, seq.FailurePoints)
						}
						if res.OtherShardFailurePoints != seq.FailurePoints-res.PostRuns {
							t.Errorf("shard %d: delegated = %d, want %d",
								idx, res.OtherShardFailurePoints, seq.FailurePoints-res.PostRuns)
						}
						if !subsetOf(sortedKeys(res), seqKeys) {
							t.Errorf("shard %d reports keys outside the sequential set:\nshard: %v\nseq:   %v",
								idx, sortedKeys(res), seqKeys)
						}
						for _, rep := range res.Reports {
							union.add(rep)
						}
						postRuns += res.PostRuns
						delegated += res.OtherShardFailurePoints
					}
					if postRuns != seq.PostRuns {
						t.Errorf("post runs across shards = %d, want %d (disjoint ownership)", postRuns, seq.PostRuns)
					}
					if delegated != (shards-1)*seq.FailurePoints {
						t.Errorf("delegated across shards = %d, want %d", delegated, (shards-1)*seq.FailurePoints)
					}
					got := sortedKeys(&Result{Reports: union.snapshot()})
					if !equalKeys(got, seqKeys) {
						t.Errorf("union diverges from sequential:\nunion: %v\nseq:   %v", got, seqKeys)
					}
				})
			}
		}
	}
}

func subsetOf(sub, super []string) bool {
	seen := make(map[string]bool, len(super))
	for _, k := range super {
		seen[k] = true
	}
	for _, k := range sub {
		if !seen[k] {
			return false
		}
	}
	return true
}

// TestShardResumeConverges: a shard that crashes mid-campaign and resumes
// from its checkpoint (CompletedFailurePoints + SeedReports restricted to
// its own points) still contributes exactly its partition, and the union
// over all shards still equals the single-process set.
func TestShardResumeConverges(t *testing.T) {
	const shards = 3
	seq, err := Run(Config{}, manyFPTarget("shard-resume-seq"))
	if err != nil {
		t.Fatal(err)
	}
	union := newReportSet()
	for idx := 0; idx < shards; idx++ {
		cfg := Config{ShardCount: shards, ShardIndex: idx}
		target := manyFPTarget("shard-resume")
		if idx == 1 {
			// Record the shard's checkpoint stream, keep only the first
			// half — the crash — and resume from it.
			type line struct {
				fp    int
				fresh []Report
			}
			var full []line
			c := cfg
			c.OnPostRunComplete = func(fp int, _ uint64, fresh []Report) {
				full = append(full, line{fp, fresh})
			}
			if _, err := Run(c, target); err != nil {
				t.Fatal(err)
			}
			done := make(map[int]bool)
			var seed []Report
			for _, l := range full[:len(full)/2] {
				done[l.fp] = true
				seed = append(seed, l.fresh...)
			}
			cfg.CompletedFailurePoints = done
			cfg.SeedReports = seed
		}
		res, err := Run(cfg, target)
		if err != nil {
			t.Fatal(err)
		}
		if res.Incomplete {
			t.Fatalf("shard %d incomplete: %+v", idx, res)
		}
		for _, rep := range res.Reports {
			union.add(rep)
		}
	}
	got := sortedKeys(&Result{Reports: union.snapshot()})
	if !equalKeys(got, sortedKeys(seq)) {
		t.Errorf("union after shard crash+resume diverges:\nunion: %v\nseq:   %v", got, sortedKeys(seq))
	}
}

// checkpointRecord mirrors the CLI's JSONL checkpoint line, so this test
// exercises the same serialize-to-disk shape the -checkpoint flag uses.
type checkpointRecord struct {
	FP      int      `json:"fp"`
	Reports []Report `json:"reports,omitempty"`
}

// TestParallelCheckpointSerializedAndResumes is the Workers>1 checkpoint
// contract under the race detector: OnPostRunComplete invocations must be
// serialized even though they originate on worker goroutines (the callback
// appends to a JSONL file, exactly like the CLI's -checkpoint), and a
// parallel campaign resumed from the first half of that checkpoint must
// converge to the sequential report key set.
func TestParallelCheckpointSerializedAndResumes(t *testing.T) {
	const workers = 4
	seq, err := Run(Config{}, manyFPTarget("par-ckpt-seq"))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var inFlight atomic.Int32
	var overlapped atomic.Bool
	cfg := Config{Workers: workers, OnPostRunComplete: func(fp int, _ uint64, fresh []Report) {
		if inFlight.Add(1) != 1 {
			overlapped.Store(true)
		}
		line, err := json.Marshal(checkpointRecord{FP: fp, Reports: fresh})
		if err == nil {
			f.Write(append(line, '\n'))
		}
		inFlight.Add(-1)
	}}
	ref, err := Run(cfg, manyFPTarget("par-ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.Load() {
		t.Fatal("OnPostRunComplete invocations overlapped under Workers>1")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !equalKeys(sortedKeys(ref), sortedKeys(seq)) {
		t.Fatalf("parallel checkpointed run diverges from sequential:\npar: %v\nseq: %v",
			sortedKeys(ref), sortedKeys(seq))
	}

	// Parse the checkpoint back, keep the first half, and resume — still
	// under Workers>1 — asserting convergence to the sequential key set.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []checkpointRecord
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var l checkpointRecord
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("checkpoint line does not parse: %v", err)
		}
		lines = append(lines, l)
	}
	if len(lines) != ref.PostRuns {
		t.Fatalf("checkpoint lines = %d, want %d", len(lines), ref.PostRuns)
	}
	done := make(map[int]bool)
	var seed []Report
	for _, l := range lines[:len(lines)/2] {
		done[l.FP] = true
		seed = append(seed, l.Reports...)
	}
	res, err := Run(Config{
		Workers:                workers,
		CompletedFailurePoints: done,
		SeedReports:            seed,
	}, manyFPTarget("par-ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFailurePoints != len(done) {
		t.Errorf("resumed failure points = %d, want %d", res.ResumedFailurePoints, len(done))
	}
	if !equalKeys(sortedKeys(res), sortedKeys(seq)) {
		t.Errorf("resumed parallel run diverges from sequential:\nres: %v\nseq: %v",
			sortedKeys(res), sortedKeys(seq))
	}
}
