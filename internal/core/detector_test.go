package core

import (
	"strings"
	"testing"

	"github.com/pmemgo/xfdetector/internal/trace"
)

// Layout of the Fig. 2 / Fig. 11 example: a backup area, a valid bit
// (commit variable) and a small persistent array.
const (
	backupOff = 0x100
	backupLen = 16
	validOff  = 0x110
	validLen  = 4
	arrOff    = 0x200
	arrLen    = 64
)

// figure11Target builds the paper's Fig. 11 demonstration program: the
// pre-failure stage writes backup and valid, persists both with one
// barrier, updates the array in place and persists again; the recovery
// reads valid and, if set, rolls back from backup.
func figure11Target(name string) Target {
	return Target{
		Name: name,
		Setup: func(c *Ctx) error {
			c.AddCommitRange(validOff, validLen, backupOff, backupLen)
			c.AddCommitRange(validOff, validLen, arrOff, arrLen)
			return nil
		},
		Pre: func(c *Ctx) error {
			p := c.Pool()
			p.Store64(backupOff, 0)      // backup.idx = 0
			p.Store64(backupOff+8, 1111) // backup.val = old arr[0]
			p.Store32(validOff, 1)       // valid = 1 (commit variable)
			p.Persist(backupOff, 0x14)   // one barrier covers backup+valid
			p.Store64(arrOff, 2222)      // arr[0] = new value
			p.Persist(arrOff, 8)
			return nil
		},
		Post: func(c *Ctx) error {
			p := c.Pool()
			if p.Load32(validOff) != 0 { // benign commit-variable read
				v := p.Load64(backupOff + 8) // read backup for rollback
				p.Store64(arrOff, v)
			}
			return nil
		},
	}
}

// TestFigure11StepByStep reproduces the paper's worked example: failure
// point F1 (before the first barrier) yields a cross-failure race on the
// backup, and F2 (before the second barrier) yields a cross-failure
// semantic bug, because backup and valid were persisted by the same fence.
func TestFigure11StepByStep(t *testing.T) {
	res, err := Run(Config{}, figure11Target("fig11"))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if got := res.Count(CrossFailureRace); got != 1 {
		t.Errorf("cross-failure races = %d, want 1", got)
	}
	if got := res.Count(CrossFailureSemantic); got != 1 {
		t.Errorf("cross-failure semantic bugs = %d, want 1", got)
	}
	if got := res.Count(PostFailureFault); got != 0 {
		t.Errorf("post-failure faults = %d, want 0", got)
	}
	// F1 and F2 plus the final quiescent-state failure point.
	if res.FailurePoints != 3 {
		t.Errorf("failure points = %d, want 3", res.FailurePoints)
	}
	if res.BenignReads == 0 {
		t.Error("expected benign commit-variable reads to be counted")
	}
	for _, r := range res.Reports {
		if r.Class == CrossFailureRace || r.Class == CrossFailureSemantic {
			if !strings.Contains(r.ReaderIP, "detector_test.go") {
				t.Errorf("reader IP %q does not point into the test", r.ReaderIP)
			}
			if !strings.Contains(r.WriterIP, "detector_test.go") {
				t.Errorf("writer IP %q does not point into the test", r.WriterIP)
			}
		}
	}
}

// figure2FixedTarget is the corrected Fig. 2 protocol (the paper's green
// box): set valid only after the backup is persisted, clear it after the
// in-place update is persisted. It must be clean under detection.
func figure2FixedTarget() Target {
	return Target{
		Name: "fig2-fixed",
		Setup: func(c *Ctx) error {
			c.AddCommitRange(validOff, validLen, backupOff, backupLen)
			c.AddCommitRange(validOff, validLen, arrOff, arrLen)
			p := c.Pool()
			p.Store64(arrOff, 1111)
			p.Store32(validOff, 0)
			p.Persist(arrOff, 8)
			p.Persist(validOff, validLen)
			return nil
		},
		Pre: func(c *Ctx) error {
			p := c.Pool()
			p.Store64(backupOff, 0)
			p.Store64(backupOff+8, p.Load64(arrOff))
			p.Persist(backupOff, backupLen)
			p.Store32(validOff, 1)
			p.Persist(validOff, validLen)
			p.Store64(arrOff, 2222)
			p.Persist(arrOff, 8)
			p.Store32(validOff, 0)
			p.Persist(validOff, validLen)
			return nil
		},
		Post: func(c *Ctx) error {
			p := c.Pool()
			if p.Load32(validOff) != 0 {
				v := p.Load64(backupOff + 8)
				p.Store64(arrOff, v)
				p.Persist(arrOff, 8)
				p.Store32(validOff, 0)
				p.Persist(validOff, validLen)
			}
			return nil
		},
	}
}

// TestFigure2FixedIsClean checks the corrected update/recover pair from
// Fig. 2 survives every failure point without a report.
func TestFigure2FixedIsClean(t *testing.T) {
	res, err := Run(Config{}, figure2FixedTarget())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() || res.Count(Performance) != 0 {
		t.Fatalf("expected clean run, got:\n%s", res)
	}
	if res.FailurePoints < 4 {
		t.Errorf("failure points = %d, want >= 4", res.FailurePoints)
	}
}

// TestFigure2BuggyInvertedValid runs the Fig. 2 buggy protocol (valid set
// to the wrong values): the recovery then always acts on the wrong
// version, which detection must surface at some failure point.
func TestFigure2BuggyInvertedValid(t *testing.T) {
	target := figure2FixedTarget()
	target.Name = "fig2-buggy"
	target.Pre = func(c *Ctx) error {
		p := c.Pool()
		p.Store64(backupOff, 0)
		p.Store64(backupOff+8, p.Load64(arrOff))
		p.Persist(backupOff, backupLen)
		p.Store32(validOff, 0) // BUG: should set valid = 1
		p.Persist(validOff, validLen)
		p.Store64(arrOff, 2222)
		p.Persist(arrOff, 8)
		p.Store32(validOff, 1) // BUG: should clear valid
		p.Persist(validOff, validLen)
		return nil
	}
	res, err := Run(Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.Count(CrossFailureSemantic) == 0 {
		t.Error("expected a cross-failure semantic bug (recovery rolls back with stale backup)")
	}
}

// TestModes exercises the three Fig. 12b configurations.
func TestModes(t *testing.T) {
	target := figure11Target("modes")

	orig, err := Run(Config{Mode: ModeOriginal}, target)
	if err != nil {
		t.Fatal(err)
	}
	if orig.PreEntries != 0 || orig.FailurePoints != 0 || len(orig.Reports) != 0 {
		t.Errorf("original mode must not trace or detect: %+v", orig)
	}

	pure, err := Run(Config{Mode: ModeTraceOnly, KeepTrace: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	if pure.PreEntries == 0 || pure.FailurePoints != 0 || len(pure.Reports) != 0 {
		t.Errorf("trace-only mode must trace without detecting: %+v", pure)
	}
	tr := pure.PreTrace()
	if tr == nil || tr.Len() != pure.PreEntries {
		t.Fatalf("kept trace inconsistent with entry count")
	}
	counts := tr.Counts()
	if counts[trace.Write] == 0 || counts[trace.SFence] == 0 {
		t.Errorf("trace misses writes or fences: %v", counts)
	}

	full, err := Run(Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	if full.FailurePoints == 0 || len(full.Reports) == 0 {
		t.Errorf("detect mode found nothing: %+v", full)
	}
}

// TestMaxFailurePoints verifies the failure-point cap.
func TestMaxFailurePoints(t *testing.T) {
	res, err := Run(Config{MaxFailurePoints: 1}, figure11Target("capped"))
	if err != nil {
		t.Fatal(err)
	}
	if res.FailurePoints != 1 {
		t.Errorf("failure points = %d, want 1", res.FailurePoints)
	}
}

// TestSkipFailureRegion verifies that no failure points are injected inside
// a skipFailure region (Table 2).
func TestSkipFailureRegion(t *testing.T) {
	target := figure11Target("skip-failure")
	inner := target.Pre
	target.Pre = func(c *Ctx) error {
		c.SkipFailureBegin(true)
		defer c.SkipFailureEnd(true)
		return inner(c)
	}
	res, err := Run(Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	// Only the final quiescent-state failure point remains.
	if res.FailurePoints != 1 {
		t.Errorf("failure points = %d, want 1 (final only)", res.FailurePoints)
	}
}

// TestAddFailurePoint verifies on-demand failure points fire even without
// an ordering point.
func TestAddFailurePoint(t *testing.T) {
	raceDetected := false
	target := Target{
		Name: "manual-fp",
		Pre: func(c *Ctx) error {
			c.Pool().Store64(0x40, 7)
			c.AddFailurePoint(true)
			c.Pool().Persist(0x40, 8)
			return nil
		},
		Post: func(c *Ctx) error {
			c.Pool().Load64(0x40)
			return nil
		},
	}
	res, err := Run(Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reports {
		if r.Class == CrossFailureRace {
			raceDetected = true
		}
	}
	if !raceDetected {
		t.Fatalf("manual failure point missed the race:\n%s", res)
	}
}

// TestSkipDetectionRegion verifies reads inside a skipDetection region are
// not checked.
func TestSkipDetectionRegion(t *testing.T) {
	target := Target{
		Name: "skip-detect",
		Pre: func(c *Ctx) error {
			c.Pool().Store64(0x40, 7) // never persisted
			c.Pool().Persist(0x80, 8) // unrelated barrier creates a failure point
			return nil
		},
		Post: func(c *Ctx) error {
			c.SkipDetectionBegin(true, trace.PostFailure)
			c.Pool().Load64(0x40)
			c.SkipDetectionEnd(true, trace.PostFailure)
			return nil
		},
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean() {
		t.Fatalf("skipDetection region was checked:\n%s", res)
	}
}

// TestExplicitRoI verifies that with ExplicitRoI only annotated regions
// inject failures (pre) and are checked (post).
func TestExplicitRoI(t *testing.T) {
	target := Target{
		Name:        "roi",
		ExplicitRoI: true,
		Pre: func(c *Ctx) error {
			p := c.Pool()
			p.Store64(0x40, 1) // outside RoI: no failure injection
			p.Persist(0x40, 8)
			c.RoIBegin(true, trace.PreFailure)
			p.Store64(0x80, 2) // inside RoI, never persisted properly
			p.Persist(0xC0, 8) // barrier not covering 0x80
			c.RoIEnd(true, trace.PreFailure)
			p.Store64(0x100, 3) // outside again
			p.Persist(0x100, 8)
			return nil
		},
		Post: func(c *Ctx) error {
			p := c.Pool()
			p.Load64(0x80) // outside post RoI: unchecked
			c.RoIBegin(true, trace.PostFailure)
			p.Load64(0x80) // checked: race
			c.RoIEnd(true, trace.PostFailure)
			return nil
		},
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if got := res.Count(CrossFailureRace); got != 1 {
		t.Errorf("races = %d, want exactly 1 (only the in-RoI read)", got)
	}
	// One failure point inside the RoI (before Persist(0xC0)) plus the
	// end-of-RoI point; the persists outside the RoI inject nothing.
	if res.FailurePoints != 2 {
		t.Errorf("failure points = %d, want 2", res.FailurePoints)
	}
}

// TestPostFailureFault verifies that a crashing post-failure stage is
// reported as an observable bug rather than aborting detection (the
// mechanism by which the paper's Bug 4 and the Fig. 1 segmentation fault
// become visible).
func TestPostFailureFault(t *testing.T) {
	target := Target{
		Name: "crashing-post",
		Pre: func(c *Ctx) error {
			c.Pool().Store64(0x40, 7)
			c.Pool().Persist(0x40, 8)
			return nil
		},
		Post: func(c *Ctx) error {
			var s []int
			_ = s[3] // index out of range: the segfault analogue
			return nil
		},
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(PostFailureFault) != 1 {
		t.Fatalf("post-failure faults = %d, want 1:\n%s", res.Count(PostFailureFault), res)
	}
	if res.FailurePoints < 2 {
		t.Errorf("detection must continue past a crashing post stage, got %d failure points", res.FailurePoints)
	}
}

// TestCompleteDetection verifies the termination annotations for both
// stages.
func TestCompleteDetection(t *testing.T) {
	postTruncated := true
	target := Target{
		Name: "complete",
		Pre: func(c *Ctx) error {
			p := c.Pool()
			p.Store64(0x40, 1)
			p.Persist(0x40, 8)
			c.CompleteDetection(true, trace.PreFailure)
			p.Store64(0x80, 2)
			p.Persist(0x80, 8)
			return nil
		},
		Post: func(c *Ctx) error {
			c.CompleteDetection(true, trace.PostFailure)
			postTruncated = false // unreachable
			return nil
		},
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailurePoints != 1 {
		t.Errorf("failure points = %d, want 1 (detection completed)", res.FailurePoints)
	}
	if !postTruncated {
		t.Error("post-failure stage ran past its termination point")
	}
	if !res.Clean() {
		t.Errorf("unexpected reports:\n%s", res)
	}
}

// TestPerformanceBugRedundantFlush checks the Fig. 9 yellow-edge report.
func TestPerformanceBugRedundantFlush(t *testing.T) {
	target := Target{
		Name: "perf",
		Pre: func(c *Ctx) error {
			p := c.Pool()
			p.Store64(0x40, 1)
			p.Persist(0x40, 8)
			p.Persist(0x40, 8) // redundant: nothing modified
			return nil
		},
	}
	res, err := Run(Config{}, target)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Count(Performance); got != 1 {
		t.Fatalf("performance bugs = %d, want 1:\n%s", got, res)
	}
	if res.Reports[0].PerfKind != 0 && res.ByClass(Performance)[0].PerfKind.String() != "redundant-writeback" {
		t.Errorf("unexpected perf kind: %v", res.ByClass(Performance)[0].PerfKind)
	}
}

// TestDeduplication verifies repeated identical reader/writer pairs
// collapse into one report across failure points.
func TestDeduplication(t *testing.T) {
	target := Target{
		Name: "dedup",
		Pre: func(c *Ctx) error {
			p := c.Pool()
			for i := 0; i < 5; i++ {
				p.Store64(0x40, uint64(i)) // never flushed
				p.Persist(0x400, 8)        // unrelated barrier: 5 failure points
			}
			return nil
		},
		Post: func(c *Ctx) error {
			c.Pool().Load64(0x40)
			return nil
		},
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Count(CrossFailureRace); got != 1 {
		t.Errorf("races = %d, want 1 (deduplicated)", got)
	}
	if res.FailurePoints < 5 {
		t.Errorf("failure points = %d, want >= 5", res.FailurePoints)
	}
}

// TestNilPre verifies harness-misuse reporting.
func TestNilPre(t *testing.T) {
	if _, err := Run(Config{}, Target{Name: "bad"}); err == nil {
		t.Fatal("expected error for target without a pre-failure stage")
	}
}

// TestEmptyIntervalOptimization verifies that consecutive ordering points
// with no PM operations in between inject only one failure point (§5.4).
func TestEmptyIntervalOptimization(t *testing.T) {
	target := Target{
		Name: "empty-intervals",
		Pre: func(c *Ctx) error {
			p := c.Pool()
			p.Store64(0x40, 1)
			p.CLWB(0x40, 8)
			p.SFence()
			p.SFence() // no ops since previous fence: no failure point
			p.SFence()
			return nil
		},
		Post: func(c *Ctx) error { return nil },
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	// One before the first fence, plus the final quiescent point.
	if res.FailurePoints != 2 {
		t.Errorf("failure points = %d, want 2", res.FailurePoints)
	}
}

// TestUninitializedAllocRead models the paper's Bug 2: reading a location
// that was atomically allocated but never initialized is a cross-failure
// race (the allocator is not guaranteed to zero or persist it).
func TestUninitializedAllocRead(t *testing.T) {
	target := Target{
		Name: "alloc-uninit",
		Pre: func(c *Ctx) error {
			p := c.Pool()
			p.Announce(trace.AtomicAlloc, 0x400, 64, "alloc")
			p.Persist(0x800, 8) // unrelated barrier -> failure point
			return nil
		},
		Post: func(c *Ctx) error {
			c.Pool().Load64(0x400) // reads potentially uninitialized data
			return nil
		},
	}
	res, err := Run(Config{DisablePerfBugs: true}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count(CrossFailureRace) != 1 {
		t.Fatalf("expected the uninitialized-allocation race:\n%s", res)
	}
}
