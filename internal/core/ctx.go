package core

import (
	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// Ctx is the handle a tested program receives in each execution stage. It
// provides access to the persistent memory pool for that stage and the
// XFDetector software interface of Table 2 of the paper.
//
// All annotation functions take the Table 2 (condition, stage) arguments: a
// call is a no-op unless condition is true and stage matches the stage the
// Ctx is executing in (trace.BothStages always matches). Programs built on
// the pmobj library usually only need the RoI controls; the remaining
// annotations expose crash-consistency semantics of programs built directly
// on low-level primitives (§5.2).
type Ctx struct {
	r     *runner
	pool  *pmem.Pool
	stage trace.Stage
	// failurePoint is the index of the failure point a post-failure Ctx
	// belongs to; -1 in the pre-failure stage.
	failurePoint int
	// postOutsideRoI tracks the RoI nesting for the post-failure stage.
	postOutsideRoI bool
	// gate is non-nil for post-failure stages running under
	// Config.PostRunTimeout.
	gate *postGate
}

// Abandoned returns a channel that is closed when the harness abandons this
// post-failure run (its Config.PostRunTimeout deadline expired or the run
// was cancelled). Long-running post-failure stages that wait on external
// state — and so might never touch PM again — should select on it to wind
// down promptly. It returns nil (blocking forever in a select) when the run
// has no deadline.
func (c *Ctx) Abandoned() <-chan struct{} {
	if c.gate == nil {
		return nil
	}
	return c.gate.ch
}

// Pool returns the persistent memory pool of the current stage. Post-failure
// stages receive a distinct pool backed by the copied PM image.
func (c *Ctx) Pool() *pmem.Pool { return c.pool }

// Stage reports which execution stage this Ctx belongs to.
func (c *Ctx) Stage() trace.Stage { return c.stage }

// FailurePoint returns the index of the failure point that spawned a
// post-failure stage, or -1 for the pre-failure stage.
func (c *Ctx) FailurePoint() int { return c.failurePoint }

func (c *Ctx) stageMatches(s trace.Stage) bool {
	return s == trace.BothStages || s == c.stage
}

// RoIBegin marks the start of a region-of-interest. In the pre-failure
// stage, failure points are injected only inside the RoI; in the
// post-failure stage, only reads inside the RoI are checked.
func (c *Ctx) RoIBegin(condition bool, stage trace.Stage) {
	if !condition || !c.stageMatches(stage) {
		return
	}
	c.pool.Announce(trace.RoIBegin, 0, 0, "")
	switch c.stage {
	case trace.PreFailure:
		c.r.roiActive = true
	case trace.PostFailure:
		if c.postOutsideRoI {
			c.pool.ExitSkipDetection()
			c.postOutsideRoI = false
		}
	}
}

// RoIEnd marks the end of a region-of-interest. Ending the pre-failure RoI
// injects one final failure point so that the quiescent state at the end of
// the region is also tested.
func (c *Ctx) RoIEnd(condition bool, stage trace.Stage) {
	if !condition || !c.stageMatches(stage) {
		return
	}
	c.pool.Announce(trace.RoIEnd, 0, 0, "")
	switch c.stage {
	case trace.PreFailure:
		if c.r.roiActive {
			c.r.maybeInjectFinal()
			c.r.roiActive = false
		}
	case trace.PostFailure:
		if !c.postOutsideRoI {
			c.pool.EnterSkipDetection()
			c.postOutsideRoI = true
		}
	}
}

// terminationSignal unwinds a post-failure stage that called
// CompleteDetection; the runner recovers it.
type terminationSignal struct{}

// CompleteDetection terminates detection (Table 2). In the pre-failure
// stage no further failure points are injected; in the post-failure stage
// the current post-failure execution ends immediately at this annotated
// termination point.
func (c *Ctx) CompleteDetection(condition bool, stage trace.Stage) {
	if !condition || !c.stageMatches(stage) {
		return
	}
	switch c.stage {
	case trace.PreFailure:
		c.r.detectionDone = true
	case trace.PostFailure:
		panic(terminationSignal{})
	}
}

// SkipFailureBegin starts a region in which no failure points are injected,
// e.g. trusted library code (Table 2). Pre-failure stage only.
func (c *Ctx) SkipFailureBegin(condition bool) {
	if !condition || c.stage != trace.PreFailure {
		return
	}
	c.r.skipFailure++
}

// SkipFailureEnd ends a region started by SkipFailureBegin.
func (c *Ctx) SkipFailureEnd(condition bool) {
	if !condition || c.stage != trace.PreFailure {
		return
	}
	if c.r.skipFailure > 0 {
		c.r.skipFailure--
	}
}

// AddFailurePoint injects a failure point here, on demand, regardless of
// ordering points. Programs using crash-consistency mechanisms whose
// consistency is not bounded by ordering points (e.g. checksum-based
// recovery, §5.5) use it to test additional interleavings.
func (c *Ctx) AddFailurePoint(condition bool) {
	if !condition || c.stage != trace.PreFailure {
		return
	}
	if c.r.mode() != ModeDetect || c.r.detectionDone || c.r.setupPhase {
		return
	}
	c.r.injectFailureSync()
}

// SkipDetectionBegin starts a region whose operations the backend does not
// check (Table 2).
func (c *Ctx) SkipDetectionBegin(condition bool, stage trace.Stage) {
	if !condition || !c.stageMatches(stage) {
		return
	}
	c.pool.EnterSkipDetection()
}

// SkipDetectionEnd ends a region started by SkipDetectionBegin.
func (c *Ctx) SkipDetectionEnd(condition bool, stage trace.Stage) {
	if !condition || !c.stageMatches(stage) {
		return
	}
	c.pool.ExitSkipDetection()
}

// AddCommitVar registers [addr, addr+size) as a commit variable (Table 2).
// Post-failure reads of it become benign cross-failure races, and its
// writes delimit the consistent version of associated data (§3.2). Register
// commit variables before the writes they govern.
func (c *Ctx) AddCommitVar(addr, size uint64) {
	c.pool.Announce(trace.RegCommitVar, addr, size, "")
}

// AddCommitRange associates the address set [addr, addr+size) with the
// commit variable at [varAddr, varAddr+varSize), registering the variable
// if needed (Table 2). Associated data is semantically consistent only when
// last modified between the last two commit writes (Eq. 3).
func (c *Ctx) AddCommitRange(varAddr, varSize, addr, size uint64) {
	e := trace.Entry{Kind: trace.RegCommitRange, Addr: varAddr, Size: varSize, Addr2: addr, Size2: size}
	c.pool.AnnounceEntry(e)
}
