package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pmemgo/xfdetector/internal/pmem"
	"github.com/pmemgo/xfdetector/internal/trace"
)

// Resilience tests: the detection loop must survive hostile targets and
// harness-internal faults, degrading into honest partial results instead of
// crashing, hanging, or leaking goroutines.

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (small slack for runtime bookkeeping goroutines), failing with a
// full stack dump when it does not.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestSetupPanicRecovered: a panicking Setup must become a harness error,
// not a process crash.
func TestSetupPanicRecovered(t *testing.T) {
	target := Target{
		Name:  "setup-panic",
		Setup: func(c *Ctx) error { panic("hostile setup") },
		Pre:   func(c *Ctx) error { return nil },
	}
	res, err := Run(Config{}, target)
	if err == nil {
		t.Fatalf("expected a harness error, got result:\n%v", res)
	}
	if !strings.Contains(err.Error(), "setup panicked") || !strings.Contains(err.Error(), "hostile setup") {
		t.Errorf("error %q does not describe the setup panic", err)
	}
}

// TestPrePanicRecovered: same for the pre-failure stage, including a
// RangeError panic from an out-of-bounds PM access.
func TestPrePanicRecovered(t *testing.T) {
	for _, tc := range []struct {
		name string
		pre  func(c *Ctx) error
		want string
	}{
		{"explicit", func(c *Ctx) error { panic("hostile pre") }, "hostile pre"},
		{"oob", func(c *Ctx) error { c.Pool().Store64(1<<40, 1); return nil }, "out of range"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Config{}, Target{Name: "pre-panic", Pre: tc.pre})
			if err == nil {
				t.Fatalf("expected a harness error, got result:\n%v", res)
			}
			if !strings.Contains(err.Error(), "pre-failure stage panicked") || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not describe the pre-failure panic", err)
			}
		})
	}
}

// TestStageErrorsKeepWrapping: plain stage errors still come back wrapped,
// with the cause reachable through errors.Is.
func TestStageErrorsKeepWrapping(t *testing.T) {
	cause := errors.New("disk on fire")
	_, err := Run(Config{}, Target{
		Name: "pre-error",
		Pre:  func(c *Ctx) error { return cause },
	})
	if !errors.Is(err, cause) {
		t.Fatalf("pre-failure error lost its cause: %v", err)
	}
}

// TestNoWorkerLeakOnFailingStages: with Workers > 1, the parallel engine
// must be drained even when Setup or Pre fails or panics (before the fix,
// a failing Setup leaked every worker goroutine).
func TestNoWorkerLeakOnFailingStages(t *testing.T) {
	stages := map[string]Target{
		"setup-error": {
			Name:  "leak-setup-error",
			Setup: func(c *Ctx) error { return errors.New("setup says no") },
			Pre:   func(c *Ctx) error { return nil },
			Post:  func(c *Ctx) error { return nil },
		},
		"setup-panic": {
			Name:  "leak-setup-panic",
			Setup: func(c *Ctx) error { panic("setup panic") },
			Pre:   func(c *Ctx) error { return nil },
			Post:  func(c *Ctx) error { return nil },
		},
		"pre-error": {
			Name: "leak-pre-error",
			Pre:  func(c *Ctx) error { return errors.New("pre says no") },
			Post: func(c *Ctx) error { return nil },
		},
		"pre-panic": {
			Name: "leak-pre-panic",
			Pre:  func(c *Ctx) error { panic("pre panic") },
			Post: func(c *Ctx) error { return nil },
		},
	}
	for name, target := range stages {
		t.Run(name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			if _, err := Run(Config{Workers: 4}, target); err == nil {
				t.Fatal("expected a harness error")
			}
			waitForGoroutines(t, base)
		})
	}
}

// spinTarget returns a target with many failure points whose post stage
// spins forever in the given way.
func spinTarget(name string, post func(c *Ctx) error) Target {
	return Target{
		Name: name,
		Pre: func(c *Ctx) error {
			for i := 0; i < 6; i++ {
				c.Pool().Store64(uint64(i)*64, uint64(i)+1)
				c.Pool().Persist(uint64(i)*64, 8)
			}
			return nil
		},
		Post: post,
	}
}

// TestPostRunTimeoutAbandonsPMSpinner: a post-failure stage looping on PM
// reads forever (within the MaxPostOps budget) is abandoned at the
// deadline, reported as a post-failure fault, counted in
// AbandonedPostRuns, and its goroutines drain (they unwind at their next
// PM operation). Sequential and parallel modes alike.
func TestPostRunTimeoutAbandonsPMSpinner(t *testing.T) {
	post := func(c *Ctx) error {
		for {
			c.Pool().Load64(0)
			time.Sleep(100 * time.Microsecond)
		}
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := runtime.NumGoroutine()
			res, err := Run(Config{
				Workers:         workers,
				PostRunTimeout:  30 * time.Millisecond,
				DisablePerfBugs: true,
			}, spinTarget("pm-spinner", post))
			if err != nil {
				t.Fatal(err)
			}
			if res.AbandonedPostRuns != res.PostRuns || res.PostRuns == 0 {
				t.Errorf("abandoned = %d, post runs = %d: every post run should be abandoned",
					res.AbandonedPostRuns, res.PostRuns)
			}
			if got := res.Count(PostFailureFault); got != 1 {
				t.Errorf("post-failure faults = %d, want 1 (deduplicated deadline report):\n%s", got, res)
			}
			if res.Incomplete {
				t.Errorf("deadline abandonment must not mark the result incomplete:\n%s", res)
			}
			waitForGoroutines(t, base)
		})
	}
}

// TestPostRunTimeoutAbandonsSilentSpinner: a post-failure stage that never
// touches PM — invisible to the MaxPostOps budget — is still abandoned; a
// cooperative spinner watching Ctx.Abandoned drains promptly.
func TestPostRunTimeoutAbandonsSilentSpinner(t *testing.T) {
	post := func(c *Ctx) error {
		<-c.Abandoned() // park without ever touching PM
		return errors.New("abandoned")
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			base := runtime.NumGoroutine()
			res, err := Run(Config{
				Workers:         workers,
				PostRunTimeout:  20 * time.Millisecond,
				DisablePerfBugs: true,
			}, spinTarget("silent-spinner", post))
			if err != nil {
				t.Fatal(err)
			}
			if res.AbandonedPostRuns != res.PostRuns || res.PostRuns == 0 {
				t.Errorf("abandoned = %d, post runs = %d", res.AbandonedPostRuns, res.PostRuns)
			}
			waitForGoroutines(t, base)
		})
	}
}

// TestPostRunTimeoutSparesFastRuns: with a generous deadline, the timed
// path must behave exactly like the untimed one.
func TestPostRunTimeoutSparesFastRuns(t *testing.T) {
	plain, err := Run(Config{}, figure11Target("timed-base"))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		timed, err := Run(Config{Workers: workers, PostRunTimeout: time.Minute}, figure11Target("timed-base"))
		if err != nil {
			t.Fatal(err)
		}
		if !equalKeys(sortedKeys(plain), sortedKeys(timed)) {
			t.Errorf("workers=%d: timed run diverges:\nplain: %v\ntimed: %v", workers, plain.Reports, timed.Reports)
		}
		if timed.AbandonedPostRuns != 0 || timed.Incomplete {
			t.Errorf("workers=%d: spurious degradation: %+v", workers, timed)
		}
	}
}

// TestCancellationAtFailurePointBoundaries: once the context is cancelled,
// no further failure points are injected; the partial result is honest
// about what was skipped.
func TestCancellationAtFailurePointBoundaries(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			fired := 0
			target := Target{
				Name: "cancel-mid-pre",
				Pre: func(c *Ctx) error {
					for i := 0; i < 8; i++ {
						c.Pool().Store64(uint64(i)*64, 1)
						c.Pool().Persist(uint64(i)*64, 8)
						fired++
						if fired == 3 {
							cancel()
						}
					}
					return nil
				},
				Post: func(c *Ctx) error { c.Pool().Load64(0); return nil },
			}
			res, err := RunContext(ctx, Config{Workers: workers, DisablePerfBugs: true}, target)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Incomplete {
				t.Fatalf("cancelled run not marked incomplete:\n%s", res)
			}
			if res.FailurePoints != 3 {
				t.Errorf("failure points = %d, want 3 (injection stops at cancellation)", res.FailurePoints)
			}
			// The 5 remaining ordering points plus the final quiescent
			// injection are skipped.
			if res.SkippedFailurePoints != 6 {
				t.Errorf("skipped = %d, want 6", res.SkippedFailurePoints)
			}
			if !strings.Contains(res.IncompleteReason, "cancelled") {
				t.Errorf("reason %q does not mention cancellation", res.IncompleteReason)
			}
		})
	}
}

// TestSnapshotFaultQuarantine: a failing image copy is retried once; a
// persistent fault quarantines the failure point and the campaign
// continues, in both engine modes.
func TestSnapshotFaultQuarantine(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var calls atomic.Int64
			hooks := &pmem.FaultHooks{Snapshot: func() error {
				// Fail both the first attempt and its retry for the second
				// failure point only.
				n := calls.Add(1)
				if n == 2 || n == 3 {
					return errors.New("image copy exhausted")
				}
				return nil
			}}
			res, err := Run(Config{Workers: workers, DisablePerfBugs: true, FaultHooks: hooks},
				spinMultiFPTarget("snap-fault"))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Incomplete || res.SkippedFailurePoints != 1 {
				t.Fatalf("want exactly one quarantined failure point, got skipped=%d incomplete=%v:\n%s",
					res.SkippedFailurePoints, res.Incomplete, res)
			}
			if len(res.HarnessFaults) != 1 || !strings.Contains(res.HarnessFaults[0], "image-copy") {
				t.Errorf("harness faults = %v, want one image-copy quarantine", res.HarnessFaults)
			}
			// The other failure points still produced their race report.
			if res.Count(CrossFailureRace) == 0 {
				t.Errorf("campaign did not continue past the quarantine:\n%s", res)
			}
		})
	}
}

// spinMultiFPTarget: several failure points, each post-run reads one
// never-persisted location (a stable race report).
func spinMultiFPTarget(name string) Target {
	return Target{
		Name: name,
		Pre: func(c *Ctx) error {
			c.Pool().Store64(0x800, 7) // never persisted
			for i := 0; i < 4; i++ {
				c.Pool().Store64(uint64(i)*64, 1)
				c.Pool().Persist(uint64(i)*64, 8)
			}
			return nil
		},
		Post: func(c *Ctx) error { c.Pool().Load64(0x800); return nil },
	}
}

// TestSnapshotFaultRetrySucceeds: a transient copy fault (fails once,
// retry succeeds) must not degrade the campaign at all.
func TestSnapshotFaultRetrySucceeds(t *testing.T) {
	clean, err := Run(Config{DisablePerfBugs: true}, spinMultiFPTarget("snap-retry"))
	if err != nil {
		t.Fatal(err)
	}
	var failed atomic.Bool
	hooks := &pmem.FaultHooks{Snapshot: func() error {
		if failed.CompareAndSwap(false, true) {
			return errors.New("transient copy failure")
		}
		return nil
	}}
	res, err := Run(Config{DisablePerfBugs: true, FaultHooks: hooks}, spinMultiFPTarget("snap-retry"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete || res.SkippedFailurePoints != 0 {
		t.Fatalf("transient fault degraded the run: %+v", res)
	}
	if !equalKeys(sortedKeys(clean), sortedKeys(res)) {
		t.Errorf("report set diverged after a retried copy fault:\nclean: %v\nfault: %v", clean.Reports, res.Reports)
	}
}

// TestSinkFaultQuarantine: a post-failure trace sink that persistently
// fails quarantines the affected post-runs; the pre-failure stage is
// unaffected because the hook targets the post stage.
func TestSinkFaultQuarantine(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			hooks := &pmem.FaultHooks{Sink: func(e trace.Entry) error {
				if e.Stage == trace.PostFailure {
					return errors.New("post trace spool broken")
				}
				return nil
			}}
			res, err := Run(Config{Workers: workers, DisablePerfBugs: true, FaultHooks: hooks},
				spinMultiFPTarget("sink-fault"))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Incomplete || res.SkippedFailurePoints == 0 {
				t.Fatalf("persistent sink faults must quarantine post-runs:\n%s", res)
			}
			if res.SkippedFailurePoints != res.FailurePoints {
				t.Errorf("skipped = %d, want all %d failure points", res.SkippedFailurePoints, res.FailurePoints)
			}
			for _, f := range res.HarnessFaults {
				if !strings.Contains(f, "trace-sink") {
					t.Errorf("harness fault %q does not name the trace sink", f)
				}
			}
			if got := res.Count(CrossFailureRace); got != 0 {
				t.Errorf("quarantined post-runs still produced %d race reports", got)
			}
		})
	}
}

// TestSinkFaultInPreStage: a harness fault while tracing the pre-failure
// stage fails the run with an error — gracefully, and without leaking the
// parallel engine's workers.
func TestSinkFaultInPreStage(t *testing.T) {
	hooks := &pmem.FaultHooks{Sink: func(e trace.Entry) error {
		if e.Stage == trace.PreFailure && e.Kind == trace.Write {
			return errors.New("pre trace spool broken")
		}
		return nil
	}}
	base := runtime.NumGoroutine()
	res, err := Run(Config{Workers: 4, FaultHooks: hooks}, spinMultiFPTarget("pre-sink-fault"))
	if err == nil {
		t.Fatalf("expected a harness error, got:\n%v", res)
	}
	if !strings.Contains(err.Error(), "trace-sink") {
		t.Errorf("error %q does not name the trace sink", err)
	}
	waitForGoroutines(t, base)
}

// TestResumeConvergesToIdenticalReports is the core-level half of the
// crash-safe-resume contract: running the first half of a campaign,
// checkpointing completed failure points, then resuming with those failure
// points marked complete and their reports seeded must converge to exactly
// the uninterrupted run's deduplicated report set.
func TestResumeConvergesToIdenticalReports(t *testing.T) {
	mk := func() Target { return figure11Target("resume") }

	type line struct {
		fp    int
		fresh []Report
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var full []line
			cfg := Config{Workers: workers, OnPostRunComplete: func(fp int, _ uint64, fresh []Report) {
				full = append(full, line{fp, fresh})
			}}
			ref, err := Run(cfg, mk())
			if err != nil {
				t.Fatal(err)
			}
			if len(full) != ref.PostRuns {
				t.Fatalf("checkpoint callbacks = %d, want %d", len(full), ref.PostRuns)
			}

			// Simulate a crash after the first half of the checkpoint.
			done := make(map[int]bool)
			var seed []Report
			for _, l := range full[:len(full)/2] {
				done[l.fp] = true
				seed = append(seed, l.fresh...)
			}
			res, err := Run(Config{
				Workers:                workers,
				CompletedFailurePoints: done,
				SeedReports:            seed,
			}, mk())
			if err != nil {
				t.Fatal(err)
			}
			if !equalKeys(sortedKeys(ref), sortedKeys(res)) {
				t.Errorf("resumed report set diverges:\nfull:    %v\nresumed: %v", sortedKeys(ref), sortedKeys(res))
			}
			if res.ResumedFailurePoints != len(done) {
				t.Errorf("resumed failure points = %d, want %d", res.ResumedFailurePoints, len(done))
			}
			if res.FailurePoints != ref.FailurePoints {
				t.Errorf("failure points = %d, want %d", res.FailurePoints, ref.FailurePoints)
			}
			if res.PostRuns != ref.PostRuns-len(done) {
				t.Errorf("post runs = %d, want %d", res.PostRuns, ref.PostRuns-len(done))
			}
			if res.Incomplete {
				t.Errorf("resume must not mark the run incomplete: %+v", res)
			}
		})
	}
}

// TestMaxPostOpsBudgetUnderWorkers: a post-failure stage that loops over
// PM forever is cut off by the operation budget in the parallel engine
// exactly as in sequential mode — same post-failure-fault report, same
// deduplicated set.
func TestMaxPostOpsBudgetUnderWorkers(t *testing.T) {
	mk := func() Target {
		return spinTarget("post-budget", func(c *Ctx) error {
			for {
				c.Pool().Load64(0)
			}
		})
	}
	cfg := func(workers int) Config {
		return Config{Workers: workers, MaxPostOps: 500, DisablePerfBugs: true}
	}
	seq, err := Run(cfg(1), mk())
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.Count(PostFailureFault); got != 1 {
		t.Fatalf("sequential budget faults = %d, want 1:\n%s", got, seq)
	}
	if !strings.Contains(seq.ByClass(PostFailureFault)[0].Message, "501 PM operations") {
		t.Errorf("fault does not cite the budget: %s", seq.ByClass(PostFailureFault)[0])
	}
	if seq.Incomplete || seq.AbandonedPostRuns != 0 {
		t.Errorf("budget exhaustion must degrade per-run, not the campaign: %+v", seq)
	}
	for _, workers := range []int{2, 4} {
		par, err := Run(cfg(workers), mk())
		if err != nil {
			t.Fatal(err)
		}
		if !equalKeys(sortedKeys(seq), sortedKeys(par)) {
			t.Errorf("workers=%d: report set diverges from sequential:\nseq: %v\npar: %v",
				workers, seq.Reports, par.Reports)
		}
		if par.PostRuns != seq.PostRuns {
			t.Errorf("workers=%d: post runs = %d, want %d", workers, par.PostRuns, seq.PostRuns)
		}
	}
}
