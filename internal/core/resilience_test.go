package core

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Resilience tests: the detection loop must survive hostile targets and
// harness-internal faults, degrading into honest partial results instead of
// crashing, hanging, or leaking goroutines.

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (small slack for runtime bookkeeping goroutines), failing with a
// full stack dump when it does not.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
}

// TestSetupPanicRecovered: a panicking Setup must become a harness error,
// not a process crash.
func TestSetupPanicRecovered(t *testing.T) {
	target := Target{
		Name:  "setup-panic",
		Setup: func(c *Ctx) error { panic("hostile setup") },
		Pre:   func(c *Ctx) error { return nil },
	}
	res, err := Run(Config{}, target)
	if err == nil {
		t.Fatalf("expected a harness error, got result:\n%v", res)
	}
	if !strings.Contains(err.Error(), "setup panicked") || !strings.Contains(err.Error(), "hostile setup") {
		t.Errorf("error %q does not describe the setup panic", err)
	}
}

// TestPrePanicRecovered: same for the pre-failure stage, including a
// RangeError panic from an out-of-bounds PM access.
func TestPrePanicRecovered(t *testing.T) {
	for _, tc := range []struct {
		name string
		pre  func(c *Ctx) error
		want string
	}{
		{"explicit", func(c *Ctx) error { panic("hostile pre") }, "hostile pre"},
		{"oob", func(c *Ctx) error { c.Pool().Store64(1 << 40, 1); return nil }, "out of range"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(Config{}, Target{Name: "pre-panic", Pre: tc.pre})
			if err == nil {
				t.Fatalf("expected a harness error, got result:\n%v", res)
			}
			if !strings.Contains(err.Error(), "pre-failure stage panicked") || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not describe the pre-failure panic", err)
			}
		})
	}
}

// TestStageErrorsKeepWrapping: plain stage errors still come back wrapped,
// with the cause reachable through errors.Is.
func TestStageErrorsKeepWrapping(t *testing.T) {
	cause := errors.New("disk on fire")
	_, err := Run(Config{}, Target{
		Name: "pre-error",
		Pre:  func(c *Ctx) error { return cause },
	})
	if !errors.Is(err, cause) {
		t.Fatalf("pre-failure error lost its cause: %v", err)
	}
}

// TestNoWorkerLeakOnFailingStages: with Workers > 1, the parallel engine
// must be drained even when Setup or Pre fails or panics (before the fix,
// a failing Setup leaked every worker goroutine).
func TestNoWorkerLeakOnFailingStages(t *testing.T) {
	stages := map[string]Target{
		"setup-error": {
			Name:  "leak-setup-error",
			Setup: func(c *Ctx) error { return errors.New("setup says no") },
			Pre:   func(c *Ctx) error { return nil },
			Post:  func(c *Ctx) error { return nil },
		},
		"setup-panic": {
			Name:  "leak-setup-panic",
			Setup: func(c *Ctx) error { panic("setup panic") },
			Pre:   func(c *Ctx) error { return nil },
			Post:  func(c *Ctx) error { return nil },
		},
		"pre-error": {
			Name: "leak-pre-error",
			Pre:  func(c *Ctx) error { return errors.New("pre says no") },
			Post: func(c *Ctx) error { return nil },
		},
		"pre-panic": {
			Name: "leak-pre-panic",
			Pre:  func(c *Ctx) error { panic("pre panic") },
			Post: func(c *Ctx) error { return nil },
		},
	}
	for name, target := range stages {
		t.Run(name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			if _, err := Run(Config{Workers: 4}, target); err == nil {
				t.Fatal("expected a harness error")
			}
			waitForGoroutines(t, base)
		})
	}
}
